(* Artifact cache: canonical hashing, the content-addressed store, and
   the end-to-end guarantee the subsystem exists for — a warm run prints
   byte-for-byte what the cold run printed, at any jobs width. *)

module G = Dataflow.Graph
module K = Dataflow.Unit_kind

let temp_dir () = Filename.temp_dir "repro-cache-test" ""

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_store ?mem_bytes f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir (Cache.Store.open_dir ?mem_bytes dir))

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1) in
  go 0

let replace_first s ~sub ~by =
  match find_sub s sub with
  | None -> s
  | Some i ->
    String.sub s 0 i ^ by ^ String.sub s (i + String.length sub) (String.length s - i - String.length sub)

(* ------------------------------------------------------------------ *)
(* SHA-256 against FIPS 180-4 test vectors *)

let test_sha_vectors () =
  Alcotest.(check string)
    "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Cache.Sha256.hex "");
  Alcotest.(check string)
    "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Cache.Sha256.hex "abc");
  Alcotest.(check string)
    "two blocks" "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Cache.Sha256.hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  Alcotest.(check string)
    "million a" "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Cache.Sha256.hex (String.make 1_000_000 'a'))

(* ------------------------------------------------------------------ *)
(* canonical hashing *)

let test_hash_stable () =
  (* rebuilt from scratch -> identical hash; hashing is a pure function
     of structure, not of physical ids or construction order *)
  let g1, _ = Fixtures.loop () and g2, _ = Fixtures.loop () in
  Alcotest.(check string) "same structure, same hash" (Cache.Hash.dfg g1) (Cache.Hash.dfg g2);
  let n1 = Elaborate.run g1 and n2 = Elaborate.run g2 in
  Alcotest.(check string) "same netlist hash" (Cache.Hash.netlist n1) (Cache.Hash.netlist n2)

let test_hash_sensitive () =
  let g1, _ = Fixtures.loop () in
  let g2, back = Fixtures.loop () in
  G.set_buffer g2 back (Some { G.transparent = true; slots = 7 });
  Alcotest.(check bool) "buffer annotation changes the hash" false
    (Cache.Hash.dfg g1 = Cache.Hash.dfg g2);
  Alcotest.(check bool) "combine is length-prefixed" false
    (Cache.Hash.combine [ "ab"; "c" ] = Cache.Hash.combine [ "a"; "bc" ])

let test_hash_across_domains () =
  (* the jobs=1 / jobs=8 determinism contract: a key computed inside a
     pool worker equals the key computed on the main domain *)
  let reference = Cache.Hash.dfg (fst (Fixtures.loop ())) in
  let hashes =
    Support.Pool.run ~jobs:4 (fun pool ->
        List.init 4 (fun _ ->
            Support.Pool.submit pool (fun () -> Cache.Hash.dfg (fst (Fixtures.loop ()))))
        |> List.map Support.Pool.await)
  in
  List.iter (Alcotest.(check string) "worker-domain hash" reference) hashes

(* ------------------------------------------------------------------ *)
(* store behaviour *)

let test_store_roundtrip () =
  with_store @@ fun _dir store ->
  Alcotest.(check (option string)) "empty store misses" None
    (Cache.Store.get store ~kind:"k" ~key:"a");
  Cache.Store.put store ~kind:"k" ~key:"a" "payload-bytes";
  Alcotest.(check (option string)) "roundtrip" (Some "payload-bytes")
    (Cache.Store.get store ~kind:"k" ~key:"a");
  Alcotest.(check (option string)) "kind partitions the namespace" None
    (Cache.Store.get store ~kind:"other" ~key:"a");
  Alcotest.(check int) "one hit" 1 (Cache.Store.hits store);
  Alcotest.(check int) "two misses" 2 (Cache.Store.misses store)

let test_store_corruption () =
  (* mem_bytes:0 bypasses the LRU front so every get hits the disk path *)
  with_store ~mem_bytes:0 @@ fun _dir store ->
  let path = Cache.Store.entry_path store ~kind:"k" ~key:"x" in
  Cache.Store.put store ~kind:"k" ~key:"x" "the payload";
  (* truncate mid-payload: checksum/length verification must fail *)
  let full = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub full 0 (String.length full - 4)));
  Alcotest.(check (option string)) "truncated entry is a miss" None
    (Cache.Store.get store ~kind:"k" ~key:"x");
  Alcotest.(check bool) "bad entry deleted" false (Sys.file_exists path);
  (* pure garbage *)
  Cache.Store.put store ~kind:"k" ~key:"x" "the payload";
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "not a cache entry");
  Alcotest.(check (option string)) "garbage entry is a miss" None
    (Cache.Store.get store ~kind:"k" ~key:"x");
  (* a rewrite recovers *)
  Cache.Store.put store ~kind:"k" ~key:"x" "the payload";
  Alcotest.(check (option string)) "rewritten entry reads back" (Some "the payload")
    (Cache.Store.get store ~kind:"k" ~key:"x")

let test_store_version_invalidation () =
  with_store ~mem_bytes:0 @@ fun _dir store ->
  let path = Cache.Store.entry_path store ~kind:"k" ~key:"v" in
  Cache.Store.put store ~kind:"k" ~key:"v" "versioned";
  let full = In_channel.with_open_bin path In_channel.input_all in
  (* same checksummed payload, but stamped by a different model version:
     must read as a miss, never be decoded *)
  let swapped = replace_first full ~sub:Cache.Store.model_version ~by:"m0-other" in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc swapped);
  Alcotest.(check (option string)) "other model version is a miss" None
    (Cache.Store.get store ~kind:"k" ~key:"v")

let test_store_concurrent_writers () =
  with_store ~mem_bytes:0 @@ fun _dir store ->
  let payload = String.concat "" (List.init 200 string_of_int) in
  Support.Pool.run ~jobs:2 (fun pool ->
      List.init 8 (fun _ ->
          Support.Pool.submit pool (fun () ->
              Cache.Store.put store ~kind:"k" ~key:"racy" payload))
      |> List.iter Support.Pool.await);
  Alcotest.(check (option string)) "racing writers leave a valid entry" (Some payload)
    (Cache.Store.get store ~kind:"k" ~key:"racy")

let test_store_gc_clear () =
  with_store @@ fun dir store ->
  List.iter
    (fun i -> Cache.Store.put store ~kind:"k" ~key:(string_of_int i) (String.make 100 'x'))
    [ 1; 2; 3; 4 ];
  let s = Cache.Store.disk_stats dir in
  Alcotest.(check int) "entries on disk" 4 s.Cache.Store.ds_entries;
  Alcotest.(check bool) "bytes accounted" true (s.Cache.Store.ds_bytes > 400);
  let removed, freed = Cache.Store.gc dir ~max_bytes:(s.Cache.Store.ds_bytes / 2) in
  Alcotest.(check int) "gc removed" 2 removed;
  Alcotest.(check bool) "gc freed bytes" true (freed > 0);
  Cache.Store.clear dir;
  Alcotest.(check int) "clear empties" 0 (Cache.Store.disk_stats dir).Cache.Store.ds_entries;
  (* stats_json parses enough to be machine-readable: spot-check shape *)
  let json = Cache.Store.stats_json dir in
  Alcotest.(check bool) "json has hit_rate" true (find_sub json "\"hit_rate\":" <> None)

(* ------------------------------------------------------------------ *)
(* memoization through Control *)

let with_cache_enabled dir f =
  ignore (Cache.Control.enable dir);
  Fun.protect ~finally:Cache.Control.finish f

let test_memo () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let calls = ref 0 in
  let f () = incr calls; !calls * 10 in
  Alcotest.(check int) "disabled memo is transparent" 10
    (Cache.Control.memo ~kind:"t" ~key:"k" f);
  with_cache_enabled dir (fun () ->
      Alcotest.(check int) "first enabled call computes" 20
        (Cache.Control.memo ~kind:"t" ~key:"k" f);
      Alcotest.(check int) "second call served from cache" 20
        (Cache.Control.memo ~kind:"t" ~key:"k" f);
      Alcotest.(check int) "f ran twice in total" 2 !calls);
  (* a fresh process-equivalent: new Control session, same directory *)
  with_cache_enabled dir (fun () ->
      Alcotest.(check int) "persists across sessions" 20
        (Cache.Control.memo ~kind:"t" ~key:"k" f);
      Alcotest.(check int) "no recomputation" 2 !calls)

let test_memo_corruption_rewrite () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let calls = ref 0 in
  let f () = incr calls; "value" in
  with_cache_enabled dir (fun () ->
      Alcotest.(check string) "computed" "value" (Cache.Control.memo ~kind:"t" ~key:"c" f);
      let store = Option.get (Cache.Control.active ()) in
      let path = Cache.Store.entry_path store ~kind:"t" ~key:"c" in
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "garbage"));
  (* new session: the in-memory front is gone, the disk entry is garbage *)
  with_cache_enabled dir (fun () ->
      Alcotest.(check string) "recomputed after corruption" "value"
        (Cache.Control.memo ~kind:"t" ~key:"c" f);
      Alcotest.(check int) "f ran again" 2 !calls);
  with_cache_enabled dir (fun () ->
      Alcotest.(check string) "rewritten entry hits" "value"
        (Cache.Control.memo ~kind:"t" ~key:"c" f);
      Alcotest.(check int) "no third run" 2 !calls)

(* ------------------------------------------------------------------ *)
(* LRU front *)

let test_lru () =
  let l = Cache.Lru.create ~max_bytes:10 in
  Cache.Lru.add l "a" "12345";
  Cache.Lru.add l "b" "12345";
  Alcotest.(check int) "at capacity" 10 (Cache.Lru.bytes l);
  ignore (Cache.Lru.find l "a");
  (* touch a, then overflow: b is the least recently used *)
  Cache.Lru.add l "c" "123";
  Alcotest.(check (option string)) "recently-used survives" (Some "12345") (Cache.Lru.find l "a");
  Alcotest.(check (option string)) "lru evicted" None (Cache.Lru.find l "b");
  Alcotest.(check bool) "bound respected" true (Cache.Lru.bytes l <= 10);
  let z = Cache.Lru.create ~max_bytes:0 in
  Cache.Lru.add z "a" "x";
  Alcotest.(check (option string)) "zero budget retains nothing" None (Cache.Lru.find z "a")

(* ------------------------------------------------------------------ *)
(* the end-to-end guarantee: warm output == cold output, at any width *)

let render_report rows =
  Format.asprintf "%a@\n%a@\n%a" Core.Report.table1 rows Core.Report.figure5 rows
    Core.Report.iterations rows

let run_compare ~jobs () =
  render_report
    (Core.Experiment.run_all_parallel ~config:Fixtures.cheap_flow_config ~jobs
       ~kernels:Fixtures.tiny_kernels ())

let test_cold_warm_identical () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cold = with_cache_enabled dir (fun () -> run_compare ~jobs:1 ()) in
  let warm1, warm_hits =
    with_cache_enabled dir (fun () ->
        let out = run_compare ~jobs:1 () in
        (out, Cache.Store.hits (Option.get (Cache.Control.active ()))))
  in
  let warm2 = with_cache_enabled dir (fun () -> run_compare ~jobs:2 ()) in
  Alcotest.(check string) "warm jobs=1 == cold" cold warm1;
  Alcotest.(check string) "warm jobs=2 == cold" cold warm2;
  Alcotest.(check bool) "warm run actually hit the cache" true (warm_hits > 0);
  (* and the cache changes nothing vs. no cache at all *)
  let uncached = run_compare ~jobs:1 () in
  Alcotest.(check string) "uncached == cached" uncached cold

let suite =
  [
    Alcotest.test_case "sha256 vectors" `Quick test_sha_vectors;
    Alcotest.test_case "hash stable across rebuilds" `Quick test_hash_stable;
    Alcotest.test_case "hash sensitive to structure" `Quick test_hash_sensitive;
    Alcotest.test_case "hash stable across domains" `Quick test_hash_across_domains;
    Alcotest.test_case "store roundtrip" `Quick test_store_roundtrip;
    Alcotest.test_case "store corruption tolerated" `Quick test_store_corruption;
    Alcotest.test_case "store version invalidation" `Quick test_store_version_invalidation;
    Alcotest.test_case "store concurrent writers" `Quick test_store_concurrent_writers;
    Alcotest.test_case "store gc and clear" `Quick test_store_gc_clear;
    Alcotest.test_case "memo persists across sessions" `Quick test_memo;
    Alcotest.test_case "memo rewrites corrupted entries" `Quick test_memo_corruption_rewrite;
    Alcotest.test_case "lru front" `Quick test_lru;
    Alcotest.test_case "cold vs warm byte-identical" `Slow test_cold_warm_identical;
  ]
