module Lp = Milp.Lp
module Simplex = Milp.Simplex
module Bb = Milp.Bb

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let feps = 1e-5
let float_t = Alcotest.float feps

(* ------------------------------------------------------------------ *)
(* Simplex on known problems *)

let test_lp_basic () =
  (* max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj 12 *)
  let m = Lp.create "basic" in
  let x = Lp.add_var m "x" and y = Lp.add_var m "y" in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Le 4.;
  Lp.add_constr m [ (1., x); (3., y) ] Lp.Le 6.;
  Lp.set_objective m ~maximize:true [ (3., x); (2., y) ];
  match Simplex.solve m with
  | Simplex.Optimal { obj; x = sol } ->
    check float_t "obj" 12. obj;
    check float_t "x" 4. sol.(x);
    check float_t "y" 0. sol.(y)
  | _ -> Alcotest.fail "expected optimal"

let test_lp_ge_eq () =
  (* min 2x + 3y s.t. x + y = 10, x >= 3 -> x=7? no: min => maximize x
     since coeff smaller: x=10-y; obj = 2(10-y)+3y = 20+y -> y=0, x=10;
     but x >= 3 satisfied. obj 20 *)
  let m = Lp.create "ge_eq" in
  let x = Lp.add_var m "x" and y = Lp.add_var m "y" in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Eq 10.;
  Lp.add_constr m [ (1., x) ] Lp.Ge 3.;
  Lp.set_objective m ~maximize:false [ (2., x); (3., y) ];
  match Simplex.solve m with
  | Simplex.Optimal { obj; x = sol } ->
    check float_t "obj" 20. obj;
    check float_t "x" 10. sol.(x)
  | _ -> Alcotest.fail "expected optimal"

let test_lp_infeasible () =
  let m = Lp.create "infeasible" in
  let x = Lp.add_var m "x" in
  Lp.add_constr m [ (1., x) ] Lp.Ge 5.;
  Lp.add_constr m [ (1., x) ] Lp.Le 3.;
  Lp.set_objective m ~maximize:true [ (1., x) ];
  check Alcotest.bool "infeasible" true (Simplex.solve m = Simplex.Infeasible)

let test_lp_unbounded () =
  let m = Lp.create "unbounded" in
  let x = Lp.add_var m "x" in
  Lp.add_constr m [ (-1., x) ] Lp.Le 0.;
  Lp.set_objective m ~maximize:true [ (1., x) ];
  check Alcotest.bool "unbounded" true (Simplex.solve m = Simplex.Unbounded)

let test_lp_bounds () =
  (* variable bounds only: max x + y with x in [1,2], y in [-3,-1] *)
  let m = Lp.create "bounds" in
  let x = Lp.add_var m ~lo:1. ~hi:2. "x" in
  let y = Lp.add_var m ~lo:(-3.) ~hi:(-1.) "y" in
  Lp.set_objective m ~maximize:true [ (1., x); (1., y) ];
  match Simplex.solve m with
  | Simplex.Optimal { obj; x = sol } ->
    check float_t "obj" 1. obj;
    check float_t "x" 2. sol.(x);
    check float_t "y" (-1.) sol.(y)
  | _ -> Alcotest.fail "expected optimal"

let test_lp_free_var () =
  (* free variable: min x s.t. x >= -7 via constraint *)
  let m = Lp.create "free" in
  let x = Lp.add_var m ~lo:neg_infinity "x" in
  Lp.add_constr m [ (1., x) ] Lp.Ge (-7.);
  Lp.set_objective m ~maximize:false [ (1., x) ];
  match Simplex.solve m with
  | Simplex.Optimal { obj; _ } -> check float_t "obj" (-7.) obj
  | _ -> Alcotest.fail "expected optimal"

let test_lp_degenerate () =
  (* degenerate vertex should still terminate *)
  let m = Lp.create "degen" in
  let x = Lp.add_var m "x" and y = Lp.add_var m "y" in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Le 1.;
  Lp.add_constr m [ (1., x) ] Lp.Le 1.;
  Lp.add_constr m [ (1., y) ] Lp.Le 1.;
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Ge 1.;
  Lp.set_objective m ~maximize:true [ (1., x) ];
  match Simplex.solve m with
  | Simplex.Optimal { obj; _ } -> check float_t "obj" 1. obj
  | _ -> Alcotest.fail "expected optimal"

(* Property: on random LPs over a bounded box, the simplex optimum
   dominates every feasible point of an integer grid sample, and the
   returned point is feasible. *)
let prop_simplex_dominates_grid =
  QCheck.Test.make ~name:"simplex optimum dominates grid samples" ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Support.Rng.create seed in
      let n = 2 + Support.Rng.int rng 2 in
      let m = Lp.create "rand" in
      let vars = Array.init n (fun i -> Lp.add_var m ~lo:0. ~hi:5. (Printf.sprintf "x%d" i)) in
      let n_constr = 1 + Support.Rng.int rng 3 in
      for _ = 1 to n_constr do
        let terms =
          Array.to_list (Array.map (fun v -> (float_of_int (Support.Rng.int rng 5) -. 1., v)) vars)
        in
        Lp.add_constr m terms Lp.Le (float_of_int (5 + Support.Rng.int rng 10))
      done;
      let obj =
        Array.to_list (Array.map (fun v -> (float_of_int (Support.Rng.int rng 7) -. 2., v)) vars)
      in
      Lp.set_objective m ~maximize:true obj;
      match Simplex.solve m with
      | Simplex.Unbounded -> false (* impossible: box-bounded *)
      | Simplex.Infeasible -> false (* impossible: 0 is feasible *)
      | Simplex.Optimal { obj = opt; x } ->
        if not (Lp.feasible m x) then false
        else begin
          (* enumerate grid points in {0..5}^n *)
          let ok = ref true in
          let point = Array.make n 0. in
          let rec enum i =
            if i = n then begin
              if Lp.feasible m point then
                if Lp.eval_expr obj point > opt +. 1e-4 then ok := false
            end
            else
              for v = 0 to 5 do
                point.(i) <- float_of_int v;
                enum (i + 1)
              done
          in
          enum 0;
          !ok
        end)

(* ------------------------------------------------------------------ *)
(* Branch & bound *)

let test_milp_knapsack () =
  (* knapsack: max 10a + 6b + 4c s.t. a+b+c <= 2 (binary) -> a,b -> 16 *)
  let m = Lp.create "knap" in
  let a = Lp.add_var m ~kind:Lp.Binary "a" in
  let b = Lp.add_var m ~kind:Lp.Binary "b" in
  let c = Lp.add_var m ~kind:Lp.Binary "c" in
  Lp.add_constr m [ (1., a); (1., b); (1., c) ] Lp.Le 2.;
  Lp.set_objective m ~maximize:true [ (10., a); (6., b); (4., c) ];
  match Bb.solve m with
  | Bb.Optimal { obj; x; proved_optimal; _ } ->
    check float_t "obj" 16. obj;
    check float_t "a" 1. x.(a);
    check float_t "b" 1. x.(b);
    check float_t "c" 0. x.(c);
    check Alcotest.bool "proved" true proved_optimal
  | _ -> Alcotest.fail "expected optimal"

let test_milp_fractional_lp_integral_milp () =
  (* LP relaxation fractional: max x s.t. 2x <= 3, x integer -> 1 *)
  let m = Lp.create "floor" in
  let x = Lp.add_var m ~kind:Lp.Integer ~hi:10. "x" in
  Lp.add_constr m [ (2., x) ] Lp.Le 3.;
  Lp.set_objective m ~maximize:true [ (1., x) ];
  match Bb.solve m with
  | Bb.Optimal { obj; _ } -> check float_t "obj" 1. obj
  | _ -> Alcotest.fail "expected optimal"

let test_milp_infeasible_integrality () =
  (* 0.4 <= x <= 0.6, x binary: infeasible *)
  let m = Lp.create "gap" in
  let x = Lp.add_var m ~kind:Lp.Binary "x" in
  Lp.add_constr m [ (1., x) ] Lp.Ge 0.4;
  Lp.add_constr m [ (1., x) ] Lp.Le 0.6;
  Lp.set_objective m ~maximize:true [ (1., x) ];
  check Alcotest.bool "infeasible" true (Bb.solve m = Bb.Infeasible)

let test_milp_mixed () =
  (* mixed: max y + 0.5 t, y binary, t cont <= 2.5, t <= 3 y -> y=1, t=2.5 *)
  let m = Lp.create "mixed" in
  let y = Lp.add_var m ~kind:Lp.Binary "y" in
  let t = Lp.add_var m ~hi:2.5 "t" in
  Lp.add_constr m [ (1., t); (-3., y) ] Lp.Le 0.;
  Lp.set_objective m ~maximize:true [ (1., y); (0.5, t) ];
  match Bb.solve m with
  | Bb.Optimal { obj; x; _ } ->
    check float_t "obj" 2.25 obj;
    check float_t "y" 1. x.(y);
    check float_t "t" 2.5 x.(t)
  | _ -> Alcotest.fail "expected optimal"

(* Property: MILP over binaries only == brute-force enumeration. *)
let prop_bb_matches_bruteforce =
  QCheck.Test.make ~name:"branch&bound matches brute force on binary MILPs" ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Support.Rng.create seed in
      let n = 2 + Support.Rng.int rng 4 in
      let m = Lp.create "rand" in
      let vars = Array.init n (fun i -> Lp.add_var m ~kind:Lp.Binary (Printf.sprintf "b%d" i)) in
      let n_constr = 1 + Support.Rng.int rng 3 in
      for _ = 1 to n_constr do
        let terms =
          Array.to_list
            (Array.map (fun v -> (float_of_int (Support.Rng.int rng 7) -. 2., v)) vars)
        in
        Lp.add_constr m terms
          (if Support.Rng.bool rng then Lp.Le else Lp.Ge)
          (float_of_int (Support.Rng.int rng 6) -. 1.);
      done;
      let obj =
        Array.to_list (Array.map (fun v -> (float_of_int (Support.Rng.int rng 9) -. 3., v)) vars)
      in
      Lp.set_objective m ~maximize:true obj;
      (* brute force *)
      let best = ref neg_infinity in
      let point = Array.make n 0. in
      for mask = 0 to (1 lsl n) - 1 do
        for i = 0 to n - 1 do
          point.(i) <- float_of_int ((mask lsr i) land 1)
        done;
        if Lp.feasible m point then best := max !best (Lp.eval_expr obj point)
      done;
      match Bb.solve m with
      | Bb.Infeasible -> !best = neg_infinity
      | Bb.Unbounded | Bb.Exhausted -> false
      | Bb.Optimal { obj = got; x; _ } ->
        Lp.feasible m x && abs_float (got -. !best) < 1e-5)

(* Property: general-integer MILPs over a small box match brute force. *)
let prop_bb_integers_bruteforce =
  QCheck.Test.make ~name:"branch&bound matches brute force on integer MILPs" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Support.Rng.create seed in
      let n = 2 + Support.Rng.int rng 2 in
      let m = Lp.create "randint" in
      let vars =
        Array.init n (fun i -> Lp.add_var m ~kind:Lp.Integer ~hi:3. (Printf.sprintf "k%d" i))
      in
      for _ = 1 to 1 + Support.Rng.int rng 3 do
        let terms =
          Array.to_list (Array.map (fun v -> (float_of_int (Support.Rng.int rng 5) -. 2., v)) vars)
        in
        Lp.add_constr m terms
          (if Support.Rng.bool rng then Lp.Le else Lp.Ge)
          (float_of_int (Support.Rng.int rng 8) -. 2.)
      done;
      let obj =
        Array.to_list (Array.map (fun v -> (float_of_int (Support.Rng.int rng 9) -. 4., v)) vars)
      in
      Lp.set_objective m ~maximize:true obj;
      let best = ref neg_infinity in
      let point = Array.make n 0. in
      let rec enum i =
        if i = n then begin
          if Lp.feasible m point then best := max !best (Lp.eval_expr obj point)
        end
        else
          for v = 0 to 3 do
            point.(i) <- float_of_int v;
            enum (i + 1)
          done
      in
      enum 0;
      match Bb.solve m with
      | Bb.Infeasible -> !best = neg_infinity
      | Bb.Unbounded | Bb.Exhausted -> false
      | Bb.Optimal { obj = got; x; _ } -> Lp.feasible m x && abs_float (got -. !best) < 1e-5)

let test_bb_initial_incumbent () =
  (* a feasible integral initial point is accepted and never worsened *)
  let m = Lp.create "warm" in
  let a = Lp.add_var m ~kind:Lp.Binary "a" in
  let b = Lp.add_var m ~kind:Lp.Binary "b" in
  Lp.add_constr m [ (1., a); (1., b) ] Lp.Le 1.;
  Lp.set_objective m ~maximize:true [ (2., a); (1., b) ] ;
  match Bb.solve ~initial:[| 0.; 1. |] m with
  | Bb.Optimal { obj; _ } -> check float_t "optimum found despite weak start" 2. obj
  | _ -> Alcotest.fail "expected optimal"

let test_bb_time_limit () =
  (* a zero time limit on a fractional root returns the initial incumbent
     without proving optimality *)
  let m = Lp.create "tl" in
  let a = Lp.add_var m ~kind:Lp.Binary "a" in
  let b = Lp.add_var m ~kind:Lp.Binary "b" in
  Lp.add_constr m [ (2., a); (2., b) ] Lp.Le 3.;
  Lp.set_objective m ~maximize:true [ (1., a); (1., b) ];
  match Bb.solve ~time_limit:0. ~initial:[| 0.; 0. |] m with
  | Bb.Optimal { proved_optimal; _ } ->
    check Alcotest.bool "not proved" false proved_optimal
  | _ -> Alcotest.fail "expected incumbent"

let test_bb_rebranch_same_var () =
  (* QCheck counterexample (generator seed 7622): branching the same
     integer variable twice down one path must intersect the box fixes,
     not let the older, wider fix overwrite the newer one — the overwrite
     made the node re-branch forever and exhaust the budget with no
     incumbent, reporting a feasible model infeasible *)
  let m = Lp.create "rebranch" in
  let k0 = Lp.add_var m ~kind:Lp.Integer ~hi:3. "k0" in
  let k1 = Lp.add_var m ~kind:Lp.Integer ~hi:3. "k1" in
  Lp.add_constr m [ (2., k0); (2., k1) ] Lp.Ge 1.;
  Lp.add_constr m [ (2., k0); (-2., k1) ] Lp.Le 1.;
  Lp.set_objective m ~maximize:true [ (3., k0); (-4., k1) ];
  match Bb.solve m with
  | Bb.Optimal { obj; x; proved_optimal; _ } ->
    check float_t "optimum" (-1.) obj;
    check float_t "k0" 1. x.(k0);
    check float_t "k1" 1. x.(k1);
    check Alcotest.bool "proved" true proved_optimal
  | _ -> Alcotest.fail "expected optimal -1 at (1, 1)"

let test_lp_violations () =
  let m = Lp.create "cert" in
  let x = Lp.add_var m ~hi:1. ~kind:Lp.Binary "x" in
  let y = Lp.add_var m ~hi:10. "y" in
  Lp.add_constr m ~name:"cap" [ (1., x); (1., y) ] Lp.Le 1.;
  check Alcotest.int "clean assignment" 0 (List.length (Lp.violations m [| 1.; 0. |]));
  (match Lp.violations m [| 1.; 3. |] with
  | [ Lp.V_constr { row = 0; name = "cap"; lhs; _ } ] -> check float_t "lhs" 4. lhs
  | _ -> Alcotest.fail "expected one row violation");
  (match Lp.violations m [| 0.5; 0. |] with
  | [ Lp.V_integrality { var; value } ] ->
    check Alcotest.int "var" x (check Alcotest.bool "frac" true (value = 0.5); var)
  | _ -> Alcotest.fail "expected one integrality violation");
  (match Lp.violations m [| 1.; -2. |] with
  | [ Lp.V_bound { var; _ } ] -> check Alcotest.int "y out of bounds" y var
  | _ -> Alcotest.fail "expected one bound violation");
  match Lp.violations m [| 1. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on length mismatch"

let test_lp_feasible_check () =
  let m = Lp.create "feas" in
  let x = Lp.add_var m ~hi:2. "x" in
  Lp.add_constr m [ (1., x) ] Lp.Ge 1.;
  check Alcotest.bool "ok" true (Lp.feasible m [| 1.5 |]);
  check Alcotest.bool "bound violated" false (Lp.feasible m [| 2.5 |]);
  check Alcotest.bool "constr violated" false (Lp.feasible m [| 0.5 |])

let suite =
  [
    ("lp basic", `Quick, test_lp_basic);
    ("lp ge/eq", `Quick, test_lp_ge_eq);
    ("lp infeasible", `Quick, test_lp_infeasible);
    ("lp unbounded", `Quick, test_lp_unbounded);
    ("lp variable bounds", `Quick, test_lp_bounds);
    ("lp free variable", `Quick, test_lp_free_var);
    ("lp degenerate", `Quick, test_lp_degenerate);
    ("lp feasibility check", `Quick, test_lp_feasible_check);
    qtest prop_simplex_dominates_grid;
    ("milp knapsack", `Quick, test_milp_knapsack);
    ("milp floor", `Quick, test_milp_fractional_lp_integral_milp);
    ("milp integrality infeasible", `Quick, test_milp_infeasible_integrality);
    ("milp mixed", `Quick, test_milp_mixed);
    qtest prop_bb_matches_bruteforce;
    qtest prop_bb_integers_bruteforce;
    ("bb initial incumbent", `Quick, test_bb_initial_incumbent);
    ("bb re-branch same variable", `Quick, test_bb_rebranch_same_var);
    ("lp violations certificate", `Quick, test_lp_violations);
    ("bb time limit", `Quick, test_bb_time_limit);
  ]
