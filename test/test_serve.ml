(* The compile daemon: JSON codec, protocol round-trips, admission
   control, cooperative cancellation, structured errors (a poisoned
   request must leave the server serving), both transports, and the
   standing digest-determinism invariant: concurrently served results
   are byte-identical to serial one-shot runs. *)

module J = Serve.Json
module P = Serve.Protocol
module S = Serve.Server

let check = Alcotest.check

let temp_dir () = Filename.temp_dir "repro-serve-test" ""

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

(* ------------------------------------------------------------------ *)
(* JSON codec *)

let json_roundtrip j =
  match J.of_string (J.to_string j) with
  | Ok j' -> j'
  | Error msg -> Alcotest.failf "reparse failed: %s on %s" msg (J.to_string j)

let test_json_roundtrip () =
  let cases =
    [
      J.Null;
      J.Bool true;
      J.Num 0.;
      J.Num (-17.);
      J.Num 3.141592653589793;
      J.Num 1e-9;
      J.Str "";
      J.Str "plain";
      J.Str "quote \" backslash \\ slash / newline \n tab \t cr \r";
      J.Str "control \001\002\031 bytes";
      J.Str "utf-8 snowman \xe2\x98\x83 passes through";
      J.Arr [];
      J.Arr [ J.Num 1.; J.Str "two"; J.Bool false; J.Null ];
      J.Obj [];
      J.Obj
        [
          ("nested", J.Obj [ ("deep", J.Arr [ J.Obj [ ("k", J.Str "v\n") ] ]) ]);
          ("empty key", J.Str "ok");
        ];
    ]
  in
  List.iter (fun j -> check Alcotest.bool "roundtrip equal" true (json_roundtrip j = j)) cases

let test_json_escapes () =
  (* printing is canonical: control characters escaped, one line *)
  check Alcotest.string "newline escaped" {|"a\nb"|} (J.to_string (J.Str "a\nb"));
  check Alcotest.string "quote escaped" {|"a\"b"|} (J.to_string (J.Str "a\"b"));
  check Alcotest.string "u-escape for control" "\"\\u0001\"" (J.to_string (J.Str "\001"));
  check Alcotest.string "integers print clean" "{\"n\":42}"
    (J.to_string (J.Obj [ ("n", J.Num 42.) ]));
  (* parsing handles \u escapes, including surrogate pairs *)
  (match J.of_string {|"\u0041\u00e9\u2603"|} with
  | Ok (J.Str s) -> check Alcotest.string "BMP escapes decode to UTF-8" "A\xc3\xa9\xe2\x98\x83" s
  | _ -> Alcotest.fail "BMP escape parse");
  (match J.of_string {|"\ud83d\ude00"|} with
  | Ok (J.Str s) -> check Alcotest.string "surrogate pair" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "surrogate pair parse");
  (* a lone high surrogate degrades to U+FFFD, never an exception *)
  (match J.of_string {|"\ud800"|} with
  | Ok (J.Str s) -> check Alcotest.string "lone surrogate replaced" "\xef\xbf\xbd" s
  | _ -> Alcotest.fail "lone surrogate parse")

let test_json_rejects () =
  let bad = [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{} trailing" ] in
  List.iter
    (fun s ->
      match J.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s)
    bad

(* ------------------------------------------------------------------ *)
(* protocol *)

let req ?kernel ?source ?(flavor = `Iterative) ?levels ?milp_nodes ?milp_budget_s id =
  { P.id; kernel; source; flavor; levels; milp_nodes; milp_budget_s }

let test_request_roundtrip () =
  let cases =
    [
      req ~kernel:"gsum" "r1";
      req ~source:"int f() { return 1; }" ~flavor:`Baseline "r2";
      req ~kernel:"mvt" ~levels:5 ~milp_nodes:1000 ~milp_budget_s:2.5 "r3";
      (* ids round-trip through escaping: quotes, newlines, tabs *)
      req ~kernel:"gsum" "weird \"id\"\nwith\ttabs";
    ]
  in
  List.iter
    (fun r ->
      match P.command_of_line (P.request_to_line r) with
      | Ok (P.Compile r') -> check Alcotest.bool ("roundtrip " ^ r.P.id) true (r = r')
      | Ok _ -> Alcotest.fail "parsed to a non-compile command"
      | Error msg -> Alcotest.failf "parse failed: %s" msg)
    cases;
  (match P.command_of_line {|{"cancel":true,"id":"r9"}|} with
  | Ok (P.Cancel "r9") -> ()
  | _ -> Alcotest.fail "cancel parse");
  (match P.command_of_line {|{"stats":true}|} with
  | Ok P.Stats -> ()
  | _ -> Alcotest.fail "stats parse");
  match P.command_of_line {|{"shutdown":true}|} with
  | Ok P.Shutdown -> ()
  | _ -> Alcotest.fail "shutdown parse"

let test_request_errors () =
  let bad =
    [
      "not json";
      "[1,2]";
      {|{"id":"a"}|};
      {|{"kernel":"gsum"}|};
      {|{"id":"","kernel":"gsum"}|};
      {|{"id":"a","kernel":"gsum","source":"int f(){}"}|};
      {|{"id":"a","kernel":"gsum","flavor":"fast"}|};
      {|{"id":"a","kernel":"gsum","levels":0}|};
      {|{"id":"a","kernel":"gsum","milp_nodes":-5}|};
      {|{"id":"a","kernel":"gsum","milp_budget_s":0}|};
      {|{"cancel":true}|};
    ]
  in
  List.iter
    (fun line ->
      match P.command_of_line line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed request %s" line)
    bad

let dummy_completion ?(digest = "") id =
  {
    P.r_digest = (if digest = "" then "digest-" ^ id else digest);
    r_flavor = `Iterative;
    r_levels = 6;
    r_met_target = true;
    r_buffers = 3;
    r_iterations = 1;
    r_phi = 0.5;
    r_certified = 0.625;
    r_measured = None;
  }

let test_event_roundtrip () =
  let events =
    [
      P.Accepted { id = "a"; inflight = 3 };
      P.Rejected { id = "b"; code = "server-busy"; message = "queue full: 8 in flight (limit 8)" };
      P.Status { id = "c"; stage = "iteration 2" };
      P.Done { id = "d\"quoted\""; wall_ms = 12.5; result = dummy_completion "d" };
      P.Done
        {
          id = "m";
          wall_ms = 1.;
          result =
            {
              (dummy_completion "m") with
              P.r_measured =
                Some
                  {
                    P.m_cp = 4.2;
                    m_cycles = 37;
                    m_exec_ns = 155.4;
                    m_luts = 120;
                    m_ffs = 64;
                    m_value_ok = true;
                  };
            };
        };
      P.Failed { id = Some "e"; code = "milp-exhausted"; message = "node budget exhausted" };
      P.Failed { id = None; code = "bad-request"; message = "bad JSON: empty input" };
      P.Cancelled { id = "f" };
      P.Stats_reply
        {
          P.s_served = 10;
          s_errors = 1;
          s_rejected = 2;
          s_cancelled = 3;
          s_inflight = 4;
          s_cache_hits = 20;
          s_cache_misses = 5;
          s_uptime_s = 1.5;
        };
      P.Bye;
    ]
  in
  List.iter
    (fun ev ->
      match P.event_of_line (P.event_to_line ev) with
      | Ok ev' -> check Alcotest.bool ("event roundtrip " ^ P.event_to_line ev) true (ev = ev')
      | Error msg -> Alcotest.failf "event reparse failed: %s" msg)
    events

let test_error_classification () =
  let code exn = fst (P.error_of_exn exn) in
  check Alcotest.string "node budget" "milp-exhausted"
    (code (Failure "buffer MILP node budget exhausted after 20 nodes"));
  check Alcotest.string "wall budget" "milp-exhausted"
    (code (Failure "buffer MILP time budget exhausted"));
  check Alcotest.string "infeasible" "milp-infeasible" (code (Failure "MILP infeasible: bound"));
  check Alcotest.string "other failure" "flow-failed" (code (Failure "something else"));
  check Alcotest.string "unknown kernel" "unknown-kernel" (code Not_found);
  check Alcotest.string "internal" "internal-error" (code Exit);
  let parse_exn = match Hls.Parser.parse "int f(" with _ -> Exit | exception e -> e in
  check Alcotest.string "parse error" "compile-failed" (code parse_exn)

(* ------------------------------------------------------------------ *)
(* server: a thread-safe event collector and wait helper *)

let collector () =
  let mu = Mutex.create () in
  let events = ref [] in
  let emit ev =
    Mutex.lock mu;
    events := ev :: !events;
    Mutex.unlock mu
  in
  let get () =
    Mutex.lock mu;
    let es = List.rev !events in
    Mutex.unlock mu;
    es
  in
  (emit, get)

let wait_for ?(timeout = 10.) ~what get pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if List.exists pred (get ()) then ()
    else if Unix.gettimeofday () -. t0 > timeout then Alcotest.failf "timed out waiting: %s" what
    else begin
      Unix.sleepf 0.002;
      go ()
    end
  in
  go ()

let is_done id = function P.Done { id = id'; _ } -> id' = id | _ -> false
let is_cancelled id = function P.Cancelled { id = id' } -> id' = id | _ -> false

let send t emit line =
  match S.handle_line t ~emit line with
  | `Continue -> ()
  | `Stop -> Alcotest.fail "unexpected stop"

let test_bounded_queue_rejection () =
  let gate = Atomic.make false in
  let runner session (r : P.request) =
    while not (Atomic.get gate) do
      Core.Session.check_cancel session;
      Unix.sleepf 0.001
    done;
    dummy_completion r.P.id
  in
  let t = S.create ~runner { S.default_config with S.jobs = 2; queue_limit = 3 } in
  let emit, get = collector () in
  send t emit (P.request_to_line (req ~kernel:"gsum" "a"));
  send t emit (P.request_to_line (req ~kernel:"gsum" "b"));
  (* a duplicate id is refused while the original is in flight (the
     queue still has room, so this is the duplicate check, not the
     bound) *)
  send t emit (P.request_to_line (req ~kernel:"gsum" "a"));
  wait_for get ~what:"duplicate a rejected" (function
    | P.Rejected { id = "a"; code = "duplicate-id"; _ } -> true
    | _ -> false);
  send t emit (P.request_to_line (req ~kernel:"gsum" "c"));
  (* all three slots taken (workers blocked on the gate): the next
     request must bounce off admission control, deterministically *)
  send t emit (P.request_to_line (req ~kernel:"gsum" "d"));
  wait_for get ~what:"d rejected" (function
    | P.Rejected { id = "d"; code = "server-busy"; _ } -> true
    | _ -> false);
  Atomic.set gate true;
  S.drain t;
  wait_for get ~what:"a done" (is_done "a");
  wait_for get ~what:"b done" (is_done "b");
  wait_for get ~what:"c done" (is_done "c");
  let accepted =
    List.filter (function P.Accepted _ -> true | _ -> false) (get ()) |> List.length
  in
  check Alcotest.int "exactly three admissions" 3 accepted;
  let s = S.stats t in
  check Alcotest.int "both rejections counted" 2 s.P.s_rejected

let test_cancellation_mid_flow () =
  (* the flow itself: a session whose poll flips mid-run must abort the
     iteration loop with Session.Cancelled, not complete *)
  let polls = ref 0 in
  let session =
    Core.Session.make
      ~cancelled:(fun () ->
        incr polls;
        !polls > 1)
      ()
  in
  let g = Hls.Kernels.graph Fixtures.tsum in
  (match Core.Flow.iterative ~config:Fixtures.cheap_flow_config ~session g with
  | _ -> Alcotest.fail "expected cancellation"
  | exception Core.Session.Cancelled -> ());
  check Alcotest.bool "cancellation was polled more than once" true (!polls >= 2)

let test_server_cancellation () =
  let gate = Atomic.make false in
  let runner session (r : P.request) =
    while not (Atomic.get gate) do
      Core.Session.check_cancel session;
      Unix.sleepf 0.001
    done;
    dummy_completion r.P.id
  in
  let t = S.create ~runner { S.default_config with S.jobs = 2; queue_limit = 4 } in
  let emit, get = collector () in
  send t emit (P.request_to_line (req ~kernel:"gsum" "x"));
  send t emit {|{"cancel":true,"id":"x"}|};
  wait_for get ~what:"x cancelled" (is_cancelled "x");
  (* cancelling something unknown is an error event, not a crash *)
  send t emit {|{"cancel":true,"id":"ghost"}|};
  wait_for get ~what:"ghost not-in-flight" (function
    | P.Failed { id = Some "ghost"; code = "not-in-flight"; _ } -> true
    | _ -> false);
  (* the server still serves after a cancellation *)
  Atomic.set gate true;
  send t emit (P.request_to_line (req ~kernel:"gsum" "y"));
  wait_for get ~what:"y done" (is_done "y");
  S.drain t;
  let s = S.stats t in
  check Alcotest.int "one cancelled" 1 s.P.s_cancelled;
  check Alcotest.int "one served" 1 s.P.s_served

let test_poisoned_request_keeps_serving () =
  (* a request whose MILP blows its budget (the fuzz oracle's Failure
     strings) must come back as a structured error and leave the daemon
     fully operational — likewise a malformed line *)
  let runner _session (r : P.request) =
    if String.length r.P.id >= 6 && String.sub r.P.id 0 6 = "poison" then
      failwith "buffer MILP node budget exhausted after 20 nodes"
    else dummy_completion r.P.id
  in
  let t = S.create ~runner { S.default_config with S.jobs = 1; queue_limit = 4 } in
  let emit, get = collector () in
  send t emit (P.request_to_line (req ~kernel:"gsum" "poison-1"));
  wait_for get ~what:"poison classified" (function
    | P.Failed { id = Some "poison-1"; code = "milp-exhausted"; _ } -> true
    | _ -> false);
  send t emit "{this is not json";
  wait_for get ~what:"bad line answered" (function
    | P.Failed { id = None; code = "bad-request"; _ } -> true
    | _ -> false);
  send t emit (P.request_to_line (req ~kernel:"gsum" "ok-1"));
  wait_for get ~what:"server still serves" (is_done "ok-1");
  S.drain t;
  let s = S.stats t in
  check Alcotest.int "served despite the poison" 1 s.P.s_served;
  check Alcotest.int "both failures counted" 2 s.P.s_errors;
  check Alcotest.int "nothing left in flight" 0 s.P.s_inflight

(* ------------------------------------------------------------------ *)
(* determinism: concurrently served digests == serial one-shot digests *)

let serial_digest src flavor =
  let g = Hls.Compile.compile (Hls.Parser.parse src) in
  let config = Fixtures.cheap_flow_config in
  let outcome =
    match flavor with
    | `Iterative -> Core.Flow.iterative ~config g
    | `Baseline -> Core.Flow.baseline ~config g
  in
  P.outcome_digest outcome

let test_concurrent_digests_deterministic () =
  let shapes =
    List.concat_map
      (fun k ->
        List.map
          (fun flavor -> (k.Hls.Kernels.source, flavor))
          [ `Iterative; `Baseline ])
      Fixtures.tiny_kernels
  in
  let expected = List.map (fun (src, fl) -> serial_digest src fl) shapes in
  (* each shape twice, all in flight together on four domains *)
  let requests =
    List.concat (List.init 2 (fun round ->
        List.mapi
          (fun i (src, flavor) ->
            (i, req ~source:src ~flavor (Printf.sprintf "q%d-%d" round i)))
          shapes))
  in
  let t =
    S.create
      {
        S.default_config with
        S.jobs = 4;
        queue_limit = List.length requests;
        flow = Fixtures.cheap_flow_config;
      }
  in
  let emit, get = collector () in
  List.iter (fun (_, r) -> send t emit (P.request_to_line r)) requests;
  S.drain t;
  List.iter
    (fun (i, (r : P.request)) ->
      wait_for get ~what:(r.P.id ^ " done") (is_done r.P.id);
      let digest =
        List.find_map
          (function
            | P.Done { id; result; _ } when id = r.P.id -> Some result.P.r_digest
            | _ -> None)
          (get ())
        |> Option.get
      in
      check Alcotest.string (r.P.id ^ " digest matches serial one-shot") (List.nth expected i)
        digest)
    requests

(* ------------------------------------------------------------------ *)
(* transports *)

let test_serve_channels_pipe () =
  let r_in, w_in = Unix.pipe () and r_out, w_out = Unix.pipe () in
  let t =
    S.create
      ~runner:(fun _ r -> dummy_completion r.P.id)
      { S.default_config with S.jobs = 1; queue_limit = 4 }
  in
  let server =
    Domain.spawn (fun () ->
        let ic = Unix.in_channel_of_descr r_in and oc = Unix.out_channel_of_descr w_out in
        S.serve_channels t ic oc)
  in
  let coc = Unix.out_channel_of_descr w_in and cic = Unix.in_channel_of_descr r_out in
  let weird_id = "id \"with\" newline\nand tab\t!" in
  output_string coc (P.request_to_line (req ~kernel:"gsum" weird_id) ^ "\n");
  output_string coc "garbage line\n";
  output_string coc "{\"stats\":true}\n";
  flush coc;
  close_out coc;
  (* client EOF: the daemon drains and byes (the server does not close
     our read end, so read up to the bye, not to EOF) *)
  let rec read_until_bye acc =
    match input_line cic with
    | exception End_of_file -> Alcotest.fail "connection closed before bye"
    | line -> (
      match P.event_of_line line with
      | Ok P.Bye -> List.rev (P.Bye :: acc)
      | Ok ev -> read_until_bye (ev :: acc)
      | Error msg -> Alcotest.failf "bad event on the wire: %s in %s" msg line)
  in
  let events = read_until_bye [] in
  Domain.join server;
  check Alcotest.bool "accepted the weird id" true
    (List.exists (function P.Accepted { id; _ } -> id = weird_id | _ -> false) events);
  check Alcotest.bool "done for the weird id, digest intact" true
    (List.exists
       (function
         | P.Done { id; result; _ } ->
           id = weird_id && result.P.r_digest = "digest-" ^ weird_id
         | _ -> false)
       events);
  check Alcotest.bool "bad line answered in-band" true
    (List.exists
       (function P.Failed { id = None; code = "bad-request"; _ } -> true | _ -> false)
       events);
  check Alcotest.bool "stats answered" true
    (List.exists (function P.Stats_reply _ -> true | _ -> false) events);
  match List.rev events with
  | P.Bye :: _ -> ()
  | _ -> Alcotest.fail "expected a final bye"

let wait_for_socket path =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Unix.close fd
    | exception Unix.Unix_error _ ->
      Unix.close fd;
      if Unix.gettimeofday () -. t0 > 10. then Alcotest.fail "socket never came up"
      else begin
        Unix.sleepf 0.01;
        go ()
      end
  in
  go ()

let test_socket_loadgen_end_to_end () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "serve.sock" in
  let t =
    S.create
      ~runner:(fun _ r -> dummy_completion r.P.id)
      { S.default_config with S.jobs = 2; queue_limit = 8 }
  in
  let server = Domain.spawn (fun () -> S.serve_socket t path) in
  wait_for_socket path;
  let requests = List.init 25 (fun i -> req ~kernel:"gsum" (Printf.sprintf "s%d" i)) in
  let res = Serve.Loadgen.run ~window:4 ~socket:path requests in
  check Alcotest.int "all completed" 25 res.Serve.Loadgen.l_completed;
  check Alcotest.int "no errors" 0 res.Serve.Loadgen.l_errors;
  check Alcotest.int "no rejections (window <= queue limit)" 0 res.Serve.Loadgen.l_rejected;
  check Alcotest.int "a digest per request" 25 (List.length res.Serve.Loadgen.l_digests);
  List.iter
    (fun (id, d) -> check Alcotest.string ("digest of " ^ id) ("digest-" ^ id) d)
    res.Serve.Loadgen.l_digests;
  check Alcotest.bool "latencies measured" true (res.Serve.Loadgen.l_p99_ms >= res.Serve.Loadgen.l_p50_ms);
  Serve.Loadgen.shutdown ~socket:path;
  Domain.join server;
  check Alcotest.bool "socket unlinked after shutdown" false (Sys.file_exists path)

(* ------------------------------------------------------------------ *)
(* session-scoped cache handles (the Cache.Control shim satellite) *)

let test_cache_session_memo () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let s = Cache.Session.of_dir dir in
  let calls = ref 0 in
  let f () =
    incr calls;
    [ 1; 2; 3 ]
  in
  check (Alcotest.list Alcotest.int) "computed" [ 1; 2; 3 ]
    (Cache.Session.memo s ~kind:"t" ~key:"k" f);
  check (Alcotest.list Alcotest.int) "served from the store" [ 1; 2; 3 ]
    (Cache.Session.memo s ~kind:"t" ~key:"k" f);
  check Alcotest.int "second call did not recompute" 1 !calls;
  (* a second session over the same store shares the artifacts *)
  let s2 = Cache.Session.of_store (Option.get (Cache.Session.store s)) in
  check (Alcotest.list Alcotest.int) "shared" [ 1; 2; 3 ]
    (Cache.Session.memo s2 ~kind:"t" ~key:"k" f);
  check Alcotest.int "still one compute" 1 !calls;
  (* the disabled session always computes *)
  let d = Cache.Session.disabled in
  check Alcotest.bool "disabled" false (Cache.Session.enabled d);
  ignore (Cache.Session.memo d ~kind:"t" ~key:"k" f);
  ignore (Cache.Session.memo d ~kind:"t" ~key:"k" f);
  check Alcotest.int "computed every time" 3 !calls

let test_control_is_a_shim () =
  (* with no process-global store enabled, the shim hands out the
     disabled session and memo degrades to plain computation *)
  check Alcotest.bool "no ambient store in tests" true (Cache.Control.active () = None);
  check Alcotest.bool "shim session disabled" false
    (Cache.Session.enabled (Cache.Control.session ()));
  let session = Core.Session.ambient () in
  check Alcotest.bool "ambient flow session has no cache" false
    (Cache.Session.enabled session.Core.Session.cache);
  (* budget overrides flow through Session.milp_config *)
  let base = Core.Flow.default_config.Core.Flow.milp in
  let s = Core.Session.make ~milp_nodes:123 ~milp_budget_s:4.5 () in
  let cfg = Core.Session.milp_config s base in
  check Alcotest.int "node budget overridden" 123 cfg.Buffering.Formulation.node_limit;
  check (Alcotest.float 1e-9) "wall budget overridden" 4.5 cfg.Buffering.Formulation.time_limit;
  let cfg' = Core.Session.milp_config (Core.Session.make ()) base in
  check Alcotest.int "no override keeps the config" base.Buffering.Formulation.node_limit
    cfg'.Buffering.Formulation.node_limit

let suite =
  [
    Alcotest.test_case "json: value roundtrips" `Quick test_json_roundtrip;
    Alcotest.test_case "json: escaping, u-escapes, surrogate pairs" `Quick test_json_escapes;
    Alcotest.test_case "json: malformed input rejected" `Quick test_json_rejects;
    Alcotest.test_case "protocol: request roundtrips incl escaping" `Quick test_request_roundtrip;
    Alcotest.test_case "protocol: malformed requests rejected" `Quick test_request_errors;
    Alcotest.test_case "protocol: event roundtrips" `Quick test_event_roundtrip;
    Alcotest.test_case "protocol: exception classification" `Quick test_error_classification;
    Alcotest.test_case "server: bounded queue rejects deterministically" `Quick
      test_bounded_queue_rejection;
    Alcotest.test_case "flow: cancellation aborts mid-iteration" `Quick test_cancellation_mid_flow;
    Alcotest.test_case "server: cancel in flight, keep serving" `Quick test_server_cancellation;
    Alcotest.test_case "server: poisoned request leaves it serving" `Quick
      test_poisoned_request_keeps_serving;
    Alcotest.test_case "server: concurrent digests == serial one-shot" `Slow
      test_concurrent_digests_deterministic;
    Alcotest.test_case "transport: stdio pipe end to end" `Quick test_serve_channels_pipe;
    Alcotest.test_case "transport: socket + loadgen end to end" `Quick
      test_socket_loadgen_end_to_end;
    Alcotest.test_case "cache: session memo and shared store" `Quick test_cache_session_memo;
    Alcotest.test_case "cache: Control is a thin shim over Session" `Quick test_control_is_a_shim;
  ]
