module G = Dataflow.Graph
module K = Dataflow.Unit_kind
module A = Dataflow.Analysis
module Ops = Dataflow.Ops

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Ops *)

let test_ops_eval () =
  check Alcotest.int "add" 7 (Ops.eval Ops.Add [ 3; 4 ]);
  check Alcotest.int "sub" 6 (Ops.eval Ops.Sub [ 10; 4 ]);
  check Alcotest.int "mul" 12 (Ops.eval Ops.Mul [ 3; 4 ]);
  check Alcotest.int "shl" 24 (Ops.eval Ops.Shl [ 3; 3 ]);
  check Alcotest.int "lshr" 2 (Ops.eval Ops.Lshr [ 8; 2 ]);
  check Alcotest.int "and" 4 (Ops.eval Ops.And_ [ 6; 12 ]);
  check Alcotest.int "or" 14 (Ops.eval Ops.Or_ [ 6; 12 ]);
  check Alcotest.int "xor" 10 (Ops.eval Ops.Xor_ [ 6; 12 ]);
  check Alcotest.int "lt true" 1 (Ops.eval (Ops.Icmp Ops.Lt) [ 3; 4 ]);
  check Alcotest.int "lt false" 0 (Ops.eval (Ops.Icmp Ops.Lt) [ 4; 4 ]);
  check Alcotest.int "le" 1 (Ops.eval (Ops.Icmp Ops.Le) [ 4; 4 ]);
  check Alcotest.int "ge" 1 (Ops.eval (Ops.Icmp Ops.Ge) [ 4; 4 ]);
  check Alcotest.int "select t" 9 (Ops.eval Ops.Select [ 1; 9; 5 ]);
  check Alcotest.int "select f" 5 (Ops.eval Ops.Select [ 0; 9; 5 ])

let test_ops_arity () =
  check Alcotest.int "binary" 2 (Ops.arity Ops.Add);
  check Alcotest.int "select" 3 (Ops.arity Ops.Select)

let test_ops_latency () =
  check Alcotest.int "mul pipelined" 4 (Ops.default_latency Ops.Mul);
  check Alcotest.int "add comb" 0 (Ops.default_latency Ops.Add)

let test_ops_bad_arity () =
  Alcotest.check_raises "add/1" (Invalid_argument "Ops.eval: add applied to 1 args") (fun () ->
      ignore (Ops.eval Ops.Add [ 1 ]))

(* ------------------------------------------------------------------ *)
(* Unit kinds *)

let test_kind_arities () =
  check Alcotest.int "fork out" 3 (K.out_arity (K.Fork 3));
  check Alcotest.int "fork in" 1 (K.in_arity (K.Fork 3));
  check Alcotest.int "join in" 4 (K.in_arity (K.Join 4));
  check Alcotest.int "mux in" 3 (K.in_arity (K.Mux 2));
  check Alcotest.int "branch out" 2 (K.out_arity K.Branch);
  check Alcotest.int "cmerge out" 2 (K.out_arity (K.Control_merge 2));
  check Alcotest.int "store in" 2 (K.in_arity (K.Store { mem = "a" }));
  check Alcotest.int "entry in" 0 (K.in_arity K.Entry)

let test_kind_latency () =
  check Alcotest.int "opaque buffer" 1 (K.latency (K.Buffer { transparent = false; slots = 2 }));
  check Alcotest.int "transparent buffer" 0 (K.latency (K.Buffer { transparent = true; slots = 1 }));
  check Alcotest.int "mul" 4 (K.latency (K.operator Ops.Mul))

(* ------------------------------------------------------------------ *)
(* Graph *)

let test_graph_build () =
  let g, _, _, _, _ = Fixtures.fig2 () in
  check Alcotest.bool "valid" true (Result.is_ok (G.validate g));
  check Alcotest.int "channels" 16 (G.n_channels g)

let test_graph_unconnected () =
  let g = G.create "bad" in
  let _ = G.add_unit g (K.Fork 2) in
  match G.validate g with
  | Ok () -> Alcotest.fail "expected invalid"
  | Error msg -> check Alcotest.bool "mentions port" true (String.length msg > 0)

let test_graph_double_connect () =
  let g = G.create "dup" in
  let a = G.add_unit g ~width:0 K.Entry in
  let b = G.add_unit g ~width:0 K.Exit in
  let c = G.add_unit g ~width:0 K.Exit in
  ignore (G.connect g ~src:a ~src_port:0 ~dst:b ~dst_port:0);
  Alcotest.check_raises "output reuse"
    (Invalid_argument "connect: output entry_0.0 already connected") (fun () ->
      ignore (G.connect g ~src:a ~src_port:0 ~dst:c ~dst_port:0))

let test_graph_buffers () =
  let g, back = Fixtures.loop () in
  (match G.buffer g back with
  | Some { G.transparent = false; slots = 2 } -> ()
  | _ -> Alcotest.fail "expected opaque buffer on back edge");
  check Alcotest.int "one buffered channel" 1 (List.length (G.buffered_channels g));
  G.clear_buffers g;
  check Alcotest.int "cleared" 0 (List.length (G.buffered_channels g))

let test_graph_copy_independent () =
  let g, back = Fixtures.loop () in
  let g2 = G.copy g in
  G.set_buffer g back None;
  check Alcotest.bool "copy keeps buffer" true (G.buffer g2 back <> None);
  check Alcotest.bool "original cleared" true (G.buffer g back = None)

let test_graph_preds_succs () =
  let g, fork, shift, add, _branch = Fixtures.fig2 () in
  let fork_succs = List.map snd (G.succs g fork) in
  check Alcotest.bool "fork feeds shift" true (List.mem shift fork_succs);
  check Alcotest.bool "fork feeds add" true (List.mem add fork_succs);
  let add_preds = List.map snd (G.preds g add) in
  check Alcotest.bool "add fed by shift" true (List.mem shift add_preds)

(* ------------------------------------------------------------------ *)
(* Analysis *)

let test_sccs_acyclic () =
  let g, _, _, _, _ = Fixtures.fig2 () in
  check Alcotest.int "no cyclic scc" 0 (List.length (A.cyclic_sccs g))

let test_sccs_loop () =
  let g, _ = Fixtures.loop () in
  let cyc = A.cyclic_sccs g in
  check Alcotest.int "one cyclic scc" 1 (List.length cyc);
  (* merge, add, fork, branch and cmp-side units are in the loop *)
  check Alcotest.bool "scc nontrivial" true (List.length (List.hd cyc) >= 4)

let test_back_edges () =
  let g, back = Fixtures.loop () in
  let be = A.back_edges g in
  check Alcotest.int "single back edge" 1 (List.length be);
  check Alcotest.int "is the loop edge" back (List.hd be)

let test_back_edges_acyclic () =
  let g, _, _, _, _ = Fixtures.fig2 () in
  check Alcotest.int "none" 0 (List.length (A.back_edges g))

let test_simple_cycles () =
  let g, _ = Fixtures.loop () in
  let cycles = A.simple_cycles g in
  (* merge -> add -> fork -> branch -> merge (4 channels) and the variant
     through cmp (5 channels) *)
  check Alcotest.int "two simple cycles" 2 (List.length cycles);
  let lengths = List.sort compare (List.map List.length cycles) in
  check Alcotest.(list int) "cycle lengths" [ 4; 5 ] lengths

let test_shortest_path () =
  let g, fork, shift, _add, branch = Fixtures.fig2 () in
  (match A.shortest_path g ~src:fork ~dst:branch with
  | Some p -> check Alcotest.int "fork->branch shortest goes via cmp" 2 (List.length p)
  | None -> Alcotest.fail "expected path");
  match A.shortest_path g ~src:shift ~dst:fork with
  | None -> ()
  | Some _ -> Alcotest.fail "no backward path expected"

let test_shortest_path_self () =
  let g, fork, _, _, _ = Fixtures.fig2 () in
  check Alcotest.bool "self path empty" true (A.shortest_path g ~src:fork ~dst:fork = Some [])

(* merge -> fork, then three parallel channels fork -> merge: exactly
   three simple cycles, one per return channel *)
let three_cycle_graph () =
  let g = G.create "three-cycles" in
  let m = G.add_unit g ~width:8 (K.Merge 3) in
  let f = G.add_unit g ~width:8 (K.Fork 3) in
  ignore (G.connect g ~src:m ~src_port:0 ~dst:f ~dst_port:0);
  for p = 0 to 2 do
    ignore (G.connect g ~src:f ~src_port:p ~dst:m ~dst_port:p)
  done;
  (match G.validate g with Ok () -> () | Error e -> failwith e);
  (g, m)

let test_simple_cycles_limit () =
  let g, _ = three_cycle_graph () in
  check Alcotest.int "all three without a cap" 3 (List.length (A.simple_cycles g));
  (* the cap cuts enumeration off at exactly [limit] cycles *)
  check Alcotest.int "capped at two" 2 (List.length (A.simple_cycles ~limit:2 g));
  (* a cap equal to the cycle count is not an under-count *)
  check Alcotest.int "cap hit exactly" 3 (List.length (A.simple_cycles ~limit:3 g))

let test_simple_cycles_self_loop () =
  let g = G.create "self" in
  let entry = G.add_unit g ~width:0 K.Entry in
  let sink1 = G.add_unit g K.Sink in
  let f = G.add_unit g ~width:8 (K.Fork 2) in
  let sink2 = G.add_unit g K.Sink in
  ignore (G.connect g ~src:entry ~src_port:0 ~dst:sink1 ~dst_port:0);
  let self = G.connect g ~src:f ~src_port:0 ~dst:f ~dst_port:0 in
  ignore (G.connect g ~src:f ~src_port:1 ~dst:sink2 ~dst_port:0);
  check
    Alcotest.(list (list int))
    "the self-loop is a one-channel cycle" [ [ self ] ] (A.simple_cycles g)

let test_shortest_path_self_on_cycle () =
  (* the [src = dst -> Some []] contract holds even when a non-trivial
     cycle through the unit exists *)
  let g, m = three_cycle_graph () in
  check Alcotest.bool "Some [] on a cyclic unit" true (A.shortest_path g ~src:m ~dst:m = Some [])

let test_topo_order () =
  let g, _, _, _, _ = Fixtures.fig2 () in
  let order = A.topo_order g in
  check Alcotest.int "all units" (G.n_units g) (List.length order);
  let pos = Hashtbl.create 16 in
  List.iteri (fun i u -> Hashtbl.replace pos u i) order;
  G.iter_channels g (fun c ->
      check Alcotest.bool "edge respects order" true
        (Hashtbl.find pos c.G.src < Hashtbl.find pos c.G.dst))

let test_reachable () =
  let g, fork, _, _, branch = Fixtures.fig2 () in
  let r = A.reachable g fork in
  check Alcotest.bool "branch reachable from fork" true r.(branch);
  let r2 = A.reachable g branch in
  check Alcotest.bool "fork not reachable from branch" false r2.(fork)

(* Random DAG property: topo_order is consistent and complete. *)
let prop_topo_random_dag =
  QCheck.Test.make ~name:"topo order on random DAGs" ~count:50
    QCheck.(pair (int_range 2 20) (int_range 0 100))
    (fun (n, seed) ->
      let rng = Support.Rng.create seed in
      let g = G.create "rand" in
      (* n independent chains source -> buffer* -> sink of random length *)
      for _ = 1 to n do
        let src = G.add_unit g ~width:0 K.Source in
        let len = Support.Rng.int rng 5 in
        let last = ref src in
        for _ = 1 to len do
          let b = G.add_unit g ~width:0 (K.Buffer { transparent = false; slots = 2 }) in
          ignore (G.connect g ~src:!last ~src_port:0 ~dst:b ~dst_port:0);
          last := b
        done;
        let snk = G.add_unit g ~width:0 K.Sink in
        ignore (G.connect g ~src:!last ~src_port:0 ~dst:snk ~dst_port:0)
      done;
      let order = A.topo_order g in
      List.length order = G.n_units g)

let test_dot_output () =
  let g, _ = Fixtures.loop () in
  let dot = Dataflow.Dot.to_string g in
  let contains needle =
    let n = String.length needle and h = String.length dot in
    let rec go i = i + n <= h && (String.sub dot i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "digraph" true (contains "digraph");
  check Alcotest.bool "buffer label" true (contains "B2");
  check Alcotest.bool "edges" true (contains "->")

let test_marked_back_edges () =
  let g, back = Fixtures.loop () in
  check (Alcotest.list Alcotest.int) "none marked by default" [] (G.marked_back_edges g);
  G.set_back_edge g back;
  check (Alcotest.list Alcotest.int) "marked" [ back ] (G.marked_back_edges g);
  (* copies keep the mark *)
  let g2 = G.copy g in
  check (Alcotest.list Alcotest.int) "copied" [ back ] (G.marked_back_edges g2)

let suite =
  [
    ("ops eval", `Quick, test_ops_eval);
    ("ops arity", `Quick, test_ops_arity);
    ("ops latency", `Quick, test_ops_latency);
    ("ops bad arity", `Quick, test_ops_bad_arity);
    ("kind arities", `Quick, test_kind_arities);
    ("kind latency", `Quick, test_kind_latency);
    ("graph build fig2", `Quick, test_graph_build);
    ("graph unconnected detected", `Quick, test_graph_unconnected);
    ("graph double connect", `Quick, test_graph_double_connect);
    ("graph buffer annotations", `Quick, test_graph_buffers);
    ("graph copy independence", `Quick, test_graph_copy_independent);
    ("graph preds/succs", `Quick, test_graph_preds_succs);
    ("sccs acyclic", `Quick, test_sccs_acyclic);
    ("sccs loop", `Quick, test_sccs_loop);
    ("back edges loop", `Quick, test_back_edges);
    ("back edges acyclic", `Quick, test_back_edges_acyclic);
    ("simple cycles", `Quick, test_simple_cycles);
    ("shortest path", `Quick, test_shortest_path);
    ("shortest path self", `Quick, test_shortest_path_self);
    ("simple cycles limit cap", `Quick, test_simple_cycles_limit);
    ("simple cycles self loop", `Quick, test_simple_cycles_self_loop);
    ("shortest path self on cycle", `Quick, test_shortest_path_self_on_cycle);
    ("topo order", `Quick, test_topo_order);
    ("reachable", `Quick, test_reachable);
    qtest prop_topo_random_dag;
    ("dot output", `Quick, test_dot_output);
    ("marked back edges", `Quick, test_marked_back_edges);
  ]
