(* The fuzzer's own contract: generator determinism and well-formedness,
   minimizer behaviour, mutation soundness, and the oracle invariants on
   pinned representative seeds (the permanent regressions of the classes
   triaged while the fuzzer was built). *)

open Alcotest

(* a small, fast configuration for tests that run whole flows *)
let quick_gen =
  {
    Hls.Generate.default_cfg with
    Hls.Generate.max_constructs = 1;
    max_depth = 1;
    max_body_stmts = 2;
  }

let test_generator_deterministic () =
  List.iter
    (fun seed ->
      let a = Hls.Generate.generate seed and b = Hls.Generate.generate seed in
      check string "source" a.Hls.Generate.source b.Hls.Generate.source;
      check bool "memories" true (a.Hls.Generate.memories = b.Hls.Generate.memories);
      check bool "args" true (a.Hls.Generate.args = b.Hls.Generate.args);
      check bool "features" true (a.Hls.Generate.features = b.Hls.Generate.features))
    [ 0; 1; 7; 42; 1000 ]

let test_generator_well_formed () =
  for seed = 0 to 39 do
    let p = Hls.Generate.generate seed in
    let name = Printf.sprintf "seed %d" seed in
    (* round-trip: pp output re-parses to the identical AST *)
    let reparsed = Hls.Parser.parse p.Hls.Generate.source in
    check bool (name ^ " round-trips") true (reparsed = p.Hls.Generate.func);
    (* the reference interpreter accepts it (and terminates) *)
    let v =
      Hls.Interp.run p.Hls.Generate.func ~args:p.Hls.Generate.args
        ~memories:(Hls.Generate.fresh_memories p)
    in
    ignore v;
    (* it compiles to a valid circuit *)
    let g = Hls.Compile.compile ~args:p.Hls.Generate.args p.Hls.Generate.func in
    match Dataflow.Graph.validate g with
    | Ok () -> ()
    | Error m -> failf "%s: invalid graph: %s" name m
  done

(* same seeds, any pool width: byte-identical campaign statistics *)
let test_campaign_deterministic_across_jobs () =
  let campaign jobs =
    Support.Pool.run ~jobs (fun pool ->
        Fuzz.Harness.run ~gen_cfg:quick_gen ~mutations:1 ~minimize:false ~pool ~start_seed:0
          ~seeds:4 ())
  in
  let strip r = { r.Fuzz.Harness.stats with Fuzz.Harness.s_duration_s = 0. } in
  let a = campaign 1 and b = campaign 2 in
  check string "stats agree at any width"
    (Fuzz.Harness.stats_to_json (strip a))
    (Fuzz.Harness.stats_to_json (strip b));
  check int "no violations" 0 a.Fuzz.Harness.stats.Fuzz.Harness.s_violations

let test_ddmin () =
  let pred xs = List.mem 7 xs in
  check (list int) "singleton" [ 7 ] (Fuzz.Minimize.ddmin pred [ 1; 2; 7; 4; 5; 6; 9; 8 ]);
  check (list int) "already minimal" [ 7 ] (Fuzz.Minimize.ddmin pred [ 7 ]);
  check (list int) "unsatisfied input unchanged" [ 1; 2 ] (Fuzz.Minimize.ddmin pred [ 1; 2 ])

(* the minimizer shrinks a seeded known-failure to the pinned size *)
let test_minimizer_shrinks () =
  let rec has_store = function
    | [] -> false
    | Hls.Ast.Store _ :: _ -> true
    | Hls.Ast.If (_, t, e) :: rest -> has_store t || has_store e || has_store rest
    | Hls.Ast.While (_, b) :: rest | Hls.Ast.For (_, _, _, b) :: rest ->
      has_store b || has_store rest
    | _ :: rest -> has_store rest
  in
  (* find a seeded program containing a store inside control flow *)
  let rec pick seed =
    let p = Hls.Generate.generate seed in
    if has_store p.Hls.Generate.func.Hls.Ast.body && Fuzz.Minimize.size p.Hls.Generate.func > 6
    then p
    else pick (seed + 1)
  in
  let p = pick 0 in
  let pred (f : Hls.Ast.func) = has_store f.Hls.Ast.body in
  let small = Fuzz.Minimize.shrink_func pred p.Hls.Generate.func in
  check bool "failure preserved" true (has_store small.Hls.Ast.body);
  check bool
    (Printf.sprintf "shrunk %d -> %d statements" (Fuzz.Minimize.size p.Hls.Generate.func)
       (Fuzz.Minimize.size small))
    true
    (Fuzz.Minimize.size small <= 2)

(* the harness visibly reports a planted violation and minimizes it *)
let test_harness_reports_planted_failure () =
  let p = Hls.Generate.generate 3 in
  (* tamper: the recorded source disagrees with the AST *)
  let bad = { p with Hls.Generate.source = "int other() { return 0; }" } in
  let r = Fuzz.Oracle.check_program ~mutations:0 bad in
  check bool "parse-roundtrip fires" true
    (List.exists (fun c -> c.Fuzz.Oracle.kind = "parse-roundtrip") r.Fuzz.Oracle.violations)

let test_mutations_additive () =
  let g = Dataflow.Graph.copy (Hls.Kernels.graph (Hls.Kernels.by_name "gsum")) in
  ignore (Core.Flow.seed_back_edges g);
  let before = List.length (Dataflow.Graph.buffered_channels g) in
  let rng = Support.Rng.create 5 in
  let muts = Fuzz.Mutate.random rng g 6 in
  check int "draw count" 6 (List.length muts);
  let gm = Fuzz.Mutate.apply g muts in
  (* the original graph is untouched *)
  check int "input untouched" before (List.length (Dataflow.Graph.buffered_channels g));
  (* capacity only grows, opaque buffers stay opaque *)
  Dataflow.Graph.iter_channels g (fun c ->
      let cid = c.Dataflow.Graph.cid in
      match (c.Dataflow.Graph.buffer, Dataflow.Graph.buffer gm cid) with
      | Some b, Some b' ->
        check bool "slots grow" true (b'.Dataflow.Graph.slots >= b.Dataflow.Graph.slots);
        if not b.Dataflow.Graph.transparent then
          check bool "opaque stays" false b'.Dataflow.Graph.transparent
      | Some _, None -> failf "mutation removed a buffer on c%d" cid
      | None, _ -> ());
  (* and the mutant still simulates to the same exit value *)
  let k = Hls.Kernels.by_name "gsum" in
  let a = Sim.Elastic.run ~memories:(k.Hls.Kernels.mems ()) g in
  let b = Sim.Elastic.run ~memories:(k.Hls.Kernels.mems ()) gm in
  check bool "base finishes" true a.Sim.Elastic.finished;
  check bool "mutant finishes" true b.Sim.Elastic.finished;
  check bool "same exit value" true (a.Sim.Elastic.exit_value = b.Sim.Elastic.exit_value)

(* Pinned regression seeds, one per class triaged while building the
   fuzzer (under the default generator configuration):
   - seed 9: scalar parameter — the circuit must be compiled with the
     program's [args] or the simulator computes with the default 0;
   - seed 0: nested loops — the per-SCC steady-state bound must not be
     applied to inner-loop channels (choice breaks rate equalization);
   - seed 18: loop-free program — the acyclic path (no SCCs, phi = 1);
   - seed 22: continue inside a for body;
   - seeds 652, 987: arithmetic on two 1-bit comparison results must be
     promoted to the datapath width (a 1-bit subtractor computes
     0 - 1 = 1);
   - seeds 230, 949: Howard plateau — policy iteration must not
     oscillate between equal-ratio cycles (deterministic cycle anchors
     + Karp-confirmed stall recovery);
   - seed 107: netlist elaboration must compute operators at the result
     width — a width-8 multiplier fed by two 1-bit comparison outputs
     indexed its operand rows out of bounds;
   - seed 987 (again, post-narrowing): a Control_merge with one live
     input rewrites to Fork2 + Consts; the fork must take the live
     input's (possibly zero) width, not the cmerge's index width, or
     fork elaboration reads data bits past the control channel (direct
     probe in test_absint.ml). *)
let test_pinned_regression_seeds () =
  List.iter
    (fun seed ->
      let r = Fuzz.Oracle.check ~mutations:1 seed in
      List.iter
        (fun (c : Fuzz.Oracle.check) ->
          failf "seed %d: unexpected %s/%s: %s" seed c.Fuzz.Oracle.flavor c.Fuzz.Oracle.kind
            c.Fuzz.Oracle.detail)
        r.Fuzz.Oracle.violations)
    [ 9; 0; 18; 22; 652; 987; 230; 949; 107 ]

(* the width-promotion bug behind seeds 652/987, as a direct probe *)
let test_cmp_arith_width () =
  let b = [ ("b", [| 196; 195; 203; 156; 163; 141; 175; 58 |]) ] in
  List.iter
    (fun src ->
      let f = Hls.Parser.parse src in
      let mems () = List.map (fun (n, a) -> (n, Array.copy a)) b in
      let want = Hls.Interp.run f ~args:[] ~memories:(mems ()) in
      let g = Hls.Compile.compile ~args:[] f in
      let r = Sim.Elastic.run ~memories:(mems ()) g in
      check bool (src ^ " finishes") true r.Sim.Elastic.finished;
      check (option int) src (Some want) r.Sim.Elastic.exit_value)
    [
      "int f(int b[8]) { int x = 17; return (!x - (x < b[5])); }";
      "int f(int b[8]) { int x = 17; return ((x == 3) - (x < b[5])); }";
      "int f(int b[8]) { int x = 17; return ((x < 15) << ((x > 3) + (x > 4))); }";
      "int f(int b[8]) { int x = 17; return ((x > 3) * (x > 4) - 2); }";
    ]

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* satellite: front-end diagnostics carry line/column positions *)
let test_parser_positions () =
  (match Hls.Parser.parse "int f(int a[4]) {\n  int x = ;\n  return x;\n}" with
  | _ -> fail "expected a parse error"
  | exception Hls.Parser.Error (msg, pos) ->
    check int "line" 2 pos.Hls.Lexer.line;
    check int "column" 11 pos.Hls.Lexer.col;
    check bool "message mentions the token" true (contains ~affix:";" msg));
  (match Hls.Lexer.tokenize "int f() {\n  int x = 3 $ 4;\n}" with
  | _ -> fail "expected a lexer error"
  | exception Hls.Lexer.Error (_, pos) ->
    check int "lexer line" 2 pos.Hls.Lexer.line;
    check int "lexer column" 13 pos.Hls.Lexer.col);
  match Hls.Parser.parse "int f() { return 1 }" with
  | _ -> fail "expected a parse error"
  | exception e -> (
    match Hls.Parser.error_message e with
    | Some rendered ->
      check bool "rendered with position" true (contains ~affix:"line 1, column" rendered)
    | None -> fail "error_message recognises parser errors")

let suite =
  [
    test_case "generator is deterministic" `Quick test_generator_deterministic;
    test_case "generated programs parse, interpret, compile" `Quick test_generator_well_formed;
    test_case "campaign stats identical at any pool width" `Slow
      test_campaign_deterministic_across_jobs;
    test_case "ddmin shrinks to the core" `Quick test_ddmin;
    test_case "minimizer shrinks a seeded failure" `Quick test_minimizer_shrinks;
    test_case "oracle reports a planted violation" `Quick test_harness_reports_planted_failure;
    test_case "DFG mutations are additive and equivalent" `Quick test_mutations_additive;
    test_case "pinned regression seeds stay clean" `Slow test_pinned_regression_seeds;
    test_case "cmp-fed arithmetic is width-promoted" `Quick test_cmp_arith_width;
    test_case "diagnostics carry source positions" `Quick test_parser_positions;
  ]
