(* Shared micro-circuits used across test suites. *)

module G = Dataflow.Graph
module K = Dataflow.Unit_kind

(* The paper's Figure 2 shape: fork feeding a shifter and (directly) a
   branch condition path; shifter feeds an adder; adder feeds the branch.
   Here the branch condition comes from a comparison of the forked value. *)
let fig2 () =
  let g = G.create "fig2" in
  let entry = G.add_unit g ~bb:0 ~width:0 K.Entry in
  let src = G.add_unit g ~bb:0 ~width:8 ~label:"in" (K.Const 5) in
  let fork = G.add_unit g ~bb:0 ~width:8 ~label:"F" (K.Fork 3) in
  let shamt = G.add_unit g ~bb:0 ~width:8 ~label:"shamt" (K.Const 1) in
  let cshift = G.add_unit g ~bb:0 ~width:0 ~label:"trig" (K.Fork 2) in
  let shift = G.add_unit g ~bb:0 ~width:8 ~label:"shl" (K.operator Dataflow.Ops.Shl) in
  let add = G.add_unit g ~bb:0 ~width:8 ~label:"add" (K.operator Dataflow.Ops.Add) in
  let cmp =
    G.add_unit g ~bb:0 ~width:1 ~label:"cmp" (K.operator (Dataflow.Ops.Icmp Dataflow.Ops.Lt))
  in
  let czero = G.add_unit g ~bb:0 ~width:8 ~label:"zero" (K.Const 0) in
  let branch = G.add_unit g ~bb:0 ~width:8 ~label:"B" K.Branch in
  let sink_t = G.add_unit g ~bb:0 K.Sink in
  let sink_f = G.add_unit g ~bb:0 K.Sink in
  let entry_fork = G.add_unit g ~bb:0 ~width:0 (K.Fork 2) in
  ignore (G.connect g ~src:entry ~src_port:0 ~dst:entry_fork ~dst_port:0);
  ignore (G.connect g ~src:entry_fork ~src_port:0 ~dst:src ~dst_port:0);
  ignore (G.connect g ~src:entry_fork ~src_port:1 ~dst:cshift ~dst_port:0);
  ignore (G.connect g ~src:cshift ~src_port:0 ~dst:shamt ~dst_port:0);
  ignore (G.connect g ~src:cshift ~src_port:1 ~dst:czero ~dst_port:0);
  ignore (G.connect g ~src:src ~src_port:0 ~dst:fork ~dst_port:0);
  ignore (G.connect g ~src:fork ~src_port:0 ~dst:shift ~dst_port:0);
  ignore (G.connect g ~src:shamt ~src_port:0 ~dst:shift ~dst_port:1);
  ignore (G.connect g ~src:shift ~src_port:0 ~dst:add ~dst_port:0);
  ignore (G.connect g ~src:fork ~src_port:1 ~dst:add ~dst_port:1);
  ignore (G.connect g ~src:fork ~src_port:2 ~dst:cmp ~dst_port:0);
  ignore (G.connect g ~src:czero ~src_port:0 ~dst:cmp ~dst_port:1);
  ignore (G.connect g ~src:add ~src_port:0 ~dst:branch ~dst_port:0);
  ignore (G.connect g ~src:cmp ~src_port:0 ~dst:branch ~dst_port:1);
  ignore (G.connect g ~src:branch ~src_port:0 ~dst:sink_t ~dst_port:0);
  ignore (G.connect g ~src:branch ~src_port:1 ~dst:sink_f ~dst_port:0);
  (match G.validate g with Ok () -> () | Error e -> failwith e);
  (g, fork, shift, add, branch)

(* A simple accumulation loop:
     entry -> merge -> fork -> add(+const) -> cmp -> branch -> (back | exit)
   The back edge (branch true -> merge) must carry a buffer for the
   circuit to be realisable. *)
let loop ?(buffered = true) () =
  let g = G.create "loop" in
  let entry = G.add_unit g ~bb:0 ~width:0 K.Entry in
  let init = G.add_unit g ~bb:0 ~width:8 ~label:"init" (K.Const 0) in
  let merge = G.add_unit g ~bb:1 ~width:8 (K.Merge 2) in
  (* loop-body constants fire every iteration: trigger them from sources *)
  let src_one = G.add_unit g ~bb:1 ~width:0 K.Source in
  let one = G.add_unit g ~bb:1 ~width:8 (K.Const 1) in
  let src_bound = G.add_unit g ~bb:1 ~width:0 K.Source in
  let bound = G.add_unit g ~bb:1 ~width:8 (K.Const 10) in
  let add = G.add_unit g ~bb:1 ~width:8 (K.operator Dataflow.Ops.Add) in
  let addf = G.add_unit g ~bb:1 ~width:8 (K.Fork 2) in
  let cmp =
    G.add_unit g ~bb:1 ~width:1 (K.operator (Dataflow.Ops.Icmp Dataflow.Ops.Lt))
  in
  let branch = G.add_unit g ~bb:1 ~width:8 K.Branch in
  let exit_ = G.add_unit g ~bb:2 ~width:8 K.Exit in
  ignore (G.connect g ~src:entry ~src_port:0 ~dst:init ~dst_port:0);
  ignore (G.connect g ~src:src_one ~src_port:0 ~dst:one ~dst_port:0);
  ignore (G.connect g ~src:src_bound ~src_port:0 ~dst:bound ~dst_port:0);
  ignore (G.connect g ~src:init ~src_port:0 ~dst:merge ~dst_port:0);
  ignore (G.connect g ~src:merge ~src_port:0 ~dst:add ~dst_port:0);
  ignore (G.connect g ~src:one ~src_port:0 ~dst:add ~dst_port:1);
  ignore (G.connect g ~src:add ~src_port:0 ~dst:addf ~dst_port:0);
  ignore (G.connect g ~src:addf ~src_port:0 ~dst:branch ~dst_port:0);
  ignore (G.connect g ~src:addf ~src_port:1 ~dst:cmp ~dst_port:0);
  ignore (G.connect g ~src:bound ~src_port:0 ~dst:cmp ~dst_port:1);
  ignore (G.connect g ~src:cmp ~src_port:0 ~dst:branch ~dst_port:1);
  let back = G.connect g ~src:branch ~src_port:0 ~dst:merge ~dst_port:1 in
  ignore (G.connect g ~src:branch ~src_port:1 ~dst:exit_ ~dst_port:0);
  if buffered then G.set_buffer g back (Some { G.transparent = false; slots = 2 });
  (match G.validate g with Ok () -> () | Error e -> failwith e);
  (g, back)

(* Tiny mini-C kernels (4-element arrays, short loops): full-flow tests
   that need an [Hls.Kernels.t] use these instead of the paper benchmarks
   so a complete baseline + iterative run stays test-sized. *)

let tiny_kernel name source mems = { Hls.Kernels.name; source; mems }

let tsum = tiny_kernel "tsum" {|
int tsum(int a[4]) {
  int s = 0;
  for (int i = 0; i < 4; i = i + 1) { s = s + a[i]; }
  return s;
}
|} (fun () -> [ ("a", [| 1; 2; 3; 4 |]) ])

let tif = tiny_kernel "tif" {|
int tif(int a[4]) {
  int s = 0;
  for (int i = 0; i < 4; i = i + 1) {
    if (a[i] > 2) { s = s + a[i]; }
  }
  return s;
}
|} (fun () -> [ ("a", [| 1; 4; 2; 5 |]) ])

let tmul = tiny_kernel "tmul" {|
int tmul(int a[4]) {
  int s = 1;
  for (int i = 0; i < 3; i = i + 1) { s = s * a[i] + 1; }
  return s;
}
|} (fun () -> [ ("a", [| 2; 3; 1; 5 |]) ])

let tiny_kernels = [ tsum; tif; tmul ]

(* The branch & bound budget dominates a full-flow run; capping it keeps
   a baseline (Eq. 1) solve on the tiny kernels under a second without
   touching anything determinism depends on. *)
let cheap_flow_config =
  let d = Core.Flow.default_config in
  {
    d with
    Core.Flow.max_iterations = 1;
    milp = { d.Core.Flow.milp with Buffering.Formulation.node_limit = 20 };
  }
