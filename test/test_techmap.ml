module Aig = Techmap.Aig
module Synth = Techmap.Synth
module Mapper = Techmap.Mapper
module Lutgraph = Techmap.Lutgraph

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* AIG *)

let test_aig_folding () =
  let aig = Aig.create () in
  let a = Aig.ci aig ~owner:0 ~dom:Net.Data in
  check Alcotest.int "a & 0 = 0" Aig.lit_false (Aig.band aig ~owner:0 a Aig.lit_false);
  check Alcotest.int "a & 1 = a" a (Aig.band aig ~owner:0 a Aig.lit_true);
  check Alcotest.int "a & a = a" a (Aig.band aig ~owner:0 a a);
  check Alcotest.int "a & ~a = 0" Aig.lit_false (Aig.band aig ~owner:0 a (Aig.bnot a))

let test_aig_strash () =
  let aig = Aig.create () in
  let a = Aig.ci aig ~owner:0 ~dom:Net.Data in
  let b = Aig.ci aig ~owner:0 ~dom:Net.Data in
  let x = Aig.band aig ~owner:0 a b in
  let y = Aig.band aig ~owner:1 b a in
  check Alcotest.int "commutative hash hit" x y;
  check Alcotest.int "first creator keeps label" 0 (Aig.owner aig (Aig.node_of_lit x))

let test_aig_eval () =
  let aig = Aig.create () in
  let a = Aig.ci aig ~owner:0 ~dom:Net.Data in
  let b = Aig.ci aig ~owner:0 ~dom:Net.Data in
  let y = Aig.bxor aig ~owner:0 a b in
  Aig.add_co aig ~owner:0 ~tag:0 y;
  let an = Aig.node_of_lit a and bn = Aig.node_of_lit b in
  let run va vb =
    let values = Aig.eval aig (fun n -> if n = an then va else if n = bn then vb else false) in
    values.(Aig.node_of_lit y) <> Aig.is_complement y
  in
  check Alcotest.bool "0^0" false (run false false);
  check Alcotest.bool "1^0" true (run true false);
  check Alcotest.bool "1^1" false (run true true)

(* Differential property: netlist simulation and AIG evaluation agree on
   random combinational circuits. *)
let prop_synth_equiv =
  QCheck.Test.make ~name:"synth preserves function" ~count:60
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Support.Rng.create seed in
      let net = Net.create "rand" in
      let n_in = 3 + Support.Rng.int rng 4 in
      let ins = Array.init n_in (fun i -> Net.input net ~owner:0 ~dom:Net.Data (Printf.sprintf "i%d" i)) in
      let pool = ref (Array.to_list ins) in
      let pick () =
        let l = !pool in
        List.nth l (Support.Rng.int rng (List.length l))
      in
      for _ = 1 to 15 do
        let a = pick () and b = pick () in
        let g =
          match Support.Rng.int rng 4 with
          | 0 -> Net.and2 net ~owner:0 a b
          | 1 -> Net.or2 net ~owner:0 a b
          | 2 -> Net.xor2 net ~owner:0 a b
          | _ -> Net.not_ net ~owner:0 a
        in
        pool := g :: !pool
      done;
      let out = pick () in
      ignore (Net.output net ~owner:0 "y" out);
      let synth = Synth.run net in
      let aig = synth.Synth.aig in
      let _, _, ylit = List.hd (Aig.cos aig) in
      (* try all input assignments *)
      let ok = ref true in
      for v = 0 to (1 lsl n_in) - 1 do
        let sim = Net.sim_create net in
        for i = 0 to n_in - 1 do
          Net.sim_set_input sim (Printf.sprintf "i%d" i) ((v lsr i) land 1 = 1)
        done;
        Net.sim_eval sim;
        let expect = Net.sim_get_output sim "y" in
        let ci_val node =
          let gid = Hashtbl.find synth.Synth.gate_of_ci node in
          match (Net.gate net gid).Net.kind with
          | Net.Input nm -> (
            match String.sub nm 1 (String.length nm - 1) |> int_of_string_opt with
            | Some i -> (v lsr i) land 1 = 1
            | None -> false)
          | _ -> false
        in
        let values = Aig.eval aig ci_val in
        let got =
          if Aig.node_of_lit ylit = 0 then Aig.is_complement ylit
          else values.(Aig.node_of_lit ylit) <> Aig.is_complement ylit
        in
        if got <> expect then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Mapping *)

let map_fig2 () =
  let g, _, _, _, _ = Fixtures.fig2 () in
  let net = Elaborate.run g in
  let synth = Synth.run net in
  (g, net, synth, Mapper.run synth)

let test_map_covers_cos () =
  let _, _, synth, lg = map_fig2 () in
  (* every non-trivial CO root is implemented by a LUT *)
  List.iter
    (fun (_, _, lit) ->
      let v = Aig.node_of_lit lit in
      if v <> 0 && not (Aig.is_ci synth.Synth.aig v) then
        Alcotest.(check bool) "root mapped" true (lg.Lutgraph.lut_of_node.(v) >= 0))
    (Aig.cos synth.Synth.aig)

let test_map_k_feasible () =
  let _, _, _, lg = map_fig2 () in
  Array.iter
    (fun l -> Alcotest.(check bool) "<=6 leaves" true (Array.length l.Lutgraph.leaves <= 6))
    lg.Lutgraph.luts

let test_map_levels_positive () =
  let _, _, _, lg = map_fig2 () in
  check Alcotest.bool "some luts" true (Lutgraph.n_luts lg > 0);
  check Alcotest.bool "max level >= 1" true (lg.Lutgraph.max_level >= 1)

let test_map_owner_labels () =
  let g, _, _, _, _ = Fixtures.fig2 () in
  let net = Elaborate.run g in
  let synth = Synth.run net in
  let lg = Mapper.run synth in
  Array.iter
    (fun l ->
      Alcotest.(check bool) "owner in range" true
        (l.Lutgraph.owner >= -1 && l.Lutgraph.owner < Dataflow.Graph.n_units g))
    lg.Lutgraph.luts

let test_map_edges_consistent () =
  let _, net, _, lg = map_fig2 () in
  List.iter
    (fun e ->
      (match e.Lutgraph.e_src with
      | Lutgraph.Lut l -> Alcotest.(check bool) "src lut in range" true (l >= 0 && l < Lutgraph.n_luts lg)
      | Lutgraph.Seq gid -> Alcotest.(check bool) "src gate in range" true (gid >= 0 && gid < Net.n_gates net));
      match e.Lutgraph.e_dst with
      | Lutgraph.Lut l -> Alcotest.(check bool) "dst lut in range" true (l >= 0 && l < Lutgraph.n_luts lg)
      | Lutgraph.Seq gid -> Alcotest.(check bool) "dst gate in range" true (gid >= 0 && gid < Net.n_gates net))
    lg.Lutgraph.edges

let test_map_levels_monotone () =
  let _, _, synth, lg = map_fig2 () in
  (* a LUT's level exceeds all its LUT predecessors' levels *)
  List.iter
    (fun (src, dst) ->
      Alcotest.(check bool) "level increases" true
        (lg.Lutgraph.levels.(dst) > lg.Lutgraph.levels.(src)))
    (Lutgraph.lut_edges lg);
  ignore synth

(* property: mapping a random single-output circuit keeps function.  We
   check by evaluating LUT cones bottom-up against the AIG evaluation. *)
let prop_map_preserves_structure =
  QCheck.Test.make ~name:"every mapped LUT's leaves precede its root" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Support.Rng.create seed in
      let net = Net.create "rand" in
      let n_in = 4 + Support.Rng.int rng 4 in
      let ins = Array.init n_in (fun i -> Net.input net ~owner:0 ~dom:Net.Data (Printf.sprintf "i%d" i)) in
      let pool = ref (Array.to_list ins) in
      let pick () = List.nth !pool (Support.Rng.int rng (List.length !pool)) in
      for _ = 1 to 25 do
        let a = pick () and b = pick () in
        let g =
          match Support.Rng.int rng 3 with
          | 0 -> Net.and2 net ~owner:0 a b
          | 1 -> Net.or2 net ~owner:0 a b
          | _ -> Net.xor2 net ~owner:0 a b
        in
        pool := g :: !pool
      done;
      ignore (Net.output net ~owner:0 "y" (pick ()));
      let synth = Synth.run net in
      let lg = Mapper.run synth in
      Array.for_all
        (fun l -> Array.for_all (fun leaf -> leaf < l.Lutgraph.root) l.Lutgraph.leaves)
        lg.Lutgraph.luts)

(* mapped LUT levels can never exceed AIG depth (each LUT covers at
   least one AIG level), and with K=6 they are usually far fewer *)
let prop_levels_bounded_by_depth =
  QCheck.Test.make ~name:"mapped levels <= AIG depth" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Support.Rng.create seed in
      let net = Net.create "rand" in
      let ins = Array.init 6 (fun i -> Net.input net ~owner:0 ~dom:Net.Data (Printf.sprintf "i%d" i)) in
      let pool = ref (Array.to_list ins) in
      let pick () = List.nth !pool (Support.Rng.int rng (List.length !pool)) in
      for _ = 1 to 40 do
        let a = pick () and b = pick () in
        let g =
          match Support.Rng.int rng 3 with
          | 0 -> Net.and2 net ~owner:0 a b
          | 1 -> Net.or2 net ~owner:0 a b
          | _ -> Net.xor2 net ~owner:0 a b
        in
        pool := g :: !pool
      done;
      ignore (Net.output net ~owner:0 "y" (pick ()));
      let synth = Synth.run net in
      let lg = Mapper.run synth in
      lg.Lutgraph.max_level <= Aig.depth synth.Synth.aig)

(* every mapped LUT's leaves are other LUT roots or CIs — the cover is
   closed (no dangling references into unmapped logic) *)
let test_map_cover_closed () =
  let _, _, synth, lg = map_fig2 () in
  Array.iter
    (fun l ->
      Array.iter
        (fun leaf ->
          Alcotest.(check bool) "leaf is CI or mapped root" true
            (Aig.is_ci synth.Synth.aig leaf || lg.Lutgraph.lut_of_node.(leaf) >= 0))
        l.Lutgraph.leaves)
    lg.Lutgraph.luts

(* Cross-unit merging: the whole point of the paper.  Two chained joins
   each AND their valids; mapping packs the ANDs of both units into a
   single LUT, so the LUT count is below the per-unit gate count. *)
let test_cross_unit_merging () =
  let g = Dataflow.Graph.create "xunit" in
  let module G = Dataflow.Graph in
  let module K = Dataflow.Unit_kind in
  let srcs = Array.init 4 (fun _ -> G.add_unit g ~width:0 K.Source) in
  let j1 = G.add_unit g ~width:0 (K.Join 2) in
  let j2 = G.add_unit g ~width:0 (K.Join 2) in
  let j3 = G.add_unit g ~width:0 (K.Join 2) in
  let snk = G.add_unit g ~width:0 K.Sink in
  ignore (G.connect g ~src:srcs.(0) ~src_port:0 ~dst:j1 ~dst_port:0);
  ignore (G.connect g ~src:srcs.(1) ~src_port:0 ~dst:j1 ~dst_port:1);
  ignore (G.connect g ~src:srcs.(2) ~src_port:0 ~dst:j2 ~dst_port:0);
  ignore (G.connect g ~src:srcs.(3) ~src_port:0 ~dst:j2 ~dst_port:1);
  ignore (G.connect g ~src:j1 ~src_port:0 ~dst:j3 ~dst_port:0);
  ignore (G.connect g ~src:j2 ~src_port:0 ~dst:j3 ~dst_port:1);
  ignore (G.connect g ~src:j3 ~src_port:0 ~dst:snk ~dst_port:0);
  let net = Elaborate.run g in
  let synth = Synth.run net in
  let lg = Mapper.run synth in
  (* sources are constant-valid: everything folds away completely *)
  check Alcotest.bool "constant folding ate the joins" true (Lutgraph.n_luts lg <= 1)

(* ------------------------------------------------------------------ *)
(* Truth-table boundaries at K = 6. *)

(* A 6-input XOR chain: the deepest all-variables cut a K=6 mapper can
   legally pick. Every LUT's table is checked exhaustively against the
   AIG (all 2^|leaves| assignments), and at least one LUT must actually
   sit on the 6-leaf boundary. *)
let parity_net n =
  let net = Net.create "parity" in
  let ins =
    Array.init n (fun i -> Net.input net ~owner:0 ~dom:Net.Data (Printf.sprintf "x%d" i))
  in
  let y = Array.fold_left (fun acc i -> Net.xor2 net ~owner:0 acc i) ins.(0) (Array.sub ins 1 (n - 1)) in
  ignore (Net.output net ~owner:0 "y" y);
  net

let check_tables_vs_aig synth lg =
  Array.iter
    (fun l ->
      let leaves = l.Lutgraph.leaves in
      let tbl = Techmap.Truth.lut_table lg l.Lutgraph.lid in
      let cases = 1 lsl Array.length leaves in
      for idx = 0 to cases - 1 do
        let leaf_value n =
          let rec find j = j < Array.length leaves && (leaves.(j) = n || find (j + 1)) in
          let rec pos j = if leaves.(j) = n then j else pos (j + 1) in
          if find 0 then idx land (1 lsl pos 0) <> 0 else false
        in
        let values = Aig.eval synth.Synth.aig leaf_value in
        let expect = values.(l.Lutgraph.root) in
        let got = Int64.logand (Int64.shift_right_logical tbl idx) 1L = 1L in
        if got <> expect then
          Alcotest.failf "lut %d table bit %d: table says %b, AIG says %b" l.Lutgraph.lid idx got
            expect
      done)
    lg.Lutgraph.luts

let test_truth_all_vars () =
  let net = parity_net 6 in
  let synth = Synth.run net in
  let lg = Mapper.run synth in
  check Alcotest.bool "some LUT uses all six inputs" true
    (Array.exists (fun l -> Array.length l.Lutgraph.leaves = 6) lg.Lutgraph.luts);
  check_tables_vs_aig synth lg;
  (* parity is symmetric, so a 6-leaf table must be the parity constant
     regardless of how the mapper ordered the leaves *)
  Array.iter
    (fun l ->
      if Array.length l.Lutgraph.leaves = 6 then begin
        let popcount_odd i =
          let rec go i acc = if i = 0 then acc else go (i lsr 1) (acc <> (i land 1 = 1)) in
          go i false
        in
        let expect = ref 0L in
        for idx = 0 to 63 do
          if popcount_odd idx then expect := Int64.logor !expect (Int64.shift_left 1L idx)
        done;
        let tbl = Techmap.Truth.lut_table lg l.Lutgraph.lid in
        if tbl <> !expect && tbl <> Int64.lognot !expect then
          Alcotest.failf "6-leaf parity table %Lx is neither parity nor its complement" tbl
      end)
    lg.Lutgraph.luts

(* x & ~x folds to constant false during synthesis: the cover is empty
   and the CO is the constant literal, which the mapper must survive. *)
let test_truth_constant_cone () =
  let net = Net.create "const" in
  let x = Net.input net ~owner:0 ~dom:Net.Data "x" in
  let nx = Net.not_ net ~owner:0 x in
  let y = Net.and2 net ~owner:0 x nx in
  ignore (Net.output net ~owner:0 "y" y);
  let synth = Synth.run net in
  let lg = Mapper.run synth in
  check Alcotest.int "constant cone maps to zero LUTs" 0 (Lutgraph.n_luts lg);
  List.iter
    (fun (_, _, lit) -> check Alcotest.int "CO folded to const false" Aig.lit_false lit)
    (Aig.cos synth.Synth.aig);
  (* and the translation validator accepts the constant cover *)
  let r = Tv.Equiv.run net lg in
  check Alcotest.int "tv accepts constant CO" 0 (List.length r.Tv.Equiv.mismatches)

let with_leaves lg f =
  {
    lg with
    Lutgraph.luts =
      Array.map (fun l -> { l with Lutgraph.leaves = f l (Array.copy l.Lutgraph.leaves) }) lg.Lutgraph.luts;
  }

(* A duplicated leaf is not a legal cut: [lut_table] still evaluates it
   (last assignment wins), but the validator's structural audit rejects
   the cover before trusting any table built from it. *)
let test_truth_duplicate_leaves () =
  let _, net, _, lg = map_fig2 () in
  let victim =
    Array.to_list lg.Lutgraph.luts
    |> List.find_opt (fun l -> Array.length l.Lutgraph.leaves >= 2)
  in
  match victim with
  | None -> Alcotest.fail "fixture has no multi-leaf LUT"
  | Some v ->
    let lg' =
      with_leaves lg (fun l leaves ->
          if l.Lutgraph.lid = v.Lutgraph.lid then leaves.(1) <- leaves.(0);
          leaves)
    in
    let r = Tv.Equiv.run net lg' in
    let structural =
      List.exists
        (function
          | Tv.Equiv.Cover_structural { lut; reason } ->
            lut = v.Lutgraph.lid
            && (let lower = String.lowercase_ascii reason in
                let rec has i =
                  i + 9 <= String.length lower && (String.sub lower i 9 = "duplicate" || has (i + 1))
                in
                has 0)
          | _ -> false)
        r.Tv.Equiv.mismatches
    in
    check Alcotest.bool "duplicate leaf rejected structurally" true structural

(* More than 6 leaves is outside the table representation entirely. *)
let test_truth_oversized_cut () =
  let _, net, _, lg = map_fig2 () in
  let victim =
    Array.to_list lg.Lutgraph.luts |> List.find (fun l -> Array.length l.Lutgraph.leaves >= 1)
  in
  let lg' =
    with_leaves lg (fun l leaves ->
        if l.Lutgraph.lid = victim.Lutgraph.lid then
          Array.init 7 (fun i -> leaves.(i mod Array.length leaves))
        else leaves)
  in
  (match Techmap.Truth.lut_table lg' victim.Lutgraph.lid with
  | _ -> Alcotest.fail "lut_table accepted a 7-leaf cut"
  | exception Invalid_argument _ -> ());
  let r = Tv.Equiv.run net lg' in
  check Alcotest.bool "oversized cut rejected structurally" true
    (List.exists
       (function
         | Tv.Equiv.Cover_structural { lut; _ } -> lut = victim.Lutgraph.lid
         | _ -> false)
       r.Tv.Equiv.mismatches)

let suite =
  [
    ("aig constant folding", `Quick, test_aig_folding);
    ("aig structural hashing", `Quick, test_aig_strash);
    ("aig eval", `Quick, test_aig_eval);
    qtest prop_synth_equiv;
    ("map covers outputs", `Quick, test_map_covers_cos);
    ("map is k-feasible", `Quick, test_map_k_feasible);
    ("map levels positive", `Quick, test_map_levels_positive);
    ("map owner labels valid", `Quick, test_map_owner_labels);
    ("map edges consistent", `Quick, test_map_edges_consistent);
    ("map levels monotone", `Quick, test_map_levels_monotone);
    qtest prop_map_preserves_structure;
    ("cross-unit merging", `Quick, test_cross_unit_merging);
    qtest prop_levels_bounded_by_depth;
    ("map cover closed", `Quick, test_map_cover_closed);
    ("truth k=6 all-vars tables", `Quick, test_truth_all_vars);
    ("truth constant cone", `Quick, test_truth_constant_cone);
    ("truth duplicate leaves", `Quick, test_truth_duplicate_leaves);
    ("truth oversized cut", `Quick, test_truth_oversized_cut);
  ]
