module G = Dataflow.Graph
module Ops = Dataflow.Ops
module V = Absint.Value
module T = Absint.Transfer
module An = Absint.Analyze
module N = Absint.Narrow

let check = Alcotest.check

let mask w v = match V.mask_of w with Some m -> v land m | None -> v

let seeded g0 =
  let g = G.copy g0 in
  ignore (Core.Flow.seed_back_edges g);
  g

let compile src = Hls.Compile.compile (Hls.Parser.parse src)

(* ------------------------------------------------------------------ *)
(* Transfer-function envelope: for random operands and random abstract
   values containing them, the concrete Ops.eval result (masked to the
   output width, as the simulator masks channel writes) is a member of
   the abstract transfer output. 10k trials per operator. *)

let all_ops =
  [
    Ops.Add;
    Ops.Sub;
    Ops.Mul;
    Ops.Shl;
    Ops.Lshr;
    Ops.And_;
    Ops.Or_;
    Ops.Xor_;
    Ops.Icmp Ops.Eq;
    Ops.Icmp Ops.Ne;
    Ops.Icmp Ops.Lt;
    Ops.Icmp Ops.Le;
    Ops.Icmp Ops.Gt;
    Ops.Icmp Ops.Ge;
    Ops.Select;
  ]

(* a random abstract value at width [w] guaranteed to contain [x]:
   start from the singleton and join in a few other members, sometimes
   blow up to top *)
let abstract_containing rng w x =
  let v = ref (V.const w x) in
  for _ = 1 to Support.Rng.int rng 4 do
    v := V.join w !v (V.const w (Support.Rng.int rng (1 lsl w)))
  done;
  if Support.Rng.int rng 8 = 0 then v := V.join w !v (V.top w);
  !v

let test_envelope () =
  let rng = Support.Rng.create 0xabce in
  List.iter
    (fun op ->
      for trial = 1 to 10_000 do
        let rand_w () = 1 + Support.Rng.int rng 14 in
        let wo = rand_w () in
        let operand w =
          let x = Support.Rng.int rng (1 lsl w) in
          (x, abstract_containing rng w x)
        in
        let xs, vs =
          match Ops.arity op with
          | 3 ->
            (* Select: 1-bit condition, two data arms *)
            let c, vc = operand 1 in
            let a, va = operand (rand_w ()) in
            let b, vb = operand (rand_w ()) in
            ([ c; a; b ], [ vc; va; vb ])
          | _ ->
            let a, va = operand (rand_w ()) in
            let b, vb = operand (rand_w ()) in
            ([ a; b ], [ va; vb ])
        in
        let out = T.operator ~width:wo op vs in
        let concrete = mask wo (Ops.eval op xs) in
        if not (V.mem wo concrete out) then
          Alcotest.failf "%s trial %d: concrete %d (width %d) escapes %s (args %s / %s)"
            (Ops.name op) trial concrete wo
            (V.to_string ~width:wo out)
            (String.concat "," (List.map string_of_int xs))
            (String.concat "," (List.map (V.to_string ?width:None) vs))
      done)
    all_ops

(* refinement must never lose members: refine_cmp with either polarity
   keeps every operand value that satisfies the comparison *)
let test_refine_sound () =
  let rng = Support.Rng.create 0x5e1f in
  let cmps = [ Ops.Eq; Ops.Ne; Ops.Lt; Ops.Le; Ops.Gt; Ops.Ge ] in
  for _ = 1 to 20_000 do
    let w = 1 + Support.Rng.int rng 10 in
    let x = Support.Rng.int rng (1 lsl w) and y = Support.Rng.int rng (1 lsl w) in
    let va = abstract_containing rng w x and vb = abstract_containing rng w y in
    let cmp = List.nth cmps (Support.Rng.int rng 6) in
    let holds = Ops.eval (Ops.Icmp cmp) [ x; y ] = 1 in
    let polarity = holds in
    let refined = T.refine_cmp ~width:w cmp ~polarity va vb in
    if not (V.mem w x refined) then
      Alcotest.failf "refine %s polarity=%b loses %d from %s (vs %s)" (Ops.name (Ops.Icmp cmp))
        polarity x (V.to_string ~width:w va) (V.to_string ~width:w vb)
  done

(* ------------------------------------------------------------------ *)
(* Fixpoint termination: widening converges without hitting the global
   evaluation cap, on loop nests and on a loop whose concrete execution
   never terminates. *)

let test_termination_nested () =
  let g =
    compile
      "int f(int a[8]) { int s = 0; for (int i = 0; i < 8; i = i + 1) { for (int j = 0; j < 8; \
       j = j + 1) { s = s + a[j]; } } return s; }"
  in
  let res = An.run g in
  check Alcotest.bool "nested loops converge" false res.An.diverged;
  check Alcotest.bool "bounded evals" true (res.An.evals < 512 * (G.n_units g + 1))

let test_termination_nonterminating () =
  (* x walks 0,2,4,... and never equals 7: concretely infinite, but the
     abstract fixpoint must still converge via widening *)
  let g = compile "int f() { int x = 0; while (x != 7) { x = x + 2; } return x; }" in
  let res = An.run g in
  check Alcotest.bool "widening converges" false res.An.diverged

(* every kernel in the suite analyzes without divergence *)
let test_termination_kernels () =
  List.iter
    (fun k ->
      let res = An.run (seeded (Hls.Kernels.graph k)) in
      check Alcotest.bool (k.Hls.Kernels.name ^ " converges") false res.An.diverged)
    Hls.Kernels.all

(* ------------------------------------------------------------------ *)
(* Narrowing on real kernels *)

let test_gsum_narrowing () =
  let g = seeded (Hls.Kernels.graph (Hls.Kernels.by_name "gsum")) in
  let res = An.run g in
  let gn, report = N.run res g in
  check Alcotest.bool "narrowing changed gsum" true (N.changed report);
  check Alcotest.bool "channel bits saved" true (report.N.r_bits_after < report.N.r_bits_before);
  check Alcotest.(list string) "simulation-equivalent" []
    (Tv.Simdiff.check ~original:g ~variant:gn ())

(* satellite regression: the full flow with narrowing on and off must
   produce sim-equivalent circuits (exit value and memory state) *)
let test_flow_narrow_on_off () =
  let k = Hls.Kernels.by_name "gsum" in
  let run narrow =
    let config = { Core.Flow.default_config with Core.Flow.narrow } in
    let o = Core.Flow.iterative ~config (Hls.Kernels.graph k) in
    let mems = k.Hls.Kernels.mems () in
    let r = Sim.Elastic.run ~memories:mems o.Core.Flow.graph in
    check Alcotest.bool (Printf.sprintf "narrow=%b finished" narrow) true r.Sim.Elastic.finished;
    (r.Sim.Elastic.exit_value, mems, o.Core.Flow.narrowing)
  in
  let v_on, m_on, rep_on = run true in
  let v_off, m_off, rep_off = run false in
  check Alcotest.(option int) "exit values agree" v_off v_on;
  check Alcotest.bool "memories agree" true (m_on = m_off);
  check Alcotest.bool "report present when on" true (rep_on <> None);
  check Alcotest.bool "report absent when off" true (rep_off = None);
  check Alcotest.(option int) "matches interpreter"
    (Some (Hls.Kernels.reference k))
    v_on

let test_dead_branch_deleted () =
  let f = Hls.Parser.parse "int f() { int s = 3; if (0) { s = 5; } return s; }" in
  let g = Hls.Compile.compile f in
  let res = An.run g in
  let gn, report = N.run res g in
  check Alcotest.bool "rewrote the constant branch" true
    (report.N.r_rewired <> [] || report.N.r_deleted <> []);
  check Alcotest.(list string) "equivalent" [] (Tv.Simdiff.check ~original:g ~variant:gn ());
  let r = Sim.Elastic.run gn in
  check Alcotest.(option int) "narrowed circuit still returns 3" (Some 3) r.Sim.Elastic.exit_value

let test_const_fold () =
  let g = compile "int f() { return 2 + 3; }" in
  let res = An.run g in
  let gn, report = N.run res g in
  check Alcotest.bool "folded the adder" true (report.N.r_folded <> []);
  let r = Sim.Elastic.run gn in
  check Alcotest.(option int) "folded circuit returns 5" (Some 5) r.Sim.Elastic.exit_value

(* the range lint family reports no errors or warnings on any suite
   kernel (info diagnostics like wrap-by-design accumulation and width
   excess are expected and allowed) *)
let test_ranges_clean () =
  List.iter
    (fun k ->
      let rep = Lint.Engine.check_ranges (seeded (Hls.Kernels.graph k)) in
      check Alcotest.bool
        (k.Hls.Kernels.name ^ " no range errors or warnings")
        true (Lint.Engine.clean rep))
    Hls.Kernels.all

(* regression (fuzz seed 987): a Control_merge with one live input
   rewrites to Fork2 + Consts; the fork must take the live input's
   (possibly zero) control width, not the cmerge's index width, or fork
   elaboration indexes data bits past the narrow input channel *)
let test_refork_control_width () =
  let g = compile "int f(int a[8], int b[8]) { int s1 = 5; if ((s1 != 9)) { } }" in
  let res = An.run g in
  let gn, report = N.run res g in
  check Alcotest.bool "cmerge rewired" true
    (List.exists (fun (_, _, d) -> String.length d >= 6 && String.sub d 0 6 = "cmerge")
       report.N.r_rewired);
  ignore (Elaborate.run gn);
  check Alcotest.(list string) "equivalent" [] (Tv.Simdiff.check ~original:g ~variant:gn ())

(* ------------------------------------------------------------------ *)
(* The equivalence gate has teeth: an unsound width shrink (performed
   behind the analysis's back) is caught by random simulation. *)

let test_simdiff_catches_unsound_shrink () =
  let g = seeded (Hls.Kernels.graph (Hls.Kernels.by_name "gsum")) in
  let victim = ref (-1) in
  G.iter_units g (fun n ->
      match n.G.kind with
      | Dataflow.Unit_kind.Operator { op = Ops.Add; _ } when !victim < 0 && n.G.width >= 8 ->
        victim := n.G.uid
      | _ -> ());
  check Alcotest.bool "found an 8-bit adder" true (!victim >= 0);
  let bad = G.copy g in
  G.set_width bad !victim 3;
  let mismatches = Tv.Simdiff.check ~original:g ~variant:bad () in
  check Alcotest.bool "unsound shrink detected" true (mismatches <> [])

let suite =
  [
    Alcotest.test_case "transfer envelope (10k/op)" `Slow test_envelope;
    Alcotest.test_case "refinement soundness" `Quick test_refine_sound;
    Alcotest.test_case "termination: nested loops" `Quick test_termination_nested;
    Alcotest.test_case "termination: non-terminating loop" `Quick test_termination_nonterminating;
    Alcotest.test_case "termination: benchmark suite" `Quick test_termination_kernels;
    Alcotest.test_case "gsum narrowing saves bits, equivalent" `Quick test_gsum_narrowing;
    Alcotest.test_case "flow narrow on/off equivalent" `Slow test_flow_narrow_on_off;
    Alcotest.test_case "dead branch deleted" `Quick test_dead_branch_deleted;
    Alcotest.test_case "constant fold" `Quick test_const_fold;
    Alcotest.test_case "range lints clean on suite" `Quick test_ranges_clean;
    Alcotest.test_case "refork takes control width (seed 987)" `Quick test_refork_control_width;
    Alcotest.test_case "simdiff catches unsound shrink" `Quick test_simdiff_catches_unsound_shrink;
  ]
