(* Support.Trace: the flow-wide span + counter layer. The contracts
   under test: (1) the span tree is deterministic in shape across pool
   widths — the same workload yields the same summary rows and the same
   parent edges at jobs 1, 2 and 8, because task spans re-root under the
   submitter's context; (2) disabled-mode primitives allocate nothing
   visible (the layer is permanently compiled into hot paths);
   (3) the Chrome trace-event sink emits JSON a minimal independent
   parser round-trips; (4) counters merge by summation across domain
   buffers. *)

module Trace = Support.Trace
module Pool = Support.Pool

(* ------------------------------------------------------------------ *)
(* fixture workload: root -> 6 tasks (two names) -> inner, via a pool *)

let workload jobs =
  Trace.start ();
  Trace.with_span ~cat:"test" "root" (fun () ->
      let ctx = Trace.current_context () in
      ignore
        (Pool.run ~jobs (fun p ->
             List.init 6 (fun i ->
                 Pool.submit p (fun () ->
                     Trace.with_context ctx (fun () ->
                         Trace.with_span ~cat:"task"
                           (Printf.sprintf "task%d" (i mod 2))
                           (fun () ->
                             Trace.add "work.items" 1;
                             Trace.with_span "inner" (fun () ->
                                 Trace.add "inner.calls" (i + 1))))))
             |> List.map Pool.await)));
  Trace.stop ()

let shape report =
  Trace.summary report
  |> List.map (fun r -> (r.Trace.row_name, r.Trace.row_calls))
  |> List.sort compare

let parent_edges report =
  List.map (fun s -> (s.Trace.sp_name, s.Trace.sp_parent, s.Trace.sp_depth)) report.Trace.r_spans
  |> List.sort_uniq compare

let test_nesting_determinism jobs () =
  let r = workload jobs in
  Alcotest.(check (list (pair string int)))
    (Printf.sprintf "summary shape at jobs=%d" jobs)
    [ ("inner", 6); ("root", 1); ("task0", 3); ("task1", 3) ]
    (shape r);
  Alcotest.(check (list (triple string (option string) int)))
    (Printf.sprintf "parent edges and depths at jobs=%d" jobs)
    [
      ("inner", Some "task0", 2);
      ("inner", Some "task1", 2);
      ("root", None, 0);
      ("task0", Some "root", 1);
      ("task1", Some "root", 1);
    ]
    (parent_edges r);
  Alcotest.(check int)
    (Printf.sprintf "work.items merged at jobs=%d" jobs)
    6 (Trace.counter r "work.items");
  Alcotest.(check int)
    (Printf.sprintf "inner.calls merged at jobs=%d" jobs)
    21 (Trace.counter r "inner.calls")

(* ------------------------------------------------------------------ *)

let nothing () = ()

let test_disabled_no_alloc () =
  Alcotest.(check bool) "tracing is disabled" false (Trace.enabled ());
  let rounds = 10_000 in
  let before = Gc.minor_words () in
  for _ = 1 to rounds do
    Trace.add "noop.counter" 1;
    Trace.with_span "noop.span" nothing
  done;
  let spent = Gc.minor_words () -. before in
  (* the loop itself is allocation-free; allow slack for the two
     [Gc.minor_words] boxed results and instrumentation noise *)
  Alcotest.(check bool)
    (Printf.sprintf "disabled primitives allocate nothing (%.0f minor words for %d rounds)" spent
       rounds)
    true
    (spent < 256.)

let test_disabled_passthrough () =
  Alcotest.(check bool) "tracing is disabled" false (Trace.enabled ());
  Alcotest.(check int) "with_span is the identity bracket" 42 (Trace.with_span "x" (fun () -> 42));
  let v, dt = Trace.timed "y" (fun () -> 7) in
  Alcotest.(check int) "timed returns the value" 7 v;
  Alcotest.(check bool) "timed still measures" true (dt >= 0.)

let test_span_closes_on_exception () =
  Trace.start ();
  (try Trace.with_span "boom" (fun () -> raise Exit) with Exit -> ());
  let inner = Trace.with_span "outer" (fun () -> Trace.with_span "inner" (fun () -> 5)) in
  Alcotest.(check int) "value flows through" 5 inner;
  let r = Trace.stop () in
  Alcotest.(check (list (pair string int)))
    "raising span is recorded and the stack is intact"
    [ ("boom", 1); ("inner", 1); ("outer", 1) ]
    (shape r);
  Alcotest.(check (option string))
    "outer is a root again after the raise" None
    (List.find_map
       (fun s -> if s.Trace.sp_name = "outer" then Some s.Trace.sp_parent else None)
       r.Trace.r_spans
    |> Option.join)

(* ------------------------------------------------------------------ *)
(* counters merge across domains: every worker contributes a partial
   sum into its own buffer; stop() must add them all up *)

let test_counter_merge_across_domains () =
  Trace.start ();
  ignore
    (Pool.run ~jobs:8 (fun p ->
         List.init 64 (fun i ->
             Pool.submit p (fun () ->
                 Trace.add "merge.sum" i;
                 if i mod 2 = 0 then Trace.add "merge.evens" 1))
         |> List.map Pool.await));
  let r = Trace.stop () in
  Alcotest.(check int) "sum 0..63" 2016 (Trace.counter r "merge.sum");
  Alcotest.(check int) "even tasks" 32 (Trace.counter r "merge.evens");
  Alcotest.(check int) "untouched counter is 0" 0 (Trace.counter r "merge.missing")

(* ------------------------------------------------------------------ *)
(* minimal JSON parser: enough of RFC 8259 to round-trip the Chrome
   sink (objects, arrays, strings with escapes, numbers, literals) *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Alcotest.failf "json parse error at byte %d: %s" !pos msg in
  let peek () = if !pos >= n then fail "unexpected end of input" else s.[!pos] in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if peek () <> c then fail (Printf.sprintf "expected %C, got %C" c (peek ()));
    incr pos
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' ->
        incr pos;
        Buffer.contents b
      | '\\' ->
        incr pos;
        (match peek () with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          pos := !pos + 4;
          Buffer.add_char b '?'
        | c -> fail (Printf.sprintf "bad escape %C" c));
        incr pos;
        go ()
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      incr pos;
      skip_ws ();
      if peek () = '}' then begin
        incr pos;
        Obj []
      end
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            incr pos;
            members ((k, v) :: acc)
          | '}' ->
            incr pos;
            Obj (List.rev ((k, v) :: acc))
          | c -> fail (Printf.sprintf "expected ',' or '}', got %C" c)
        in
        members []
    | '[' ->
      incr pos;
      skip_ws ();
      if peek () = ']' then begin
        incr pos;
        Arr []
      end
      else
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            incr pos;
            elements (v :: acc)
          | ']' ->
            incr pos;
            Arr (List.rev (v :: acc))
          | c -> fail (Printf.sprintf "expected ',' or ']', got %C" c)
        in
        elements []
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing characters";
  v

let obj_get key = function
  | Obj kvs -> (
    match List.assoc_opt key kvs with
    | Some v -> v
    | None -> Alcotest.failf "missing key %S" key)
  | _ -> Alcotest.failf "not an object (looking for %S)" key

let as_num = function Num f -> f | _ -> Alcotest.fail "not a number"
let as_str = function Str s -> s | _ -> Alcotest.fail "not a string"
let as_arr = function Arr l -> l | _ -> Alcotest.fail "not an array"

let test_chrome_json_roundtrip () =
  let r = workload 1 in
  let doc = parse_json (Trace.to_chrome_json r) in
  let events = as_arr (obj_get "traceEvents" doc) in
  let xs = List.filter (fun e -> as_str (obj_get "ph" e) = "X") events in
  let cs = List.filter (fun e -> as_str (obj_get "ph" e) = "C") events in
  Alcotest.(check int) "one X event per span" (List.length r.Trace.r_spans) (List.length xs);
  Alcotest.(check int) "one C event per counter" (List.length r.Trace.r_counters) (List.length cs);
  List.iter
    (fun e ->
      let ts = as_num (obj_get "ts" e) and dur = as_num (obj_get "dur" e) in
      Alcotest.(check bool) "ts is non-negative" true (ts >= 0.);
      Alcotest.(check bool) "dur is non-negative" true (dur >= 0.);
      Alcotest.(check bool)
        "event fits inside the session"
        true
        (ts +. dur <= (r.Trace.r_wall *. 1e6) +. 1e3);
      ignore (as_str (obj_get "name" e));
      ignore (as_str (obj_get "cat" e));
      ignore (as_num (obj_get "pid" e));
      ignore (as_num (obj_get "tid" e));
      ignore (obj_get "parent" (obj_get "args" e)))
    xs;
  let other = obj_get "otherData" doc in
  Alcotest.(check bool) "wall_s positive" true (as_num (obj_get "wall_s" other) > 0.);
  let counters = obj_get "counters" other in
  Alcotest.(check int) "counters.work.items" 6 (int_of_float (as_num (obj_get "work.items" counters)));
  Alcotest.(check int)
    "counters.inner.calls" 21
    (int_of_float (as_num (obj_get "inner.calls" counters)));
  let summary = as_arr (obj_get "summary" other) in
  Alcotest.(check (list string))
    "summary rows name every stage"
    [ "inner"; "root"; "task0"; "task1" ]
    (List.map (fun row -> as_str (obj_get "name" row)) summary |> List.sort compare);
  (* escaping: a hostile span name survives the round trip *)
  Trace.start ();
  Trace.with_span "we\"ird\\name\nwith\tescapes" (fun () -> ());
  let r2 = Trace.stop () in
  let doc2 = parse_json (Trace.to_chrome_json r2) in
  let names =
    as_arr (obj_get "traceEvents" doc2)
    |> List.filter (fun e -> as_str (obj_get "ph" e) = "X")
    |> List.map (fun e -> as_str (obj_get "name" e))
  in
  Alcotest.(check (list string))
    "escaped name round-trips"
    [ "we\"ird\\name\nwith\tescapes" ]
    names

let test_write_creates_parent_dirs () =
  let dir = Filename.temp_file "trace_test" "" in
  Sys.remove dir;
  let path = Filename.concat (Filename.concat dir "a/b") "t.json" in
  Trace.start ();
  Trace.with_span "tiny" (fun () -> ());
  let r = Trace.stop () in
  Trace.write_chrome_json r path;
  let ok = Sys.file_exists path in
  Alcotest.(check bool) "file created below fresh directories" true ok;
  (match parse_json (In_channel.with_open_text path In_channel.input_all) with
  | Obj _ -> ()
  | _ -> Alcotest.fail "written file is not a JSON object");
  match Trace.write_chrome_json r "/proc/definitely/not/t.json" with
  | () -> Alcotest.fail "writing under /proc unexpectedly succeeded"
  | exception Sys_error _ -> ()

let suite =
  [
    Alcotest.test_case "nesting determinism jobs=1" `Quick (test_nesting_determinism 1);
    Alcotest.test_case "nesting determinism jobs=2" `Quick (test_nesting_determinism 2);
    Alcotest.test_case "nesting determinism jobs=8" `Quick (test_nesting_determinism 8);
    Alcotest.test_case "disabled mode allocates nothing" `Quick test_disabled_no_alloc;
    Alcotest.test_case "disabled mode passes values through" `Quick test_disabled_passthrough;
    Alcotest.test_case "span closes on exception" `Quick test_span_closes_on_exception;
    Alcotest.test_case "counters merge across domains" `Quick test_counter_merge_across_domains;
    Alcotest.test_case "chrome json round-trips a minimal parser" `Quick test_chrome_json_roundtrip;
    Alcotest.test_case "write creates parent directories" `Quick test_write_creates_parent_dirs;
  ]
