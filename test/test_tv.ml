module G = Dataflow.Graph
module Equiv = Tv.Equiv
module Mutate = Tv.Mutate

let check = Alcotest.check

(* A mapped combinational fixture (fig2: shifter + adder + compare)
   and a mapped sequential one (the buffered loop). *)
let mapped_fig2 () =
  let g, _, _, _, _ = Fixtures.fig2 () in
  let net, lg = Core.Flow.synth_map Core.Flow.default_config g in
  (g, net, lg)

let mapped_loop () =
  let g, _ = Fixtures.loop ~buffered:true () in
  let net, lg = Core.Flow.synth_map Core.Flow.default_config g in
  (g, net, lg)

let rule_fired id ds = List.exists (fun d -> d.Lint.Diagnostic.rule = id) ds

let lut_flagged id lid ds =
  List.exists
    (fun d -> d.Lint.Diagnostic.rule = id && d.Lint.Diagnostic.loc = Lint.Diagnostic.Lut lid)
    ds

(* ------------------------------------------------------------------ *)
(* Clean circuits validate cleanly (and exact mode has nothing to do). *)

let test_clean () =
  List.iter
    (fun (name, (_, net, lg)) ->
      let ds, r = Lint.Equiv_rules.check_translation ~exact:true net lg in
      check Alcotest.int (name ^ " diagnostics") 0 (List.length ds);
      check Alcotest.int (name ^ " mismatches") 0 (List.length r.Equiv.mismatches);
      check Alcotest.int (name ^ " exact replays") 0 r.Equiv.exact_checked;
      check Alcotest.bool (name ^ " cos covered") true (r.Equiv.cos_checked > 0);
      check Alcotest.bool (name ^ " luts covered") true (r.Equiv.luts_checked > 0))
    [ ("fig2", mapped_fig2 ()); ("loop", mapped_loop ()) ]

(* Signatures are a pure function of (netlist, seed): byte-identical at
   any worker-pool width and across repeated runs. *)
let test_signature_deterministic () =
  let _, net, lg = mapped_fig2 () in
  let signature () = Equiv.signature_hex (Equiv.run net lg) in
  let reference = signature () in
  check Alcotest.string "repeat run" reference (signature ());
  List.iter
    (fun jobs ->
      let sigs =
        Support.Pool.run ~jobs (fun pool ->
            List.init jobs (fun _ -> Support.Pool.submit pool signature)
            |> List.map Support.Pool.await)
      in
      List.iteri
        (fun i s -> check Alcotest.string (Printf.sprintf "jobs=%d worker %d" jobs i) reference s)
        sigs)
    [ 2; 8 ]

let seeds = [ 1; 7; 42 ]

(* ------------------------------------------------------------------ *)
(* The validator catches every seeded miscompile class with the right
   rule and a concrete witness. *)

let test_flip_gate_detected () =
  let _, net, lg = mapped_fig2 () in
  List.iter
    (fun seed ->
      match Mutate.flip_gate ~seed net with
      | None -> Alcotest.fail "no observable gate flip found"
      | Some (net', gid) ->
        check Alcotest.bool "flip site valid" true (gid >= 0 && gid < Net.n_gates net');
        let ds, r = Lint.Equiv_rules.check_translation ~exact:true net' lg in
        check Alcotest.bool "equiv-aig-mismatch fired" true (rule_fired "equiv-aig-mismatch" ds);
        let has_witness =
          List.exists
            (function
              | Equiv.Aig_mismatch { lane; _ } -> lane.Equiv.lane_gates <> []
              | _ -> false)
            r.Equiv.mismatches
        in
        check Alcotest.bool "counterexample lane attached" true has_witness;
        check Alcotest.bool "witnesses replayed" true (r.Equiv.exact_checked > 0);
        check Alcotest.int "every witness confirmed by scalar replay" r.Equiv.exact_checked
          r.Equiv.exact_confirmed)
    seeds

let test_swap_cover_leaf_detected () =
  let _, net, lg = mapped_fig2 () in
  List.iter
    (fun seed ->
      match Mutate.swap_cover_leaf ~seed lg with
      | None -> Alcotest.fail "no observable cover-leaf swap found"
      | Some (lg', lid) ->
        let ds, _ = Lint.Equiv_rules.check_translation net lg' in
        check Alcotest.bool "equiv-cover-mismatch fired" true
          (rule_fired "equiv-cover-mismatch" ds);
        check Alcotest.bool "mutated LUT or an output flagged" true
          (lut_flagged "equiv-cover-mismatch" lid ds
          || List.exists
               (fun d ->
                 d.Lint.Diagnostic.rule = "equiv-cover-mismatch"
                 && match d.Lint.Diagnostic.loc with Lint.Diagnostic.Gate _ -> true | _ -> false)
               ds))
    seeds

let test_swap_label_detected () =
  let g, net, lg = mapped_fig2 () in
  List.iter
    (fun seed ->
      match Mutate.swap_label ~seed ~n_units:(G.n_units g) lg with
      | None -> Alcotest.fail "no label swap found"
      | Some (lg', lid) ->
        let ds, _ = Lint.Equiv_rules.check_translation net lg' in
        check Alcotest.bool "equiv-label-unsound fired at the mutated LUT" true
          (lut_flagged "equiv-label-unsound" lid ds))
    seeds

let test_swap_domain_detected () =
  let _, net, lg = mapped_loop () in
  List.iter
    (fun seed ->
      match Mutate.swap_domain ~seed lg with
      | None -> Alcotest.fail "no domain swap found"
      | Some (lg', lid) ->
        let ds, _ = Lint.Equiv_rules.check_translation net lg' in
        check Alcotest.bool "equiv-domain-inconsistent fired at the mutated LUT" true
          (lut_flagged "equiv-domain-inconsistent" lid ds))
    seeds

let channel_flagged cid ds =
  List.exists
    (fun d ->
      d.Lint.Diagnostic.rule = "equiv-buffer-nonrefinement"
      && d.Lint.Diagnostic.loc = Lint.Diagnostic.Channel cid)
    ds

let test_rogue_buffer_detected () =
  let g, _ = Fixtures.loop ~buffered:true () in
  List.iter
    (fun seed ->
      match Mutate.rogue_buffer ~seed g with
      | None -> Alcotest.fail "no unbuffered channel to corrupt"
      | Some (g', cid) ->
        let ds = Lint.Equiv_rules.check_refinement ~base:g ~buffered:g' ~allowed:[] in
        check Alcotest.bool "rogue buffer flagged on its channel" true (channel_flagged cid ds))
    seeds

let test_tamper_slots_detected () =
  let g, _ = Fixtures.loop ~buffered:true () in
  List.iter
    (fun seed ->
      match Mutate.tamper_slots ~seed g with
      | None -> Alcotest.fail "no buffered channel to tamper with"
      | Some (g', cid) ->
        let ds = Lint.Equiv_rules.check_refinement ~base:g ~buffered:g' ~allowed:[] in
        check Alcotest.bool "tampered slot count flagged on its channel" true
          (channel_flagged cid ds))
    seeds

(* An allowed selection is not a violation; anything beyond it is. *)
let test_refinement_allows_selection () =
  let g, _ = Fixtures.loop ~buffered:true () in
  let unbuffered =
    List.filter (fun c -> G.buffer g c = None) (List.init (G.n_channels g) Fun.id)
  in
  match unbuffered with
  | [] -> Alcotest.fail "loop fixture has no unbuffered channel"
  | c :: _ ->
    let spec = { G.transparent = false; slots = 2 } in
    let g' = G.copy g in
    G.set_buffer g' c (Some spec);
    check Alcotest.int "selected buffer accepted" 0
      (List.length (Lint.Equiv_rules.check_refinement ~base:g ~buffered:g' ~allowed:[ (c, spec) ]));
    check Alcotest.bool "same buffer without a selection rejected" true
      (channel_flagged c (Lint.Equiv_rules.check_refinement ~base:g ~buffered:g' ~allowed:[]))

(* ------------------------------------------------------------------ *)
(* Flow integration: the tv gates are part of both flavors' audits. *)

let test_flow_stages () =
  let g, _ = Fixtures.loop ~buffered:false () in
  let iterative = Core.Flow.iterative g in
  let baseline = Core.Flow.baseline g in
  List.iter
    (fun stage ->
      check Alcotest.bool ("iterative ran " ^ stage) true
        (List.mem stage iterative.Core.Flow.lint_stages))
    [ "tv"; "tv-final"; "final-dfg" ];
  List.iter
    (fun stage ->
      check Alcotest.bool ("baseline ran " ^ stage) true
        (List.mem stage baseline.Core.Flow.lint_stages))
    [ "tv"; "tv-buffer"; "final-dfg" ]

(* ------------------------------------------------------------------ *)
(* The configurable simple-cycle cap (satellite: --cycle-cap /
   REPRO_CYCLE_CAP). *)

let test_cycle_cap_env () =
  let with_env v f =
    Unix.putenv "REPRO_CYCLE_CAP" v;
    Fun.protect ~finally:(fun () -> Unix.putenv "REPRO_CYCLE_CAP" "") f
  in
  with_env "64" (fun () ->
      check Alcotest.int "valid value wins" 64 (Dataflow.Analysis.cycle_cap ~default:512));
  with_env " 128 " (fun () ->
      check Alcotest.int "whitespace tolerated" 128 (Dataflow.Analysis.cycle_cap ~default:512));
  with_env "garbage" (fun () ->
      check Alcotest.int "garbage falls back" 512 (Dataflow.Analysis.cycle_cap ~default:512));
  with_env "0" (fun () ->
      check Alcotest.int "non-positive falls back" 512 (Dataflow.Analysis.cycle_cap ~default:512));
  check Alcotest.int "unset falls back" 512 (Dataflow.Analysis.cycle_cap ~default:512)

let test_cycle_cap_truncation () =
  let g, _ = Fixtures.loop ~buffered:true () in
  let cycles, truncated = Dataflow.Analysis.simple_cycles_capped ~limit:1 g in
  check Alcotest.bool "hits a limit of 1" true (truncated || List.length cycles <= 1);
  let all, untruncated = Dataflow.Analysis.simple_cycles_capped ~limit:1_000_000 g in
  check Alcotest.bool "generous limit is exhaustive" false untruncated;
  check Alcotest.bool "loop fixture has a cycle" true (all <> [])

let suite =
  [
    Alcotest.test_case "clean circuits validate cleanly" `Quick test_clean;
    Alcotest.test_case "signatures deterministic across pool widths" `Quick
      test_signature_deterministic;
    Alcotest.test_case "gate flip caught (equiv-aig-mismatch)" `Quick test_flip_gate_detected;
    Alcotest.test_case "cover-leaf swap caught (equiv-cover-mismatch)" `Quick
      test_swap_cover_leaf_detected;
    Alcotest.test_case "label swap caught (equiv-label-unsound)" `Quick test_swap_label_detected;
    Alcotest.test_case "domain swap caught (equiv-domain-inconsistent)" `Quick
      test_swap_domain_detected;
    Alcotest.test_case "rogue buffer caught (equiv-buffer-nonrefinement)" `Quick
      test_rogue_buffer_detected;
    Alcotest.test_case "tampered slots caught (equiv-buffer-nonrefinement)" `Quick
      test_tamper_slots_detected;
    Alcotest.test_case "allowed selection is a refinement" `Quick test_refinement_allows_selection;
    Alcotest.test_case "flow audits include the tv gates" `Quick test_flow_stages;
    Alcotest.test_case "REPRO_CYCLE_CAP parsing" `Quick test_cycle_cap_env;
    Alcotest.test_case "cycle cap truncation flag" `Quick test_cycle_cap_truncation;
  ]
