let () =
  Alcotest.run "repro"
    [
      ("support", Test_support.suite);
      ("pool", Test_pool.suite);
      ("trace", Test_trace.suite);
      ("dataflow", Test_dataflow.suite);
      ("netlist", Test_netlist.suite);
      ("techmap", Test_techmap.suite);
      ("milp", Test_milp.suite);
      ("milp-differential", Test_milp_differential.suite);
      ("sim", Test_sim.suite);
      ("hls", Test_hls.suite);
      ("timing", Test_timing.suite);
      ("buffering", Test_buffering.suite);
      ("placeroute", Test_placeroute.suite);
      ("core", Test_core.suite);
      ("lint", Test_lint.suite);
      ("tv", Test_tv.suite);
      ("absint", Test_absint.suite);
      ("analysis", Test_analysis.suite);
      ("endtoend", Test_endtoend.suite);
      ("regressions", Test_regressions.suite);
      ("extensions", Test_extensions.suite);
      ("gatelevel", Test_gatelevel.suite);
      ("cache", Test_cache.suite);
      ("fuzz", Test_fuzz.suite);
      ("serve", Test_serve.suite);
    ]
