(* Differential testing of the revised simplex ({!Milp.Simplex}) against
   the retained dense two-phase tableau ({!Milp.Dense_reference}), plus
   regressions pinning the three historical B&B/simplex bugs:

   - budget exhaustion with no incumbent used to report [Infeasible]
     instead of the new [Exhausted];
   - a finite upper bound on a free variable used to constrain only the
     positive split column, making [hi < 0] spuriously infeasible;
   - the incumbent's integer variables were rounded after selection
     without re-evaluating the objective or re-checking feasibility.

   The random instances deliberately cover what buffering LPs exercise
   and what the old solver got wrong: free variables, negative and
   one-sided bounds, fixed variables, equality-heavy and duplicated
   (degenerate) rows. *)

open Milp
module Rng = Support.Rng

(* ---- seeded random model generators ------------------------------ *)

let fi = float_of_int

let random_lp ?(eq_heavy = false) rng tag =
  let n = 2 + Rng.int rng 4 in
  let m = Lp.create tag in
  let vars =
    Array.init n (fun i ->
        let lo, hi =
          match Rng.int rng 6 with
          | 0 -> (neg_infinity, infinity) (* free *)
          | 1 -> (neg_infinity, fi (Rng.int rng 7) -. 3.) (* finite hi, often < 0 *)
          | 2 -> (fi (Rng.int rng 5) -. 4., infinity)
          | 3 ->
            let a = fi (Rng.int rng 9) -. 4. in
            (a, a +. fi (Rng.int rng 4)) (* narrow box, sometimes fixed *)
          | 4 -> (0., fi (Rng.int rng 3)) (* degenerate-prone small box *)
          | _ -> (-2., 2.)
        in
        Lp.add_var m ~lo ~hi (Printf.sprintf "x%d" i))
  in
  let rows = 1 + Rng.int rng 5 in
  let add_random_row () =
    let terms = Array.to_list (Array.map (fun v -> (fi (Rng.int rng 7) -. 3., v)) vars) in
    let rel =
      if eq_heavy then if Rng.int rng 3 = 0 then Lp.Le else Lp.Eq
      else match Rng.int rng 3 with 0 -> Lp.Le | 1 -> Lp.Ge | _ -> Lp.Eq
    in
    let rhs = fi (Rng.int rng 9) -. 4. in
    Lp.add_constr m terms rel rhs;
    (terms, rel, rhs)
  in
  for _ = 1 to rows do
    let terms, rel, rhs = add_random_row () in
    (* duplicated rows make the basis degenerate on purpose *)
    if Rng.int rng 4 = 0 then Lp.add_constr m terms rel rhs
  done;
  let obj = Array.to_list (Array.map (fun v -> (fi (Rng.int rng 9) -. 4., v)) vars) in
  Lp.set_objective m ~maximize:(Rng.bool rng) obj;
  m

let pp_result fmt = function
  | Simplex.Optimal { obj; x } ->
    Format.fprintf fmt "Optimal %g at [%s]" obj
      (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%g") x)))
  | Simplex.Infeasible -> Format.fprintf fmt "Infeasible"
  | Simplex.Unbounded -> Format.fprintf fmt "Unbounded"

(* ---- LP differential: revised vs dense reference ----------------- *)

let check_lp_agreement seed lp =
  let fail fmt = Alcotest.failf ("seed %d: " ^^ fmt) seed in
  let revised = Simplex.solve lp in
  let dense = Dense_reference.solve lp in
  match (revised, dense) with
  | Simplex.Optimal r, Simplex.Optimal d ->
    if not (Lp.feasible lp r.x) then
      fail "revised optimum is infeasible (%a)" pp_result revised;
    if not (Lp.feasible lp d.x) then fail "dense optimum is infeasible (%a)" pp_result dense;
    if abs_float (r.obj -. d.obj) > 1e-5 then
      fail "objectives disagree: revised %a vs dense %a" pp_result revised pp_result dense
  | Simplex.Infeasible, Simplex.Infeasible -> ()
  | Simplex.Unbounded, Simplex.Unbounded -> ()
  | _ -> fail "status disagrees: revised %a vs dense %a" pp_result revised pp_result dense

let test_lp_differential () =
  for seed = 0 to 249 do
    let rng = Rng.create seed in
    check_lp_agreement seed (random_lp rng "diff")
  done

let test_lp_differential_eq_heavy () =
  for seed = 1000 to 1099 do
    let rng = Rng.create seed in
    check_lp_agreement seed (random_lp ~eq_heavy:true rng "diffeq")
  done

(* warm-started re-solve must agree with the cold solve, both on the
   unchanged model and after the bound edits branch & bound performs *)
let test_warm_start_equivalence () =
  for seed = 2000 to 2099 do
    let rng = Rng.create seed in
    let lp = random_lp rng "warm" in
    match Simplex.solve_basis lp with
    | Simplex.Optimal { obj; _ }, Some basis ->
      (match Simplex.solve ~warm:basis lp with
      | Simplex.Optimal { obj = obj'; x } ->
        if abs_float (obj -. obj') > 1e-6 || not (Lp.feasible lp x) then
          Alcotest.failf "seed %d: warm re-solve drifted (%g vs %g)" seed obj obj'
      | r -> Alcotest.failf "seed %d: warm re-solve lost optimality (%a)" seed pp_result r);
      (* shrink one variable's box, as a branching step would *)
      let v = Rng.int rng (Lp.n_vars lp) in
      let lo, hi = Lp.bounds lp v in
      let lo' = if lo = neg_infinity then -1. else lo in
      let hi' = Float.max lo' (if hi = infinity then 1. else Float.min hi (lo' +. 1.)) in
      Lp.set_bounds lp v ~lo:lo' ~hi:hi';
      let warm = Simplex.solve ~warm:basis lp in
      let cold' = Dense_reference.solve lp in
      (match (warm, cold') with
      | Simplex.Optimal w, Simplex.Optimal c ->
        if abs_float (w.obj -. c.obj) > 1e-5 then
          Alcotest.failf "seed %d: warm branch solve %a vs dense %a" seed pp_result warm
            pp_result cold'
      | Simplex.Infeasible, Simplex.Infeasible | Simplex.Unbounded, Simplex.Unbounded -> ()
      | _ ->
        Alcotest.failf "seed %d: warm branch status %a vs dense %a" seed pp_result warm
          pp_result cold')
    | (Simplex.Infeasible | Simplex.Unbounded), _ -> () (* nothing to warm-start *)
    | Simplex.Optimal _, None ->
      Alcotest.failf "seed %d: optimal solve returned no basis" seed
  done

(* ---- MILP differential: branch & bound vs brute force ------------ *)

let test_milp_bruteforce () =
  for seed = 3000 to 3099 do
    let rng = Rng.create seed in
    let n = 2 + Rng.int rng 2 in
    let m = Lp.create "diffint" in
    let boxes =
      Array.init n (fun _ ->
          let lo = Rng.int rng 5 - 2 in
          (lo, lo + 1 + Rng.int rng 3))
    in
    let vars =
      Array.mapi
        (fun i (lo, hi) ->
          Lp.add_var m ~kind:Lp.Integer ~lo:(fi lo) ~hi:(fi hi) (Printf.sprintf "k%d" i))
        boxes
    in
    for _ = 1 to 1 + Rng.int rng 3 do
      let terms = Array.to_list (Array.map (fun v -> (fi (Rng.int rng 5) -. 2., v)) vars) in
      let rel = match Rng.int rng 3 with 0 -> Lp.Le | 1 -> Lp.Ge | _ -> Lp.Eq in
      Lp.add_constr m terms rel (fi (Rng.int rng 8) -. 2.)
    done;
    let obj = Array.to_list (Array.map (fun v -> (fi (Rng.int rng 9) -. 4., v)) vars) in
    Lp.set_objective m ~maximize:true obj;
    let best = ref neg_infinity in
    let point = Array.make n 0. in
    let rec enum i =
      if i = n then begin
        if Lp.feasible m point then best := Float.max !best (Lp.eval_expr obj point)
      end
      else
        let lo, hi = boxes.(i) in
        for v = lo to hi do
          point.(i) <- fi v;
          enum (i + 1)
        done
    in
    enum 0;
    match Bb.solve m with
    | Bb.Infeasible ->
      if !best > neg_infinity then
        Alcotest.failf "seed %d: B&B infeasible but brute force found %g" seed !best
    | Bb.Unbounded -> Alcotest.failf "seed %d: spurious unbounded" seed
    | Bb.Exhausted -> Alcotest.failf "seed %d: budget exhausted on a tiny model" seed
    | Bb.Optimal { obj = got; x; _ } ->
      if not (Lp.feasible m x) then Alcotest.failf "seed %d: B&B point infeasible" seed;
      if abs_float (got -. !best) > 1e-5 then
        Alcotest.failf "seed %d: B&B %g vs brute force %g" seed got !best
  done

(* ---- regressions pinning the three bugs -------------------------- *)

let test_exhausted_not_infeasible () =
  (* feasible MILP, fractional root, zero node budget, no initial seed:
     the search never reaches an incumbent and must say so — the old
     code reported Infeasible, which callers turned into a hard error
     claiming the model has no solution *)
  let m = Lp.create "exhaust" in
  let a = Lp.add_var m ~kind:Lp.Binary "a" in
  let b = Lp.add_var m ~kind:Lp.Binary "b" in
  Lp.add_constr m [ (1., a); (1., b) ] Lp.Le 1.5;
  Lp.set_objective m ~maximize:true [ (1., a); (1., b) ];
  (match Bb.solve ~node_limit:0 m with
  | Bb.Exhausted -> ()
  | Bb.Infeasible -> Alcotest.fail "budget exhaustion reported as Infeasible"
  | Bb.Optimal _ -> Alcotest.fail "no budget, yet an incumbent appeared"
  | Bb.Unbounded -> Alcotest.fail "spurious unbounded");
  (* the same model with any budget is optimal: 1.0 *)
  match Bb.solve m with
  | Bb.Optimal { obj; _ } -> Alcotest.(check (float 1e-9)) "objective" 1. obj
  | _ -> Alcotest.fail "feasible model not solved"

let test_free_var_finite_upper () =
  (* free variable with a finite negative upper bound: the old dense
     solver constrained only the positive split column, so x <= -3 was
     unreachable and the model reported Infeasible *)
  let check name solve =
    let m = Lp.create "freeub" in
    let x = Lp.add_var m ~lo:neg_infinity ~hi:(-3.) "x" in
    let y = Lp.add_var m ~lo:neg_infinity ~hi:infinity "y" in
    Lp.add_constr m [ (1., y); (-1., x) ] Lp.Le 10.;
    Lp.set_objective m ~maximize:true [ (1., x); (1., y) ];
    match solve m with
    | Simplex.Optimal { obj; x = pt } ->
      Alcotest.(check (float 1e-6)) (name ^ " objective") 4. obj;
      Alcotest.(check (float 1e-6)) (name ^ " x") (-3.) pt.(0);
      Alcotest.(check (float 1e-6)) (name ^ " y") 7. pt.(1)
    | r -> Alcotest.failf "%s: expected Optimal 4, got %a" name pp_result r
  in
  check "revised" Simplex.solve;
  check "dense reference" Dense_reference.solve

let test_rounded_incumbent_consistent () =
  (* the incumbent 0.9999995 counts as integral (eps 1e-6) and is
     rounded to 1 on return; the reported objective must be evaluated at
     the returned point, not at the pre-rounding one *)
  let m = Lp.create "roundobj" in
  let x = Lp.add_var m ~kind:Lp.Integer ~hi:10. "x" in
  Lp.add_constr m [ (1., x) ] Lp.Le 0.9999999;
  Lp.set_objective m ~maximize:true [ (1., x) ];
  (match Bb.solve m with
  | Bb.Optimal { obj; x = pt; _ } ->
    Alcotest.(check (float 1e-12)) "objective re-evaluated at returned point"
      (Lp.eval_expr [ (1., x) ] pt)
      obj;
    if not (Lp.feasible m pt) then Alcotest.fail "returned point infeasible"
  | r ->
    Alcotest.failf "expected Optimal, got %s"
      (match r with
      | Bb.Infeasible -> "Infeasible"
      | Bb.Unbounded -> "Unbounded"
      | Bb.Exhausted -> "Exhausted"
      | Bb.Optimal _ -> assert false));
  (* and when rounding breaks a constraint (violation above feasibility
     eps while the fraction is below integrality eps), the unrounded
     LP-feasible point must be returned instead of a corrupted one *)
  let m = Lp.create "roundback" in
  let x = Lp.add_var m ~kind:Lp.Integer ~hi:10. "x" in
  Lp.add_constr m [ (10., x) ] Lp.Le 9.999995;
  Lp.set_objective m ~maximize:true [ (1., x) ];
  match Bb.solve m with
  | Bb.Optimal { obj; x = pt; _ } ->
    if not (Lp.feasible m pt) then
      Alcotest.failf "rounded point kept despite breaking the row (x = %g)" pt.(0);
    Alcotest.(check (float 1e-12)) "objective matches returned point" pt.(0) obj
  | _ -> Alcotest.fail "expected Optimal"

let test_cert_bound_fathoms () =
  (* certifier-guided pruning: the structural bound alone (no LP solve)
     must fathom the up-branch. max x+y st x+y <= 1.5, binaries; the
     certificate says any box that forces a variable to 1 caps the
     objective at 0.9 < incumbent 1, so the subtree dies at the pop.
     Without the cert bound the child's LP bound (1.5) keeps it alive. *)
  let m = Lp.create "certfathom" in
  let x = Lp.add_var m ~kind:Lp.Binary "x" in
  let y = Lp.add_var m ~kind:Lp.Binary "y" in
  Lp.add_constr m [ (1., x); (1., y) ] Lp.Le 1.5;
  Lp.set_objective m ~maximize:true [ (1., x); (1., y) ];
  let cert_bound fixes =
    if List.exists (fun (_, lo, _) -> lo >= 0.5) fixes then 0.9 else 2.
  in
  match Bb.solve ~cert_bound m with
  | Bb.Optimal { obj; proved_optimal; nodes; _ } ->
    Alcotest.(check (float 1e-9)) "objective" 1. obj;
    Alcotest.(check bool) "proved" true proved_optimal;
    if nodes > 3 then
      Alcotest.failf "cert bound did not fathom: %d nodes explored" nodes
  | _ -> Alcotest.fail "expected Optimal"

let suite =
  [
    Alcotest.test_case "revised vs dense: 250 random LPs" `Quick test_lp_differential;
    Alcotest.test_case "revised vs dense: equality-heavy LPs" `Quick
      test_lp_differential_eq_heavy;
    Alcotest.test_case "warm start equivalence" `Quick test_warm_start_equivalence;
    Alcotest.test_case "branch&bound vs brute force (negative boxes)" `Quick
      test_milp_bruteforce;
    Alcotest.test_case "regression: Exhausted, not Infeasible" `Quick
      test_exhausted_not_infeasible;
    Alcotest.test_case "regression: free variable with finite upper bound" `Quick
      test_free_var_finite_upper;
    Alcotest.test_case "regression: rounded incumbent is re-checked" `Quick
      test_rounded_incumbent_consistent;
    Alcotest.test_case "certifier bound fathoms without LP solves" `Quick
      test_cert_bound_fathoms;
  ]
