(* Every shipped lint rule is exercised on a deliberately broken fixture
   (positive: the rule fires) and, where cheap, on a sound one (negative:
   it stays quiet). *)

module G = Dataflow.Graph
module K = Dataflow.Unit_kind
module D = Lint.Diagnostic
module E = Lint.Engine
module L = Techmap.Lutgraph
module LM = Timing.Lut_map
module M = Timing.Model
module Lp = Milp.Lp

let check = Alcotest.check

let fired rule (r : E.report) = List.exists (fun d -> d.D.rule = rule) r.E.diagnostics

let expect_fired rule r = check Alcotest.bool (rule ^ " fires") true (fired rule r)
let expect_quiet rule r = check Alcotest.bool (rule ^ " quiet") false (fired rule r)

let opaque = Some { G.transparent = false; slots = 2 }

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  nn = 0 || at 0

(* ------------------------------------------------------------------ *)
(* DFG rules *)

let test_unconnected_port () =
  let g = G.create "broken" in
  let _ = G.add_unit g (K.Fork 2) in
  let r = E.check_graph g in
  expect_fired "dfg-unconnected-port" r;
  (* one diagnostic per dangling port: 1 input + 2 outputs *)
  check Alcotest.int "three dangling ports" 3 r.E.errors

let test_unreachable_unit () =
  (* an island of two opaque buffer units: fully wired, cyclic, but with
     no entry/source feeding it *)
  let g, _, _, _, _ = Fixtures.fig2 () in
  let b1 = G.add_unit g ~label:"island1" (K.Buffer { transparent = false; slots = 1 }) in
  let b2 = G.add_unit g ~label:"island2" (K.Buffer { transparent = false; slots = 1 }) in
  ignore (G.connect g ~src:b1 ~src_port:0 ~dst:b2 ~dst_port:0);
  ignore (G.connect g ~src:b2 ~src_port:0 ~dst:b1 ~dst_port:0);
  let r = E.check_graph g in
  expect_fired "dfg-unreachable-unit" r;
  (* the opaque buffer units break the island's cycle combinationally *)
  expect_quiet "dfg-comb-cycle" r

let test_comb_cycle () =
  let g, _ = Fixtures.loop ~buffered:false () in
  expect_fired "dfg-comb-cycle" (E.check_graph g);
  let g, _ = Fixtures.loop ~buffered:true () in
  expect_quiet "dfg-comb-cycle" (E.check_graph g)

let test_no_back_edge () =
  let g, back = Fixtures.loop ~buffered:false () in
  let r = E.check_graph ~stage:Lint.Dfg_rules.Pre_buffering g in
  expect_fired "dfg-no-back-edge" r;
  G.set_back_edge g back;
  expect_quiet "dfg-no-back-edge" (E.check_graph ~stage:Lint.Dfg_rules.Pre_buffering g)

let self_loop_graph () =
  let g = G.create "selfloop" in
  let entry = G.add_unit g ~width:0 K.Entry in
  let sink1 = G.add_unit g K.Sink in
  let f = G.add_unit g ~width:8 (K.Fork 2) in
  let sink2 = G.add_unit g K.Sink in
  ignore (G.connect g ~src:entry ~src_port:0 ~dst:sink1 ~dst_port:0);
  let self = G.connect g ~src:f ~src_port:0 ~dst:f ~dst_port:0 in
  ignore (G.connect g ~src:f ~src_port:1 ~dst:sink2 ~dst_port:0);
  (g, self)

let test_self_loop () =
  let g, self = self_loop_graph () in
  expect_fired "dfg-self-loop" (E.check_graph g);
  G.set_buffer g self opaque;
  expect_quiet "dfg-self-loop" (E.check_graph g)

let width_graph ~wide =
  let g = G.create "widths" in
  let entry = G.add_unit g ~width:0 K.Entry in
  let ef = G.add_unit g ~width:0 (K.Fork 2) in
  let c8 = G.add_unit g ~width:8 (K.Const 5) in
  let cw = G.add_unit g ~width:wide (K.Const 3) in
  let add = G.add_unit g ~width:8 (K.operator Dataflow.Ops.Add) in
  let sink = G.add_unit g K.Sink in
  ignore (G.connect g ~src:entry ~src_port:0 ~dst:ef ~dst_port:0);
  ignore (G.connect g ~src:ef ~src_port:0 ~dst:c8 ~dst_port:0);
  ignore (G.connect g ~src:ef ~src_port:1 ~dst:cw ~dst_port:0);
  ignore (G.connect g ~src:c8 ~src_port:0 ~dst:add ~dst_port:0);
  ignore (G.connect g ~src:cw ~src_port:0 ~dst:add ~dst_port:1);
  ignore (G.connect g ~src:add ~src_port:0 ~dst:sink ~dst_port:0);
  g

let test_width_mismatch () =
  (* a 16-bit operand into an 8-bit adder is silently truncated: warn *)
  expect_fired "dfg-width-mismatch" (E.check_graph (width_graph ~wide:16));
  (* a narrower operand is zero-extended by elaboration: legitimate *)
  expect_quiet "dfg-width-mismatch" (E.check_graph (width_graph ~wide:4))

let test_dfg_clean_fixtures () =
  let g, _, _, _, _ = Fixtures.fig2 () in
  check Alcotest.bool "fig2 clean" true (E.clean (E.check_graph g));
  let g, _ = Fixtures.loop () in
  check Alcotest.bool "buffered loop clean" true (E.clean (E.check_graph g))

(* ------------------------------------------------------------------ *)
(* Netlist rules *)

let tiny_graph () =
  let g = G.create "tiny" in
  let entry = G.add_unit g ~width:0 K.Entry in
  let sink = G.add_unit g K.Sink in
  ignore (G.connect g ~src:entry ~src_port:0 ~dst:sink ~dst_port:0);
  g

let test_net_undriven () =
  let g = tiny_graph () in
  let net = Net.create "t" in
  let a = Net.input net ~owner:(-1) ~dom:Net.Data "a" in
  let w = Net.wire net ~owner:(-1) ~dom:Net.Data in
  let y = Net.and2 net ~owner:(-1) a w in
  ignore (Net.output net ~owner:(-1) "y" y);
  expect_fired "net-undriven" (E.check_netlist g net)

let test_net_duplicate_io () =
  let g = tiny_graph () in
  let net = Net.create "t" in
  let a = Net.input net ~owner:(-1) ~dom:Net.Data "x" in
  let b = Net.input net ~owner:(-1) ~dom:Net.Data "x" in
  ignore (Net.output net ~owner:(-1) "y" (Net.and2 net ~owner:(-1) a b));
  expect_fired "net-duplicate-io" (E.check_netlist g net)

let test_net_comb_cycle () =
  let g = tiny_graph () in
  let net = Net.create "t" in
  let a = Net.input net ~owner:(-1) ~dom:Net.Data "a" in
  let w = Net.wire net ~owner:(-1) ~dom:Net.Data in
  let x = Net.and2 net ~owner:(-1) a w in
  Net.connect net w x;
  ignore (Net.output net ~owner:(-1) "y" x);
  expect_fired "net-comb-cycle" (E.check_netlist g net)

let test_net_owner_invalid () =
  let g = tiny_graph () in
  let net = Net.create "t" in
  let a = Net.input net ~owner:99 ~dom:Net.Data "a" in
  ignore (Net.output net ~owner:(-1) "y" a);
  expect_fired "net-owner-invalid" (E.check_netlist g net)

let test_net_clean_elaboration () =
  let g, _, _, _, _ = Fixtures.fig2 () in
  let net = Elaborate.run g in
  check Alcotest.bool "elaborated fig2 clean" true (E.clean (E.check_netlist g net))

(* ------------------------------------------------------------------ *)
(* LUT-mapping rules *)

let lut_pipeline g =
  let net = Elaborate.run g in
  let synth = Techmap.Synth.run net in
  let lg = Techmap.Mapper.run synth in
  let tg, model = Timing.Mapping_aware.build_with_graph g ~net lg in
  (net, lg, tg, model)

let fig2_pipeline () =
  let g, _, _, _, _ = Fixtures.fig2 () in
  (g, lut_pipeline g)

let test_lut_clean () =
  let g, (_, lg, tg, model) = fig2_pipeline () in
  let r = E.check_mapping g lg tg model in
  check Alcotest.bool "fig2 mapping has no errors" true (E.ok r)

let test_lut_owner_invalid () =
  let g, (_, lg, tg, model) = fig2_pipeline () in
  let lg = { lg with L.luts = Array.map (fun l -> { l with L.owner = 999 }) lg.L.luts } in
  expect_fired "lut-owner-invalid" (E.check_mapping g lg tg model)

let test_lut_owner_undetermined () =
  let g, (_, lg, tg, model) = fig2_pipeline () in
  let lg = { lg with L.luts = Array.map (fun l -> { l with L.owner = -1 }) lg.L.luts } in
  let r = E.check_mapping g lg tg model in
  expect_fired "lut-owner-undetermined" r;
  (* an undetermined owner is informational, not an error *)
  check Alcotest.bool "still ok" true (E.ok r)

let test_lut_fake_accounting () =
  let g, (_, lg, tg, model) = fig2_pipeline () in
  expect_fired "lut-fake-accounting"
    (E.check_mapping g lg { tg with LM.n_real = tg.LM.n_real + 1 } model);
  expect_fired "lut-fake-accounting"
    (E.check_mapping g lg { tg with LM.n_fake = -1 } model)

let test_lut_unmapped_edges () =
  let g, (_, lg, tg, model) = fig2_pipeline () in
  let r = E.check_mapping g lg { tg with LM.n_unmapped_edges = 2 } model in
  expect_fired "lut-unmapped-edges" r

let test_lut_cross_buffered () =
  (* graft a crossing node that traverses the loop's buffered back edge *)
  let g, back = Fixtures.loop () in
  let _, lg, tg, model = lut_pipeline g in
  let tg =
    {
      tg with
      LM.kinds = Array.append tg.LM.kinds [| LM.Cross_fwd back |];
      succs = Array.append tg.LM.succs [| [] |];
      preds = Array.append tg.LM.preds [| [] |];
    }
  in
  expect_fired "lut-cross-buffered" (E.check_mapping g lg tg model);
  (* and one referencing a channel that does not exist *)
  let tg = { tg with LM.kinds = Array.append tg.LM.kinds [| LM.Cross_fwd 9999 |] } in
  let tg = { tg with LM.succs = Array.append tg.LM.succs [| [] |] } in
  let tg = { tg with LM.preds = Array.append tg.LM.preds [| [] |] } in
  expect_fired "lut-cross-buffered" (E.check_mapping g lg tg model)

let test_lut_timing_cycle () =
  let g, (_, lg, tg, model) = fig2_pipeline () in
  let succs = Array.copy tg.LM.succs in
  succs.(tg.LM.capture) <- tg.LM.launch :: succs.(tg.LM.capture);
  expect_fired "lut-timing-cycle" (E.check_mapping g lg { tg with LM.succs = succs } model)

let test_lut_penalty_range () =
  let g, (_, lg, tg, model) = fig2_pipeline () in
  expect_fired "lut-penalty-range"
    (E.check_mapping g lg tg
       { model with M.penalty = Array.map (fun _ -> 1.5) model.M.penalty });
  expect_fired "lut-penalty-range"
    (E.check_mapping g lg tg { model with M.penalty = [| 0.5 |] })

(* The §IV-C penalty invariants hold on the whole built-in kernel suite:
   [Lut_map.build] never produces negative node counts and [Generate.run]
   keeps every per-channel penalty within [0, 1]. *)
let test_penalty_bounds_kernels () =
  List.iter
    (fun k ->
      let name = k.Hls.Kernels.name in
      let g = Hls.Kernels.graph k in
      ignore (Core.Flow.seed_back_edges g);
      let _, _, tg, model = lut_pipeline g in
      check Alcotest.bool (name ^ ": n_real >= 0") true (tg.LM.n_real >= 0);
      check Alcotest.bool (name ^ ": n_fake >= 0") true (tg.LM.n_fake >= 0);
      check Alcotest.bool (name ^ ": n_unmapped >= 0") true (tg.LM.n_unmapped_edges >= 0);
      Array.iteri
        (fun c p ->
          check Alcotest.bool
            (Printf.sprintf "%s: penalty(%d) = %g in [0,1]" name c p)
            true
            ((not (Float.is_nan p)) && p >= 0. && p <= 1.))
        model.M.penalty)
    Hls.Kernels.all

(* ------------------------------------------------------------------ *)
(* MILP certificate rules *)

let no_model = { M.pairs = []; penalty = [||]; fixed_reg_to_reg = 0.; delay_nodes = 0; fake_nodes = 0 }

let test_milp_row_violated () =
  let lp = Lp.create "rows" in
  let x = Lp.add_var lp ~hi:10. "x" in
  let y = Lp.add_var lp ~hi:10. "y" in
  Lp.add_constr lp ~name:"cap" [ (1., x); (1., y) ] Lp.Le 1.;
  let r = E.check_milp ~cp_target:4.2 ~buffered:[] no_model lp [| 1.; 1. |] in
  expect_fired "milp-row-violated" r;
  expect_quiet "milp-row-violated"
    (E.check_milp ~cp_target:4.2 ~buffered:[] no_model lp [| 1.; 0. |])

let test_milp_bound_violated () =
  let lp = Lp.create "bounds" in
  let _ = Lp.add_var lp ~hi:1. "x" in
  expect_fired "milp-bound-violated"
    (E.check_milp ~cp_target:4.2 ~buffered:[] no_model lp [| 2. |])

let test_milp_integrality () =
  let lp = Lp.create "int" in
  let _ = Lp.add_var lp ~kind:Lp.Binary "r" in
  expect_fired "milp-integrality"
    (E.check_milp ~cp_target:4.2 ~buffered:[] no_model lp [| 0.5 |])

let test_milp_cp_exceeded () =
  let lp = Lp.create "empty" in
  let model =
    {
      no_model with
      M.pairs =
        [
          { M.p_src = M.T_reg; p_dst = M.T_chan_fwd 0; p_delay = 3. };
          { M.p_src = M.T_chan_fwd 0; p_dst = M.T_reg; p_delay = 3. };
        ];
      penalty = [| 0. |];
    }
  in
  (* unbuffered: 3 + 3 = 6 ns through channel 0 misses a 4 ns target *)
  expect_fired "milp-cp-exceeded" (E.check_milp ~cp_target:4.0 ~buffered:[] model lp [||]);
  (* a buffer on channel 0 restarts the path: both halves fit *)
  expect_quiet "milp-cp-exceeded" (E.check_milp ~cp_target:4.0 ~buffered:[ 0 ] model lp [||])

let test_milp_unfixable_path () =
  let lp = Lp.create "empty" in
  let model =
    { no_model with M.pairs = [ { M.p_src = M.T_reg; p_dst = M.T_reg; p_delay = 10. } ] }
  in
  let r = E.check_milp ~cp_target:4.0 ~buffered:[] model lp [||] in
  expect_fired "milp-unfixable-path" r;
  (* unfixable segments are informational: buffering cannot help them *)
  check Alcotest.bool "no error" true (E.ok r)

let test_milp_solve_failure () =
  let d = Lint.Milp_rules.solve_failure "infeasible" in
  check Alcotest.string "rule id" "milp-solve-failed" d.D.rule;
  check Alcotest.bool "is an error" true (d.D.severity = D.Error)

let test_milp_real_certificate () =
  (* a real solve on fig2 must pass its own certificate check *)
  let g, (_, _, _, model) = fig2_pipeline () in
  let cfg = { Buffering.Formulation.default_config with cp_target = 4.2 } in
  match Buffering.Formulation.solve cfg g model (Buffering.Cfdfc.extract g) with
  | Error msg -> Alcotest.fail ("solve failed: " ^ msg)
  | Ok p ->
    let r =
      E.check_milp ~cp_target:4.2 ~buffered:p.Buffering.Formulation.all_buffered model
        p.Buffering.Formulation.lp p.Buffering.Formulation.solution
    in
    check Alcotest.bool "certificate ok" true (E.ok r)

(* ------------------------------------------------------------------ *)
(* Engine + flow integration *)

let test_gate_semantics () =
  let warn = D.make ~rule:"w" ~severity:D.Warning ~loc:D.Whole "w" in
  let err = D.make ~rule:"e" ~severity:D.Error ~loc:D.Whole "e" in
  let r = E.gate ~stage:"s" (E.of_diagnostics [ warn ]) in
  check Alcotest.int "warnings pass through" 1 r.E.warnings;
  match E.gate ~stage:"s" (E.of_diagnostics [ warn; err ]) with
  | exception E.Lint_error r ->
    check Alcotest.int "payload keeps all findings" 2 (List.length r.E.diagnostics)
  | _ -> Alcotest.fail "expected Lint_error"

let test_catalogue () =
  let rules = E.catalogue () in
  check Alcotest.bool "at least a dozen rules" true (List.length rules >= 12);
  let ids = List.map (fun r -> r.Lint.Rule.id) rules in
  check Alcotest.int "ids unique" (List.length ids) (List.length (List.sort_uniq compare ids))

let test_json_rendering () =
  let d = D.make ~rule:"x" ~severity:D.Error ~loc:(D.Channel 3) "say \"hi\"\n" in
  let j = D.to_json d in
  check Alcotest.bool "escapes quotes" true (contains j {|say \"hi\"\n|});
  let r = E.report_to_json ~label:"k" (E.of_diagnostics [ d ]) in
  check Alcotest.bool "report carries label" true (contains r {|"label":"k"|})

let test_flow_gate_aborts () =
  let g = G.create "broken" in
  let _ = G.add_unit g (K.Fork 2) in
  match Core.Flow.iterative g with
  | exception E.Lint_error r -> check Alcotest.bool "errors recorded" true (r.E.errors > 0)
  | _ -> Alcotest.fail "expected Lint_error"

let test_flow_collects_report () =
  let g, _ = Fixtures.loop () in
  let cfg = { Core.Flow.default_config with max_iterations = 1 } in
  let out = Core.Flow.iterative ~config:cfg g in
  check Alcotest.int "no errors survive a completed run" 0 out.Core.Flow.lint.E.errors;
  let off = { cfg with Core.Flow.lint_gates = false } in
  let out = Core.Flow.iterative ~config:off g in
  check Alcotest.int "gates off: nothing collected" 0
    (List.length out.Core.Flow.lint.E.diagnostics)

let suite =
  [
    Alcotest.test_case "dfg: unconnected port" `Quick test_unconnected_port;
    Alcotest.test_case "dfg: unreachable unit" `Quick test_unreachable_unit;
    Alcotest.test_case "dfg: combinational cycle" `Quick test_comb_cycle;
    Alcotest.test_case "dfg: missing back edge" `Quick test_no_back_edge;
    Alcotest.test_case "dfg: self loop" `Quick test_self_loop;
    Alcotest.test_case "dfg: width mismatch" `Quick test_width_mismatch;
    Alcotest.test_case "dfg: clean fixtures" `Quick test_dfg_clean_fixtures;
    Alcotest.test_case "net: undriven fanin" `Quick test_net_undriven;
    Alcotest.test_case "net: duplicate io" `Quick test_net_duplicate_io;
    Alcotest.test_case "net: combinational cycle" `Quick test_net_comb_cycle;
    Alcotest.test_case "net: invalid owner" `Quick test_net_owner_invalid;
    Alcotest.test_case "net: clean elaboration" `Quick test_net_clean_elaboration;
    Alcotest.test_case "lut: clean mapping" `Quick test_lut_clean;
    Alcotest.test_case "lut: invalid owner" `Quick test_lut_owner_invalid;
    Alcotest.test_case "lut: undetermined owner" `Quick test_lut_owner_undetermined;
    Alcotest.test_case "lut: fake accounting" `Quick test_lut_fake_accounting;
    Alcotest.test_case "lut: unmapped edges" `Quick test_lut_unmapped_edges;
    Alcotest.test_case "lut: crossing over buffer" `Quick test_lut_cross_buffered;
    Alcotest.test_case "lut: timing cycle" `Quick test_lut_timing_cycle;
    Alcotest.test_case "lut: penalty range" `Quick test_lut_penalty_range;
    Alcotest.test_case "lut: penalty bounds on kernel suite" `Slow test_penalty_bounds_kernels;
    Alcotest.test_case "milp: row violated" `Quick test_milp_row_violated;
    Alcotest.test_case "milp: bound violated" `Quick test_milp_bound_violated;
    Alcotest.test_case "milp: integrality" `Quick test_milp_integrality;
    Alcotest.test_case "milp: cp exceeded" `Quick test_milp_cp_exceeded;
    Alcotest.test_case "milp: unfixable path" `Quick test_milp_unfixable_path;
    Alcotest.test_case "milp: solve failure" `Quick test_milp_solve_failure;
    Alcotest.test_case "milp: real solve certificate" `Quick test_milp_real_certificate;
    Alcotest.test_case "engine: gate semantics" `Quick test_gate_semantics;
    Alcotest.test_case "engine: catalogue" `Quick test_catalogue;
    Alcotest.test_case "engine: json rendering" `Quick test_json_rendering;
    Alcotest.test_case "flow: gate aborts on broken graph" `Quick test_flow_gate_aborts;
    Alcotest.test_case "flow: report collected" `Quick test_flow_collects_report;
  ]
