(* Support.Pool: the domain worker pool behind the parallel experiment
   engine. The contract under test is the determinism one — results come
   back in submission order at every [jobs] width, exceptions resurface
   at [await], and nested submission is rejected uniformly (at jobs = 1
   the in-place path would otherwise silently support what the
   multi-domain path cannot, and the two widths must be observationally
   identical). *)

module Pool = Support.Pool

(* per-task busy work of varying length, so at jobs > 1 completions
   genuinely race and submission order != completion order *)
let churn seed =
  let x = ref seed in
  for i = 1 to 1000 * (1 + (seed mod 7)) do
    x := (!x * 1103515245) + i
  done;
  !x

let test_submission_order jobs () =
  let inputs = List.init 40 (fun i -> i) in
  let expected = List.map churn inputs in
  let got = Pool.run ~jobs (fun p -> Pool.map_list p churn inputs) in
  Alcotest.(check (list int))
    (Printf.sprintf "map_list at jobs=%d is in submission order" jobs)
    expected got

exception Boom of int

let test_exception_propagation jobs () =
  Pool.run ~jobs (fun p ->
      let ok = Pool.submit p (fun () -> churn 3) in
      let bad = Pool.submit p (fun () -> raise (Boom 42)) in
      let ok2 = Pool.submit p (fun () -> churn 4) in
      Alcotest.(check int) "task before the failure" (churn 3) (Pool.await ok);
      Alcotest.check_raises "failing task re-raises at await" (Boom 42)
        (fun () -> ignore (Pool.await bad));
      (* a failure poisons only its own future *)
      Alcotest.(check int) "task after the failure" (churn 4) (Pool.await ok2);
      Alcotest.check_raises "await is idempotent on failures" (Boom 42)
        (fun () -> ignore (Pool.await bad)))

let test_nested_submit_rejected jobs () =
  Pool.run ~jobs (fun p ->
      let nested =
        Pool.submit p (fun () ->
            match Pool.submit p (fun () -> 0) with
            | _ -> `Accepted
            | exception Invalid_argument _ -> `Rejected)
      in
      match Pool.await nested with
      | `Rejected -> ()
      | `Accepted ->
          Alcotest.failf "nested submit accepted at jobs=%d" jobs)

let test_create_rejects_zero () =
  Alcotest.check_raises "jobs=0 is invalid"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0))

let test_shutdown_idempotent () =
  let p = Pool.create ~jobs:2 in
  let fut = Pool.submit p (fun () -> churn 5) in
  Alcotest.(check int) "result" (churn 5) (Pool.await fut);
  Pool.shutdown p;
  Pool.shutdown p;
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.submit p (fun () -> 0)));
  (* the sequential pool rejects identically *)
  let p1 = Pool.create ~jobs:1 in
  Pool.shutdown p1;
  Alcotest.check_raises "submit after shutdown, jobs=1"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.submit p1 (fun () -> 0)))

let test_default_jobs () =
  let with_env v f =
    let old = Sys.getenv_opt "REPRO_JOBS" in
    (match v with Some v -> Unix.putenv "REPRO_JOBS" v | None -> ());
    Fun.protect f ~finally:(fun () ->
        Unix.putenv "REPRO_JOBS" (Option.value old ~default:""))
  in
  with_env (Some "3") (fun () ->
      Alcotest.(check int) "REPRO_JOBS=3" 3 (Pool.default_jobs ()));
  with_env (Some "0") (fun () ->
      Alcotest.(check int) "REPRO_JOBS=0 clamps to 1" 1 (Pool.default_jobs ()));
  with_env (Some "banana") (fun () ->
      Alcotest.(check int) "unparsable falls back to 1" 1 (Pool.default_jobs ()))

(* ------------------------------------------------------------------ *)
(* The engine-level property: run_all_parallel ~jobs:4 returns the same
   rows — row for row — as the sequential run_all, on three kernels.
   Tiny kernels and a small branch & bound budget keep the twelve flow
   runs test-sized; determinism does not depend on the budget. *)

let test_run_all_parallel_equals_sequential () =
  let kernels = Fixtures.tiny_kernels in
  let config = Fixtures.cheap_flow_config in
  let seq = Core.Experiment.run_all ~config ~kernels () in
  let par = Core.Experiment.run_all_parallel ~config ~jobs:4 ~kernels () in
  let render rows = Format.asprintf "%a" Core.Report.csv rows in
  Alcotest.(check string)
    "jobs=4 rows are byte-identical to sequential" (render seq) (render par);
  List.iter
    (fun (r : Core.Experiment.row) ->
      Alcotest.(check bool)
        (r.bench ^ ": baseline simulation matches the interpreter")
        true r.prev.Core.Experiment.value_ok;
      Alcotest.(check bool)
        (r.bench ^ ": iterative simulation matches the interpreter")
        true r.iter.Core.Experiment.value_ok)
    par

let suite =
  [
    Alcotest.test_case "submission order, jobs=1" `Quick
      (test_submission_order 1);
    Alcotest.test_case "submission order, jobs=2" `Quick
      (test_submission_order 2);
    Alcotest.test_case "submission order, jobs=8" `Quick
      (test_submission_order 8);
    Alcotest.test_case "exception propagation, jobs=1" `Quick
      (test_exception_propagation 1);
    Alcotest.test_case "exception propagation, jobs=2" `Quick
      (test_exception_propagation 2);
    Alcotest.test_case "nested submit rejected, jobs=1" `Quick
      (test_nested_submit_rejected 1);
    Alcotest.test_case "nested submit rejected, jobs=2" `Quick
      (test_nested_submit_rejected 2);
    Alcotest.test_case "create rejects jobs=0" `Quick test_create_rejects_zero;
    Alcotest.test_case "shutdown is idempotent" `Quick test_shutdown_idempotent;
    Alcotest.test_case "default_jobs reads REPRO_JOBS" `Quick test_default_jobs;
    Alcotest.test_case "run_all_parallel == run_all (3 kernels)" `Slow
      test_run_all_parallel_equals_sequential;
  ]
