(* The throughput & liveness certifier: pinned cycle-ratio fixtures where
   Howard and Karp must agree to 1e-9, liveness violations on deliberately
   broken loops, the perf-* lint rules, and the cross-flavor property that
   the MILP's throughput claims never exceed the certified bound. *)

module G = Dataflow.Graph
module K = Dataflow.Unit_kind
module A = Dataflow.Analysis
module CR = Analysis.Cycle_ratio
module C = Analysis.Certify
module D = Lint.Diagnostic
module E = Lint.Engine
module LM = Timing.Lut_map

let check = Alcotest.check
let close msg a b = check (Alcotest.float 1e-9) msg a b

let fired rule (r : E.report) = List.exists (fun d -> d.D.rule = rule) r.E.diagnostics
let expect_fired rule r = check Alcotest.bool (rule ^ " fires") true (fired rule r)
let expect_quiet rule r = check Alcotest.bool (rule ^ " quiet") false (fired rule r)

let edge e_src e_dst e_cost e_time e_id = { CR.e_src; e_dst; e_cost; e_time; e_id }

(* ------------------------------------------------------------------ *)
(* Cycle_ratio: pinned hand-built instances *)

let test_two_cycle_pinned () =
  (* cycle A: 0 -> 1 -> 0, ratio (1+0)/(1+2) = 1/3
     cycle B: 0 -> 2 -> 0, ratio (1+1)/(1+1) = 1 *)
  let gr =
    {
      CR.n_nodes = 3;
      edges =
        [
          edge 0 1 1 1 0; edge 1 0 0 2 1; edge 0 2 1 1 2; edge 2 0 1 1 3;
        ];
    }
  in
  match CR.howard gr with
  | None -> Alcotest.fail "howard found no cycle"
  | Some (w, stats) ->
    close "howard ratio" (1. /. 3.) w.CR.ratio;
    check Alcotest.int "witness length" 2 (List.length w.CR.cycle);
    check (Alcotest.list Alcotest.int) "witness edges" [ 0; 1 ]
      (List.sort compare (List.map (fun e -> e.CR.e_id) w.CR.cycle));
    check Alcotest.bool "iterated" true (stats.CR.iterations >= 1);
    (match CR.karp gr with
    | None -> Alcotest.fail "karp found no cycle"
    | Some k -> close "karp agrees to 1e-9" w.CR.ratio k)

let test_min_cycle_mean_negative () =
  (* 0 -> 1 (cost 2), 1 -> 0 (cost -3): mean (2 - 3) / 2 = -1/2 *)
  let gr = { CR.n_nodes = 2; edges = [ edge 0 1 2 1 0; edge 1 0 (-3) 1 1 ] } in
  match CR.min_cycle_mean gr with
  | None -> Alcotest.fail "no cycle"
  | Some (w, _) -> close "negative mean" (-0.5) w.CR.ratio

let test_karp_contraction_and_expansion () =
  (* a zero-time edge (contracted) and a time-3 edge (chain-expanded):
     ratio (5+1)/(0+3) = 2 *)
  let gr = { CR.n_nodes = 2; edges = [ edge 0 1 5 0 0; edge 1 0 1 3 1 ] } in
  (match CR.howard gr with
  | None -> Alcotest.fail "howard found no cycle"
  | Some (w, _) -> close "howard" 2.0 w.CR.ratio);
  match CR.karp gr with
  | None -> Alcotest.fail "karp found no cycle"
  | Some k -> close "karp" 2.0 k

let test_acyclic_is_none () =
  let gr = { CR.n_nodes = 3; edges = [ edge 0 1 1 1 0; edge 1 2 1 1 1 ] } in
  check Alcotest.bool "howard none" true (CR.howard gr = None);
  check Alcotest.bool "karp none" true (CR.karp gr = None)

let test_zero_time_cycle_rejected () =
  let gr = { CR.n_nodes = 2; edges = [ edge 0 1 1 0 0; edge 1 0 1 0 1 ] } in
  let rejects f = try ignore (f gr); false with Invalid_argument _ -> true in
  check Alcotest.bool "howard rejects" true (rejects CR.howard);
  check Alcotest.bool "karp rejects" true (rejects CR.karp)

let test_random_howard_karp_agree () =
  (* randomised cross-check: the two independent solvers agree on dense
     strongly-connected instances (seeded, so deterministic) *)
  let st = Random.State.make [| 0x5eed |] in
  for _ = 1 to 40 do
    let n = 2 + Random.State.int st 6 in
    (* a Hamiltonian ring guarantees strong connectivity, then chords *)
    let ring = List.init n (fun i -> (i, (i + 1) mod n)) in
    let chords =
      List.init (Random.State.int st (2 * n)) (fun _ ->
          (Random.State.int st n, Random.State.int st n))
    in
    let edges =
      List.mapi
        (fun i (s, d) ->
          edge s d (Random.State.int st 7) (1 + Random.State.int st 3) i)
        (ring @ chords)
    in
    let gr = { CR.n_nodes = n; edges } in
    match (CR.howard gr, CR.karp gr) with
    | Some (w, _), Some k -> close "howard = karp" w.CR.ratio k
    | _ -> Alcotest.fail "solver found no cycle on a ring"
  done

(* ------------------------------------------------------------------ *)
(* Certify on dataflow fixtures *)

let test_certify_live_loop () =
  let g, _ = Fixtures.loop ~buffered:true () in
  let cert = C.certify g in
  check Alcotest.bool "live" true cert.C.live;
  check Alcotest.int "one cyclic scc" 1 (List.length cert.C.sccs);
  (* the loop carries 1 token over 1 cycle of latency (the opaque back
     edge; every unit on it is combinational) *)
  close "bound" 1.0 cert.C.throughput;
  check Alcotest.bool "karp agrees" true (C.karp_agrees cert);
  let s = List.hd cert.C.sccs in
  check Alcotest.bool "critical cycle witnessed" true (s.C.sc_critical <> None);
  check Alcotest.bool "howard iterated" true (cert.C.howard_iterations >= 1);
  check Alcotest.bool "karp ran" true (cert.C.karp_checks >= 1);
  expect_quiet "perf-comb-loop" (E.check_perf ~phi:[] cert g);
  expect_quiet "perf-deadlock" (E.check_perf ~phi:[] cert g)

let test_certify_deadlock () =
  (* one slot on the back edge and zero pipeline slack elsewhere: the
     single loop token fills the cycle's capacity *)
  let g, back = Fixtures.loop ~buffered:true () in
  G.set_buffer g back (Some { G.transparent = false; slots = 1 });
  let cert = C.certify g in
  check Alcotest.bool "not live" false cert.C.live;
  check Alcotest.bool "deadlock violation" true
    (List.exists (function C.Deadlock _ -> true | _ -> false) cert.C.violations);
  let r = E.check_perf ~phi:[] cert g in
  expect_fired "perf-deadlock" r;
  check Alcotest.bool "gate raises" true
    (try ignore (E.gate ~stage:"perf" r); false with E.Lint_error _ -> true);
  (* the simulator concurs: the circuit deadlocks *)
  let sim = Sim.Elastic.run ~config:{ Sim.Elastic.default_config with max_cycles = 10_000 } g in
  check Alcotest.bool "sim deadlocks too" true
    (sim.Sim.Elastic.deadlocked || not sim.Sim.Elastic.finished)

let test_certify_comb_loop () =
  let g, _ = Fixtures.loop ~buffered:false () in
  let cert = C.certify g in
  check Alcotest.bool "not live" false cert.C.live;
  check Alcotest.bool "comb-loop violation" true
    (List.exists (function C.Comb_loop _ -> true | _ -> false) cert.C.violations);
  close "bound collapses" 0.0 cert.C.throughput;
  expect_fired "perf-comb-loop" (E.check_perf ~phi:[] cert g)

let test_phi_overclaim () =
  let g, _ = Fixtures.loop ~buffered:true () in
  let cert = C.certify g in
  let s = List.hd cert.C.sccs in
  let over = [ (s.C.sc_units, s.C.sc_bound +. 0.1) ] in
  expect_fired "perf-phi-overclaimed" (E.check_perf ~phi:over cert g);
  let exact = [ (s.C.sc_units, s.C.sc_bound) ] in
  expect_quiet "perf-phi-overclaimed" (E.check_perf ~phi:exact cert g);
  (* eps absorbs LP noise *)
  let noisy = [ (s.C.sc_units, s.C.sc_bound +. 1e-6) ] in
  expect_quiet "perf-phi-overclaimed" (E.check_perf ~phi:noisy cert g)

let test_truncation_observable () =
  let g = Hls.Kernels.graph (Hls.Kernels.by_name "gsum") in
  ignore (Core.Flow.seed_back_edges g);
  let all, flag = A.simple_cycles_capped g in
  check Alcotest.bool "gsum enumerates fully" false flag;
  check Alcotest.bool "has >= 2 cycles" true (List.length all >= 2);
  let few, capped = A.simple_cycles_capped ~limit:1 g in
  check Alcotest.int "cap respected" 1 (List.length few);
  check Alcotest.bool "cap reported" true capped;
  (* the flag rides into the CFDFC records... *)
  let cfdfcs = Buffering.Cfdfc.extract ~cycle_limit:1 g in
  check Alcotest.bool "cfdfc carries the flag" true
    (List.for_all (fun cf -> cf.Buffering.Cfdfc.truncated) cfdfcs);
  (* ...and surfaces as the perf warning *)
  let cert = C.certify g in
  let r = E.check_perf ~truncated:true ~phi:[] cert g in
  expect_fired "perf-cycle-limit-truncated" r;
  check Alcotest.bool "only a warning" true (E.ok r);
  expect_quiet "perf-cycle-limit-truncated" (E.check_perf ~phi:[] cert g)

let test_trace_counters () =
  let g, _ = Fixtures.loop ~buffered:true () in
  Support.Trace.start ();
  ignore (C.certify g);
  let r = Support.Trace.stop () in
  check Alcotest.bool "perf.sccs" true (Support.Trace.counter r "perf.sccs" >= 1);
  check Alcotest.bool "perf.cycles" true (Support.Trace.counter r "perf.cycles" >= 1);
  check Alcotest.bool "perf.howard.iters" true
    (Support.Trace.counter r "perf.howard.iters" >= 1);
  check Alcotest.bool "perf.karp.checks" true
    (Support.Trace.counter r "perf.karp.checks" >= 1)

let test_to_json_shape () =
  let g, _ = Fixtures.loop ~buffered:true () in
  let s = C.to_json (C.certify g) in
  List.iter
    (fun needle ->
      let nh = String.length s and nn = String.length needle in
      let rec at i = i + nn <= nh && (String.sub s i nn = needle || at (i + 1)) in
      check Alcotest.bool ("json has " ^ needle) true (at 0))
    [ "\"throughput_bound\""; "\"live\":true"; "\"sccs\""; "\"karp\"" ]

(* ------------------------------------------------------------------ *)
(* SIV-D domain discipline (check_domains) on a fabricated timing graph *)

let domain_fixture pivot_unit =
  (* launch -> Cross_fwd -> fake pivot -> Cross_bwd -> capture *)
  {
    LM.kinds =
      [|
        LM.Launch;
        LM.Cross_fwd 0;
        LM.Delay { unit_id = pivot_unit; delay = 0.; fake = true };
        LM.Cross_bwd 0;
        LM.Capture;
      |];
    succs = [| [ 1 ]; [ 2 ]; [ 3 ]; [ 4 ]; [] |];
    preds = [| []; [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] |];
    launch = 0;
    capture = 4;
    n_real = 0;
    n_fake = 1;
    n_unmapped_edges = 0;
  }

let test_domain_crossing_rule () =
  let g, _ = Fixtures.loop ~buffered:true () in
  let interaction = Elaborate.interaction_units g in
  let non_interaction =
    List.filter (fun u -> not (List.mem u interaction)) (List.init (G.n_units g) Fun.id)
  in
  (* a pivot in a fork (not an interaction unit) violates SIV-D... *)
  let bad = E.of_diagnostics (Lint.Perf_rules.check_domains g (domain_fixture (List.hd non_interaction))) in
  expect_fired "perf-domain-crossing" bad;
  (* ...the same pivot in a merge/branch is the legal FPL'22 shape *)
  let good = E.of_diagnostics (Lint.Perf_rules.check_domains g (domain_fixture (List.hd interaction))) in
  expect_quiet "perf-domain-crossing" good;
  (* and an out-of-range attribution is always an error *)
  let oob = E.of_diagnostics (Lint.Perf_rules.check_domains g (domain_fixture 9999)) in
  expect_fired "perf-domain-crossing" oob

let test_delay_uncovered_rule () =
  let g, _ = Fixtures.loop ~buffered:true () in
  let tg =
    {
      LM.kinds =
        [| LM.Launch; LM.Delay { unit_id = 0; delay = 0.7; fake = false }; LM.Capture |];
      (* the real delay node hangs off no launch-to-capture path *)
      succs = [| [ 2 ]; []; [] |];
      preds = [| []; []; [ 0 ] |];
      launch = 0;
      capture = 2;
      n_real = 1;
      n_fake = 0;
      n_unmapped_edges = 0;
    }
  in
  let r = E.of_diagnostics (Lint.Perf_rules.check_domains g tg) in
  expect_fired "perf-delay-uncovered" r;
  check Alcotest.bool "warning only" true (E.ok r);
  (* the real mapping pipeline produces a fully covered timing graph *)
  let net, lg = Core.Flow.synth_map Core.Flow.default_config g in
  let real = LM.build g ~net lg in
  expect_quiet "perf-delay-uncovered" (E.of_diagnostics (Lint.Perf_rules.check_domains g real));
  expect_quiet "perf-domain-crossing" (E.of_diagnostics (Lint.Perf_rules.check_domains g real))

(* ------------------------------------------------------------------ *)
(* Flow integration + the cross-kernel properties *)

let test_flow_reports_certificate () =
  let g, _ = Fixtures.loop ~buffered:false () in
  let outcome = Core.Flow.iterative ~config:Fixtures.cheap_flow_config g in
  check Alcotest.bool "perf gate ran" true (List.mem "perf" outcome.Core.Flow.lint_stages);
  check Alcotest.bool "certificate is live" true outcome.Core.Flow.certified.C.live;
  List.iter
    (fun it ->
      check Alcotest.bool "phi <= bound + eps" true
        (it.Core.Flow.milp_phi <= it.Core.Flow.certified_bound +. 1e-4))
    outcome.Core.Flow.iterations;
  let base = Core.Flow.baseline ~config:Fixtures.cheap_flow_config g in
  check Alcotest.bool "baseline perf gate ran" true (List.mem "perf" base.Core.Flow.lint_stages);
  check Alcotest.bool "baseline certified" true base.Core.Flow.certified.C.live

(* every kernel, LP-free: the certifier itself must be instant, prove
   liveness of the seeded circuits and have Howard and Karp agree *)
let test_all_kernels_certified () =
  List.iter
    (fun k ->
      let g = G.copy (Hls.Kernels.graph k) in
      ignore (Core.Flow.seed_back_edges g);
      let cert = C.certify g in
      check Alcotest.bool (k.Hls.Kernels.name ^ " live") true cert.C.live;
      check Alcotest.bool (k.Hls.Kernels.name ^ " karp agrees") true (C.karp_agrees cert);
      check Alcotest.bool (k.Hls.Kernels.name ^ " bound in (0,1]") true
        (cert.C.throughput > 0. && cert.C.throughput <= 1.))
    Hls.Kernels.all

(* pre-characterised flavor: solve the buffer MILP, certify the placement
   it proposes, and demand phi <= bound + eps with Howard/Karp agreement
   — the acceptance property of the certifier. [cycle_limit] and
   [node_limit] are capped hard and the sweep defaults to the kernels
   whose dense-simplex relaxation stays test-budget-sized (the property
   itself is cap-independent: any feasible solution's phi must respect
   the bound); REPRO_FULL_MILP_PROPERTY=1 widens it to all nine at the
   cost of several minutes of LP time. *)
let milp_property_kernels () =
  if Sys.getenv_opt "REPRO_FULL_MILP_PROPERTY" <> None then Hls.Kernels.all
  else
    List.filter
      (fun k ->
        List.mem k.Hls.Kernels.name
          [ "insertion_sort"; "gsum"; "gsumif"; "gaussian"; "matrix" ])
      Hls.Kernels.all

let test_kernels_certified_vs_milp () =
  List.iter
    (fun k ->
      let g = G.copy (Hls.Kernels.graph k) in
      ignore (Core.Flow.seed_back_edges g);
      let model = Timing.Precharacterized.build g in
      let cfdfcs = Buffering.Cfdfc.extract ~cycle_limit:24 g in
      let truncated = List.exists (fun cf -> cf.Buffering.Cfdfc.truncated) cfdfcs in
      let cfg =
        {
          Buffering.Formulation.default_config with
          cp_target = 4.2;
          use_penalty = false;
          node_limit = 5;
        }
      in
      match Buffering.Formulation.solve cfg g model cfdfcs with
      | Error msg -> Alcotest.fail (k.Hls.Kernels.name ^ ": MILP failed: " ^ msg)
      | Ok p ->
        let candidate = G.copy g in
        List.iter
          (fun c -> G.set_buffer candidate c (Some { G.transparent = false; slots = 2 }))
          p.Buffering.Formulation.new_buffers;
        let cert = C.certify candidate in
        check Alcotest.bool (k.Hls.Kernels.name ^ " live") true cert.C.live;
        check Alcotest.bool (k.Hls.Kernels.name ^ " karp agrees") true (C.karp_agrees cert);
        let phi =
          List.map2
            (fun (cf : Buffering.Cfdfc.t) th -> (cf.Buffering.Cfdfc.units, th))
            cfdfcs p.Buffering.Formulation.throughput
        in
        let r = E.check_perf ~truncated ~phi cert candidate in
        check Alcotest.int (k.Hls.Kernels.name ^ " no perf errors") 0 r.E.errors)
    (milp_property_kernels ())

(* mapping-aware flavor on the tiny kernels: the full iterative flow's
   own perf gate must pass and the outcome must carry the certificate *)
let test_tiny_kernels_mapping_aware () =
  List.iter
    (fun k ->
      let g = Hls.Kernels.graph k in
      let outcome = Core.Flow.iterative ~config:Fixtures.cheap_flow_config g in
      check Alcotest.bool (k.Hls.Kernels.name ^ " perf gate") true
        (List.mem "perf" outcome.Core.Flow.lint_stages);
      check Alcotest.bool (k.Hls.Kernels.name ^ " live") true
        outcome.Core.Flow.certified.C.live;
      List.iter
        (fun it ->
          check Alcotest.bool (k.Hls.Kernels.name ^ " phi <= bound") true
            (it.Core.Flow.milp_phi <= it.Core.Flow.certified_bound +. 1e-4))
        outcome.Core.Flow.iterations)
    Fixtures.tiny_kernels

(* the simulator never beats the certificate: measured steady-state
   transfers on any channel inside a cyclic SCC stay under bound * cycles
   (plus a small start-up allowance) *)
let test_sim_respects_bound () =
  List.iter
    (fun k ->
      let g = G.copy (Hls.Kernels.graph k) in
      ignore (Core.Flow.seed_back_edges g);
      let cert = C.certify g in
      let sim = Sim.Elastic.run ~memories:(k.Hls.Kernels.mems ()) g in
      check Alcotest.bool (k.Hls.Kernels.name ^ " finishes") true sim.Sim.Elastic.finished;
      let cycles = float_of_int sim.Sim.Elastic.cycles in
      List.iter
        (fun s ->
          let members = Hashtbl.create 16 in
          List.iter (fun u -> Hashtbl.replace members u ()) s.C.sc_units;
          G.iter_channels g (fun ch ->
              if Hashtbl.mem members ch.G.src && Hashtbl.mem members ch.G.dst then begin
                let transfers =
                  sim.Sim.Elastic.channel_stats.(ch.G.cid).Sim.Elastic.cs_transfers
                in
                check Alcotest.bool
                  (Printf.sprintf "%s c%d within bound" k.Hls.Kernels.name ch.G.cid)
                  true
                  (float_of_int transfers <= (s.C.sc_bound *. cycles) +. 4.)
              end))
        cert.C.sccs)
    Fixtures.tiny_kernels

let suite =
  [
    ("two-cycle pinned: Howard == Karp == 1/3", `Quick, test_two_cycle_pinned);
    ("min cycle mean with negative costs", `Quick, test_min_cycle_mean_negative);
    ("karp contraction and chain expansion", `Quick, test_karp_contraction_and_expansion);
    ("acyclic graph yields no ratio", `Quick, test_acyclic_is_none);
    ("zero-time cycle rejected by both solvers", `Quick, test_zero_time_cycle_rejected);
    ("randomised Howard/Karp agreement", `Quick, test_random_howard_karp_agree);
    ("certify: live buffered loop", `Quick, test_certify_live_loop);
    ("certify: zero-slack cycle deadlocks", `Quick, test_certify_deadlock);
    ("certify: unbuffered loop is combinational", `Quick, test_certify_comb_loop);
    ("perf-phi-overclaimed fires and eps absorbs noise", `Quick, test_phi_overclaim);
    ("cycle-limit truncation is observable end to end", `Quick, test_truncation_observable);
    ("certifier emits trace counters", `Quick, test_trace_counters);
    ("certificate JSON shape", `Quick, test_to_json_shape);
    ("SIV-D pivots only at interaction units", `Quick, test_domain_crossing_rule);
    ("real delay nodes must be covered", `Quick, test_delay_uncovered_rule);
    ("flow gates and reports the certificate", `Quick, test_flow_reports_certificate);
    ("all kernels: certified live, Howard == Karp", `Quick, test_all_kernels_certified);
    ("kernels: MILP phi <= certified bound", `Slow, test_kernels_certified_vs_milp);
    ("tiny kernels: mapping-aware flow certified", `Slow, test_tiny_kernels_mapping_aware);
    ("simulation never beats the certified bound", `Slow, test_sim_respects_bound);
  ]
