module G = Dataflow.Graph

let check = Alcotest.check

(* The loop fixture is tiny, so the complete flows run in well under a
   second and still exercise synthesis, timing models, the MILP, the
   level check and the subset iteration. *)

let test_seed_back_edges () =
  let g, back = Fixtures.loop ~buffered:false () in
  let seeded = Core.Flow.seed_back_edges g in
  check Alcotest.bool "back edge seeded" true (List.mem back seeded);
  check Alcotest.bool "buffer placed" true (G.buffer g back <> None)

let test_iterative_on_loop () =
  let g, _ = Fixtures.loop ~buffered:false () in
  let outcome = Core.Flow.iterative g in
  check Alcotest.bool "has iterations" true (outcome.Core.Flow.iterations <> []);
  check Alcotest.bool "final levels positive" true (outcome.Core.Flow.final_levels > 0);
  check Alcotest.bool "buffers placed" true (outcome.Core.Flow.total_buffers >= 1);
  (* the optimised circuit must still be a live elastic circuit *)
  let r = Sim.Elastic.run outcome.Core.Flow.graph in
  check Alcotest.bool "still functional" true r.Sim.Elastic.finished;
  check (Alcotest.option Alcotest.int) "same result" (Some 10) r.Sim.Elastic.exit_value

let test_baseline_on_loop () =
  let g, _ = Fixtures.loop ~buffered:false () in
  let outcome = Core.Flow.baseline g in
  check Alcotest.int "single shot" 1 (List.length outcome.Core.Flow.iterations);
  let r = Sim.Elastic.run outcome.Core.Flow.graph in
  check Alcotest.bool "functional" true r.Sim.Elastic.finished;
  check (Alcotest.option Alcotest.int) "same result" (Some 10) r.Sim.Elastic.exit_value

let test_input_not_mutated () =
  let g, back = Fixtures.loop ~buffered:false () in
  let _ = Core.Flow.iterative g in
  check Alcotest.bool "input untouched" true (G.buffer g back = None)

let test_tight_target_iterates () =
  (* an unreachably tight level target must exhaust the iteration budget
     without crashing *)
  let g, _ = Fixtures.loop ~buffered:false () in
  let config =
    {
      Core.Flow.default_config with
      Core.Flow.target_levels = 1;
      max_iterations = 2;
      milp = { Core.Flow.default_config.Core.Flow.milp with Buffering.Formulation.cp_target = 0.7 };
    }
  in
  let outcome = Core.Flow.iterative ~config g in
  check Alcotest.bool "did not meet target" false outcome.Core.Flow.met_target;
  check Alcotest.int "used the budget" 2 (List.length outcome.Core.Flow.iterations)

(* Slack matching runs before the final level check, so every recorded
   final field describes the circuit the flow actually returns: the
   padded graph, its netlist, and its mapping all agree. *)
let test_slack_matched_outcome () =
  let run slack_match =
    let config = { Fixtures.cheap_flow_config with Core.Flow.slack_match } in
    Core.Flow.iterative ~config (Hls.Kernels.graph Fixtures.tsum)
  in
  let off = run false and on = run true in
  check Alcotest.bool "slack padding placed extra buffers" true
    (on.Core.Flow.total_buffers > off.Core.Flow.total_buffers);
  (* re-synthesise the returned graph: the recorded netlist and mapping
     must be those of the post-slack circuit, not a stale pre-slack one *)
  let renet = Elaborate.run on.Core.Flow.graph in
  let relg = Techmap.Mapper.run ~k:Core.Flow.default_config.Core.Flow.lut_k
      (Techmap.Synth.run renet) in
  check Alcotest.int "final_levels is the post-slack level count"
    relg.Techmap.Lutgraph.max_level on.Core.Flow.final_levels;
  check Alcotest.int "lutgraph matches the final circuit's levels"
    relg.Techmap.Lutgraph.max_level on.Core.Flow.lutgraph.Techmap.Lutgraph.max_level;
  check Alcotest.int "lutgraph matches the final circuit's LUT count"
    (Techmap.Lutgraph.n_luts relg) (Techmap.Lutgraph.n_luts on.Core.Flow.lutgraph);
  check Alcotest.int "net matches the final circuit's gate count"
    (Net.n_gates renet) (Net.n_gates on.Core.Flow.net);
  check Alcotest.bool "met_target judged on the post-slack levels" true
    (on.Core.Flow.met_target
     = (on.Core.Flow.final_levels <= Fixtures.cheap_flow_config.Core.Flow.target_levels))

(* Experiment.measure reads the flow's own final netlist instead of
   re-synthesising: the reported metrics must be exactly an STA of the
   outcome's [net]/[lutgraph]. *)
let test_measure_uses_flow_netlist () =
  let config = Fixtures.cheap_flow_config in
  List.iter
    (fun flavor ->
      let metrics, outcome =
        Core.Experiment.run_flow ~config ~flavor Fixtures.tsum
      in
      let pr =
        Placeroute.Sta.analyze ~seed:7 outcome.Core.Flow.net
          outcome.Core.Flow.lutgraph
      in
      check (Alcotest.float 1e-9) "cp from the outcome netlist"
        pr.Placeroute.Sta.cp metrics.Core.Experiment.cp;
      check Alcotest.int "luts from the outcome netlist"
        pr.Placeroute.Sta.n_luts metrics.Core.Experiment.luts;
      check Alcotest.int "ffs from the outcome netlist"
        pr.Placeroute.Sta.n_ffs metrics.Core.Experiment.ffs;
      check Alcotest.int "levels are the outcome's final levels"
        outcome.Core.Flow.final_levels metrics.Core.Experiment.levels)
    [ `Baseline; `Iterative ]

(* Both flavors finish with the final-dfg lint gate; the baseline used
   to skip it entirely. *)
let test_final_lint_gate_runs () =
  let g, _ = Fixtures.loop ~buffered:false () in
  let baseline = Core.Flow.baseline g in
  let iterative = Core.Flow.iterative g in
  check Alcotest.bool "baseline audit ends with final-dfg" true
    (List.mem "final-dfg" baseline.Core.Flow.lint_stages);
  check Alcotest.bool "iterative audit ends with final-dfg" true
    (List.mem "final-dfg" iterative.Core.Flow.lint_stages);
  check Alcotest.bool "gates off leaves no audit trail" true
    (let config = { Core.Flow.default_config with Core.Flow.lint_gates = false } in
     (Core.Flow.baseline ~config g).Core.Flow.lint_stages = [])

(* The LUT input count is not a cosmetic default: mapping the same
   netlist at a different k changes the level count, so benchmarks must
   pass the flow's [lut_k] explicitly rather than rely on the mapper's
   default agreeing with it. *)
let test_mapper_k_matters () =
  let g = Hls.Kernels.graph Fixtures.tsum in
  ignore (Core.Flow.seed_back_edges g);
  let synth = Techmap.Synth.run (Elaborate.run g) in
  let at k = (Techmap.Mapper.run ~k synth).Techmap.Lutgraph.max_level in
  check Alcotest.int "flow default is 6-LUT" 6
    Core.Flow.default_config.Core.Flow.lut_k;
  check Alcotest.bool "k=3 maps deeper than k=6" true (at 3 > at 6)

let test_report_pct () =
  check Alcotest.string "negative" "-50%" (Core.Report.pct 50. 100.);
  check Alcotest.string "positive" "+25%" (Core.Report.pct 125. 100.);
  check Alcotest.string "zero" "+0%" (Core.Report.pct 100. 100.)

let test_report_renders () =
  let m =
    {
      Core.Experiment.cp = 4.5;
      cycles = 100;
      exec_ns = 450.;
      luts = 10;
      ffs = 5;
      levels = 6;
      buffers = 3;
      iterations = 1;
      met_target = true;
      value_ok = true;
    }
  in
  let row = { Core.Experiment.bench = "demo"; prev = m; iter = m } in
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Core.Report.table1 fmt [ row ];
  Core.Report.figure5 fmt [ row ];
  Core.Report.iterations fmt [ row ];
  Format.pp_print_flush fmt ();
  let s = Buffer.contents buf in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "mentions benchmark" true (contains s "demo")

let test_report_csv () =
  let m =
    {
      Core.Experiment.cp = 4.5;
      cycles = 100;
      exec_ns = 450.;
      luts = 10;
      ffs = 5;
      levels = 6;
      buffers = 3;
      iterations = 1;
      met_target = true;
      value_ok = true;
    }
  in
  let row = { Core.Experiment.bench = "demo"; prev = m; iter = m } in
  let s = Format.asprintf "%a" Core.Report.csv [ row ] in
  let lines = String.split_on_char '\n' (String.trim s) in
  check Alcotest.int "header + 2 rows" 3 (List.length lines);
  check Alcotest.bool "header columns" true
    (List.hd lines = "bench,flow,cp_ns,cycles,exec_ns,luts,ffs,levels,buffers,iterations,met_target,value_ok")

let suite =
  [
    ("seed back edges", `Quick, test_seed_back_edges);
    ("iterative flow on loop", `Quick, test_iterative_on_loop);
    ("baseline flow on loop", `Quick, test_baseline_on_loop);
    ("input graph not mutated", `Quick, test_input_not_mutated);
    ("tight target exhausts iterations", `Quick, test_tight_target_iterates);
    ("slack matching precedes the final record", `Quick, test_slack_matched_outcome);
    ("measure reads the flow netlist", `Quick, test_measure_uses_flow_netlist);
    ("final lint gate runs in both flavors", `Quick, test_final_lint_gate_runs);
    ("mapper k changes levels", `Quick, test_mapper_k_matters);
    ("report pct", `Quick, test_report_pct);
    ("report renders", `Quick, test_report_renders);
    ("report csv", `Quick, test_report_csv);
  ]
