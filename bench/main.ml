(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§VI) plus the ablations called out in DESIGN.md.

     dune exec bench/main.exe                 -- everything below in order
     dune exec bench/main.exe -- table1       -- Table I (E1, E3, E4)
     dune exec bench/main.exe -- figure5      -- Figure 5 (E2)
     dune exec bench/main.exe -- ablation-penalty     -- A1 (Eq. 1 vs Eq. 3)
     dune exec bench/main.exe -- ablation-iterations  -- A2 (one-shot vs iterative)
     dune exec bench/main.exe -- ablation-routing     -- A3 (wire-aware model)
     dune exec bench/main.exe -- ablation-slack       -- A4 (transparent sizing)
     dune exec bench/main.exe -- ablation-balance     -- A5 (AND re-association)
     dune exec bench/main.exe -- sweep        -- E5 (level-target sweep; not in the default
                                                 run: it re-runs both flows several times)
     dune exec bench/main.exe -- micro        -- B1 (Bechamel stage timings)

   Options (before or after the targets):

     -j N / --jobs N     run independent flow tasks on N worker domains
                         (default: $REPRO_JOBS, else 1); any width
                         produces byte-identical tables — task results
                         are returned in submission order
     --kernels a,b,c     restrict table1/figure5 to a kernel subset
                         (CI smoke runs use a two-kernel subset)

   Timing lines and the run summary go to stderr so that stdout (the
   tables, the CSV) is byte-identical whatever the jobs width.

   Absolute numbers come from the OCaml substrate (simulated synthesis,
   placement and routing), so they differ from the paper's Stratix-IV
   runs; the comparison SHAPE — who wins, by roughly what factor — is the
   reproduction target.  See EXPERIMENTS.md. *)

let fmt = Format.std_formatter

let banner title =
  Format.fprintf fmt "@\n============================================================@\n";
  Format.fprintf fmt "%s@\n" title;
  Format.fprintf fmt "============================================================@\n@."

(* ------------------------------------------------------------------ *)
(* run configuration (set by the argument parser below) *)

let jobs = ref (Support.Pool.default_jobs ())
let kernel_subset : string list option ref = ref None
let trace_file : string option ref = ref None
let cache_dir : string option ref = ref None
let narrow = ref true

(* rows are computed once and shared between table1 and figure5 *)
let rows_cache : Core.Experiment.row list option ref = ref None

let rows () =
  match !rows_cache with
  | Some r -> r
  | None ->
    let names = !kernel_subset in
    Printf.eprintf "[bench] running %d kernels x 2 flavors, jobs=%d\n%!"
      (match names with Some ns -> List.length ns | None -> List.length Hls.Kernels.all)
      !jobs;
    let config = { Core.Flow.default_config with Core.Flow.narrow = !narrow } in
    let r, timings, wall = Core.Experiment.run_all_timed ~config ~jobs:!jobs ?names () in
    List.iter
      (fun t ->
        Printf.eprintf "[bench]   %-15s %-9s %8.2fs\n%!" t.Core.Experiment.t_bench
          t.Core.Experiment.t_flavor t.Core.Experiment.t_seconds)
      timings;
    let seq = List.fold_left (fun a t -> a +. t.Core.Experiment.t_seconds) 0. timings in
    Printf.eprintf
      "[bench] wall-clock %.2fs at jobs=%d; sequential-equivalent (sum of tasks) %.2fs; speedup %.2fx\n%!"
      wall !jobs seq
      (if wall > 0. then seq /. wall else 1.);
    rows_cache := Some r;
    r

(* Ablation drivers fan their independent flow runs through the same
   pool: tasks are submitted up front and awaited in submission order, so
   the printed tables never depend on the jobs width. *)
let pooled tasks =
  Support.Pool.run ~jobs:!jobs (fun pool ->
      List.map (Support.Pool.submit pool) tasks |> List.map Support.Pool.await)

(* Every ablation submits two tasks per row label; [print_pairs] walks the
   awaited results two at a time alongside the labels. *)
let rec print_pairs print_row labels results =
  match (labels, results) with
  | label :: labels, a :: b :: results ->
    print_row label a b;
    print_pairs print_row labels results
  | _ -> ()

let table1 () =
  banner "Table I: iterative mapping-aware (Iter.) vs mapping-agnostic (Prev.)";
  let r = rows () in
  Core.Report.table1 fmt r;
  Format.fprintf fmt "@\n";
  Core.Report.iterations fmt r;
  Format.pp_print_flush fmt ();
  (try
     Out_channel.with_open_text "results.csv" (fun oc ->
         let cfmt = Format.formatter_of_out_channel oc in
         Core.Report.csv cfmt r;
         Format.pp_print_flush cfmt ())
   with Sys_error msg ->
     Printf.eprintf "bench: cannot write results.csv: %s\n" msg;
     exit 1);
  Format.fprintf fmt "(wrote results.csv)@."

let figure5 () =
  banner "Figure 5: normalised execution time and resources";
  Core.Report.figure5 fmt (rows ());
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* A1: the penalty term of Eq. 3 against the plain Eq. 1 objective *)

let ablation_penalty () =
  banner "Ablation A1: Eq. 3 penalty term on/off (iterative flow, subset)";
  let subset = [ "gsum"; "gsumif"; "matrix" ] in
  let no_penalty =
    {
      Core.Flow.default_config with
      Core.Flow.milp =
        { Core.Flow.default_config.Core.Flow.milp with Buffering.Formulation.use_penalty = false };
    }
  in
  let results =
    pooled
      (List.concat_map
         (fun name ->
           let k = Hls.Kernels.by_name name in
           [
             (fun () -> fst (Core.Experiment.run_flow ~flavor:`Iterative k));
             (fun () -> fst (Core.Experiment.run_flow ~config:no_penalty ~flavor:`Iterative k));
           ])
         subset)
  in
  Format.fprintf fmt "%-12s | %18s | %18s@\n" "kernel" "with penalty" "without penalty";
  Format.fprintf fmt "%-12s | %8s %9s | %8s %9s@\n" "" "buffers" "levels" "buffers" "levels";
  print_pairs
    (fun name (with_pen : _) (without : _) ->
      Format.fprintf fmt "%-12s | %8d %9d | %8d %9d@\n" name with_pen.Core.Experiment.buffers
        with_pen.Core.Experiment.levels without.Core.Experiment.buffers
        without.Core.Experiment.levels)
    subset results;
  Format.fprintf fmt
    "(the penalty steers buffers away from channels with shared logic;@\n\
    \ without it the same period target is met with more disruptive placements)@.";
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* A2: iteration budget 1 (one-shot mapping-aware) vs full iterative *)

let ablation_iterations () =
  banner "Ablation A2: one-shot mapping-aware vs full iterative (subset)";
  let subset = [ "gsum"; "gsumif"; "matrix" ] in
  let one_cfg = { Core.Flow.default_config with Core.Flow.max_iterations = 1 } in
  let results =
    pooled
      (List.concat_map
         (fun name ->
           let k = Hls.Kernels.by_name name in
           [
             (fun () -> fst (Core.Experiment.run_flow ~config:one_cfg ~flavor:`Iterative k));
             (fun () -> fst (Core.Experiment.run_flow ~flavor:`Iterative k));
           ])
         subset)
  in
  Format.fprintf fmt "%-12s | %22s | %22s@\n" "kernel" "max_iterations = 1" "full iterative";
  Format.fprintf fmt "%-12s | %9s %12s | %9s %12s@\n" "" "levels" "target met" "levels" "target met";
  print_pairs
    (fun name (one : _) (full : _) ->
      Format.fprintf fmt "%-12s | %9d %12b | %9d %12b@\n" name one.Core.Experiment.levels
        one.Core.Experiment.met_target full.Core.Experiment.levels full.Core.Experiment.met_target)
    subset results;
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* A3: routing-aware timing model (the paper's future-work enhancement) *)

let ablation_routing () =
  banner "Ablation A3: routing-aware timing model on/off (subset)";
  let subset = [ "gsum"; "gsumif" ] in
  let aware_cfg = { Core.Flow.default_config with Core.Flow.routing_aware = true } in
  let results =
    pooled
      (List.concat_map
         (fun name ->
           let k = Hls.Kernels.by_name name in
           [
             (fun () -> fst (Core.Experiment.run_flow ~flavor:`Iterative k));
             (fun () -> fst (Core.Experiment.run_flow ~config:aware_cfg ~flavor:`Iterative k));
           ])
         subset)
  in
  Format.fprintf fmt "%-12s | %24s | %24s@\n" "kernel" "mapping-aware" "+ routing aware";
  Format.fprintf fmt "%-12s | %9s %6s %7s | %9s %6s %7s@\n" "" "cp(ns)" "bufs" "levels" "cp(ns)"
    "bufs" "levels";
  print_pairs
    (fun name (plain : _) (aware : _) ->
      Format.fprintf fmt "%-12s | %9.2f %6d %7d | %9.2f %6d %7d@\n" name plain.Core.Experiment.cp
        plain.Core.Experiment.buffers plain.Core.Experiment.levels aware.Core.Experiment.cp
        aware.Core.Experiment.buffers aware.Core.Experiment.levels)
    subset results;
  Format.fprintf fmt
    "(wire-delay surcharges make the model stricter: more buffers, achieved CP closer to target)@.";
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* A4: slack matching (transparent-buffer sizing) *)

let ablation_slack () =
  banner "Ablation A4: slack matching on/off (subset)";
  let subset = [ "matrix"; "mvt" ] in
  let sized_cfg = { Core.Flow.default_config with Core.Flow.slack_match = true } in
  let results =
    pooled
      (List.concat_map
         (fun name ->
           let k = Hls.Kernels.by_name name in
           [
             (fun () -> fst (Core.Experiment.run_flow ~flavor:`Iterative k));
             (fun () -> fst (Core.Experiment.run_flow ~config:sized_cfg ~flavor:`Iterative k));
           ])
         subset)
  in
  Format.fprintf fmt "%-12s | %14s | %14s@\n" "kernel" "no sizing" "slack matched";
  Format.fprintf fmt "%-12s | %14s | %14s@\n" "" "cycles" "cycles";
  print_pairs
    (fun name (plain : _) (sized : _) ->
      Format.fprintf fmt "%-12s | %14d | %14d@\n" name plain.Core.Experiment.cycles
        sized.Core.Experiment.cycles)
    subset results;
  Format.fprintf fmt "(transparent capacity on shallow reconvergent paths absorbs stalls)@.";
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* A5: AND-tree balancing before mapping *)

let ablation_balance () =
  banner "Ablation A5: AND re-association (balance) before mapping (subset)";
  let subset = [ "gsum"; "matrix" ] in
  let balance_cfg = { Core.Flow.default_config with Core.Flow.balance = true } in
  let results =
    pooled
      (List.concat_map
         (fun name ->
           let k = Hls.Kernels.by_name name in
           [
             (fun () -> fst (Core.Experiment.run_flow ~flavor:`Iterative k));
             (fun () -> fst (Core.Experiment.run_flow ~config:balance_cfg ~flavor:`Iterative k));
           ])
         subset)
  in
  Format.fprintf fmt "%-12s | %20s | %20s@\n" "kernel" "if -K 6 only" "balance; if -K 6";
  Format.fprintf fmt "%-12s | %9s %10s | %9s %10s@\n" "" "levels" "luts" "levels" "luts";
  print_pairs
    (fun name (plain : _) (balanced : _) ->
      Format.fprintf fmt "%-12s | %9d %10d | %9d %10d@\n" name plain.Core.Experiment.levels
        plain.Core.Experiment.luts balanced.Core.Experiment.levels balanced.Core.Experiment.luts)
    subset results;
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* A6: datapath width (8-bit default vs 16-bit) *)

let ablation_width () =
  banner "Ablation A6: datapath width 8 vs 16 bits (iterative flow)";
  (* one kernel: the 16-bit MILP instances are several times larger *)
  let subset = [ "gsum" ] in
  let run k width =
    let g = Hls.Kernels.graph ~width k in
    let outcome = Core.Flow.iterative g in
    let net = outcome.Core.Flow.net and lg = outcome.Core.Flow.lutgraph in
    let pr = Placeroute.Sta.analyze ~seed:7 net lg in
    (* functional check at the matching width *)
    let sim = Sim.Elastic.run ~memories:(k.Hls.Kernels.mems ()) outcome.Core.Flow.graph in
    assert (sim.Sim.Elastic.exit_value = Some (Hls.Kernels.reference ~width k));
    pr
  in
  let results =
    pooled
      (List.concat_map
         (fun name ->
           let k = Hls.Kernels.by_name name in
           [ (fun () -> run k 8); (fun () -> run k 16) ])
         subset)
  in
  Format.fprintf fmt "%-12s | %26s | %26s@\n" "kernel" "8-bit" "16-bit";
  Format.fprintf fmt "%-12s | %7s %7s %9s | %7s %7s %9s@\n" "" "luts" "ffs" "cp(ns)" "luts" "ffs"
    "cp(ns)";
  print_pairs
    (fun name (w8 : _) (w16 : _) ->
      Format.fprintf fmt "%-12s | %7d %7d %9.2f | %7d %7d %9.2f@\n" name w8.Placeroute.Sta.n_luts
        w8.Placeroute.Sta.n_ffs w8.Placeroute.Sta.cp w16.Placeroute.Sta.n_luts
        w16.Placeroute.Sta.n_ffs w16.Placeroute.Sta.cp)
    subset results;
  Format.fprintf fmt
    "(resources scale with the datapath; levels and CP grow with the wider carry chains,@\n\
    \ which is why the reproduction runs 8-bit by default)@.";
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* E5: target sweep — §VI-B's "achieved CP unpredictably diverges for
   slight target changes" on the baseline, vs the iterative flow *)

let sweep () =
  banner "Target sweep (E5): achieved levels under varying level targets (gsumif)";
  let k = Hls.Kernels.by_name "gsumif" in
  let targets = [ 5; 6; 7; 8 ] in
  let config_for target =
    {
      Core.Flow.default_config with
      Core.Flow.target_levels = target;
      milp =
        {
          Core.Flow.default_config.Core.Flow.milp with
          Buffering.Formulation.cp_target = float_of_int target *. 0.7;
        };
    }
  in
  let results =
    pooled
      (List.concat_map
         (fun target ->
           let config = config_for target in
           [
             (fun () -> fst (Core.Experiment.run_flow ~config ~flavor:`Baseline k));
             (fun () -> fst (Core.Experiment.run_flow ~config ~flavor:`Iterative k));
           ])
         targets)
  in
  Format.fprintf fmt "%-8s | %20s | %20s@\n" "target" "baseline" "iterative";
  Format.fprintf fmt "%-8s | %9s %10s | %9s %10s@\n" "levels" "achieved" "cp(ns)" "achieved" "cp(ns)";
  print_pairs
    (fun target (prev : _) (iter : _) ->
      Format.fprintf fmt "%-8d | %9d %10.2f | %9d %10.2f@\n" target prev.Core.Experiment.levels
        prev.Core.Experiment.cp iter.Core.Experiment.levels iter.Core.Experiment.cp)
    targets results;
  Format.fprintf fmt
    "(the iterative flow tracks the target; the baseline's levels do not respond to it)@.";
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* B1: Bechamel micro-benchmarks of the flow's stages *)

let micro () =
  banner "Micro-benchmarks (Bechamel): per-stage cost on gsum";
  let open Bechamel in
  let k = Hls.Kernels.by_name "gsum" in
  let g0 = Hls.Kernels.graph k in
  let _ = Core.Flow.seed_back_edges g0 in
  let net = Elaborate.run g0 in
  let synth = Techmap.Synth.run net in
  (* map with the flow's configured LUT size: the stage timing must
     measure the configuration the experiments actually run *)
  let lut_k = Core.Flow.default_config.Core.Flow.lut_k in
  let lg = Techmap.Mapper.run ~k:lut_k synth in
  let tests =
    [
      Test.make ~name:"elaborate" (Staged.stage (fun () -> ignore (Elaborate.run g0)));
      Test.make ~name:"synthesize-aig" (Staged.stage (fun () -> ignore (Techmap.Synth.run net)));
      Test.make ~name:"lut-map" (Staged.stage (fun () -> ignore (Techmap.Mapper.run ~k:lut_k synth)));
      Test.make ~name:"timing-model"
        (Staged.stage (fun () -> ignore (Timing.Mapping_aware.build g0 ~net lg)));
      Test.make ~name:"cfdfc-extract"
        (Staged.stage (fun () -> ignore (Buffering.Cfdfc.extract g0)));
      Test.make ~name:"place-and-sta"
        (Staged.stage (fun () -> ignore (Placeroute.Sta.analyze ~seed:7 ~effort:0.2 net lg)));
      Test.make ~name:"simulate"
        (Staged.stage (fun () ->
             ignore (Sim.Elastic.run ~memories:(k.Hls.Kernels.mems ()) g0)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~kde:(Some 10) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analysed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
            Format.fprintf fmt "  %-18s %12.1f ns/run@\n" name est
          | _ -> Format.fprintf fmt "  %-18s (no estimate)@\n" name)
        analysed)
    tests;
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)

let usage () =
  prerr_endline
    "usage: main.exe [-j N|--jobs N] [--kernels a,b,c] [--trace FILE] [--cache-dir DIR] \
     [--no-narrow] [table1|figure5|ablation-*|sweep|micro]*";
  exit 1

(* A repeated kernel would be run and reported twice for no new
   information: keep the first occurrence, warn on stderr so stdout
   (the tables) stays byte-identical with the deduplicated spec. *)
let dedupe_kernels names =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then begin
        Printf.eprintf "[bench] warning: duplicate kernel %S ignored\n%!" n;
        false
      end
      else begin
        Hashtbl.add seen n ();
        true
      end)
    names

let set_kernels spec =
  let names = String.split_on_char ',' spec |> List.filter (( <> ) "") in
  let known = List.map (fun k -> k.Hls.Kernels.name) Hls.Kernels.all in
  (match List.filter (fun n -> not (List.mem n known)) names with
   | [] -> ()
   | bad ->
     Printf.eprintf "unknown kernel%s: %s (known: %s)\n"
       (if List.length bad > 1 then "s" else "")
       (String.concat ", " bad) (String.concat ", " known);
     exit 1);
  kernel_subset := Some (dedupe_kernels names)

let rec parse_args targets = function
  | [] -> List.rev targets
  | ("-j" | "--jobs") :: n :: rest -> (
    match int_of_string_opt n with
    | Some j when j >= 1 ->
      jobs := j;
      parse_args targets rest
    | _ -> usage ())
  | ("-j" | "--jobs") :: [] -> usage ()
  | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" -> (
    match int_of_string_opt (String.sub arg 7 (String.length arg - 7)) with
    | Some j when j >= 1 ->
      jobs := j;
      parse_args targets rest
    | _ -> usage ())
  | "--kernels" :: names :: rest ->
    set_kernels names;
    parse_args targets rest
  | "--kernels" :: [] -> usage ()
  | arg :: rest when String.length arg > 10 && String.sub arg 0 10 = "--kernels=" ->
    set_kernels (String.sub arg 10 (String.length arg - 10));
    parse_args targets rest
  | "--trace" :: file :: rest ->
    trace_file := Some file;
    parse_args targets rest
  | "--trace" :: [] -> usage ()
  | arg :: rest when String.length arg > 8 && String.sub arg 0 8 = "--trace=" ->
    trace_file := Some (String.sub arg 8 (String.length arg - 8));
    parse_args targets rest
  | "--cache-dir" :: dir :: rest ->
    cache_dir := Some dir;
    parse_args targets rest
  | "--cache-dir" :: [] -> usage ()
  | arg :: rest when String.length arg > 12 && String.sub arg 0 12 = "--cache-dir=" ->
    cache_dir := Some (String.sub arg 12 (String.length arg - 12));
    parse_args targets rest
  | "--no-narrow" :: rest ->
    (* rerun the tables without the value-range narrowing stage — the
       on/off delta quoted in EXPERIMENTS.md E1 comes from diffing the
       two results.csv files *)
    narrow := false;
    parse_args targets rest
  | target :: rest -> parse_args (target :: targets) rest

(* Each bench target becomes one top-level span of the trace, so the
   trace's root durations account for the whole run. Stdout stays
   byte-identical with tracing on or off: the summary table and the
   "wrote" confirmation go to stderr, the events to the JSON file. *)
let run_target name f = Support.Trace.with_span ~cat:"bench" ("bench:" ^ name) f

let () =
  let targets = parse_args [] (Array.to_list Sys.argv |> List.tl) in
  (* the artifact cache persists synth/map results, unit delays and MILP
     solutions across processes; stdout stays byte-identical either way *)
  (match Cache.Control.resolve_dir ~flag:!cache_dir with
  | None -> ()
  | Some dir -> (
    match Cache.Control.enable dir with
    | _store -> Printf.eprintf "[bench] artifact cache at %s\n%!" dir
    | exception Sys_error msg ->
      Printf.eprintf "bench: --cache-dir: %s\n" msg;
      exit 1));
  if !trace_file <> None then Support.Trace.start ();
  (match targets with
  | [] ->
    run_target "table1" table1;
    run_target "figure5" figure5;
    run_target "ablation-penalty" ablation_penalty;
    run_target "ablation-iterations" ablation_iterations;
    run_target "ablation-routing" ablation_routing;
    run_target "ablation-slack" ablation_slack;
    run_target "ablation-balance" ablation_balance;
    run_target "micro" micro
  | _ ->
    List.iter
      (function
        | "table1" -> run_target "table1" table1
        | "figure5" -> run_target "figure5" figure5
        | "ablation-penalty" -> run_target "ablation-penalty" ablation_penalty
        | "ablation-iterations" -> run_target "ablation-iterations" ablation_iterations
        | "ablation-routing" -> run_target "ablation-routing" ablation_routing
        | "ablation-slack" -> run_target "ablation-slack" ablation_slack
        | "ablation-balance" -> run_target "ablation-balance" ablation_balance
        | "sweep" -> run_target "sweep" sweep
        | "ablation-width" -> run_target "ablation-width" ablation_width
        | "micro" -> run_target "micro" micro
        | other ->
          Printf.eprintf "unknown bench target %S\n" other;
          exit 1)
      targets);
  (match !trace_file with
  | None -> ()
  | Some path -> (
    let report = Support.Trace.stop () in
    match Support.Trace.write_chrome_json report path with
    | () ->
      Format.eprintf "%a" Support.Trace.pp_summary report;
      Printf.eprintf "[bench] wrote trace %s\n%!" path
    | exception Sys_error msg ->
      Printf.eprintf "bench: --trace: %s\n" msg;
      exit 1));
  (* appends the session's hit/miss counters to the store's stats.log *)
  Cache.Control.finish ()
