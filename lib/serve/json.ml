type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- printing ---- *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num f -> Buffer.add_string b (number_to_string f)
  | Str s ->
    Buffer.add_char b '"';
    escape b s;
    Buffer.add_char b '"'
  | Arr xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        write b x)
      xs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        escape b k;
        Buffer.add_string b "\":";
        write b v)
      kvs;
    Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 128 in
  write b j;
  Buffer.contents b

(* ---- parsing: plain recursive descent over the line ---- *)

exception Parse_error of string

type state = { src : string; mutable pos : int }

let error st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> error st (Printf.sprintf "expected %c, got %c" c c')
  | None -> error st (Printf.sprintf "expected %c, got end of input" c)

(* UTF-8 encode one scalar value (surrogate pairs are combined by the
   caller); invalid values become U+FFFD so a hostile escape cannot make
   the codec raise past this point *)
let add_utf8 b u =
  let u = if u < 0 || u > 0x10FFFF || (u >= 0xD800 && u <= 0xDFFF) then 0xFFFD else u in
  if u < 0x80 then Buffer.add_char b (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
    | Some c when c >= '0' && c <= '9' -> v := (!v * 16) + (Char.code c - Char.code '0')
    | Some c when c >= 'a' && c <= 'f' -> v := (!v * 16) + (Char.code c - Char.code 'a' + 10)
    | Some c when c >= 'A' && c <= 'F' -> v := (!v * 16) + (Char.code c - Char.code 'A' + 10)
    | _ -> error st "bad \\u escape");
    advance st
  done;
  !v

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | None -> error st "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          let hi = hex4 st in
          if hi >= 0xD800 && hi <= 0xDBFF then begin
            (* high surrogate: a \uDC00-\uDFFF low half must follow *)
            if peek st = Some '\\' then begin
              advance st;
              expect st 'u';
              let lo = hex4 st in
              if lo >= 0xDC00 && lo <= 0xDFFF then
                add_utf8 b (0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00))
              else begin
                add_utf8 b hi;
                add_utf8 b lo
              end
            end
            else add_utf8 b hi
          end
          else add_utf8 b hi
        | c -> error st (Printf.sprintf "bad escape \\%c" c));
        go ())
    | Some c ->
      advance st;
      Buffer.add_char b c;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with Some f -> Num f | None -> error st ("bad number " ^ s)

let parse_literal st word v =
  String.iter (fun c -> expect st c) word;
  v

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "empty input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members ((k, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((k, v) :: acc)
        | _ -> error st "expected , or } in object"
      in
      Obj (members [])
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Arr []
    end
    else begin
      let rec elems acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elems (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> error st "expected , or ] in array"
      in
      Arr (elems [])
    end
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st (Printf.sprintf "unexpected character %c" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then Error "trailing garbage after JSON value"
    else Ok v
  | exception Parse_error msg -> Error msg

(* ---- accessors ---- *)

let mem k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None
let bool = function Bool b -> Some b | _ -> None

let int j =
  match j with
  | Num f when Float.is_integer f && Float.abs f <= 2. ** 52. -> Some (int_of_float f)
  | _ -> None

let str_mem k j = Option.bind (mem k j) str
let num_mem k j = Option.bind (mem k j) num
let int_mem k j = Option.bind (mem k j) int
let bool_mem k j = Option.bind (mem k j) bool
