(** Latency load generator for the compile daemon ([regulate loadgen]).

    Connects to a serving Unix-domain socket, pushes a request list with
    windowed pipelining (at most [window] requests outstanding), and
    reports client-observed latency percentiles, throughput and the
    cache hit rate over exactly this run (stats are sampled before and
    after, so a warm daemon's history does not pollute the numbers). *)

type result = {
  l_sent : int;
  l_completed : int;
  l_errors : int;
  l_rejected : int;
  l_cancelled : int;
  l_wall_s : float;
  l_mean_ms : float;
  l_p50_ms : float;          (** send-to-terminal-event, milliseconds *)
  l_p99_ms : float;
  l_throughput : float;      (** completed requests per second *)
  l_hits : int;              (** cache hits attributable to this run *)
  l_misses : int;
  l_digests : (string * string) list;
      (** (request id, outcome digest) for every completed request, in
          request order — the determinism cross-check against one-shot runs *)
}

val run : ?window:int -> socket:string -> Protocol.request list -> result
(** [window] defaults to 4; keep it at or below the daemon's
    [queue_limit] or requests bounce off admission control (bounced
    requests are counted in [l_rejected], not retried). *)

val shutdown : socket:string -> unit
(** Send [{"shutdown":true}] and wait for the daemon's [bye]. *)

val result_to_json : result -> Json.t
(** The CI-facing summary: percentiles, throughput, hit rate. *)

(** {1 Sequential one-shot comparison} *)

type oneshot = {
  o_wall_s : float;
  o_digests : (string * string) list;  (** same shape as [l_digests] *)
}

val run_oneshot : exe:string -> Protocol.request list -> oneshot
(** Run each (named-kernel) request through [exe flow <kernel> --digest]
    as a separate sequential process — the no-daemon workflow the
    speedup claim is measured against. Raises [Failure] if a run exits
    non-zero or prints no digest, [Invalid_argument] on an
    inline-source request. *)
