type flavor = [ `Iterative | `Baseline ]

let flavor_name = function `Iterative -> "iterative" | `Baseline -> "baseline"

type request = {
  id : string;
  kernel : string option;
  source : string option;
  flavor : flavor;
  levels : int option;
  milp_nodes : int option;
  milp_budget_s : float option;
}

type command = Compile of request | Cancel of string | Stats | Shutdown

(* ---- requests ---- *)

let request_to_json (r : request) =
  let opt k f v rest = match v with None -> rest | Some v -> (k, f v) :: rest in
  Json.Obj
    (("id", Json.Str r.id)
     :: opt "kernel" (fun s -> Json.Str s) r.kernel
          (opt "source" (fun s -> Json.Str s) r.source
             (("flavor", Json.Str (flavor_name r.flavor))
              :: opt "levels" (fun i -> Json.Num (float_of_int i)) r.levels
                   (opt "milp_nodes" (fun i -> Json.Num (float_of_int i)) r.milp_nodes
                      (opt "milp_budget_s" (fun f -> Json.Num f) r.milp_budget_s [])))))

let request_to_line r = Json.to_string (request_to_json r)

let ( let* ) = Result.bind

let parse_request j =
  let* id =
    match Json.str_mem "id" j with
    | Some id when id <> "" -> Ok id
    | Some _ -> Error "empty request id"
    | None -> (
      match Json.mem "id" j with
      | Some _ -> Error "request id must be a non-empty string"
      | None -> Error "missing request id")
  in
  let* kernel, source =
    match (Json.mem "kernel" j, Json.mem "source" j) with
    | Some _, Some _ -> Error "request has both \"kernel\" and \"source\""
    | None, None -> Error "request needs a \"kernel\" name or inline \"source\""
    | Some k, None -> (
      match Json.str k with
      | Some k when k <> "" -> Ok (Some k, None)
      | _ -> Error "\"kernel\" must be a non-empty string")
    | None, Some s -> (
      match Json.str s with
      | Some s when s <> "" -> Ok (None, Some s)
      | _ -> Error "\"source\" must be a non-empty string")
  in
  let* flavor =
    match Json.mem "flavor" j with
    | None -> Ok `Iterative
    | Some (Json.Str "iterative") -> Ok `Iterative
    | Some (Json.Str "baseline") -> Ok `Baseline
    | Some _ -> Error "\"flavor\" must be \"iterative\" or \"baseline\""
  in
  let pos_int k =
    match Json.mem k j with
    | None -> Ok None
    | Some v -> (
      match Json.int v with
      | Some i when i >= 1 -> Ok (Some i)
      | _ -> Error (Printf.sprintf "%S must be an integer >= 1" k))
  in
  let* levels = pos_int "levels" in
  let* milp_nodes = pos_int "milp_nodes" in
  let* milp_budget_s =
    match Json.mem "milp_budget_s" j with
    | None -> Ok None
    | Some v -> (
      match Json.num v with
      | Some f when f > 0. -> Ok (Some f)
      | _ -> Error "\"milp_budget_s\" must be a number > 0")
  in
  Ok (Compile { id; kernel; source; flavor; levels; milp_nodes; milp_budget_s })

let command_of_line line =
  let* j =
    match Json.of_string line with
    | Ok (Json.Obj _ as j) -> Ok j
    | Ok _ -> Error "request must be a JSON object"
    | Error msg -> Error ("bad JSON: " ^ msg)
  in
  if Json.bool_mem "shutdown" j = Some true then Ok Shutdown
  else if Json.bool_mem "stats" j = Some true then Ok Stats
  else if Json.bool_mem "cancel" j = Some true then
    match Json.str_mem "id" j with
    | Some id when id <> "" -> Ok (Cancel id)
    | _ -> Error "cancel needs the \"id\" of the in-flight request"
  else parse_request j

(* ---- responses ---- *)

type measured = {
  m_cp : float;
  m_cycles : int;
  m_exec_ns : float;
  m_luts : int;
  m_ffs : int;
  m_value_ok : bool;
}

type completion = {
  r_digest : string;
  r_flavor : flavor;
  r_levels : int;
  r_met_target : bool;
  r_buffers : int;
  r_iterations : int;
  r_phi : float;
  r_certified : float;
  r_measured : measured option;
}

type stats = {
  s_served : int;
  s_errors : int;
  s_rejected : int;
  s_cancelled : int;
  s_inflight : int;
  s_cache_hits : int;
  s_cache_misses : int;
  s_uptime_s : float;
}

type event =
  | Accepted of { id : string; inflight : int }
  | Rejected of { id : string; code : string; message : string }
  | Status of { id : string; stage : string }
  | Done of { id : string; wall_ms : float; result : completion }
  | Failed of { id : string option; code : string; message : string }
  | Cancelled of { id : string }
  | Stats_reply of stats
  | Bye

let hit_rate hits misses =
  if hits + misses = 0 then 0. else float_of_int hits /. float_of_int (hits + misses)

let event_to_json = function
  | Accepted { id; inflight } ->
    Json.Obj
      [
        ("id", Json.Str id);
        ("event", Json.Str "accepted");
        ("inflight", Json.Num (float_of_int inflight));
      ]
  | Rejected { id; code; message } ->
    Json.Obj
      [
        ("id", Json.Str id);
        ("event", Json.Str "rejected");
        ("code", Json.Str code);
        ("message", Json.Str message);
      ]
  | Status { id; stage } ->
    Json.Obj [ ("id", Json.Str id); ("event", Json.Str "status"); ("stage", Json.Str stage) ]
  | Done { id; wall_ms; result = r } ->
    let base =
      [
        ("id", Json.Str id);
        ("event", Json.Str "done");
        ("flavor", Json.Str (flavor_name r.r_flavor));
        ("digest", Json.Str r.r_digest);
        ("levels", Json.Num (float_of_int r.r_levels));
        ("met_target", Json.Bool r.r_met_target);
        ("buffers", Json.Num (float_of_int r.r_buffers));
        ("iterations", Json.Num (float_of_int r.r_iterations));
        ("phi", Json.Num r.r_phi);
        ("certified_bound", Json.Num r.r_certified);
        ("wall_ms", Json.Num wall_ms);
      ]
    in
    let measured =
      match r.r_measured with
      | None -> []
      | Some m ->
        [
          ( "measured",
            Json.Obj
              [
                ("cp_ns", Json.Num m.m_cp);
                ("cycles", Json.Num (float_of_int m.m_cycles));
                ("exec_ns", Json.Num m.m_exec_ns);
                ("luts", Json.Num (float_of_int m.m_luts));
                ("ffs", Json.Num (float_of_int m.m_ffs));
                ("value_ok", Json.Bool m.m_value_ok);
              ] );
        ]
    in
    Json.Obj (base @ measured)
  | Failed { id; code; message } ->
    Json.Obj
      [
        ("id", match id with Some id -> Json.Str id | None -> Json.Null);
        ("event", Json.Str "error");
        ("code", Json.Str code);
        ("message", Json.Str message);
      ]
  | Cancelled { id } -> Json.Obj [ ("id", Json.Str id); ("event", Json.Str "cancelled") ]
  | Stats_reply s ->
    Json.Obj
      [
        ("event", Json.Str "stats");
        ("served", Json.Num (float_of_int s.s_served));
        ("errors", Json.Num (float_of_int s.s_errors));
        ("rejected", Json.Num (float_of_int s.s_rejected));
        ("cancelled", Json.Num (float_of_int s.s_cancelled));
        ("inflight", Json.Num (float_of_int s.s_inflight));
        ("cache_hits", Json.Num (float_of_int s.s_cache_hits));
        ("cache_misses", Json.Num (float_of_int s.s_cache_misses));
        ("hit_rate", Json.Num (hit_rate s.s_cache_hits s.s_cache_misses));
        ("uptime_s", Json.Num s.s_uptime_s);
      ]
  | Bye -> Json.Obj [ ("event", Json.Str "bye") ]

let event_to_line e = Json.to_string (event_to_json e)

(* The client-side decoder. Unknown event names are surfaced as errors so
   a protocol skew between loadgen and daemon is loud, not silent. *)
let event_of_line line =
  let* j =
    match Json.of_string line with
    | Ok (Json.Obj _ as j) -> Ok j
    | Ok _ -> Error "event must be a JSON object"
    | Error msg -> Error ("bad JSON: " ^ msg)
  in
  let id () =
    match Json.str_mem "id" j with Some id -> Ok id | None -> Error "event without id"
  in
  match Json.str_mem "event" j with
  | Some "accepted" ->
    let* id = id () in
    Ok (Accepted { id; inflight = Option.value (Json.int_mem "inflight" j) ~default:0 })
  | Some "rejected" ->
    let* id = id () in
    Ok
      (Rejected
         {
           id;
           code = Option.value (Json.str_mem "code" j) ~default:"";
           message = Option.value (Json.str_mem "message" j) ~default:"";
         })
  | Some "status" ->
    let* id = id () in
    Ok (Status { id; stage = Option.value (Json.str_mem "stage" j) ~default:"" })
  | Some "done" ->
    let* id = id () in
    let* flavor =
      match Json.str_mem "flavor" j with
      | Some "baseline" -> Ok `Baseline
      | Some "iterative" | None -> Ok `Iterative
      | Some f -> Error ("unknown flavor " ^ f)
    in
    let int k = Option.value (Json.int_mem k j) ~default:0 in
    let num k = Option.value (Json.num_mem k j) ~default:0. in
    let measured =
      match Json.mem "measured" j with
      | None -> None
      | Some m ->
        let mint k = Option.value (Json.int_mem k m) ~default:0 in
        let mnum k = Option.value (Json.num_mem k m) ~default:0. in
        Some
          {
            m_cp = mnum "cp_ns";
            m_cycles = mint "cycles";
            m_exec_ns = mnum "exec_ns";
            m_luts = mint "luts";
            m_ffs = mint "ffs";
            m_value_ok = Option.value (Json.bool_mem "value_ok" m) ~default:false;
          }
    in
    Ok
      (Done
         {
           id;
           wall_ms = num "wall_ms";
           result =
             {
               r_digest = Option.value (Json.str_mem "digest" j) ~default:"";
               r_flavor = flavor;
               r_levels = int "levels";
               r_met_target = Option.value (Json.bool_mem "met_target" j) ~default:false;
               r_buffers = int "buffers";
               r_iterations = int "iterations";
               r_phi = num "phi";
               r_certified = num "certified_bound";
               r_measured = measured;
             };
         })
  | Some "error" ->
    Ok
      (Failed
         {
           id = Json.str_mem "id" j;
           code = Option.value (Json.str_mem "code" j) ~default:"";
           message = Option.value (Json.str_mem "message" j) ~default:"";
         })
  | Some "cancelled" ->
    let* id = id () in
    Ok (Cancelled { id })
  | Some "stats" ->
    let int k = Option.value (Json.int_mem k j) ~default:0 in
    Ok
      (Stats_reply
         {
           s_served = int "served";
           s_errors = int "errors";
           s_rejected = int "rejected";
           s_cancelled = int "cancelled";
           s_inflight = int "inflight";
           s_cache_hits = int "cache_hits";
           s_cache_misses = int "cache_misses";
           s_uptime_s = Option.value (Json.num_mem "uptime_s" j) ~default:0.;
         })
  | Some "bye" -> Ok Bye
  | Some e -> Error ("unknown event " ^ e)
  | None -> Error "missing event field"

(* ---- outcome digest ---- *)

(* A canonical, byte-comparable digest of everything a flow run decides:
   the buffered circuit itself (canonical DFG hash) plus every
   per-iteration number the flow reported. The same request must digest
   identically whether it was served by the daemon at any -j width or
   run serially through the one-shot CLI (`regulate flow --digest`), and
   whether the cache was cold or warm. *)
let outcome_digest (o : Core.Flow.outcome) =
  let b = Buffer.create 256 in
  Printf.bprintf b "dfg=%s\nlevels=%d met=%b buffers=%d cert=%.9f live=%b\n"
    (Cache.Hash.dfg o.Core.Flow.graph) o.Core.Flow.final_levels o.Core.Flow.met_target
    o.Core.Flow.total_buffers o.Core.Flow.certified.Analysis.Certify.throughput
    o.Core.Flow.certified.Analysis.Certify.live;
  List.iter
    (fun (it : Core.Flow.iteration) ->
      Printf.bprintf b "it%d: phi=%.9f obj=%.9f bound=%.9f levels=%d proposed=%d kept=%d\n"
        it.Core.Flow.it_index it.Core.Flow.milp_phi it.Core.Flow.milp_objective
        it.Core.Flow.certified_bound it.Core.Flow.achieved_levels
        it.Core.Flow.proposed_buffers it.Core.Flow.kept_as_fixed)
    o.Core.Flow.iterations;
  Cache.Hash.combine [ Buffer.contents b ]

let completion_of_outcome ~flavor ?measured (o : Core.Flow.outcome) =
  let phi =
    match List.rev o.Core.Flow.iterations with
    | last :: _ -> last.Core.Flow.milp_phi
    | [] -> 1.
  in
  {
    r_digest = outcome_digest o;
    r_flavor = flavor;
    r_levels = o.Core.Flow.final_levels;
    r_met_target = o.Core.Flow.met_target;
    r_buffers = o.Core.Flow.total_buffers;
    r_iterations = List.length o.Core.Flow.iterations;
    r_phi = phi;
    r_certified = o.Core.Flow.certified.Analysis.Certify.throughput;
    r_measured = measured;
  }

let measured_of_metrics (m : Core.Experiment.metrics) =
  {
    m_cp = m.Core.Experiment.cp;
    m_cycles = m.Core.Experiment.cycles;
    m_exec_ns = m.Core.Experiment.exec_ns;
    m_luts = m.Core.Experiment.luts;
    m_ffs = m.Core.Experiment.ffs;
    m_value_ok = m.Core.Experiment.value_ok;
  }

(* ---- structured errors ---- *)

(* Map a flow exception to a protocol error code. The MILP layer reports
   budget exhaustion and infeasibility through `Failure` messages (the
   fuzz oracle classifies the same strings), lint gates raise their
   report, and anything else is an internal error — all of them must
   come back as error events, never kill the daemon. *)
let error_of_exn exn =
  let has msg sub =
    let n = String.length sub and m = String.length msg in
    let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
    go 0
  in
  match exn with
  | Lint.Engine.Lint_error report ->
    ("lint-failed", Format.asprintf "%a" Lint.Engine.pp_report report)
  | Failure msg when has msg "budget exhausted" -> ("milp-exhausted", msg)
  | Failure msg when has msg "infeasible" -> ("milp-infeasible", msg)
  | Failure msg when has msg "unbounded" -> ("milp-unbounded", msg)
  | Failure msg -> ("flow-failed", msg)
  | Not_found -> ("unknown-kernel", "no benchmark kernel by that name (see `regulate list`)")
  | exn -> (
    match Hls.Parser.error_message exn with
    | Some msg -> ("compile-failed", msg)
    | None -> ("internal-error", Printexc.to_string exn))
