(** The compile daemon behind [regulate serve].

    One long-lived process serves many kernel-compilation requests over
    {!Protocol}: a single dispatch domain reads request lines (stdio or
    a Unix-domain socket) and admits them against a bounded in-flight
    limit; admitted compiles run on a {!Support.Pool} of worker domains
    sharing one session-scoped artifact cache; each worker emits its own
    response lines (completion order) under a per-client write lock.

    Admission happens only on the dispatch domain, so the reject-on-full
    decision is deterministic for a given request interleaving. Every
    request runs in its own {!Core.Session}: per-request MILP budgets,
    a cooperative cancellation flag ([cancel] lines and client
    disconnects set it; the flow polls it at iteration boundaries), and
    a status sink that streams [status] events. Flow failures — MILP
    budget exhaustion, infeasibility, lint gates, parse errors — become
    structured [error] events; nothing a request does kills the daemon.

    Shutdown ([{"shutdown":true}], or client EOF on stdio) drains:
    new compiles are rejected with [shutting-down], admitted ones
    finish, then the pool is joined and [bye] is emitted. *)

type config = {
  jobs : int;              (** worker-pool width *)
  queue_limit : int;       (** max accepted-but-unfinished compiles; reject beyond *)
  levels : int option;     (** server-wide target-levels override *)
  milp_nodes : int option;      (** default per-request MILP node budget *)
  milp_budget_s : float option; (** default per-request MILP wall budget *)
  cache : Cache.Session.t; (** shared across all requests; [finish]ed on drain *)
  flow : Core.Flow.config; (** base flow configuration *)
}

val default_config : config
(** [jobs = 1], [queue_limit = 8], no overrides, cache disabled,
    {!Core.Flow.default_config}. *)

type runner = Core.Session.t -> Protocol.request -> Protocol.completion
(** What actually compiles one admitted request. The default runner runs
    the real flow ({!Core.Experiment.run_flow} for named kernels — flow
    plus P&R and simulation, the same work as one-shot [regulate flow] —
    or {!Core.Flow.iterative}/[baseline] for inline source). Tests
    inject blocking or failing runners to exercise admission,
    cancellation and error paths deterministically. *)

type t

val create : ?runner:runner -> config -> t
(** Build the server state and spawn its worker pool. Raises
    [Invalid_argument] if [jobs] or [queue_limit] is < 1. *)

val handle_line :
  t -> emit:(Protocol.event -> unit) -> string -> [ `Continue | `Stop ]
(** Dispatch one raw request line. [emit] must be safe to call from
    worker domains (the transports wrap it in a write lock); it receives
    every event for requests admitted from this line, including the
    terminal event emitted later by a worker. Blank lines are ignored;
    malformed lines answer with a [bad-request] error event. [`Stop]
    means a shutdown command was read. *)

val request_cancel : t -> string -> bool
(** Set the cancellation flag of an in-flight request; [false] if no
    such id is in flight. The terminal [cancelled] event comes from the
    worker when it notices. *)

val stats : t -> Protocol.stats

val drain : t -> unit
(** Stop admitting, wait for in-flight compiles, join the pool, flush
    the cache session's counters. Terminal: the server cannot be reused. *)

val serve_channels : t -> in_channel -> out_channel -> unit
(** Serve line-delimited JSON on a channel pair (stdin/stdout, or a pipe
    in tests) until EOF or shutdown, then {!drain} and emit [bye]. *)

val serve_socket : t -> string -> unit
(** Bind a Unix-domain socket at the given path and serve until some
    client sends [shutdown]: select-based multiplexing of any number of
    concurrent clients on the dispatch domain. A client disconnecting
    takes its in-flight requests with it (they are cancelled); a write
    to a vanished client is swallowed. Drains, byes surviving clients,
    and unlinks the socket path on exit. *)
