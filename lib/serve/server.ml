type config = {
  jobs : int;
  queue_limit : int;
  levels : int option;
  milp_nodes : int option;
  milp_budget_s : float option;
  cache : Cache.Session.t;
  flow : Core.Flow.config;
}

let default_config =
  {
    jobs = 1;
    queue_limit = 8;
    levels = None;
    milp_nodes = None;
    milp_budget_s = None;
    cache = Cache.Session.disabled;
    flow = Core.Flow.default_config;
  }

type runner = Core.Session.t -> Protocol.request -> Protocol.completion

type t = {
  cfg : config;
  pool : Support.Pool.t;
  runner : runner;
  (* admission counter: accepted-but-unfinished compiles (queued or
     running). Only the dispatch domain admits, so the bound check is
     deterministic; workers only ever decrement. *)
  inflight : int Atomic.t;
  served : int Atomic.t;
  errors : int Atomic.t;
  rejected : int Atomic.t;
  cancelled : int Atomic.t;
  cancels : (string, bool Atomic.t) Hashtbl.t;
  cancels_mu : Mutex.t;
  accepting : bool Atomic.t;
  started : float;
}

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let flow_config cfg (req : Protocol.request) =
  let base = cfg.flow in
  match (match req.levels with Some _ as l -> l | None -> cfg.levels) with
  | None -> base
  | Some l -> { base with Core.Flow.target_levels = l }

(* Key for whole-completion memoisation: every input that can change
   the result — program, flavor, the effective flow config and the
   session-effective MILP budgets. Two requests with the same key are
   the same compilation, so a warm daemon answers from the store
   without re-running the flow (that is the point of a long-lived
   service; the sub-step memos inside the flow only amortise solver
   work, not the whole pipeline). *)
let completion_key cfg session (req : Protocol.request) =
  let fc = flow_config cfg req in
  let m = Core.Session.milp_config session fc.Core.Flow.milp in
  let b = Buffer.create 256 in
  Printf.bprintf b "kernel=%s\n"
    (match req.kernel with Some k -> k | None -> "-");
  Printf.bprintf b "source=%s\n"
    (match req.source with Some s -> s | None -> "-");
  Printf.bprintf b "flavor=%s\n" (Protocol.flavor_name req.flavor);
  Printf.bprintf b
    "levels=%d delay=%.9f iters=%d lutk=%d routing=%b slack=%b balance=%b \
     lint=%b tv=%b narrow=%b\n"
    fc.Core.Flow.target_levels fc.level_delay fc.max_iterations fc.lut_k
    fc.routing_aware fc.slack_match fc.balance fc.lint_gates fc.tv_exact
    fc.narrow;
  Printf.bprintf b "milp cp=%.9f alpha=%.9f beta=%.9f pen=%b nodes=%d time=%.9f"
    m.Buffering.Formulation.cp_target m.alpha m.beta m.use_penalty m.node_limit
    m.time_limit;
  Cache.Hash.combine [ Buffer.contents b ]

(* The real compile path. A named kernel runs the full evaluation
   harness (flow + P&R + simulation), exactly the work the one-shot
   `regulate flow` command does, so daemon-vs-CLI throughput comparisons
   are fair. Inline source runs the flow only: ad-hoc programs carry no
   reference workload to simulate. The whole completion is memoised
   under the session's cache, so a repeat of an identical request on a
   warm daemon is a store read, not a recompilation. *)
let default_runner cfg : runner =
 fun session req ->
  let compute () =
    let config = flow_config cfg req in
    match (req.kernel, req.source) with
    | Some name, _ ->
      let kernel = Hls.Kernels.by_name name in
      let metrics, outcome =
        Core.Experiment.run_flow ~config ~session ~flavor:req.flavor kernel
      in
      Protocol.completion_of_outcome ~flavor:req.flavor
        ~measured:(Protocol.measured_of_metrics metrics) outcome
    | None, Some src ->
      let g = Hls.Compile.compile (Hls.Parser.parse src) in
      let outcome =
        match req.flavor with
        | `Iterative -> Core.Flow.iterative ~config ~session g
        | `Baseline -> Core.Flow.baseline ~config ~session g
      in
      Protocol.completion_of_outcome ~flavor:req.flavor outcome
    | None, None -> assert false (* command_of_line requires one *)
  in
  Cache.Session.memo session.Core.Session.cache ~kind:"serve.completion"
    ~key:(completion_key cfg session req)
    compute

let create ?runner cfg =
  if cfg.jobs < 1 then invalid_arg "Server.create: jobs must be >= 1";
  if cfg.queue_limit < 1 then invalid_arg "Server.create: queue_limit must be >= 1";
  {
    cfg;
    pool = Support.Pool.create ~jobs:cfg.jobs;
    runner = (match runner with Some r -> r | None -> default_runner cfg);
    inflight = Atomic.make 0;
    served = Atomic.make 0;
    errors = Atomic.make 0;
    rejected = Atomic.make 0;
    cancelled = Atomic.make 0;
    cancels = Hashtbl.create 16;
    cancels_mu = Mutex.create ();
    accepting = Atomic.make true;
    started = Unix.gettimeofday ();
  }

let stats t =
  let hits, misses =
    match Cache.Session.store t.cfg.cache with
    | Some s -> (Cache.Store.hits s, Cache.Store.misses s)
    | None -> (0, 0)
  in
  {
    Protocol.s_served = Atomic.get t.served;
    s_errors = Atomic.get t.errors;
    s_rejected = Atomic.get t.rejected;
    s_cancelled = Atomic.get t.cancelled;
    s_inflight = Atomic.get t.inflight;
    s_cache_hits = hits;
    s_cache_misses = misses;
    s_uptime_s = Unix.gettimeofday () -. t.started;
  }

let request_cancel t id =
  match with_lock t.cancels_mu (fun () -> Hashtbl.find_opt t.cancels id) with
  | Some flag ->
    Atomic.set flag true;
    true
  | None -> false

let run_compile t ~emit (req : Protocol.request) flag =
  let t0 = Unix.gettimeofday () in
  let finish ev =
    with_lock t.cancels_mu (fun () -> Hashtbl.remove t.cancels req.id);
    Atomic.decr t.inflight;
    emit ev
  in
  let session =
    Core.Session.make ~cache:t.cfg.cache
      ?milp_nodes:(match req.milp_nodes with Some _ as n -> n | None -> t.cfg.milp_nodes)
      ?milp_budget_s:
        (match req.milp_budget_s with Some _ as b -> b | None -> t.cfg.milp_budget_s)
      ~cancelled:(fun () -> Atomic.get flag)
      ~on_status:(fun stage -> emit (Protocol.Status { id = req.id; stage }))
      ()
  in
  match t.runner session req with
  | result ->
    Atomic.incr t.served;
    finish
      (Protocol.Done
         { id = req.id; wall_ms = (Unix.gettimeofday () -. t0) *. 1000.; result })
  | exception Core.Session.Cancelled ->
    Atomic.incr t.cancelled;
    finish (Protocol.Cancelled { id = req.id })
  | exception exn ->
    Atomic.incr t.errors;
    let code, message = Protocol.error_of_exn exn in
    finish (Protocol.Failed { id = Some req.id; code; message })

let submit_compile t ~emit (req : Protocol.request) =
  if not (Atomic.get t.accepting) then begin
    Atomic.incr t.rejected;
    emit
      (Protocol.Rejected
         { id = req.id; code = "shutting-down"; message = "server is draining" })
  end
  else if Atomic.get t.inflight >= t.cfg.queue_limit then begin
    Atomic.incr t.rejected;
    emit
      (Protocol.Rejected
         {
           id = req.id;
           code = "server-busy";
           message =
             Printf.sprintf "queue full: %d requests in flight (limit %d)"
               (Atomic.get t.inflight) t.cfg.queue_limit;
         })
  end
  else begin
    let flag = Atomic.make false in
    let fresh =
      with_lock t.cancels_mu (fun () ->
          if Hashtbl.mem t.cancels req.id then false
          else begin
            Hashtbl.replace t.cancels req.id flag;
            true
          end)
    in
    if not fresh then begin
      Atomic.incr t.rejected;
      emit
        (Protocol.Rejected
           {
             id = req.id;
             code = "duplicate-id";
             message = "a request with this id is already in flight";
           })
    end
    else begin
      Atomic.incr t.inflight;
      emit (Protocol.Accepted { id = req.id; inflight = Atomic.get t.inflight });
      (* the worker emits its own terminal event; the future is dropped
         and drain waits on the inflight counter instead, so a stream of
         requests does not accumulate futures *)
      ignore (Support.Pool.submit t.pool (fun () -> run_compile t ~emit req flag))
    end
  end

let handle_line t ~emit line =
  if String.trim line = "" then `Continue
  else
    match Protocol.command_of_line line with
    | Error msg ->
      Atomic.incr t.errors;
      emit (Protocol.Failed { id = None; code = "bad-request"; message = msg });
      `Continue
    | Ok (Protocol.Compile req) ->
      submit_compile t ~emit req;
      `Continue
    | Ok (Protocol.Cancel id) ->
      if not (request_cancel t id) then
        emit
          (Protocol.Failed
             { id = Some id; code = "not-in-flight"; message = "no such in-flight request" });
      `Continue
    | Ok Protocol.Stats ->
      emit (Protocol.Stats_reply (stats t));
      `Continue
    | Ok Protocol.Shutdown ->
      Atomic.set t.accepting false;
      `Stop

let drain t =
  (* reject-before-drain is already in force (accepting = false when the
     transport stops); wait for workers to finish what was admitted *)
  Atomic.set t.accepting false;
  while Atomic.get t.inflight > 0 do
    Unix.sleepf 0.002
  done;
  Support.Pool.shutdown t.pool;
  Cache.Session.finish t.cfg.cache

let ignore_sigpipe () =
  try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ()

(* ---- stdio transport ---- *)

let serve_channels t ic oc =
  ignore_sigpipe ();
  let mu = Mutex.create () in
  let dead = ref false in
  let emit ev =
    with_lock mu (fun () ->
        if not !dead then
          try
            output_string oc (Protocol.event_to_line ev);
            output_char oc '\n';
            flush oc
          with Sys_error _ -> dead := true)
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line -> ( match handle_line t ~emit line with `Continue -> loop () | `Stop -> ())
  in
  loop ();
  drain t;
  emit Protocol.Bye

(* ---- unix-socket transport ---- *)

type client = {
  c_fd : Unix.file_descr;
  c_buf : Buffer.t;            (* partial line from the last read *)
  c_mu : Mutex.t;              (* serialises worker writes to this client *)
  c_dead : bool ref;
  c_ids : (string, unit) Hashtbl.t;  (* this client's in-flight request ids *)
}

let client_emit t c ev =
  (* transport-level bookkeeping rides on the event stream itself: an
     accepted id belongs to this client until its terminal event, so a
     disconnect knows exactly which compiles to cancel *)
  with_lock c.c_mu (fun () ->
      (match ev with
      | Protocol.Accepted { id; _ } -> Hashtbl.replace c.c_ids id ()
      | Protocol.Done { id; _ }
      | Protocol.Cancelled { id }
      | Protocol.Rejected { id; _ }
      | Protocol.Failed { id = Some id; _ } ->
        Hashtbl.remove c.c_ids id
      | _ -> ());
      if not !(c.c_dead) then
        let line = Protocol.event_to_line ev ^ "\n" in
        try
          let n = String.length line in
          let rec push off =
            if off < n then push (off + Unix.write_substring c.c_fd line off (n - off))
          in
          push 0
        with Unix.Unix_error _ | Sys_error _ -> c.c_dead := true);
  ignore t

let disconnect t c =
  c.c_dead := true;
  (* a client that vanished mid-request takes its pending work with it:
     cancel everything it still had in flight *)
  let ids = with_lock c.c_mu (fun () -> Hashtbl.fold (fun id () acc -> id :: acc) c.c_ids []) in
  List.iter (fun id -> ignore (request_cancel t id)) ids;
  try Unix.close c.c_fd with Unix.Unix_error _ -> ()

let feed_lines t c stop =
  (* split the buffered bytes into complete lines and dispatch each *)
  let data = Buffer.contents c.c_buf in
  Buffer.clear c.c_buf;
  let n = String.length data in
  let rec go start =
    match String.index_from_opt data start '\n' with
    | None -> Buffer.add_substring c.c_buf data start (n - start)
    | Some nl ->
      let line = String.sub data start (nl - start) in
      (match handle_line t ~emit:(client_emit t c) line with
      | `Continue -> ()
      | `Stop -> stop := true);
      go (nl + 1)
  in
  if n > 0 then go 0

let serve_socket t path =
  ignore_sigpipe ();
  (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX path);
  Unix.listen srv 64;
  let clients : (Unix.file_descr, client) Hashtbl.t = Hashtbl.create 8 in
  let stop = ref false in
  let chunk = Bytes.create 65536 in
  while not !stop do
    let fds = srv :: Hashtbl.fold (fun fd _ acc -> fd :: acc) clients [] in
    let readable, _, _ =
      try Unix.select fds [] [] 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun fd ->
        if fd = srv then begin
          match Unix.accept srv with
          | cfd, _ ->
            Hashtbl.replace clients cfd
              {
                c_fd = cfd;
                c_buf = Buffer.create 256;
                c_mu = Mutex.create ();
                c_dead = ref false;
                c_ids = Hashtbl.create 4;
              }
          | exception Unix.Unix_error _ -> ()
        end
        else
          match Hashtbl.find_opt clients fd with
          | None -> ()
          | Some c -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 ->
              disconnect t c;
              Hashtbl.remove clients fd
            | n ->
              Buffer.add_subbytes c.c_buf chunk 0 n;
              feed_lines t c stop
            | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
              ->
              disconnect t c;
              Hashtbl.remove clients fd))
      readable
  done;
  Atomic.set t.accepting false;
  drain t;
  Hashtbl.iter
    (fun _ c ->
      client_emit t c Protocol.Bye;
      try Unix.close c.c_fd with Unix.Unix_error _ -> ())
    clients;
  (try Unix.close srv with Unix.Unix_error _ -> ());
  try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()
