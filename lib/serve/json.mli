(** Minimal JSON for the serving protocol.

    The toolchain deliberately has no JSON dependency; the trace layer
    only {e writes} JSON, but the daemon must also {e parse} untrusted
    request lines, so this module provides both directions over one
    value type. Strict enough for a network protocol: full string
    escaping (including [\uXXXX] and surrogate pairs, with invalid
    scalars replaced by U+FFFD rather than raised), trailing-garbage
    rejection, and parse failures as [Error] — a malformed line must
    never kill the daemon. Printing is canonical: object fields in the
    order given, no whitespace, integers without a fraction part — the
    same value always prints to the same bytes, which the protocol's
    digest-comparison tests rely on. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** One line, no trailing newline. *)

val of_string : string -> (t, string) result
(** Parse exactly one JSON value (plus surrounding whitespace). *)

(** {1 Accessors} — all total, [None] on shape mismatch *)

val mem : string -> t -> t option
val str : t -> string option
val num : t -> float option
val bool : t -> bool option
val int : t -> int option
val str_mem : string -> t -> string option
val num_mem : string -> t -> float option
val int_mem : string -> t -> int option
val bool_mem : string -> t -> bool option
