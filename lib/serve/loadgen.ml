type result = {
  l_sent : int;
  l_completed : int;
  l_errors : int;
  l_rejected : int;
  l_cancelled : int;
  l_wall_s : float;
  l_mean_ms : float;
  l_p50_ms : float;
  l_p99_ms : float;
  l_throughput : float;
  l_hits : int;
  l_misses : int;
  l_digests : (string * string) list;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (Float.round (q *. float_of_int (n - 1))) in
    sorted.(max 0 (min (n - 1) rank))

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let send oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let read_event ic =
  match input_line ic with
  | exception End_of_file -> failwith "loadgen: server closed the connection"
  | line -> (
    match Protocol.event_of_line line with
    | Ok ev -> ev
    | Error msg -> failwith (Printf.sprintf "loadgen: bad event line (%s): %s" msg line))

(* Ask for server stats and skip any in-flight events (none are expected
   when called outside the send loop, but interleaving is legal). *)
let query_stats ic oc =
  send oc (Json.to_string (Json.Obj [ ("stats", Json.Bool true) ]));
  let rec wait () =
    match read_event ic with Protocol.Stats_reply s -> s | _ -> wait ()
  in
  wait ()

let run ?(window = 4) ~socket (requests : Protocol.request list) =
  if window < 1 then invalid_arg "Loadgen.run: window must be >= 1";
  let fd, ic, oc = connect socket in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let before = query_stats ic oc in
  let reqs = Array.of_list requests in
  let total = Array.length reqs in
  let sent_at : (string, float) Hashtbl.t = Hashtbl.create total in
  let digests : (string, string) Hashtbl.t = Hashtbl.create total in
  let latencies = ref [] in
  let completed = ref 0 and errors = ref 0 and rejected = ref 0 and cancelled = ref 0 in
  let next = ref 0 and outstanding = ref 0 in
  let t0 = Unix.gettimeofday () in
  let finish_one id =
    decr outstanding;
    match Hashtbl.find_opt sent_at id with
    | Some t -> latencies := (Unix.gettimeofday () -. t) *. 1000. :: !latencies
    | None -> ()
  in
  (* windowed pipelining: keep up to [window] requests in flight so the
     daemon's pool stays busy without tripping its admission limit *)
  while !completed + !errors + !rejected + !cancelled < total do
    while !next < total && !outstanding < window do
      let r = reqs.(!next) in
      Hashtbl.replace sent_at r.Protocol.id (Unix.gettimeofday ());
      send oc (Protocol.request_to_line r);
      incr next;
      incr outstanding
    done;
    match read_event ic with
    | Protocol.Done { id; result; _ } ->
      Hashtbl.replace digests id result.Protocol.r_digest;
      incr completed;
      finish_one id
    | Protocol.Failed { id = Some id; _ } when Hashtbl.mem sent_at id ->
      incr errors;
      finish_one id
    | Protocol.Failed _ -> incr errors
    | Protocol.Rejected { id; _ } ->
      incr rejected;
      finish_one id
    | Protocol.Cancelled { id } ->
      incr cancelled;
      finish_one id
    | Protocol.Accepted _ | Protocol.Status _ | Protocol.Stats_reply _ | Protocol.Bye ->
      ()
  done;
  let wall = Unix.gettimeofday () -. t0 in
  let after = query_stats ic oc in
  let lats = Array.of_list !latencies in
  Array.sort compare lats;
  let mean =
    if Array.length lats = 0 then 0.
    else Array.fold_left ( +. ) 0. lats /. float_of_int (Array.length lats)
  in
  {
    l_sent = !next;
    l_completed = !completed;
    l_errors = !errors;
    l_rejected = !rejected;
    l_cancelled = !cancelled;
    l_wall_s = wall;
    l_mean_ms = mean;
    l_p50_ms = percentile lats 0.50;
    l_p99_ms = percentile lats 0.99;
    l_throughput = (if wall > 0. then float_of_int !completed /. wall else 0.);
    l_hits = after.Protocol.s_cache_hits - before.Protocol.s_cache_hits;
    l_misses = after.Protocol.s_cache_misses - before.Protocol.s_cache_misses;
    l_digests =
      Array.to_list reqs
      |> List.filter_map (fun r ->
             Option.map
               (fun d -> (r.Protocol.id, d))
               (Hashtbl.find_opt digests r.Protocol.id));
  }

let shutdown ~socket =
  let fd, ic, oc = connect socket in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  send oc (Json.to_string (Json.Obj [ ("shutdown", Json.Bool true) ]));
  let rec wait () = match read_event ic with Protocol.Bye -> () | _ -> wait () in
  (* the daemon drains before it byes; treat a dropped connection as done *)
  try wait () with Failure _ -> ()

let result_to_json r =
  Json.Obj
    [
      ("sent", Json.Num (float_of_int r.l_sent));
      ("completed", Json.Num (float_of_int r.l_completed));
      ("errors", Json.Num (float_of_int r.l_errors));
      ("rejected", Json.Num (float_of_int r.l_rejected));
      ("cancelled", Json.Num (float_of_int r.l_cancelled));
      ("wall_s", Json.Num r.l_wall_s);
      ("mean_ms", Json.Num r.l_mean_ms);
      ("p50_ms", Json.Num r.l_p50_ms);
      ("p99_ms", Json.Num r.l_p99_ms);
      ("throughput_rps", Json.Num r.l_throughput);
      ("cache_hits", Json.Num (float_of_int r.l_hits));
      ("cache_misses", Json.Num (float_of_int r.l_misses));
      ("hit_rate", Json.Num (Protocol.hit_rate r.l_hits r.l_misses));
    ]

(* ---- sequential one-shot comparison ---- *)

type oneshot = { o_wall_s : float; o_digests : (string * string) list }

(* Run each request through the one-shot CLI (`regulate flow <kernel>
   --digest`), sequentially, as a cold process each time — the thing a
   user without the daemon would do. Only named-kernel requests can go
   this way. *)
let run_oneshot ~exe (requests : Protocol.request list) =
  let t0 = Unix.gettimeofday () in
  let digests =
    List.map
      (fun (r : Protocol.request) ->
        let kernel =
          match r.Protocol.kernel with
          | Some k -> k
          | None -> invalid_arg "Loadgen.run_oneshot: inline-source request"
        in
        let cmd =
          String.concat " "
            ([ Filename.quote exe; "flow"; Filename.quote kernel; "--digest" ]
            @ (match r.Protocol.flavor with
              | `Baseline -> [ "--flavor"; "baseline" ]
              | `Iterative -> [])
            @ (match r.Protocol.levels with
              | Some l -> [ "--levels"; string_of_int l ]
              | None -> [])
            @ (match r.Protocol.milp_nodes with
              | Some n -> [ "--milp-nodes"; string_of_int n ]
              | None -> [])
            @
            match r.Protocol.milp_budget_s with
            | Some b -> [ "--milp-budget-s"; Printf.sprintf "%g" b ]
            | None -> [])
        in
        let ic = Unix.open_process_in cmd in
        let digest = ref None in
        (try
           while true do
             let line = input_line ic in
             if String.length line > 7 && String.sub line 0 7 = "digest=" then
               digest := Some (String.sub line 7 (String.length line - 7))
           done
         with End_of_file -> ());
        (match Unix.close_process_in ic with
        | Unix.WEXITED 0 -> ()
        | _ -> failwith (Printf.sprintf "loadgen: one-shot run failed: %s" cmd));
        match !digest with
        | Some d -> (r.Protocol.id, d)
        | None -> failwith (Printf.sprintf "loadgen: no digest line from: %s" cmd))
      requests
  in
  { o_wall_s = Unix.gettimeofday () -. t0; o_digests = digests }
