(** Wire protocol of the compile daemon: line-delimited JSON.

    A client writes one JSON object per line; the daemon answers with one
    or more event lines per request ([accepted], zero or more [status],
    then exactly one terminal [done] / [error] / [rejected] /
    [cancelled]). Responses from concurrent requests interleave in
    completion order, so every line carries the request [id] it belongs
    to. Both directions of the codec live here so the daemon, the load
    generator and the tests share one definition. *)

type flavor = [ `Iterative | `Baseline ]

val flavor_name : flavor -> string

type request = {
  id : string;                    (** client-chosen, echoed on every event *)
  kernel : string option;         (** named benchmark kernel … *)
  source : string option;         (** … or inline mini-C text (exactly one) *)
  flavor : flavor;
  levels : int option;            (** target logic levels override *)
  milp_nodes : int option;        (** per-request MILP node budget *)
  milp_budget_s : float option;   (** per-request MILP wall budget, seconds *)
}

type command =
  | Compile of request
  | Cancel of string  (** id of the in-flight request to cancel *)
  | Stats
  | Shutdown

val command_of_line : string -> (command, string) result
(** Parse one client line. [Error] is a human-readable reason; the
    server answers it with an [error] event and keeps serving. *)

val request_to_json : request -> Json.t
val request_to_line : request -> string

(** {1 Events (daemon → client)} *)

type measured = {
  m_cp : float;
  m_cycles : int;
  m_exec_ns : float;
  m_luts : int;
  m_ffs : int;
  m_value_ok : bool;
}

type completion = {
  r_digest : string;        (** canonical digest of the flow outcome *)
  r_flavor : flavor;
  r_levels : int;
  r_met_target : bool;
  r_buffers : int;
  r_iterations : int;
  r_phi : float;            (** final MILP throughput claim *)
  r_certified : float;      (** certified throughput bound *)
  r_measured : measured option;  (** P&R + simulation, named kernels only *)
}

type stats = {
  s_served : int;
  s_errors : int;
  s_rejected : int;
  s_cancelled : int;
  s_inflight : int;
  s_cache_hits : int;
  s_cache_misses : int;
  s_uptime_s : float;
}

type event =
  | Accepted of { id : string; inflight : int }
  | Rejected of { id : string; code : string; message : string }
  | Status of { id : string; stage : string }
  | Done of { id : string; wall_ms : float; result : completion }
  | Failed of { id : string option; code : string; message : string }
  | Cancelled of { id : string }
  | Stats_reply of stats
  | Bye

val hit_rate : int -> int -> float
(** [hit_rate hits misses]; [0.] when both are zero. *)

val event_to_json : event -> Json.t
val event_to_line : event -> string

val event_of_line : string -> (event, string) result
(** Client-side decoder (load generator, tests). *)

(** {1 Digests and classification} *)

val outcome_digest : Core.Flow.outcome -> string
(** Canonical digest over the buffered circuit and every per-iteration
    decision. Byte-identical for the same request whether served
    concurrently at any [-j] width, serially by the one-shot CLI
    ([regulate flow --digest]), or answered from a warm cache. *)

val completion_of_outcome :
  flavor:flavor -> ?measured:measured -> Core.Flow.outcome -> completion

val measured_of_metrics : Core.Experiment.metrics -> measured

val error_of_exn : exn -> string * string
(** [(code, message)] for a flow exception: ["milp-exhausted"],
    ["milp-infeasible"], ["lint-failed"], ["compile-failed"],
    ["unknown-kernel"], ["flow-failed"] or ["internal-error"]. The MILP
    codes key on the same [Failure] message substrings the fuzz oracle
    classifies, so a budget blowout is a structured protocol error, never
    a daemon-killing exception. *)
