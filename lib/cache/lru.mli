(** Bounded, mutex-guarded in-memory LRU of cache payloads.

    The front of the on-disk store: repeated lookups of a hot entry in
    one process skip the file read and checksum verification. Keys are
    entry ids (hex digests), values are raw payload bytes; the bound is
    on total payload bytes. All operations take the internal mutex, so
    the structure is safe under concurrent {!Support.Pool} domains.

    [max_bytes = 0] disables the front entirely (every [add] evicts
    immediately) — tests use this to force disk reads. An entry larger
    than [max_bytes] is simply not retained. *)

type t

val create : max_bytes:int -> t
val find : t -> string -> string option
val add : t -> string -> string -> unit
val bytes : t -> int
(** Current total payload bytes retained. *)
