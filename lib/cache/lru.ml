type entry = { value : string; mutable stamp : int }

type t = {
  max_bytes : int;
  tbl : (string, entry) Hashtbl.t;
  mutable tick : int;
  mutable total : int;
  mutex : Mutex.t;
}

let create ~max_bytes =
  { max_bytes; tbl = Hashtbl.create 64; tick = 0; total = 0; mutex = Mutex.create () }

let touch t e =
  t.tick <- t.tick + 1;
  e.stamp <- t.tick

let find t key =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None -> None
      | Some e ->
        touch t e;
        Some e.value)

(* Eviction scans for the stalest entry: O(n) per eviction, but the
   table holds at most a few hundred flow artifacts and evictions only
   happen at the byte bound, so a linked-list LRU would buy nothing. *)
let evict_one t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, best) when best.stamp <= e.stamp -> acc
        | _ -> Some (k, e))
      t.tbl None
  in
  match victim with
  | None -> ()
  | Some (k, e) ->
    Hashtbl.remove t.tbl k;
    t.total <- t.total - String.length e.value

let add t key value =
  if String.length value <= t.max_bytes then
    Mutex.protect t.mutex (fun () ->
        (match Hashtbl.find_opt t.tbl key with
        | Some old ->
          Hashtbl.remove t.tbl key;
          t.total <- t.total - String.length old.value
        | None -> ());
        let e = { value; stamp = 0 } in
        touch t e;
        Hashtbl.replace t.tbl key e;
        t.total <- t.total + String.length value;
        while t.total > t.max_bytes && Hashtbl.length t.tbl > 0 do
          evict_one t
        done)

let bytes t = Mutex.protect t.mutex (fun () -> t.total)
