(** Canonical content hashing of flow artifacts.

    Every hasher serialises its artifact into a {e canonical} binary form
    — ordered traversals only (unit/channel/gate/variable index order),
    with any set-like component (graph memories, netlist IO lists, LP
    terms) explicitly sorted — and returns the SHA-256 of those bytes as
    a 64-character hex string. Nothing here iterates a [Hashtbl] or
    depends on physical identity, so the same logical artifact produces
    the same key whether it was built on the main domain or inside a
    {!Support.Pool} worker, at [jobs = 1] or [jobs = 8], in this process
    or another one.

    Non-semantic carriers — graph/netlist/model names, auto-generated
    unit labels, constraint names — are deliberately excluded: two
    structurally identical circuits hash equal even if their labels
    differ, which is what lets synthesis results hit across the
    iterative flow's iterations and across experiment flavors.

    Each encoder starts with its own versioned tag (["dfg:v1"], ...);
    bump the tag when an encoding changes so stale on-disk entries can
    never be decoded under a new key scheme. *)

val dfg : Dataflow.Graph.t -> string
(** Units (kind with all parameters, basic block, width, port wiring),
    channels (endpoints, ports, width, buffer annotation, back-edge
    mark) and memories (sorted by name). *)

val netlist : Net.t -> string
(** Gates in id order (kind, fanins, owner, timing domain) plus the
    sorted input/output/register id lists. *)

val lp : Milp.Lp.t -> string
(** Variables in index order (bounds, kind), constraints in row order
    (terms sorted by variable, relation, right-hand side) and the
    objective. Variable and constraint names are excluded. *)

val combine : string list -> string
(** Collision-safe combination of already-computed hashes (or other
    strings): each part is length-prefixed before rehashing, so
    [combine \["ab"; "c"\]] never equals [combine \["a"; "bc"\]]. *)
