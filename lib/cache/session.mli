(** Session-owned cache handles.

    A session is an explicit, first-class capability to consult (or
    skip) the artifact cache: either a handle on an open {!Store.t} or
    the disabled session, which computes everything in place. The flow
    layers ({!Core.Flow}, the pre-characterised unit delays, the MILP
    solve) take a session parameter instead of consulting process-global
    state, so one process can serve many concurrent requests that share
    a single store — or mix cached and uncached work — without any
    cross-request cache-state leakage. The process-global switch in
    {!Control} remains as a thin shim for the one-shot CLIs: it merely
    owns one ambient session.

    Sessions are cheap records; share one {!Store.t} between as many
    sessions (and {!Support.Pool} domains) as needed — the store itself
    is domain-safe. *)

type t

val disabled : t
(** The no-cache session: {!memo} is exactly [f ()]. *)

val of_store : Store.t -> t
(** A session backed by an open store. The caller keeps ownership of
    the store (one {!Store.finish} when the owner is done). *)

val of_dir : ?mem_bytes:int -> string -> t
(** [of_store (Store.open_dir ?mem_bytes dir)]. Raises [Sys_error] if
    the directory cannot be created. *)

val enabled : t -> bool
val store : t -> Store.t option

val memo : t -> kind:string -> key:string -> (unit -> 'a) -> 'a
(** [memo t ~kind ~key f] returns the cached value for [(kind, key)] or
    computes [f ()] and stores it. Values are [Marshal]-encoded; the
    store's header checksums and version stamps guarantee a decoded
    payload is byte-exact and written by this model version, so the
    only type obligation is the caller's: {b one [kind] string must map
    to exactly one result type} across the whole code base. On the
    disabled session this is exactly [f ()]. *)

val finish : t -> unit
(** {!Store.finish} on the underlying store, if any. Only call from the
    session that owns the store. *)
