(* FIPS 180-4 SHA-256 over Int32 words. Straightforward block-at-a-time
   implementation: pad into one bytes buffer, compress 64-byte blocks.
   Throughput is tens of MB/s, far above what the cache's canonical
   serialisations (KBs to a few MBs) ask of it. *)

let k =
  [|
    0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl; 0x59f111f1l;
    0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l; 0x243185bel; 0x550c7dc3l;
    0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l; 0xc19bf174l; 0xe49b69c1l; 0xefbe4786l;
    0x0fc19dc6l; 0x240ca1ccl; 0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal;
    0x983e5152l; 0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
    0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl; 0x53380d13l;
    0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l; 0xa2bfe8a1l; 0xa81a664bl;
    0xc24b8b70l; 0xc76c51a3l; 0xd192e819l; 0xd6990624l; 0xf40e3585l; 0x106aa070l;
    0x19a4c116l; 0x1e376c08l; 0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al;
    0x5b9cca4fl; 0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
    0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l;
  |]

let digest msg =
  let h = Array.copy [| 0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al;
                        0x510e527fl; 0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l |] in
  let len = String.length msg in
  let padded =
    let r = (len + 9) mod 64 in
    len + 9 + (if r = 0 then 0 else 64 - r)
  in
  let m = Bytes.make padded '\000' in
  Bytes.blit_string msg 0 m 0 len;
  Bytes.set m len '\x80';
  Bytes.set_int64_be m (padded - 8) (Int64.of_int (len * 8));
  let w = Array.make 64 0l in
  let ( +% ) = Int32.add in
  let rotr x n = Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n)) in
  for block = 0 to (padded / 64) - 1 do
    for t = 0 to 15 do
      w.(t) <- Bytes.get_int32_be m ((block * 64) + (t * 4))
    done;
    for t = 16 to 63 do
      let x = w.(t - 15) and y = w.(t - 2) in
      let s0 = Int32.logxor (Int32.logxor (rotr x 7) (rotr x 18)) (Int32.shift_right_logical x 3) in
      let s1 = Int32.logxor (Int32.logxor (rotr y 17) (rotr y 19)) (Int32.shift_right_logical y 10) in
      w.(t) <- w.(t - 16) +% s0 +% w.(t - 7) +% s1
    done;
    let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
    let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
    for t = 0 to 63 do
      let s1 = Int32.logxor (Int32.logxor (rotr !e 6) (rotr !e 11)) (rotr !e 25) in
      let ch = Int32.logxor (Int32.logand !e !f) (Int32.logand (Int32.lognot !e) !g) in
      let t1 = !hh +% s1 +% ch +% k.(t) +% w.(t) in
      let s0 = Int32.logxor (Int32.logxor (rotr !a 2) (rotr !a 13)) (rotr !a 22) in
      let maj =
        Int32.logxor
          (Int32.logxor (Int32.logand !a !b) (Int32.logand !a !c))
          (Int32.logand !b !c)
      in
      let t2 = s0 +% maj in
      hh := !g;
      g := !f;
      f := !e;
      e := !d +% t1;
      d := !c;
      c := !b;
      b := !a;
      a := t1 +% t2
    done;
    h.(0) <- h.(0) +% !a;
    h.(1) <- h.(1) +% !b;
    h.(2) <- h.(2) +% !c;
    h.(3) <- h.(3) +% !d;
    h.(4) <- h.(4) +% !e;
    h.(5) <- h.(5) +% !f;
    h.(6) <- h.(6) +% !g;
    h.(7) <- h.(7) +% !hh
  done;
  let out = Bytes.create 32 in
  Array.iteri (fun i x -> Bytes.set_int32_be out (i * 4) x) h;
  Bytes.unsafe_to_string out

let to_hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let hex s = to_hex (digest s)
