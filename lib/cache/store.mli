(** Content-addressed on-disk artifact store.

    Layout under the root directory:

    {v
    <root>/objects/ab/cd/<id>    entries; id = sha256(kind NUL key)
    <root>/tmp/                  in-flight writes (same filesystem)
    <root>/stats.log             one appended line per finished session
    v}

    Entries are sharded over two directory levels (first four hex
    characters of the id) so no single directory grows unbounded. Every
    entry carries a versioned header — format version, the writer's
    kind, and a model-version stamp that includes the OCaml version,
    because payloads are [Marshal]-encoded — plus the payload's own
    SHA-256 and length. A read that fails {e any} of those checks (or
    any I/O error) degrades to a miss and best-effort deletes the bad
    file, so truncated or corrupted entries are recomputed and
    rewritten, never crash.

    Writes go to a temp file in [<root>/tmp] and land with an atomic
    [rename], so concurrent writers — pool domains or separate
    processes — can race on the same key and readers still only ever
    see complete entries. Disk-hit reads bump the entry's mtime, which
    is the eviction order {!gc} uses.

    A bounded in-memory {!Lru} front caches payload bytes per process;
    hits there skip the file read and checksum. Hit/miss/byte counters
    are kept in atomics (safe under {!Support.Pool}) and mirrored into
    {!Support.Trace} as [cache.hit] / [cache.miss] / [cache.bytes]. *)

type t

val model_version : string
(** Stamp written into every entry header. Bump {e the constant in the
    implementation} whenever a cached value's meaning or layout changes
    (a new mapper cost function, a changed record); entries with a
    different stamp read as misses. The OCaml version is appended
    automatically because values are [Marshal]-encoded. *)

val open_dir : ?mem_bytes:int -> string -> t
(** Open (creating directories as needed) a store rooted at the given
    path. [mem_bytes] bounds the in-memory front (default 64 MiB; 0
    disables it). Raises [Sys_error] with a plain message if the root
    cannot be created or is not writable. *)

val dir : t -> string

val get : t -> kind:string -> key:string -> string option
val put : t -> kind:string -> key:string -> string -> unit
(** [put] never raises: a write failure (full disk, permissions) only
    forfeits the cache entry. *)

val entry_path : t -> kind:string -> key:string -> string
(** Where [put] lands the entry (exposed for tests and debugging). *)

val hits : t -> int
val misses : t -> int
val puts : t -> int

val finish : t -> unit
(** Append this session's counters to [stats.log] (atomic single-line
    append; idempotent — only the first call writes, and a session with
    no cache traffic writes nothing). *)

(** {1 Maintenance (path-based: no open store required)} *)

type disk_stats = {
  ds_entries : int;
  ds_bytes : int;          (** sum of entry file sizes *)
  ds_sessions : int;       (** lines in [stats.log] *)
  ds_hits : int;           (** summed over sessions *)
  ds_misses : int;
  ds_puts : int;
  ds_last : (int * int * int) option;  (** last session's (hits, misses, puts) *)
}

val disk_stats : string -> disk_stats
(** Stats for the store rooted at a path ([stats.log] totals plus an
    object walk). An empty or absent directory yields all zeros. *)

val stats_json : string -> string
(** {!disk_stats} as one JSON object, including derived [hit_rate]
    fields (cumulative and last-session). *)

val gc : string -> max_bytes:int -> int * int
(** [gc dir ~max_bytes] deletes entries, oldest mtime first, until the
    remaining entry bytes fit the budget; stale temp files are removed
    too. Returns (entries removed, bytes removed). *)

val clear : string -> unit
(** Delete all entries, temp files and [stats.log]. *)
