type t = { store : Store.t option }

let disabled = { store = None }
let of_store s = { store = Some s }
let of_dir ?mem_bytes dir = of_store (Store.open_dir ?mem_bytes dir)
let enabled t = t.store <> None
let store t = t.store

let memo t ~kind ~key f =
  match t.store with
  | None -> f ()
  | Some s -> (
    match Store.get s ~kind ~key with
    | Some payload -> Marshal.from_string payload 0
    | None ->
      let v = f () in
      Store.put s ~kind ~key (Marshal.to_string v []);
      v)

let finish t = match t.store with None -> () | Some s -> Store.finish s
