(** Pure-OCaml SHA-256 (FIPS 180-4).

    The stdlib of the pinned toolchain only ships MD5 ([Digest]), whose
    collisions are constructible; cache keys that silently alias would
    hand one artifact's result to another, so the content-addressed
    store hashes with SHA-256 instead. One-shot over in-memory strings —
    the canonical serialisations this repository hashes are built in a
    [Buffer] anyway, so no streaming interface is needed. *)

val digest : string -> string
(** Raw 32-byte digest. *)

val hex : string -> string
(** Lowercase 64-character hex digest: [to_hex (digest s)]. *)

val to_hex : string -> string
(** Lowercase hex rendering of a raw digest (or any byte string). *)
