let store : Store.t option Atomic.t = Atomic.make None

let active () = Atomic.get store
let enabled () = active () <> None

let session () = match active () with None -> Session.disabled | Some s -> Session.of_store s

let enable ?mem_bytes dir =
  let s = Store.open_dir ?mem_bytes dir in
  Atomic.set store (Some s);
  s

let finish () =
  match Atomic.exchange store None with
  | None -> ()
  | Some s -> Store.finish s

let env_var = "REPRO_CACHE"

let dir_from_env () =
  match Sys.getenv_opt env_var with
  | Some d when String.trim d <> "" -> Some d
  | _ -> None

let resolve_dir ~flag = match flag with Some _ -> flag | None -> dir_from_env ()

let memo ~kind ~key f = Session.memo (session ()) ~kind ~key f
