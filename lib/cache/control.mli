(** The process-global ambient cache: a thin shim for the one-shot CLIs.

    The memoized hot paths — {!Core.Flow.synth_map}, the
    pre-characterised unit delays, the MILP solve — all take an explicit
    {!Session.t} nowadays; this module merely owns {e one} ambient
    session that the CLIs enable once (from [--cache-dir] or the
    [REPRO_CACHE] environment variable) and that those paths fall back
    to when no session was passed. Long-lived multi-request processes
    (the [regulate serve] daemon) bypass this module entirely and thread
    their own session-owned store, so no request can observe another's
    cache-state flips. Disabled means every memoized function runs
    exactly as before, allocating nothing extra.

    Enable/disable from the main domain only, before and after any
    {!Support.Pool} fan-out; {e lookups} are safe from any domain. *)

val enabled : unit -> bool
val active : unit -> Store.t option

val session : unit -> Session.t
(** The ambient session: backed by the enabled store, or
    {!Session.disabled}. Captures the store {e at call time}. *)

val enable : ?mem_bytes:int -> string -> Store.t
(** Open a store rooted at the directory and make it the process
    cache. Raises [Sys_error] if the directory cannot be created. *)

val finish : unit -> unit
(** Flush the active store's session counters ({!Store.finish}) and
    disable the cache. No-op when disabled. *)

val env_var : string
(** ["REPRO_CACHE"]. *)

val dir_from_env : unit -> string option
(** The environment-variable cache directory, if set and non-empty. *)

val resolve_dir : flag:string option -> string option
(** Effective cache directory: the CLI flag when given, else the
    environment variable. *)

val memo : kind:string -> key:string -> (unit -> 'a) -> 'a
(** [memo ~kind ~key f] returns the cached value for [(kind, key)] or
    computes [f ()] and stores it. Values are [Marshal]-encoded; the
    store's header checksums and version stamps guarantee a decoded
    payload is byte-exact and written by this model version, so the
    only type obligation is the caller's: {b one [kind] string must map
    to exactly one result type} across the whole code base. With no
    active store this is exactly [f ()]. *)
