(** Process-global cache activation and memoization.

    Like {!Support.Trace}, the cache is a process-global switch rather
    than a parameter threaded through every stage: the CLIs enable it
    once (from [--cache-dir] or the [REPRO_CACHE] environment variable)
    and the instrumented hot paths — {!Core.Flow.synth_map}, the
    pre-characterised unit delays, the MILP solve — consult it with one
    atomic load. Disabled means every memoized function runs exactly as
    before, allocating nothing extra.

    Enable/disable from the main domain only, before and after any
    {!Support.Pool} fan-out; {e lookups} are safe from any domain. *)

val enabled : unit -> bool
val active : unit -> Store.t option

val enable : ?mem_bytes:int -> string -> Store.t
(** Open a store rooted at the directory and make it the process
    cache. Raises [Sys_error] if the directory cannot be created. *)

val finish : unit -> unit
(** Flush the active store's session counters ({!Store.finish}) and
    disable the cache. No-op when disabled. *)

val env_var : string
(** ["REPRO_CACHE"]. *)

val dir_from_env : unit -> string option
(** The environment-variable cache directory, if set and non-empty. *)

val resolve_dir : flag:string option -> string option
(** Effective cache directory: the CLI flag when given, else the
    environment variable. *)

val memo : kind:string -> key:string -> (unit -> 'a) -> 'a
(** [memo ~kind ~key f] returns the cached value for [(kind, key)] or
    computes [f ()] and stores it. Values are [Marshal]-encoded; the
    store's header checksums and version stamps guarantee a decoded
    payload is byte-exact and written by this model version, so the
    only type obligation is the caller's: {b one [kind] string must map
    to exactly one result type} across the whole code base. With no
    active store this is exactly [f ()]. *)
