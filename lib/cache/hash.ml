module G = Dataflow.Graph
module K = Dataflow.Unit_kind

(* Binary encoder primitives. Fixed-width big-endian integers: the
   encoding must be injective (no delimiter ambiguity), compactness is
   irrelevant next to the hash. *)

let tag b n = Buffer.add_char b (Char.chr (n land 0xff))
let int b n = Buffer.add_int64_be b (Int64.of_int n)
let flt b f = Buffer.add_int64_be b (Int64.bits_of_float f)
let bool b v = tag b (if v then 1 else 0)

let str b s =
  int b (String.length s);
  Buffer.add_string b s

let opt_int b = function
  | None -> tag b 0
  | Some n ->
    tag b 1;
    int b n

(* ------------------------------------------------------------------ *)

let unit_kind b (k : K.t) =
  match k with
  | K.Entry -> tag b 0
  | K.Exit -> tag b 1
  | K.Fork n ->
    tag b 2;
    int b n
  | K.Lazy_fork n ->
    tag b 3;
    int b n
  | K.Join n ->
    tag b 4;
    int b n
  | K.Merge n ->
    tag b 5;
    int b n
  | K.Mux n ->
    tag b 6;
    int b n
  | K.Control_merge n ->
    tag b 7;
    int b n
  | K.Branch -> tag b 8
  | K.Sink -> tag b 9
  | K.Source -> tag b 10
  | K.Const c ->
    tag b 11;
    int b c
  | K.Operator { op; latency; ii } ->
    tag b 12;
    str b (Dataflow.Ops.name op);
    int b latency;
    int b ii
  | K.Load { mem; latency } ->
    tag b 13;
    str b mem;
    int b latency
  | K.Store { mem } ->
    tag b 14;
    str b mem
  | K.Buffer { transparent; slots } ->
    tag b 15;
    bool b transparent;
    int b slots

let buffer_spec b = function
  | None -> tag b 0
  | Some { G.transparent; slots } ->
    tag b 1;
    bool b transparent;
    int b slots

let dfg g =
  let b = Buffer.create 4096 in
  str b "dfg:v1";
  int b (G.n_units g);
  G.iter_units g (fun n ->
      unit_kind b n.G.kind;
      int b n.G.bb;
      int b n.G.width;
      int b (Array.length n.G.ins);
      Array.iter (opt_int b) n.G.ins;
      int b (Array.length n.G.outs);
      Array.iter (opt_int b) n.G.outs);
  int b (G.n_channels g);
  G.iter_channels g (fun c ->
      int b c.G.src;
      int b c.G.src_port;
      int b c.G.dst;
      int b c.G.dst_port;
      int b c.G.width;
      buffer_spec b c.G.buffer;
      bool b c.G.back);
  let mems = List.sort compare (G.memories g) in
  int b (List.length mems);
  List.iter
    (fun (name, size) ->
      str b name;
      int b size)
    mems;
  Sha256.hex (Buffer.contents b)

(* ------------------------------------------------------------------ *)

let domain_tag = function Net.Data -> 0 | Net.Valid -> 1 | Net.Ready -> 2 | Net.Mixed -> 3

let gate_kind b (k : Net.kind) =
  match k with
  | Net.Input name ->
    tag b 0;
    str b name
  | Net.Output name ->
    tag b 1;
    str b name
  | Net.Const v ->
    tag b 2;
    bool b v
  | Net.Buf -> tag b 3
  | Net.Not -> tag b 4
  | Net.And2 -> tag b 5
  | Net.Or2 -> tag b 6
  | Net.Xor2 -> tag b 7
  | Net.Ff init ->
    tag b 8;
    bool b init

let netlist n =
  let b = Buffer.create 65536 in
  str b "net:v1";
  int b (Net.n_gates n);
  Net.iter n (fun g ->
      gate_kind b g.Net.kind;
      int b (Array.length g.Net.fanins);
      Array.iter (int b) g.Net.fanins;
      int b g.Net.owner;
      tag b (domain_tag g.Net.dom));
  let ids l =
    let l = List.sort compare l in
    int b (List.length l);
    List.iter (int b) l
  in
  ids (Net.inputs n);
  ids (Net.outputs n);
  ids (Net.ffs n);
  Sha256.hex (Buffer.contents b)

(* ------------------------------------------------------------------ *)

let relation_tag = function Milp.Lp.Le -> 0 | Milp.Lp.Ge -> 1 | Milp.Lp.Eq -> 2
let var_kind_tag = function Milp.Lp.Continuous -> 0 | Milp.Lp.Binary -> 1 | Milp.Lp.Integer -> 2

let terms b ts =
  (* the builder already sums repeated variables; sorting by variable
     index makes the row canonical regardless of construction order *)
  let ts = List.sort (fun (_, a) (_, d) -> compare a d) ts in
  int b (List.length ts);
  List.iter
    (fun (c, v) ->
      flt b c;
      int b v)
    ts

let lp m =
  let b = Buffer.create 16384 in
  str b "lp:v1";
  int b (Milp.Lp.n_vars m);
  for v = 0 to Milp.Lp.n_vars m - 1 do
    let lo, hi = Milp.Lp.bounds m v in
    flt b lo;
    flt b hi;
    tag b (var_kind_tag (Milp.Lp.var_kind m v))
  done;
  int b (Milp.Lp.n_constrs m);
  for r = 0 to Milp.Lp.n_constrs m - 1 do
    let ts, rel, rhs = Milp.Lp.constr m r in
    terms b ts;
    tag b (relation_tag rel);
    flt b rhs
  done;
  let maximize, obj = Milp.Lp.objective m in
  bool b maximize;
  terms b obj;
  Sha256.hex (Buffer.contents b)

(* ------------------------------------------------------------------ *)

let combine parts =
  let b = Buffer.create 256 in
  str b "combine:v1";
  int b (List.length parts);
  List.iter (str b) parts;
  Sha256.hex (Buffer.contents b)
