module Trace = Support.Trace

let format_version = 1

(* Bump the "m" number whenever any cached value's layout or meaning
   changes (Lutgraph fields, mapper cost function, MILP solution tuple,
   unit-delay semantics). The OCaml version rides along because payloads
   are Marshal-encoded and the marshal format is compiler-dependent. *)
let model_version = "m3-ocaml" ^ Sys.ocaml_version

type t = {
  root : string;
  mem : Lru.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  puts : int Atomic.t;
  bytes : int Atomic.t;  (* payload bytes served on hits + written on puts *)
  tmp_seq : int Atomic.t;
  finished : bool Atomic.t;
}

let dir t = t.root

let ( / ) = Filename.concat

let mkdir_p path =
  let rec make p =
    if not (Sys.file_exists p) then begin
      make (Filename.dirname p);
      try Unix.mkdir p 0o755 with
      | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
      | Unix.Unix_error (e, _, _) ->
        raise (Sys_error (Printf.sprintf "%s: %s" p (Unix.error_message e)))
    end
  in
  make path

let open_dir ?(mem_bytes = 64 * 1024 * 1024) root =
  mkdir_p (root / "objects");
  mkdir_p (root / "tmp");
  (* fail now, with a clean message, rather than on the first put *)
  if not (Sys.is_directory (root / "objects")) then
    raise (Sys_error (Printf.sprintf "%s: not a directory" (root / "objects")));
  {
    root;
    mem = Lru.create ~max_bytes:mem_bytes;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    puts = Atomic.make 0;
    bytes = Atomic.make 0;
    tmp_seq = Atomic.make 0;
    finished = Atomic.make false;
  }

let entry_id ~kind ~key = Sha256.hex (kind ^ "\x00" ^ key)

let path_of_id root id =
  root / "objects" / String.sub id 0 2 / String.sub id 2 2 / id

let entry_path t ~kind ~key = path_of_id t.root (entry_id ~kind ~key)

(* ---- entry encoding ---- *)

let header ~kind payload =
  Printf.sprintf "repro-cache %d %s %s\n%s %d\n" format_version kind model_version
    (Sha256.hex payload) (String.length payload)

(* Parse and verify an entry; any deviation is a miss. *)
let decode ~kind contents =
  match String.index_opt contents '\n' with
  | None -> None
  | Some i1 -> (
    match String.index_from_opt contents (i1 + 1) '\n' with
    | None -> None
    | Some i2 ->
      let l1 = String.sub contents 0 i1 in
      let l2 = String.sub contents (i1 + 1) (i2 - i1 - 1) in
      let payload = String.sub contents (i2 + 1) (String.length contents - i2 - 1) in
      let expect_l1 = Printf.sprintf "repro-cache %d %s %s" format_version kind model_version in
      if l1 <> expect_l1 then None
      else
        match String.split_on_char ' ' l2 with
        | [ digest; len ]
          when int_of_string_opt len = Some (String.length payload)
               && String.equal digest (Sha256.hex payload) ->
          Some payload
        | _ -> None)

let read_entry ~kind path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> None
  | contents -> (
    match decode ~kind contents with
    | Some payload -> Some payload
    | None ->
      (* corrupted, truncated, or written by an incompatible version:
         drop it so the rewrite is not blocked by a stale file *)
      (try Sys.remove path with Sys_error _ -> ());
      None)

let record_hit t payload =
  Atomic.incr t.hits;
  Atomic.fetch_and_add t.bytes (String.length payload) |> ignore;
  Trace.add "cache.hit" 1;
  Trace.add "cache.bytes" (String.length payload)

let get t ~kind ~key =
  let id = entry_id ~kind ~key in
  match Lru.find t.mem id with
  | Some payload ->
    record_hit t payload;
    Some payload
  | None -> (
    let path = path_of_id t.root id in
    match read_entry ~kind path with
    | Some payload ->
      record_hit t payload;
      Lru.add t.mem id payload;
      (* refresh mtime: gc evicts oldest-read first *)
      (try Unix.utimes path 0. 0. with Unix.Unix_error _ -> ());
      Some payload
    | None ->
      Atomic.incr t.misses;
      Trace.add "cache.miss" 1;
      None)

let put t ~kind ~key payload =
  let id = entry_id ~kind ~key in
  let path = path_of_id t.root id in
  (try
     mkdir_p (Filename.dirname path);
     let tmp =
       t.root / "tmp"
       / Printf.sprintf "%s.%d.%d" id (Unix.getpid ()) (Atomic.fetch_and_add t.tmp_seq 1)
     in
     Out_channel.with_open_bin tmp (fun oc ->
         Out_channel.output_string oc (header ~kind payload);
         Out_channel.output_string oc payload);
     Sys.rename tmp path
   with Sys_error _ | Unix.Unix_error _ -> ());
  Atomic.incr t.puts;
  Atomic.fetch_and_add t.bytes (String.length payload) |> ignore;
  Trace.add "cache.bytes" (String.length payload);
  Lru.add t.mem id payload

let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
let puts t = Atomic.get t.puts

let finish t =
  if not (Atomic.exchange t.finished true) then begin
    let h = hits t and m = misses t and p = puts t and b = Atomic.get t.bytes in
    if h + m + p > 0 then
      try
        let oc =
          open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 (t.root / "stats.log")
        in
        (* one small write: atomic enough for concurrent appenders *)
        output_string oc (Printf.sprintf "hits %d misses %d puts %d bytes %d\n" h m p b);
        close_out oc
      with Sys_error _ -> ()
  end

(* ---- path-based maintenance ---- *)

let list_entries root =
  let objects = root / "objects" in
  if not (Sys.file_exists objects) then []
  else
    let subdirs p = try Array.to_list (Sys.readdir p) with Sys_error _ -> [] in
    List.concat_map
      (fun a ->
        List.concat_map
          (fun b ->
            List.filter_map
              (fun f ->
                let path = objects / a / b / f in
                match Unix.stat path with
                | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
                  Some (path, st_size, st_mtime)
                | _ -> None
                | exception Unix.Unix_error _ -> None)
              (subdirs (objects / a / b)))
          (subdirs (objects / a)))
      (subdirs objects)

type disk_stats = {
  ds_entries : int;
  ds_bytes : int;
  ds_sessions : int;
  ds_hits : int;
  ds_misses : int;
  ds_puts : int;
  ds_last : (int * int * int) option;
}

let parse_session line =
  match String.split_on_char ' ' line with
  | "hits" :: h :: "misses" :: m :: "puts" :: p :: _ -> (
    match (int_of_string_opt h, int_of_string_opt m, int_of_string_opt p) with
    | Some h, Some m, Some p -> Some (h, m, p)
    | _ -> None)
  | _ -> None

let disk_stats root =
  let entries = list_entries root in
  let sessions =
    match In_channel.with_open_text (root / "stats.log") In_channel.input_all with
    | exception Sys_error _ -> []
    | contents ->
      String.split_on_char '\n' contents
      |> List.filter (fun l -> l <> "")
      |> List.filter_map parse_session
  in
  let h, m, p =
    List.fold_left (fun (h, m, p) (h', m', p') -> (h + h', m + m', p + p')) (0, 0, 0) sessions
  in
  {
    ds_entries = List.length entries;
    ds_bytes = List.fold_left (fun acc (_, sz, _) -> acc + sz) 0 entries;
    ds_sessions = List.length sessions;
    ds_hits = h;
    ds_misses = m;
    ds_puts = p;
    ds_last = (match List.rev sessions with last :: _ -> Some last | [] -> None);
  }

let rate h m = if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let stats_json root =
  let s = disk_stats root in
  let last =
    match s.ds_last with
    | None -> "null"
    | Some (h, m, p) ->
      Printf.sprintf {|{"hits":%d,"misses":%d,"puts":%d,"hit_rate":%.4f}|} h m p (rate h m)
  in
  Printf.sprintf
    {|{"dir":%s,"entries":%d,"bytes":%d,"sessions":%d,"hits":%d,"misses":%d,"puts":%d,"hit_rate":%.4f,"last_session":%s}|}
    (json_string root) s.ds_entries s.ds_bytes s.ds_sessions s.ds_hits s.ds_misses s.ds_puts
    (rate s.ds_hits s.ds_misses) last

let remove_tmp root =
  let tmp = root / "tmp" in
  if Sys.file_exists tmp then
    Array.iter
      (fun f -> try Sys.remove (tmp / f) with Sys_error _ -> ())
      (try Sys.readdir tmp with Sys_error _ -> [||])

let gc root ~max_bytes =
  remove_tmp root;
  let entries =
    list_entries root |> List.sort (fun (_, _, a) (_, _, b) -> compare a b)
    (* oldest mtime first; hits refresh mtime, so this approximates LRU *)
  in
  let total = List.fold_left (fun acc (_, sz, _) -> acc + sz) 0 entries in
  let rec drop entries total removed freed =
    if total <= max_bytes then (removed, freed)
    else
      match entries with
      | [] -> (removed, freed)
      | (path, sz, _) :: rest ->
        (try Sys.remove path with Sys_error _ -> ());
        drop rest (total - sz) (removed + 1) (freed + sz)
  in
  drop entries total 0 0

let clear root =
  remove_tmp root;
  List.iter (fun (path, _, _) -> try Sys.remove path with Sys_error _ -> ()) (list_entries root);
  (try Sys.remove (root / "stats.log") with Sys_error _ -> ());
  (* prune the now-empty shard directories *)
  let objects = root / "objects" in
  if Sys.file_exists objects then
    Array.iter
      (fun a ->
        let pa = objects / a in
        (try Array.iter (fun b -> try Unix.rmdir (pa / b) with Unix.Unix_error _ -> ())
               (Sys.readdir pa)
         with Sys_error _ -> ());
        try Unix.rmdir pa with Unix.Unix_error _ -> ())
      (try Sys.readdir objects with Sys_error _ -> [||])
