let succ_units g u = List.map snd (Graph.succs g u)

(* Tarjan's algorithm, iterative to survive deep graphs. *)
let sccs g =
  let n = Graph.n_units g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (succ_units g v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      components := pop [] :: !components
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  !components

let has_self_loop g u = List.exists (fun (_, d) -> d = u) (Graph.succs g u)

let cyclic_sccs g =
  List.filter
    (fun comp -> match comp with [ u ] -> has_self_loop g u | _ :: _ :: _ -> true | [] -> false)
    (sccs g)

type color = White | Grey | Black

let back_edges g =
  let n = Graph.n_units g in
  let color = Array.make n White in
  let back = ref [] in
  let rec dfs u =
    color.(u) <- Grey;
    List.iter
      (fun (cid, w) ->
        match color.(w) with
        | Grey -> back := cid :: !back
        | White -> dfs w
        | Black -> ())
      (Graph.succs g u);
    color.(u) <- Black
  in
  (* Start from entries/sources first so loop headers are discovered in
     program order, then sweep any disconnected remainder. *)
  Graph.iter_units g (fun nd ->
      match nd.Graph.kind with
      | Unit_kind.Entry | Unit_kind.Source -> if color.(nd.Graph.uid) = White then dfs nd.Graph.uid
      | _ -> ());
  for u = 0 to n - 1 do
    if color.(u) = White then dfs u
  done;
  List.rev !back

let topo_order g =
  let back = back_edges g in
  let is_back = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace is_back c ()) back;
  let n = Graph.n_units g in
  let indeg = Array.make n 0 in
  Graph.iter_channels g (fun c ->
      if not (Hashtbl.mem is_back c.Graph.cid) then indeg.(c.Graph.dst) <- indeg.(c.Graph.dst) + 1);
  let queue = Queue.create () in
  for u = 0 to n - 1 do
    if indeg.(u) = 0 then Queue.add u queue
  done;
  let order = ref [] in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order := u :: !order;
    List.iter
      (fun (cid, w) ->
        if not (Hashtbl.mem is_back cid) then begin
          indeg.(w) <- indeg.(w) - 1;
          if indeg.(w) = 0 then Queue.add w queue
        end)
      (Graph.succs g u)
  done;
  List.rev !order

(* The enumeration cap is configurable process-wide through the
   REPRO_CYCLE_CAP environment variable (the `--cycle-cap` CLI flag
   sets an explicit [limit] instead); the hard-coded defaults only apply
   when neither is given. *)
let cycle_cap ~default =
  match Sys.getenv_opt "REPRO_CYCLE_CAP" with
  | None -> default
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some v when v >= 1 -> v
    | Some _ | None -> default)

let simple_cycles_capped ?limit g =
  let limit = match limit with Some l -> l | None -> cycle_cap ~default:512 in
  let n = Graph.n_units g in
  let cycles = ref [] in
  let count = ref 0 in
  let truncated = ref false in
  (* Per Johnson: for each start vertex s, search for cycles through s
     using only vertices >= s; blocked-set bookkeeping keeps it output
     sensitive. We additionally cap at [limit]. *)
  let blocked = Array.make n false in
  let block_map = Array.make n [] in
  let rec unblock v =
    blocked.(v) <- false;
    let bs = block_map.(v) in
    block_map.(v) <- [];
    List.iter (fun w -> if blocked.(w) then unblock w) bs
  in
  let exception Done in
  (try
     for s = 0 to n - 1 do
       Array.fill blocked 0 n false;
       Array.fill block_map 0 n [];
       let rec circuit v path =
         if !count >= limit then raise Done;
         blocked.(v) <- true;
         let found = ref false in
         List.iter
           (fun (cid, w) ->
             if w >= s then
               if w = s then begin
                 cycles := List.rev (cid :: path) :: !cycles;
                 incr count;
                 found := true;
                 if !count >= limit then raise Done
               end
               else if not blocked.(w) then
                 if circuit w (cid :: path) then found := true)
           (Graph.succs g v);
         if !found then unblock v
         else
           List.iter
             (fun (_, w) ->
               if w >= s && not (List.mem v block_map.(w)) then block_map.(w) <- v :: block_map.(w))
             (Graph.succs g v);
         !found
       in
       ignore (circuit s [])
     done
   with Done -> truncated := true);
  (List.rev !cycles, !truncated)

let simple_cycles ?limit g = fst (simple_cycles_capped ?limit g)

let shortest_path g ~src ~dst =
  if src = dst then Some []
  else begin
    let n = Graph.n_units g in
    let prev = Array.make n None in
    let seen = Array.make n false in
    seen.(src) <- true;
    let queue = Queue.create () in
    Queue.add src queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun (cid, w) ->
          if (not seen.(w)) && not !found then begin
            seen.(w) <- true;
            prev.(w) <- Some (cid, u);
            if w = dst then found := true else Queue.add w queue
          end)
        (Graph.succs g u)
    done;
    if not !found then None
    else begin
      let rec rebuild v acc =
        match prev.(v) with
        | None -> acc
        | Some (cid, u) -> rebuild u (cid :: acc)
      in
      Some (rebuild dst [])
    end
  end

let reachable g u =
  let n = Graph.n_units g in
  let seen = Array.make n false in
  let rec dfs v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter dfs (succ_units g v)
    end
  in
  dfs u;
  seen
