(** Structural analyses over dataflow graphs: strongly connected
    components, cycle enumeration, back-edge detection, and the
    fewest-units path query used by the LUT-edge mapper (§IV-A of the
    paper). *)

val sccs : Graph.t -> Graph.unit_id list list
(** Tarjan strongly connected components; components in reverse
    topological order, each as a list of unit ids. Singleton components
    without a self-loop are included. *)

val cyclic_sccs : Graph.t -> Graph.unit_id list list
(** Only components that actually contain a cycle. *)

val back_edges : Graph.t -> Graph.channel_id list
(** Channels whose removal breaks all cycles (DFS back edges from the
    entry units). These are where the flow seeds its initial buffers. *)

val cycle_cap : default:int -> int
(** The simple-cycle enumeration cap: the [REPRO_CYCLE_CAP] environment
    variable when set to a positive integer, [default] otherwise. Every
    enumeration that is not given an explicit [limit] (here and in
    CFDFC extraction) resolves its cap through this, so one environment
    variable retunes the whole flow. *)

val simple_cycles : ?limit:int -> Graph.t -> Graph.channel_id list list
(** Johnson-style enumeration of simple cycles, each as a channel list,
    capped at [limit] (default [cycle_cap ~default:512]) cycles to stay
    tractable. Truncation is silent; callers that must know whether the
    enumeration was exhaustive use {!simple_cycles_capped}. *)

val simple_cycles_capped : ?limit:int -> Graph.t -> Graph.channel_id list list * bool
(** Like {!simple_cycles}, plus a flag that is [true] when the [limit]
    cap stopped the enumeration — i.e. the returned list may be missing
    cycles. The flag is conservative: a graph with exactly [limit]
    simple cycles also reports [true]. *)

val shortest_path : Graph.t -> src:Graph.unit_id -> dst:Graph.unit_id -> Graph.channel_id list option
(** BFS path with the fewest units from [src] to [dst], as the channel
    sequence; [None] if unreachable. A [src = dst] query returns [Some []].
    This implements the paper's "DFG path with fewer dataflow units" rule
    for ambiguous LUT edges. *)

val reachable : Graph.t -> Graph.unit_id -> bool array
(** Forward reachability from a unit. *)

val topo_order : Graph.t -> Graph.unit_id list
(** Topological order ignoring back edges (i.e., of the DAG obtained by
    deleting [back_edges]). *)
