type unit_id = int
type channel_id = int

type buffer_spec = { transparent : bool; slots : int }

type node = {
  uid : unit_id;
  kind : Unit_kind.t;
  label : string;
  bb : int;
  width : int;
  ins : channel_id option array;
  outs : channel_id option array;
}

type chan = {
  cid : channel_id;
  src : unit_id;
  src_port : int;
  dst : unit_id;
  dst_port : int;
  width : int;
  mutable buffer : buffer_spec option;
  mutable back : bool;
}

type t = {
  gname : string;
  units : node Support.Vec.t;
  channels : chan Support.Vec.t;
  mutable mems : (string * int) list;
}

let create gname =
  { gname; units = Support.Vec.create (); channels = Support.Vec.create (); mems = [] }

let name t = t.gname

let add_unit t ?label ?(bb = -1) ?(width = 32) kind =
  let uid = Support.Vec.length t.units in
  let label = Option.value label ~default:(Printf.sprintf "%s_%d" (Unit_kind.name kind) uid) in
  let node =
    {
      uid;
      kind;
      label;
      bb;
      width;
      ins = Array.make (Unit_kind.in_arity kind) None;
      outs = Array.make (Unit_kind.out_arity kind) None;
    }
  in
  ignore (Support.Vec.push t.units node);
  uid

let unit_node t uid = Support.Vec.get t.units uid
let channel t cid = Support.Vec.get t.channels cid
let n_units t = Support.Vec.length t.units
let n_channels t = Support.Vec.length t.channels

let connect t ~src ~src_port ~dst ~dst_port =
  let s = unit_node t src and d = unit_node t dst in
  if src_port < 0 || src_port >= Array.length s.outs then
    invalid_arg (Printf.sprintf "connect: %s has no output port %d" s.label src_port);
  if dst_port < 0 || dst_port >= Array.length d.ins then
    invalid_arg (Printf.sprintf "connect: %s has no input port %d" d.label dst_port);
  (match s.outs.(src_port) with
  | Some _ -> invalid_arg (Printf.sprintf "connect: output %s.%d already connected" s.label src_port)
  | None -> ());
  (match d.ins.(dst_port) with
  | Some _ -> invalid_arg (Printf.sprintf "connect: input %s.%d already connected" d.label dst_port)
  | None -> ());
  let cid = Support.Vec.length t.channels in
  let c = { cid; src; src_port; dst; dst_port; width = s.width; buffer = None; back = false } in
  ignore (Support.Vec.push t.channels c);
  s.outs.(src_port) <- Some cid;
  d.ins.(dst_port) <- Some cid;
  cid

let add_memory t mem size = t.mems <- (mem, size) :: t.mems
let memories t = List.rev t.mems

let iter_units t f = Support.Vec.iter f t.units
let iter_channels t f = Support.Vec.iter f t.channels
let fold_channels t f init = Support.Vec.fold f init t.channels

let in_channel t uid port = (unit_node t uid).ins.(port)
let out_channel t uid port = (unit_node t uid).outs.(port)

let preds t uid =
  let n = unit_node t uid in
  Array.to_list n.ins
  |> List.filter_map (fun c -> Option.map (fun cid -> (cid, (channel t cid).src)) c)

let succs t uid =
  let n = unit_node t uid in
  Array.to_list n.outs
  |> List.filter_map (fun c -> Option.map (fun cid -> (cid, (channel t cid).dst)) c)

let set_back_edge t cid = (channel t cid).back <- true

let marked_back_edges t =
  fold_channels t (fun acc c -> if c.back then c.cid :: acc else acc) [] |> List.rev

let set_buffer t cid spec = (channel t cid).buffer <- spec
let buffer t cid = (channel t cid).buffer

let buffered_channels t =
  fold_channels t
    (fun acc c -> match c.buffer with Some b -> (c.cid, b) :: acc | None -> acc)
    []
  |> List.rev

let clear_buffers t = iter_channels t (fun c -> c.buffer <- None)

let copy t =
  let units = Support.Vec.create () in
  Support.Vec.iter
    (fun n -> ignore (Support.Vec.push units { n with ins = Array.copy n.ins; outs = Array.copy n.outs }))
    t.units;
  let channels = Support.Vec.create () in
  Support.Vec.iter (fun c -> ignore (Support.Vec.push channels { c with buffer = c.buffer })) t.channels;
  { gname = t.gname; units; channels; mems = t.mems }

let validate t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  iter_units t (fun n ->
      Array.iteri
        (fun p c -> if c = None then err "unit %s: input port %d unconnected" n.label p)
        n.ins;
      Array.iteri
        (fun p c -> if c = None then err "unit %s: output port %d unconnected" n.label p)
        n.outs);
  iter_channels t (fun c ->
      if c.src < 0 || c.src >= n_units t then err "channel %d: bad src" c.cid;
      if c.dst < 0 || c.dst >= n_units t then err "channel %d: bad dst" c.cid;
      (match c.buffer with
      | Some { slots; _ } when slots < 1 -> err "channel %d: buffer with %d slots" c.cid slots
      | _ -> ()));
  match !errors with
  | [] -> Ok ()
  | es -> Error (String.concat "; " (List.rev es))

let set_width t uid w =
  let n = unit_node t uid in
  Support.Vec.set t.units uid { n with width = w };
  Array.iter
    (function
      | Some cid -> Support.Vec.set t.channels cid { (channel t cid) with width = w }
      | None -> ())
    n.outs

let find_units t p =
  let out = ref [] in
  iter_units t (fun n -> if p n then out := n.uid :: !out);
  List.rev !out
