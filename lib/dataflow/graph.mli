(** The dataflow graph (DFG): units connected by point-to-point channels.

    Channels are the only legal buffer positions (buffers must never be
    placed inside a unit, which would break the handshake protocol —
    Josipović et al., FPGA 2020). A buffer is recorded as an annotation on
    its channel so that the graph topology stays stable while the iterative
    optimizer explores placements. *)

type unit_id = int
type channel_id = int

type buffer_spec = {
  transparent : bool;  (** transparent buffers add capacity without latency *)
  slots : int;         (** queue capacity, >= 1 *)
}

type node = private {
  uid : unit_id;
  kind : Unit_kind.t;
  label : string;
  bb : int;            (** originating basic block (-1 if none) *)
  width : int;         (** datapath bit-width of the unit's output *)
  ins : channel_id option array;
  outs : channel_id option array;
}

type chan = private {
  cid : channel_id;
  src : unit_id;
  src_port : int;
  dst : unit_id;
  dst_port : int;
  width : int;
  mutable buffer : buffer_spec option;
  mutable back : bool;  (** marked loop back edge (set by the front end) *)
}

type t

val create : string -> t
(** [create name] makes an empty graph. *)

val name : t -> string

val add_unit : t -> ?label:string -> ?bb:int -> ?width:int -> Unit_kind.t -> unit_id
(** Add a unit; default width 32 (0 is conventional for pure control
    tokens). *)

val connect : t -> src:unit_id -> src_port:int -> dst:unit_id -> dst_port:int -> channel_id
(** Wire an output port to an input port. Raises [Invalid_argument] if a
    port is out of range or already connected. The channel width is the
    source unit's width. *)

val add_memory : t -> string -> int -> unit
(** Declare a memory array by name and word count. *)

val memories : t -> (string * int) list

val n_units : t -> int
val n_channels : t -> int
val unit_node : t -> unit_id -> node
val channel : t -> channel_id -> chan
val iter_units : t -> (node -> unit) -> unit
val iter_channels : t -> (chan -> unit) -> unit
val fold_channels : t -> ('a -> chan -> 'a) -> 'a -> 'a

val in_channel : t -> unit_id -> int -> channel_id option
val out_channel : t -> unit_id -> int -> channel_id option

val preds : t -> unit_id -> (channel_id * unit_id) list
(** Incoming channels with their source units, in port order. *)

val succs : t -> unit_id -> (channel_id * unit_id) list
(** Outgoing channels with their destination units, in port order. *)

val set_back_edge : t -> channel_id -> unit
(** Mark a channel as a loop back edge. Front ends that know their loop
    structure (see {!module:Hls}) mark the loop-carried channels; cycle
    seeding and CFDFC token marking prefer these over the generic DFS
    classification. *)

val marked_back_edges : t -> channel_id list

val set_buffer : t -> channel_id -> buffer_spec option -> unit
val buffer : t -> channel_id -> buffer_spec option
val buffered_channels : t -> (channel_id * buffer_spec) list
val clear_buffers : t -> unit

val copy : t -> t
(** Deep copy, including buffer annotations. *)

val validate : t -> (unit, string) result
(** Checks that every port of every unit is connected exactly once and
    that all endpoints are in range. *)

val set_width : t -> unit_id -> int -> unit
(** Change a unit's datapath width, updating the width of all its output
    channels to match (mirroring [connect]'s invariant). Used by the
    narrowing optimizer ({!module:Absint}). *)

val find_units : t -> (node -> bool) -> unit_id list
