let build_with_graph ?lut_delay ?lut_extra g ~net lg =
  let tg = Lut_map.build ?lut_delay ?lut_extra g ~net lg in
  (tg, Generate.run tg g)

let build ?lut_delay ?lut_extra g ~net lg =
  snd (build_with_graph ?lut_delay ?lut_extra g ~net lg)
