(** Facade for the paper's mapping-aware timing model: LUT-to-DFG
    mapping (§IV-A, §IV-D) followed by timing-model generation and
    penalty computation (§IV-B, §IV-C). *)

val build :
  ?lut_delay:float ->
  ?lut_extra:(int -> float) ->
  Dataflow.Graph.t ->
  net:Net.t ->
  Techmap.Lutgraph.t ->
  Model.t

val build_with_graph :
  ?lut_delay:float ->
  ?lut_extra:(int -> float) ->
  Dataflow.Graph.t ->
  net:Net.t ->
  Techmap.Lutgraph.t ->
  Lut_map.t * Model.t
(** Like {!build} but also returns the intermediate node-level timing
    graph, so static checkers can audit the LUT-to-DFG mapping itself
    (crossing nodes, fake-node accounting, acyclicity). *)
