module G = Dataflow.Graph
module K = Dataflow.Unit_kind

let level_delay = 0.7

(* The characterisation memo is shared across domains (baseline flows run
   concurrently under the experiment pool), so reads and writes are
   mutex-guarded: a torn Hashtbl resize would corrupt the table. Values
   are deterministic per key, so two domains racing to characterise the
   same signature store the same delay — duplicated work, never a
   different answer. *)
let cache : (string, float) Hashtbl.t = Hashtbl.create 64
let cache_mutex = Mutex.create ()

(* Expected width of each input port of a unit, given the widths its
   instance sees in the real graph. *)
let in_widths g uid =
  let n = G.unit_node g uid in
  Array.to_list n.G.ins
  |> List.map (fun c ->
         match c with Some cid -> (G.channel g cid).G.width | None -> n.G.width)

let signature g uid =
  let n = G.unit_node g uid in
  (* loads/stores elaborate against the named memory, so its word count
     is part of the unit's identity — without it two graphs with
     same-named memories of different sizes would share a delay *)
  let mem_suffix =
    match n.G.kind with
    | K.Load { mem; _ } | K.Store { mem } ->
      let size = try List.assoc mem (G.memories g) with Not_found -> 0 in
      Printf.sprintf "/mem:%s=%d" mem size
    | _ -> ""
  in
  Printf.sprintf "%s/w%d/in[%s]%s" (K.name n.G.kind) n.G.width
    (String.concat "," (List.map string_of_int (in_widths g uid)))
    mem_suffix

(* Build the isolation harness: sources -> buffer -> unit -> buffer -> sink,
   synthesise, map, and measure the LUT level count. *)
let characterize g uid =
  let n = G.unit_node g uid in
  let kind = n.G.kind in
  let h = G.create "charact" in
  List.iter (fun (m, s) -> G.add_memory h m s) (G.memories g);
  let u = G.add_unit h ~width:n.G.width kind in
  let widths = Array.of_list (in_widths g uid) in
  let buf = Some { G.transparent = false; slots = 2 } in
  Array.iteri
    (fun p w ->
      let src = G.add_unit h ~width:w K.Source in
      let cid = G.connect h ~src ~src_port:0 ~dst:u ~dst_port:p in
      G.set_buffer h cid buf)
    (Array.init (K.in_arity kind) (fun p -> widths.(p)));
  for p = 0 to K.out_arity kind - 1 do
    let snk = G.add_unit h ~width:n.G.width K.Sink in
    let cid = G.connect h ~src:u ~src_port:p ~dst:snk ~dst_port:0 in
    G.set_buffer h cid buf
  done;
  let net = Elaborate.run h in
  let synth = Techmap.Synth.run net in
  let lg = Techmap.Mapper.run synth in
  float_of_int lg.Techmap.Lutgraph.max_level *. level_delay

let unit_delay ?cache:cs g uid =
  let cs = match cs with Some cs -> cs | None -> Cache.Control.session () in
  let key = signature g uid in
  match Mutex.protect cache_mutex (fun () -> Hashtbl.find_opt cache key) with
  | Some d -> d
  | None ->
    (* second level: the session's persistent artifact cache, so
       characterisation harness runs survive across processes, --jobs
       domains and daemon requests *)
    let d = Cache.Session.memo cs ~kind:"unitdelay" ~key (fun () -> characterize g uid) in
    Mutex.protect cache_mutex (fun () -> Hashtbl.replace cache key d);
    d

let build ?cache g =
  let pairs = ref [] in
  let add src dst d = pairs := { Model.p_src = src; p_dst = dst; p_delay = d } :: !pairs in
  G.iter_units g (fun n ->
      let uid = n.G.uid in
      let d = unit_delay ?cache g uid in
      let ins = Array.to_list n.G.ins |> List.filter_map (fun c -> c) in
      let outs = Array.to_list n.G.outs |> List.filter_map (fun c -> c) in
      let sequential = K.latency n.G.kind > 0 || K.is_memory n.G.kind in
      (* forward: every input to every output at the unit's full delay *)
      List.iter
        (fun ci ->
          List.iter
            (fun co ->
              if sequential then begin
                add (Model.T_chan_fwd ci) Model.T_reg d;
                add Model.T_reg (Model.T_chan_fwd co) d
              end
              else add (Model.T_chan_fwd ci) (Model.T_chan_fwd co) d)
            outs)
        ins;
      (* backward (ready) direction *)
      List.iter
        (fun co ->
          List.iter
            (fun ci ->
              if sequential then begin
                add (Model.T_chan_bwd co) Model.T_reg d;
                add Model.T_reg (Model.T_chan_bwd ci) d
              end
              else add (Model.T_chan_bwd co) (Model.T_chan_bwd ci) d)
            ins)
        outs;
      (* handshake interaction inside the unit: one input's valid gates
         another input's ready (the implicit join) *)
      List.iter
        (fun ci ->
          List.iter
            (fun cj -> if ci <> cj then add (Model.T_chan_fwd ci) (Model.T_chan_bwd cj) d)
            ins)
        ins;
      (* path endpoints at the circuit boundary *)
      match n.G.kind with
      | K.Entry | K.Source ->
        List.iter
          (fun co ->
            add Model.T_reg (Model.T_chan_fwd co) d;
            add (Model.T_chan_bwd co) Model.T_reg d)
          outs
      | K.Exit | K.Sink ->
        List.iter
          (fun ci ->
            add (Model.T_chan_fwd ci) Model.T_reg d;
            add Model.T_reg (Model.T_chan_bwd ci) d)
          ins
      | _ -> ());
  {
    Model.pairs = !pairs;
    penalty = Array.make (G.n_channels g) 0.;
    fixed_reg_to_reg = 0.;
    delay_nodes = 0;
    fake_nodes = 0;
  }
