(** The mapping-agnostic baseline timing model (the "Prev." flow of the
    paper's Table I, i.e., Dynamatic's FPL'22 model).

    Each dataflow unit is characterised {e in isolation}: it is placed
    between opaque buffers (so its logic sits between registers), run
    through the same synthesis + LUT mapping as the full circuit, and its
    level count is taken as its delay (levels × 0.7 ns). The full-circuit
    timing model then assumes that every path through a unit costs the
    unit's whole characterised delay — ignoring all cross-unit logic
    simplification, which is precisely the conservatism the paper
    attacks. All penalties are zero (Eq. 1 objective). *)

val unit_delay :
  ?cache:Cache.Session.t -> Dataflow.Graph.t -> Dataflow.Graph.unit_id -> float
(** Characterised delay of one unit (cached by kind and width
    signature, first in a process-wide table, then in the session's
    artifact cache — default {!Cache.Control.session}). *)

val build : ?cache:Cache.Session.t -> Dataflow.Graph.t -> Model.t
