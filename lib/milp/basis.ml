exception Singular

(* One product-form factor: the inverse gains a factor E that is the
   identity except in column [e_row], where the diagonal is [1/d_r] and
   the off-diagonals are [-d_i/d_r] (d the FTRANed column being
   absorbed). We store d's nonzeros directly and fold the division into
   application. Both the factorisation itself and the rank-one basis
   updates use the same representation. *)
type eta = {
  e_row : int;
  e_idx : int array;  (* rows i <> e_row with d_i <> 0 *)
  e_v : float array;  (* the d_i *)
  e_pivinv : float;   (* 1 / d_r *)
}

type t = {
  m : int;
  base : eta array;    (* factorisation, applied in order 0 .. m-1 *)
  pos2row : int array; (* pivot row assigned to basis position k *)
  mutable etas : eta array; (* rank-one updates since factorisation *)
  mutable n_etas : int;
}

let pivot_tol = 1e-11
let drop_tol = 1e-12

(* threshold partial pivoting: the structurally preferred row is kept
   whenever its magnitude is within this factor of the best live row *)
let stability_ratio = 0.01

let apply_eta e y =
  let yr = y.(e.e_row) in
  if yr <> 0. then begin
    let s = yr *. e.e_pivinv in
    y.(e.e_row) <- s;
    for j = 0 to Array.length e.e_idx - 1 do
      y.(e.e_idx.(j)) <- y.(e.e_idx.(j)) -. (e.e_v.(j) *. s)
    done
  end

let apply_eta_t e y =
  let acc = ref y.(e.e_row) in
  for j = 0 to Array.length e.e_idx - 1 do
    acc := !acc -. (e.e_v.(j) *. y.(e.e_idx.(j)))
  done;
  y.(e.e_row) <- !acc *. e.e_pivinv

let eta_of_dense ~row d m =
  let count = ref 0 in
  for i = 0 to m - 1 do
    if i <> row && abs_float d.(i) > drop_tol then incr count
  done;
  let e_idx = Array.make !count 0 and e_v = Array.make !count 0. in
  let k = ref 0 in
  for i = 0 to m - 1 do
    if i <> row && abs_float d.(i) > drop_tol then begin
      e_idx.(!k) <- i;
      e_v.(!k) <- d.(i);
      incr k
    end
  done;
  { e_row = row; e_idx; e_v; e_pivinv = 1. /. d.(row) }

(* Pivot order: peel column singletons (their elimination touches no
   other column) and row singletons (their multipliers touch no other
   row), which permutes the bulk of a slack-heavy basis to triangular
   form with zero fill; whatever remains — the bump — is factorised in
   index order with threshold partial pivoting. Returns (position,
   structural pivot row or -1) pairs. *)
let pivot_order m (cols : Sparse.t array) =
  let row2cols = Array.make m [] in
  let colcnt = Array.make m 0 and rowcnt = Array.make m 0 in
  Array.iteri
    (fun k c ->
      colcnt.(k) <- Sparse.nnz c;
      Sparse.iter
        (fun i _ ->
          row2cols.(i) <- k :: row2cols.(i);
          rowcnt.(i) <- rowcnt.(i) + 1)
        c)
    cols;
  let livecol = Array.make m true and liverow = Array.make m true in
  let col_q = Queue.create () and row_q = Queue.create () in
  for k = 0 to m - 1 do
    if colcnt.(k) = 1 then Queue.push k col_q
  done;
  for i = 0 to m - 1 do
    if rowcnt.(i) = 1 then Queue.push i row_q
  done;
  let order = Array.make m (0, -1) in
  let n = ref 0 in
  let emit k r =
    order.(!n) <- (k, r);
    incr n;
    livecol.(k) <- false;
    liverow.(r) <- false;
    Sparse.iter
      (fun i _ ->
        if liverow.(i) then begin
          rowcnt.(i) <- rowcnt.(i) - 1;
          if rowcnt.(i) = 1 then Queue.push i row_q
        end)
      cols.(k);
    List.iter
      (fun j ->
        if livecol.(j) then begin
          colcnt.(j) <- colcnt.(j) - 1;
          if colcnt.(j) = 1 then Queue.push j col_q
        end)
      row2cols.(r)
  in
  let progress = ref true in
  while !progress do
    progress := false;
    while not (Queue.is_empty col_q) do
      let k = Queue.pop col_q in
      if livecol.(k) && colcnt.(k) = 1 then begin
        let r = ref (-1) in
        Sparse.iter (fun i _ -> if liverow.(i) && !r < 0 then r := i) cols.(k);
        if !r >= 0 then begin
          emit k !r;
          progress := true
        end
      end
    done;
    while not (Queue.is_empty row_q) do
      let r = Queue.pop row_q in
      if liverow.(r) && rowcnt.(r) = 1 then begin
        let k = ref (-1) in
        List.iter (fun j -> if livecol.(j) && !k < 0 then k := j) row2cols.(r);
        if !k >= 0 then begin
          emit !k r;
          progress := true
        end
      end
    done
  done;
  for k = 0 to m - 1 do
    if livecol.(k) then begin
      order.(!n) <- (k, -1);
      incr n
    end
  done;
  order

let factorize ~m ~col basic =
  let cols = Array.map col (Array.sub basic 0 m) in
  let order = pivot_order m cols in
  let base = Array.make m { e_row = 0; e_idx = [||]; e_v = [||]; e_pivinv = 1. } in
  let pos2row = Array.make m (-1) in
  let liverow = Array.make m true in
  let d = Array.make m 0. in
  for t_i = 0 to m - 1 do
    let k, r_hint = order.(t_i) in
    Array.fill d 0 m 0.;
    Sparse.iter (fun i c -> d.(i) <- c) cols.(k);
    for p = 0 to t_i - 1 do
      apply_eta base.(p) d
    done;
    (* best live row, then prefer the structural row when stable *)
    let best = ref (-1) and bestv = ref 0. in
    for i = 0 to m - 1 do
      if liverow.(i) && abs_float d.(i) > !bestv then begin
        best := i;
        bestv := abs_float d.(i)
      end
    done;
    if !best < 0 || !bestv < pivot_tol then raise Singular;
    let r =
      if r_hint >= 0 && abs_float d.(r_hint) >= stability_ratio *. !bestv then r_hint
      else !best
    in
    base.(t_i) <- eta_of_dense ~row:r d m;
    pos2row.(k) <- r;
    liverow.(r) <- false
  done;
  { m; base; pos2row; etas = [||]; n_etas = 0 }

let n_etas t = t.n_etas

(* B z = y: z.(k) = (E_m .. E_1 y).(pos2row k) *)
let lu_solve t y =
  let m = t.m in
  for p = 0 to m - 1 do
    apply_eta t.base.(p) y
  done;
  let z = Array.make m 0. in
  for k = 0 to m - 1 do
    z.(k) <- y.(t.pos2row.(k))
  done;
  Array.blit z 0 y 0 m

(* B^T x = y: x = E_1^T .. E_m^T P^T y with (P^T y).(pos2row k) = y.(k) *)
let lu_solve_t t y =
  let m = t.m in
  let z = Array.make m 0. in
  for k = 0 to m - 1 do
    z.(t.pos2row.(k)) <- y.(k)
  done;
  for p = m - 1 downto 0 do
    apply_eta_t t.base.(p) z
  done;
  Array.blit z 0 y 0 m

let ftran t y =
  lu_solve t y;
  for k = 0 to t.n_etas - 1 do
    apply_eta t.etas.(k) y
  done

let btran t y =
  for k = t.n_etas - 1 downto 0 do
    apply_eta_t t.etas.(k) y
  done;
  lu_solve_t t y

let update t ~row d =
  if abs_float d.(row) < 1e-9 then raise Singular;
  let e = eta_of_dense ~row d t.m in
  if t.n_etas = Array.length t.etas then begin
    let grown = Array.make (max 8 (2 * t.n_etas)) e in
    Array.blit t.etas 0 grown 0 t.n_etas;
    t.etas <- grown
  end;
  t.etas.(t.n_etas) <- e;
  t.n_etas <- t.n_etas + 1
