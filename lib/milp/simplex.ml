type result =
  | Optimal of { obj : float; x : float array }
  | Infeasible
  | Unbounded

(* nonbasic/basic state per variable, packed into a byte for the warm
   token *)
let st_basic = 0
let st_lower = 1
let st_upper = 2
let st_free = 3 (* nonbasic free variable, parked at 0 *)

type basis = { w_nv : int; w_m : int; w_basic : int array; w_stat : Bytes.t }

let ftol = 1e-7 (* primal feasibility tolerance *)
let dtol = 1e-7 (* reduced-cost (dual) tolerance *)
let ztol = 1e-9 (* pivot-element threshold *)
let refactor_every = 64
let bland_threshold = 20_000
let iteration_limit = 500_000

type state = {
  nv : int;            (* structural variables *)
  m : int;             (* rows; slack j of row i is variable nv + i *)
  ntot : int;
  cols : Sparse.t array;  (* structural columns only *)
  lob : float array;   (* ntot *)
  upb : float array;   (* ntot *)
  b : float array;     (* m *)
  cost : float array;  (* ntot, phase-2 minimisation costs *)
  stat : int array;    (* ntot *)
  xval : float array;  (* ntot *)
  basic : int array;   (* m *)
  mutable base : Basis.t;
  mutable pivots : int;
  mutable refactors : int;
}

let col s j = if j < s.nv then s.cols.(j) else Sparse.of_list [ (j - s.nv, 1.) ]

(* y^T a_j without materialising slack columns *)
let col_dot s j y = if j < s.nv then Sparse.dot s.cols.(j) y else y.(j - s.nv)

(* scatter column j into the dense work vector *)
let col_scatter s j d =
  Array.fill d 0 s.m 0.;
  if j < s.nv then Sparse.iter (fun i c -> d.(i) <- c) s.cols.(j)
  else d.(j - s.nv) <- 1.

let factorize s =
  s.base <- Basis.factorize ~m:s.m ~col:(col s) s.basic

let refactorize s =
  factorize s;
  s.refactors <- s.refactors + 1

(* x_B = B^-1 (b - N x_N); also snaps nonbasic values onto their bound
   (bounds can have moved since the warm basis was recorded) *)
let compute_basics s =
  let rhs = Array.copy s.b in
  for j = 0 to s.ntot - 1 do
    if s.stat.(j) <> st_basic then begin
      let v =
        if s.stat.(j) = st_lower then s.lob.(j)
        else if s.stat.(j) = st_upper then s.upb.(j)
        else 0.
      in
      s.xval.(j) <- v;
      if v <> 0. then
        if j < s.nv then Sparse.axpy (-.v) s.cols.(j) rhs
        else rhs.(j - s.nv) <- rhs.(j - s.nv) -. v
    end
  done;
  Basis.ftran s.base rhs;
  for i = 0 to s.m - 1 do
    s.xval.(s.basic.(i)) <- rhs.(i)
  done

(* a nonbasic status consistent with the (possibly changed) bounds *)
let default_stat lo hi =
  if lo > neg_infinity then st_lower else if hi < infinity then st_upper else st_free

let cold_basis s =
  for j = 0 to s.ntot - 1 do
    s.stat.(j) <- default_stat s.lob.(j) s.upb.(j)
  done;
  for i = 0 to s.m - 1 do
    s.basic.(i) <- s.nv + i;
    s.stat.(s.nv + i) <- st_basic
  done

let load_warm s (w : basis) =
  if w.w_nv <> s.nv || w.w_m <> s.m then false
  else begin
    let ok = ref true in
    let in_basis = Array.make s.ntot false in
    Array.iter
      (fun j -> if j < 0 || j >= s.ntot || in_basis.(j) then ok := false else in_basis.(j) <- true)
      w.w_basic;
    if !ok then begin
      Array.blit w.w_basic 0 s.basic 0 s.m;
      for j = 0 to s.ntot - 1 do
        if in_basis.(j) then s.stat.(j) <- st_basic
        else begin
          let st = Char.code (Bytes.get w.w_stat j) in
          (* sanitize against bounds that moved since the token was cut *)
          s.stat.(j) <-
            (if st = st_lower && s.lob.(j) > neg_infinity then st_lower
             else if st = st_upper && s.upb.(j) < infinity then st_upper
             else default_stat s.lob.(j) s.upb.(j))
        end
      done
    end;
    !ok
  end

let snapshot s =
  let w_stat = Bytes.create s.ntot in
  for j = 0 to s.ntot - 1 do
    Bytes.set w_stat j (Char.chr s.stat.(j))
  done;
  { w_nv = s.nv; w_m = s.m; w_basic = Array.sub s.basic 0 s.m; w_stat }

(* ---- one simplex phase (shared machinery) ----------------------- *)

(* Entering candidates use the uniform reduced cost r_j = c_j - y^T a_j
   (phase 1: c_j = 0 and y = B^-T sigma, sigma the infeasibility
   gradient over basic rows). A nonbasic-at-lower variable improves when
   r_j < -dtol (moves up), at-upper when r_j > dtol (moves down), free
   in either case. *)

type step =
  | S_flip of float
  | S_pivot of { t : float; row : int; leave_stat : int }
  | S_unbounded

let ratio_test s ~phase1 ~j ~dir ~d =
  (* limit from the entering variable's own opposite bound (a bound
     flip leaves the basis unchanged) *)
  let t_flip =
    if dir > 0. then if s.upb.(j) < infinity then s.upb.(j) -. s.xval.(j) else infinity
    else if s.lob.(j) > neg_infinity then s.xval.(j) -. s.lob.(j)
    else infinity
  in
  let t_best = ref infinity and row_best = ref (-1) in
  let d_best = ref 0. and leave_best = ref st_lower in
  let bland = s.pivots > bland_threshold in
  for i = 0 to s.m - 1 do
    let di = d.(i) in
    if abs_float di > ztol then begin
      let rate = -.dir *. di in
      let bv = s.basic.(i) in
      let v = s.xval.(bv) and lo = s.lob.(bv) and hi = s.upb.(bv) in
      let consider t leave_stat =
        let t = if t < 0. then 0. else t in
        let replace =
          t < !t_best -. 1e-9
          || t < !t_best +. 1e-9
             && !row_best >= 0
             && (if bland then bv < s.basic.(!row_best) else abs_float di > abs_float !d_best)
        in
        if !row_best < 0 || replace then begin
          t_best := t;
          row_best := i;
          d_best := di;
          leave_best := leave_stat
        end
      in
      if phase1 && v < lo -. ftol then begin
        (* infeasible below: blocks where the gradient breaks, at lo *)
        if rate > 0. then consider ((lo -. v) /. rate) st_lower
      end
      else if phase1 && v > hi +. ftol then begin
        if rate < 0. then consider ((v -. hi) /. -.rate) st_upper
      end
      else if rate > 0. then begin
        if hi < infinity then consider ((hi -. v) /. rate) st_upper
      end
      else if lo > neg_infinity then consider ((v -. lo) /. -.rate) st_lower
    end
  done;
  if !row_best = -1 && t_flip = infinity then S_unbounded
  else if t_flip <= !t_best +. 1e-12 && t_flip < infinity then S_flip t_flip
  else S_pivot { t = !t_best; row = !row_best; leave_stat = !leave_best }

let apply_rates s ~dir ~d ~t =
  if t <> 0. then
    for i = 0 to s.m - 1 do
      let bv = s.basic.(i) in
      s.xval.(bv) <- s.xval.(bv) -. (dir *. d.(i) *. t)
    done

(* Returns [`Progress] after a flip or pivot, [`Optimal] when no
   improving column exists, [`Unbounded] on an unbounded improving ray
   (phase 2 only; phase 1's objective is bounded below by 0). *)
let iterate s ~phase1 ~y ~d =
  let bland = s.pivots > bland_threshold in
  (* entering column *)
  let enter = ref (-1) and enter_dir = ref 1. and best_score = ref dtol in
  (try
     for j = 0 to s.ntot - 1 do
       let st = s.stat.(j) in
       if st <> st_basic && s.lob.(j) < s.upb.(j) then begin
         let r = (if phase1 then 0. else s.cost.(j)) -. col_dot s j y in
         let score, dir =
           if st = st_lower then (-.r, 1.)
           else if st = st_upper then (r, -1.)
           else (abs_float r, if r < 0. then 1. else -1.)
         in
         if score > !best_score then begin
           best_score := score;
           enter := j;
           enter_dir := dir;
           if bland then raise Exit
         end
       end
     done
   with Exit -> ());
  if !enter = -1 then `Optimal
  else begin
    let j = !enter and dir = !enter_dir in
    col_scatter s j d;
    Basis.ftran s.base d;
    s.pivots <- s.pivots + 1;
    match ratio_test s ~phase1 ~j ~dir ~d with
    | S_unbounded -> `Unbounded
    | S_flip t ->
      apply_rates s ~dir ~d ~t;
      s.xval.(j) <- s.xval.(j) +. (dir *. t);
      s.stat.(j) <- (if s.stat.(j) = st_lower then st_upper else st_lower);
      `Progress
    | S_pivot { t; row; leave_stat } -> (
      apply_rates s ~dir ~d ~t;
      s.xval.(j) <- s.xval.(j) +. (dir *. t);
      let leaving = s.basic.(row) in
      s.stat.(leaving) <- leave_stat;
      (* snap the leaving variable exactly onto its blocking bound *)
      s.xval.(leaving) <-
        (if leave_stat = st_lower then s.lob.(leaving) else s.upb.(leaving));
      s.basic.(row) <- j;
      s.stat.(j) <- st_basic;
      match Basis.update s.base ~row d with
      | () ->
        if Basis.n_etas s.base >= refactor_every then begin
          refactorize s;
          compute_basics s
        end;
        `Progress
      | exception Basis.Singular ->
        (* numerically degenerate update: rebuild the factors for the
           new basis from scratch instead *)
        refactorize s;
        compute_basics s;
        `Progress)
  end

(* infeasibility gradient over basic rows; None when primal feasible *)
let sigma s =
  let g = Array.make s.m 0. in
  let any = ref false in
  for i = 0 to s.m - 1 do
    let bv = s.basic.(i) in
    let v = s.xval.(bv) in
    if v < s.lob.(bv) -. ftol then begin
      g.(i) <- -1.;
      any := true
    end
    else if v > s.upb.(bv) +. ftol then begin
      g.(i) <- 1.;
      any := true
    end
  done;
  if !any then Some g else None

let max_infeasibility s =
  let worst = ref 0. in
  for i = 0 to s.m - 1 do
    let bv = s.basic.(i) in
    let v = s.xval.(bv) in
    if v < s.lob.(bv) then worst := Float.max !worst (s.lob.(bv) -. v);
    if v > s.upb.(bv) then worst := Float.max !worst (v -. s.upb.(bv))
  done;
  !worst

let run_phase1 s =
  let d = Array.make s.m 0. in
  let iters = ref 0 in
  let rec loop () =
    incr iters;
    if !iters > iteration_limit then failwith "Simplex: phase 1 iteration limit";
    match sigma s with
    | None -> `Feasible
    | Some g ->
      Basis.btran s.base g;
      (match iterate s ~phase1:true ~y:g ~d with
      | `Progress -> loop ()
      | `Unbounded -> failwith "Simplex: phase 1 unbounded (impossible)"
      | `Optimal ->
        (* no improving column while still infeasible: refresh the
           factors once to rule out numerical drift, then decide *)
        refactorize s;
        compute_basics s;
        if max_infeasibility s > 1e-6 then `Infeasible
        else `Feasible)
  in
  loop ()

let run_phase2 s =
  let d = Array.make s.m 0. in
  let cb = Array.make s.m 0. in
  let iters = ref 0 in
  let rec loop () =
    incr iters;
    if !iters > iteration_limit then failwith "Simplex: phase 2 iteration limit";
    (* a pivot can push a basic variable out of bounds numerically; if
       so, repair through phase 1 (cheap: the basis is near-feasible) *)
    if max_infeasibility s > 10. *. ftol then
      match run_phase1 s with `Infeasible -> `Infeasible | `Feasible -> loop ()
    else begin
      for i = 0 to s.m - 1 do
        cb.(i) <- s.cost.(s.basic.(i))
      done;
      Basis.btran s.base cb;
      match iterate s ~phase1:false ~y:cb ~d with
      | `Progress -> loop ()
      | `Unbounded -> `Unbounded
      | `Optimal -> `Optimal
    end
  in
  loop ()

(* ---- driver ------------------------------------------------------ *)

(* build the bounded-variable internal form; None when some variable box
   is empty (trivially infeasible) *)
let make_state lp =
  let nv = Lp.n_vars lp in
  let m = Lp.n_constrs lp in
  let ntot = nv + m in
  let lob = Array.make ntot 0. and upb = Array.make ntot 0. in
  let empty_box = ref false in
  for v = 0 to nv - 1 do
    let lo, hi = Lp.bounds lp v in
    lob.(v) <- lo;
    upb.(v) <- hi;
    if lo > hi then empty_box := true
  done;
  if !empty_box then None
  else begin
    let b = Array.make m 0. in
    (* slack of row i is variable nv+i with sign fixed by the relation
       (lob/upb start at 0, so Eq slacks are already pinned) *)
    for i = 0 to m - 1 do
      let _, rel, rhs = Lp.constr lp i in
      b.(i) <- rhs;
      let sj = nv + i in
      (match rel with
      | Lp.Le -> upb.(sj) <- infinity
      | Lp.Ge -> lob.(sj) <- neg_infinity
      | Lp.Eq -> ())
    done;
    let maximize, obj = Lp.objective lp in
    let cost = Array.make ntot 0. in
    let sign = if maximize then -1. else 1. in
    List.iter (fun (c, v) -> cost.(v) <- cost.(v) +. (sign *. c)) obj;
    Some
      {
        nv;
        m;
        ntot;
        cols = Lp.col_major lp;
        lob;
        upb;
        b;
        cost;
        stat = Array.make ntot st_lower;
        xval = Array.make ntot 0.;
        basic = Array.make m 0;
        base = Basis.factorize ~m:0 ~col:(fun _ -> Sparse.empty) [||];
        pivots = 0;
        refactors = 0;
      }
  end

let solve_basis ?warm lp =
  match make_state lp with
  | None -> (Infeasible, None)
  | Some s ->
    let _, obj = Lp.objective lp in
    let warm_loaded = match warm with Some w -> load_warm s w | None -> false in
    if warm_loaded then begin
      match factorize s with
      | () -> ()
      | exception Basis.Singular ->
        cold_basis s;
        factorize s
    end
    else begin
      cold_basis s;
      factorize s
    end;
    compute_basics s;
    let result =
      match run_phase1 s with
      | `Infeasible -> Infeasible
      | `Feasible -> (
        match run_phase2 s with
        | `Infeasible -> Infeasible
        | `Unbounded -> Unbounded
        | `Optimal ->
          let x = Array.sub s.xval 0 s.nv in
          Optimal { obj = Lp.eval_expr obj x; x })
    in
    Support.Trace.add "milp.simplex.pivots" s.pivots;
    Support.Trace.add "milp.simplex.refactors" s.refactors;
    (result, Some (snapshot s))

let solve ?warm lp = fst (solve_basis ?warm lp)

(* Reduced costs (internal minimisation sense) of the structural
   variables at the given basis. At an optimal basis, [abs rc.(j)]
   lower-bounds the objective degradation — in whichever sense the LP
   optimises — per unit a nonbasic [j] moves off its bound; branch &
   bound uses this for reduced-cost bound fixing. None when the token
   does not fit the LP or its basis matrix is singular. *)
let reduced_costs lp (w : basis) =
  match make_state lp with
  | None -> None
  | Some s ->
    if not (load_warm s w) then None
    else begin
      match factorize s with
      | exception Basis.Singular -> None
      | () ->
        let cb = Array.make s.m 0. in
        for i = 0 to s.m - 1 do
          cb.(i) <- s.cost.(s.basic.(i))
        done;
        Basis.btran s.base cb;
        Some (Array.init s.nv (fun j -> s.cost.(j) -. col_dot s j cb))
    end
