(** Linear / mixed-integer model builder.

    This is the modelling layer that replaces Gurobi in the paper's flow.
    Variables have bounds and a kind; constraints are linear with
    [<=], [>=] or [=]; the objective is a linear expression. *)

type var_kind = Continuous | Binary | Integer

type relation = Le | Ge | Eq

type t

val create : string -> t
val name : t -> string

val add_var : t -> ?lo:float -> ?hi:float -> ?kind:var_kind -> string -> int
(** Defaults: [lo = 0.], [hi = infinity], [kind = Continuous]. Binary
    variables are clamped to [\[0, 1\]]. Returns the variable index. *)

val n_vars : t -> int
val var_name : t -> int -> string
val var_kind : t -> int -> var_kind
val bounds : t -> int -> float * float
val set_bounds : t -> int -> lo:float -> hi:float -> unit

val add_constr : t -> ?name:string -> (float * int) list -> relation -> float -> unit
(** [add_constr t terms rel rhs] adds [sum terms rel rhs]; terms are
    (coefficient, variable) pairs, repeated variables are summed. *)

val n_constrs : t -> int
val constr : t -> int -> (float * int) list * relation * float
val constr_name : t -> int -> string
(** The name given at {!add_constr} ([""] if none). *)

val col_major : t -> Sparse.t array
(** Column-major sparse view of the constraint matrix (one {!Sparse.t}
    of (row, coefficient) entries per variable), cached on the model and
    rebuilt only when rows or variables were added since the last call.
    Bound and objective edits — the B&B case — reuse the cached view, so
    the per-node cost of the revised simplex stays proportional to the
    work it does rather than to model size. *)

val set_objective : t -> maximize:bool -> (float * int) list -> unit
val objective : t -> bool * (float * int) list

val eval_expr : (float * int) list -> float array -> float

val feasible : t -> ?eps:float -> float array -> bool
(** Whether an assignment satisfies all constraints and bounds. *)

(** A certificate check failure: which row, bound or integrality
    requirement an assignment violates, with the offending values. Used
    by the lint layer to audit solver output instead of trusting it. *)
type violation =
  | V_constr of { row : int; name : string; lhs : float; rel : relation; rhs : float }
  | V_bound of { var : int; value : float; lo : float; hi : float }
  | V_integrality of { var : int; value : float }

val violations : t -> ?eps:float -> float array -> violation list
(** Every bound, integrality and constraint-row violation of an
    assignment, in that order, each reported once. Unlike {!feasible}
    this also checks integrality of [Binary]/[Integer] variables. Raises
    [Invalid_argument] if the assignment length differs from {!n_vars}. *)

val pp_violation : t -> Format.formatter -> violation -> unit

val pp_stats : Format.formatter -> t -> unit
