(** Branch & bound over the simplex relaxation: the MILP solver proper.

    Best-first search on the relaxation bound, branching on the most
    fractional integer variable. Child nodes warm-start the revised
    simplex from their parent's final basis (only bounds differ between
    parent and child, so {!Simplex}'s phase 1 typically needs a handful
    of pivots rather than a cold two-phase run). An optional LP-free
    certified bound fathoms subtrees without solving their relaxations
    and stops the search as soon as the incumbent provably matches the
    certified optimum. Root reduced-cost fixing pins integer variables
    whose reduced cost exceeds the primal-dual gap, and two primal
    heuristics (a warm-started root dive and per-node simple rounding)
    find strong incumbents long before best-first order would reach an
    integral vertex.

    Emits [milp.bb.nodes], [milp.lp.relaxations],
    [milp.bb.fathomed_by_cert] and [milp.bb.rc_fixed]
    {!Support.Trace} counters. *)

type result =
  | Optimal of { obj : float; x : float array; proved_optimal : bool; nodes : int }
  | Infeasible
  | Unbounded
  | Exhausted
      (** The node or time budget ran out before any integer-feasible
          point was found. Distinct from [Infeasible]: the model may
          well have solutions, the search just never reached one.
          (Budget exhaustion {e with} an incumbent still returns
          [Optimal] with [proved_optimal = false].) *)

val solve :
  ?node_limit:int ->
  ?eps:float ->
  ?time_limit:float ->
  ?initial:float array ->
  ?warm:Simplex.basis ->
  ?cert_bound:((int * float * float) list -> float) ->
  Lp.t ->
  result
(** Defaults: [node_limit = 50_000], integrality tolerance [eps = 1e-6],
    [time_limit = 120.] seconds (wall clock; on expiry the incumbent is
    returned with [proved_optimal = false], mirroring a solver time
    limit). [initial], when feasible and integral, seeds the incumbent
    so the search starts with a pruning bound. [warm] seeds the root
    relaxation's basis (e.g. from the previous flow iteration's solve of
    the structurally identical model). [cert_bound fixes] must return a
    {e sound} bound on the objective of any feasible point inside the
    node box described by [fixes] (an upper bound when maximising, lower
    when minimising): nodes whose certified bound cannot beat the
    incumbent are fathomed without an LP solve, and the search stops
    early once the incumbent reaches the certified root bound. The
    returned incumbent has its integer variables rounded exactly, its
    objective re-evaluated at the rounded point, and falls back to the
    unrounded (LP-feasible) point if rounding broke a constraint. *)
