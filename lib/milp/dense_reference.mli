(** Dense two-phase tableau simplex, retained as a testing oracle.

    This is the solver {!Simplex} replaced. It is kept (with one bug
    fixed: a finite upper bound on a free variable now constrains the
    split difference [cp - cn <= hi] instead of only the positive
    column, so [hi < 0] is no longer spuriously infeasible) solely so
    the differential test suite can cross-check the revised simplex on
    randomly generated models. Nothing on the production path calls it
    and it emits no trace counters. *)

type result = Simplex.result =
  | Optimal of { obj : float; x : float array }
  | Infeasible
  | Unbounded

val solve : Lp.t -> result
(** Solves the continuous relaxation, honouring variable bounds via
    shifts, free-variable splitting and explicit upper-bound rows. *)
