(** Factorised simplex basis: sparse product-form factorisation with
    singleton triangularisation, updated by further eta vectors between
    refactorisations.

    The basis matrix [B] is the [m x m] submatrix of the (column-sparse)
    constraint matrix selected by the basic variables. {!factorize}
    first peels column and row singletons — which permutes the bulk of a
    slack-heavy LP basis to triangular form with zero fill — and
    factorises the remaining bump with threshold partial pivoting,
    storing everything as sparse eta vectors; each subsequent simplex
    pivot appends one more eta instead of refactorising, so an
    FTRAN/BTRAN costs one cheap pass per eta. The solver refactorises
    periodically (and on numerical-stability failures), which also
    squashes the eta file.

    The buffering MILPs have bases that are overwhelmingly slack and
    network columns (a thousand rows with a handful of nonzeros each),
    so factorisation and solves run in roughly O(nnz) — a dense LU here
    costs O(m^3) per refactorisation and was the measured bottleneck of
    branch & bound on the larger kernels. *)

type t

exception Singular
(** The selected basic columns are linearly dependent (or numerically
    indistinguishable from it). *)

val factorize : m:int -> col:(int -> Sparse.t) -> int array -> t
(** [factorize ~m ~col basic] LU-factorises the basis matrix whose
    [k]-th column is [col basic.(k)]. Raises {!Singular}. *)

val ftran : t -> float array -> unit
(** [ftran b y] solves [B x = y] in place ([y] becomes [x]). *)

val btran : t -> float array -> unit
(** [btran b y] solves [B^T x = y] in place. *)

val update : t -> row:int -> float array -> unit
(** [update b ~row d] replaces basic position [row] given [d = B^-1 a_q]
    (the FTRANed entering column, as returned by {!ftran}) by pushing a
    product-form eta. Raises {!Singular} if the pivot element
    [d.(row)] is numerically zero. *)

val n_etas : t -> int
(** Etas accumulated since the last {!factorize} (refactorisation
    trigger for the caller). *)
