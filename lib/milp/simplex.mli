(** Revised simplex on sparse columns for the LP relaxation.

    Bounded-variable primal simplex working on a factorised basis
    ({!Basis}: sparse product-form factors plus eta updates with
    periodic refactorisation) over the sparse column-major constraint matrix
    ({!Lp.col_major}). Variable bounds — including free variables and
    free variables with one finite bound — are handled implicitly as
    nonbasic-at-bound states, so no bound ever becomes a tableau row
    and no free variable is split. Phase 1 minimises the sum of primal
    infeasibilities from any starting basis (no artificial columns),
    which is what makes warm starts work: a basis inherited from a
    parent B&B node or a previous solve re-enters here and typically
    needs a handful of pivots instead of a full two-phase run.

    Pricing is Dantzig with a Bland's-rule fallback against cycling.
    Emits [milp.simplex.pivots] and [milp.simplex.refactors]
    {!Support.Trace} counters.

    The previous dense two-phase tableau is retained as
    {!Dense_reference} and cross-checked against this solver by the
    differential test suite. *)

type result =
  | Optimal of { obj : float; x : float array }
  | Infeasible
  | Unbounded

type basis
(** Opaque warm-start token: the final basis and nonbasic statuses of a
    previous solve of a {e structurally identical} model (same variable
    and constraint counts; bounds may differ — that is the B&B case).
    A token that does not match the model, or that selects a singular
    basis, is ignored and the solve starts cold. *)

val solve : ?warm:basis -> Lp.t -> result
(** Solves the continuous relaxation of the model (integrality is
    handled by {!Bb}). Variable bounds are honoured natively. *)

val solve_basis : ?warm:basis -> Lp.t -> result * basis option
(** Like {!solve}, additionally returning the final basis for
    warm-starting subsequent solves ([None] when the solve never built
    a factorisation, e.g. an empty variable box). *)

val reduced_costs : Lp.t -> basis -> float array option
(** Reduced costs of the structural variables at the given basis, in
    the internal minimisation sense: at an optimal basis,
    [abs rc.(j)] lower-bounds the objective degradation — in whichever
    sense the LP optimises — per unit that a nonbasic [j] moves away
    from its bound. {!Bb} uses this for reduced-cost bound fixing of
    integer variables. [None] when the token does not fit the model or
    selects a singular basis. *)
