(** Sparse column vectors for the revised simplex.

    A column is an index/value pair of parallel arrays (duplicates
    merged, exact zeros dropped at construction). Columns are immutable
    once built; the solver shares them freely between the pricing loop
    and the basis factorisation. *)

type t = private { idx : int array; v : float array }

val empty : t
val of_list : (int * float) list -> t
(** Merges duplicate indices, drops zero coefficients, sorts by index. *)

val nnz : t -> int

val dot : t -> float array -> float
(** [dot c y] is the inner product of the column with a dense vector. *)

val iter : (int -> float -> unit) -> t -> unit

val axpy : float -> t -> float array -> unit
(** [axpy a c y] performs [y += a * c] into the dense vector [y]. *)
