type result =
  | Optimal of { obj : float; x : float array; proved_optimal : bool; nodes : int }
  | Infeasible
  | Unbounded
  | Exhausted

type node = {
  bound : float; (* min of parent LP bound and certified ceiling *)
  cert : float; (* certified ceiling of this node's box, sense-space *)
  fixes : (int * float * float) list;
  warm : Simplex.basis option; (* parent's final basis *)
}

(* max-heap on the relaxation bound (for maximisation; bounds are negated
   for minimisation so the heap order is uniform) *)
module Heap = struct
  type t = { mutable data : node array; mutable len : int }

  let create () =
    { data = Array.make 64 { bound = 0.; cert = 0.; fixes = []; warm = None }; len = 0 }

  let push h n =
    if h.len = Array.length h.data then begin
      let d = Array.make (2 * h.len) n in
      Array.blit h.data 0 d 0 h.len;
      h.data <- d
    end;
    h.data.(h.len) <- n;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && h.data.((!i - 1) / 2).bound < h.data.(!i).bound do
      let p = (!i - 1) / 2 in
      let tmp = h.data.(p) in
      h.data.(p) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.data.(0) in
      h.len <- h.len - 1;
      h.data.(0) <- h.data.(h.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let largest = ref !i in
        if l < h.len && h.data.(l).bound > h.data.(!largest).bound then largest := l;
        if r < h.len && h.data.(r).bound > h.data.(!largest).bound then largest := r;
        if !largest = !i then continue := false
        else begin
          let tmp = h.data.(!i) in
          h.data.(!i) <- h.data.(!largest);
          h.data.(!largest) <- tmp;
          i := !largest
        end
      done;
      Some top
    end
end

(* above this many queued nodes, stop attaching warm bases to children:
   a basis token is O(rows + vars) memory and a cold solve is merely
   slower, not wrong *)
let warm_heap_cap = 4096

(* MILP_BB_DEBUG=1 prints search progress (nodes, incumbent, best open
   bound) to stderr every 1000 nodes *)
let debug = Sys.getenv_opt "MILP_BB_DEBUG" <> None

let solve ?(node_limit = 50_000) ?(eps = 1e-6) ?(time_limit = 120.) ?initial ?warm
    ?cert_bound lp =
  Support.Trace.with_span ~cat:"milp" "milp:bb" @@ fun () ->
  let started = Unix.gettimeofday () in
  let maximize, obj_terms = Lp.objective lp in
  let sense = if maximize then 1. else -1. in
  let nv = Lp.n_vars lp in
  let int_vars =
    List.filter
      (fun v -> match Lp.var_kind lp v with Lp.Binary | Lp.Integer -> true | Lp.Continuous -> false)
      (List.init nv (fun i -> i))
  in
  let original_bounds = Array.init nv (fun v -> Lp.bounds lp v) in
  let restore () =
    Array.iteri (fun v (lo, hi) -> Lp.set_bounds lp v ~lo ~hi) original_bounds
  in
  (* reduced-cost bound fixing: once an incumbent is known, an integer
     variable nonbasic at a root-LP bound whose reduced cost exceeds the
     primal-dual gap cannot move off that bound in any improving
     solution, so every node's box pins it there. The incumbent itself
     is kept outside these boxes, so only the search is narrowed. *)
  let rc_fix : float option array = Array.make nv None in
  let rc_fixed = ref 0 in
  let apply_fixes fixes =
    restore ();
    (* a node's box is the intersection of all its fixes: the same
       variable can be branched more than once down a path (general
       integers with a range wider than one), and the newest fix sits at
       the head of the list — overwriting instead of intersecting would
       silently widen the box back *)
    List.iter
      (fun (v, lo, hi) ->
        let cur_lo, cur_hi = Lp.bounds lp v in
        Lp.set_bounds lp v ~lo:(max lo cur_lo) ~hi:(min hi cur_hi))
      fixes;
    Array.iteri
      (fun v fix ->
        match fix with
        | None -> ()
        | Some value ->
          let cur_lo, cur_hi = Lp.bounds lp v in
          Lp.set_bounds lp v ~lo:(Float.max cur_lo value) ~hi:(Float.min cur_hi value))
      rc_fix
  in
  let frac x = abs_float (x -. Float.round x) in
  let most_fractional x =
    List.fold_left
      (fun best v ->
        let f = frac x.(v) in
        if f > eps then match best with Some (_, bf) when bf >= f -> best | _ -> Some (v, f)
        else best)
      None int_vars
  in
  let incumbent =
    ref
      (match initial with
      | Some x0
        when Array.length x0 = nv
             && Lp.feasible lp x0
             && List.for_all (fun v -> abs_float (x0.(v) -. Float.round x0.(v)) <= eps) int_vars ->
        Some (Lp.eval_expr obj_terms x0, Array.copy x0)
      | _ -> None)
  in
  let nodes = ref 0 in
  let relaxations = ref 0 in
  let fathomed_by_cert = ref 0 in
  let heap = Heap.create () in
  let relax ?warm fixes =
    incr relaxations;
    apply_fixes fixes;
    Simplex.solve_basis ?warm lp
  in
  let better obj =
    match !incumbent with None -> true | Some (bo, _) -> sense *. obj > (sense *. bo) +. 1e-9
  in
  (* the certifier's structural bound: no completion of [fixes] can push
     sense * objective above [sense * cert_bound fixes]. Sound by
     construction (see Buffering.Formulation), so a node whose certified
     ceiling does not beat the incumbent is fathomed without ever
     touching the LP. *)
  let cert_ceiling fixes =
    match cert_bound with None -> infinity | Some f -> sense *. f fixes
  in
  let beaten_by_incumbent ceiling =
    match !incumbent with
    | Some (bo, _) -> ceiling <= (sense *. bo) +. 1e-9
    | None -> false
  in
  let root_ceiling = cert_ceiling [] in
  (* the certified global optimum is reached: every open node is beaten *)
  let cert_optimal () =
    match !incumbent with
    | Some (bo, _) -> root_ceiling < infinity && sense *. bo >= root_ceiling -. 1e-9
    | None -> false
  in
  let root, root_basis = relax ?warm [] in
  let result =
    match root with
    | Simplex.Infeasible -> Infeasible
    | Simplex.Unbounded -> Unbounded
    | Simplex.Optimal { obj; x } -> (
      let root_x = Array.copy x in
      let root_bound_s = sense *. obj in
      let rc =
        match root_basis with Some bs -> Simplex.reduced_costs lp bs | None -> None
      in
      let refresh_rc_fixes () =
        match (rc, !incumbent) with
        | Some rc, Some (bo, _) ->
          let gap = root_bound_s -. (sense *. bo) in
          List.iter
            (fun j ->
              if rc_fix.(j) = None then begin
                let lo, hi = original_bounds.(j) in
                if lo < hi && abs_float rc.(j) >= gap -. 1e-9 then
                  if abs_float (root_x.(j) -. lo) <= 1e-6 && rc.(j) > 0. then begin
                    rc_fix.(j) <- Some lo;
                    incr rc_fixed
                  end
                  else if abs_float (root_x.(j) -. hi) <= 1e-6 && rc.(j) < 0. then begin
                    rc_fix.(j) <- Some hi;
                    incr rc_fixed
                  end
              end)
            int_vars
        | _ -> ()
      in
      refresh_rc_fixes ();
      (* root diving heuristic: walk down from the root relaxation fixing
         the most fractional variable to its nearest integer and
         re-solving warm; if that side is infeasible (or no longer beats
         the incumbent), try the other rounding once before giving up.
         Each step is a handful of warm pivots, the dive is at most one
         LP per fractional variable, and the integral leaf it reaches is
         an LP solution — feasible by construction. Budget-limited
         searches depend on a strong early incumbent far more than on
         node order: best-first alone can spend its whole budget before
         stumbling on an integral vertex. *)
      let dive () =
        let deadline_hit () = Unix.gettimeofday () -. started > time_limit *. 0.25 in
        let rec go fixes warm x =
          match most_fractional x with
          | None ->
            let o = Lp.eval_expr obj_terms x in
            if better o then begin
              incumbent := Some (o, Array.copy x);
              refresh_rc_fixes ()
            end
          | Some (v, _) when not (deadline_hit ()) ->
            let r = Float.round x.(v) in
            let try_fix value k =
              match relax ?warm ((v, value, value) :: fixes) with
              | Simplex.Optimal { obj; x }, b when better obj ->
                go ((v, value, value) :: fixes) b x
              | _ -> k ()
            in
            let other = if r > x.(v) then r -. 1. else r +. 1. in
            let lo, hi = original_bounds.(v) in
            try_fix r (fun () ->
                if other >= lo -. 1e-9 && other <= hi +. 1e-9 then
                  try_fix other (fun () -> ()))
          | Some _ -> ()
        in
        go [] root_basis root_x
      in
      (match most_fractional x with
      | None -> incumbent := Some (obj, x)
      | Some _ ->
        (* a zero node budget means "no search", heuristics included *)
        if node_limit > 0 then dive ();
        Heap.push heap
          {
            bound = Float.min (sense *. obj) root_ceiling;
            cert = root_ceiling;
            fixes = [];
            warm = root_basis;
          });
      let exhausted = ref false in
      let continue = ref (not (cert_optimal ())) in
      while !continue do
        match Heap.pop heap with
        | None -> continue := false
        | Some nd ->
          if !nodes >= node_limit || Unix.gettimeofday () -. started > time_limit then begin
            exhausted := true;
            continue := false
          end
          else begin
            incr nodes;
            if debug && !nodes mod 1000 = 0 then
              Printf.eprintf "[bb] nodes=%d heap=%d incumbent=%s top_bound=%.9g\n%!"
                !nodes heap.Heap.len
                (match !incumbent with
                | Some (bo, _) -> Printf.sprintf "%.9g" bo
                | None -> "none")
                (sense *. nd.bound);
            (* prune against incumbent: the certifier's LP-free ceiling
               for this subtree (computed once, when the node was
               pushed), then the parent LP bound *)
            let prune =
              if beaten_by_incumbent nd.cert then begin
                incr fathomed_by_cert;
                true
              end
              else beaten_by_incumbent nd.bound
            in
            if not prune then begin
              match relax ?warm:nd.warm nd.fixes with
              | Simplex.Infeasible, _ -> ()
              | Simplex.Unbounded, _ -> ()
              | Simplex.Optimal { obj; x }, basis -> (
                if (not (better obj)) then ()
                else
                  match most_fractional x with
                  | None ->
                    incumbent := Some (obj, Array.copy x);
                    refresh_rc_fixes ();
                    if cert_optimal () then continue := false
                  | Some (v, _) ->
                    (* simple-rounding primal heuristic: the node box is
                       inside the original one, so a rounded point that
                       satisfies the current lp is globally feasible.
                       Budget-limited searches live off incumbents found
                       this way — best-first alone rarely lands on
                       integral vertices. *)
                    let xr = Array.copy x in
                    List.iter (fun w -> xr.(w) <- Float.round xr.(w)) int_vars;
                    let obj_r = Lp.eval_expr obj_terms xr in
                    if better obj_r && Lp.feasible lp xr then begin
                      incumbent := Some (obj_r, xr);
                      refresh_rc_fixes ();
                      if cert_optimal () then continue := false
                    end;
                    let lo, hi = original_bounds.(v) in
                    let lo =
                      List.fold_left (fun acc (w, l, _) -> if w = v then max acc l else acc) lo nd.fixes
                    in
                    let hi =
                      List.fold_left (fun acc (w, _, h) -> if w = v then min acc h else acc) hi nd.fixes
                    in
                    let warm = if heap.Heap.len > warm_heap_cap then None else basis in
                    let f = Float.of_int (int_of_float (floor (x.(v) +. 1e-9))) in
                    let push fixes =
                      let cert = cert_ceiling fixes in
                      Heap.push heap
                        { bound = Float.min (sense *. obj) cert; cert; fixes; warm }
                    in
                    if f >= lo -. 1e-9 then push ((v, lo, f) :: nd.fixes);
                    if f +. 1. <= hi +. 1e-9 then push ((v, f +. 1., hi) :: nd.fixes))
            end
          end
      done;
      match !incumbent with
      | None -> if !exhausted then Exhausted else Infeasible
      | Some (obj, x) ->
        (* Round integer variables exactly, then re-derive the objective
           from the rounded point and check it is still feasible —
           rounding can cross a constraint even though each variable
           moves by at most the integrality tolerance. If it does, the
           unrounded solution (feasible by construction) is returned
           instead of a corrupted one. *)
        restore ();
        let xr = Array.copy x in
        List.iter (fun v -> xr.(v) <- Float.round xr.(v)) int_vars;
        let obj_r = Lp.eval_expr obj_terms xr in
        let obj, x = if Lp.feasible lp xr then (obj_r, xr) else (obj, x) in
        Optimal { obj; x; proved_optimal = not !exhausted; nodes = !nodes })
  in
  Support.Trace.add "milp.bb.nodes" !nodes;
  Support.Trace.add "milp.lp.relaxations" !relaxations;
  Support.Trace.add "milp.bb.fathomed_by_cert" !fathomed_by_cert;
  Support.Trace.add "milp.bb.rc_fixed" !rc_fixed;
  restore ();
  result
