type result =
  | Optimal of { obj : float; x : float array; proved_optimal : bool; nodes : int }
  | Infeasible
  | Unbounded

type node = { bound : float; fixes : (int * float * float) list }

(* max-heap on the relaxation bound (for maximisation; bounds are negated
   for minimisation so the heap order is uniform) *)
module Heap = struct
  type t = { mutable data : node array; mutable len : int }

  let create () = { data = Array.make 64 { bound = 0.; fixes = [] }; len = 0 }

  let push h n =
    if h.len = Array.length h.data then begin
      let d = Array.make (2 * h.len) n in
      Array.blit h.data 0 d 0 h.len;
      h.data <- d
    end;
    h.data.(h.len) <- n;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && h.data.((!i - 1) / 2).bound < h.data.(!i).bound do
      let p = (!i - 1) / 2 in
      let tmp = h.data.(p) in
      h.data.(p) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.data.(0) in
      h.len <- h.len - 1;
      h.data.(0) <- h.data.(h.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let largest = ref !i in
        if l < h.len && h.data.(l).bound > h.data.(!largest).bound then largest := l;
        if r < h.len && h.data.(r).bound > h.data.(!largest).bound then largest := r;
        if !largest = !i then continue := false
        else begin
          let tmp = h.data.(!i) in
          h.data.(!i) <- h.data.(!largest);
          h.data.(!largest) <- tmp;
          i := !largest
        end
      done;
      Some top
    end
end

let solve ?(node_limit = 50_000) ?(eps = 1e-6) ?(time_limit = 120.) ?initial lp =
  Support.Trace.with_span ~cat:"milp" "milp:bb" @@ fun () ->
  let started = Unix.gettimeofday () in
  let maximize, _ = Lp.objective lp in
  let sense = if maximize then 1. else -1. in
  let nv = Lp.n_vars lp in
  let int_vars =
    List.filter
      (fun v -> match Lp.var_kind lp v with Lp.Binary | Lp.Integer -> true | Lp.Continuous -> false)
      (List.init nv (fun i -> i))
  in
  let original_bounds = Array.init nv (fun v -> Lp.bounds lp v) in
  let restore () =
    Array.iteri (fun v (lo, hi) -> Lp.set_bounds lp v ~lo ~hi) original_bounds
  in
  let apply_fixes fixes =
    restore ();
    (* a node's box is the intersection of all its fixes: the same
       variable can be branched more than once down a path (general
       integers with a range wider than one), and the newest fix sits at
       the head of the list — overwriting instead of intersecting would
       silently widen the box back *)
    List.iter
      (fun (v, lo, hi) ->
        let cur_lo, cur_hi = Lp.bounds lp v in
        Lp.set_bounds lp v ~lo:(max lo cur_lo) ~hi:(min hi cur_hi))
      fixes
  in
  let frac x = abs_float (x -. Float.round x) in
  let most_fractional x =
    List.fold_left
      (fun best v ->
        let f = frac x.(v) in
        if f > eps then match best with Some (_, bf) when bf >= f -> best | _ -> Some (v, f)
        else best)
      None int_vars
  in
  let incumbent =
    ref
      (match initial with
      | Some x0
        when Array.length x0 = nv
             && Lp.feasible lp x0
             && List.for_all (fun v -> abs_float (x0.(v) -. Float.round x0.(v)) <= eps) int_vars ->
        Some (Lp.eval_expr (snd (Lp.objective lp)) x0, Array.copy x0)
      | _ -> None)
  in
  let nodes = ref 0 in
  let relaxations = ref 0 in
  let heap = Heap.create () in
  let relax fixes =
    incr relaxations;
    apply_fixes fixes;
    Simplex.solve lp
  in
  let better obj =
    match !incumbent with None -> true | Some (bo, _) -> sense *. obj > (sense *. bo) +. 1e-9
  in
  let root = relax [] in
  let result =
    match root with
    | Simplex.Infeasible -> Infeasible
    | Simplex.Unbounded -> Unbounded
    | Simplex.Optimal { obj; x } -> (
      (match most_fractional x with
      | None -> incumbent := Some (obj, x)
      | Some (v, _) ->
        Heap.push heap { bound = sense *. obj; fixes = [] };
        ignore v);
      let exhausted = ref false in
      let continue = ref true in
      while !continue do
        match Heap.pop heap with
        | None -> continue := false
        | Some nd ->
          if !nodes >= node_limit || Unix.gettimeofday () -. started > time_limit then begin
            exhausted := true;
            continue := false
          end
          else begin
            incr nodes;
            (* prune against incumbent *)
            let prune =
              match !incumbent with
              | Some (bo, _) -> nd.bound <= (sense *. bo) +. 1e-9
              | None -> false
            in
            if not prune then begin
              match relax nd.fixes with
              | Simplex.Infeasible -> ()
              | Simplex.Unbounded -> ()
              | Simplex.Optimal { obj; x } -> (
                if (not (better obj)) then ()
                else
                  match most_fractional x with
                  | None -> incumbent := Some (obj, Array.copy x)
                  | Some (v, _) ->
                    let lo, hi = original_bounds.(v) in
                    let lo =
                      List.fold_left (fun acc (w, l, _) -> if w = v then max acc l else acc) lo nd.fixes
                    in
                    let hi =
                      List.fold_left (fun acc (w, _, h) -> if w = v then min acc h else acc) hi nd.fixes
                    in
                    let f = Float.of_int (int_of_float (floor (x.(v) +. 1e-9))) in
                    if f >= lo -. 1e-9 then
                      Heap.push heap
                        { bound = sense *. obj; fixes = (v, lo, f) :: nd.fixes };
                    if f +. 1. <= hi +. 1e-9 then
                      Heap.push heap
                        { bound = sense *. obj; fixes = (v, f +. 1., hi) :: nd.fixes })
            end
          end
      done;
      match !incumbent with
      | None -> Infeasible
      | Some (obj, x) ->
        (* round integer variables exactly *)
        let x = Array.copy x in
        List.iter (fun v -> x.(v) <- Float.round x.(v)) int_vars;
        Optimal { obj; x; proved_optimal = not !exhausted; nodes = !nodes })
  in
  Support.Trace.add "milp.bb.nodes" !nodes;
  Support.Trace.add "milp.lp.relaxations" !relaxations;
  restore ();
  result
