type var_kind = Continuous | Binary | Integer

type relation = Le | Ge | Eq

type var = { vname : string; mutable lo : float; mutable hi : float; kind : var_kind }

type constr = { cname : string; terms : (float * int) list; rel : relation; rhs : float }

type t = {
  mname : string;
  vars : var Support.Vec.t;
  constrs : constr Support.Vec.t;
  mutable maximize : bool;
  mutable obj : (float * int) list;
  (* column-major view keyed on (n_vars, n_constrs): bound and objective
     edits keep it valid, adding rows or variables invalidates it *)
  mutable cols : (int * int * Sparse.t array) option;
}

let create mname =
  {
    mname;
    vars = Support.Vec.create ();
    constrs = Support.Vec.create ();
    maximize = true;
    obj = [];
    cols = None;
  }

let name t = t.mname

let add_var t ?(lo = 0.) ?(hi = infinity) ?(kind = Continuous) vname =
  let lo, hi = match kind with Binary -> (max lo 0., min hi 1.) | _ -> (lo, hi) in
  if lo > hi then invalid_arg (Printf.sprintf "Lp.add_var %s: lo > hi" vname);
  Support.Vec.push t.vars { vname; lo; hi; kind }

let n_vars t = Support.Vec.length t.vars
let var_name t i = (Support.Vec.get t.vars i).vname
let var_kind t i = (Support.Vec.get t.vars i).kind
let bounds t i =
  let v = Support.Vec.get t.vars i in
  (v.lo, v.hi)

let set_bounds t i ~lo ~hi =
  let v = Support.Vec.get t.vars i in
  v.lo <- lo;
  v.hi <- hi

(* merge duplicate variables in a term list *)
let normalize terms =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (c, v) -> Hashtbl.replace tbl v (c +. Option.value (Hashtbl.find_opt tbl v) ~default:0.))
    terms;
  Hashtbl.fold (fun v c acc -> if c = 0. then acc else (c, v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare a b)

let add_constr t ?(name = "") terms rel rhs =
  List.iter
    (fun (_, v) ->
      if v < 0 || v >= n_vars t then invalid_arg "Lp.add_constr: variable out of range")
    terms;
  ignore (Support.Vec.push t.constrs { cname = name; terms = normalize terms; rel; rhs })

let n_constrs t = Support.Vec.length t.constrs

let constr t i =
  let c = Support.Vec.get t.constrs i in
  (c.terms, c.rel, c.rhs)

let constr_name t i = (Support.Vec.get t.constrs i).cname

let col_major t =
  let nv = n_vars t and nc = n_constrs t in
  match t.cols with
  | Some (v, c, cols) when v = nv && c = nc -> cols
  | _ ->
    let acc = Array.make nv [] in
    Support.Vec.iteri
      (fun i c -> List.iter (fun (coef, v) -> acc.(v) <- (i, coef) :: acc.(v)) c.terms)
      t.constrs;
    let cols = Array.map Sparse.of_list acc in
    t.cols <- Some (nv, nc, cols);
    cols

let set_objective t ~maximize terms =
  t.maximize <- maximize;
  t.obj <- normalize terms

let objective t = (t.maximize, t.obj)

let eval_expr terms x = List.fold_left (fun acc (c, v) -> acc +. (c *. x.(v))) 0. terms

let feasible t ?(eps = 1e-6) x =
  let ok = ref (Array.length x = n_vars t) in
  if !ok then begin
    Support.Vec.iteri
      (fun i v ->
        if x.(i) < v.lo -. eps || x.(i) > v.hi +. eps then ok := false)
      t.vars;
    Support.Vec.iter
      (fun c ->
        let lhs = eval_expr c.terms x in
        match c.rel with
        | Le -> if lhs > c.rhs +. eps then ok := false
        | Ge -> if lhs < c.rhs -. eps then ok := false
        | Eq -> if abs_float (lhs -. c.rhs) > eps then ok := false)
      t.constrs
  end;
  !ok

type violation =
  | V_constr of { row : int; name : string; lhs : float; rel : relation; rhs : float }
  | V_bound of { var : int; value : float; lo : float; hi : float }
  | V_integrality of { var : int; value : float }

let violations t ?(eps = 1e-6) x =
  if Array.length x <> n_vars t then
    invalid_arg
      (Printf.sprintf "Lp.violations: assignment has %d entries for %d variables"
         (Array.length x) (n_vars t));
  let acc = ref [] in
  Support.Vec.iteri
    (fun i v ->
      if x.(i) < v.lo -. eps || x.(i) > v.hi +. eps then
        acc := V_bound { var = i; value = x.(i); lo = v.lo; hi = v.hi } :: !acc;
      match v.kind with
      | Binary | Integer ->
        if abs_float (x.(i) -. Float.round x.(i)) > eps then
          acc := V_integrality { var = i; value = x.(i) } :: !acc
      | Continuous -> ())
    t.vars;
  Support.Vec.iteri
    (fun row c ->
      let lhs = eval_expr c.terms x in
      let violated =
        match c.rel with
        | Le -> lhs > c.rhs +. eps
        | Ge -> lhs < c.rhs -. eps
        | Eq -> abs_float (lhs -. c.rhs) > eps
      in
      if violated then
        acc := V_constr { row; name = c.cname; lhs; rel = c.rel; rhs = c.rhs } :: !acc)
    t.constrs;
  List.rev !acc

let pp_violation t fmt = function
  | V_constr { row; name; lhs; rel; rhs } ->
    let rel_s = match rel with Le -> "<=" | Ge -> ">=" | Eq -> "=" in
    Format.fprintf fmt "row %d%s: lhs %g violates %s %g" row
      (if name = "" then "" else Printf.sprintf " (%s)" name)
      lhs rel_s rhs
  | V_bound { var; value; lo; hi } ->
    Format.fprintf fmt "var %s = %g outside [%g, %g]" (var_name t var) value lo hi
  | V_integrality { var; value } ->
    Format.fprintf fmt "var %s = %g is not integral" (var_name t var) value

let pp_stats fmt t =
  let binaries =
    Support.Vec.fold (fun acc v -> if v.kind = Binary then acc + 1 else acc) 0 t.vars
  in
  Format.fprintf fmt "%s: %d vars (%d binary), %d constraints" t.mname (n_vars t) binaries
    (n_constrs t)
