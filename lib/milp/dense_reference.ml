(* The pre-revised-simplex dense two-phase tableau solver, kept verbatim
   as a differential-testing oracle (modulo the free-variable bound fix
   below). It is never used on the hot path and emits no trace counters. *)

type result = Simplex.result =
  | Optimal of { obj : float; x : float array }
  | Infeasible
  | Unbounded

let eps = 1e-7

(* One variable of the original model maps to one or two non-negative
   columns: x = shift + col_pos - col_neg. *)
type var_map = { col_pos : int; col_neg : int; shift : float }

type tableau = {
  a : float array array;  (* m x n *)
  b : float array;        (* m *)
  cost : float array;     (* n, reduced cost row (minimisation) *)
  mutable z : float;      (* objective value of current basis *)
  basis : int array;      (* m, column in basis for each row *)
  m : int;
  n : int;
}

let pivot t ~row ~col =
  let piv = t.a.(row).(col) in
  let arow = t.a.(row) in
  let inv = 1. /. piv in
  for j = 0 to t.n - 1 do
    arow.(j) <- arow.(j) *. inv
  done;
  t.b.(row) <- t.b.(row) *. inv;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let f = t.a.(i).(col) in
      if abs_float f > 1e-12 then begin
        let ai = t.a.(i) in
        for j = 0 to t.n - 1 do
          ai.(j) <- ai.(j) -. (f *. arow.(j))
        done;
        t.b.(i) <- t.b.(i) -. (f *. t.b.(row))
      end
    end
  done;
  let f = t.cost.(col) in
  if abs_float f > 1e-12 then begin
    for j = 0 to t.n - 1 do
      t.cost.(j) <- t.cost.(j) -. (f *. arow.(j))
    done;
    t.z <- t.z -. (f *. t.b.(row))
  end;
  t.basis.(row) <- col

(* Minimise the current cost row over the feasible region.  [allowed j]
   filters enterable columns (used to block artificials in phase 2).
   Returns [`Optimal] or [`Unbounded]. *)
let optimize t ~allowed =
  let bland_threshold = 20_000 in
  let iter = ref 0 in
  let rec loop () =
    incr iter;
    if !iter > 200_000 then failwith "Dense_reference.optimize: iteration limit";
    let bland = !iter > bland_threshold in
    (* entering column *)
    let enter = ref (-1) in
    let best = ref (-.eps) in
    (try
       for j = 0 to t.n - 1 do
         if allowed j && t.cost.(j) < -.eps then
           if bland then begin
             enter := j;
             raise Exit
           end
           else if t.cost.(j) < !best then begin
             best := t.cost.(j);
             enter := j
           end
       done
     with Exit -> ());
    if !enter = -1 then `Optimal
    else begin
      let col = !enter in
      (* ratio test *)
      let row = ref (-1) in
      let best_ratio = ref infinity in
      for i = 0 to t.m - 1 do
        if t.a.(i).(col) > eps then begin
          let r = t.b.(i) /. t.a.(i).(col) in
          if
            r < !best_ratio -. 1e-12
            || (r < !best_ratio +. 1e-12 && !row >= 0 && t.basis.(i) < t.basis.(!row))
          then begin
            best_ratio := r;
            row := i
          end
        end
      done;
      if !row = -1 then `Unbounded
      else begin
        pivot t ~row:!row ~col;
        loop ()
      end
    end
  in
  loop ()

let solve lp =
  let nv = Lp.n_vars lp in
  (* ---- variable mapping ---- *)
  let var_maps = Array.make nv { col_pos = -1; col_neg = -1; shift = 0. } in
  let n_struct = ref 0 in
  (* finite upper bounds become explicit [terms <= ub] rows *)
  let ub_rows = ref [] in
  let empty_box = ref false in
  for v = 0 to nv - 1 do
    let lo, hi = Lp.bounds lp v in
    if lo > hi then empty_box := true;
    if lo > neg_infinity then begin
      let col = !n_struct in
      incr n_struct;
      var_maps.(v) <- { col_pos = col; col_neg = -1; shift = lo };
      if hi < infinity then ub_rows := ([ (col, 1.) ], hi -. lo) :: !ub_rows
    end
    else begin
      (* free variable: split. A finite upper bound must constrain the
         difference cp - cn, not just the positive column — otherwise
         hi < 0 is unreachable and the model is spuriously infeasible
         (the historical bug pinned by the regression suite). *)
      let cp = !n_struct in
      let cn = !n_struct + 1 in
      n_struct := !n_struct + 2;
      var_maps.(v) <- { col_pos = cp; col_neg = cn; shift = 0. };
      if hi < infinity then ub_rows := ([ (cp, 1.); (cn, -1.) ], hi) :: !ub_rows
    end
  done;
  if !empty_box then Infeasible
  else begin
  let n_struct = !n_struct in
  (* ---- rows in terms of shifted columns ---- *)
  (* each row: (coeff list over columns, relation, rhs) *)
  let rows = ref [] in
  let add_row terms rel rhs =
    let cols = Hashtbl.create 8 in
    let shift_sum = ref 0. in
    List.iter
      (fun (c, v) ->
        let vm = var_maps.(v) in
        shift_sum := !shift_sum +. (c *. vm.shift);
        let addc col k =
          Hashtbl.replace cols col (k +. Option.value (Hashtbl.find_opt cols col) ~default:0.)
        in
        addc vm.col_pos c;
        if vm.col_neg >= 0 then addc vm.col_neg (-.c))
      terms;
    let coeffs = Hashtbl.fold (fun col c acc -> (col, c) :: acc) cols [] in
    rows := (coeffs, rel, rhs -. !shift_sum) :: !rows
  in
  for i = 0 to Lp.n_constrs lp - 1 do
    let terms, rel, rhs = Lp.constr lp i in
    add_row terms rel rhs
  done;
  List.iter (fun (coeffs, ub) -> rows := (coeffs, Lp.Le, ub) :: !rows) !ub_rows;
  let rows = Array.of_list (List.rev !rows) in
  let m = Array.length rows in
  (* normalise to rhs >= 0 *)
  let rows =
    Array.map
      (fun (coeffs, rel, rhs) ->
        if rhs < 0. then
          let rel = match rel with Lp.Le -> Lp.Ge | Lp.Ge -> Lp.Le | Lp.Eq -> Lp.Eq in
          (List.map (fun (c, k) -> (c, -.k)) coeffs, rel, -.rhs)
        else (coeffs, rel, rhs))
      rows
  in
  (* count slacks and artificials *)
  let n_slack = Array.fold_left (fun acc (_, rel, _) -> if rel = Lp.Eq then acc else acc + 1) 0 rows in
  let n_art =
    Array.fold_left (fun acc (_, rel, _) -> if rel = Lp.Le then acc else acc + 1) 0 rows
  in
  let n = n_struct + n_slack + n_art in
  let a = Array.init m (fun _ -> Array.make n 0.) in
  let b = Array.make m 0. in
  let basis = Array.make m (-1) in
  let slack0 = n_struct in
  let art0 = n_struct + n_slack in
  let next_slack = ref 0 and next_art = ref 0 in
  Array.iteri
    (fun i (coeffs, rel, rhs) ->
      List.iter (fun (c, k) -> a.(i).(c) <- a.(i).(c) +. k) coeffs;
      b.(i) <- rhs;
      (match rel with
      | Lp.Le ->
        let s = slack0 + !next_slack in
        incr next_slack;
        a.(i).(s) <- 1.;
        basis.(i) <- s
      | Lp.Ge ->
        let s = slack0 + !next_slack in
        incr next_slack;
        a.(i).(s) <- -1.;
        let art = art0 + !next_art in
        incr next_art;
        a.(i).(art) <- 1.;
        basis.(i) <- art
      | Lp.Eq ->
        let art = art0 + !next_art in
        incr next_art;
        a.(i).(art) <- 1.;
        basis.(i) <- art))
    rows;
  let t = { a; b; cost = Array.make n 0.; z = 0.; basis; m; n } in
  (* ---- phase 1 ---- *)
  if n_art > 0 then begin
    for j = art0 to n - 1 do
      t.cost.(j) <- 1.
    done;
    (* reduce cost row against initial basis (artificials in basis) *)
    for i = 0 to m - 1 do
      if t.basis.(i) >= art0 then begin
        for j = 0 to n - 1 do
          t.cost.(j) <- t.cost.(j) -. t.a.(i).(j)
        done;
        t.z <- t.z -. t.b.(i)
      end
    done;
    match optimize t ~allowed:(fun _ -> true) with
    | `Unbounded -> failwith "Dense_reference: phase 1 unbounded (impossible)"
    | `Optimal -> ()
  end;
  let phase1_obj = -.t.z in
  if n_art > 0 && phase1_obj > 1e-6 then Infeasible
  else begin
    (* drive remaining artificials out of the basis where possible *)
    for i = 0 to m - 1 do
      if t.basis.(i) >= art0 then begin
        let found = ref (-1) in
        for j = 0 to art0 - 1 do
          if !found = -1 && abs_float t.a.(i).(j) > 1e-7 then found := j
        done;
        if !found >= 0 then pivot t ~row:i ~col:!found
        (* else the row is redundant; leave the artificial at value 0 *)
      end
    done;
    (* ---- phase 2 ---- *)
    let maximize, obj = Lp.objective lp in
    Array.fill t.cost 0 n 0.;
    t.z <- 0.;
    let sign = if maximize then 1. else -1. in
    (* internally minimise -sign * obj *)
    List.iter
      (fun (c, v) ->
        let vm = var_maps.(v) in
        t.cost.(vm.col_pos) <- t.cost.(vm.col_pos) -. (sign *. c);
        if vm.col_neg >= 0 then t.cost.(vm.col_neg) <- t.cost.(vm.col_neg) +. (sign *. c))
      obj;
    (* reduce against current basis *)
    for i = 0 to m - 1 do
      let f = t.cost.(t.basis.(i)) in
      if abs_float f > 1e-12 then begin
        for j = 0 to n - 1 do
          t.cost.(j) <- t.cost.(j) -. (f *. t.a.(i).(j))
        done;
        t.z <- t.z -. (f *. t.b.(i))
      end
    done;
    let allowed j = j < art0 in
    match optimize t ~allowed with
    | `Unbounded -> Unbounded
    | `Optimal ->
      let xcols = Array.make n 0. in
      for i = 0 to m - 1 do
        xcols.(t.basis.(i)) <- t.b.(i)
      done;
      let x =
        Array.init nv (fun v ->
            let vm = var_maps.(v) in
            vm.shift +. xcols.(vm.col_pos)
            -. (if vm.col_neg >= 0 then xcols.(vm.col_neg) else 0.))
      in
      (* recompute the objective from x to avoid sign gymnastics *)
      Optimal { obj = Lp.eval_expr obj x; x }
  end
  end
