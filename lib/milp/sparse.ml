type t = { idx : int array; v : float array }

let empty = { idx = [||]; v = [||] }

let of_list entries =
  let tbl = Hashtbl.create (List.length entries) in
  List.iter
    (fun (i, c) ->
      Hashtbl.replace tbl i (c +. Option.value (Hashtbl.find_opt tbl i) ~default:0.))
    entries;
  let merged =
    Hashtbl.fold (fun i c acc -> if c = 0. then acc else (i, c) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let n = List.length merged in
  let idx = Array.make n 0 and v = Array.make n 0. in
  List.iteri
    (fun k (i, c) ->
      idx.(k) <- i;
      v.(k) <- c)
    merged;
  { idx; v }

let nnz c = Array.length c.idx

let dot c y =
  let acc = ref 0. in
  for k = 0 to Array.length c.idx - 1 do
    acc := !acc +. (c.v.(k) *. y.(c.idx.(k)))
  done;
  !acc

let iter f c =
  for k = 0 to Array.length c.idx - 1 do
    f c.idx.(k) c.v.(k)
  done

let axpy a c y =
  if a <> 0. then
    for k = 0 to Array.length c.idx - 1 do
      y.(c.idx.(k)) <- y.(c.idx.(k)) +. (a *. c.v.(k))
    done
