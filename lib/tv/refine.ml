(* Pass 3 of the translation validator: buffer-insertion refinement.
   After the MILP (or the slack-matching post-pass) picks channels, the
   only legal difference between the input DFG and the buffered DFG is
   buffer annotations on exactly the selected channels, with the
   selected slot/transparency fields. Anything else — a buffer the
   solver never asked for, a dropped buffer, tampered slots, a changed
   unit or channel — breaks the refinement and invalidates both the
   throughput certificate and the timing model. *)

module G = Dataflow.Graph

type violation =
  | Shape_changed of { detail : string }
  | Buffer_added of { channel : int; spec : G.buffer_spec }
  | Buffer_removed of { channel : int }
  | Buffer_mismatch of { channel : int; got : G.buffer_spec; want : G.buffer_spec }

let spec_str (s : G.buffer_spec) =
  Printf.sprintf "%s/%d slots" (if s.G.transparent then "transparent" else "opaque") s.G.slots

let check ~base ~buffered ~allowed =
  Support.Trace.with_span ~cat:"tv" "tv:refine" @@ fun () ->
  let violations = ref [] in
  let add v = violations := v :: !violations in
  if G.n_units base <> G.n_units buffered then
    add
      (Shape_changed
         {
           detail =
             Printf.sprintf "unit count changed: %d -> %d" (G.n_units base)
               (G.n_units buffered);
         })
  else if G.n_channels base <> G.n_channels buffered then
    add
      (Shape_changed
         {
           detail =
             Printf.sprintf "channel count changed: %d -> %d" (G.n_channels base)
               (G.n_channels buffered);
         })
  else begin
    for u = 0 to G.n_units base - 1 do
      let nb = G.unit_node base u and nf = G.unit_node buffered u in
      if
        nb.G.kind <> nf.G.kind || nb.G.label <> nf.G.label || nb.G.bb <> nf.G.bb
        || nb.G.width <> nf.G.width
      then
        add (Shape_changed { detail = Printf.sprintf "unit %d (%s) changed" u nb.G.label })
    done;
    for c = 0 to G.n_channels base - 1 do
      let cb = G.channel base c and cf = G.channel buffered c in
      if
        cb.G.src <> cf.G.src || cb.G.dst <> cf.G.dst || cb.G.src_port <> cf.G.src_port
        || cb.G.dst_port <> cf.G.dst_port
      then add (Shape_changed { detail = Printf.sprintf "channel %d rewired" c })
      else begin
        let want =
          match List.assoc_opt c allowed with Some spec -> Some spec | None -> cb.G.buffer
        in
        match (want, cf.G.buffer) with
        | None, None -> ()
        | Some w, Some g when w = g -> ()
        | None, Some spec -> add (Buffer_added { channel = c; spec })
        | Some _, None -> add (Buffer_removed { channel = c })
        | Some want, Some got -> add (Buffer_mismatch { channel = c; got; want })
      end
    done
  end;
  let vs = List.rev !violations in
  Support.Trace.add "tv.refine.violations" (List.length vs);
  vs
