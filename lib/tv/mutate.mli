(** Seeded miscompile injection for validating the validator.

    Each mutator plants exactly one fault of a known class and returns
    the mutated artefact together with the id of the mutation site (the
    expected witness). Candidates are tried in seeded-random order;
    where a random mutation could be semantically neutral (gate flips,
    cover swaps), the first candidate proved observable by a
    pre-existing oracle — netlist per-CO signatures, respectively
    {!Techmap.Truth.equivalent} — is kept, so the validator under test
    never participates in selecting its own test input. [None] means no
    observable mutation of that class exists in the artefact. *)

val flip_gate : seed:int -> Net.t -> (Net.t * int) option
(** Flip one [And2]/[Or2]/[Xor2] gate's kind; returns the mutated
    netlist and the flipped gate id. *)

val swap_cover_leaf : seed:int -> Techmap.Lutgraph.t -> (Techmap.Lutgraph.t * int) option
(** Replace one leaf of one LUT's cut with a different legal leaf (CI
    or mapped root); returns the mutated cover and the LUT id. *)

val swap_label : seed:int -> n_units:int -> Techmap.Lutgraph.t -> (Techmap.Lutgraph.t * int) option
(** Relabel one LUT with a unit (in [[0, n_units)]) that contributes no
    gates to its cone; returns the mutated cover and the LUT id. *)

val swap_domain : seed:int -> Techmap.Lutgraph.t -> (Techmap.Lutgraph.t * int) option
(** Set one LUT's timing domain to something other than its cone join;
    returns the mutated cover and the LUT id. *)

val rogue_buffer : seed:int -> Dataflow.Graph.t -> (Dataflow.Graph.t * int) option
(** Copy the graph and add an opaque buffer on a channel nobody
    selected; returns the mutated graph and the channel id. *)

val tamper_slots : seed:int -> Dataflow.Graph.t -> (Dataflow.Graph.t * int) option
(** Copy the graph and change the slot count of an existing buffer;
    returns the mutated graph and the channel id. *)
