(* Pass 1 of the translation validator: combinational equivalence of the
   elaborated netlist, the rewritten AIG and the K-feasible LUT cover by
   64-bit-parallel random simulation. Each [int64] word carries 64
   independent input lanes, so one pass over each representation checks
   64 vectors; a word mismatch yields a concrete counterexample lane
   with no false positives. The expensive confirmation path ([exact])
   replays every witness lane through the scalar oracles ([Aig.eval],
   [Truth.eval_network], a scalar netlist walk) and exhaustively
   re-derives the offending LUT's function from its AIG cone — feasible
   because cuts have at most K = 6 leaves. *)

module L = Techmap.Lutgraph
module Aig = Techmap.Aig
module Synth = Techmap.Synth
module Truth = Techmap.Truth
module Rng = Support.Rng
module Trace = Support.Trace

type lane = {
  lane_gates : (int * bool) list;  (* netlist Input/Ff gate id -> stimulus *)
  lane_cis : (int * bool) list;    (* AIG CI node id -> the same stimulus *)
}

type mismatch =
  | Aig_mismatch of { co : int; tag : int; lane : lane }
      (** netlist vs. AIG: combinational output [co] (driving netlist
          gate [tag]) disagrees — strash/fold/rewrite broke the
          function. *)
  | Cover_mismatch of { lut : int; lane : lane }
      (** LUT cover vs. AIG: LUT [lut] is the first (in topological
          order) whose output disagrees with its AIG root, so its leaf
          values agree and the defect is local to this cut. *)
  | Cover_co_mismatch of { co : int; tag : int; lane : lane }
      (** LUT cover vs. netlist at a combinational output: the cover's
          output wiring (root-to-CO literal) is wrong. *)
  | Cover_structural of { lut : int; reason : string }
      (** the cover is not even well-formed: oversized cut, duplicate or
          unmapped leaf, broken root back-pointer, unbuildable truth
          table. *)

type result = {
  cos_checked : int;
  luts_checked : int;
  vectors : int;
  signatures : (int * int64) list;
      (** per-combinational-output semantic hash [(tag, hash)] of the
          netlist function, in CO order — byte-identical across runs
          with equal seed/vectors, whatever the worker-pool width *)
  mismatches : mismatch list;  (* in detection order *)
  exact_checked : int;
  exact_confirmed : int;
}

(* SplitMix64-style combine: fold a simulation word into a signature. *)
let mix h w =
  let open Int64 in
  let z = add (logxor h w) 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let signature_hex r =
  Printf.sprintf "%016Lx"
    (List.fold_left
       (fun acc (tag, h) -> mix acc (Int64.logxor (Int64.of_int tag) h))
       0x5851F42D4C957F2DL r.signatures)

(* ---- netlist word evaluation ---- *)

(* Kahn topological order over the combinational dependency edges
   (Input/Ff/Const gates are sources; an FF's D fanin is a consumer of
   the combinational frame, not a dependency of the FF's output). *)
let topo_order net =
  let n = Net.n_gates net in
  let indeg = Array.make n 0 in
  let succs = Array.make n [] in
  Net.iter net (fun g ->
      match g.Net.kind with
      | Net.Input _ | Net.Ff _ | Net.Const _ -> ()
      | _ ->
        Array.iter
          (fun f ->
            if f >= 0 then begin
              succs.(f) <- g.Net.id :: succs.(f);
              indeg.(g.Net.id) <- indeg.(g.Net.id) + 1
            end)
          g.Net.fanins);
  let q = Queue.create () in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then Queue.add i q
  done;
  let order = Array.make n 0 in
  let k = ref 0 in
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    order.(!k) <- v;
    incr k;
    List.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then Queue.add s q)
      succs.(v)
  done;
  if !k < n then failwith "Tv.Equiv: combinational cycle in netlist";
  order

(* One combinational frame over 64 lanes; [stim] holds the word of every
   Input/Ff gate (the frame's free variables). *)
let eval_net_words net order stim =
  let n = Net.n_gates net in
  let value = Array.make n 0L in
  Array.iter
    (fun id ->
      let g = Net.gate net id in
      let f i = if g.Net.fanins.(i) >= 0 then value.(g.Net.fanins.(i)) else 0L in
      value.(id) <-
        (match g.Net.kind with
        | Net.Input _ | Net.Ff _ -> stim.(id)
        | Net.Const b -> if b then -1L else 0L
        | Net.Buf | Net.Output _ -> f 0
        | Net.Not -> Int64.lognot (f 0)
        | Net.And2 -> Int64.logand (f 0) (f 1)
        | Net.Or2 -> Int64.logor (f 0) (f 1)
        | Net.Xor2 -> Int64.logxor (f 0) (f 1)))
    order;
  value

(* ---- AIG word evaluation ---- *)

let word_of_lit w lit =
  let x = w.(Aig.node_of_lit lit) in
  if Aig.is_complement lit then Int64.lognot x else x

let eval_aig_words aig ci_words =
  let n = Aig.n_nodes aig in
  let w = Array.make n 0L in
  for v = 1 to n - 1 do
    if Aig.is_ci aig v then w.(v) <- ci_words.(v)
    else begin
      let f0, f1 = Aig.fanins aig v in
      w.(v) <- Int64.logand (word_of_lit w f0) (word_of_lit w f1)
    end
  done;
  w

(* ---- LUT cover word evaluation ---- *)

(* LUT ids sorted by AIG root: fanins reference lower node ids, so root
   order is a topological order of the cover. *)
let lut_order (lg : L.t) =
  let order = Array.init (Array.length lg.L.luts) (fun i -> i) in
  Array.sort (fun a b -> compare lg.L.luts.(a).L.root lg.L.luts.(b).L.root) order;
  order

let eval_cover_words (lg : L.t) tables order ci_words =
  let aig = lg.L.synth.Synth.aig in
  let out = Array.make (Array.length lg.L.luts) 0L in
  let leaf_word leaf =
    if leaf = 0 then 0L
    else if Aig.is_ci aig leaf then ci_words.(leaf)
    else match lg.L.lut_of_node.(leaf) with -1 -> 0L | lid -> out.(lid)
  in
  Array.iter
    (fun lid ->
      match tables.(lid) with
      | Error _ -> ()
      | Ok table ->
        let l = lg.L.luts.(lid) in
        let nl = Array.length l.L.leaves in
        let words = Array.map leaf_word l.L.leaves in
        let r = ref 0L in
        for bit = 0 to 63 do
          let idx = ref 0 in
          for i = 0 to nl - 1 do
            if Int64.logand (Int64.shift_right_logical words.(i) bit) 1L = 1L then
              idx := !idx lor (1 lsl i)
          done;
          if Int64.logand (Int64.shift_right_logical table !idx) 1L = 1L then
            r := Int64.logor !r (Int64.shift_left 1L bit)
        done;
        out.(lid) <- !r)
    order;
  out

let cover_word_of_lit (lg : L.t) out ci_words lit =
  let aig = lg.L.synth.Synth.aig in
  let v = Aig.node_of_lit lit in
  let base =
    if v = 0 then 0L
    else if Aig.is_ci aig v then ci_words.(v)
    else match lg.L.lut_of_node.(v) with -1 -> 0L | lid -> out.(lid)
  in
  if Aig.is_complement lit then Int64.lognot base else base

(* ---- stimulus and witness lanes ---- *)

let stim_gates net =
  let acc = ref [] in
  Net.iter net (fun g ->
      match g.Net.kind with
      | Net.Input _ | Net.Ff _ -> acc := g.Net.id :: !acc
      | _ -> ());
  List.rev !acc

let lane_of ~bit net aig stim ci_words =
  let bitv w = Int64.logand (Int64.shift_right_logical w bit) 1L = 1L in
  let lane_gates = List.map (fun gid -> (gid, bitv stim.(gid))) (stim_gates net) in
  let lane_cis = ref [] in
  for v = Aig.n_nodes aig - 1 downto 1 do
    if Aig.is_ci aig v then lane_cis := (v, bitv ci_words.(v)) :: !lane_cis
  done;
  { lane_gates; lane_cis = !lane_cis }

let lowest_diff_bit a b =
  let x = Int64.logxor a b in
  let rec find i = if Int64.logand (Int64.shift_right_logical x i) 1L = 1L then i else find (i + 1) in
  find 0

(* ---- scalar confirmation (exact mode) ---- *)

let eval_net_scalar net order stim_of =
  let n = Net.n_gates net in
  let value = Array.make n false in
  Array.iter
    (fun id ->
      let g = Net.gate net id in
      let f i = g.Net.fanins.(i) >= 0 && value.(g.Net.fanins.(i)) in
      value.(id) <-
        (match g.Net.kind with
        | Net.Input _ | Net.Ff _ -> stim_of id
        | Net.Const b -> b
        | Net.Buf | Net.Output _ -> f 0
        | Net.Not -> not (f 0)
        | Net.And2 -> f 0 && f 1
        | Net.Or2 -> f 0 || f 1
        | Net.Xor2 -> f 0 <> f 1))
    order;
  value

(* Independent evaluator of an AIG cone under a leaf assignment — a
   second implementation of what [Truth.lut_table] computes, so the
   exhaustive re-check does not trust the code under test. *)
let cone_eval aig root leaves idx =
  let leaf_pos = Hashtbl.create 8 in
  Array.iteri (fun i leaf -> Hashtbl.replace leaf_pos leaf i) leaves;
  let memo = Hashtbl.create 16 in
  let rec ev v =
    if v = 0 then false
    else
      match Hashtbl.find_opt leaf_pos v with
      | Some i -> (idx lsr i) land 1 = 1
      | None -> (
        match Hashtbl.find_opt memo v with
        | Some b -> b
        | None ->
          if Aig.is_ci aig v then false
          else begin
            let f0, f1 = Aig.fanins aig v in
            let lv lit =
              let b = ev (Aig.node_of_lit lit) in
              if Aig.is_complement lit then not b else b
            in
            let b = lv f0 && lv f1 in
            Hashtbl.replace memo v b;
            b
          end)
  in
  ev root

(* ---- the main pass ---- *)

let run ?(vectors = 256) ?(seed = 0x7ea) ?(exact = false) ?(k = 6) net (lg : L.t) =
  Trace.with_span ~cat:"tv" "tv:equiv" @@ fun () ->
  let synth = lg.L.synth in
  let aig = synth.Synth.aig in
  let n_luts = Array.length lg.L.luts in
  let mismatches = ref [] in
  let add_mis m = mismatches := m :: !mismatches in
  (* structural audit of the cover: everything the word evaluation is
     about to rely on *)
  let struct_bad = Array.make n_luts false in
  Array.iter
    (fun (l : L.lut) ->
      let bad reason =
        struct_bad.(l.L.lid) <- true;
        add_mis (Cover_structural { lut = l.L.lid; reason })
      in
      if Array.length l.L.leaves > k then
        bad (Printf.sprintf "%d leaves exceed K=%d" (Array.length l.L.leaves) k);
      if l.L.root <= 0 || l.L.root >= Aig.n_nodes aig then bad "root node out of range"
      else if lg.L.lut_of_node.(l.L.root) <> l.L.lid then
        bad "root does not map back to this LUT";
      let seen = Hashtbl.create 8 in
      Array.iter
        (fun leaf ->
          if Hashtbl.mem seen leaf then bad (Printf.sprintf "duplicate leaf %d" leaf)
          else Hashtbl.replace seen leaf ();
          if leaf <> 0 && (not (Aig.is_ci aig leaf)) && lg.L.lut_of_node.(leaf) = -1 then
            bad (Printf.sprintf "leaf %d is neither a CI nor a mapped LUT root" leaf))
        l.L.leaves)
    lg.L.luts;
  let tables =
    Array.init n_luts (fun lid ->
        if struct_bad.(lid) then Error "structurally invalid"
        else
          match Truth.lut_table lg lid with
          | table -> Ok table
          | exception Invalid_argument msg ->
            struct_bad.(lid) <- true;
            add_mis (Cover_structural { lut = lid; reason = "truth table: " ^ msg });
            Error msg)
  in
  let order = topo_order net in
  let lorder = lut_order lg in
  let cos = Aig.cos aig in
  let n_cos = List.length cos in
  let sign = Array.make n_cos 0x5851F42D4C957F2DL in
  let rng = Rng.create seed in
  let rounds = max 1 ((vectors + 63) / 64) in
  let aig_flagged = Hashtbl.create 8 in
  let cover_co_flagged = Hashtbl.create 8 in
  let cover_lut_flagged = ref false in
  for _round = 1 to rounds do
    (* shared stimulus: one word per netlist Input/Ff gate, replicated
       onto the matching AIG CI through [gate_of_ci] *)
    let stim = Array.make (Net.n_gates net) 0L in
    List.iter (fun gid -> stim.(gid) <- Rng.int64 rng) (stim_gates net);
    let ci_words = Array.make (Aig.n_nodes aig) 0L in
    for v = 1 to Aig.n_nodes aig - 1 do
      if Aig.is_ci aig v then
        match Hashtbl.find_opt synth.Synth.gate_of_ci v with
        | Some gid -> ci_words.(v) <- stim.(gid)
        | None -> ()
    done;
    let net_words = eval_net_words net order stim in
    let aig_words = eval_aig_words aig ci_words in
    let cover_out = eval_cover_words lg tables lorder ci_words in
    (* netlist vs. AIG and netlist vs. cover, per combinational output *)
    List.iter
      (fun (co, tag, lit) ->
        let g = Net.gate net tag in
        let wn = if g.Net.fanins.(0) >= 0 then net_words.(g.Net.fanins.(0)) else 0L in
        sign.(co) <- mix sign.(co) wn;
        let wa = word_of_lit aig_words lit in
        if wn <> wa && not (Hashtbl.mem aig_flagged tag) then begin
          Hashtbl.replace aig_flagged tag ();
          let bit = lowest_diff_bit wn wa in
          add_mis (Aig_mismatch { co; tag; lane = lane_of ~bit net aig stim ci_words })
        end;
        let wc = cover_word_of_lit lg cover_out ci_words lit in
        if wn <> wc && not (Hashtbl.mem cover_co_flagged tag) then begin
          Hashtbl.replace cover_co_flagged tag ();
          let bit = lowest_diff_bit wn wc in
          add_mis (Cover_co_mismatch { co; tag; lane = lane_of ~bit net aig stim ci_words })
        end)
      cos;
    (* cover vs. AIG, per LUT: localises a cut defect to the first
       topological LUT whose output disagrees while its leaves agree *)
    if not !cover_lut_flagged then
      Array.iter
        (fun lid ->
          if (not !cover_lut_flagged) && not struct_bad.(lid) then begin
            let l = lg.L.luts.(lid) in
            let wa = aig_words.(l.L.root) in
            if cover_out.(lid) <> wa then begin
              cover_lut_flagged := true;
              let bit = lowest_diff_bit cover_out.(lid) wa in
              add_mis (Cover_mismatch { lut = lid; lane = lane_of ~bit net aig stim ci_words })
            end
          end)
        lorder
  done;
  let mismatches = List.rev !mismatches in
  (* exact confirmation: replay every witness lane through the scalar
     oracles; for cover witnesses also exhaust the offending cone *)
  let exact_checked = ref 0 in
  let exact_confirmed = ref 0 in
  if exact then
    List.iter
      (fun m ->
        let with_lane lane f =
          incr exact_checked;
          let gv = Hashtbl.create 64 and cv = Hashtbl.create 64 in
          List.iter (fun (g, b) -> Hashtbl.replace gv g b) lane.lane_gates;
          List.iter (fun (v, b) -> Hashtbl.replace cv v b) lane.lane_cis;
          let stim_of id = Option.value (Hashtbl.find_opt gv id) ~default:false in
          let civ v = Option.value (Hashtbl.find_opt cv v) ~default:false in
          let net_vals = eval_net_scalar net order stim_of in
          let aig_vals = Aig.eval aig civ in
          if f ~net_vals ~aig_vals ~civ then incr exact_confirmed
        in
        match m with
        | Aig_mismatch { tag; lane; _ } ->
          with_lane lane (fun ~net_vals ~aig_vals ~civ:_ ->
              let g = Net.gate net tag in
              let bn = g.Net.fanins.(0) >= 0 && net_vals.(g.Net.fanins.(0)) in
              let _, _, lit = List.find (fun (_, t, _) -> t = tag) cos in
              let ba =
                let b = aig_vals.(Aig.node_of_lit lit) in
                if Aig.is_complement lit then not b else b
              in
              bn <> ba)
        | Cover_co_mismatch { tag; lane; _ } ->
          with_lane lane (fun ~net_vals ~aig_vals:_ ~civ ->
              match Truth.eval_network lg civ with
              | exception _ -> true
              | outs ->
                let g = Net.gate net tag in
                let bn = g.Net.fanins.(0) >= 0 && net_vals.(g.Net.fanins.(0)) in
                let _, _, lit = List.find (fun (_, t, _) -> t = tag) cos in
                let v = Aig.node_of_lit lit in
                let bc =
                  if v = 0 then false
                  else if Aig.is_ci aig v then civ v
                  else match lg.L.lut_of_node.(v) with -1 -> false | lid -> outs.(lid)
                in
                let bc = if Aig.is_complement lit then not bc else bc in
                bn <> bc)
        | Cover_mismatch { lut; lane } ->
          with_lane lane (fun ~net_vals:_ ~aig_vals ~civ ->
              let l = lg.L.luts.(lut) in
              let scalar_differs =
                match Truth.eval_network lg civ with
                | exception _ -> true
                | outs -> outs.(lut) <> aig_vals.(l.L.root)
              in
              (* exhaustively compare the stored table against an
                 independent evaluation of the cone: 2^|leaves| cases *)
              let table_differs =
                match tables.(lut) with
                | Error _ -> true
                | Ok table ->
                  let nl = Array.length l.L.leaves in
                  let differs = ref false in
                  for idx = 0 to (1 lsl nl) - 1 do
                    let tb = Int64.logand (Int64.shift_right_logical table idx) 1L = 1L in
                    if tb <> cone_eval aig l.L.root l.L.leaves idx then differs := true
                  done;
                  !differs
              in
              scalar_differs || table_differs)
        | Cover_structural _ -> ())
      mismatches;
  let r =
    {
      cos_checked = n_cos;
      luts_checked = n_luts;
      vectors = rounds * 64;
      signatures = List.map (fun (co, tag, _) -> (tag, sign.(co))) cos;
      mismatches;
      exact_checked = !exact_checked;
      exact_confirmed = !exact_confirmed;
    }
  in
  Trace.add "tv.vectors" r.vectors;
  Trace.add "tv.cos" r.cos_checked;
  Trace.add "tv.luts" r.luts_checked;
  Trace.add "tv.mismatches" (List.length r.mismatches);
  if exact then begin
    Trace.add "tv.exact.checked" r.exact_checked;
    Trace.add "tv.exact.confirmed" r.exact_confirmed
  end;
  r

(* Netlist-only per-CO signatures (outputs then FF D inputs, by gate
   id): the reference function of a netlist independent of any AIG or
   cover — what the mutation harness compares to prove a gate flip is
   observable. *)
let net_signatures ?(vectors = 256) ?(seed = 0x7ea) net =
  let order = topo_order net in
  let cos = Net.outputs net @ Net.ffs net in
  let sign = Array.make (List.length cos) 0x5851F42D4C957F2DL in
  let rng = Rng.create seed in
  let rounds = max 1 ((vectors + 63) / 64) in
  for _round = 1 to rounds do
    let stim = Array.make (Net.n_gates net) 0L in
    List.iter (fun gid -> stim.(gid) <- Rng.int64 rng) (stim_gates net);
    let words = eval_net_words net order stim in
    List.iteri
      (fun i tag ->
        let g = Net.gate net tag in
        let w = if g.Net.fanins.(0) >= 0 then words.(g.Net.fanins.(0)) else 0L in
        sign.(i) <- mix sign.(i) w)
      cos
  done;
  List.mapi (fun i tag -> (tag, sign.(i))) cos
