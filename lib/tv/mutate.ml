(* Seeded miscompile injection: the proof that the validator catches
   bugs. Each mutator plants one fault of a known class — gate flip in
   the netlist, leaf swap in the LUT cover, owner/domain swap on a LUT,
   rogue or tampered buffer on the DFG — and the test suite asserts the
   matching equiv-* rule fires with the right witness.

   Mutation testing has an equivalent-mutant problem: a random gate flip
   can be semantically neutral (e.g. [a AND a] vs. [a OR a]) or
   unobservable at any output. Mutators therefore select candidates in
   seeded-random order and keep the first whose fault is observable
   according to a *pre-existing* oracle (the netlist's own per-CO
   signatures for gate flips, [Truth.equivalent] for cover swaps) — the
   validator under test plays no part in the selection, so asserting it
   flags the mutant is a real check. *)

module L = Techmap.Lutgraph
module Aig = Techmap.Aig
module Synth = Techmap.Synth
module G = Dataflow.Graph
module Rng = Support.Rng

let shuffled_of_list rng xs =
  let a = Array.of_list xs in
  Rng.shuffle rng a;
  a

let array_find_map f a =
  let n = Array.length a in
  let rec go i = if i >= n then None else match f a.(i) with Some _ as r -> r | None -> go (i + 1) in
  go 0

(* ---- gate flip ---- *)

let flip_kind = function
  | Net.And2 -> Net.Or2
  | Net.Or2 -> Net.And2
  | Net.Xor2 -> Net.And2
  | k -> k

let flip_gate ~seed net =
  let rng = Rng.create seed in
  let cands = ref [] in
  Net.iter net (fun g ->
      match g.Net.kind with
      | Net.And2 | Net.Or2 | Net.Xor2 -> cands := g.Net.id :: !cands
      | _ -> ());
  let cands = shuffled_of_list rng !cands in
  let reference = Equiv.net_signatures net in
  array_find_map
    (fun gid ->
      let mutated =
        Net.clone_map_kind net (fun g -> if g.Net.id = gid then flip_kind g.Net.kind else g.Net.kind)
      in
      if Equiv.net_signatures mutated <> reference then Some (mutated, gid) else None)
    cands

(* ---- cover leaf swap ---- *)

let swap_cover_leaf ~seed (lg : L.t) =
  let rng = Rng.create seed in
  let aig = lg.L.synth.Synth.aig in
  (* replacement pool: every legal leaf value (CI or mapped LUT root) *)
  let pool = ref [] in
  for v = 1 to Aig.n_nodes aig - 1 do
    if Aig.is_ci aig v || lg.L.lut_of_node.(v) >= 0 then pool := v :: !pool
  done;
  let pool = shuffled_of_list rng !pool in
  let luts = shuffled_of_list rng (Array.to_list (Array.map (fun l -> l.L.lid) lg.L.luts)) in
  let observable mutated =
    (* the seed repo's own post-mapping oracle, independent of Tv *)
    match Techmap.Truth.equivalent ~vectors:64 mutated with
    | eq -> not eq
    | exception _ -> true
  in
  array_find_map
    (fun lid ->
      let l = lg.L.luts.(lid) in
      let nl = Array.length l.L.leaves in
      if nl = 0 then None
      else begin
        let i = Rng.int rng nl in
        array_find_map
          (fun repl ->
            if repl = l.L.root || Array.exists (fun x -> x = repl) l.L.leaves then None
            else begin
              let leaves = Array.copy l.L.leaves in
              leaves.(i) <- repl;
              let mutated =
                { lg with L.luts = Array.map (fun x -> if x.L.lid = lid then { x with L.leaves = leaves } else x) lg.L.luts }
              in
              if observable mutated then Some (mutated, lid) else None
            end)
          pool
      end)
    luts

(* ---- label swap ---- *)

let swap_label ~seed ~n_units (lg : L.t) =
  let rng = Rng.create seed in
  let aig = lg.L.synth.Synth.aig in
  let luts = shuffled_of_list rng (Array.to_list (Array.map (fun l -> l.L.lid) lg.L.luts)) in
  let units = shuffled_of_list rng (List.init n_units (fun u -> u)) in
  array_find_map
    (fun lid ->
      let l = lg.L.luts.(lid) in
      let cone_units = Labels.cone_units aig (Labels.cone aig l) in
      array_find_map
        (fun bogus ->
          if List.mem bogus cone_units || bogus = l.L.owner then None
          else
            Some
              ( { lg with L.luts = Array.map (fun x -> if x.L.lid = lid then { x with L.owner = bogus } else x) lg.L.luts },
                lid ))
        units)
    luts

(* ---- domain swap ---- *)

let swap_domain ~seed (lg : L.t) =
  let rng = Rng.create seed in
  let aig = lg.L.synth.Synth.aig in
  let luts = shuffled_of_list rng (Array.to_list (Array.map (fun l -> l.L.lid) lg.L.luts)) in
  array_find_map
    (fun lid ->
      let l = lg.L.luts.(lid) in
      let expect = Labels.cone_dom aig (Labels.cone aig l) in
      let cands =
        List.filter (fun d -> d <> expect) [ Net.Data; Net.Valid; Net.Ready; Net.Mixed ]
      in
      match cands with
      | [] -> None
      | _ ->
        let d = List.nth cands (Rng.int rng (List.length cands)) in
        Some
          ( { lg with L.luts = Array.map (fun x -> if x.L.lid = lid then { x with L.dom = d } else x) lg.L.luts },
            lid ))
    luts

(* ---- rogue / tampered buffers ---- *)

let rogue_buffer ~seed g =
  let rng = Rng.create seed in
  let unbuffered = ref [] in
  G.iter_channels g (fun c -> if c.G.buffer = None then unbuffered := c.G.cid :: !unbuffered);
  match !unbuffered with
  | [] -> None
  | cs ->
    let cands = shuffled_of_list rng cs in
    let cid = cands.(0) in
    let g' = G.copy g in
    G.set_buffer g' cid (Some { G.transparent = false; slots = 2 });
    Some (g', cid)

let tamper_slots ~seed g =
  let rng = Rng.create seed in
  match G.buffered_channels g with
  | [] -> None
  | bs ->
    let cands = shuffled_of_list rng bs in
    let cid, spec = cands.(0) in
    let g' = G.copy g in
    G.set_buffer g' cid (Some { spec with G.slots = spec.G.slots + 1 + Rng.int rng 3 });
    Some (g', cid)
