(** Random-simulation equivalence of two circuit variants.

    The translation-validation gate behind the narrowing optimizer
    ({!Absint.Narrow}): both graphs are simulated on identical initial
    memories and their observable outcomes — exit value and final memory
    contents — are compared.  Round 0 runs on zero-initialised memories,
    subsequent rounds on random images (stressing load-value masking at
    narrowed widths).  Rounds where the original does not finish within
    the cycle budget prove nothing and are skipped. *)

val default_rounds : int

val check :
  ?rounds:int ->
  ?seed:int ->
  ?config:Sim.Elastic.config ->
  original:Dataflow.Graph.t ->
  variant:Dataflow.Graph.t ->
  unit ->
  string list
(** Returns human-readable mismatch descriptions; [[]] means every
    conclusive round agreed. *)
