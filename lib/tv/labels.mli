(** Label & domain soundness pass of the translation validator.

    Recomputes every LUT's input cone with an independent walk and
    checks that (a) the recorded owner names a unit that actually
    contributes at least one cone node (owner [-1], "undetermined", is
    exempt — it has its own lint rule) and (b) the recorded timing
    domain is the join of the cone gates' domains (equal domains, or
    [Mixed] when they span domains). Both properties feed the
    [|X_fake(c)|/|X(c)|] penalty of Eq. 3, so violations corrupt the
    MILP objective silently. *)

type violation =
  | Owner_unsound of { lut : int; owner : int; cone_units : int list }
  | Domain_inconsistent of { lut : int; dom : Net.domain; expect : Net.domain }

val check : Techmap.Lutgraph.t -> violation list

val cone : Techmap.Aig.t -> Techmap.Lutgraph.lut -> int list
(** The AIG nodes strictly inside a LUT's cut (stops at leaves and at
    constant node 0), recomputed independently of the mapper. *)

val cone_units : Techmap.Aig.t -> int list -> int list
(** Sorted, deduplicated owners of a cone's nodes. *)

val cone_dom : Techmap.Aig.t -> int list -> Net.domain
(** Join of the cone nodes' domains ([Data] for an empty cone). *)
