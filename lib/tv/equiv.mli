(** Combinational-equivalence pass of the translation validator.

    Checks that the three representations the flow chains together —
    elaborated netlist, structurally-hashed/rewritten AIG, K-feasible
    LUT cover — compute the same Boolean function at every combinational
    output (primary outputs and flip-flop D inputs), and that every LUT
    implements exactly its AIG root's function.

    The cheap pass is 64-bit-parallel random simulation: each [int64]
    word carries 64 independent input lanes drawn from a seeded
    {!Support.Rng}, so signatures are deterministic and byte-identical
    at any worker-pool width. A word mismatch yields a concrete
    counterexample lane. With [exact], every witness is additionally
    replayed through the scalar oracles and the offending LUT's function
    is exhaustively re-derived from its cone (2^K cases, K <= 6) by an
    independent cone evaluator. *)

type lane = {
  lane_gates : (int * bool) list;  (** netlist Input/Ff gate id -> stimulus *)
  lane_cis : (int * bool) list;    (** AIG CI node id -> the same stimulus *)
}
(** One counterexample input assignment, in both name spaces. *)

type mismatch =
  | Aig_mismatch of { co : int; tag : int; lane : lane }
      (** netlist vs. AIG at combinational output [co] (netlist gate
          [tag]): synthesis broke the function. *)
  | Cover_mismatch of { lut : int; lane : lane }
      (** cover vs. AIG at LUT [lut] — the first topological LUT whose
          output disagrees with its root while its leaves agree. *)
  | Cover_co_mismatch of { co : int; tag : int; lane : lane }
      (** cover vs. netlist at a combinational output (wrong output
          wiring). *)
  | Cover_structural of { lut : int; reason : string }
      (** malformed cover: oversized cut, duplicate/unmapped leaf,
          broken root back-pointer, unbuildable truth table. *)

type result = {
  cos_checked : int;
  luts_checked : int;
  vectors : int;                   (** rounded up to a multiple of 64 *)
  signatures : (int * int64) list;
      (** per-CO [(netlist gate tag, semantic hash)] of the netlist
          function, in CO order *)
  mismatches : mismatch list;
  exact_checked : int;             (** witnesses replayed (exact mode) *)
  exact_confirmed : int;           (** witnesses that reproduced *)
}

val run :
  ?vectors:int -> ?seed:int -> ?exact:bool -> ?k:int -> Net.t -> Techmap.Lutgraph.t -> result
(** Validate netlist vs. [lg.synth.aig] vs. the LUT cover. [vectors]
    defaults to 256 (4 words), [seed] is fixed, [k] (default 6) bounds
    legal cut sizes, [exact] turns on witness confirmation. Emits
    [tv.*] trace counters. Raises [Failure] on a combinationally cyclic
    netlist. *)

val signature_hex : result -> string
(** All per-CO signatures folded to one 16-hex-digit digest — the
    "semantic hash" of the compile, stable across pool widths. *)

val net_signatures : ?vectors:int -> ?seed:int -> Net.t -> (int * int64) list
(** Per-CO signatures of a netlist alone (outputs then FF D inputs, by
    driving gate id). Two netlists with equal gate ids can be compared
    signature-for-signature; the mutation harness uses this to prove a
    seeded gate flip is observable. *)
