(** Buffer-insertion refinement pass of the translation validator.

    [check ~base ~buffered ~allowed] verifies that [buffered] differs
    from [base] only by buffer annotations on exactly the channels in
    [allowed], each carrying exactly the selected
    {!Dataflow.Graph.buffer_spec} (slots and transparency). Identical
    topology is required: same units (kind, label, basic block, width)
    and same channel endpoints. Buffers of [base] not mentioned in
    [allowed] must survive unchanged. *)

type violation =
  | Shape_changed of { detail : string }
  | Buffer_added of { channel : int; spec : Dataflow.Graph.buffer_spec }
      (** a buffer the selection never asked for *)
  | Buffer_removed of { channel : int }
  | Buffer_mismatch of {
      channel : int;
      got : Dataflow.Graph.buffer_spec;
      want : Dataflow.Graph.buffer_spec;
    }

val spec_str : Dataflow.Graph.buffer_spec -> string

val check :
  base:Dataflow.Graph.t ->
  buffered:Dataflow.Graph.t ->
  allowed:(Dataflow.Graph.channel_id * Dataflow.Graph.buffer_spec) list ->
  violation list
