(* Pass 2 of the translation validator: label & domain soundness of the
   LUT cover. The penalty term of Eq. 3 divides |X_fake(c)| by |X(c)|
   per unit, so a LUT attributed to a unit that contributed no gates to
   its cone, or tagged with the wrong timing domain, silently corrupts
   the MILP objective. The check recomputes each LUT's cone with an
   independent walk (same cut semantics as the mapper: stop at leaves
   and at constant node 0) and compares the recorded owner and domain
   against what the cone actually contains. *)

module L = Techmap.Lutgraph
module Aig = Techmap.Aig
module Synth = Techmap.Synth

type violation =
  | Owner_unsound of { lut : int; owner : int; cone_units : int list }
  | Domain_inconsistent of { lut : int; dom : Net.domain; expect : Net.domain }

let cone aig (l : L.lut) =
  let is_leaf = Hashtbl.create 8 in
  Array.iter (fun leaf -> Hashtbl.replace is_leaf leaf ()) l.L.leaves;
  let visited = Hashtbl.create 16 in
  let acc = ref [] in
  let rec walk u =
    if (not (Hashtbl.mem visited u)) && (not (Hashtbl.mem is_leaf u)) && u <> 0 then begin
      Hashtbl.replace visited u ();
      acc := u :: !acc;
      if not (Aig.is_ci aig u) then begin
        let f0, f1 = Aig.fanins aig u in
        walk (Aig.node_of_lit f0);
        walk (Aig.node_of_lit f1)
      end
    end
  in
  walk l.L.root;
  !acc

let cone_units aig nodes =
  List.map (fun u -> Aig.owner aig u) nodes |> List.sort_uniq compare

let cone_dom aig nodes =
  match nodes with
  | [] -> Net.Data
  | first :: rest ->
    List.fold_left
      (fun d u ->
        let du = Aig.dom aig u in
        if d = du then d else Net.Mixed)
      (Aig.dom aig first) rest

let check (lg : L.t) =
  Support.Trace.with_span ~cat:"tv" "tv:labels" @@ fun () ->
  let aig = lg.L.synth.Synth.aig in
  let violations = ref [] in
  Array.iter
    (fun (l : L.lut) ->
      let nodes = cone aig l in
      let units = cone_units aig nodes in
      (* owner -1 means "undetermined" and is audited elsewhere
         ([lut-owner-undetermined]); a concrete owner must be a unit
         that actually contributed at least one cone node *)
      if l.L.owner >= 0 && not (List.mem l.L.owner units) then
        violations :=
          Owner_unsound { lut = l.L.lid; owner = l.L.owner; cone_units = units } :: !violations;
      let expect = cone_dom aig nodes in
      if l.L.dom <> expect then
        violations := Domain_inconsistent { lut = l.L.lid; dom = l.L.dom; expect } :: !violations)
    lg.L.luts;
  let vs = List.rev !violations in
  Support.Trace.add "tv.label.violations" (List.length vs);
  vs
