(* Random-simulation equivalence of two circuit variants (the translation
   validation gate behind [Absint.Narrow]): simulate both on the same
   initial memories and compare the observable outcome — exit value and
   final memory state.

   Round 0 uses the declared zero-initialised memories (the semantics the
   kernels' reference values are defined against); the remaining rounds
   draw random memory images, which in particular exercises load-value
   masking at narrowed widths.  A round where the original does not finish
   within the cycle budget proves nothing about the variant and is
   skipped. *)

module G = Dataflow.Graph

let default_rounds = 3

let mems_of ~random rng g =
  List.map
    (fun (name, size) ->
      let a = Array.make size 0 in
      if random then
        for i = 0 to size - 1 do
          a.(i) <- Support.Rng.int rng 65536
        done;
      (name, a))
    (G.memories g)

let check ?(rounds = default_rounds) ?(seed = 0xd1ff) ?config ~original ~variant () =
  let config =
    match config with
    | Some c -> c
    | None -> { Sim.Elastic.max_cycles = 200_000; deadlock_window = 256 }
  in
  let mismatches = ref [] in
  let add fmt = Printf.ksprintf (fun s -> mismatches := s :: !mismatches) fmt in
  for round = 0 to rounds - 1 do
    let rng = Support.Rng.create (seed + (round * 7919)) in
    let m1 = mems_of ~random:(round > 0) rng original in
    let m2 = List.map (fun (n, a) -> (n, Array.copy a)) m1 in
    let r1 = Sim.Elastic.run ~config ~memories:m1 original in
    if r1.Sim.Elastic.finished then begin
      let r2 = Sim.Elastic.run ~config ~memories:m2 variant in
      if not r2.Sim.Elastic.finished then
        add "round %d: original finished (exit %s) but variant %s" round
          (match r1.Sim.Elastic.exit_value with Some v -> string_of_int v | None -> "?")
          (if r2.Sim.Elastic.deadlocked then "deadlocked" else "timed out")
      else begin
        if r1.Sim.Elastic.exit_value <> r2.Sim.Elastic.exit_value then
          add "round %d: exit value %s <> %s" round
            (match r1.Sim.Elastic.exit_value with Some v -> string_of_int v | None -> "none")
            (match r2.Sim.Elastic.exit_value with Some v -> string_of_int v | None -> "none");
        List.iter
          (fun (name, a1) ->
            match List.assoc_opt name m2 with
            | Some a2 ->
                (* cap the noise; one differing cell is already fatal *)
                Array.iteri
                  (fun i v1 ->
                    if a2.(i) <> v1 && List.length !mismatches < 8 then
                      add "round %d: memory %s[%d] = %d <> %d" round name i v1 a2.(i))
                  a1
            | None -> add "round %d: memory %s missing in variant" round name)
          m1
      end
    end
  done;
  List.rev !mismatches
