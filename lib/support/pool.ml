(* A small fixed-width domain pool. Tasks are packaged as [unit -> unit]
   closures that run the user thunk and store its outcome into the
   future's cell, so one queue carries heterogeneously typed tasks. *)

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  f_mutex : Mutex.t;
  f_cond : Condition.t;
  mutable f_state : 'a state;
}

type t = {
  width : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;  (* a task was queued, or shutdown began *)
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  mutable worker_ids : Domain.id list;
  (* [jobs = 1] runs tasks in place; this flag is how the sequential pool
     detects (and rejects) nested submission, mirroring the worker-domain
     check of the parallel pool. *)
  mutable in_place_task : bool;
}

let fulfil fut outcome =
  Mutex.protect fut.f_mutex (fun () ->
      fut.f_state <- outcome;
      Condition.broadcast fut.f_cond)

let run_task fut thunk =
  match thunk () with
  | v -> fulfil fut (Done v)
  | exception e -> fulfil fut (Failed (e, Printexc.get_raw_backtrace ()))

let worker_loop pool () =
  let rec next () =
    Mutex.lock pool.mutex;
    let rec take () =
      match Queue.take_opt pool.queue with
      | Some task -> Some task
      | None ->
        if pool.closed then None
        else begin
          Condition.wait pool.nonempty pool.mutex;
          take ()
        end
    in
    let task = take () in
    Mutex.unlock pool.mutex;
    match task with
    | None -> ()
    | Some task ->
      task ();
      next ()
  in
  next ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      width = jobs;
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      closed = false;
      workers = [];
      worker_ids = [];
      in_place_task = false;
    }
  in
  if jobs > 1 then begin
    pool.workers <- List.init jobs (fun _ -> Domain.spawn (worker_loop pool));
    pool.worker_ids <- List.map Domain.get_id pool.workers
  end;
  pool

let jobs t = t.width

let submit t thunk =
  if t.width = 1 then begin
    if t.in_place_task then
      invalid_arg "Pool.submit: nested submission from inside a task";
    if t.closed then invalid_arg "Pool.submit: pool is shut down";
    let fut = { f_mutex = Mutex.create (); f_cond = Condition.create (); f_state = Pending } in
    t.in_place_task <- true;
    Fun.protect ~finally:(fun () -> t.in_place_task <- false) (fun () -> run_task fut thunk);
    fut
  end
  else begin
    if List.mem (Domain.self ()) t.worker_ids then
      invalid_arg "Pool.submit: nested submission from inside a task";
    let fut = { f_mutex = Mutex.create (); f_cond = Condition.create (); f_state = Pending } in
    Mutex.lock t.mutex;
    if t.closed then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.submit: pool is shut down"
    end;
    Queue.add (fun () -> run_task fut thunk) t.queue;
    Condition.signal t.nonempty;
    Mutex.unlock t.mutex;
    fut
  end

let pending fut = match fut.f_state with Pending -> true | Done _ | Failed _ -> false

let await fut =
  Mutex.lock fut.f_mutex;
  while pending fut do
    Condition.wait fut.f_cond fut.f_mutex
  done;
  let state = fut.f_state in
  Mutex.unlock fut.f_mutex;
  match state with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let map_list t f xs = List.map (fun x -> submit t (fun () -> f x)) xs |> List.map await

let shutdown t =
  if t.width > 1 then begin
    Mutex.lock t.mutex;
    let was_closed = t.closed in
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    if not was_closed then List.iter Domain.join t.workers
  end
  else t.closed <- true

let run ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let default_jobs () =
  match Sys.getenv_opt "REPRO_JOBS" with
  | None -> 1
  | Some s -> ( match int_of_string_opt (String.trim s) with Some j when j >= 1 -> j | _ -> 1)
