(** Fixed-size domain worker pool with futures.

    Built for the embarrassingly parallel shape of the evaluation: many
    independent synthesise → solve → check flows whose results must come
    back in a deterministic order. Tasks are submitted as thunks and run
    on [jobs] worker domains; {!await} blocks until the task finished and
    re-raises (with its original backtrace) any exception the task threw.

    Determinism contract: the pool never reorders {e results} — a future
    holds the result of exactly the thunk it was submitted for, so
    awaiting futures in submission order yields submission-order results
    regardless of completion order ({!map_list} does exactly that).

    [jobs = 1] degrades to in-place sequential execution on the calling
    domain: {!submit} runs the thunk immediately and {!await} just
    unwraps, so a single-job pool is behaviourally identical to
    [List.map] — no domains are spawned and determinism is trivial.

    Nested submission is {e rejected}, at every width: a task may not
    submit to the pool it is running on ([Invalid_argument]). Supporting
    it on a fixed-width pool invites deadlock (all workers blocked in
    [await] on tasks that no free worker can pick up), and the flows this
    pool exists for have a flat task structure; rejecting uniformly also
    keeps [jobs = 1] and [jobs > 1] observationally identical. Submit
    from the coordinating domain only. *)

type t
(** A pool of worker domains (or the sequential in-place pool). *)

type 'a future
(** The pending (or completed) result of a submitted task. *)

val create : jobs:int -> t
(** [create ~jobs]: [jobs >= 2] spawns [jobs] worker domains; [jobs = 1]
    spawns none and executes tasks in place at submission. Raises
    [Invalid_argument] if [jobs < 1]. *)

val jobs : t -> int
(** The width the pool was created with. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task. Raises [Invalid_argument] if called from inside a
    task of the same pool (see the nested-submission note above) or
    after {!shutdown}. *)

val await : 'a future -> 'a
(** Block until the task completed; return its result or re-raise its
    exception with the original backtrace. Idempotent. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list t f xs] submits [f x] for every element and awaits them in
    submission order: a parallel [List.map] with deterministic output
    order. *)

val shutdown : t -> unit
(** Wait for queued tasks to finish and join the workers. Idempotent;
    further {!submit}s raise. *)

val run : jobs:int -> (t -> 'a) -> 'a
(** [run ~jobs f] brackets [create]/[shutdown] around [f] (shutdown also
    on exception). *)

val default_jobs : unit -> int
(** Pool width from the [REPRO_JOBS] environment variable (clamped to at
    least 1); [1] when unset or unparsable. *)
