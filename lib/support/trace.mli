(** Flow-wide hierarchical tracing and metrics.

    A process-global span + counter layer for the whole flow: every
    stage of {!Core.Flow}, the MILP solver, the LUT mapper, placement
    STA and the lint gates record hierarchical spans and named counters
    into {e per-domain} buffers, which {!stop} merges into one report
    with two sinks — Chrome trace-event JSON (loadable in
    [chrome://tracing] or Perfetto) and a flat per-stage summary table
    (call counts, total and self time).

    {b Zero-cost when disabled.} Tracing is off until {!start}; every
    primitive first reads one atomic flag and returns, allocating
    nothing, so permanently-instrumented hot paths cost one load.

    {b Domain safety.} Each domain owns its buffer (domain-local
    storage), so recording never takes a lock and composes with
    {!Pool}: a task's spans land on its worker's buffer. Spans nest per
    domain via a thread-local stack; to nest tasks under the submitting
    span at any pool width, capture {!current_context} before
    submitting and wrap the task body in {!with_context}. {!start} and
    {!stop} must be called from the main domain, and {!stop} only after
    every pool that traced has been shut down (its worker domains
    joined) — {!Pool.run} guarantees that on return.

    Chrome cannot draw cross-track arrows, so a task span on a worker
    track is not visually nested under its submitter; the logical
    parent is recorded in each event's [args.parent] and drives the
    self-time attribution of the summary table. *)

val enabled : unit -> bool
(** Whether a trace session is running. *)

val start : unit -> unit
(** Begin a trace session: reset all buffers (a new generation) and
    enable recording. Main domain only. *)

val with_span : ?cat:string -> string -> (unit -> 'a) -> 'a
(** [with_span ~cat name f] runs [f ()] inside a span named [name]
    (category [cat], default ["flow"]). The span closes when [f]
    returns {e or raises}; nesting follows the calling domain's span
    stack. When disabled this is exactly [f ()]. *)

val timed : ?cat:string -> string -> (unit -> 'a) -> 'a * float
(** [timed ~cat name f] is [with_span ~cat name f] that additionally
    returns the elapsed wall-clock seconds — measured whether or not
    tracing is enabled, so callers can keep their timing output
    identical while the span only exists under [--trace]. *)

val add : string -> int -> unit
(** [add name n] adds [n] to counter [name] on the calling domain's
    buffer (merged by summation at {!stop}). No-op when disabled. *)

type context
(** The calling domain's current span path, for re-rooting task spans
    submitted to a pool. *)

val current_context : unit -> context
val with_context : context -> (unit -> 'a) -> 'a
(** [with_context ctx f] runs [f] with [ctx] as the logical span path:
    root spans opened inside [f] report the innermost span of [ctx] as
    parent, at the matching depth, whichever domain runs [f]. The
    domain's own stack is saved and restored around [f]. *)

(** {1 Reports} *)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_tid : int;  (** the recording domain's id *)
  sp_start : float;  (** absolute seconds (epoch) *)
  sp_stop : float;
  sp_depth : int;
  sp_parent : string option;  (** logical parent span name *)
}

type report = {
  r_t0 : float;  (** absolute time of {!start} *)
  r_wall : float;  (** seconds from {!start} to {!stop} *)
  r_spans : span list;  (** sorted by start time *)
  r_counters : (string * int) list;  (** summed across domains, sorted by name *)
}

val stop : unit -> report
(** Disable recording and merge every domain buffer of the current
    session. Main domain only; see the header for the pool-shutdown
    precondition. *)

type row = {
  row_name : string;
  row_calls : int;
  row_total : float;  (** summed span seconds *)
  row_self : float;  (** total minus direct children (clamped at 0) *)
}

val summary : report -> row list
(** Per-stage aggregation of the report's spans, largest total first.
    Self time subtracts direct children by parent name; with parallel
    children (a pool fan-out) a parent's children can overlap it, which
    clamps its self time to 0. *)

val counter : report -> string -> int
(** Merged value of a counter; 0 when never touched. *)

val pp_summary : Format.formatter -> report -> unit
(** The flat per-stage table (calls, total ms, self ms) followed by the
    counters. Intended for stderr: stdout stays byte-identical. *)

val to_chrome_json : report -> string
(** Chrome trace-event JSON: one ["X"] (complete) event per span, one
    ["C"] (counter) event per merged counter, plus an [otherData]
    object carrying [wall_s], the merged counters and the summary rows
    (machine-readable for CI guards). *)

val write_chrome_json : report -> string -> unit
(** [write_chrome_json r path] creates [path]'s parent directories as
    needed and writes {!to_chrome_json}. Raises [Sys_error] with a
    plain message on an unwritable path (no backtraces). *)

val ensure_parent_dir : string -> unit
(** [ensure_parent_dir path] creates the missing parent directories of
    [path] ([mkdir -p] of [dirname path]). Raises [Sys_error] on
    failure. Shared by every output-file flag of the CLIs. *)
