(* Per-domain buffers keyed by domain-local storage: recording is
   lock-free; the registry (one mutex, touched once per domain) only
   exists so [stop] can find every buffer. Sessions are generations —
   [start] bumps the generation and buffers lazily reset on first use,
   so stale events from a previous session can never leak into a
   report even though domain-local storage outlives it. *)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_tid : int;
  sp_start : float;
  sp_stop : float;
  sp_depth : int;
  sp_parent : string option;
}

type report = {
  r_t0 : float;
  r_wall : float;
  r_spans : span list;
  r_counters : (string * int) list;
}

type buf = {
  b_tid : int;
  mutable b_gen : int;
  mutable b_stack : string list;  (* innermost first *)
  mutable b_base : string list;  (* context path under the stack *)
  mutable b_spans : span list;  (* reverse completion order *)
  b_counters : (string, int) Hashtbl.t;
}

let enabled_flag = Atomic.make false
let generation = Atomic.make 0
let session_t0 = Atomic.make 0.
let registry : buf list ref = ref []
let registry_mutex = Mutex.create ()
let now = Unix.gettimeofday

let key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          b_tid = (Domain.self () :> int);
          b_gen = -1;
          b_stack = [];
          b_base = [];
          b_spans = [];
          b_counters = Hashtbl.create 16;
        }
      in
      Mutex.protect registry_mutex (fun () -> registry := b :: !registry);
      b)

let buffer () =
  let b = Domain.DLS.get key in
  let gen = Atomic.get generation in
  if b.b_gen <> gen then begin
    b.b_gen <- gen;
    b.b_stack <- [];
    b.b_base <- [];
    b.b_spans <- [];
    Hashtbl.reset b.b_counters
  end;
  b

let enabled () = Atomic.get enabled_flag

let start () =
  Atomic.incr generation;
  Atomic.set session_t0 (now ());
  Atomic.set enabled_flag true

let add name n =
  if Atomic.get enabled_flag then begin
    let b = buffer () in
    Hashtbl.replace b.b_counters name
      (n + Option.value (Hashtbl.find_opt b.b_counters name) ~default:0)
  end

let with_span ?(cat = "flow") name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let b = buffer () in
    let parent =
      match b.b_stack with
      | p :: _ -> Some p
      | [] -> ( match b.b_base with p :: _ -> Some p | [] -> None)
    in
    let depth = List.length b.b_stack + List.length b.b_base in
    let t_start = now () in
    b.b_stack <- name :: b.b_stack;
    let finish () =
      (match b.b_stack with _ :: tl -> b.b_stack <- tl | [] -> ());
      b.b_spans <-
        {
          sp_name = name;
          sp_cat = cat;
          sp_tid = b.b_tid;
          sp_start = t_start;
          sp_stop = now ();
          sp_depth = depth;
          sp_parent = parent;
        }
        :: b.b_spans
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let timed ?cat name f =
  let t0 = now () in
  let v = with_span ?cat name f in
  (v, now () -. t0)

type context = string list

let current_context () =
  if not (Atomic.get enabled_flag) then []
  else
    let b = buffer () in
    b.b_stack @ b.b_base

let with_context ctx f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let b = buffer () in
    let saved_stack = b.b_stack and saved_base = b.b_base in
    b.b_stack <- [];
    b.b_base <- ctx;
    let finish () =
      b.b_stack <- saved_stack;
      b.b_base <- saved_base
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let stop () =
  let t0 = Atomic.get session_t0 in
  let wall = now () -. t0 in
  Atomic.set enabled_flag false;
  let gen = Atomic.get generation in
  let bufs =
    Mutex.protect registry_mutex (fun () -> List.filter (fun b -> b.b_gen = gen) !registry)
  in
  let spans =
    List.concat_map (fun b -> b.b_spans) bufs
    |> List.sort (fun a b ->
           match compare a.sp_start b.sp_start with 0 -> compare a.sp_tid b.sp_tid | c -> c)
  in
  let totals = Hashtbl.create 16 in
  List.iter
    (fun b ->
      Hashtbl.iter
        (fun k v ->
          Hashtbl.replace totals k (v + Option.value (Hashtbl.find_opt totals k) ~default:0))
        b.b_counters)
    bufs;
  let counters = Hashtbl.fold (fun k v acc -> (k, v) :: acc) totals [] |> List.sort compare in
  { r_t0 = t0; r_wall = wall; r_spans = spans; r_counters = counters }

(* ---- summary sink ---- *)

type row = { row_name : string; row_calls : int; row_total : float; row_self : float }

type agg = { mutable ag_calls : int; mutable ag_total : float; mutable ag_child : float }

let summary r =
  let tbl = Hashtbl.create 32 in
  let get name =
    match Hashtbl.find_opt tbl name with
    | Some e -> e
    | None ->
      let e = { ag_calls = 0; ag_total = 0.; ag_child = 0. } in
      Hashtbl.replace tbl name e;
      e
  in
  List.iter
    (fun s ->
      let d = s.sp_stop -. s.sp_start in
      let e = get s.sp_name in
      e.ag_calls <- e.ag_calls + 1;
      e.ag_total <- e.ag_total +. d;
      match s.sp_parent with
      | None -> ()
      | Some p ->
        let pe = get p in
        pe.ag_child <- pe.ag_child +. d)
    r.r_spans;
  Hashtbl.fold
    (fun name e acc ->
      if e.ag_calls = 0 then acc (* parent referenced but its span never closed *)
      else
        {
          row_name = name;
          row_calls = e.ag_calls;
          row_total = e.ag_total;
          row_self = Float.max 0. (e.ag_total -. e.ag_child);
        }
        :: acc)
    tbl []
  |> List.sort (fun a b ->
         match compare b.row_total a.row_total with
         | 0 -> compare a.row_name b.row_name
         | c -> c)

let counter r name = Option.value (List.assoc_opt name r.r_counters) ~default:0

let pp_summary fmt r =
  Format.fprintf fmt "[trace] wall %.3fs, %d spans, %d counters@\n" r.r_wall
    (List.length r.r_spans) (List.length r.r_counters);
  Format.fprintf fmt "[trace] %-36s %7s %12s %12s@\n" "stage" "calls" "total(ms)" "self(ms)";
  List.iter
    (fun row ->
      Format.fprintf fmt "[trace] %-36s %7d %12.2f %12.2f@\n" row.row_name row.row_calls
        (row.row_total *. 1000.) (row.row_self *. 1000.))
    (summary r);
  if r.r_counters <> [] then begin
    Format.fprintf fmt "[trace] %-36s %12s@\n" "counter" "value";
    List.iter
      (fun (k, v) -> Format.fprintf fmt "[trace] %-36s %12d@\n" k v)
      r.r_counters
  end

(* ---- Chrome trace-event sink ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_chrome_json r =
  let b = Buffer.create 8192 in
  let us t = (t -. r.r_t0) *. 1e6 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_char b ',' in
  List.iter
    (fun s ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"parent\":%s,\"depth\":%d}}"
           (json_escape s.sp_name) (json_escape s.sp_cat) (us s.sp_start)
           ((s.sp_stop -. s.sp_start) *. 1e6)
           s.sp_tid
           (match s.sp_parent with
           | None -> "null"
           | Some p -> "\"" ^ json_escape p ^ "\"")
           s.sp_depth))
    r.r_spans;
  List.iter
    (fun (k, v) ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"tid\":0,\"args\":{\"value\":%d}}"
           (json_escape k) (r.r_wall *. 1e6) v))
    r.r_counters;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\",\"otherData\":{";
  Buffer.add_string b (Printf.sprintf "\"wall_s\":%.6f,\"counters\":{" r.r_wall);
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (json_escape k) v))
    r.r_counters;
  Buffer.add_string b "},\"summary\":[";
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"name\":\"%s\",\"calls\":%d,\"total_ms\":%.3f,\"self_ms\":%.3f}"
           (json_escape row.row_name) row.row_calls (row.row_total *. 1000.)
           (row.row_self *. 1000.)))
    (summary r);
  Buffer.add_string b "]}}";
  Buffer.contents b

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | Unix.Unix_error (e, _, _) ->
      raise (Sys_error (Printf.sprintf "%s: %s" dir (Unix.error_message e)))
  end

let ensure_parent_dir path = mkdir_p (Filename.dirname path)

let write_chrome_json r path =
  ensure_parent_dir path;
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_chrome_json r))
