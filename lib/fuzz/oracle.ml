module G = Dataflow.Graph
module C = Analysis.Certify

type check = { kind : string; flavor : string; detail : string }

type report = {
  seed : int;
  features : (string * int) list;
  violations : check list;
  explained : check list;
  source : string;
}

let flow_config =
  {
    Core.Flow.default_config with
    Core.Flow.max_iterations = 2;
    (* optimality is irrelevant to the oracle — every invariant must hold
       for whatever incumbent the budget produces — so the node budget is
       tiny and the campaign's cost stays dominated by synthesis/sim *)
    milp = { Core.Flow.default_config.Core.Flow.milp with Buffering.Formulation.node_limit = 32 };
  }

let sim_config = { Sim.Elastic.default_config with Sim.Elastic.max_cycles = 200_000 }

let is_explained_failure msg =
  let has sub =
    let n = String.length sub and m = String.length msg in
    let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
    go 0
  in
  has "node budget exhausted" || has "budget exhausted" || has "MILP infeasible"

(* The per-SCC steady-state bound equalizes rates only in choice-free
   circuits. A nested loop merges the inner loop into the outer loop's
   SCC, and the inner channels legitimately sustain a higher rate than
   the SCC's worst cycle ratio — so the sim-vs-bound invariant is only
   sound (and only checked) on nesting-free programs. *)
let has_nested_loops (f : Hls.Ast.func) =
  let rec stmt ~in_loop = function
    | Hls.Ast.While (_, b) | Hls.Ast.For (_, _, _, b) -> in_loop || stmts ~in_loop:true b
    | Hls.Ast.If (_, t, e) -> stmts ~in_loop t || stmts ~in_loop e
    | _ -> false
  and stmts ~in_loop ss = List.exists (stmt ~in_loop) ss in
  stmts ~in_loop:false f.Hls.Ast.body

(* A canonical, byte-comparable digest of everything a flow run decides.
   Cold and warm (cache-hit) runs must produce the same string. *)
let summary_of_outcome (o : Core.Flow.outcome) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "levels=%d buffers=%d met=%b cert=%.9f live=%b\n" o.Core.Flow.final_levels
       o.Core.Flow.total_buffers o.Core.Flow.met_target o.Core.Flow.certified.C.throughput
       o.Core.Flow.certified.C.live);
  List.iter
    (fun (it : Core.Flow.iteration) ->
      Buffer.add_string b
        (Printf.sprintf "it%d: phi=%.9f obj=%.9f bound=%.9f levels=%d proposed=%d kept=%d\n"
           it.Core.Flow.it_index it.Core.Flow.milp_phi it.Core.Flow.milp_objective
           it.Core.Flow.certified_bound it.Core.Flow.achieved_levels
           it.Core.Flow.proposed_buffers it.Core.Flow.kept_as_fixed))
    o.Core.Flow.iterations;
  let bufs =
    List.sort compare
      (List.map
         (fun (c, (s : G.buffer_spec)) -> (c, s.G.transparent, s.G.slots))
         (G.buffered_channels o.Core.Flow.graph))
  in
  List.iter
    (fun (c, t, s) -> Buffer.add_string b (Printf.sprintf "c%d:%b:%d\n" c t s))
    bufs;
  Buffer.contents b

(* transfers on intra-SCC channels never exceed bound * cycles (+ slack
   for pipeline fill): the simulator must not outrun the certificate *)
let check_sim_bound (cert : C.t) (sim : Sim.Elastic.result) g =
  let cycles = float_of_int sim.Sim.Elastic.cycles in
  let bad = ref [] in
  List.iter
    (fun (s : C.scc_cert) ->
      let members = Hashtbl.create 16 in
      List.iter (fun u -> Hashtbl.replace members u ()) s.C.sc_units;
      G.iter_channels g (fun ch ->
          if Hashtbl.mem members ch.G.src && Hashtbl.mem members ch.G.dst then begin
            let t = sim.Sim.Elastic.channel_stats.(ch.G.cid).Sim.Elastic.cs_transfers in
            if float_of_int t > (s.C.sc_bound *. cycles) +. 4. then
              bad :=
                Printf.sprintf "c%d: %d transfers > %.4f*%d+4" ch.G.cid t s.C.sc_bound
                  sim.Sim.Elastic.cycles
                :: !bad
          end))
    cert.C.sccs;
  !bad

let mems_equal a b =
  List.length a = List.length b
  && List.for_all
       (fun (n, arr) ->
         match List.assoc_opt n b with Some arr' -> arr = arr' | None -> false)
       a

let pp_mems fmt ms =
  List.iter
    (fun (n, arr) ->
      Format.fprintf fmt "%s=[%s] " n
        (String.concat "," (List.map string_of_int (Array.to_list arr))))
    ms

let check_program ?(config = flow_config) ?(mutations = 2) (p : Hls.Generate.program) =
  let seed = p.Hls.Generate.seed in
  let violations = ref [] in
  let explained = ref [] in
  let fail ~flavor kind detail = violations := { kind; flavor; detail } :: !violations in
  let explain ~flavor kind detail = explained := { kind; flavor; detail } :: !explained in
  Support.Trace.add "fuzz.kernels" 1;
  (* front end: round-trip, reference run, compile *)
  (try
     if Hls.Parser.parse p.Hls.Generate.source <> p.Hls.Generate.func then
       fail ~flavor:"front-end" "parse-roundtrip" "re-parsed AST differs"
   with e ->
     fail ~flavor:"front-end" "parse-roundtrip" (Printexc.to_string e));
  let ref_mems = Hls.Generate.fresh_memories p in
  let reference =
    try Some (Hls.Interp.run p.Hls.Generate.func ~args:p.Hls.Generate.args ~memories:ref_mems)
    with e ->
      fail ~flavor:"front-end" "interp-error" (Printexc.to_string e);
      None
  in
  let graph =
    try
      let g = Hls.Compile.compile ~args:p.Hls.Generate.args p.Hls.Generate.func in
      (match G.validate g with
      | Ok () -> ()
      | Error m -> fail ~flavor:"front-end" "invalid-graph" m);
      Some g
    with e ->
      fail ~flavor:"front-end" "compile-error" (Printexc.to_string e);
      None
  in
  (match (graph, reference) with
  | Some g0, Some ref_value ->
    (* narrowing differential: the Absint.Narrow rewrite alone (no
       buffering, so failures implicate the analysis and not the MILP)
       must keep the interpreter's exit value and memory state, and
       random simulation against the un-narrowed graph must agree. *)
    (let flavor = "narrow" in
     try
       let gs = G.copy g0 in
       ignore (Core.Flow.seed_back_edges gs);
       let res = Absint.Analyze.run gs in
       let gn, report = Absint.Narrow.run res gs in
       if Absint.Narrow.changed report then begin
         Support.Trace.add "fuzz.narrowed" 1;
         (match Tv.Simdiff.check ~seed:(0xab51 + seed) ~original:gs ~variant:gn () with
         | [] -> ()
         | msgs -> fail ~flavor "narrow-equiv" (String.concat "; " msgs));
         let nm = Hls.Generate.fresh_memories p in
         match Sim.Elastic.run ~config:sim_config ~memories:nm gn with
         | exception e -> fail ~flavor "narrow-sim-error" (Printexc.to_string e)
         | simn ->
           if simn.Sim.Elastic.deadlocked then
             fail ~flavor "narrow-deadlock"
               (Printf.sprintf "after %d cycles" simn.Sim.Elastic.cycles)
           else if not simn.Sim.Elastic.finished then
             fail ~flavor "narrow-timeout" (Printf.sprintf "%d cycles" simn.Sim.Elastic.cycles)
           else begin
             (match simn.Sim.Elastic.exit_value with
             | Some v when v = ref_value -> ()
             | v ->
               fail ~flavor "narrow-value-mismatch"
                 (Printf.sprintf "sim=%s interp=%d"
                    (match v with Some v -> string_of_int v | None -> "none")
                    ref_value));
             if not (mems_equal ref_mems nm) then
               fail ~flavor "narrow-memory-mismatch"
                 (Format.asprintf "interp: %a/ sim: %a" pp_mems ref_mems pp_mems nm)
           end
       end
     with e -> fail ~flavor "narrow-error" (Printexc.to_string e));
    let run_flavor (flavor, flow) =
      let fail k d = fail ~flavor k d in
      match flow ~config (G.copy g0) with
      | exception Lint.Engine.Lint_error rep ->
        fail "lint-gate" (Format.asprintf "%a" Lint.Engine.pp_report rep)
      | exception Failure msg ->
        if is_explained_failure msg then explain ~flavor "milp-budget" msg
        else fail "flow-error" msg
      | exception e -> fail "flow-error" (Printexc.to_string e)
      | o ->
        Support.Trace.add "fuzz.flows" 1;
        List.iter
          (fun (it : Core.Flow.iteration) ->
            if it.Core.Flow.milp_phi > it.Core.Flow.certified_bound +. 1e-4 then
              fail "phi-exceeds-bound"
                (Printf.sprintf "it%d: phi %.6f > bound %.6f" it.Core.Flow.it_index
                   it.Core.Flow.milp_phi it.Core.Flow.certified_bound))
          o.Core.Flow.iterations;
        if o.Core.Flow.met_target <> (o.Core.Flow.final_levels <= config.Core.Flow.target_levels)
        then
          fail "target-inconsistent"
            (Printf.sprintf "met=%b but levels=%d target=%d" o.Core.Flow.met_target
               o.Core.Flow.final_levels config.Core.Flow.target_levels);
        if not o.Core.Flow.certified.C.live then
          fail "not-live"
            (Format.asprintf "%a" C.pp o.Core.Flow.certified)
        else begin
          let sim_mems = Hls.Generate.fresh_memories p in
          match Sim.Elastic.run ~config:sim_config ~memories:sim_mems o.Core.Flow.graph with
          | exception e -> fail "sim-error" (Printexc.to_string e)
          | sim ->
            if sim.Sim.Elastic.deadlocked then
              fail "sim-deadlock" (Printf.sprintf "after %d cycles" sim.Sim.Elastic.cycles)
            else if not sim.Sim.Elastic.finished then
              fail "sim-timeout" (Printf.sprintf "%d cycles" sim.Sim.Elastic.cycles)
            else begin
              (match sim.Sim.Elastic.exit_value with
              | Some v when v = ref_value -> ()
              | v ->
                fail "value-mismatch"
                  (Printf.sprintf "sim=%s interp=%d"
                     (match v with Some v -> string_of_int v | None -> "none")
                     ref_value));
              if not (mems_equal ref_mems sim_mems) then
                fail "memory-mismatch"
                  (Format.asprintf "interp: %a/ sim: %a" pp_mems ref_mems pp_mems sim_mems);
              if not (has_nested_loops p.Hls.Generate.func) then
                List.iter (fail "sim-beats-bound")
                  (check_sim_bound o.Core.Flow.certified sim o.Core.Flow.graph)
            end
        end;
        (* warm re-run: with the cache on, the second run hits the memo
           tables and must decide byte-identically *)
        if Cache.Control.enabled () then begin
          match flow ~config (G.copy g0) with
          | exception e -> fail "cache-divergence" ("warm run raised " ^ Printexc.to_string e)
          | o2 ->
            let cold = summary_of_outcome o and warm = summary_of_outcome o2 in
            if cold <> warm then
              fail "cache-divergence" (Printf.sprintf "cold:\n%s\nwarm:\n%s" cold warm)
        end;
        (* additive mutants of the final circuit stay equivalent *)
        if mutations > 0 && o.Core.Flow.certified.C.live then begin
          let rng = Support.Rng.create (0xf022 + (seed * 31)) in
          for k = 1 to mutations do
            let muts = Mutate.random rng o.Core.Flow.graph (1 + Support.Rng.int rng 3) in
            let gm = Mutate.apply o.Core.Flow.graph muts in
            let describe () =
              String.concat ";" (List.map (Format.asprintf "%a" Mutate.pp) muts)
            in
            Support.Trace.add "fuzz.mutants" 1;
            let certm = C.certify ~karp:false gm in
            if not certm.C.live then
              fail "mutant-not-live" (Printf.sprintf "mutant %d: %s" k (describe ()));
            let mm = Hls.Generate.fresh_memories p in
            match Sim.Elastic.run ~config:sim_config ~memories:mm gm with
            | exception e ->
              fail "mutant-sim-error" (Printf.sprintf "mutant %d (%s): %s" k (describe ()) (Printexc.to_string e))
            | simm ->
              if (not simm.Sim.Elastic.finished) || simm.Sim.Elastic.deadlocked then
                fail "mutant-deadlock" (Printf.sprintf "mutant %d: %s" k (describe ()))
              else if simm.Sim.Elastic.exit_value <> Some ref_value then
                fail "mutant-value-mismatch"
                  (Printf.sprintf "mutant %d (%s): sim=%s interp=%d" k (describe ())
                     (match simm.Sim.Elastic.exit_value with
                     | Some v -> string_of_int v
                     | None -> "none")
                     ref_value)
              else if not (mems_equal ref_mems mm) then
                fail "mutant-memory-mismatch" (Printf.sprintf "mutant %d: %s" k (describe ()))
          done
        end
    in
    List.iter run_flavor
      [
        ("iterative", fun ~config g -> Core.Flow.iterative ~config g);
        ("baseline", fun ~config g -> Core.Flow.baseline ~config g);
      ]
  | _ -> ());
  if !violations <> [] then Support.Trace.add "fuzz.violations" (List.length !violations);
  {
    seed;
    features = p.Hls.Generate.features;
    violations = List.rev !violations;
    explained = List.rev !explained;
    source = p.Hls.Generate.source;
  }

let check ?gen_cfg ?config ?mutations seed =
  let p =
    match gen_cfg with
    | None -> Hls.Generate.generate seed
    | Some cfg -> Hls.Generate.generate ~cfg seed
  in
  check_program ?config ?mutations p
