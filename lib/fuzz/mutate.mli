(** DFG-level mutation: perturb a buffered circuit without changing what
    it computes.

    Every mutation only {e adds} storage — an opaque buffer (latency and
    capacity), a transparent buffer (capacity only) or extra slots on an
    existing buffer. By latency-insensitivity these cannot change the
    exit value of a live circuit, and added capacity cannot introduce
    deadlock — so the oracle's expectation for any mutant is simple:
    same exit value, same final memories, still live. A mutant that
    violates it exposes a protocol bug in the simulator, the netlist
    semantics or the certifier. *)

type mutation =
  | Add_opaque of Dataflow.Graph.channel_id * int      (** slots *)
  | Add_transparent of Dataflow.Graph.channel_id * int
  | Widen of Dataflow.Graph.channel_id * int           (** extra slots *)

val pp : Format.formatter -> mutation -> unit

val random : Support.Rng.t -> Dataflow.Graph.t -> int -> mutation list
(** [random rng g n] draws [n] mutations targeting channels of [g]
    (deterministic in the RNG state). *)

val apply : Dataflow.Graph.t -> mutation list -> Dataflow.Graph.t
(** Apply to a deep copy; the input graph is untouched. A mutation on an
    already-buffered channel degrades gracefully (widens / upgrades the
    existing buffer) so any list is applicable to any graph. *)
