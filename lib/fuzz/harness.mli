(** Campaign driver: pump seed ranges through the {!Oracle} on a
    {!Support.Pool}, collect coverage and failure statistics, and
    auto-minimize every violation into a repro.

    Determinism contract: a campaign over the same seed range with the
    same configuration produces the same statistics and findings at any
    pool width — each seed's work is self-contained, and results are
    folded in submission order. The wall-clock budget is the one
    non-deterministic input; it only truncates the seed range (always at
    a batch boundary), and the number of kernels actually checked is
    part of the stats. *)

type finding = {
  f_seed : int;
  f_kind : string;         (** violation kind ({!Oracle.check.kind}) *)
  f_flavor : string;
  f_detail : string;
  f_source : string;       (** original generated source *)
  f_minimized : string;    (** minimized source (or the original) *)
  f_min_stmts : int;       (** {!Minimize.size} of the minimized kernel *)
}

type stats = {
  s_kernels : int;             (** kernels generated and checked *)
  s_violations : int;
  s_explained : int;           (** resource-limit outcomes (MILP budget) *)
  s_failures_by_kind : (string * int) list;    (** sorted by kind *)
  s_explained_by_kind : (string * int) list;
  s_features : (string * int) list;  (** coverage histogram over all kernels *)
  s_duration_s : float;
  s_budget_hit : bool;         (** stopped early on the wall-clock budget *)
}

type t = { stats : stats; findings : finding list }

val run :
  ?gen_cfg:Hls.Generate.cfg ->
  ?config:Core.Flow.config ->
  ?mutations:int ->
  ?budget_s:float ->
  ?minimize:bool ->
  ?log:(string -> unit) ->
  pool:Support.Pool.t ->
  start_seed:int ->
  seeds:int ->
  unit ->
  t
(** Check seeds [start_seed .. start_seed + seeds - 1]. [budget_s]
    (default none) stops submitting new batches once exceeded;
    [minimize] (default [true]) shrinks each finding's kernel with
    {!Minimize.shrink_func} re-running the single-seed oracle as the
    predicate. [log] receives one progress line per batch. *)

val stats_to_json : stats -> string
(** One JSON object: totals, failure histogram and feature coverage —
    the payload CI renders into the step summary. *)

val write_repro : dir:string -> finding -> string
(** Write a self-describing repro fixture
    ([fuzz_seed<N>_<kind>.c]) and return its path. The header comments
    carry the seed, the invariant and the detail; the body is the
    minimized source. *)
