type finding = {
  f_seed : int;
  f_kind : string;
  f_flavor : string;
  f_detail : string;
  f_source : string;
  f_minimized : string;
  f_min_stmts : int;
}

type stats = {
  s_kernels : int;
  s_violations : int;
  s_explained : int;
  s_failures_by_kind : (string * int) list;
  s_explained_by_kind : (string * int) list;
  s_features : (string * int) list;
  s_duration_s : float;
  s_budget_hit : bool;
}

type t = { stats : stats; findings : finding list }

let bump tbl k n = Hashtbl.replace tbl k (n + Option.value (Hashtbl.find_opt tbl k) ~default:0)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Shrink one finding's kernel: the predicate re-runs the single-seed
   oracle on the candidate and demands the same (kind, flavor) violation.
   Capped at [max_checks] oracle runs so a stubborn failure cannot eat
   the campaign budget. *)
let minimize_finding ?config ~max_checks (p : Hls.Generate.program) (v : Oracle.check) =
  let checks = ref 0 in
  let still_fails (f : Hls.Ast.func) =
    incr checks;
    !checks <= max_checks
    &&
    let source = Format.asprintf "%a" Hls.Ast.pp_func f in
    let candidate = { p with Hls.Generate.func = f; source } in
    let mutations = if String.length v.Oracle.kind >= 6 && String.sub v.Oracle.kind 0 6 = "mutant" then 2 else 0 in
    let r = Oracle.check_program ?config ~mutations candidate in
    List.exists
      (fun (c : Oracle.check) -> c.Oracle.kind = v.Oracle.kind && c.Oracle.flavor = v.Oracle.flavor)
      r.Oracle.violations
  in
  let small = Minimize.shrink_func still_fails p.Hls.Generate.func in
  (Format.asprintf "%a" Hls.Ast.pp_func small, Minimize.size small)

let run ?gen_cfg ?config ?mutations ?budget_s ?(minimize = true) ?(log = ignore) ~pool
    ~start_seed ~seeds () =
  let t0 = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. t0 in
  let failures = Hashtbl.create 16 in
  let explained = Hashtbl.create 16 in
  let features = Hashtbl.create 32 in
  let findings = ref [] in
  let kernels = ref 0 in
  let violations = ref 0 in
  let explained_n = ref 0 in
  let budget_hit = ref false in
  let batch = max 8 (4 * Support.Pool.jobs pool) in
  let next = ref start_seed in
  let stop = start_seed + seeds in
  while !next < stop && not !budget_hit do
    let n = min batch (stop - !next) in
    let batch_seeds = List.init n (fun i -> !next + i) in
    next := !next + n;
    let reports =
      Support.Pool.map_list pool
        (fun seed -> Oracle.check ?gen_cfg ?config ?mutations seed)
        batch_seeds
    in
    List.iter
      (fun (r : Oracle.report) ->
        incr kernels;
        List.iter (fun (k, c) -> bump features k c) r.Oracle.features;
        List.iter
          (fun (c : Oracle.check) ->
            incr explained_n;
            bump explained c.Oracle.kind 1)
          r.Oracle.explained;
        (* one finding per distinct (kind, flavor) per seed *)
        let seen = Hashtbl.create 4 in
        List.iter
          (fun (c : Oracle.check) ->
            incr violations;
            bump failures c.Oracle.kind 1;
            let key = (c.Oracle.kind, c.Oracle.flavor) in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.replace seen key ();
              let p =
                match gen_cfg with
                | None -> Hls.Generate.generate r.Oracle.seed
                | Some cfg -> Hls.Generate.generate ~cfg r.Oracle.seed
              in
              let minimized, min_stmts =
                if minimize then minimize_finding ?config ~max_checks:200 p c
                else (r.Oracle.source, Minimize.size p.Hls.Generate.func)
              in
              findings :=
                {
                  f_seed = r.Oracle.seed;
                  f_kind = c.Oracle.kind;
                  f_flavor = c.Oracle.flavor;
                  f_detail = c.Oracle.detail;
                  f_source = r.Oracle.source;
                  f_minimized = minimized;
                  f_min_stmts = min_stmts;
                }
                :: !findings
            end)
          r.Oracle.violations)
      reports;
    log
      (Printf.sprintf "fuzz: %d/%d kernels, %d violations, %.1fs" !kernels seeds !violations
         (elapsed ()));
    match budget_s with
    | Some b when elapsed () > b && !next < stop ->
      budget_hit := true;
      log (Printf.sprintf "fuzz: wall-clock budget %.0fs exhausted at seed %d" b !next)
    | _ -> ()
  done;
  let stats =
    {
      s_kernels = !kernels;
      s_violations = !violations;
      s_explained = !explained_n;
      s_failures_by_kind = sorted_bindings failures;
      s_explained_by_kind = sorted_bindings explained;
      s_features = sorted_bindings features;
      s_duration_s = elapsed ();
      s_budget_hit = !budget_hit;
    }
  in
  { stats; findings = List.rev !findings }

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let stats_to_json s =
  let hist kv =
    String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (json_escape k) v) kv)
  in
  (* feature coverage includes zero rows for never-emitted features *)
  let full_features =
    List.map
      (fun k -> (k, Option.value (List.assoc_opt k s.s_features) ~default:0))
      Hls.Generate.feature_keys
  in
  Printf.sprintf
    "{\"kernels\":%d,\"violations\":%d,\"explained\":%d,\"duration_s\":%.2f,\"budget_hit\":%b,\"failures_by_kind\":{%s},\"explained_by_kind\":{%s},\"features\":{%s}}"
    s.s_kernels s.s_violations s.s_explained s.s_duration_s s.s_budget_hit
    (hist s.s_failures_by_kind) (hist s.s_explained_by_kind) (hist full_features)

let write_repro ~dir f =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path =
    Filename.concat dir (Printf.sprintf "fuzz_seed%d_%s.c" f.f_seed f.f_kind)
  in
  let oc = open_out path in
  Printf.fprintf oc "// fuzz repro: seed=%d invariant=%s flavor=%s\n" f.f_seed f.f_kind
    f.f_flavor;
  String.split_on_char '\n' f.f_detail
  |> List.iter (fun l -> Printf.fprintf oc "// %s\n" l);
  Printf.fprintf oc "%s\n" f.f_minimized;
  close_out oc;
  path
