module G = Dataflow.Graph

type mutation =
  | Add_opaque of G.channel_id * int
  | Add_transparent of G.channel_id * int
  | Widen of G.channel_id * int

let pp fmt = function
  | Add_opaque (c, s) -> Format.fprintf fmt "opaque(c%d,%d)" c s
  | Add_transparent (c, s) -> Format.fprintf fmt "transparent(c%d,%d)" c s
  | Widen (c, s) -> Format.fprintf fmt "widen(c%d,+%d)" c s

let random rng g n =
  let nc = G.n_channels g in
  if nc = 0 then []
  else
    List.init n (fun _ ->
        let c = Support.Rng.int rng nc in
        let slots = 1 + Support.Rng.int rng 3 in
        match Support.Rng.int rng 3 with
        | 0 -> Add_opaque (c, slots)
        | 1 -> Add_transparent (c, slots)
        | _ -> Widen (c, slots))

let apply g muts =
  let g = G.copy g in
  let bump c ~transparent ~slots =
    match G.buffer g c with
    | None -> G.set_buffer g c (Some { G.transparent; slots })
    | Some b ->
      (* keep an existing opaque buffer opaque (removing latency could
         re-expose a combinational loop); only grow capacity and allow
         a transparent buffer to be upgraded to opaque *)
      let transparent = b.G.transparent && transparent in
      G.set_buffer g c (Some { G.transparent; slots = max b.G.slots slots })
  in
  List.iter
    (fun m ->
      match m with
      | Add_opaque (c, s) -> bump c ~transparent:false ~slots:s
      | Add_transparent (c, s) -> bump c ~transparent:true ~slots:s
      | Widen (c, s) -> (
        match G.buffer g c with
        | None -> G.set_buffer g c (Some { G.transparent = true; slots = s })
        | Some b -> G.set_buffer g c (Some { b with G.slots = b.G.slots + s })))
    muts;
  g
