(** The differential oracle: every invariant one generated kernel must
    satisfy, end to end through both flows.

    Per seed the oracle generates the program ({!Hls.Generate}), runs
    the reference interpreter, compiles the DFG, then pushes a copy
    through the iterative and the baseline flow and checks:

    - {b parse-roundtrip}: the pretty-printed source re-parses to the
      identical AST;
    - {b interp-error} / {b compile-error} / {b invalid-graph}: the
      front end accepts its own generator's output;
    - {b lint-gate} / {b tv-gate}: no stage gate fires
      ({!Lint.Engine.Lint_error} from inside the flow);
    - {b flow-error}: the flow completes (a MILP node-budget exhaustion
      is recorded as {e explained}, not as a violation — the budget is a
      resource limit, not a wrong answer);
    - {b phi-exceeds-bound}: every iteration's MILP throughput claim
      stays within the LP-free certified bound ([milp_phi <=
      certified_bound + 1e-4]);
    - {b target-inconsistent}: [met_target] agrees with
      [final_levels <= target_levels];
    - {b not-live} / {b sim-deadlock} / {b sim-timeout}: the certified
      final circuit actually terminates in cycle-accurate simulation;
    - {b value-mismatch} / {b memory-mismatch}: simulated exit value and
      final memory contents equal the interpreter's;
    - {b sim-beats-bound}: measured steady-state transfers on every
      channel inside a cyclic SCC stay within [sc_bound * cycles + 4]
      — the simulator never outruns the Howard certificate;
    - {b cache-divergence}: with the cache enabled, a warm re-run of the
      flow produces a byte-identical canonical summary;
    - {b mutant-*}: additive DFG mutations ({!Mutate}) of the final
      circuit keep the exit value, memories and liveness. *)

type check = {
  kind : string;    (** one of the invariant names above *)
  flavor : string;  (** ["iterative"], ["baseline"], ["front-end"], ["mutant"] *)
  detail : string;
}

type report = {
  seed : int;
  features : (string * int) list;  (** the program's coverage histogram *)
  violations : check list;
  explained : check list;  (** expected resource-limit outcomes *)
  source : string;         (** generated source, for repros *)
}

val flow_config : Core.Flow.config
(** The throttled flow configuration the fuzzer uses by default: few
    iterations and a small MILP node budget, so thousands of kernels
    fit in a CI smoke budget while every gate stays armed. *)

val check :
  ?gen_cfg:Hls.Generate.cfg ->
  ?config:Core.Flow.config ->
  ?mutations:int ->
  int ->
  report
(** [check seed] runs the whole battery on one generated kernel.
    [mutations] (default 2) mutants are derived from the final circuit
    of each flavor. Deterministic: same arguments, same report. *)

val check_program :
  ?config:Core.Flow.config ->
  ?mutations:int ->
  Hls.Generate.program ->
  report
(** The battery on an explicit program — the minimizer's re-check entry
    point (shrunk candidates are not products of {!Hls.Generate}). *)

val summary_of_outcome : Core.Flow.outcome -> string
(** The canonical flow digest compared between cold and warm runs. *)

val is_explained_failure : string -> bool
(** Recognise flow [Failure] messages that are resource-limit outcomes
    (MILP node budget, simulator cycle cap) rather than bugs. *)
