module Ast = Hls.Ast

let rec stmt_size = function
  | Ast.If (_, t, e) -> 1 + stmts_size t + stmts_size e
  | Ast.While (_, b) -> 1 + stmts_size b
  | Ast.For (_, _, _, b) -> 3 + stmts_size b
  | _ -> 1

and stmts_size ss = List.fold_left (fun a s -> a + stmt_size s) 0 ss

let size (f : Ast.func) = stmts_size f.Ast.body

(* All one-step reductions of a statement list, most aggressive first:
   removing a whole statement before rewriting it, outer statements
   before inner ones. *)
let rec variants ss =
  let rec at prefix = function
    | [] -> []
    | s :: rest ->
      let keep tail = List.rev_append prefix tail in
      let drop = keep rest in
      let rewrites =
        match s with
        | Ast.If (c, t, e) ->
          [ keep (t @ rest); keep (e @ rest) ]
          @ (match e with [] -> [] | _ -> [ keep (Ast.If (c, t, []) :: rest) ])
        | Ast.While (_, b) -> [ keep (b @ rest) ]
        | Ast.For (init, _, _, b) -> [ keep (init :: b @ rest) ]
        | _ -> []
      in
      let inner =
        match s with
        | Ast.If (c, t, e) ->
          List.map (fun t' -> keep (Ast.If (c, t', e) :: rest)) (variants t)
          @ List.map (fun e' -> keep (Ast.If (c, t, e') :: rest)) (variants e)
        | Ast.While (c, b) -> List.map (fun b' -> keep (Ast.While (c, b') :: rest)) (variants b)
        | Ast.For (i, c, st, b) ->
          List.map (fun b' -> keep (Ast.For (i, c, st, b') :: rest)) (variants b)
        | _ -> []
      in
      ((drop :: rewrites) @ inner) @ at (s :: prefix) rest
  in
  at [] ss

let shrink_stmts pred ss =
  let rec fix ss =
    match List.find_opt pred (variants ss) with
    | Some smaller -> fix smaller
    | None -> ss
  in
  if pred ss then fix ss else ss

let shrink_func pred (f : Ast.func) =
  let body = shrink_stmts (fun b -> pred { f with Ast.body = b }) f.Ast.body in
  { f with Ast.body = body }

let ddmin pred xs =
  let rec go xs n =
    let len = List.length xs in
    if len <= 1 || n > len then xs
    else begin
      let chunk = max 1 (len / n) in
      let rec chunks acc rest =
        match rest with
        | [] -> List.rev acc
        | _ ->
          let take = min chunk (List.length rest) in
          let rec split k xs =
            if k = 0 then ([], xs)
            else match xs with [] -> ([], []) | x :: t -> let a, b = split (k - 1) t in (x :: a, b)
          in
          let c, rest' = split take rest in
          chunks (c :: acc) rest'
      in
      let cs = chunks [] xs in
      (* try each chunk alone *)
      match List.find_opt pred cs with
      | Some c -> go c 2
      | None -> (
        (* try each complement *)
        let complements =
          List.mapi (fun i _ -> List.concat (List.filteri (fun j _ -> j <> i) cs)) cs
        in
        match List.find_opt pred complements with
        | Some c -> go c (max 2 (n - 1))
        | None -> if n < len then go xs (min len (2 * n)) else xs)
    end
  in
  if pred xs then go xs 2 else xs
