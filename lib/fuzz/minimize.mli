(** Failure minimization: shrink a failing kernel (or a failing DFG
    mutation list) while preserving the failure.

    The predicate is the caller's: it re-runs whatever oracle caught the
    original failure and answers "does this candidate still fail the
    same way?". Candidates that fail {e differently} — or crash the
    front end — must make the predicate return [false], so minimization
    never drifts to an unrelated bug. *)

val shrink_stmts :
  (Hls.Ast.stmt list -> bool) -> Hls.Ast.stmt list -> Hls.Ast.stmt list
(** Greedy fixpoint statement shrinking. Tried, innermost-last, on every
    position: drop the statement; replace an [if] by either branch; hoist
    a loop body in place of the loop; drop an [else]; shrink inside
    bodies. Runs to a fixpoint of the predicate. *)

val shrink_func :
  (Hls.Ast.func -> bool) -> Hls.Ast.func -> Hls.Ast.func
(** {!shrink_stmts} applied to a function body (the return statement is
    part of the body and may itself be dropped only if the predicate
    accepts that). *)

val ddmin : ('a list -> bool) -> 'a list -> 'a list
(** Classic delta debugging on a list: smallest sublist (under the
    halving strategy) that still satisfies the predicate. The input list
    must satisfy it. Used to bisect DFG mutation lists. *)

val size : Hls.Ast.func -> int
(** Statement count (nested included) — the metric shrinking reduces. *)
