(* Abstract values for dataflow channels: a reduced product of an unsigned
   interval and a known-bits (tri-state) bitvector, both relative to the
   channel's bit width.

   A channel's abstract value over-approximates the set of every data value
   any token on that channel ever carries during any execution.  [Bot] means
   the channel provably never carries a token.  [Any] is reserved for widths
   the simulator does not mask (>= 62 bits, where values occupy the full
   native int and can be negative); such channels are not analyzed.

   Representation invariants for [V { lo; hi; zeros; ones }] at width [w]
   with mask [m = 2^w - 1]:
     0 <= lo <= hi <= m
     zeros land ones = 0
     zeros, ones subsets of m
   [zeros] has a bit set where the value provably has a 0 bit; [ones] where
   it provably has a 1 bit. *)

type t =
  | Bot
  | Any
  | V of { lo : int; hi : int; zeros : int; ones : int }

(* Widths outside [1, 61] are not representable as masked unsigned ints:
   width <= 0 channels carry only the value 0 (the simulator masks with 0)
   and widths >= 62 are unmasked. *)
let mask_of w = if w <= 0 then Some 0 else if w >= 62 then None else Some ((1 lsl w) - 1)

let bits n =
  let rec go acc n = if n = 0 then acc else go (acc + 1) (n lsr 1) in
  if n <= 0 then 0 else go 0 n

(* Canonicalize a candidate quadruple at width [w]: exchange information
   between the interval and the bit facts, detect contradictions. *)
let reduce w ~lo ~hi ~zeros ~ones =
  match mask_of w with
  | None -> Any
  | Some m ->
      let zeros = zeros land m and ones = ones land m in
      if zeros land ones <> 0 then Bot
      else
        let lo = max lo ones in
        let hi = min hi (m land lnot zeros) in
        if lo > hi then Bot
        else
          (* bits at positions >= bitlen hi are provably zero *)
          let lead = m land lnot ((1 lsl bits hi) - 1) in
          let zeros = zeros lor lead in
          if lo = hi then V { lo; hi; zeros = m land lnot lo; ones = lo }
          else V { lo; hi; zeros; ones }

let top w =
  match mask_of w with
  | None -> Any
  | Some m -> reduce w ~lo:0 ~hi:m ~zeros:0 ~ones:0

let const w v =
  match mask_of w with
  | None -> Any
  | Some m ->
      let v = v land m in
      V { lo = v; hi = v; zeros = m land lnot v; ones = v }

let is_bot = function Bot -> true | _ -> false
let is_const = function V { lo; hi; _ } when lo = hi -> Some lo | _ -> None

(* Least upper bound (both arguments over-approximate token sets of the same
   channel, so width agrees). *)
let join w a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Any, _ | _, Any -> Any
  | V a, V b ->
      reduce w ~lo:(min a.lo b.lo) ~hi:(max a.hi b.hi) ~zeros:(a.zeros land b.zeros)
        ~ones:(a.ones land b.ones)

(* Greatest lower bound; used by branch refinement and descending passes. *)
let meet w a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Any, x | x, Any -> x
  | V a, V b ->
      reduce w ~lo:(max a.lo b.lo) ~hi:(min a.hi b.hi) ~zeros:(a.zeros lor b.zeros)
        ~ones:(a.ones lor b.ones)

(* Accelerated join: blow unstable interval ends to the extremes.  The
   known-bits component only ever loses bits under join (finite descending
   chains), so it needs no acceleration. *)
let widen w ~old ~next =
  let j = join w old next in
  match (old, j) with
  | V o, V n ->
      let lo = if n.lo < o.lo then 0 else n.lo in
      let hi =
        if n.hi > o.hi then match mask_of w with Some m -> m | None -> n.hi else n.hi
      in
      reduce w ~lo ~hi ~zeros:n.zeros ~ones:n.ones
  | _ -> j

let leq a b =
  match (a, b) with
  | Bot, _ -> true
  | _, Bot -> false
  | _, Any -> true
  | Any, _ -> false
  | V a, V b ->
      b.lo <= a.lo && a.hi <= b.hi
      && b.zeros land lnot a.zeros = 0
      && b.ones land lnot a.ones = 0

let equal (a : t) (b : t) = a = b

(* A concrete value [v] is a member of the abstraction. *)
let mem w v t =
  match t with
  | Bot -> false
  | Any -> true
  | V { lo; hi; zeros; ones } -> (
      match mask_of w with
      | None -> true
      | Some _ ->
          v >= lo && v <= hi && v land zeros = 0 && v land ones = ones)

(* Re-interpret a value at a (possibly narrower) width: models the
   simulator masking a channel's data to the destination width. *)
let mask_to w t =
  match t with
  | Bot -> Bot
  | Any -> top w
  | V { lo; hi; zeros; ones } -> (
      match mask_of w with
      | None -> Any
      | Some m ->
          if hi <= m then reduce w ~lo ~hi ~zeros ~ones
          else reduce w ~lo:0 ~hi:m ~zeros:(zeros land m) ~ones:(ones land m))

(* Bits needed to represent every member at width [w]. *)
let needed_width w t =
  match t with
  | Any -> w
  | Bot -> 0
  | V { hi; _ } -> bits hi

let pp ?width fmt t =
  match t with
  | Bot -> Format.pp_print_string fmt "bot"
  | Any -> Format.pp_print_string fmt "any"
  | V { lo; hi; zeros; ones } ->
      if lo = hi then Format.fprintf fmt "{%d}" lo
      else begin
        Format.fprintf fmt "[%d,%d]" lo hi;
        let w = match width with Some w -> min w 61 | None -> bits hi in
        if zeros lor ones <> 0 && w > 0 && w <= 16 then begin
          Format.pp_print_string fmt " 0b";
          for i = w - 1 downto 0 do
            let b = 1 lsl i in
            Format.pp_print_char fmt
              (if zeros land b <> 0 then '0' else if ones land b <> 0 then '1' else 'x')
          done
        end
      end

let to_string ?width t = Format.asprintf "%a" (pp ?width) t
