(* Verified narrowing: rewrite a DFG to the envelope proven by [Analyze].

   Four rewrites, all justified by latency-insensitivity (consumers only
   observe token values and arrival order, which every rewrite preserves)
   and backstopped downstream by the random-simulation equivalence gate:

   - width narrowing: a unit whose every kept output provably carries
     values below [2^k] is re-emitted at width [k] (never widened, and
     never below a data producer feeding a truncation-checked port);
   - constant folding: an operator whose output is a proven singleton [v]
     becomes Join(arity) -> Const v — same firing condition (all inputs
     valid), same value;
   - dead-branch elision: a Branch whose condition bit is a proven
     constant becomes Join2(data, cond) feeding the taken side (identical
     valid/ready equations), dropping the never-firing output;
   - mux/control-merge specialisation: a Mux whose selector proves a
     single live arm becomes Join2(arm, sel); a Control_merge with exactly
     one live input becomes Fork2 feeding Const 0 (token out) and Const k
     (index out), matching its per-output delivery semantics.

   Units all of whose inputs are proven token-free never fire and are
   deleted.  Every dropped channel must have BOTH endpoints' ports dropped
   (producer deleted/rewritten away and consumer deleted/rewritten away);
   a consistency fixpoint cancels any candidate whose frontier does not
   line up, so the pass degrades to the identity instead of emitting a
   dangling port. *)

module G = Dataflow.Graph
module K = Dataflow.Unit_kind
module Ops = Dataflow.Ops
module V = Value

type entry = {
  nr_uid : G.unit_id;  (** uid in the original graph *)
  nr_label : string;
  nr_old_width : int;
  nr_new_width : int;
  nr_range : string;
}

type report = {
  r_narrowed : entry list;
  r_folded : (G.unit_id * string * int) list;
  r_rewired : (G.unit_id * string * string) list;
  r_deleted : (G.unit_id * string) list;
  r_bits_before : int;
  r_bits_after : int;
  r_units_before : int;
  r_units_after : int;
  r_diverged : bool;
}

let changed r =
  r.r_narrowed <> [] || r.r_folded <> [] || r.r_rewired <> [] || r.r_deleted <> []

let identity_report g ~diverged =
  let bits = G.fold_channels g (fun acc c -> acc + max 0 c.G.width) 0 in
  {
    r_narrowed = [];
    r_folded = [];
    r_rewired = [];
    r_deleted = [];
    r_bits_before = bits;
    r_bits_after = bits;
    r_units_before = G.n_units g;
    r_units_after = G.n_units g;
    r_diverged = diverged;
  }

(* Mapping from an original unit to its replacement in the rebuilt graph. *)
type remap =
  | Drop
  | Plain of G.unit_id
  | Fold of G.unit_id * G.unit_id  (* join, const *)
  | Rejoin of G.unit_id  (* Branch/Mux collapsed to a Join2 *)
  | Refork of G.unit_id * G.unit_id * G.unit_id  (* fork, const0, constk *)

let run (res : Analyze.result) g =
  if res.diverged then (G.copy g, identity_report g ~diverged:true)
  else begin
    let nu = G.n_units g in
    let val_of cid = res.Analyze.values.(cid) in
    let in_vals (n : G.node) =
      Array.to_list n.G.ins
      |> List.map (function Some cid -> val_of cid | None -> V.Bot)
    in
    (* ---- candidate selection ---- *)
    let dead = Array.make nu false in
    let branch_rw = Array.make nu None in
    let mux_rw = Array.make nu None in
    let cmerge_rw = Array.make nu None in
    let fold_rw = Array.make nu None in
    G.iter_units g (fun n ->
        let u = n.G.uid in
        let ins = in_vals n in
        let all_connected = Array.for_all Option.is_some n.G.ins in
        let all_bot = ins <> [] && List.for_all V.is_bot ins in
        match n.G.kind with
        | K.Exit -> ()
        | _ when all_connected && all_bot -> dead.(u) <- true
        | K.Branch when all_connected && not (List.exists V.is_bot ins) -> (
            match Analyze.cond_cases (List.nth ins 1) with
            | true, false -> branch_rw.(u) <- Some 0
            | false, true -> branch_rw.(u) <- Some 1
            | _ -> ())
        | K.Mux _ when all_connected -> (
            let sel = List.hd ins and arms_v = List.tl ins in
            let arms = List.length arms_v in
            match Analyze.mux_arms ~sel ~arms with
            | [ k ] ->
                let only_k_live =
                  List.for_all2
                    (fun j v -> if j = k then not (V.is_bot v) else V.is_bot v)
                    (List.init arms Fun.id) arms_v
                in
                if only_k_live then mux_rw.(u) <- Some k
            | _ -> ())
        | K.Control_merge _ when all_connected -> (
            let live = List.filteri (fun _ v -> not (V.is_bot v)) ins in
            match (live, ins) with
            | [ _ ], _ ->
                let k = ref (-1) in
                List.iteri (fun i v -> if not (V.is_bot v) then k := i) ins;
                cmerge_rw.(u) <- Some !k
            | _ -> ())
        | K.Operator _ when all_connected && not (List.exists V.is_bot ins) -> (
            match n.G.outs.(0) with
            | Some cid -> (
                match V.is_const (val_of cid) with
                | Some v -> fold_rw.(u) <- Some v
                | None -> ())
            | None -> ())
        | _ -> ());
    (* ---- consistency fixpoint on dropped ports ---- *)
    let dropped_out u p =
      dead.(u)
      || match branch_rw.(u) with Some taken -> p = 1 - taken | None -> false
    in
    let dropped_in u p =
      dead.(u)
      || (match mux_rw.(u) with Some k -> p > 0 && p <> k + 1 | None -> false)
      || match cmerge_rw.(u) with Some k -> p <> k | None -> false
    in
    let stable = ref false in
    while not !stable do
      stable := true;
      G.iter_channels g (fun c ->
          let so = dropped_out c.G.src c.G.src_port
          and si = dropped_in c.G.dst c.G.dst_port in
          if so <> si then begin
            stable := false;
            if so then
              if dead.(c.G.src) then dead.(c.G.src) <- false
              else branch_rw.(c.G.src) <- None
            else if dead.(c.G.dst) then dead.(c.G.dst) <- false
            else begin
              mux_rw.(c.G.dst) <- None;
              cmerge_rw.(c.G.dst) <- None
            end
          end)
    done;
    (* ---- final widths ---- *)
    let narrowable w = w >= 1 && w < 62 in
    let fold_width u =
      match fold_rw.(u) with
      | Some v ->
          let w = (G.unit_node g u).G.width in
          if narrowable w then Some (max 1 (min w (V.bits v))) else Some w
      | None -> None
    in
    let final = Array.make nu 0 in
    G.iter_units g (fun n ->
        let u = n.G.uid in
        let w = n.G.width in
        final.(u) <-
          (if (not (narrowable w)) || Array.length n.G.outs = 0 then w
           else
             match (n.G.kind, fold_width u) with
             | _, Some fw -> fw
             | (K.Load _ | K.Store _), None -> w
             | _, None ->
                 let needed = ref 0 in
                 Array.iteri
                   (fun p cid ->
                     match cid with
                     | Some cid when not (dropped_out u p) ->
                         needed := max !needed (V.needed_width w (val_of cid))
                     | _ -> ())
                   n.G.outs;
                 max 1 (min w !needed)));
    (* Producers feeding truncation-checked ports (see dfg-width-mismatch)
       must not end up wider than the consumer: raise the consumer back up
       to the widest such producer.  Iterate, since raising a consumer can
       affect its own consumers. *)
    let producer_width u =
      match fold_width u with Some fw -> fw | None -> final.(u)
    in
    let checked_ports (n : G.node) =
      if dead.(n.G.uid) then []
      else
        match n.G.kind with
        | K.Operator { op = Ops.Icmp _; _ } -> []
        | _ when fold_rw.(n.G.uid) <> None -> []
        | K.Operator { op; _ } -> (
            match Ops.arity op with 3 -> [ 1; 2 ] | 2 -> [ 0; 1 ] | _ -> [ 0 ])
        | K.Mux m when mux_rw.(n.G.uid) = None -> List.init m (fun i -> i + 1)
        | K.Merge m -> List.init m Fun.id
        | K.Branch when branch_rw.(n.G.uid) = None -> [ 0 ]
        | K.Buffer _ -> [ 0 ]
        | _ -> []
    in
    let stable = ref false in
    while not !stable do
      stable := true;
      G.iter_units g (fun n ->
          let u = n.G.uid in
          if narrowable n.G.width && fold_rw.(u) = None then
            List.iter
              (fun p ->
                match n.G.ins.(p) with
                | Some cid ->
                    let pw = producer_width (G.channel g cid).G.src in
                    if pw > final.(u) && final.(u) < n.G.width then begin
                      final.(u) <- min n.G.width pw;
                      stable := false
                    end
                | None -> ())
              (checked_ports n))
    done;
    (* ---- rebuild ---- *)
    let ng = G.create (G.name g) in
    List.iter (fun (m, sz) -> G.add_memory ng m sz) (G.memories g);
    let remap = Array.make nu Drop in
    let rewired = ref [] and folded = ref [] and deleted = ref [] in
    G.iter_units g (fun n ->
        let u = n.G.uid in
        let bb = n.G.bb and label = n.G.label in
        let w = final.(u) in
        if dead.(u) then deleted := (u, label) :: !deleted
        else
          match (n.G.kind, branch_rw.(u), mux_rw.(u), cmerge_rw.(u), fold_rw.(u)) with
          | _, _, _, _, Some v ->
              let arity = Array.length n.G.ins in
              let wjoin =
                Array.fold_left
                  (fun acc cid ->
                    match cid with
                    | Some cid -> max acc (producer_width (G.channel g cid).G.src)
                    | None -> acc)
                  1 n.G.ins
              in
              let j = G.add_unit ng ~label:(label ^ "_gate") ~bb ~width:wjoin (K.Join arity) in
              let c = G.add_unit ng ~label:(label ^ "_fold") ~bb ~width:w (K.Const v) in
              remap.(u) <- Fold (j, c);
              folded := (u, label, v) :: !folded
          | K.Branch, Some taken, _, _, _ ->
              let j = G.add_unit ng ~label:(label ^ "_taken") ~bb ~width:w (K.Join 2) in
              remap.(u) <- Rejoin j;
              rewired :=
                (u, label, Printf.sprintf "branch->join (always %s)" (if taken = 0 then "true" else "false"))
                :: !rewired
          | K.Mux _, _, Some k, _, _ ->
              let j = G.add_unit ng ~label:(label ^ "_arm") ~bb ~width:w (K.Join 2) in
              remap.(u) <- Rejoin j;
              rewired := (u, label, Printf.sprintf "mux->join (arm %d)" k) :: !rewired
          | K.Control_merge _, _, _, Some k, _ ->
              (* the fork only relays the live token's handshake; its data
                 is regenerated by the Consts, so it must take its INPUT's
                 width (fork elaboration wires output bits straight from
                 input bits — a wider fork would read past a narrow or
                 width-0 control channel) *)
              let wf =
                match n.G.ins.(k) with
                | Some cid -> producer_width (G.channel g cid).G.src
                | None -> 0
              in
              let f = G.add_unit ng ~label:(label ^ "_live") ~bb ~width:wf (K.Fork 2) in
              let c0 = G.add_unit ng ~label:(label ^ "_tok") ~bb ~width:w (K.Const 0) in
              let ck = G.add_unit ng ~label:(label ^ "_idx") ~bb ~width:w (K.Const k) in
              remap.(u) <- Refork (f, c0, ck);
              rewired := (u, label, Printf.sprintf "cmerge->fork (input %d)" k) :: !rewired
          | kind, _, _, _, _ ->
              let kind =
                match kind with
                | K.Const k when narrowable n.G.width ->
                    K.Const (k land ((1 lsl min n.G.width 61) - 1))
                | k -> k
              in
              remap.(u) <- Plain (G.add_unit ng ~label ~bb ~width:w kind));
    let src_endpoint u p =
      match remap.(u) with
      | Plain nu -> (nu, p)
      | Fold (_, c) -> (c, 0)
      | Rejoin j -> (j, 0)
      | Refork (_, c0, ck) -> if p = 0 then (c0, 0) else (ck, 0)
      | Drop -> assert false
    in
    let dst_endpoint u p =
      match remap.(u) with
      | Plain nu -> (nu, p)
      | Fold (j, _) -> (j, p)
      | Rejoin j -> (
          match (G.unit_node g u).G.kind with
          | K.Branch -> (j, p) (* data -> 0, cond -> 1 *)
          | K.Mux _ -> if p = 0 then (j, 1) else (j, 0)
          | _ -> assert false)
      | Refork (f, _, _) -> (f, 0)
      | Drop -> assert false
    in
    G.iter_channels g (fun c ->
        let so = dropped_out c.G.src c.G.src_port in
        if not so then begin
          let src, src_port = src_endpoint c.G.src c.G.src_port in
          let dst, dst_port = dst_endpoint c.G.dst c.G.dst_port in
          let cid = G.connect ng ~src ~src_port ~dst ~dst_port in
          if c.G.back then G.set_back_edge ng cid;
          match c.G.buffer with Some b -> G.set_buffer ng cid (Some b) | None -> ()
        end);
    (* internal channels of the rewrites *)
    Array.iter
      (function
        | Fold (j, c) -> ignore (G.connect ng ~src:j ~src_port:0 ~dst:c ~dst_port:0)
        | Refork (f, c0, ck) ->
            ignore (G.connect ng ~src:f ~src_port:0 ~dst:c0 ~dst_port:0);
            ignore (G.connect ng ~src:f ~src_port:1 ~dst:ck ~dst_port:0)
        | _ -> ())
      remap;
    (match G.validate ng with
    | Ok () -> ()
    | Error e -> failwith (Printf.sprintf "Absint.Narrow produced an invalid graph: %s" e));
    (* ---- report ---- *)
    let narrowed = ref [] in
    G.iter_units g (fun n ->
        let u = n.G.uid in
        match remap.(u) with
        | Plain _ when final.(u) < n.G.width ->
            let range =
              match n.G.outs with
              | [| Some cid |] -> V.to_string ~width:n.G.width (val_of cid)
              | _ -> ""
            in
            narrowed :=
              {
                nr_uid = u;
                nr_label = n.G.label;
                nr_old_width = n.G.width;
                nr_new_width = final.(u);
                nr_range = range;
              }
              :: !narrowed
        | _ -> ());
    let bits gr = G.fold_channels gr (fun acc c -> acc + max 0 c.G.width) 0 in
    let report =
      {
        r_narrowed = List.rev !narrowed;
        r_folded = List.rev !folded;
        r_rewired = List.rev !rewired;
        r_deleted = List.rev !deleted;
        r_bits_before = bits g;
        r_bits_after = bits ng;
        r_units_before = G.n_units g;
        r_units_after = G.n_units ng;
        r_diverged = false;
      }
    in
    (ng, report)
  end

let pp_report fmt r =
  let open Format in
  if r.r_diverged then fprintf fmt "analysis diverged; graph left unchanged@,"
  else begin
    fprintf fmt "units: %d -> %d, channel bits: %d -> %d@," r.r_units_before
      r.r_units_after r.r_bits_before r.r_bits_after;
    List.iter
      (fun e ->
        fprintf fmt "  narrow %s#%d: %d -> %d bits  %s@," e.nr_label e.nr_uid
          e.nr_old_width e.nr_new_width e.nr_range)
      r.r_narrowed;
    List.iter (fun (u, l, v) -> fprintf fmt "  fold %s#%d = %d@," l u v) r.r_folded;
    List.iter (fun (u, l, what) -> fprintf fmt "  rewire %s#%d: %s@," l u what) r.r_rewired;
    List.iter (fun (u, l) -> fprintf fmt "  delete %s#%d@," l u) r.r_deleted
  end
