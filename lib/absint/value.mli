(** Abstract channel values: reduced product of an unsigned interval and a
    known-bits tri-state bitvector, relative to a channel bit width.

    A value over-approximates the set of data values carried by every token
    the channel ever transports.  [Bot] means "no token ever"; [Any] covers
    widths >= 62 bits that the elastic simulator leaves unmasked (native
    ints, possibly negative) and which the analysis therefore refuses to
    reason about. *)

type t =
  | Bot  (** channel never carries a token *)
  | Any  (** unanalyzable (width >= 62: unmasked native ints) *)
  | V of { lo : int; hi : int; zeros : int; ones : int }
      (** [lo <= v <= hi], [v land zeros = 0], [v land ones = ones] *)

val mask_of : int -> int option
(** [mask_of w] is the simulator's value mask for width [w]: [Some 0] for
    [w <= 0], [None] (unmasked) for [w >= 62], [Some (2^w - 1)] otherwise. *)

val bits : int -> int
(** Position of the highest set bit plus one; [bits 0 = 0], [bits n = 0] for
    negative [n]. *)

val reduce : int -> lo:int -> hi:int -> zeros:int -> ones:int -> t
(** Canonicalize a quadruple at the given width: clips the interval with the
    bit facts and vice versa, returns [Bot] on contradiction. *)

val top : int -> t
val const : int -> int -> t
(** [const w v] abstracts the single value [v land mask]. *)

val is_bot : t -> bool
val is_const : t -> int option

val join : int -> t -> t -> t
val meet : int -> t -> t -> t
val widen : int -> old:t -> next:t -> t
(** Accelerated join: interval ends that moved since [old] jump to 0 / max. *)

val leq : t -> t -> bool
val equal : t -> t -> bool

val mem : int -> int -> t -> bool
(** [mem w v t]: the concrete value [v] is a member of [t] at width [w]. *)

val mask_to : int -> t -> t
(** Re-interpret a value crossing into a channel of width [w] (the simulator
    masks data to the destination width on write). *)

val needed_width : int -> t -> int
(** Bits needed to represent every member at width [w]; 0 for [Bot]. *)

val pp : ?width:int -> Format.formatter -> t -> unit
val to_string : ?width:int -> t -> string
