(* Whole-graph abstract interpretation.

   Each channel is mapped to a [Value.t] over-approximating the set of data
   values of every token the channel ever carries, for any memory contents
   (loads return top at the load's width).  The fixpoint is computed by a
   worklist over units: a unit's transfer function turns its in-channel
   values into out-channel values, results are joined into the channel map,
   and consumers of changed channels are re-queued.  Interval growth is
   accelerated by widening after a per-channel update budget; two bounded
   descending (narrowing) passes then claw back precision.  A global
   evaluation cap guards against non-termination from any transfer-function
   bug: on hitting it every channel falls back to top and [diverged] is set,
   which downstream consumers treat as "no information". *)

module G = Dataflow.Graph
module K = Dataflow.Unit_kind
module Ops = Dataflow.Ops
module V = Value

type result = { values : V.t array; diverged : bool; evals : int }

let value res cid = res.values.(cid)

(* Possible outcomes of a Branch/Select condition test ([value land 1]):
   (can_be_true, can_be_false). *)
let cond_cases = function
  | V.Bot -> (false, false)
  | V.Any -> (true, true)
  | V.V { lo; hi; zeros; ones } ->
      if lo = hi then (lo land 1 = 1, lo land 1 = 0)
      else if ones land 1 <> 0 then (true, false)
      else if zeros land 1 <> 0 then (false, true)
      else (true, true)

(* Data arms a Mux with [arms] data inputs can select given the selector
   abstraction ([k = sel mod arms] in the simulator). *)
let mux_arms ~sel ~arms =
  if arms <= 0 then []
  else
    match sel with
    | V.Bot -> []
    | V.Any -> List.init arms Fun.id
    | V.V { lo; hi; _ } ->
        if hi < arms then List.init (hi - lo + 1) (fun i -> lo + i)
        else List.init arms Fun.id

type ctx = {
  g : G.t;
  values : V.t array;
  (* units (beyond the structural consumer) whose transfer read a channel,
     so they are re-queued when it changes; populated by branch-condition
     refinement reading comparison operands *)
  extra : int list array;
}

let in_val ctx (n : G.node) p =
  match n.G.ins.(p) with Some cid -> ctx.values.(cid) | None -> V.Bot

let read_remote ctx ~reader cid =
  if not (List.memq reader ctx.extra.(cid)) then ctx.extra.(cid) <- reader :: ctx.extra.(cid);
  ctx.values.(cid)

(* Trace a channel back through value-preserving units (Fork/Lazy_fork/
   Buffer/Join pass input 0's value through).  A hop preserves the value
   only when the outer channel's mask keeps every bit of the inner one;
   [rank] collapses the unmasked widths (>= 62) into one class. *)
let rank w = if w >= 62 then 62 else max w 0

let origin g cid0 =
  let rec go cid fuel =
    let c = G.channel g cid in
    let n = G.unit_node g c.G.src in
    let stop () = (c.G.src, c.G.src_port) in
    if fuel <= 0 then stop ()
    else
      match n.G.kind with
      | K.Fork _ | K.Lazy_fork _ | K.Buffer _ | K.Join _ -> (
          match n.G.ins.(0) with
          | Some cid' when rank c.G.width >= rank (G.channel g cid').G.width ->
              go cid' (fuel - 1)
          | _ -> stop ())
      | _ -> stop ()
  in
  go cid0 64

(* Refine the branch's data abstraction [va] under the assumption that the
   condition on [cond_cid] tested [polarity].  Handles conditions produced
   by an Icmp one of whose operands traces to the same origin as the
   branch's data input, and recurses through And (true side) / Or (false
   side), both of which distribute over bit 0 for the 0/1-valued
   comparison outputs and, more generally, for any values' low bit. *)
let rec refine_data ctx ~reader ~depth ~width ~data_cid va cond_cid ~polarity =
  if depth <= 0 then va
  else
    let cuid, _ = origin ctx.g cond_cid in
    let cn = G.unit_node ctx.g cuid in
    match cn.G.kind with
    | K.Operator { op = Ops.Icmp cmp; _ } -> (
        match (cn.G.ins.(0), cn.G.ins.(1)) with
        | Some x_cid, Some y_cid ->
            let dorig = origin ctx.g data_cid in
            if origin ctx.g x_cid = dorig then
              let vy = read_remote ctx ~reader y_cid in
              Transfer.refine_cmp ~width cmp ~polarity va vy
            else if origin ctx.g y_cid = dorig then
              let vx = read_remote ctx ~reader x_cid in
              Transfer.refine_cmp ~width (Transfer.swap_cmp cmp) ~polarity va vx
            else va
        | _ -> va)
    | K.Operator { op = Ops.And_; _ } when polarity -> (
        (* bit0(x land y) = 1 implies bit0(x) = 1 and bit0(y) = 1 *)
        match (cn.G.ins.(0), cn.G.ins.(1)) with
        | Some x_cid, Some y_cid ->
            let va = refine_data ctx ~reader ~depth:(depth - 1) ~width ~data_cid va x_cid ~polarity in
            refine_data ctx ~reader ~depth:(depth - 1) ~width ~data_cid va y_cid ~polarity
        | _ -> va)
    | K.Operator { op = Ops.Or_; _ } when not polarity -> (
        (* bit0(x lor y) = 0 implies bit0(x) = 0 and bit0(y) = 0 *)
        match (cn.G.ins.(0), cn.G.ins.(1)) with
        | Some x_cid, Some y_cid ->
            let va = refine_data ctx ~reader ~depth:(depth - 1) ~width ~data_cid va x_cid ~polarity in
            refine_data ctx ~reader ~depth:(depth - 1) ~width ~data_cid va y_cid ~polarity
        | _ -> va)
    | _ -> va

let unit_transfer ctx (n : G.node) =
  let w = n.G.width in
  let inv p = in_val ctx n p in
  let n_ins = Array.length n.G.ins in
  let all_ins () = List.init n_ins inv in
  let any_bot () = List.exists V.is_bot (all_ins ()) in
  match n.G.kind with
  | K.Entry | K.Source -> [| V.const w 0 |]
  | K.Exit | K.Sink -> [||]
  | K.Const k -> [| (if V.is_bot (inv 0) then V.Bot else V.const w k) |]
  | K.Fork _ | K.Lazy_fork _ -> Array.make (Array.length n.G.outs) (V.mask_to w (inv 0))
  | K.Buffer _ -> [| V.mask_to w (inv 0) |]
  | K.Join _ -> [| (if any_bot () then V.Bot else V.mask_to w (inv 0)) |]
  | K.Merge _ ->
      [| List.fold_left (fun acc v -> V.join w acc (V.mask_to w v)) V.Bot (all_ins ()) |]
  | K.Mux _ ->
      let sel = inv 0 in
      let arms = n_ins - 1 in
      let out =
        List.fold_left
          (fun acc k -> V.join w acc (V.mask_to w (inv (k + 1))))
          V.Bot
          (mux_arms ~sel ~arms)
      in
      [| out |]
  | K.Control_merge _ ->
      let idx =
        List.fold_left
          (fun (k, acc) v -> (k + 1, if V.is_bot v then acc else V.join w acc (V.const w k)))
          (0, V.Bot) (all_ins ())
        |> snd
      in
      let tok = if V.is_bot idx then V.Bot else V.const w 0 in
      [| tok; idx |]
  | K.Branch ->
      let va = inv 0 and vc = inv 1 in
      if V.is_bot va || V.is_bot vc then [| V.Bot; V.Bot |]
      else begin
        let can_t, can_f = cond_cases vc in
        let data_cid = n.G.ins.(0) and cond_cid = n.G.ins.(1) in
        let refined pol =
          match (data_cid, cond_cid) with
          | Some d, Some c ->
              let dw = (G.channel ctx.g d).G.width in
              refine_data ctx ~reader:n.G.uid ~depth:4 ~width:dw ~data_cid:d va c ~polarity:pol
          | _ -> va
        in
        let t = if can_t then V.mask_to w (refined true) else V.Bot in
        let f = if can_f then V.mask_to w (refined false) else V.Bot in
        [| t; f |]
      end
  | K.Operator { op; _ } -> [| Transfer.operator ~width:w op (all_ins ()) |]
  | K.Load _ -> [| (if V.is_bot (inv 0) then V.Bot else V.top w) |]
  | K.Store _ -> [| (if any_bot () then V.Bot else V.const w 0) |]

let run ?(widen_after = 16) ?max_evals g =
  let nu = G.n_units g and nc = G.n_channels g in
  let max_evals =
    match max_evals with Some m -> m | None -> 512 * (nu + 1)
  in
  let ctx = { g; values = Array.make nc V.Bot; extra = Array.make nc [] } in
  let counts = Array.make nc 0 in
  let queue = Queue.create () in
  let in_queue = Array.make nu false in
  let push u =
    if not in_queue.(u) then begin
      in_queue.(u) <- true;
      Queue.add u queue
    end
  in
  for u = 0 to nu - 1 do
    push u
  done;
  let evals = ref 0 in
  let diverged = ref false in
  while (not (Queue.is_empty queue)) && not !diverged do
    let u = Queue.pop queue in
    in_queue.(u) <- false;
    incr evals;
    if !evals > max_evals then diverged := true
    else begin
      let n = G.unit_node g u in
      let outs = unit_transfer ctx n in
      Array.iteri
        (fun p v ->
          match n.G.outs.(p) with
          | None -> ()
          | Some cid ->
              let c = G.channel g cid in
              let old = ctx.values.(cid) in
              let next = V.join c.G.width old v in
              if not (V.equal next old) then begin
                counts.(cid) <- counts.(cid) + 1;
                let next =
                  if counts.(cid) > widen_after then V.widen c.G.width ~old ~next
                  else next
                in
                ctx.values.(cid) <- next;
                push c.G.dst;
                List.iter push ctx.extra.(cid)
              end)
        outs
    end
  done;
  if !diverged then
    (* nothing computed so far is a stable over-approximation: fall back *)
    G.iter_channels g (fun c -> ctx.values.(c.G.cid) <- V.top c.G.width)
  else
    (* bounded descending passes: F(x) and x both over-approximate the
       concrete token sets, so their meet does too *)
    for _pass = 1 to 2 do
      for u = 0 to nu - 1 do
        let n = G.unit_node g u in
        let outs = unit_transfer ctx n in
        Array.iteri
          (fun p v ->
            match n.G.outs.(p) with
            | None -> ()
            | Some cid ->
                let c = G.channel g cid in
                ctx.values.(cid) <- V.meet c.G.width ctx.values.(cid) v)
          outs
      done
    done;
  { values = ctx.values; diverged = !diverged; evals = !evals }
