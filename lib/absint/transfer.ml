(* Abstract transfer functions for [Dataflow.Ops] operators.

   Concrete semantics being abstracted (see [Sim.Elastic] / [Ops.eval]): the
   operator computes over native ints on its input channels' values and the
   result is masked to the unit width when written to the output channel.
   OCaml's shifts and [land] act modulo the native word, so the low [w] bits
   of any intermediate are preserved by the final mask even when the
   mathematical result overflows — which is why known-bits facts on low bits
   survive wrapping while interval facts do not.  Operand channels may be
   wider than the unit, so every interval fact must be validated against the
   output mask before use. *)

module Ops = Dataflow.Ops
module V = Value

let is_bot = V.is_bot

type quad = { lo : int; hi : int; zeros : int; ones : int }

let quad_of = function
  | V.V { lo; hi; zeros; ones } -> Some { lo; hi; zeros; ones }
  | _ -> None

(* Finish a result whose mathematical interval is [lo, hi] with
   independently-derived bit facts on the low bits.  When the interval fits
   under the mask it is exact; otherwise only the (masked) bit facts
   survive.  [hi < 0] encodes "interval unknown". *)
let finish w m ~lo ~hi ~zeros ~ones =
  if hi >= 0 && hi <= m then V.reduce w ~lo ~hi ~zeros ~ones
  else V.reduce w ~lo:0 ~hi:m ~zeros:(zeros land m) ~ones:(ones land m)

(* Bitwise carry propagation for [a + b + carry0] restricted to the low bits
   where both operands and the running carry are known.  Returns the
   (zeros, ones) facts of that prefix.  Used for Add (carry0 = 0) and, via
   complement, Sub (a - b = a + lnot b + 1). *)
let add_kb m ~carry0 a b =
  let zeros = ref 0 and ones = ref 0 in
  let carry = ref carry0 in
  let i = ref 0 in
  (try
     while !i < 61 && 1 lsl !i <= m do
       let bit = 1 lsl !i in
       let known v = v.zeros land bit <> 0 || v.ones land bit <> 0 in
       if not (known a && known b) then raise Exit;
       let av = if a.ones land bit <> 0 then 1 else 0 in
       let bv = if b.ones land bit <> 0 then 1 else 0 in
       let s = av + bv + !carry in
       if s land 1 = 1 then ones := !ones lor bit else zeros := !zeros lor bit;
       carry := s lsr 1;
       incr i
     done
   with Exit -> ());
  (!zeros, !ones)

let complement m q = { q with zeros = q.ones land m; ones = q.zeros land m }

let trailing_zeros m q =
  let rec go n = if n < 61 && 1 lsl n <= m && q.zeros land (1 lsl n) <> 0 then go (n + 1) else n in
  go 0

(* Clamp the shift-amount operand to the 6-bit range actually used by
   [Ops.eval] ([b land 63]). *)
let shift_range b = if b.hi <= 63 then (b.lo, b.hi) else (0, 63)

let add w m a b =
  let s_lo = a.lo + b.lo and s_hi = a.hi + b.hi in
  let zeros, ones = add_kb m ~carry0:0 a b in
  if s_hi <= m then V.reduce w ~lo:s_lo ~hi:s_hi ~zeros ~ones
  else if s_lo > m && s_hi <= (2 * m) + 1 then
    (* every sum wraps exactly once *)
    V.reduce w ~lo:(s_lo - m - 1) ~hi:(s_hi - m - 1) ~zeros ~ones
  else finish w m ~lo:0 ~hi:(-1) ~zeros ~ones

let sub w m a b =
  let zeros, ones = add_kb m ~carry0:1 a (complement m b) in
  if a.lo >= b.hi then finish w m ~lo:(a.lo - b.hi) ~hi:(a.hi - b.lo) ~zeros ~ones
  else if a.hi < b.lo && a.lo - b.hi + m + 1 >= 0 then
    (* every difference is negative and wraps exactly once *)
    V.reduce w ~lo:(a.lo - b.hi + m + 1) ~hi:(a.hi - b.lo + m + 1) ~zeros ~ones
  else finish w m ~lo:0 ~hi:(-1) ~zeros ~ones

let mul w m a b =
  let tz = min 61 (trailing_zeros m a + trailing_zeros m b) in
  let zeros = (1 lsl tz) - 1 in
  let overflows = a.hi > 0 && b.hi > 0 && a.hi > max_int / b.hi in
  if overflows then finish w m ~lo:0 ~hi:(-1) ~zeros ~ones:0
  else finish w m ~lo:(a.lo * b.lo) ~hi:(a.hi * b.hi) ~zeros ~ones:0

let shl w m a b =
  let sl, sh = shift_range b in
  (* the low min(sl, w) bits are zero regardless of wrapping *)
  let low_zeros = (1 lsl min sl (min w 61)) - 1 in
  if sl = sh then begin
    let s = sl in
    let kb_zeros = ((a.zeros lsl s) lor ((1 lsl min s 61) - 1)) land m in
    let kb_ones = (a.ones lsl s) land m in
    if s >= 61 || V.bits a.hi + s > 61 then
      finish w m ~lo:0 ~hi:(-1) ~zeros:kb_zeros ~ones:kb_ones
    else finish w m ~lo:(a.lo lsl s) ~hi:(a.hi lsl s) ~zeros:kb_zeros ~ones:kb_ones
  end
  else if sh < 61 && V.bits a.hi + sh <= 61 then
    finish w m ~lo:(a.lo lsl sl) ~hi:(a.hi lsl sh) ~zeros:low_zeros ~ones:0
  else finish w m ~lo:0 ~hi:(-1) ~zeros:low_zeros ~ones:0

let lshr w m a b =
  let sl, sh = shift_range b in
  let lo = a.lo lsr sh and hi = a.hi lsr sl in
  if sl = sh then finish w m ~lo ~hi ~zeros:(a.zeros lsr sl) ~ones:(a.ones lsr sl)
  else finish w m ~lo ~hi ~zeros:0 ~ones:0

let and_ w m a b =
  finish w m ~lo:0 ~hi:(min a.hi b.hi) ~zeros:(a.zeros lor b.zeros)
    ~ones:(a.ones land b.ones)

let or_ w m a b =
  let hb = max (V.bits a.hi) (V.bits b.hi) in
  let hi = (1 lsl min hb 61) - 1 in
  let hi = if hb > 61 then -1 else hi in
  finish w m ~lo:(min m (max a.lo b.lo)) ~hi ~zeros:(a.zeros land b.zeros)
    ~ones:(a.ones lor b.ones)

let xor w m a b =
  let hb = max (V.bits a.hi) (V.bits b.hi) in
  let hi = if hb > 61 then -1 else (1 lsl hb) - 1 in
  finish w m ~lo:0 ~hi
    ~zeros:((a.zeros land b.zeros) lor (a.ones land b.ones))
    ~ones:((a.zeros land b.ones) lor (a.ones land b.zeros))

(* Decide a comparison from interval and bit facts: Some 1 / Some 0 when
   provable for every pair of member values. *)
let decide_cmp c a b =
  let kb_disjoint = a.ones land b.zeros <> 0 || b.ones land a.zeros <> 0 in
  match c with
  | Ops.Eq ->
      if a.lo = a.hi && b.lo = b.hi && a.lo = b.lo then Some 1
      else if a.hi < b.lo || b.hi < a.lo || kb_disjoint then Some 0
      else None
  | Ops.Ne ->
      if a.lo = a.hi && b.lo = b.hi && a.lo = b.lo then Some 0
      else if a.hi < b.lo || b.hi < a.lo || kb_disjoint then Some 1
      else None
  | Ops.Lt -> if a.hi < b.lo then Some 1 else if a.lo >= b.hi then Some 0 else None
  | Ops.Le -> if a.hi <= b.lo then Some 1 else if a.lo > b.hi then Some 0 else None
  | Ops.Gt -> if a.lo > b.hi then Some 1 else if a.hi <= b.lo then Some 0 else None
  | Ops.Ge -> if a.lo >= b.hi then Some 1 else if a.hi < b.lo then Some 0 else None

let icmp w c a b =
  match decide_cmp c a b with
  | Some v -> V.const w v
  | None -> V.reduce w ~lo:0 ~hi:1 ~zeros:0 ~ones:0

(* [operator ~width op vals] abstracts [Ops.eval op] followed by the mask to
   the unit width.  Inputs are the in-channel abstractions (at their own
   widths, possibly wider than the unit); any [Any] operand makes arithmetic
   unanalyzable (values may be negative native ints). *)
let operator ~width op vals =
  if List.exists is_bot vals then V.Bot
  else
    match V.mask_of width with
    | None -> V.Any
    | Some m -> (
        match List.map quad_of vals with
        | [ Some a; Some b ] -> (
            match op with
            | Ops.Add -> add width m a b
            | Ops.Sub -> sub width m a b
            | Ops.Mul -> mul width m a b
            | Ops.Shl -> shl width m a b
            | Ops.Lshr -> lshr width m a b
            | Ops.And_ -> and_ width m a b
            | Ops.Or_ -> or_ width m a b
            | Ops.Xor_ -> xor width m a b
            | Ops.Icmp c -> icmp width c a b
            | Ops.Select -> V.top width)
        | [ Some c; _; _ ] when op = Ops.Select ->
            let arm v = V.mask_to width v in
            let can_zero = c.lo = 0 and can_nonzero = c.hi > 0 in
            let t = if can_nonzero then arm (List.nth vals 1) else V.Bot in
            let f = if can_zero then arm (List.nth vals 2) else V.Bot in
            V.join width t f
        | _ -> V.top width)

(* Can the mathematical (pre-mask) result exceed the unit width?  Drives the
   range-overflow-possible lint.  Only meaningful for ops whose wrap loses
   information (Add/Sub/Mul/Shl). *)
let may_wrap ~width op vals =
  if List.exists is_bot vals then false
  else
    match V.mask_of width with
    | None -> false
    | Some m -> (
        match (op, List.map quad_of vals) with
        | Ops.Add, [ Some a; Some b ] -> a.hi + b.hi > m
        | Ops.Sub, [ Some a; Some b ] -> a.lo < b.hi
        | Ops.Mul, [ Some a; Some b ] ->
            (a.hi > 0 && b.hi > 0 && a.hi > max_int / b.hi) || a.hi * b.hi > m
        | Ops.Shl, [ Some a; Some b ] ->
            let _, sh = shift_range b in
            a.hi > 0 && V.bits a.hi + sh > V.bits m
        | (Ops.Add | Ops.Sub | Ops.Mul | Ops.Shl), _ -> true
        | _ -> false)

let swap_cmp = function
  | Ops.Eq -> Ops.Eq
  | Ops.Ne -> Ops.Ne
  | Ops.Lt -> Ops.Gt
  | Ops.Le -> Ops.Ge
  | Ops.Gt -> Ops.Lt
  | Ops.Ge -> Ops.Le

let negate_cmp = function
  | Ops.Eq -> Ops.Ne
  | Ops.Ne -> Ops.Eq
  | Ops.Lt -> Ops.Ge
  | Ops.Le -> Ops.Gt
  | Ops.Gt -> Ops.Le
  | Ops.Ge -> Ops.Lt

(* Refine the abstraction [a] of the left operand of [a cmp b] under the
   assumption that the comparison evaluated to [polarity].  Sound only when
   the compared channel values equal [a]'s members directly (same width, no
   intervening masking) — the analyzer checks this before calling. *)
let refine_cmp ~width cmp ~polarity a b =
  match (quad_of a, quad_of b) with
  | Some qa, Some qb ->
      let cmp = if polarity then cmp else negate_cmp cmp in
      let constraint_ =
        match cmp with
        | Ops.Eq -> V.reduce width ~lo:qb.lo ~hi:qb.hi ~zeros:qb.zeros ~ones:qb.ones
        | Ops.Ne ->
            if qb.lo = qb.hi && qa.lo = qb.lo then
              V.reduce width ~lo:(qa.lo + 1) ~hi:qa.hi ~zeros:0 ~ones:0
            else if qb.lo = qb.hi && qa.hi = qb.lo then
              V.reduce width ~lo:qa.lo ~hi:(qa.hi - 1) ~zeros:0 ~ones:0
            else a
        | Ops.Lt -> V.reduce width ~lo:0 ~hi:(qb.hi - 1) ~zeros:0 ~ones:0
        | Ops.Le -> V.reduce width ~lo:0 ~hi:qb.hi ~zeros:0 ~ones:0
        | Ops.Gt -> V.reduce width ~lo:(qb.lo + 1) ~hi:max_int ~zeros:0 ~ones:0
        | Ops.Ge -> V.reduce width ~lo:qb.lo ~hi:max_int ~zeros:0 ~ones:0
      in
      V.meet width a constraint_
  | _ -> a
