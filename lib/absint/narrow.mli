(** Verified narrowing: rewrite a DFG down to the envelope proven by
    {!Analyze} — shrink unit widths, fold constant operators, collapse
    branches/muxes with proven-constant steering, and delete units that
    provably never fire.  The pass rebuilds the graph (unit and channel ids
    are renumbered); kept channels retain their buffer annotations and
    back-edge marks.  A diverged analysis yields an unchanged copy.

    The rewrites preserve token values and per-channel token order; the
    flow additionally gates the result behind random-simulation
    equivalence (see [Lint.Engine.check_narrowing]), so a transfer-function
    bug aborts the flow instead of shipping a wrong circuit. *)

type entry = {
  nr_uid : Dataflow.Graph.unit_id;  (** uid in the original graph *)
  nr_label : string;
  nr_old_width : int;
  nr_new_width : int;
  nr_range : string;  (** printed abstract value of the unit's output *)
}

type report = {
  r_narrowed : entry list;
  r_folded : (Dataflow.Graph.unit_id * string * int) list;
      (** operators folded to constants: uid, label, value *)
  r_rewired : (Dataflow.Graph.unit_id * string * string) list;
      (** branch/mux/cmerge specialisations: uid, label, description *)
  r_deleted : (Dataflow.Graph.unit_id * string) list;
  r_bits_before : int;  (** total channel bits *)
  r_bits_after : int;
  r_units_before : int;
  r_units_after : int;
  r_diverged : bool;
}

val changed : report -> bool

val run : Analyze.result -> Dataflow.Graph.t -> Dataflow.Graph.t * report
(** [run res g] where [res = Analyze.run g].  Raises [Failure] if the
    rebuilt graph fails [Graph.validate] (an internal invariant bug, never
    expected on a valid input graph). *)

val pp_report : Format.formatter -> report -> unit
