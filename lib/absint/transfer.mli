(** Abstract transfer functions for {!Dataflow.Ops} operators: each
    abstracts [Ops.eval] followed by the simulator's mask to the unit
    width.  Operand channels may be wider than the unit; wrapping results
    keep only their (masked) known-bits facts. *)

val operator : width:int -> Dataflow.Ops.t -> Value.t list -> Value.t
(** Inputs are the in-channel abstractions in port order. *)

val may_wrap : width:int -> Dataflow.Ops.t -> Value.t list -> bool
(** Whether the mathematical (pre-mask) result of Add/Sub/Mul/Shl can fall
    outside the unit width; always [false] for the other operators. *)

val swap_cmp : Dataflow.Ops.cmp -> Dataflow.Ops.cmp
(** Mirror a comparison: [a cmp b <=> b (swap_cmp cmp) a]. *)

val negate_cmp : Dataflow.Ops.cmp -> Dataflow.Ops.cmp

val refine_cmp :
  width:int -> Dataflow.Ops.cmp -> polarity:bool -> Value.t -> Value.t -> Value.t
(** [refine_cmp ~width cmp ~polarity a b] refines the abstraction [a] of
    the left operand of [a cmp b] under the assumption the comparison
    evaluated to [polarity].  Sound only when the compared values are
    exactly [a]'s members (no intervening masking). *)
