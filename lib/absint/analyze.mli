(** Whole-graph abstract interpretation over the token-carrying DFG.

    Maps every channel to a {!Value.t} over-approximating the data values of
    all tokens it ever carries, for any memory contents.  Worklist fixpoint
    with widening after a per-channel update budget, a global evaluation cap
    (divergence backstop), and two descending refinement passes.  Branch
    outputs are refined by tracing the condition to a comparison on the
    branch's own data value (through Fork/Buffer/Join/And/Or). *)

type result = {
  values : Value.t array;  (** indexed by channel id *)
  diverged : bool;
      (** the evaluation cap was hit; all values fell back to top *)
  evals : int;
}

val run : ?widen_after:int -> ?max_evals:int -> Dataflow.Graph.t -> result
(** Buffers and back-edge marks are irrelevant to the result, so the graph
    does not need seeded buffers.  [widen_after] is the per-channel update
    budget before widening (default 16); [max_evals] the global unit
    evaluation cap (default [512 * (n_units + 1)]). *)

val value : result -> Dataflow.Graph.channel_id -> Value.t

val cond_cases : Value.t -> bool * bool
(** Possible outcomes of a Branch condition test ([value land 1]):
    [(can_be_true, can_be_false)]. *)

val mux_arms : sel:Value.t -> arms:int -> int list
(** Data arms a Mux with [arms] data inputs can select given the selector
    abstraction ([k = sel mod arms]). *)
