(** Throughput & liveness certification of a buffered dataflow circuit
    (LP-free; the independent oracle for the buffer-placement MILP).

    The steady-state throughput of a choice-free dataflow circuit is
    governed by its cycles: a cycle holding [M] tokens whose units and
    opaque buffers accumulate [T] cycles of sequential latency sustains
    at most [M/T] initiations per cycle (the classical marked-graph
    bound the MILP's fluid-retiming constraints telescope into). This
    module computes that bound {e directly on the graph} — per cyclic
    SCC, as a minimum cycle ratio via Howard's policy iteration, with
    Karp's algorithm as an independent cross-check — plus the two
    marked-graph liveness conditions:

    - every cycle must carry at least one unit of sequential latency
      (an opaque buffer or a pipelined unit), else it is a
      combinational loop;
    - every cycle must have spare capacity beyond its token count,
      else no transfer on it can ever fire (token deadlock).

    Per channel [c] with source unit [u] the certifier uses
    - tokens: 1 if [c] is a loop back edge (front-end marks, else DFS);
    - latency: [Unit_kind.latency u] plus 1 if [c] has an opaque buffer;
    - capacity: [u]'s pipeline slots plus [c]'s buffer slots. *)

type cycle = {
  cy_channels : Dataflow.Graph.channel_id list;  (** in traversal order *)
  cy_tokens : int;
  cy_latency : int;
  cy_capacity : int;
}

type violation =
  | Comb_loop of cycle  (** zero sequential latency around the cycle *)
  | Deadlock of cycle   (** tokens fill every slot: no transfer can fire *)

type scc_cert = {
  sc_units : Dataflow.Graph.unit_id list;
  sc_ratio : float;   (** minimum tokens/latency cycle ratio (0 on a comb loop) *)
  sc_bound : float;   (** certified throughput bound: [min 1. sc_ratio] *)
  sc_critical : cycle option;  (** a cycle attaining the ratio *)
  sc_karp : float option;      (** Karp's independently computed ratio *)
  sc_violations : violation list;
}

type t = {
  sccs : scc_cert list;       (** one per cyclic SCC, in {!Dataflow.Analysis.cyclic_sccs} order *)
  throughput : float;         (** min bound over SCCs; 1.0 for an acyclic graph *)
  violations : violation list;
  live : bool;                (** no violations *)
  howard_iterations : int;
  cycles_evaluated : int;     (** policy cycles examined across all Howard runs *)
  karp_checks : int;
}

val certify : ?karp:bool -> Dataflow.Graph.t -> t
(** Certify the graph's current buffer placement. [karp] (default
    [true]) also runs Karp's algorithm on every throughput instance and
    records its value per SCC. Emits [perf.*] {!Support.Trace}
    counters. *)

val karp_agrees : ?tol:float -> t -> bool
(** Every SCC where Karp ran agrees with Howard within [tol]
    (default 1e-9). *)

val pp_cycle : Dataflow.Graph.t -> Format.formatter -> cycle -> unit
(** [u3(mux2) -c7-> u5(add) -c9-> u3] with the token/latency/capacity
    totals. *)

val pp : Format.formatter -> t -> unit
(** One-line human summary. *)

val to_json : t -> string
(** One JSON object (bound, liveness, per-SCC ratios, counters). *)
