module G = Dataflow.Graph
module K = Dataflow.Unit_kind
module A = Dataflow.Analysis
module CR = Cycle_ratio
module Trace = Support.Trace

type cycle = {
  cy_channels : G.channel_id list;
  cy_tokens : int;
  cy_latency : int;
  cy_capacity : int;
}

type violation = Comb_loop of cycle | Deadlock of cycle

type scc_cert = {
  sc_units : G.unit_id list;
  sc_ratio : float;
  sc_bound : float;
  sc_critical : cycle option;
  sc_karp : float option;
  sc_violations : violation list;
}

type t = {
  sccs : scc_cert list;
  throughput : float;
  violations : violation list;
  live : bool;
  howard_iterations : int;
  cycles_evaluated : int;
  karp_checks : int;
}

(* tokens, sequential latency, token capacity of one channel *)
let channel_weights g is_back cid =
  let c = G.channel g cid in
  let kind = (G.unit_node g c.G.src).G.kind in
  let tokens = if is_back cid then 1 else 0 in
  let reg, slots =
    match G.buffer g cid with
    | Some { G.transparent = false; slots } -> (1, slots)
    | Some { G.transparent = true; slots } -> (0, slots)
    | None -> (0, 0)
  in
  (* a pipelined unit's stages hold tokens too; a Buffer unit's own
     capacity is its queue, not its latency *)
  let unit_cap = match kind with K.Buffer { slots; _ } -> slots | k -> K.latency k in
  (tokens, K.latency kind + reg, unit_cap + slots)

let certify ?(karp = true) g =
  let back =
    match G.marked_back_edges g with [] -> A.back_edges g | marked -> marked
  in
  let back_set = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace back_set c ()) back;
  let weights = channel_weights g (Hashtbl.mem back_set) in
  let howard_iters = ref 0 in
  let cycles_eval = ref 0 in
  let karp_checks = ref 0 in
  let track (st : CR.stats) =
    howard_iters := !howard_iters + st.CR.iterations;
    cycles_eval := !cycles_eval + st.CR.cycles_evaluated
  in
  let sccs =
    List.map
      (fun units ->
        let idx = Hashtbl.create 16 in
        List.iteri (fun i u -> Hashtbl.replace idx u i) units;
        let n = List.length units in
        let channels =
          G.fold_channels g
            (fun acc c ->
              if Hashtbl.mem idx c.G.src && Hashtbl.mem idx c.G.dst then c.G.cid :: acc
              else acc)
            []
          |> List.rev
        in
        let instance sel =
          {
            CR.n_nodes = n;
            edges =
              List.map
                (fun cid ->
                  let c = G.channel g cid in
                  let cost, time = sel (weights cid) in
                  {
                    CR.e_src = Hashtbl.find idx c.G.src;
                    e_dst = Hashtbl.find idx c.G.dst;
                    e_cost = cost;
                    e_time = time;
                    e_id = cid;
                  })
                channels;
          }
        in
        let cycle_of edges =
          let chans = List.map (fun e -> e.CR.e_id) edges in
          let sum f = List.fold_left (fun a cid -> a + f (weights cid)) 0 chans in
          {
            cy_channels = chans;
            cy_tokens = sum (fun (m, _, _) -> m);
            cy_latency = sum (fun (_, t, _) -> t);
            cy_capacity = sum (fun (_, _, cap) -> cap);
          }
        in
        (* liveness: a zero-total-latency cycle is a combinational loop *)
        let comb =
          match CR.min_cycle_mean (instance (fun (_, t, _) -> (t, 1))) with
          | Some ({ CR.ratio; cycle }, st) ->
            track st;
            if ratio <= 1e-12 then [ Comb_loop (cycle_of cycle) ] else []
          | None -> []
        in
        (* liveness: a cycle whose tokens fill its whole capacity can
           never move a token (zero slack) *)
        let dead =
          match CR.min_cycle_mean (instance (fun (m, _, cap) -> (cap - m, 1))) with
          | Some ({ CR.ratio; cycle }, st) ->
            track st;
            if ratio <= 1e-12 then [ Deadlock (cycle_of cycle) ] else []
          | None -> []
        in
        let ratio, bound, critical, karp_v =
          if comb <> [] then (0., 0., None, None)
          else begin
            let inst = instance (fun (m, t, _) -> (m, t)) in
            match CR.howard inst with
            | None -> (infinity, 1., None, None)
            | Some ({ CR.ratio; cycle }, st) ->
              track st;
              let kv =
                if karp then begin
                  incr karp_checks;
                  CR.karp inst
                end
                else None
              in
              (ratio, Float.min 1. ratio, Some (cycle_of cycle), kv)
          end
        in
        {
          sc_units = units;
          sc_ratio = ratio;
          sc_bound = bound;
          sc_critical = critical;
          sc_karp = karp_v;
          sc_violations = comb @ dead;
        })
      (A.cyclic_sccs g)
  in
  let violations = List.concat_map (fun s -> s.sc_violations) sccs in
  Trace.add "perf.sccs" (List.length sccs);
  Trace.add "perf.cycles" !cycles_eval;
  Trace.add "perf.howard.iters" !howard_iters;
  Trace.add "perf.karp.checks" !karp_checks;
  {
    sccs;
    throughput = List.fold_left (fun a s -> Float.min a s.sc_bound) 1. sccs;
    violations;
    live = violations = [];
    howard_iterations = !howard_iters;
    cycles_evaluated = !cycles_eval;
    karp_checks = !karp_checks;
  }

let karp_agrees ?(tol = 1e-9) t =
  List.for_all
    (fun s ->
      match s.sc_karp with None -> true | Some k -> Float.abs (k -. s.sc_ratio) <= tol)
    t.sccs

let pp_cycle g fmt cy =
  let unit_desc u =
    let nd = G.unit_node g u in
    Format.asprintf "u%d(%a)" u K.pp nd.G.kind
  in
  (match cy.cy_channels with
  | [] -> ()
  | first :: _ ->
    let c0 = G.channel g first in
    Fmt.pf fmt "%s" (unit_desc c0.G.src);
    List.iter
      (fun cid ->
        let c = G.channel g cid in
        Fmt.pf fmt " -c%d-> %s" cid (unit_desc c.G.dst))
      cy.cy_channels);
  Fmt.pf fmt " [tokens %d, latency %d, capacity %d]" cy.cy_tokens cy.cy_latency
    cy.cy_capacity

let pp fmt t =
  Fmt.pf fmt "certified bound %.4f over %d cyclic SCC(s), %s (%d Howard iteration(s), %d Karp check(s))"
    t.throughput (List.length t.sccs)
    (if t.live then "live"
     else Printf.sprintf "%d liveness violation(s)" (List.length t.violations))
    t.howard_iterations t.karp_checks

let to_json t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "{\"throughput_bound\":%.6f,\"live\":%b,\"violations\":%d,"
       t.throughput t.live (List.length t.violations));
  Buffer.add_string b
    (Printf.sprintf
       "\"howard_iterations\":%d,\"cycles_evaluated\":%d,\"karp_checks\":%d,\"sccs\":["
       t.howard_iterations t.cycles_evaluated t.karp_checks);
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"units\":%d,\"ratio\":%s,\"bound\":%.6f,\"karp\":%s,\"violations\":%d}"
           (List.length s.sc_units)
           (if s.sc_ratio = infinity then "null" else Printf.sprintf "%.6f" s.sc_ratio)
           s.sc_bound
           (match s.sc_karp with None -> "null" | Some k -> Printf.sprintf "%.6f" k)
           (List.length s.sc_violations)))
    t.sccs;
  Buffer.add_string b "]}";
  Buffer.contents b
