(** Minimum cycle ratio / minimum cycle mean over integer-weighted
    directed graphs.

    The primary solver is Howard's policy iteration (the consistently
    fastest algorithm in Dasdan's minimum cycle ratio survey), which
    also yields a {e witness cycle} attaining the optimum. An
    independent implementation of Karp's dynamic program is provided as
    a cross-check: the two share no code beyond this interface, so an
    implementation bug in one is caught by disagreement with the other.

    Graphs are tiny abstract instances (nodes [0..n_nodes-1], an edge
    list) built by the callers ({!Certify}) from dataflow SCCs; costs
    and transit times are integers so every cycle ratio is an exact
    rational evaluated in one floating division. *)

type edge = {
  e_src : int;
  e_dst : int;
  e_cost : int;  (** numerator weight (tokens, latency, slack, …) *)
  e_time : int;  (** denominator weight; must be >= 0, and every cycle
                     must have positive total time *)
  e_id : int;    (** caller's tag (e.g. a channel id), round-tripped
                     into the witness *)
}

type graph = { n_nodes : int; edges : edge list }

type stats = {
  iterations : int;        (** policy-improvement rounds until fixpoint *)
  cycles_evaluated : int;  (** policy cycles evaluated across all rounds *)
}

type witness = {
  ratio : float;        (** minimum of cost(C)/time(C) over all cycles C *)
  cycle : edge list;    (** a cycle attaining it, in traversal order *)
}

val howard : graph -> (witness * stats) option
(** Minimum cycle ratio by policy iteration. [None] iff the graph is
    acyclic. Raises [Invalid_argument] if an edge endpoint is out of
    range or a cycle with non-positive total time is encountered —
    callers must rule out zero-time cycles (combinational loops)
    first, e.g. with {!min_cycle_mean} on the time weights.

    Policy cycles are anchored at their minimum node id so repeated
    evaluations of one policy share a distance frame; if improvement
    still fails to settle (an equal-ratio plateau), the best cycle
    seen is returned only when {!karp} independently confirms its
    ratio, and [Invalid_argument] is raised otherwise. *)

val min_cycle_mean : graph -> (witness * stats) option
(** Minimum cycle mean of [e_cost]: {!howard} with every transit time
    taken as 1. Negative costs are fine; a minimum mean <= 0 exposes a
    non-positive-weight cycle. *)

val karp : graph -> float option
(** Minimum cycle ratio by Karp's dynamic program, independent of
    {!howard}. Zero-time edges are eliminated by a shortest-path
    closure (requiring their costs to be non-negative) and edges with
    [e_time > 1] are expanded into unit-time chains, reducing the
    ratio problem to minimum cycle mean per SCC. [None] iff acyclic;
    raises [Invalid_argument] on zero-time cycles or negative-cost
    zero-time edges. *)
