type edge = { e_src : int; e_dst : int; e_cost : int; e_time : int; e_id : int }
type graph = { n_nodes : int; edges : edge list }
type stats = { iterations : int; cycles_evaluated : int }
type witness = { ratio : float; cycle : edge list }

let eps = 1e-10

(* ---------- Karp's dynamic program (cross-check) ---------- *)

(* Tarjan over a plain adjacency array; returns components as int lists. *)
let sccs_of n (adj : int list array) =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let comps = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      adj.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      comps := pop [] :: !comps
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  !comps

(* Minimum cycle mean of one SCC (nodes relabelled 0..m-1, intra edges
   as (src, dst, cost)), by Karp's theorem:
     lambda* = min_v max_k (D_m(v) - D_k(v)) / (m - k)
   with D_k(v) the cheapest k-edge walk from an arbitrary source. *)
let karp_mean m edges =
  if edges = [] then None
  else begin
    let inf = max_int / 4 in
    let src = match edges with (s, _, _) :: _ -> s | [] -> assert false in
    let d = Array.make_matrix (m + 1) m inf in
    d.(0).(src) <- 0;
    for k = 1 to m do
      List.iter
        (fun (u, v, c) ->
          if d.(k - 1).(u) < inf && d.(k - 1).(u) + c < d.(k).(v) then
            d.(k).(v) <- d.(k - 1).(u) + c)
        edges
    done;
    let best = ref infinity in
    for v = 0 to m - 1 do
      if d.(m).(v) < inf then begin
        let worst = ref neg_infinity in
        for k = 0 to m - 1 do
          if d.(k).(v) < inf then begin
            let r = float_of_int (d.(m).(v) - d.(k).(v)) /. float_of_int (m - k) in
            if r > !worst then worst := r
          end
        done;
        if !worst > neg_infinity && !worst < !best then best := !worst
      end
    done;
    if !best = infinity then None else Some !best
  end

let karp (gr : graph) =
  let n = gr.n_nodes in
  List.iter
    (fun e ->
      if e.e_src < 0 || e.e_src >= n || e.e_dst < 0 || e.e_dst >= n then
        invalid_arg "Cycle_ratio.karp: edge endpoint out of range";
      if e.e_time < 0 then invalid_arg "Cycle_ratio.karp: negative transit time";
      if e.e_time = 0 && e.e_cost < 0 then
        invalid_arg "Cycle_ratio.karp: negative cost on zero-time edge")
    gr.edges;
  let zero = List.filter (fun e -> e.e_time = 0) gr.edges in
  let timed = List.filter (fun e -> e.e_time > 0) gr.edges in
  (* reject zero-time cycles (the closure below would diverge on them) *)
  let zadj = Array.make n [] in
  List.iter (fun e -> zadj.(e.e_src) <- e :: zadj.(e.e_src)) zero;
  let color = Array.make n 0 in
  let rec zdfs v =
    color.(v) <- 1;
    List.iter
      (fun e ->
        match color.(e.e_dst) with
        | 1 -> invalid_arg "Cycle_ratio.karp: zero-time cycle"
        | 0 -> zdfs e.e_dst
        | _ -> ())
      zadj.(v);
    color.(v) <- 2
  in
  for v = 0 to n - 1 do
    if color.(v) = 0 then zdfs v
  done;
  if timed = [] then None
  else begin
    (* heads = targets of timed edges: the only nodes the contracted
       graph keeps. z v = cheapest zero-time distance from a head. *)
    let heads = List.sort_uniq compare (List.map (fun e -> e.e_dst) timed) in
    let head_id = Hashtbl.create 16 in
    List.iteri (fun i h -> Hashtbl.replace head_id h i) heads;
    let inf = max_int / 4 in
    (* the zero-time subgraph is a DAG: relax in its topological order *)
    let zorder =
      let indeg = Array.make n 0 in
      List.iter (fun e -> indeg.(e.e_dst) <- indeg.(e.e_dst) + 1) zero;
      let q = Queue.create () in
      for v = 0 to n - 1 do
        if indeg.(v) = 0 then Queue.add v q
      done;
      let order = ref [] in
      while not (Queue.is_empty q) do
        let v = Queue.pop q in
        order := v :: !order;
        List.iter
          (fun e ->
            indeg.(e.e_dst) <- indeg.(e.e_dst) - 1;
            if indeg.(e.e_dst) = 0 then Queue.add e.e_dst q)
          zadj.(v)
      done;
      List.rev !order
    in
    let zdist_from h =
      let d = Array.make n inf in
      d.(h) <- 0;
      List.iter
        (fun v ->
          if d.(v) < inf then
            List.iter
              (fun e -> if d.(v) + e.e_cost < d.(e.e_dst) then d.(e.e_dst) <- d.(v) + e.e_cost)
              zadj.(v))
        zorder;
      d
    in
    (* expanded graph: head h --(z + cost, over e_time unit steps)--> head h'.
       Chain nodes are appended after the heads. *)
    let next_id = ref (List.length heads) in
    let xedges = ref [] in
    List.iter
      (fun h ->
        let z = zdist_from h in
        List.iter
          (fun e ->
            if z.(e.e_src) < inf then begin
              let cost = z.(e.e_src) + e.e_cost in
              let hs = Hashtbl.find head_id h and hd = Hashtbl.find head_id e.e_dst in
              if e.e_time = 1 then xedges := (hs, hd, cost) :: !xedges
              else begin
                let rec chain u k =
                  if k = 1 then xedges := (u, hd, 0) :: !xedges
                  else begin
                    let w = !next_id in
                    incr next_id;
                    xedges := (u, w, 0) :: !xedges;
                    chain w (k - 1)
                  end
                in
                let w0 = !next_id in
                incr next_id;
                xedges := (hs, w0, cost) :: !xedges;
                chain w0 (e.e_time - 1)
              end
            end)
          timed)
      heads;
    let xn = !next_id in
    let xadj = Array.make xn [] in
    List.iter (fun (u, v, _) -> xadj.(u) <- v :: xadj.(u)) !xedges;
    let best = ref infinity in
    List.iter
      (fun comp ->
        match comp with
        | [] | [ _ ] when not (List.exists (fun (u, v, _) -> u = v && comp = [ u ]) !xedges)
          -> ()
        | _ ->
          let m = List.length comp in
          let local = Hashtbl.create 16 in
          List.iteri (fun i u -> Hashtbl.replace local u i) comp;
          let intra =
            List.filter_map
              (fun (u, v, c) ->
                match (Hashtbl.find_opt local u, Hashtbl.find_opt local v) with
                | Some lu, Some lv -> Some (lu, lv, c)
                | _ -> None)
              !xedges
          in
          (match karp_mean m intra with
          | Some r when r < !best -> best := r
          | _ -> ()))
      (sccs_of xn xadj);
    if !best = infinity then None else Some !best
  end

(* ---------- Howard's policy iteration ---------- *)

(* A policy picks one out-edge per node; its functional graph is a set
   of rho-shaped chains into cycles. Evaluation computes, per node, the
   ratio [lam] of the policy cycle it drains into and a reduced
   distance [dist] to it; improvement switches a node's edge first
   towards a strictly smaller successor [lam], then (within the same
   ratio class) towards a strictly smaller reduced distance. At the
   fixpoint the smallest policy-cycle ratio is the global minimum. *)
let howard (gr : graph) =
  let n = gr.n_nodes in
  let out = Array.make n [] in
  let inn = Array.make n [] in
  List.iter
    (fun e ->
      if e.e_src < 0 || e.e_src >= n || e.e_dst < 0 || e.e_dst >= n then
        invalid_arg "Cycle_ratio.howard: edge endpoint out of range";
      if e.e_time < 0 then invalid_arg "Cycle_ratio.howard: negative transit time";
      out.(e.e_src) <- e :: out.(e.e_src);
      inn.(e.e_dst) <- e :: inn.(e.e_dst))
    gr.edges;
  (* Trim nodes that cannot lie on a cycle: repeatedly drop nodes whose
     every out-edge leads to an already-dropped node. *)
  let alive = Array.make n true in
  let outdeg = Array.map List.length out in
  let q = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v q) outdeg;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    if alive.(v) then begin
      alive.(v) <- false;
      List.iter
        (fun e ->
          if alive.(e.e_src) then begin
            outdeg.(e.e_src) <- outdeg.(e.e_src) - 1;
            if outdeg.(e.e_src) = 0 then Queue.add e.e_src q
          end)
        inn.(v)
    end
  done;
  if not (Array.exists (fun a -> a) alive) then None
  else begin
    Array.iteri (fun v es -> out.(v) <- List.filter (fun e -> alive.(e.e_dst)) es) out;
    let pi = Array.make n None in
    Array.iteri (fun v a -> if a then pi.(v) <- Some (List.hd out.(v))) alive;
    let policy v = match pi.(v) with Some e -> e | None -> assert false in
    let lam = Array.make n infinity in
    let dist = Array.make n 0. in
    let cycles_evaluated = ref 0 in
    (* Evaluate the current policy: fills [lam]/[dist] for every alive
       node and returns the best (ratio, cycle) among policy cycles. *)
    let evaluate () =
      let state = Array.make n 0 in
      (* 0 = untouched, 1 = on the current walk, 2 = evaluated *)
      let best = ref None in
      for s = 0 to n - 1 do
        if alive.(s) && state.(s) = 0 then begin
          let path = ref [] in
          let v = ref s in
          while state.(!v) = 0 do
            state.(!v) <- 1;
            path := !v :: !path;
            v := (policy !v).e_dst
          done;
          (if state.(!v) = 1 then begin
             (* the walk closed a new policy cycle at [!v] *)
             incr cycles_evaluated;
             let rec cyc acc = function
               | [] -> assert false
               | u :: rest -> if u = !v then u :: acc else cyc (u :: acc) rest
             in
             let nodes = cyc [] !path in
             let edges_c = List.map policy nodes in
             let csum = List.fold_left (fun a e -> a + e.e_cost) 0 edges_c in
             let tsum = List.fold_left (fun a e -> a + e.e_time) 0 edges_c in
             if tsum <= 0 then
               invalid_arg "Cycle_ratio.howard: cycle with non-positive total time";
             let r = float_of_int csum /. float_of_int tsum in
             (match !best with
             | Some (br, _) when br <= r -> ()
             | _ -> best := Some (r, edges_c));
             (* anchor the cycle: lam = r everywhere, distances unwind
                backwards from dist(head) = 0. The head is the cycle's
                minimum node id — a walk-order-dependent anchor makes the
                distance frame shift between evaluations of the same
                policy cycle, and the improvement step can then oscillate
                between equal-ratio cycles forever. *)
             let arr0 = Array.of_list nodes in
             let k = Array.length arr0 in
             let mi = ref 0 in
             Array.iteri (fun i u -> if u < arr0.(!mi) then mi := i) arr0;
             let arr = Array.init k (fun i -> arr0.((i + !mi) mod k)) in
             lam.(arr.(0)) <- r;
             dist.(arr.(0)) <- 0.;
             state.(arr.(0)) <- 2;
             for i = k - 1 downto 1 do
               let u = arr.(i) in
               let e = policy u in
               lam.(u) <- r;
               dist.(u) <-
                 (float_of_int e.e_cost -. (r *. float_of_int e.e_time)) +. dist.(e.e_dst);
               state.(u) <- 2
             done
           end);
          (* tree part of the walk: successors were evaluated above (or
             in an earlier walk), head of [path] first *)
          List.iter
            (fun u ->
              if state.(u) = 1 then begin
                let e = policy u in
                lam.(u) <- lam.(e.e_dst);
                dist.(u) <-
                  (float_of_int e.e_cost -. (lam.(e.e_dst) *. float_of_int e.e_time))
                  +. dist.(e.e_dst);
                state.(u) <- 2
              end)
            !path
        end
      done;
      !best
    in
    let improve () =
      let changed = ref false in
      for v = 0 to n - 1 do
        if alive.(v) then begin
          let min_lam =
            List.fold_left (fun a e -> Float.min a lam.(e.e_dst)) infinity out.(v)
          in
          let target_lam = if min_lam < lam.(v) -. eps then min_lam else lam.(v) in
          let best = ref None in
          List.iter
            (fun e ->
              if lam.(e.e_dst) <= target_lam +. eps then begin
                let d =
                  (float_of_int e.e_cost -. (target_lam *. float_of_int e.e_time))
                  +. dist.(e.e_dst)
                in
                match !best with Some (bd, _) when bd <= d -> () | _ -> best := Some (d, e)
              end)
            out.(v);
          match !best with
          | Some (bd, e) when e != policy v ->
            if min_lam < lam.(v) -. eps || bd < dist.(v) -. eps then begin
              pi.(v) <- Some e;
              changed := true
            end
          | _ -> ()
        end
      done;
      !changed
    in
    let iterations = ref 0 in
    (* global best over all evaluations: every policy cycle is a real
       cycle, so its ratio upper-bounds the optimum, and at a normal
       fixpoint the last evaluation attains the minimum *)
    let best = ref None in
    let continue_ = ref true in
    let max_iterations = 1_000 + (10 * n) in
    let stalled = ref false in
    while !continue_ && not !stalled do
      incr iterations;
      (match evaluate () with
      | Some (r, c) -> (
        match !best with Some (br, _) when br <= r -> () | _ -> best := Some (r, c))
      | None -> ());
      continue_ := improve ();
      if !continue_ && !iterations >= max_iterations then stalled := true
    done;
    (* Improvement that never settles means the policy is oscillating on
       an equal-ratio plateau (floating-point ties). The best cycle seen
       is then almost certainly optimal — but only return it if the
       independent Karp DP confirms the ratio; otherwise fail loudly. *)
    if !stalled then begin
      let confirmed =
        match (!best, try karp gr with Invalid_argument _ -> None) with
        | Some (r, _), Some kr -> Float.abs (r -. kr) <= 1e-9 *. Float.max 1. (Float.abs kr)
        | _ -> false
      in
      if not confirmed then
        invalid_arg "Cycle_ratio.howard: policy iteration failed to converge"
    end;
    match !best with
    | None -> assert false (* trimmed graph always has a policy cycle *)
    | Some (r, cycle) ->
      Some
        ( { ratio = r; cycle },
          { iterations = !iterations; cycles_evaluated = !cycles_evaluated } )
  end

let min_cycle_mean gr =
  howard { gr with edges = List.map (fun e -> { e with e_time = 1 }) gr.edges }
