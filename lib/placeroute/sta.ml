module L = Techmap.Lutgraph

type report = {
  cp : float;
  logic_levels : int;
  n_luts : int;
  n_ffs : int;
  wirelength : int;
  critical_path : int list;
}

let run net (lg : L.t) (pl : Place.t) =
  (* arrival time per LUT, processed in AIG-root order (topological) *)
  let n = L.n_luts lg in
  let arrival = Array.make n 0. in
  let pred = Array.make n (-1) in
  let in_edges = Array.make n [] in
  let cap_edges = ref [] in
  List.iter
    (fun { L.e_src; e_dst } ->
      match e_dst with
      | L.Lut l -> in_edges.(l) <- e_src :: in_edges.(l)
      | L.Seq _ -> cap_edges := (e_src, e_dst) :: !cap_edges)
    lg.L.edges;
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare lg.L.luts.(a).L.root lg.L.luts.(b).L.root) order;
  let item = Place.item_of_endpoint in
  let cp = ref 0. in
  let cp_end = ref (-1) in
  Array.iter
    (fun l ->
      let t = ref 0. in
      List.iter
        (fun src ->
          let w = Arch.wire_delay (Place.distance pl (item src) (item (L.Lut l))) in
          let base = match src with L.Lut s -> arrival.(s) | L.Seq _ -> 0. in
          if base +. w > !t then begin
            t := base +. w;
            pred.(l) <- (match src with L.Lut s -> s | L.Seq _ -> -1)
          end)
        in_edges.(l);
      arrival.(l) <- !t +. Arch.lut_delay;
      if arrival.(l) > !cp then begin
        cp := arrival.(l);
        cp_end := l
      end)
    order;
  List.iter
    (fun (src, dst) ->
      let w = Arch.wire_delay (Place.distance pl (item src) (item dst)) in
      let base = match src with L.Lut s -> arrival.(s) | L.Seq _ -> 0. in
      if base +. w > !cp then begin
        cp := base +. w;
        cp_end := (match src with L.Lut s -> s | L.Seq _ -> -1)
      end)
    !cap_edges;
  let critical_path =
    let rec walk l acc = if l < 0 then acc else walk pred.(l) (l :: acc) in
    walk !cp_end []
  in
  {
    cp = !cp;
    logic_levels = lg.L.max_level;
    n_luts = n;
    n_ffs = Net.count_ffs net;
    wirelength = pl.Place.wirelength;
    critical_path;
  }

let analyze ?seed ?effort net lg =
  Support.Trace.with_span ~cat:"placeroute" "placeroute:sta" @@ fun () ->
  let pl =
    Support.Trace.with_span ~cat:"placeroute" "placeroute:place" (fun () ->
        Place.run ?seed ?effort net lg)
  in
  run net lg pl

let pp_critical_path fmt g (lg : L.t) report =
  Format.fprintf fmt "critical path (%.2f ns, %d LUTs):@\n" report.cp
    (List.length report.critical_path);
  List.iter
    (fun l ->
      let owner = lg.L.luts.(l).L.owner in
      let label =
        if owner >= 0 && owner < Dataflow.Graph.n_units g then
          (Dataflow.Graph.unit_node g owner).Dataflow.Graph.label
        else "<io>"
      in
      Format.fprintf fmt "  lut%-5d in %s@\n" l label)
    report.critical_path