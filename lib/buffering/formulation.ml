module G = Dataflow.Graph
module K = Dataflow.Unit_kind
module M = Timing.Model

type config = {
  cp_target : float;
  alpha : float;
  beta : float;
  use_penalty : bool;
  node_limit : int;
}

let default_config =
  { cp_target = 4.2; alpha = 10.; beta = 0.05; use_penalty = true; node_limit = 20_000 }

type placement = {
  new_buffers : G.channel_id list;
  all_buffered : G.channel_id list;
  throughput : float list;
  objective : float;
  proved_optimal : bool;
  unfixable_paths : int;
  milp_vars : int;
  milp_constrs : int;
  lp : Milp.Lp.t;
  solution : float array;
}

let solve cfg g (model : M.t) cfdfcs =
  let lp = Milp.Lp.create (G.name g ^ "_buffering") in
  let cp = cfg.cp_target in
  let unfixable = ref 0 in
  (* ---- R_c variables ---- *)
  let r_vars : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let is_buffered c =
    match G.buffer g c with Some { G.transparent = false; _ } -> true | _ -> false
  in
  let r_of c =
    match Hashtbl.find_opt r_vars c with
    | Some v -> v
    | None ->
      let v = Milp.Lp.add_var lp ~kind:Milp.Lp.Binary (Printf.sprintf "R_c%d" c) in
      if is_buffered c then Milp.Lp.set_bounds lp v ~lo:1. ~hi:1.;
      Hashtbl.replace r_vars c v;
      v
  in
  (* ---- arrival-time variables ---- *)
  let arr_vars : (M.terminal, int) Hashtbl.t = Hashtbl.create 64 in
  let arr_of term =
    match Hashtbl.find_opt arr_vars term with
    | Some v -> v
    | None ->
      let nm = Format.asprintf "a_%a" M.pp_terminal term in
      let v = Milp.Lp.add_var lp ~lo:0. ~hi:cp nm in
      Hashtbl.replace arr_vars term v;
      v
  in
  let chan_of_term = function M.T_chan_fwd c | M.T_chan_bwd c -> c | M.T_reg -> -1 in
  (* ---- clock-period constraints from delay pairs ----
     Single-variable lower bounds (launch pairs and the fresh-launch
     part of crossing pairs) are folded into variable bounds: it keeps
     the tableau small and removes most phase-1 artificials. *)
  let raise_lo term d =
    let v = arr_of term in
    let lo, hi = Milp.Lp.bounds lp v in
    Milp.Lp.set_bounds lp v ~lo:(max lo d) ~hi
  in
  List.iter
    (fun { M.p_src; p_dst; p_delay = d } ->
      match (p_src, p_dst) with
      | M.T_reg, M.T_reg -> if d > cp +. 1e-9 then incr unfixable
      | M.T_reg, t -> if d > cp +. 1e-9 then incr unfixable else raise_lo t d
      | s, M.T_reg ->
        if d > cp +. 1e-9 then incr unfixable
        else begin
          (* a_s + d - CP*R_s <= CP *)
          let rs = r_of (chan_of_term s) in
          Milp.Lp.add_constr lp [ (1., arr_of s); (-.cp, rs) ] Milp.Lp.Le (cp -. d)
        end
      | s, t ->
        if d > cp +. 1e-9 then incr unfixable
        else begin
          let rs = r_of (chan_of_term s) in
          let a_s = arr_of s and a_t = arr_of t in
          (* a_t >= a_s + d - CP*R_s *)
          Milp.Lp.add_constr lp [ (1., a_t); (-1., a_s); (cp, rs) ] Milp.Lp.Ge d;
          (* a_t >= d even when s is buffered (fresh launch) *)
          raise_lo t d
        end)
    model.M.pairs;
  (* ---- throughput per CFDFC ---- *)
  let thetas =
    List.map
      (fun (cf : Cfdfc.t) ->
        let theta = Milp.Lp.add_var lp ~lo:0. ~hi:1. "theta" in
        let retim = Hashtbl.create 16 in
        let r_u u =
          match Hashtbl.find_opt retim u with
          | Some v -> v
          | None ->
            let v =
              Milp.Lp.add_var lp ~lo:neg_infinity ~hi:infinity (Printf.sprintf "r_u%d" u)
            in
            Hashtbl.replace retim u v;
            v
        in
        let back = Hashtbl.create 8 in
        List.iter (fun c -> Hashtbl.replace back c ()) cf.Cfdfc.back_edges;
        List.iter
          (fun cid ->
            let c = G.channel g cid in
            let rc = r_of cid in
            (* w = theta * R_c, McCormick (exact for binary R) *)
            let w = Milp.Lp.add_var lp ~lo:0. ~hi:1. (Printf.sprintf "w_c%d" cid) in
            Milp.Lp.add_constr lp [ (1., w); (-1., rc) ] Milp.Lp.Le 0.;
            Milp.Lp.add_constr lp [ (1., w); (-1., theta) ] Milp.Lp.Le 0.;
            Milp.Lp.add_constr lp [ (1., w); (-1., theta); (-1., rc) ] Milp.Lp.Ge (-1.);
            (* r_v - r_u - theta*L_u - w >= -m_c *)
            let lat = float_of_int (K.latency (G.unit_node g c.G.src).G.kind) in
            let m = if Hashtbl.mem back cid then 1. else 0. in
            Milp.Lp.add_constr lp
              [ (1., r_u c.G.dst); (-1., r_u c.G.src); (-.lat, theta); (-1., w) ]
              Milp.Lp.Ge (-.m))
          cf.Cfdfc.channels;
        (* every cycle keeps at least one opaque buffer *)
        List.iter
          (fun cyc ->
            Milp.Lp.add_constr lp (List.map (fun c -> (1., r_of c)) cyc) Milp.Lp.Ge 1.)
          cf.Cfdfc.cycles;
        theta)
      cfdfcs
  in
  (* ---- objective (Eq. 1 / Eq. 3) ---- *)
  let obj =
    List.map (fun th -> (cfg.alpha, th)) thetas
    @ (Hashtbl.fold
         (fun c v acc ->
           let pen = if cfg.use_penalty then model.M.penalty.(c) else 0. in
           (-.cfg.beta *. (1. +. pen), v) :: acc)
         r_vars [])
  in
  Milp.Lp.set_objective lp ~maximize:true obj;
  let run_solver () =
    (* Rounding heuristic: buffer-everywhere directions are always
       CP-feasible, so rounding the relaxation's fractional R up and
       re-solving the continuous rest yields a feasible incumbent that
       lets branch & bound prune from the start. *)
    let initial =
      match Milp.Simplex.solve lp with
      | Milp.Simplex.Optimal { x; _ } ->
        let saved = Hashtbl.fold (fun c v acc -> (c, v, Milp.Lp.bounds lp v) :: acc) r_vars [] in
        List.iter
          (fun (_, v, _) ->
            let r = if x.(v) > 1e-4 then 1. else 0. in
            Milp.Lp.set_bounds lp v ~lo:r ~hi:r)
          saved;
        let result =
          match Milp.Simplex.solve lp with
          | Milp.Simplex.Optimal { x = x0; _ } -> Some x0
          | _ -> None
        in
        List.iter (fun (_, v, (lo, hi)) -> Milp.Lp.set_bounds lp v ~lo ~hi) saved;
        result
      | _ -> None
    in
    Milp.Bb.solve ~node_limit:cfg.node_limit ?initial lp
  in
  (* The solved assignment is memoized on the canonical hash of the
     formulation itself (plus the search budget): a warm run skips both
     the rounding heuristic's simplex solves and the branch & bound.
     The cached solution is still checked row-by-row against the
     freshly built [lp] by the milp lint gate downstream, so a cache
     that somehow served a wrong assignment would be flagged, not
     silently trusted. *)
  let bb_result =
    if Cache.Control.enabled () then
      let key =
        Cache.Hash.combine [ Cache.Hash.lp lp; Printf.sprintf "node_limit=%d" cfg.node_limit ]
      in
      Cache.Control.memo ~kind:"milp" ~key run_solver
    else run_solver ()
  in
  match bb_result with
  | Milp.Bb.Infeasible -> Error "buffer MILP infeasible"
  | Milp.Bb.Unbounded -> Error "buffer MILP unbounded"
  | Milp.Bb.Optimal { obj; x; proved_optimal; _ } ->
    let all_buffered =
      Hashtbl.fold (fun c v acc -> if x.(v) > 0.5 then c :: acc else acc) r_vars []
      |> List.sort compare
    in
    let new_buffers = List.filter (fun c -> not (is_buffered c)) all_buffered in
    Ok
      {
        new_buffers;
        all_buffered;
        throughput = List.map (fun th -> x.(th)) thetas;
        objective = obj;
        proved_optimal;
        unfixable_paths = !unfixable;
        milp_vars = Milp.Lp.n_vars lp;
        milp_constrs = Milp.Lp.n_constrs lp;
        lp;
        solution = x;
      }
