module G = Dataflow.Graph
module K = Dataflow.Unit_kind
module M = Timing.Model

type config = {
  cp_target : float;
  alpha : float;
  beta : float;
  use_penalty : bool;
  node_limit : int;
  time_limit : float;
}

let default_config =
  {
    cp_target = 4.2;
    alpha = 10.;
    beta = 0.05;
    use_penalty = true;
    node_limit = 20_000;
    time_limit = 120.;
  }

type placement = {
  new_buffers : G.channel_id list;
  all_buffered : G.channel_id list;
  throughput : float list;
  objective : float;
  proved_optimal : bool;
  unfixable_paths : int;
  milp_vars : int;
  milp_constrs : int;
  lp : Milp.Lp.t;
  solution : float array;
}

let solve ?cache ?warm cfg g (model : M.t) cfdfcs =
  let cache = match cache with Some c -> c | None -> Cache.Control.session () in
  let lp = Milp.Lp.create (G.name g ^ "_buffering") in
  let cp = cfg.cp_target in
  let unfixable = ref 0 in
  (* ---- R_c variables ---- *)
  let r_vars : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let is_buffered c =
    match G.buffer g c with Some { G.transparent = false; _ } -> true | _ -> false
  in
  let r_of c =
    match Hashtbl.find_opt r_vars c with
    | Some v -> v
    | None ->
      let v = Milp.Lp.add_var lp ~kind:Milp.Lp.Binary (Printf.sprintf "R_c%d" c) in
      if is_buffered c then Milp.Lp.set_bounds lp v ~lo:1. ~hi:1.;
      Hashtbl.replace r_vars c v;
      v
  in
  (* ---- arrival-time variables ---- *)
  let arr_vars : (M.terminal, int) Hashtbl.t = Hashtbl.create 64 in
  let arr_of term =
    match Hashtbl.find_opt arr_vars term with
    | Some v -> v
    | None ->
      let nm = Format.asprintf "a_%a" M.pp_terminal term in
      let v = Milp.Lp.add_var lp ~lo:0. ~hi:cp nm in
      Hashtbl.replace arr_vars term v;
      v
  in
  let chan_of_term = function M.T_chan_fwd c | M.T_chan_bwd c -> c | M.T_reg -> -1 in
  (* ---- clock-period constraints from delay pairs ----
     Single-variable lower bounds (launch pairs and the fresh-launch
     part of crossing pairs) are folded into variable bounds: it keeps
     the tableau small and removes most phase-1 artificials. *)
  let raise_lo term d =
    let v = arr_of term in
    let lo, hi = Milp.Lp.bounds lp v in
    Milp.Lp.set_bounds lp v ~lo:(max lo d) ~hi
  in
  List.iter
    (fun { M.p_src; p_dst; p_delay = d } ->
      match (p_src, p_dst) with
      | M.T_reg, M.T_reg -> if d > cp +. 1e-9 then incr unfixable
      | M.T_reg, t -> if d > cp +. 1e-9 then incr unfixable else raise_lo t d
      | s, M.T_reg ->
        if d > cp +. 1e-9 then incr unfixable
        else begin
          (* a_s + d - CP*R_s <= CP *)
          let rs = r_of (chan_of_term s) in
          Milp.Lp.add_constr lp [ (1., arr_of s); (-.cp, rs) ] Milp.Lp.Le (cp -. d)
        end
      | s, t ->
        if d > cp +. 1e-9 then incr unfixable
        else begin
          let rs = r_of (chan_of_term s) in
          let a_s = arr_of s and a_t = arr_of t in
          (* a_t >= a_s + d - CP*R_s *)
          Milp.Lp.add_constr lp [ (1., a_t); (-1., a_s); (cp, rs) ] Milp.Lp.Ge d;
          (* a_t >= d even when s is buffered (fresh launch) *)
          raise_lo t d
        end)
    model.M.pairs;
  (* ---- throughput per CFDFC ---- *)
  let thetas =
    List.map
      (fun (cf : Cfdfc.t) ->
        let theta = Milp.Lp.add_var lp ~lo:0. ~hi:1. "theta" in
        let retim = Hashtbl.create 16 in
        let r_u u =
          match Hashtbl.find_opt retim u with
          | Some v -> v
          | None ->
            let v =
              Milp.Lp.add_var lp ~lo:neg_infinity ~hi:infinity (Printf.sprintf "r_u%d" u)
            in
            Hashtbl.replace retim u v;
            v
        in
        let back = Hashtbl.create 8 in
        List.iter (fun c -> Hashtbl.replace back c ()) cf.Cfdfc.back_edges;
        List.iter
          (fun cid ->
            let c = G.channel g cid in
            let rc = r_of cid in
            (* w = theta * R_c, McCormick (exact for binary R) *)
            let w = Milp.Lp.add_var lp ~lo:0. ~hi:1. (Printf.sprintf "w_c%d" cid) in
            Milp.Lp.add_constr lp [ (1., w); (-1., rc) ] Milp.Lp.Le 0.;
            Milp.Lp.add_constr lp [ (1., w); (-1., theta) ] Milp.Lp.Le 0.;
            Milp.Lp.add_constr lp [ (1., w); (-1., theta); (-1., rc) ] Milp.Lp.Ge (-1.);
            (* r_v - r_u - theta*L_u - w >= -m_c *)
            let lat = float_of_int (K.latency (G.unit_node g c.G.src).G.kind) in
            let m = if Hashtbl.mem back cid then 1. else 0. in
            Milp.Lp.add_constr lp
              [ (1., r_u c.G.dst); (-1., r_u c.G.src); (-.lat, theta); (-1., w) ]
              Milp.Lp.Ge (-.m))
          cf.Cfdfc.channels;
        (* every cycle keeps at least one opaque buffer *)
        List.iter
          (fun cyc ->
            Milp.Lp.add_constr lp (List.map (fun c -> (1., r_of c)) cyc) Milp.Lp.Ge 1.)
          cf.Cfdfc.cycles;
        theta)
      cfdfcs
  in
  (* ---- objective (Eq. 1 / Eq. 3) ---- *)
  let obj =
    List.map (fun th -> (cfg.alpha, th)) thetas
    @ (Hashtbl.fold
         (fun c v acc ->
           let pen = if cfg.use_penalty then model.M.penalty.(c) else 0. in
           (-.cfg.beta *. (1. +. pen), v) :: acc)
         r_vars [])
  in
  Milp.Lp.set_objective lp ~maximize:true obj;
  (* ---- LP-free certified ceiling ----
     Per CFDFC, Howard's minimum cycle ratio on the subgraph with
     tokens as cost and [latency + 1 per opaque buffer] as time:
     telescoping the retiming rows around any cycle C gives
     [theta * (L(C) + buffers(C)) <= tokens(C)], and a channel whose
     [R_c] is forced to 1 — pre-existing in the graph or pinned by a
     branch & bound fix — is opaque in every feasible point of the
     node's box, so the minimum ratio is a sound upper bound on theta
     throughout the subtree. Combined with the forced R_c's objective
     cost this bounds the objective of any node box without touching
     the LP — branch & bound fathoms against it. *)
  let cert_graphs =
    List.map
      (fun (cf : Cfdfc.t) ->
        let idx = Hashtbl.create 16 in
        List.iteri (fun i u -> Hashtbl.replace idx u i) cf.Cfdfc.units;
        let back = Hashtbl.create 8 in
        List.iter (fun c -> Hashtbl.replace back c ()) cf.Cfdfc.back_edges;
        let edges =
          List.filter_map
            (fun cid ->
              let c = G.channel g cid in
              match (Hashtbl.find_opt idx c.G.src, Hashtbl.find_opt idx c.G.dst) with
              | Some s, Some d ->
                Some
                  ( cid,
                    {
                      Analysis.Cycle_ratio.e_src = s;
                      e_dst = d;
                      e_cost = (if Hashtbl.mem back cid then 1 else 0);
                      e_time = K.latency (G.unit_node g c.G.src).G.kind;
                      e_id = cid;
                    } )
              | _ -> None)
            cf.Cfdfc.channels
        in
        (List.length cf.Cfdfc.units, edges))
      cfdfcs
  in
  let theta_cap forced (n_nodes, edges) =
    let graph =
      {
        Analysis.Cycle_ratio.n_nodes;
        edges =
          List.map
            (fun (cid, e) ->
              if Hashtbl.mem forced cid then
                { e with Analysis.Cycle_ratio.e_time = e.Analysis.Cycle_ratio.e_time + 1 }
              else e)
            edges;
      }
    in
    (* a zero-time cycle (no latency, no forced buffer yet) will take
       its mandatory buffer only once the MILP decides where: fall back
       to the variable bound, which is always sound *)
    match Analysis.Cycle_ratio.howard graph with
    | Some (w, _) -> Float.max 0. (Float.min 1. w.Analysis.Cycle_ratio.ratio)
    | None -> 1.
    | exception Invalid_argument _ -> 1.
  in
  let r_cost = Hashtbl.create 64 in
  let chan_of_rvar = Hashtbl.create 64 in
  Hashtbl.iter
    (fun c v ->
      let pen = if cfg.use_penalty then model.M.penalty.(c) else 0. in
      Hashtbl.replace r_cost v (cfg.beta *. (1. +. pen));
      Hashtbl.replace chan_of_rvar v c)
    r_vars;
  let base_forced =
    Hashtbl.fold
      (fun c v acc -> if fst (Milp.Lp.bounds lp v) >= 0.5 then (c, v) :: acc else acc)
      r_vars []
  in
  let cert_bound fixes =
    (* channels opaque in every feasible completion of this node *)
    let forced_chans = Hashtbl.create 16 and forced_vars = Hashtbl.create 16 in
    List.iter
      (fun (c, v) ->
        Hashtbl.replace forced_chans c ();
        Hashtbl.replace forced_vars v ())
      base_forced;
    List.iter
      (fun (v, lo, _) ->
        match Hashtbl.find_opt chan_of_rvar v with
        | Some c when lo >= 0.5 ->
          Hashtbl.replace forced_chans c ();
          Hashtbl.replace forced_vars v ()
        | _ -> ())
      fixes;
    let thetas =
      List.fold_left (fun acc cg -> acc +. theta_cap forced_chans cg) 0. cert_graphs
    in
    Hashtbl.fold
      (fun v () acc -> acc -. Hashtbl.find r_cost v)
      forced_vars
      (cfg.alpha *. thetas)
  in
  let run_solver () =
    (* temporarily pin every R_c to [choose]'s verdict, solve the
       continuous rest, restore the bounds *)
    let with_fixed_rs choose k =
      let saved = Hashtbl.fold (fun c v acc -> (c, v, Milp.Lp.bounds lp v) :: acc) r_vars [] in
      List.iter
        (fun (c, v, _) ->
          let r = if choose c v then 1. else 0. in
          Milp.Lp.set_bounds lp v ~lo:r ~hi:r)
        saved;
      let result = k () in
      List.iter (fun (_, v, (lo, hi)) -> Milp.Lp.set_bounds lp v ~lo ~hi) saved;
      result
    in
    (* one root relaxation; its basis warm-starts the incumbent solve
       below and branch & bound's own root (structurally the same model,
       only bounds move) *)
    let relax, root_basis = Milp.Simplex.solve_basis lp in
    let solve_fixed () =
      match Milp.Simplex.solve ?warm:root_basis lp with
      | Milp.Simplex.Optimal { x = x0; _ } -> Some x0
      | _ -> None
    in
    (* Incumbent seed, best first: the previous flow iteration's
       placement re-priced under this iteration's timing model (usually
       near-optimal, and exactly optimal once the flow has converged);
       otherwise the rounding heuristic — buffer-everywhere directions
       are always CP-feasible, so rounding the relaxation's fractional R
       up and re-solving the continuous rest yields a feasible incumbent
       that lets branch & bound prune from the start. *)
    let seeded =
      match warm with
      | None -> None
      | Some buffered ->
        let member = Hashtbl.create 64 in
        List.iter (fun c -> Hashtbl.replace member c ()) buffered;
        with_fixed_rs
          (fun c v -> Hashtbl.mem member c || fst (Milp.Lp.bounds lp v) >= 0.5)
          solve_fixed
    in
    let initial =
      match (seeded, relax) with
      | (Some _ as s), _ -> s
      | None, Milp.Simplex.Optimal { x; _ } ->
        with_fixed_rs (fun _ v -> x.(v) > 1e-4) solve_fixed
      | None, _ -> None
    in
    Milp.Bb.solve ~node_limit:cfg.node_limit ~time_limit:cfg.time_limit ?initial
      ?warm:root_basis ~cert_bound lp
  in
  (* The solved assignment is memoized on the canonical hash of the
     formulation itself (plus the search budget): a warm run skips both
     the rounding heuristic's simplex solves and the branch & bound.
     The cached solution is still checked row-by-row against the
     freshly built [lp] by the milp lint gate downstream, so a cache
     that somehow served a wrong assignment would be flagged, not
     silently trusted. *)
  let bb_result =
    if Cache.Session.enabled cache then
      let key =
        (* the warm hint participates in the key: among equal-objective
           optima branch & bound returns the first one found, which a
           different incumbent seed can legitimately change — the cache
           must not serve a differently-seeded run's assignment. The
           search budgets participate too: a tighter budget can stop at
           a weaker incumbent, and an entry computed under one budget
           must not answer for another. *)
        Cache.Hash.combine
          ([
             Cache.Hash.lp lp;
             Printf.sprintf "node_limit=%d;time_limit=%g" cfg.node_limit cfg.time_limit;
           ]
          @
          match warm with
          | None -> []
          | Some buffered ->
            [
              "warm="
              ^ String.concat ","
                  (List.map string_of_int (List.sort_uniq compare buffered));
            ])
      in
      Cache.Session.memo cache ~kind:"milp" ~key run_solver
    else run_solver ()
  in
  match bb_result with
  | Milp.Bb.Infeasible -> Error "buffer MILP infeasible"
  | Milp.Bb.Unbounded -> Error "buffer MILP unbounded"
  | Milp.Bb.Exhausted ->
    Error "buffer MILP node budget exhausted before any feasible placement was found"
  | Milp.Bb.Optimal { obj; x; proved_optimal; _ } ->
    let all_buffered =
      Hashtbl.fold (fun c v acc -> if x.(v) > 0.5 then c :: acc else acc) r_vars []
      |> List.sort compare
    in
    let new_buffers = List.filter (fun c -> not (is_buffered c)) all_buffered in
    Ok
      {
        new_buffers;
        all_buffered;
        throughput = List.map (fun th -> x.(th)) thetas;
        objective = obj;
        proved_optimal;
        unfixable_paths = !unfixable;
        milp_vars = Milp.Lp.n_vars lp;
        milp_constrs = Milp.Lp.n_constrs lp;
        lp;
        solution = x;
      }
