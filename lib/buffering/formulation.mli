(** The buffer-placement MILP (Eq. 1 / Eq. 3 of the paper).

    Given a timing model (mapping-aware or pre-characterised), the MILP
    decides a binary [R_c] per channel:

    - {b clock-period constraints}: per-channel arrival-time variables;
      a delay pair [s -> t] contributes [a_t >= a_s + d - CP*R_s] and
      [a_t >= d]; capture pairs bound arrivals by [CP];
    - {b throughput}: per CFDFC, the fluid-retiming marked-graph model
      with McCormick linearisation of the [Θ·R_c] product — telescoping
      around any cycle yields the classical bound
      [Θ <= tokens(C) / (latency(C) + buffers(C))];
    - {b legality}: every enumerated cycle keeps at least one opaque
      buffer (no combinational cycles);
    - {b objective} (Eq. 3): [max α·ΣΘ − β·Σ R_c·(1 + penalty(c))]; with
      [use_penalty = false] this degenerates to Eq. 1 (the baseline).

    Channels already buffered in the graph are fixed at [R_c = 1] (the
    iterative flow's "predefined buffers are fixed; new buffers can be
    freely added"). *)

type config = {
  cp_target : float;    (** ns; the paper uses 6 levels x 0.7 = 4.2 *)
  alpha : float;
  beta : float;
  use_penalty : bool;
  node_limit : int;     (** branch & bound node budget *)
  time_limit : float;
      (** branch & bound wall-clock budget, seconds (default 120; the
          [regulate serve] admission control narrows it per request) *)
}

val default_config : config

type placement = {
  new_buffers : Dataflow.Graph.channel_id list;  (** channels to newly buffer *)
  all_buffered : Dataflow.Graph.channel_id list; (** including pre-existing *)
  throughput : float list;                       (** per CFDFC *)
  objective : float;
  proved_optimal : bool;
  unfixable_paths : int;  (** delay pairs no buffering can fix (> CP inside a segment) *)
  milp_vars : int;
  milp_constrs : int;
  lp : Milp.Lp.t;         (** the solved model, kept as a certificate… *)
  solution : float array; (** …together with the raw assignment, so the
                              lint layer can re-check every row instead of
                              trusting the solver *)
}

val solve :
  ?cache:Cache.Session.t ->
  ?warm:Dataflow.Graph.channel_id list ->
  config ->
  Dataflow.Graph.t ->
  Timing.Model.t ->
  Cfdfc.t list ->
  (placement, string) result
(** [cache] is the session whose artifact store memoizes the solved
    assignment (default {!Cache.Control.session}, the ambient CLI
    cache). [warm] is the previous flow iteration's [all_buffered]
    placement: it
    is re-priced under the current model (every listed [R_c] pinned to
    1, the rest to 0, one warm-started LP over the continuous variables)
    and, when feasible, seeds branch & bound's incumbent in place of the
    rounding heuristic. The branch & bound additionally fathoms nodes
    against an LP-free certified objective ceiling built from Howard's
    minimum cycle ratio per CFDFC ({!Analysis.Cycle_ratio}), and
    reports [Bb.Exhausted] budget exhaustion as a distinct error. *)
