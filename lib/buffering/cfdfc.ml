module G = Dataflow.Graph
module A = Dataflow.Analysis

type t = {
  units : G.unit_id list;
  channels : G.channel_id list;
  back_edges : G.channel_id list;
  cycles : G.channel_id list list;
  truncated : bool;
}

let extract ?cycle_limit g =
  let cycle_limit =
    match cycle_limit with Some l -> l | None -> A.cycle_cap ~default:256
  in
  let sccs = A.cyclic_sccs g in
  let back = match G.marked_back_edges g with [] -> A.back_edges g | marked -> marked in
  let all_cycles, truncated = A.simple_cycles_capped ~limit:cycle_limit g in
  List.map
    (fun units ->
      let in_scc = Hashtbl.create 16 in
      List.iter (fun u -> Hashtbl.replace in_scc u ()) units;
      let channels =
        G.fold_channels g
          (fun acc c ->
            if Hashtbl.mem in_scc c.G.src && Hashtbl.mem in_scc c.G.dst then c.G.cid :: acc
            else acc)
          []
        |> List.rev
      in
      let chan_set = Hashtbl.create 16 in
      List.iter (fun c -> Hashtbl.replace chan_set c ()) channels;
      let back_edges = List.filter (Hashtbl.mem chan_set) back in
      let cycles =
        List.filter (fun cyc -> List.for_all (Hashtbl.mem chan_set) cyc) all_cycles
      in
      { units; channels; back_edges; cycles; truncated })
    sccs
