(** Choice-free dataflow circuit (CFDFC) extraction.

    A CFDFC is the cyclic portion of the graph a control-flow loop
    executes; the MILP maximises the throughput of each. We approximate a
    CFDFC by a cyclic strongly connected component, with its simple
    cycles enumerated (capped) for the cycle-legality constraints and the
    initial-token marking on its back edges. *)

type t = {
  units : Dataflow.Graph.unit_id list;
  channels : Dataflow.Graph.channel_id list;
  back_edges : Dataflow.Graph.channel_id list;  (** carry the initial token *)
  cycles : Dataflow.Graph.channel_id list list; (** enumerated simple cycles *)
  truncated : bool;
  (** the [cycle_limit] cap stopped the global cycle enumeration, so
      [cycles] may be incomplete and the MILP's cycle-legality rows
      under-constrain — downstream the throughput certifier's
      [perf-cycle-limit-truncated] warning surfaces this *)
}

val extract : ?cycle_limit:int -> Dataflow.Graph.t -> t list
(** [cycle_limit] defaults to
    [Dataflow.Analysis.cycle_cap ~default:256], i.e. it honours the
    [REPRO_CYCLE_CAP] environment variable. *)
