(* Sorted-array cut utilities. *)

let cut_union a b k =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  let i = ref 0 and j = ref 0 and n = ref 0 in
  let over = ref false in
  while (not !over) && (!i < la || !j < lb) do
    let x =
      if !i >= la then begin
        let v = b.(!j) in
        incr j;
        v
      end
      else if !j >= lb then begin
        let v = a.(!i) in
        incr i;
        v
      end
      else if a.(!i) < b.(!j) then begin
        let v = a.(!i) in
        incr i;
        v
      end
      else if a.(!i) > b.(!j) then begin
        let v = b.(!j) in
        incr j;
        v
      end
      else begin
        let v = a.(!i) in
        incr i;
        incr j;
        v
      end
    in
    if !n >= k then over := true
    else begin
      out.(!n) <- x;
      incr n
    end
  done;
  if !over then None else Some (Array.sub out 0 !n)

let run ?(k = 6) ?(cut_limit = 8) (synth : Synth.t) =
  Support.Trace.with_span ~cat:"techmap" "techmap:map" @@ fun () ->
  let aig = synth.Synth.aig in
  let n = Aig.n_nodes aig in
  (* cut-enumeration effort counters, reported at the end of the run:
     [enumerated] counts fanin cut pairs merged (the inner loop's work),
     [kept] the priority cuts that survive per node *)
  let enumerated = ref 0 in
  let kept = ref 0 in
  let cuts = Array.make n [||] in
  (* best_depth.(v) = mapped depth of v's best realisable cut; 0 for CIs *)
  let best_depth = Array.make n 0 in
  let best_cut = Array.make n [||] in
  let cut_depth c =
    Array.fold_left (fun acc leaf -> max acc best_depth.(leaf)) 0 c + 1
  in
  for v = 1 to n - 1 do
    if Aig.is_ci aig v then begin
      cuts.(v) <- [| [| v |] |];
      best_depth.(v) <- 0
    end
    else begin
      let f0, f1 = Aig.fanins aig v in
      let n0 = Aig.node_of_lit f0 and n1 = Aig.node_of_lit f1 in
      let c0 = if n0 = 0 then [| [||] |] else cuts.(n0) in
      let c1 = if n1 = 0 then [| [||] |] else cuts.(n1) in
      let seen = Hashtbl.create 16 in
      let candidates = ref [] in
      Array.iter
        (fun a ->
          Array.iter
            (fun b ->
              incr enumerated;
              match cut_union a b k with
              | None -> ()
              | Some c ->
                let key = Array.to_list c in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.replace seen key ();
                  candidates := c :: !candidates
                end)
            c1)
        c0;
      let sorted =
        List.sort
          (fun a b ->
            let da = cut_depth a and db = cut_depth b in
            if da <> db then compare da db else compare (Array.length a) (Array.length b))
          !candidates
      in
      (match sorted with
      | [] ->
        (* can only happen if both fanins are constants, which folding
           prevents *)
        assert false
      | best :: _ ->
        best_cut.(v) <- best;
        best_depth.(v) <- cut_depth best);
      let rec take acc i = function
        | [] -> List.rev acc
        | _ when i >= cut_limit -> List.rev acc
        | c :: rest -> take (c :: acc) (i + 1) rest
      in
      (* keep the priority cuts plus the trivial cut for parents *)
      cuts.(v) <- Array.of_list (take [] 0 sorted @ [ [| v |] ]);
      kept := !kept + Array.length cuts.(v)
    end
  done;
  Support.Trace.add "techmap.cuts.enumerated" !enumerated;
  Support.Trace.add "techmap.cuts.kept" !kept;
  (* Selection: materialise LUTs for every AND node reachable as a chosen
     cut root, starting from the combinational outputs. *)
  let lut_of_node = Array.make n (-1) in
  let luts = ref [] in
  let n_luts = ref 0 in
  let rec materialise v =
    if lut_of_node.(v) = -1 && (not (Aig.is_ci aig v)) && v <> 0 then begin
      let cut = best_cut.(v) in
      let lid = !n_luts in
      incr n_luts;
      lut_of_node.(v) <- lid;
      (* cone: nodes strictly inside the cut *)
      let is_leaf = Hashtbl.create 8 in
      Array.iter (fun l -> Hashtbl.replace is_leaf l ()) cut;
      let cone = ref [] in
      let visited = Hashtbl.create 16 in
      let rec walk u =
        if (not (Hashtbl.mem visited u)) && (not (Hashtbl.mem is_leaf u)) && u <> 0 then begin
          Hashtbl.replace visited u ();
          cone := u :: !cone;
          if not (Aig.is_ci aig u) then begin
            let f0, f1 = Aig.fanins aig u in
            walk (Aig.node_of_lit f0);
            walk (Aig.node_of_lit f1)
          end
        end
      in
      walk v;
      (* owner: the unit contributing the most cone nodes (§IV-A) *)
      let counts = Hashtbl.create 8 in
      let dom = ref None in
      List.iter
        (fun u ->
          let o = Aig.owner aig u in
          Hashtbl.replace counts o (1 + Option.value (Hashtbl.find_opt counts o) ~default:0);
          let d = Aig.dom aig u in
          dom := Some (match !dom with None -> d | Some d0 -> if d0 = d then d0 else Net.Mixed))
        !cone;
      let owner =
        Hashtbl.fold
          (fun o c (bo, bc) -> if c > bc || (c = bc && o < bo) then (o, c) else (bo, bc))
          counts (-1, 0)
        |> fst
      in
      luts :=
        {
          Lutgraph.lid;
          root = v;
          leaves = cut;
          owner;
          dom = Option.value !dom ~default:Net.Data;
          cone_size = List.length !cone;
        }
        :: !luts;
      Array.iter materialise cut
    end
  in
  List.iter (fun (_, _, lit) -> materialise (Aig.node_of_lit lit)) (Aig.cos aig);
  let luts =
    match !luts with
    | [] -> [||]
    | (sample : Lutgraph.lut) :: _ ->
      let arr = Array.make !n_luts sample in
      List.iter (fun (l : Lutgraph.lut) -> arr.(l.Lutgraph.lid) <- l) !luts;
      arr
  in
  (* Edges. *)
  let endpoint_of_node v =
    if Aig.is_ci aig v then Lutgraph.Seq (Hashtbl.find synth.Synth.gate_of_ci v)
    else Lutgraph.Lut lut_of_node.(v)
  in
  let edges = ref [] in
  Array.iter
    (fun (l : Lutgraph.lut) ->
      Array.iter
        (fun leaf ->
          edges := { Lutgraph.e_src = endpoint_of_node leaf; e_dst = Lutgraph.Lut l.Lutgraph.lid } :: !edges)
        l.Lutgraph.leaves)
    luts;
  List.iter
    (fun (_, tag, lit) ->
      let v = Aig.node_of_lit lit in
      if v <> 0 then
        edges := { Lutgraph.e_src = endpoint_of_node v; e_dst = Lutgraph.Seq tag } :: !edges)
    (Aig.cos aig);
  (* Levels: LUT roots increase along fanin order, so a single pass in
     root order is a topological pass. *)
  let levels = Array.make !n_luts 0 in
  let order = Array.init !n_luts (fun i -> i) in
  Array.sort (fun a b -> compare luts.(a).Lutgraph.root luts.(b).Lutgraph.root) order;
  Array.iter
    (fun lid ->
      let l = luts.(lid) in
      let lvl =
        Array.fold_left
          (fun acc leaf ->
            if Aig.is_ci aig leaf then acc else max acc levels.(lut_of_node.(leaf)))
          0 l.Lutgraph.leaves
      in
      levels.(lid) <- lvl + 1)
    order;
  let max_level = Array.fold_left max 0 levels in
  {
    Lutgraph.synth;
    luts;
    lut_of_node;
    edges = !edges;
    levels;
    max_level;
  }
