type t = {
  aig : Aig.t;
  lit_of_gate : int array;
  gate_of_ci : (int, int) Hashtbl.t;
}

let run net =
  Support.Trace.with_span ~cat:"techmap" "techmap:synth" @@ fun () ->
  let n = Net.n_gates net in
  let aig = Aig.create () in
  let lit_of_gate = Array.make n (-1) in
  let gate_of_ci = Hashtbl.create 64 in
  let on_stack = Array.make n false in
  (* Iterative post-order DFS: compute the literal of every gate output. *)
  let rec visit id =
    if lit_of_gate.(id) <> -1 then lit_of_gate.(id)
    else begin
      if on_stack.(id) then
        failwith
          (Printf.sprintf "Synth.run: combinational cycle through gate %d (owner unit %d)" id
             (Net.gate net id).Net.owner);
      on_stack.(id) <- true;
      let g = Net.gate net id in
      let lit =
        match g.Net.kind with
        | Net.Input _ | Net.Ff _ ->
          let l = Aig.ci aig ~owner:g.Net.owner ~dom:g.Net.dom in
          Hashtbl.replace gate_of_ci (Aig.node_of_lit l) id;
          l
        | Net.Const b -> if b then Aig.lit_true else Aig.lit_false
        | Net.Buf | Net.Output _ -> visit g.Net.fanins.(0)
        | Net.Not -> Aig.bnot (visit g.Net.fanins.(0))
        | Net.And2 -> Aig.band aig ~owner:g.Net.owner (visit g.Net.fanins.(0)) (visit g.Net.fanins.(1))
        | Net.Or2 -> Aig.bor aig ~owner:g.Net.owner (visit g.Net.fanins.(0)) (visit g.Net.fanins.(1))
        | Net.Xor2 -> Aig.bxor aig ~owner:g.Net.owner (visit g.Net.fanins.(0)) (visit g.Net.fanins.(1))
      in
      on_stack.(id) <- false;
      lit_of_gate.(id) <- lit;
      lit
    end
  in
  List.iter
    (fun id ->
      let l = visit (Net.gate net id).Net.fanins.(0) in
      lit_of_gate.(id) <- l;
      Aig.add_co aig ~owner:(Net.gate net id).Net.owner ~tag:id l)
    (Net.outputs net);
  List.iter
    (fun id ->
      ignore (visit id);
      (* the FF's D fanin is a combinational output *)
      let d = (Net.gate net id).Net.fanins.(0) in
      let l = visit d in
      Aig.add_co aig ~owner:(Net.gate net id).Net.owner ~tag:id l)
    (Net.ffs net);
  { aig; lit_of_gate; gate_of_ci }
