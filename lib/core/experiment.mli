(** End-to-end evaluation harness: runs both flows on a kernel and
    collects every metric of the paper's Table I.

    For one kernel and one flow: optimise buffering → re-synthesise →
    place & route (CP, LUTs, FFs, logic levels) → simulate the kernel's
    workload (clock cycles, with the exit value checked against the AST
    interpreter) → execution time = CP × cycles. *)

type metrics = {
  cp : float;             (** achieved clock period after P&R, ns *)
  cycles : int;           (** simulated clock cycles *)
  exec_ns : float;        (** CP x cycles *)
  luts : int;
  ffs : int;
  levels : int;           (** post-synthesis logic levels *)
  buffers : int;          (** opaque buffers placed *)
  iterations : int;       (** optimisation iterations used *)
  met_target : bool;
  value_ok : bool;        (** simulation matched the reference interpreter *)
}

type row = {
  bench : string;
  prev : metrics;   (** mapping-agnostic baseline *)
  iter : metrics;   (** iterative mapping-aware flow *)
}

val run_flow :
  ?config:Flow.config ->
  ?session:Session.t ->
  flavor:[ `Baseline | `Iterative ] ->
  Hls.Kernels.t ->
  metrics * Flow.outcome
(** [session] (default {!Session.ambient}) is threaded into the flow:
    cache handle, MILP budget overrides, cancellation, status sink. *)

val run_kernel : ?config:Flow.config -> Hls.Kernels.t -> row

val run_all :
  ?config:Flow.config -> ?names:string list -> ?kernels:Hls.Kernels.t list -> unit -> row list
(** Runs the paper's nine benchmarks sequentially ([kernels] overrides
    [names]; default all nine). *)

type task_timing = {
  t_bench : string;
  t_flavor : string;     (** ["baseline"] or ["iterative"] *)
  t_seconds : float;     (** the task's own wall-clock *)
}

val run_all_timed :
  ?config:Flow.config ->
  ?jobs:int ->
  ?names:string list ->
  ?kernels:Hls.Kernels.t list ->
  unit ->
  row list * task_timing list * float
(** Like {!run_all_parallel}, also returning per-task wall-clock timings
    (in submission order) and the total wall-clock of the whole batch.
    The sum of task timings approximates the sequential cost, so
    [sum /. wall] is the realised parallel speedup. *)

val run_all_parallel :
  ?config:Flow.config ->
  ?jobs:int ->
  ?names:string list ->
  ?kernels:Hls.Kernels.t list ->
  unit ->
  row list
(** The evaluation fanned out over a {!Support.Pool}: one task per
    kernel x flavor, [jobs] worker domains ([jobs] defaults to
    {!Support.Pool.default_jobs}, i.e. the [REPRO_JOBS] environment
    variable or 1). Every task builds its own kernel graph and RNGs, so
    the returned rows are identical — row for row — to {!run_all} at any
    [jobs] width; only wall-clock changes. *)
