exception Cancelled

type t = {
  cache : Cache.Session.t;
  milp_nodes : int option;
  milp_budget_s : float option;
  cancelled : unit -> bool;
  on_status : (string -> unit) option;
}

let never_cancelled () = false

let make ?(cache = Cache.Session.disabled) ?milp_nodes ?milp_budget_s
    ?(cancelled = never_cancelled) ?on_status () =
  { cache; milp_nodes; milp_budget_s; cancelled; on_status }

let ambient () =
  {
    cache = Cache.Control.session ();
    milp_nodes = None;
    milp_budget_s = None;
    cancelled = never_cancelled;
    on_status = None;
  }

let check_cancel t = if t.cancelled () then raise Cancelled

let status t msg = match t.on_status with None -> () | Some f -> f msg

let milp_config t (cfg : Buffering.Formulation.config) =
  {
    cfg with
    Buffering.Formulation.node_limit =
      Option.value t.milp_nodes ~default:cfg.Buffering.Formulation.node_limit;
    time_limit = Option.value t.milp_budget_s ~default:cfg.Buffering.Formulation.time_limit;
  }
