module G = Dataflow.Graph
module A = Dataflow.Analysis
module Trace = Support.Trace

type config = {
  target_levels : int;
  level_delay : float;
  max_iterations : int;
  milp : Buffering.Formulation.config;
  lut_k : int;
  routing_aware : bool;
  slack_match : bool;
  balance : bool;
  lint_gates : bool;
  tv_exact : bool;
  narrow : bool;
}

let default_config =
  {
    target_levels = 6;
    level_delay = 0.7;
    max_iterations = 6;
    milp = { Buffering.Formulation.default_config with cp_target = 6. *. 0.7 };
    lut_k = 6;
    routing_aware = false;
    slack_match = false;
    balance = false;
    lint_gates = true;
    tv_exact = false;
    narrow = true;
  }

type iteration = {
  it_index : int;
  model_pairs : int;
  delay_nodes : int;
  fake_nodes : int;
  proposed_buffers : int;
  kept_as_fixed : int;
  achieved_levels : int;
  milp_objective : float;
  milp_proved : bool;
  milp_phi : float;
  certified_bound : float;
}

type outcome = {
  graph : G.t;
  net : Net.t;
  lutgraph : Techmap.Lutgraph.t;
  iterations : iteration list;
  met_target : bool;
  final_levels : int;
  total_buffers : int;
  certified : Analysis.Certify.t;
  lint : Lint.Engine.report;
  lint_stages : string list;
  narrowing : Absint.Narrow.report option;
}

let opaque_spec = { G.transparent = false; slots = 2 }
let opaque = Some opaque_spec

let seed_back_edges g =
  (* the front end's explicit loop-carried channels when available; the
     generic DFS classification otherwise *)
  let back =
    match G.marked_back_edges g with [] -> A.back_edges g | marked -> marked
  in
  List.iter (fun c -> G.set_buffer g c opaque) back;
  back

(* Synthesis + mapping of an already-elaborated netlist: the expensive
   half of [synth_map], and the unit of artifact caching — keyed by the
   canonical netlist hash plus the two config fields that change the
   mapped result, so warm runs skip AIG construction and cut
   enumeration entirely (cross-iteration, cross-flavor, cross-process
   and cross-request hits all share one entry). *)
let synth_map_net cfg net =
  let synth = Techmap.Synth.run net in
  let synth = if cfg.balance then Techmap.Balance.run synth else synth in
  Techmap.Mapper.run ~k:cfg.lut_k synth

let synth_map ?session cfg g =
  Trace.with_span "flow:synth+map" @@ fun () ->
  let cache =
    match session with Some s -> s.Session.cache | None -> Cache.Control.session ()
  in
  let net = Elaborate.run g in
  let lg =
    if Cache.Session.enabled cache then
      let key =
        Cache.Hash.combine
          [ Cache.Hash.netlist net; Printf.sprintf "k=%d;balance=%b" cfg.lut_k cfg.balance ]
      in
      Cache.Session.memo cache ~kind:"synthmap" ~key (fun () -> synth_map_net cfg net)
    else synth_map_net cfg net
  in
  (net, lg)

let levels_of cfg g =
  let _, lg = synth_map cfg g in
  lg.Techmap.Lutgraph.max_level

let apply_buffers base channels =
  let g = G.copy base in
  List.iter (fun c -> G.set_buffer g c opaque) channels;
  g

(* Per basic block, keep the proposed buffer with the lowest penalty:
   sparse across the circuit, minimal disruption of logic optimisation
   (§V). *)
let sparse_min_penalty_subset g (model : Timing.Model.t) proposed =
  let best = Hashtbl.create 8 in
  List.iter
    (fun cid ->
      let bb = (G.unit_node g (G.channel g cid).G.src).G.bb in
      let pen = model.Timing.Model.penalty.(cid) in
      match Hashtbl.find_opt best bb with
      | Some (_, p) when p <= pen -> ()
      | _ -> Hashtbl.replace best bb (cid, pen))
    proposed;
  Hashtbl.fold (fun _ (cid, _) acc -> cid :: acc) best [] |> List.sort compare

(* Lint gates (errors abort with [Lint.Engine.Lint_error], warnings and
   infos accumulate into the outcome's run report). Each stage of the
   flow is audited right after it produced its artefact, so a malformed
   graph or an unsound mapping is reported at its source instead of as a
   wrong frequency number three stages later. *)
type audit = {
  mutable a_report : Lint.Engine.report;
  mutable a_stages : string list;  (* reverse order of execution *)
}

let new_audit () = { a_report = Lint.Engine.empty; a_stages = [] }

let run_gate config audit ~stage check =
  if config.lint_gates then begin
    let r = Trace.with_span ~cat:"lint" ("lint:" ^ stage) check in
    audit.a_report <- Lint.Engine.merge audit.a_report (Lint.Engine.gate ~stage r);
    audit.a_stages <- stage :: audit.a_stages
  end

(* Translation-validation gates (the equiv-* rules). The signature pass
   is cheap (a few 64-lane simulation rounds per representation) and
   runs on every synthesised artefact; [tv_exact] additionally replays
   every witness through the scalar oracles. The [flow:tv] span bounds
   the whole family, so the CI budget guard can hold the validator
   under a fixed share of flow wall time. *)
let tv_gate config audit ~stage net lg =
  run_gate config audit ~stage (fun () ->
      Trace.with_span "flow:tv" (fun () ->
          Lint.Engine.check_translation ~exact:config.tv_exact ~k:config.lut_k net lg))

let refine_gate config audit ~stage ~base ~buffered ~allowed =
  run_gate config audit ~stage (fun () ->
      Trace.with_span "flow:tv" (fun () -> Lint.Engine.check_refinement ~base ~buffered ~allowed))

(* Value-range narrowing (§ the mapping-aware premise: level counts are a
   function of operator widths).  Abstract-interpretation over the seeded
   graph proves a per-channel value envelope; [Absint.Narrow] then shrinks
   widths, folds constants and deletes dead steering, and the rewritten
   graph replaces the input of every later stage.  The rewrite is
   translation-validated by random simulation ([equiv-narrow]): a mismatch
   aborts the flow — even when lint gates are off, because a failed gate
   means the optimizer changed observable behaviour. *)
let narrow_stage config audit session g =
  if not config.narrow then (g, None)
  else begin
    Session.status session "absint";
    Trace.with_span "flow:absint" @@ fun () ->
    let res = Absint.Analyze.run g in
    run_gate config audit ~stage:"range" (fun () ->
        Lint.Engine.check_ranges ~result:res g);
    let narrowed, report = Absint.Narrow.run res g in
    if Absint.Narrow.changed report then begin
      let equiv () =
        Trace.with_span "flow:tv" (fun () ->
            Lint.Engine.check_narrowing ~original:g ~variant:narrowed ())
      in
      if config.lint_gates then run_gate config audit ~stage:"tv-narrow" equiv
      else ignore (Lint.Engine.gate ~stage:"tv-narrow" (equiv ()));
      (narrowed, Some report)
    end
    else (g, Some report)
  end

(* The LP-free performance oracle: right after each MILP solve, the
   candidate placement is certified (min cycle ratio by Howard with a
   Karp cross-check, marked-graph liveness) and the [perf] gate
   compares the MILP's per-CFDFC throughput against the certified
   bound. The certificate itself is computed even with lint gates off —
   the outcome reports it alongside phi. *)
let certify_placement config audit ~cfdfcs
    ~(placement : Buffering.Formulation.placement) candidate =
  let cert = Trace.with_span "flow:certify" (fun () -> Analysis.Certify.certify candidate) in
  let truncated = List.exists (fun cf -> cf.Buffering.Cfdfc.truncated) cfdfcs in
  let phi =
    List.map2
      (fun (cf : Buffering.Cfdfc.t) th -> (cf.Buffering.Cfdfc.units, th))
      cfdfcs placement.Buffering.Formulation.throughput
  in
  run_gate config audit ~stage:"perf" (fun () ->
      Lint.Engine.check_perf ~truncated ~phi cert candidate);
  (cert, List.fold_left Float.min 1. placement.Buffering.Formulation.throughput)

let iterative ?(config = default_config) ?session input =
  Trace.with_span "flow:iterative" @@ fun () ->
  let session = match session with Some s -> s | None -> Session.ambient () in
  let milp_cfg = Session.milp_config session config.milp in
  let g0 = G.copy input in
  G.clear_buffers g0;
  let seeded = Trace.with_span "flow:seed" (fun () -> seed_back_edges g0) in
  ignore seeded;
  let audit = new_audit () in
  run_gate config audit ~stage:"dfg" (fun () -> Lint.Engine.check_graph g0);
  let g0, narrowing = narrow_stage config audit session g0 in
  let iterations = ref [] in
  let sorted_buffered g = List.map fst (G.buffered_channels g) |> List.sort compare in
  (* one refinement iteration; the recursion lives in [iterate] below so
     that the per-iteration trace span closes before the next iteration
     opens (a recursive span would nest every iteration under the
     previous one) *)
  let step it fixed prev =
    (* cooperative cancellation: a served request is abandoned at
       iteration boundaries (and again right before the MILP below, the
       longest single stage), never mid-solve *)
    Session.check_cancel session;
    Session.status session (Printf.sprintf "iteration %d" it);
    (* the working circuit for this iteration: base + fixed buffers *)
    let g = apply_buffers g0 fixed in
    (* When the previous iteration kept every proposed buffer, this
       iteration's circuit is exactly the candidate it already
       synthesised — reuse that netlist and mapping instead of running
       synth+map again (independent of the on-disk cache). *)
    let net, lg =
      match prev with
      | Some (prev_buffered, prev_net, prev_lg, _) when sorted_buffered g = prev_buffered ->
        Trace.add "flow.synthmap.reused" 1;
        (prev_net, prev_lg)
      | _ -> synth_map ~session config g
    in
    run_gate config audit ~stage:"netlist" (fun () -> Lint.Engine.check_netlist g net);
    (* every iteration's netlist/AIG/cover triple is validated, whether
       it came from a fresh synthesis, the previous iteration's reuse
       path, or a warm artifact-cache hit *)
    tv_gate config audit ~stage:"tv" net lg;
    (* optional routing awareness (§VI future work): fold estimated wire
       delays from a quick placement into each LUT's delay *)
    let lut_extra =
      if not config.routing_aware then fun _ -> 0.
      else begin
        let pl =
          Trace.with_span ~cat:"placeroute" "flow:routing-est" (fun () ->
              Placeroute.Place.run ~seed:7 ~effort:0.3 net lg)
        in
        let max_in = Array.make (Techmap.Lutgraph.n_luts lg) 0. in
        List.iter
          (fun { Techmap.Lutgraph.e_src; e_dst } ->
            match e_dst with
            | Techmap.Lutgraph.Lut l ->
              let d =
                Placeroute.Arch.wire_delay
                  (Placeroute.Place.distance pl
                     (Placeroute.Place.item_of_endpoint e_src)
                     (Placeroute.Place.item_of_endpoint e_dst))
              in
              if d > max_in.(l) then max_in.(l) <- d
            | Techmap.Lutgraph.Seq _ -> ())
          lg.Techmap.Lutgraph.edges;
        fun l -> max_in.(l)
      end
    in
    let tg, model =
      Trace.with_span "flow:model" (fun () ->
          Timing.Mapping_aware.build_with_graph ~lut_delay:config.level_delay ~lut_extra g ~net lg)
    in
    run_gate config audit ~stage:"lut-mapping" (fun () ->
        Lint.Engine.check_mapping g lg tg model);
    let cfdfcs = Buffering.Cfdfc.extract g in
    (* the previous iteration's placement seeds this iteration's MILP
       incumbent (once the flow converges the seed is already optimal
       and branch & bound terminates on the certified bound) *)
    let milp_warm = match prev with Some (_, _, _, w) -> Some w | None -> None in
    Session.check_cancel session;
    Session.status session "milp";
    match
      Trace.with_span "flow:milp" (fun () ->
          Buffering.Formulation.solve ~cache:session.Session.cache ?warm:milp_warm milp_cfg g
            model cfdfcs)
    with
    | Error msg -> failwith ("Flow.iterative: " ^ msg)
    | Ok placement ->
      run_gate config audit ~stage:"milp" (fun () ->
          Lint.Engine.check_milp ~cp_target:config.milp.Buffering.Formulation.cp_target
            ~buffered:placement.Buffering.Formulation.all_buffered model
            placement.Buffering.Formulation.lp placement.Buffering.Formulation.solution);
      let candidate = apply_buffers g (placement.Buffering.Formulation.new_buffers) in
      refine_gate config audit ~stage:"tv-buffer" ~base:g ~buffered:candidate
        ~allowed:
          (List.map (fun c -> (c, opaque_spec)) placement.Buffering.Formulation.new_buffers);
      let cert, milp_phi = certify_placement config audit ~cfdfcs ~placement candidate in
      let cand_net, cand_lg = synth_map ~session config candidate in
      let achieved = cand_lg.Techmap.Lutgraph.max_level in
      let met = achieved <= config.target_levels in
      let last = it >= config.max_iterations in
      let kept =
        if met || last then []
        else sparse_min_penalty_subset g model placement.Buffering.Formulation.new_buffers
      in
      iterations :=
        {
          it_index = it;
          model_pairs = List.length model.Timing.Model.pairs;
          delay_nodes = model.Timing.Model.delay_nodes;
          fake_nodes = model.Timing.Model.fake_nodes;
          proposed_buffers = List.length placement.Buffering.Formulation.new_buffers;
          kept_as_fixed = List.length kept;
          achieved_levels = achieved;
          milp_objective = placement.Buffering.Formulation.objective;
          milp_proved = placement.Buffering.Formulation.proved_optimal;
          milp_phi;
          certified_bound = cert.Analysis.Certify.throughput;
        }
        :: !iterations;
      if met || last then begin
        (* Slack matching changes the elaborated netlist (transparent
           buffers are real hardware), so it must land before the final
           synthesis whose level count and mapping the outcome reports —
           otherwise [final_levels] and the measured circuit disagree. *)
        let cand_net, cand_lg =
          if config.slack_match then begin
            let before = G.copy candidate in
            let pads =
              Trace.with_span "flow:slack" (fun () -> Buffering.Slack.compute candidate)
            in
            if pads = [] then (cand_net, cand_lg)
            else begin
              let allowed =
                List.map (fun (cid, slots) -> (cid, { G.transparent = true; slots })) pads
              in
              List.iter (fun (cid, spec) -> G.set_buffer candidate cid (Some spec)) allowed;
              refine_gate config audit ~stage:"tv-slack" ~base:before ~buffered:candidate
                ~allowed;
              synth_map ~session config candidate
            end
          end
          else (cand_net, cand_lg)
        in
        tv_gate config audit ~stage:"tv-final" cand_net cand_lg;
        let final_levels = cand_lg.Techmap.Lutgraph.max_level in
        run_gate config audit ~stage:"final-dfg" (fun () ->
            Lint.Engine.check_graph candidate);
        `Done
          {
            graph = candidate;
            net = cand_net;
            lutgraph = cand_lg;
            iterations = List.rev !iterations;
            met_target = final_levels <= config.target_levels;
            final_levels;
            total_buffers = List.length (G.buffered_channels candidate);
            (* slack matching only adds transparent capacity, which
               cannot lower the bound or break liveness, so the
               pre-slack certificate stays valid for the final graph *)
            certified = cert;
            lint = audit.a_report;
            lint_stages = List.rev audit.a_stages;
            narrowing;
          }
      end
      else
        `Continue
          ( List.sort_uniq compare (fixed @ kept),
            Some
              ( sorted_buffered candidate,
                cand_net,
                cand_lg,
                placement.Buffering.Formulation.all_buffered ) )
  in
  let rec iterate it fixed prev =
    match Trace.with_span "flow:iteration" (fun () -> step it fixed prev) with
    | `Done outcome -> outcome
    | `Continue (fixed', prev') -> iterate (it + 1) fixed' prev'
  in
  iterate 1 [] None

let baseline ?(config = default_config) ?session input =
  Trace.with_span "flow:baseline" @@ fun () ->
  let session = match session with Some s -> s | None -> Session.ambient () in
  let g = G.copy input in
  G.clear_buffers g;
  let _ = Trace.with_span "flow:seed" (fun () -> seed_back_edges g) in
  let audit = new_audit () in
  run_gate config audit ~stage:"dfg" (fun () -> Lint.Engine.check_graph g);
  let g, narrowing = narrow_stage config audit session g in
  Session.check_cancel session;
  Session.status session "model";
  let model =
    Trace.with_span "flow:model" (fun () ->
        Timing.Precharacterized.build ~cache:session.Session.cache g)
  in
  let cfdfcs = Buffering.Cfdfc.extract g in
  let milp =
    Session.milp_config session { config.milp with Buffering.Formulation.use_penalty = false }
  in
  Session.check_cancel session;
  Session.status session "milp";
  match
    Trace.with_span "flow:milp" (fun () ->
        Buffering.Formulation.solve ~cache:session.Session.cache milp g model cfdfcs)
  with
  | Error msg -> failwith ("Flow.baseline: " ^ msg)
  | Ok placement ->
    run_gate config audit ~stage:"milp" (fun () ->
        Lint.Engine.check_milp ~cp_target:milp.Buffering.Formulation.cp_target
          ~buffered:placement.Buffering.Formulation.all_buffered model
          placement.Buffering.Formulation.lp placement.Buffering.Formulation.solution);
    let final = apply_buffers g placement.Buffering.Formulation.new_buffers in
    refine_gate config audit ~stage:"tv-buffer" ~base:g ~buffered:final
      ~allowed:(List.map (fun c -> (c, opaque_spec)) placement.Buffering.Formulation.new_buffers);
    let cert, milp_phi = certify_placement config audit ~cfdfcs ~placement final in
    let final_net, final_lg = synth_map ~session config final in
    (* the baseline synthesises once, at the end: its single tv gate
       validates that final netlist/AIG/cover triple *)
    tv_gate config audit ~stage:"tv" final_net final_lg;
    let achieved = final_lg.Techmap.Lutgraph.max_level in
    (* the same closing gate the iterative flow runs: both flavors audit
       their result graph, not just their inputs and MILP artefacts *)
    run_gate config audit ~stage:"final-dfg" (fun () -> Lint.Engine.check_graph final);
    {
      graph = final;
      net = final_net;
      lutgraph = final_lg;
      iterations =
        [
          {
            it_index = 1;
            model_pairs = List.length model.Timing.Model.pairs;
            delay_nodes = 0;
            fake_nodes = 0;
            proposed_buffers = List.length placement.Buffering.Formulation.new_buffers;
            kept_as_fixed = 0;
            achieved_levels = achieved;
            milp_objective = placement.Buffering.Formulation.objective;
            milp_proved = placement.Buffering.Formulation.proved_optimal;
            milp_phi;
            certified_bound = cert.Analysis.Certify.throughput;
          };
        ];
      met_target = achieved <= config.target_levels;
      final_levels = achieved;
      total_buffers = List.length (G.buffered_channels final);
      certified = cert;
      lint = audit.a_report;
      lint_stages = List.rev audit.a_stages;
      narrowing;
    }
