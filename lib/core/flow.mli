(** The paper's primary contribution: iterative, mapping-aware frequency
    regulation (Figure 4, §V), plus the one-shot mapping-agnostic
    baseline it is compared against (§VI-A).

    Iterative flow:
    + seed opaque buffers on all loop back edges (fixed);
    + synthesise and LUT-map the circuit, build the mapping-aware timing
      model and channel penalties;
    + solve the buffer-placement MILP (Eq. 3);
    + re-synthesise with the chosen buffers and measure logic levels;
    + if the target is met (or iterations are exhausted) stop; otherwise
      keep a sparse subset of the found buffers — per basic block, the
      one with the lowest penalty — as additional fixed buffers and
      repeat.

    Baseline flow: seed back edges, build the pre-characterised model,
    solve the same MILP once without penalties (Eq. 1), done. *)

type config = {
  target_levels : int;      (** the paper targets 6 *)
  level_delay : float;      (** 0.7 ns *)
  max_iterations : int;
  milp : Buffering.Formulation.config;
  lut_k : int;              (** LUT input count, 6 *)
  routing_aware : bool;
      (** fold placement-estimated wire delays into the timing model (the
          §VI future-work enhancement; off in the paper's configuration) *)
  slack_match : bool;
      (** pad reconvergent paths with transparent capacity after buffer
          placement (the FPGA'20 sizing companion; off by default) *)
  balance : bool;
      (** run the depth-reducing AND re-association pass before LUT
          mapping (ABC's [balance]; off to match the paper's `if -K 6`
          only run) *)
  lint_gates : bool;
      (** audit every stage with the {!module:Lint} rule set: errors
          abort the run with {!Lint.Engine.Lint_error}, warnings and
          infos are collected into {!outcome.lint} (on by default) *)
  tv_exact : bool;
      (** translation-validation gates confirm every signature-mismatch
          witness by scalar replay and exhaustive evaluation of the
          offending cone (the [--tv-exact] CLI flag; off by default —
          the cheap 64-lane signature pass always runs when
          [lint_gates] is on) *)
  narrow : bool;
      (** run the abstract-interpretation value analysis and the verified
          narrowing rewrite ({!module:Absint}) on the seeded graph before
          synthesis (on by default; the [--no-narrow] CLI escape hatch).
          The rewrite is always gated by random-simulation equivalence
          ([equiv-narrow]) — a mismatch aborts the flow even when
          [lint_gates] is off *)
}

val default_config : config

type iteration = {
  it_index : int;
  model_pairs : int;
  delay_nodes : int;
  fake_nodes : int;
  proposed_buffers : int;
  kept_as_fixed : int;      (** buffers promoted to the fixed set after this iteration *)
  achieved_levels : int;    (** post-synthesis levels with this iteration's buffers *)
  milp_objective : float;
  milp_proved : bool;
  milp_phi : float;
      (** the MILP's own throughput claim: min over its per-CFDFC
          [theta]s (1.0 for an acyclic circuit) *)
  certified_bound : float;
      (** the LP-free certified throughput bound of this iteration's
          candidate placement ({!Analysis.Certify}); the [perf] gate
          enforces [milp_phi <= certified_bound + eps] *)
}

type outcome = {
  graph : Dataflow.Graph.t;     (** final buffered circuit *)
  net : Net.t;
      (** elaborated netlist of {!field:graph} — the flow's own final
          synthesis, so downstream measurement (P&R, STA) need not
          re-synthesise the circuit *)
  lutgraph : Techmap.Lutgraph.t;
      (** LUT mapping of {!field:net}; [lutgraph.max_level] always equals
          {!field:final_levels}, including under [slack_match] (the
          transparent buffers are part of this netlist) *)
  iterations : iteration list;
  met_target : bool;
  final_levels : int;           (** levels of the {e final} circuit, after slack matching *)
  total_buffers : int;
  certified : Analysis.Certify.t;
      (** the final placement's throughput & liveness certificate (from
          the last MILP solve's candidate; slack matching only adds
          transparent capacity, which cannot invalidate it) *)
  lint : Lint.Engine.report;    (** non-fatal findings from the stage gates *)
  lint_stages : string list;
      (** audit trail: the gate stages that actually ran, in order (empty
          when [lint_gates] is off); both flavors end with ["final-dfg"] *)
  narrowing : Absint.Narrow.report option;
      (** what the value-range narrowing stage did (widths shrunk, units
          folded, dead code deleted); [None] when [config.narrow] is off *)
}

val seed_back_edges : Dataflow.Graph.t -> Dataflow.Graph.channel_id list
(** Place (and return) the opaque buffers required on loop back edges.
    Mutates the graph. *)

val iterative : ?config:config -> ?session:Session.t -> Dataflow.Graph.t -> outcome
(** Mapping-aware iterative flow. The input graph is not mutated.
    [session] (default {!Session.ambient}) supplies the cache handle,
    MILP budget overrides, the cooperative-cancellation poll (checked at
    every iteration boundary and before every MILP solve — raises
    {!Session.Cancelled}) and the status sink. *)

val baseline : ?config:config -> ?session:Session.t -> Dataflow.Graph.t -> outcome
(** Mapping-agnostic one-shot flow (the paper's "Prev."). Takes the same
    [session] environment as {!iterative}. *)

val levels_of : config -> Dataflow.Graph.t -> int
(** Synthesise and map the graph as-is; return its logic-level count. *)

val synth_map :
  ?session:Session.t -> config -> Dataflow.Graph.t -> Net.t * Techmap.Lutgraph.t
(** Elaborate, synthesise (with the configured optimisation passes) and
    LUT-map the graph, memoizing through the session's cache (default
    {!Session.ambient}). *)
