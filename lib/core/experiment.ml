module G = Dataflow.Graph
module Trace = Support.Trace

type metrics = {
  cp : float;
  cycles : int;
  exec_ns : float;
  luts : int;
  ffs : int;
  levels : int;
  buffers : int;
  iterations : int;
  met_target : bool;
  value_ok : bool;
}

type row = {
  bench : string;
  prev : metrics;
  iter : metrics;
}

let measure (outcome : Flow.outcome) kernel =
  Trace.with_span ~cat:"experiment" "experiment:measure" @@ fun () ->
  let g = outcome.Flow.graph in
  (* the flow already synthesised its final circuit; measuring from the
     outcome's netlist avoids a full re-synthesis per kernel run *)
  let net = outcome.Flow.net and lg = outcome.Flow.lutgraph in
  let pr = Placeroute.Sta.analyze ~seed:7 net lg in
  let mems = kernel.Hls.Kernels.mems () in
  let sim = Trace.with_span ~cat:"sim" "sim:elastic" (fun () -> Sim.Elastic.run ~memories:mems g) in
  let reference = Hls.Kernels.reference kernel in
  let value_ok =
    sim.Sim.Elastic.finished && sim.Sim.Elastic.exit_value = Some reference
  in
  {
    cp = pr.Placeroute.Sta.cp;
    cycles = sim.Sim.Elastic.cycles;
    exec_ns = pr.Placeroute.Sta.cp *. float_of_int sim.Sim.Elastic.cycles;
    luts = pr.Placeroute.Sta.n_luts;
    ffs = pr.Placeroute.Sta.n_ffs;
    levels = lg.Techmap.Lutgraph.max_level;
    buffers = List.length (G.buffered_channels g);
    iterations = List.length outcome.Flow.iterations;
    met_target = outcome.Flow.met_target;
    value_ok;
  }

let run_flow ?(config = Flow.default_config) ?session ~flavor kernel =
  let g = Hls.Kernels.graph kernel in
  let outcome =
    match flavor with
    | `Baseline -> Flow.baseline ~config ?session g
    | `Iterative -> Flow.iterative ~config ?session g
  in
  (measure outcome kernel, outcome)

let run_kernel ?(config = Flow.default_config) kernel =
  let prev, _ = run_flow ~config ~flavor:`Baseline kernel in
  let iter, _ = run_flow ~config ~flavor:`Iterative kernel in
  { bench = kernel.Hls.Kernels.name; prev; iter }

let resolve_kernels ?names ?kernels () =
  match (kernels, names) with
  | Some ks, _ -> ks
  | None, Some ns -> List.map Hls.Kernels.by_name ns
  | None, None -> Hls.Kernels.all

let run_all ?(config = Flow.default_config) ?names ?kernels () =
  List.map (run_kernel ~config) (resolve_kernels ?names ?kernels ())

(* ------------------------------------------------------------------ *)
(* Domain-parallel engine: one task per kernel x flavor. Each task
   compiles its own kernel graph (nothing mutable is shared across
   domains; placement RNGs are created per run from fixed seeds), so a
   task's result is independent of scheduling and [jobs] only changes
   wall-clock, never a number. *)

type task_timing = { t_bench : string; t_flavor : string; t_seconds : float }

let run_all_timed ?(config = Flow.default_config) ?jobs ?names ?kernels () =
  let jobs = match jobs with Some j -> j | None -> Support.Pool.default_jobs () in
  let ks = resolve_kernels ?names ?kernels () in
  (* rule registration runs at module initialisation, on the main domain;
     forcing the catalogue here keeps that true even if initialisation
     order ever changes, so no worker races to register rules *)
  ignore (Lint.Engine.catalogue ());
  Trace.with_span ~cat:"experiment" "experiment:run_all" @@ fun () ->
  (* captured before submission: task spans re-root under this span's
     path whichever domain runs them, so the trace nests identically at
     any [jobs] width *)
  let ctx = Trace.current_context () in
  let wall0 = Unix.gettimeofday () in
  let results =
    Support.Pool.run ~jobs (fun pool ->
        let submit k flavor =
          let label =
            Printf.sprintf "task:%s:%s" k.Hls.Kernels.name
              (match flavor with `Baseline -> "baseline" | `Iterative -> "iterative")
          in
          Support.Pool.submit pool (fun () ->
              Trace.with_context ctx (fun () ->
                  Trace.timed ~cat:"task" label (fun () ->
                      fst (run_flow ~config ~flavor k))))
        in
        ks
        |> List.map (fun k -> (k, submit k `Baseline, submit k `Iterative))
        |> List.map (fun (k, fb, fi) ->
               let name = k.Hls.Kernels.name in
               let prev, t_prev = Support.Pool.await fb in
               let iter, t_iter = Support.Pool.await fi in
               ( { bench = name; prev; iter },
                 [
                   { t_bench = name; t_flavor = "baseline"; t_seconds = t_prev };
                   { t_bench = name; t_flavor = "iterative"; t_seconds = t_iter };
                 ] )))
  in
  let rows = List.map fst results in
  let timings = List.concat_map snd results in
  (rows, timings, Unix.gettimeofday () -. wall0)

let run_all_parallel ?config ?jobs ?names ?kernels () =
  let rows, _, _ = run_all_timed ?config ?jobs ?names ?kernels () in
  rows
