(** The explicit per-request environment of a flow run.

    Everything a {!Flow} invocation needs beyond its input graph and
    {!Flow.config} — which cache store to consult, how much MILP search
    budget it may burn, whether it has been cancelled, where to stream
    status — lives in this record instead of process-global state. One
    long-lived process (the [regulate serve] daemon) builds one session
    per request, all sharing one {!Cache.Store.t}, and serves them
    concurrently on a {!Support.Pool} with no cross-request leakage; the
    one-shot CLIs simply run with {!ambient}, which mirrors the old
    process-global behaviour exactly. *)

exception Cancelled
(** Raised by {!check_cancel} (i.e. from inside a flow, between
    iterations and before each MILP solve) when the session's
    [cancelled] poll returns true. Cooperative: a request is only ever
    abandoned at a stage boundary, never mid-pivot. *)

type t = {
  cache : Cache.Session.t;      (** artifact cache handle (possibly disabled) *)
  milp_nodes : int option;      (** per-request B&B node-budget override *)
  milp_budget_s : float option; (** per-request B&B wall-budget override, seconds *)
  cancelled : unit -> bool;     (** cooperative cancellation poll; must be cheap *)
  on_status : (string -> unit) option;
      (** per-request status sink (streamed to daemon clients); called
          from whichever domain runs the flow *)
}

val make :
  ?cache:Cache.Session.t ->
  ?milp_nodes:int ->
  ?milp_budget_s:float ->
  ?cancelled:(unit -> bool) ->
  ?on_status:(string -> unit) ->
  unit ->
  t
(** A session with explicit fields; [cache] defaults to
    {!Cache.Session.disabled} (note: {e not} the ambient store — a
    made session owns its environment). *)

val ambient : unit -> t
(** The CLI shim: the process-global {!Cache.Control} store (captured at
    call time), default budgets, never cancelled, no status sink. *)

val check_cancel : t -> unit
(** Raise {!Cancelled} if the session was cancelled. *)

val status : t -> string -> unit
(** Feed the status sink, if any. *)

val milp_config : t -> Buffering.Formulation.config -> Buffering.Formulation.config
(** Apply the session's budget overrides to a MILP config. *)
