(** Gate-level netlist.

    This is the substrate that replaces the paper's RTL + ODIN-II/Yosys
    step: dataflow units are elaborated (see {!Elaborate}) into a netlist
    of primitive gates, with every gate labelled by the dataflow unit it
    came from ([owner]) and the handshake timing domain it computes
    ([domain]). The technology mapper consumes the combinational portion;
    flip-flops, inputs and outputs are path endpoints. *)

type domain =
  | Data   (** datapath bits *)
  | Valid  (** forward handshake *)
  | Ready  (** backward handshake *)
  | Mixed  (** fanins span domains: a domain-interaction gate (§IV-D) *)

type kind =
  | Input of string
  | Output of string  (** one fanin *)
  | Const of bool
  | Buf               (** identity; used as a forward-declared wire *)
  | Not
  | And2
  | Or2
  | Xor2
  | Ff of bool        (** D flip-flop with reset/init value *)

type gate = private {
  id : int;
  kind : kind;
  mutable fanins : int array;  (** gate ids; -1 = not yet connected *)
  owner : int;                 (** DFG unit id; -1 for top-level IO *)
  mutable dom : domain;
}

type t

val create : string -> t
val name : t -> string
val n_gates : t -> int
val gate : t -> int -> gate
val iter : t -> (gate -> unit) -> unit

(** {2 Construction}

    All constructors take the owning DFG unit and a domain. Logical
    operations compute the result domain themselves: if the fanin domains
    disagree, the gate is [Mixed]. *)

val input : t -> owner:int -> dom:domain -> string -> int
val output : t -> owner:int -> string -> int -> int
val const : t -> owner:int -> dom:domain -> bool -> int
val wire : t -> owner:int -> dom:domain -> int
(** Forward-declared signal; connect later with {!connect}. *)

val connect : t -> int -> int -> unit
(** [connect t w src] sets the single fanin of wire/output/ff gate [w]. *)

val not_ : t -> owner:int -> int -> int
val and2 : t -> owner:int -> int -> int -> int
val or2 : t -> owner:int -> int -> int -> int
val xor2 : t -> owner:int -> int -> int -> int
val mux2 : t -> owner:int -> sel:int -> int -> int -> int
(** [mux2 ~sel a b] = if sel then a else b, expanded to primitive gates. *)

val and_list : t -> owner:int -> dom:domain -> int list -> int
(** Balanced AND tree; empty list is constant true. *)

val or_list : t -> owner:int -> dom:domain -> int list -> int

val ff : t -> owner:int -> dom:domain -> ?init:bool -> unit -> int
(** Flip-flop; connect its D input later with {!connect}. *)

val clone_map_kind : t -> (gate -> kind) -> t
(** Structural copy with every gate's kind rewritten by the callback
    (gate ids, fanins, owners and domains are preserved). The new kind
    must keep the gate's arity or {!validate} will reject the clone.
    Used by the translation validator's mutation harness to inject
    seeded gate flips. *)

val inputs : t -> int list
val outputs : t -> int list
val ffs : t -> int list

val count_ffs : t -> int

val validate : t -> (unit, string) result
(** Every fanin connected, arities correct. *)

(** {2 Simulation}

    Cycle-level gate simulation for differential testing: combinational
    fixpoint per cycle, then clock edge. *)

type sim

val sim_create : t -> sim
val sim_set_input : sim -> string -> bool -> unit
val sim_eval : sim -> unit
(** Settle combinational logic (bounded fixpoint; raises [Failure] if the
    netlist does not stabilise, i.e., contains a combinational cycle). *)

val sim_get : sim -> int -> bool
val sim_get_output : sim -> string -> bool
val sim_step : sim -> unit
(** Clock edge: latch all FFs from their D fanins (call after
    {!sim_eval}). *)
