module G = Dataflow.Graph
module K = Dataflow.Unit_kind

type chan_wires = {
  s_data : int array;  (* driven by the channel's source unit *)
  s_valid : int;
  s_ready : int;       (* read by the source unit *)
  d_data : int array;  (* read by the destination unit *)
  d_valid : int;
  d_ready : int;       (* driven by the destination unit *)
}

let interaction_units g =
  G.find_units g (fun n ->
      match n.G.kind with
      | K.Branch | K.Mux _ | K.Merge _ | K.Control_merge _ -> true
      | K.Operator { latency; _ } -> latency > 0
      | K.Load _ | K.Store _ -> true
      | _ -> false)

(* Zero-extend a bit-vector to [width] (operand widths can differ when
   e.g. a 1-bit comparison result meets an 8-bit counter). *)
let pad_bv net ~owner bv width =
  if Array.length bv >= width then Array.sub bv 0 width
  else
    Array.init width (fun i ->
        if i < Array.length bv then bv.(i) else Net.const net ~owner ~dom:Net.Data false)

(* Align a list of operand vectors on their maximum width — at least
   [min_width], the result width for arithmetic: a subtraction of two
   1-bit comparison outputs must borrow through the full result width
   (0 - 1 = -1, not 1 mod 2), and the multiplier's row walk indexes the
   operand vectors by result bit position. *)
let align_operands ?(min_width = 0) net ~owner args =
  let w = List.fold_left (fun acc a -> max acc (Array.length a)) min_width args in
  List.map (fun a -> pad_bv net ~owner a w) args

(* Zero-extend or truncate a computed bit-vector onto channel wires. *)
let drive_bv net ~owner wires bv =
  Array.iteri
    (fun i w ->
      let src =
        if i < Array.length bv then bv.(i) else Net.const net ~owner ~dom:Net.Data false
      in
      Net.connect net w src)
    wires

let one_hot_grants net ~owner valids =
  (* grant_i = valid_i and no lower-indexed input is valid *)
  let n = Array.length valids in
  let grants = Array.make n 0 in
  let blocked = ref None in
  for i = 0 to n - 1 do
    (match !blocked with
    | None -> grants.(i) <- valids.(i)
    | Some b ->
      let nb = Net.not_ net ~owner b in
      grants.(i) <- Net.and2 net ~owner valids.(i) nb);
    blocked :=
      Some (match !blocked with None -> valids.(i) | Some b -> Net.or2 net ~owner b valids.(i))
  done;
  grants

(* AND-OR mux over one-hot grants. *)
let grant_mux net ~owner ~width grants datas =
  Array.init width (fun bit ->
      let terms =
        Array.to_list
          (Array.mapi
             (fun i g ->
               let d = datas.(i) in
               let b =
                 if bit < Array.length d then d.(bit)
                 else Net.const net ~owner ~dom:Net.Data false
               in
               Net.and2 net ~owner g b)
             grants)
      in
      Net.or_list net ~owner ~dom:Net.Data terms)

(* 2-slot skid buffer: registers d0 (output stage) and d1 (skid slot).
   All three domains are cut by registers; the only combinational gate
   visible outside is the NOT computing s_ready from the skid flag. *)
let elaborate_opaque_buffer net ~fwd_owner ~bwd_owner cw =
  let width = Array.length cw.s_data in
  let v0 = Net.ff net ~owner:fwd_owner ~dom:Net.Valid () in
  let v1 = Net.ff net ~owner:fwd_owner ~dom:Net.Valid () in
  let d0 = Array.init width (fun _ -> Net.ff net ~owner:fwd_owner ~dom:Net.Data ()) in
  let d1 = Array.init width (fun _ -> Net.ff net ~owner:fwd_owner ~dom:Net.Data ()) in
  let owner = fwd_owner in
  let deq = Net.and2 net ~owner v0 cw.d_ready in
  let nv1 = Net.not_ net ~owner:bwd_owner v1 in
  let enq = Net.and2 net ~owner cw.s_valid nv1 in
  (* v0' = (v0 & ~deq) | v1 | enq *)
  let ndeq = Net.not_ net ~owner deq in
  let hold = Net.and2 net ~owner v0 ndeq in
  let v0n = Net.or2 net ~owner (Net.or2 net ~owner hold v1) enq in
  Net.connect net v0 v0n;
  (* v1' = (v1 & ~deq) | (v0 & ~deq & enq) *)
  let keep1 = Net.and2 net ~owner v1 ndeq in
  let spill = Net.and2 net ~owner hold enq in
  let v1n = Net.or2 net ~owner keep1 spill in
  Net.connect net v1 v1n;
  for i = 0 to width - 1 do
    (* d0' = deq ? (v1 ? d1 : s_data) : (v0 ? d0 : s_data) *)
    let from_skid = Net.mux2 net ~owner ~sel:v1 d1.(i) cw.s_data.(i) in
    let idle = Net.mux2 net ~owner ~sel:v0 d0.(i) cw.s_data.(i) in
    let d0n = Net.mux2 net ~owner ~sel:deq from_skid idle in
    Net.connect net d0.(i) d0n;
    (* d1' = spill ? s_data : d1 *)
    let d1n = Net.mux2 net ~owner ~sel:spill cw.s_data.(i) d1.(i) in
    Net.connect net d1.(i) d1n;
    Net.connect net cw.d_data.(i) d0.(i)
  done;
  Net.connect net cw.d_valid v0;
  Net.connect net cw.s_ready nv1

let link_channel net g (c : G.chan) cw =
  match c.G.buffer with
  | Some { G.transparent = false; _ } ->
    elaborate_opaque_buffer net ~fwd_owner:c.G.dst ~bwd_owner:c.G.src cw
  | Some { G.transparent = true; _ } | None ->
    (* Transparent buffers only add queue capacity (modelled by the
       simulator and the throughput MILP); combinationally they pass
       through. *)
    ignore g;
    Array.iteri (fun i w -> Net.connect net w cw.s_data.(i)) cw.d_data;
    Net.connect net cw.d_valid cw.s_valid;
    Net.connect net cw.s_ready cw.d_ready

(* Build a pipelined valid chain with a common [enable]; returns
   (stage valids, enable wire to be connected by the caller). *)
let valid_chain net ~owner depth =
  Array.init depth (fun _ -> Net.ff net ~owner ~dom:Net.Valid ())

let enabled_ff net ~owner ~dom ~enable next =
  let r = Net.ff net ~owner ~dom () in
  let d = Net.mux2 net ~owner ~sel:enable next r in
  Net.connect net r d;
  r

let enabled_ff_bv net ~owner ~enable next =
  Array.map (fun b -> enabled_ff net ~owner ~dom:Net.Data ~enable b) next

(* Implicit join at a unit's inputs: consume all inputs simultaneously.
   [go] is the unit-side condition for firing (e.g. output ready). *)
let join_inputs net ~owner ~go ins =
  let valids = Array.map (fun cw -> cw.d_valid) ins in
  Array.iteri
    (fun i cw ->
      let others =
        Array.to_list valids |> List.filteri (fun j _ -> j <> i)
      in
      let others_valid = Net.and_list net ~owner ~dom:Net.Valid others in
      Net.connect net cw.d_ready (Net.and2 net ~owner go others_valid))
    ins;
  Net.and_list net ~owner ~dom:Net.Valid (Array.to_list valids)

let elaborate_unit net g (n : G.node) wires =
  let owner = n.G.uid in
  let inw p =
    match G.in_channel g n.G.uid p with
    | Some cid -> wires.(cid)
    | None -> invalid_arg (Printf.sprintf "elaborate: %s input %d unconnected" n.G.label p)
  in
  let outw p =
    match G.out_channel g n.G.uid p with
    | Some cid -> wires.(cid)
    | None -> invalid_arg (Printf.sprintf "elaborate: %s output %d unconnected" n.G.label p)
  in
  let n_ins = K.in_arity n.G.kind and n_outs = K.out_arity n.G.kind in
  let ins = Array.init n_ins inw and outs = Array.init n_outs outw in
  match n.G.kind with
  | K.Entry ->
    let o = outs.(0) in
    let v = Net.input net ~owner ~dom:Net.Valid (Printf.sprintf "entry_valid_u%d" owner) in
    Net.connect net o.s_valid v;
    drive_bv net ~owner o.s_data [||];
    ignore (Net.output net ~owner (Printf.sprintf "entry_ready_u%d" owner) o.s_ready)
  | K.Exit ->
    let i = ins.(0) in
    ignore (Net.output net ~owner (Printf.sprintf "exit_valid_u%d" owner) i.d_valid);
    Array.iteri
      (fun b d -> ignore (Net.output net ~owner (Printf.sprintf "exit_data_u%d_%d" owner b) d))
      i.d_data;
    let r = Net.input net ~owner ~dom:Net.Ready (Printf.sprintf "exit_ready_u%d" owner) in
    Net.connect net i.d_ready r
  | K.Source ->
    let o = outs.(0) in
    Net.connect net o.s_valid (Net.const net ~owner ~dom:Net.Valid true);
    drive_bv net ~owner o.s_data [||]
  | K.Sink ->
    let i = ins.(0) in
    Net.connect net i.d_ready (Net.const net ~owner ~dom:Net.Ready true)
  | K.Const k ->
    let i = ins.(0) and o = outs.(0) in
    Net.connect net o.s_valid i.d_valid;
    Net.connect net i.d_ready o.s_ready;
    drive_bv net ~owner o.s_data (Datapath.const_bv net ~owner ~width:(Array.length o.s_data) k)
  | K.Fork nf | K.Lazy_fork nf -> (
    let i = ins.(0) in
    (* data fans out unchanged *)
    Array.iter (fun o -> Array.iteri (fun b w -> Net.connect net w i.d_data.(b)) o.s_data) outs;
    match n.G.kind with
    | K.Lazy_fork _ ->
      let all_ready =
        Net.and_list net ~owner ~dom:Net.Ready
          (Array.to_list (Array.map (fun o -> o.s_ready) outs))
      in
      Array.iter
        (fun o -> Net.connect net o.s_valid (Net.and2 net ~owner i.d_valid all_ready))
        outs;
      Net.connect net i.d_ready all_ready
    | _ ->
      (* eager fork with per-output "sent" flags *)
      let sent = Array.init nf (fun _ -> Net.ff net ~owner ~dom:Net.Valid ()) in
      let dones =
        Array.init nf (fun k ->
            let nsent = Net.not_ net ~owner sent.(k) in
            let vo = Net.and2 net ~owner i.d_valid nsent in
            Net.connect net outs.(k).s_valid vo;
            let delivered = Net.and2 net ~owner vo outs.(k).s_ready in
            Net.or2 net ~owner sent.(k) delivered)
      in
      let all_done = Net.and_list net ~owner ~dom:Net.Valid (Array.to_list dones) in
      Net.connect net i.d_ready all_done;
      let nall = Net.not_ net ~owner all_done in
      Array.iteri (fun k s -> Net.connect net s (Net.and2 net ~owner dones.(k) nall)) sent)
  | K.Join _ ->
    let o = outs.(0) in
    let valid_out = join_inputs net ~owner ~go:o.s_ready ins in
    Net.connect net o.s_valid valid_out;
    drive_bv net ~owner o.s_data (if Array.length ins.(0).d_data > 0 then ins.(0).d_data else [||])
  | K.Merge _ ->
    let o = outs.(0) in
    let valids = Array.map (fun i -> i.d_valid) ins in
    let grants = one_hot_grants net ~owner valids in
    Net.connect net o.s_valid
      (Net.or_list net ~owner ~dom:Net.Valid (Array.to_list valids));
    let datas = Array.map (fun i -> i.d_data) ins in
    drive_bv net ~owner o.s_data
      (grant_mux net ~owner ~width:(Array.length o.s_data) grants datas);
    Array.iteri
      (fun k i -> Net.connect net i.d_ready (Net.and2 net ~owner grants.(k) o.s_ready))
      ins
  | K.Control_merge _ ->
    (* Two independently consumed outputs: per-output "sent" flags plus a
       winner latch, exactly like an eager fork, so that a consumer that
       accepts early never sees the same token twice. *)
    let tok = outs.(0) and idx = outs.(1) in
    let valids = Array.map (fun i -> i.d_valid) ins in
    let free_grants = one_hot_grants net ~owner valids in
    let lock = Net.ff net ~owner ~dom:Net.Valid () in
    let winner_reg = Array.map (fun _ -> Net.ff net ~owner ~dom:Net.Valid ()) valids in
    let grants =
      Array.mapi (fun k fg -> Net.mux2 net ~owner ~sel:lock winner_reg.(k) fg) free_grants
    in
    let any =
      Net.or_list net ~owner ~dom:Net.Valid
        (Array.to_list (Array.mapi (fun k g -> Net.and2 net ~owner g valids.(k)) grants))
    in
    let sent_tok = Net.ff net ~owner ~dom:Net.Valid () in
    let sent_idx = Net.ff net ~owner ~dom:Net.Valid () in
    let vo_tok = Net.and2 net ~owner any (Net.not_ net ~owner sent_tok) in
    let vo_idx = Net.and2 net ~owner any (Net.not_ net ~owner sent_idx) in
    Net.connect net tok.s_valid vo_tok;
    Net.connect net idx.s_valid vo_idx;
    drive_bv net ~owner tok.s_data [||];
    (* index output encodes the winning input in binary; the grant
       signals live in the valid domain, so these gates are Mixed: a
       domain-interaction point. *)
    let width = Array.length idx.s_data in
    let idx_bits =
      Array.init width (fun bit ->
          let terms =
            Array.to_list grants
            |> List.filteri (fun i _ -> (i lsr bit) land 1 = 1)
          in
          Net.or_list net ~owner ~dom:Net.Valid terms)
    in
    drive_bv net ~owner idx.s_data idx_bits;
    let done_tok = Net.or2 net ~owner sent_tok (Net.and2 net ~owner vo_tok tok.s_ready) in
    let done_idx = Net.or2 net ~owner sent_idx (Net.and2 net ~owner vo_idx idx.s_ready) in
    let all = Net.and2 net ~owner done_tok done_idx in
    let nall = Net.not_ net ~owner all in
    Net.connect net sent_tok (Net.and2 net ~owner done_tok nall);
    Net.connect net sent_idx (Net.and2 net ~owner done_idx nall);
    Net.connect net lock (Net.and2 net ~owner any nall);
    Array.iteri
      (fun k g -> Net.connect net winner_reg.(k) (Net.and2 net ~owner g nall))
      grants;
    Array.iteri
      (fun k i -> Net.connect net i.d_ready (Net.and2 net ~owner grants.(k) all))
      ins
  | K.Mux nm ->
    let sel = ins.(0) and o = outs.(0) in
    let sel_onehot =
      Array.init nm (fun i ->
          if Array.length sel.d_data = 0 then Net.const net ~owner ~dom:Net.Data (i = 0)
          else
            Datapath.eq net ~owner sel.d_data
              (Datapath.const_bv net ~owner ~width:(Array.length sel.d_data) i))
    in
    let chosen_valid =
      Net.or_list net ~owner ~dom:Net.Valid
        (List.init nm (fun i -> Net.and2 net ~owner sel_onehot.(i) ins.(i + 1).d_valid))
    in
    let valid_out = Net.and2 net ~owner sel.d_valid chosen_valid in
    Net.connect net o.s_valid valid_out;
    let datas = Array.init nm (fun i -> ins.(i + 1).d_data) in
    drive_bv net ~owner o.s_data
      (grant_mux net ~owner ~width:(Array.length o.s_data) sel_onehot datas);
    let fire = Net.and2 net ~owner valid_out o.s_ready in
    for i = 0 to nm - 1 do
      Net.connect net ins.(i + 1).d_ready (Net.and2 net ~owner sel_onehot.(i) fire)
    done;
    Net.connect net sel.d_ready fire
  | K.Branch ->
    let data = ins.(0) and cond = ins.(1) in
    let out_t = outs.(0) and out_f = outs.(1) in
    let c = cond.d_data.(0) in
    let both = Net.and2 net ~owner data.d_valid cond.d_valid in
    let vt = Net.and2 net ~owner both c in
    let nc = Net.not_ net ~owner c in
    let vf = Net.and2 net ~owner both nc in
    Net.connect net out_t.s_valid vt;
    Net.connect net out_f.s_valid vf;
    Array.iteri (fun b w -> Net.connect net w data.d_data.(b)) out_t.s_data;
    Array.iteri (fun b w -> Net.connect net w data.d_data.(b)) out_f.s_data;
    let taken_ready = Net.mux2 net ~owner ~sel:c out_t.s_ready out_f.s_ready in
    Net.connect net data.d_ready (Net.and2 net ~owner cond.d_valid taken_ready);
    Net.connect net cond.d_ready (Net.and2 net ~owner data.d_valid taken_ready)
  | K.Operator { op; latency = 0; _ } ->
    let o = outs.(0) in
    let valid_out = join_inputs net ~owner ~go:o.s_ready ins in
    Net.connect net o.s_valid valid_out;
    let args =
      match op with
      | Dataflow.Ops.Select ->
        (* keep the 1-bit condition narrow; align the two data arms *)
        let all = Array.to_list (Array.map (fun i -> i.d_data) ins) in
        (match all with
        | cond :: arms -> [ cond ] @ align_operands net ~owner arms
        | [] -> [])
      | _ ->
        align_operands net ~owner
          ~min_width:(Array.length o.s_data)
          (Array.to_list (Array.map (fun i -> i.d_data) ins))
    in
    drive_bv net ~owner o.s_data (Datapath.of_op net ~owner op args)
  | K.Operator { op; latency; _ } ->
    let o = outs.(0) in
    let vchain = valid_chain net ~owner latency in
    let v_last = vchain.(latency - 1) in
    let nlast = Net.not_ net ~owner v_last in
    let enable = Net.or2 net ~owner o.s_ready nlast in
    let all_valid = join_inputs net ~owner ~go:enable ins in
    let fire = Net.and2 net ~owner all_valid enable in
    (* valid pipeline: v1' = enable ? fire_in : v1 ; vk' = enable ? v(k-1) : vk *)
    Array.iteri
      (fun k v ->
        let next = if k = 0 then fire else vchain.(k - 1) in
        Net.connect net v (Net.mux2 net ~owner ~sel:enable next v))
      vchain;
    Net.connect net o.s_valid v_last;
    (* staged datapath: multipliers interleave shift-add rows with the
       pipeline registers so every stage stays shallow *)
    let width = Array.length o.s_data in
    let result =
      match op with
      | Dataflow.Ops.Mul ->
        let a, b =
          match
            align_operands net ~owner ~min_width:(max 1 width)
              [ ins.(0).d_data; ins.(1).d_data ]
          with
          | [ a; b ] -> (a, b)
          | _ -> assert false
        in
        let w = max 1 width in
        let rows = Array.length a in
        let per_stage = max 1 ((rows + latency - 1) / latency) in
        let acc = ref (Datapath.zero net ~owner ~width:w) in
        let a_cur = ref a and b_cur = ref b in
        let row = ref 0 in
        for stage = 0 to latency - 1 do
          let upto = min rows ((stage + 1) * per_stage) in
          while !row < upto do
            (if !row < Array.length !b_cur then
               acc := Datapath.mul_row net ~owner ~acc:!acc ~a:!a_cur ~b_bit:(!b_cur).(!row) ~row:!row);
            incr row
          done;
          acc := enabled_ff_bv net ~owner ~enable !acc;
          if stage < latency - 1 then begin
            a_cur := enabled_ff_bv net ~owner ~enable !a_cur;
            b_cur := enabled_ff_bv net ~owner ~enable !b_cur
          end
        done;
        !acc
      | _ ->
        let comb =
          Datapath.of_op net ~owner op
            (align_operands net ~owner ~min_width:width
               (Array.to_list (Array.map (fun i -> i.d_data) ins)))
        in
        let r = ref comb in
        for _ = 1 to latency do
          r := enabled_ff_bv net ~owner ~enable !r
        done;
        !r
    in
    drive_bv net ~owner o.s_data result
  | K.Load { mem; latency } ->
    let addr = ins.(0) and o = outs.(0) in
    let latency = max 1 latency in
    let vchain = valid_chain net ~owner latency in
    let v_last = vchain.(latency - 1) in
    let nlast = Net.not_ net ~owner v_last in
    let enable = Net.or2 net ~owner o.s_ready nlast in
    let fire = Net.and2 net ~owner addr.d_valid enable in
    Net.connect net addr.d_ready enable;
    Array.iteri
      (fun k v ->
        let next = if k = 0 then fire else vchain.(k - 1) in
        Net.connect net v (Net.mux2 net ~owner ~sel:enable next v))
      vchain;
    Net.connect net o.s_valid v_last;
    Array.iteri
      (fun b a -> ignore (Net.output net ~owner (Printf.sprintf "mem_%s_raddr_u%d_%d" mem owner b) a))
      addr.d_data;
    ignore (Net.output net ~owner (Printf.sprintf "mem_%s_ren_u%d" mem owner) fire);
    (* read data arrives combinationally (LUT-RAM style) and is registered
       through the same enabled pipeline as the valid bit, so overlapping
       or stalled loads keep data aligned with their tokens *)
    let rdata =
      Array.init (Array.length o.s_data) (fun b ->
          Net.input net ~owner ~dom:Net.Data (Printf.sprintf "mem_%s_rdata_u%d_%d" mem owner b))
    in
    let staged = ref rdata in
    for _ = 1 to latency do
      staged := enabled_ff_bv net ~owner ~enable !staged
    done;
    drive_bv net ~owner o.s_data !staged
  | K.Store { mem } ->
    let addr = ins.(0) and data = ins.(1) and o = outs.(0) in
    (* registered completion token (1-cycle memory acknowledge): a
       dependent guarded load can never race the write *)
    let v_pend = Net.ff net ~owner ~dom:Net.Valid () in
    let enable = Net.or2 net ~owner o.s_ready (Net.not_ net ~owner v_pend) in
    let all_valid = join_inputs net ~owner ~go:enable ins in
    let fire = Net.and2 net ~owner all_valid enable in
    Net.connect net v_pend (Net.mux2 net ~owner ~sel:enable fire v_pend);
    Net.connect net o.s_valid v_pend;
    drive_bv net ~owner o.s_data [||];
    Array.iteri
      (fun b a -> ignore (Net.output net ~owner (Printf.sprintf "mem_%s_waddr_u%d_%d" mem owner b) a))
      addr.d_data;
    Array.iteri
      (fun b d -> ignore (Net.output net ~owner (Printf.sprintf "mem_%s_wdata_u%d_%d" mem owner b) d))
      data.d_data;
    ignore (Net.output net ~owner (Printf.sprintf "mem_%s_wen_u%d" mem owner) fire)
  | K.Buffer { transparent; _ } ->
    let i = ins.(0) and o = outs.(0) in
    let cw =
      {
        s_data = i.d_data;
        s_valid = i.d_valid;
        s_ready = i.d_ready;
        d_data = o.s_data;
        d_valid = o.s_valid;
        d_ready = o.s_ready;
      }
    in
    if transparent then begin
      Array.iteri (fun b w -> Net.connect net w cw.s_data.(b)) cw.d_data;
      Net.connect net cw.d_valid cw.s_valid;
      Net.connect net cw.s_ready cw.d_ready
    end
    else
      (* the standalone buffer's wires are inverted relative to a channel
         link: s_* here are already gate outputs, d_* are wires to drive *)
      elaborate_opaque_buffer net ~fwd_owner:owner ~bwd_owner:owner cw

let run g =
  (match G.validate g with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Elaborate.run: invalid graph: " ^ msg));
  let net = Net.create (G.name g) in
  let wires =
    Array.init (G.n_channels g) (fun cid ->
        let c = G.channel g cid in
        let w = c.G.width in
        {
          s_data = Array.init w (fun _ -> Net.wire net ~owner:c.G.src ~dom:Net.Data);
          s_valid = Net.wire net ~owner:c.G.src ~dom:Net.Valid;
          s_ready = Net.wire net ~owner:c.G.src ~dom:Net.Ready;
          d_data = Array.init w (fun _ -> Net.wire net ~owner:c.G.dst ~dom:Net.Data);
          d_valid = Net.wire net ~owner:c.G.dst ~dom:Net.Valid;
          d_ready = Net.wire net ~owner:c.G.dst ~dom:Net.Ready;
        })
  in
  G.iter_channels g (fun c -> link_channel net g c wires.(c.G.cid));
  G.iter_units g (fun n -> elaborate_unit net g n wires);
  (match Net.validate net with
  | Ok () -> ()
  | Error msg -> failwith ("Elaborate.run: produced invalid netlist: " ^ msg));
  net
