type domain = Data | Valid | Ready | Mixed

type kind =
  | Input of string
  | Output of string
  | Const of bool
  | Buf
  | Not
  | And2
  | Or2
  | Xor2
  | Ff of bool

type gate = {
  id : int;
  kind : kind;
  mutable fanins : int array;
  owner : int;
  mutable dom : domain;
}

type t = {
  nname : string;
  gates : gate Support.Vec.t;
  mutable ins : int list;
  mutable outs : int list;
  mutable regs : int list;
}

let create nname = { nname; gates = Support.Vec.create (); ins = []; outs = []; regs = [] }

let name t = t.nname
let n_gates t = Support.Vec.length t.gates
let gate t i = Support.Vec.get t.gates i
let iter t f = Support.Vec.iter f t.gates

let add t kind fanins owner dom =
  let id = Support.Vec.length t.gates in
  ignore (Support.Vec.push t.gates { id; kind; fanins; owner; dom });
  id

let join_dom a b = if a = b then a else Mixed

let dom_of t i = (gate t i).dom

let input t ~owner ~dom nm =
  let id = add t (Input nm) [||] owner dom in
  t.ins <- id :: t.ins;
  id

let output t ~owner nm src =
  let id = add t (Output nm) [| src |] owner (dom_of t src) in
  t.outs <- id :: t.outs;
  id

let const t ~owner ~dom b = add t (Const b) [||] owner dom

let wire t ~owner ~dom = add t Buf [| -1 |] owner dom

let connect t w src =
  let g = gate t w in
  (match g.kind with
  | Buf | Output _ | Ff _ -> ()
  | _ -> invalid_arg "Netlist.connect: not a wire, output or ff");
  if g.fanins.(0) <> -1 then invalid_arg "Netlist.connect: already connected";
  g.fanins.(0) <- src

let not_ t ~owner a = add t Not [| a |] owner (dom_of t a)
let and2 t ~owner a b = add t And2 [| a; b |] owner (join_dom (dom_of t a) (dom_of t b))
let or2 t ~owner a b = add t Or2 [| a; b |] owner (join_dom (dom_of t a) (dom_of t b))
let xor2 t ~owner a b = add t Xor2 [| a; b |] owner (join_dom (dom_of t a) (dom_of t b))

let mux2 t ~owner ~sel a b =
  let ns = not_ t ~owner sel in
  let ta = and2 t ~owner sel a in
  let fb = and2 t ~owner ns b in
  or2 t ~owner ta fb

let rec tree f = function
  | [] -> invalid_arg "tree: empty"
  | [ x ] -> x
  | xs ->
    let rec pair = function
      | a :: b :: rest -> f a b :: pair rest
      | [ a ] -> [ a ]
      | [] -> []
    in
    tree f (pair xs)

let and_list t ~owner ~dom = function
  | [] -> const t ~owner ~dom true
  | xs -> tree (fun a b -> and2 t ~owner a b) xs

let or_list t ~owner ~dom = function
  | [] -> const t ~owner ~dom false
  | xs -> tree (fun a b -> or2 t ~owner a b) xs

let ff t ~owner ~dom ?(init = false) () =
  let id = add t (Ff init) [| -1 |] owner dom in
  t.regs <- id :: t.regs;
  id

let clone_map_kind t f =
  let t' = { nname = t.nname; gates = Support.Vec.create (); ins = t.ins; outs = t.outs; regs = t.regs } in
  iter t (fun g ->
      let kind = f g in
      ignore
        (Support.Vec.push t'.gates
           { id = g.id; kind; fanins = Array.copy g.fanins; owner = g.owner; dom = g.dom }));
  t'

let inputs t = List.rev t.ins
let outputs t = List.rev t.outs
let ffs t = List.rev t.regs

let count_ffs t = List.length t.regs

let validate t =
  let errors = ref [] in
  iter t (fun g ->
      let expect =
        match g.kind with
        | Input _ | Const _ -> 0
        | Output _ | Buf | Not | Ff _ -> 1
        | And2 | Or2 | Xor2 -> 2
      in
      if Array.length g.fanins <> expect then
        errors := Printf.sprintf "gate %d: arity %d, expected %d" g.id (Array.length g.fanins) expect :: !errors;
      Array.iter
        (fun f ->
          if f < 0 || f >= n_gates t then
            errors := Printf.sprintf "gate %d: unconnected or bad fanin" g.id :: !errors)
        g.fanins);
  match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))

(* ------------------------------------------------------------------ *)
(* Simulation *)

type sim = {
  net : t;
  values : bool array;       (* current combinational values *)
  state : bool array;        (* FF outputs, indexed by gate id *)
  in_values : (string, bool) Hashtbl.t;
}

let sim_create net =
  let n = n_gates net in
  let s =
    { net; values = Array.make n false; state = Array.make n false; in_values = Hashtbl.create 16 }
  in
  List.iter
    (fun id -> match (gate net id).kind with Ff init -> s.state.(id) <- init | _ -> ())
    (ffs net);
  s

let sim_set_input s nm v = Hashtbl.replace s.in_values nm v

let eval_gate s g =
  let v i = s.values.(i) in
  match g.kind with
  | Input nm -> (try Hashtbl.find s.in_values nm with Not_found -> false)
  | Const b -> b
  | Buf | Output _ -> v g.fanins.(0)
  | Not -> not (v g.fanins.(0))
  | And2 -> v g.fanins.(0) && v g.fanins.(1)
  | Or2 -> v g.fanins.(0) || v g.fanins.(1)
  | Xor2 -> v g.fanins.(0) <> v g.fanins.(1)
  | Ff _ -> s.state.(g.id)

let sim_eval s =
  let n = n_gates s.net in
  let changed = ref true in
  let iters = ref 0 in
  while !changed do
    changed := false;
    incr iters;
    if !iters > n + 2 then failwith "Net.sim_eval: combinational cycle";
    iter s.net (fun g ->
        let nv = eval_gate s g in
        if nv <> s.values.(g.id) then begin
          s.values.(g.id) <- nv;
          changed := true
        end)
  done

let sim_get s i = s.values.(i)

let sim_get_output s nm =
  let rec find = function
    | [] -> invalid_arg ("Netlist.sim_get_output: no output " ^ nm)
    | id :: rest -> (
      match (gate s.net id).kind with Output n when n = nm -> s.values.(id) | _ -> find rest)
  in
  find (outputs s.net)

let sim_step s =
  let latched =
    List.map (fun id -> (id, s.values.((gate s.net id).fanins.(0)))) (ffs s.net)
  in
  List.iter (fun (id, v) -> s.state.(id) <- v) latched
