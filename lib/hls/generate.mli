(** Seeded mini-C program generator: the fuzzer's scenario factory.

    [generate seed] deterministically produces a small, always-terminating
    kernel in the exact dialect the front end accepts — counted [for]
    loops (optionally nested), decrementing [while] loops, nested
    [if]/[else], reductions into accumulator variables, stores and loads
    with mixed access patterns (sequential, offset, strided, reversed,
    indirect [a\[b\[i\]\]]), ternaries, bitwise and shift operators, and
    occasional [break]/[continue] — together with seeded input memories
    and a feature histogram for coverage reporting.

    Guarantees, relied on by the fuzz oracles ({!module:Fuzz}):
    - {b determinism}: the same seed yields byte-identical source, the
      same memories and the same features, on any domain and at any
      worker-pool width (all randomness flows through one
      {!Support.Rng} stream seeded from [seed]);
    - {b round-trip}: [Parser.parse source] re-reads the exact AST
      ([source] is [Ast.pp_func] output, which parenthesises fully);
    - {b termination}: loop counters are never assigned inside their
      own body, [for] bounds and [while] counters are compile-time
      constants, so the interpreter, the elastic simulation and every
      flow stage see a finite workload;
    - {b scope discipline}: every declaration gets a fresh name and is
      only used inside the declaring block, so the interpreter's flat
      store and the compiler's lexical environments agree. *)

type cfg = {
  max_constructs : int;  (** top-level loop/if constructs (default 2) *)
  max_depth : int;       (** loop/if nesting depth (default 2) *)
  max_expr_depth : int;  (** expression tree depth (default 3) *)
  max_body_stmts : int;  (** statements per block (default 2) *)
  max_trip : int;        (** loop trip count ceiling (default 6) *)
  max_arrays : int;      (** array parameters (default 2, sizes 4/8/16) *)
  allow_while : bool;
  allow_break : bool;    (** conditional break/continue inside loops *)
}

val default_cfg : cfg

type program = {
  seed : int;
  func : Ast.func;
  source : string;                    (** pretty-printed, re-parseable *)
  args : (string * int) list;         (** scalar-parameter bindings *)
  memories : (string * int array) list;  (** seeded input data *)
  features : (string * int) list;     (** sorted coverage histogram *)
}

val generate : ?cfg:cfg -> int -> program

val fresh_memories : program -> (string * int array) list
(** A deep copy of [memories] — the interpreter and the simulator both
    mutate stores in place, so every consumer needs its own arrays. *)

val feature_keys : string list
(** Every histogram key {!generate} can emit (fixed order), so reports
    can print zero rows for uncovered features. *)
