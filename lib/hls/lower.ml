(* Whether a statement list uses break/continue at ITS level (an inner
   loop captures its own). *)
let rec uses_bc stmts = List.exists uses_bc_stmt stmts

and uses_bc_stmt = function
  | Ast.Break | Ast.Continue -> true
  | Ast.If (_, t, f) -> uses_bc t || uses_bc f
  | Ast.While _ | Ast.For _ -> false
  | Ast.Decl _ | Ast.Assign _ | Ast.Store _ | Ast.Return _ -> false

(* Fresh-name state is domain-local: kernels are compiled concurrently by
   the experiment pool, and a shared counter would hand two statements in
   one function the same name (or make names depend on scheduling). Each
   [desugar] resets its domain's counter, so a given function lowers to
   the same names no matter which domain compiles it. *)
let counter = Domain.DLS.new_key (fun () -> ref 0)

let fresh prefix =
  let c = Domain.DLS.get counter in
  incr c;
  Printf.sprintf "_%s%d" prefix !c

let not_flag v = Ast.Not (Ast.Var v)

let guard brk skp rest =
  if rest = [] then []
  else [ Ast.If (Ast.Binop (Ast.And, not_flag brk, not_flag skp), rest, []) ]

(* Rewrite one loop body: break -> brk := 1, continue -> skp := 1, with
   everything after a potential flag assignment guarded. *)
let rec rewrite_body ~brk ~skp stmts =
  match stmts with
  | [] -> []
  | s :: rest -> (
    match s with
    | Ast.Break -> [ Ast.Assign (brk, Ast.Int 1) ] (* rest is unreachable *)
    | Ast.Continue -> [ Ast.Assign (skp, Ast.Int 1) ]
    | Ast.If (c, t, f) when uses_bc t || uses_bc f ->
      Ast.If (c, rewrite_body ~brk ~skp t, rewrite_body ~brk ~skp f)
      :: guard brk skp (rewrite_body ~brk ~skp rest)
    | _ -> desugar_stmt s @ rewrite_body ~brk ~skp rest)

(* Desugar nested constructs; loops whose bodies use break/continue get
   the flag treatment.  A statement can expand to several. *)
and desugar_stmt s =
  match s with
  | Ast.While (c, body) when uses_bc body ->
    let brk = fresh "brk" and skp = fresh "skp" in
    let body' = Ast.Decl (skp, Ast.Int 0) :: rewrite_body ~brk ~skp body in
    [
      Ast.Decl (brk, Ast.Int 0);
      Ast.While (Ast.Binop (Ast.And, not_flag brk, c), body');
    ]
  | Ast.For (init, c, step, body) when uses_bc body ->
    let brk = fresh "brk" and skp = fresh "skp" in
    let body' =
      (Ast.Decl (skp, Ast.Int 0) :: rewrite_body ~brk ~skp body)
      @ [ Ast.If (not_flag brk, desugar_stmt step, []) ]
    in
    Ast.Decl (brk, Ast.Int 0)
    :: (desugar_stmt init
       @ [ Ast.While (Ast.Binop (Ast.And, not_flag brk, c), body') ])
  | Ast.While (c, body) -> [ Ast.While (c, desugar_block body) ]
  | Ast.For (init, c, step, body) -> (
    match (desugar_stmt init, desugar_stmt step) with
    | [ init' ], [ step' ] -> [ Ast.For (init', c, step', desugar_block body) ]
    | _ -> invalid_arg "Lower.desugar: for header cannot expand")
  | Ast.If (c, t, f) -> [ Ast.If (c, desugar_block t, desugar_block f) ]
  | Ast.Break | Ast.Continue ->
    invalid_arg "Lower.desugar: break/continue outside any loop"
  | Ast.Decl _ | Ast.Assign _ | Ast.Store _ | Ast.Return _ -> [ s ]

and desugar_block stmts = List.concat_map desugar_stmt stmts

let desugar (f : Ast.func) =
  Domain.DLS.get counter := 0;
  { f with Ast.body = desugar_block f.Ast.body }
