module G = Dataflow.Graph
module K = Dataflow.Unit_kind
module Ops = Dataflow.Ops

type value = { u : G.unit_id; port : int }

type builder = {
  g : G.t;
  mutable pending : (value * (G.unit_id * int)) list;
  mutable bb : int;
  width : int;
  mutable back_ports : (G.unit_id * int) list;  (* loop-header back inputs *)
}

let fresh_bb b =
  b.bb <- b.bb + 1;
  b.bb

let unit_ b ?label ?width kind =
  let width = Option.value width ~default:b.width in
  G.add_unit b.g ?label ~bb:b.bb ~width kind

let use b v ~dst ~port = b.pending <- (v, (dst, port)) :: b.pending

let value_width b v = (G.unit_node b.g v.u).G.width

(* environment: sorted assoc list variable -> value *)
let env_set env name v = (name, v) :: List.remove_assoc name env

let env_get env name =
  match List.assoc_opt name env with
  | Some v -> v
  | None -> invalid_arg ("Compile: unbound variable " ^ name)

let ctrl_key = "@ctrl"
let mem_key a = "@mem_" ^ a

(* ------------------------------------------------------------------ *)
(* liveness / memory-access analysis over the AST *)

module Sset = Set.Make (String)

type usage = {
  scalars : Sset.t;        (* scalar variables read or assigned *)
  loaded : Sset.t;         (* arrays loaded *)
  stored : Sset.t;         (* arrays stored *)
}

let usage_empty = { scalars = Sset.empty; loaded = Sset.empty; stored = Sset.empty }

let usage_union a b =
  {
    scalars = Sset.union a.scalars b.scalars;
    loaded = Sset.union a.loaded b.loaded;
    stored = Sset.union a.stored b.stored;
  }

let rec expr_usage e =
  match e with
  | Ast.Int _ -> usage_empty
  | Ast.Var x -> { usage_empty with scalars = Sset.singleton x }
  | Ast.Load (a, idx) -> usage_union { usage_empty with loaded = Sset.singleton a } (expr_usage idx)
  | Ast.Not e -> expr_usage e
  | Ast.Binop (_, x, y) -> usage_union (expr_usage x) (expr_usage y)
  | Ast.Ternary (c, a, b) ->
    usage_union (expr_usage c) (usage_union (expr_usage a) (expr_usage b))

let rec stmt_usage s =
  match s with
  | Ast.Decl (x, e) | Ast.Assign (x, e) ->
    usage_union { usage_empty with scalars = Sset.singleton x } (expr_usage e)
  | Ast.Store (a, idx, e) ->
    usage_union
      { usage_empty with stored = Sset.singleton a }
      (usage_union (expr_usage idx) (expr_usage e))
  | Ast.If (c, t, f) -> usage_union (expr_usage c) (usage_union (stmts_usage t) (stmts_usage f))
  | Ast.While (c, body) -> usage_union (expr_usage c) (stmts_usage body)
  | Ast.For (i, c, st, body) ->
    usage_union (stmt_usage i)
      (usage_union (expr_usage c) (usage_union (stmt_usage st) (stmts_usage body)))
  | Ast.Return e -> expr_usage e
  | Ast.Break | Ast.Continue -> usage_empty

and stmts_usage stmts = List.fold_left (fun acc s -> usage_union acc (stmt_usage s)) usage_empty stmts

(* ------------------------------------------------------------------ *)
(* expressions *)

let rec compile_expr b env ~(scope : Sset.t) e =
  match e with
  | Ast.Int n ->
    let c = unit_ b ~label:(Printf.sprintf "const%d" n) (K.Const n) in
    use b (env_get env ctrl_key) ~dst:c ~port:0;
    { u = c; port = 0 }
  | Ast.Var x -> env_get env x
  | Ast.Not e -> compile_expr b env ~scope (Ast.Binop (Ast.Eq, e, Ast.Int 0))
  | Ast.Ternary (c, x, y) ->
    (* if-conversion: both arms are computed and a select unit picks —
       the speculative form HLS uses for small conditionals *)
    let vc = compile_expr b env ~scope c in
    let vx = compile_expr b env ~scope x in
    let vy = compile_expr b env ~scope y in
    let width = max (value_width b vx) (value_width b vy) in
    let s = unit_ b ~width (K.operator Ops.Select) in
    use b vc ~dst:s ~port:0;
    use b vx ~dst:s ~port:1;
    use b vy ~dst:s ~port:2;
    { u = s; port = 0 }
  | Ast.Load (a, idx) ->
    let addr = compile_expr b env ~scope idx in
    let addr =
      (* gate the address on the array's memory token, but only when the
         array is stored within the current loop scope — ordering against
         stores of earlier loops is established once at loop entry *)
      if Sset.mem a scope then begin
        let j = unit_ b ~label:("guard_" ^ a) ~width:(value_width b addr) (K.Join 2) in
        use b addr ~dst:j ~port:0;
        use b (env_get env (mem_key a)) ~dst:j ~port:1;
        { u = j; port = 0 }
      end
      else addr
    in
    let ld = unit_ b ~label:("load_" ^ a) (K.Load { mem = a; latency = 2 }) in
    use b addr ~dst:ld ~port:0;
    { u = ld; port = 0 }
  | Ast.Binop (op, x, y) ->
    let vx = compile_expr b env ~scope x in
    let vy = compile_expr b env ~scope y in
    let kop =
      match op with
      | Ast.Add -> Ops.Add
      | Ast.Sub -> Ops.Sub
      | Ast.Mul -> Ops.Mul
      | Ast.Shl -> Ops.Shl
      | Ast.Lshr -> Ops.Lshr
      | Ast.And -> Ops.And_
      | Ast.Or -> Ops.Or_
      | Ast.Xor -> Ops.Xor_
      | Ast.Eq -> Ops.Icmp Ops.Eq
      | Ast.Ne -> Ops.Icmp Ops.Ne
      | Ast.Lt -> Ops.Icmp Ops.Lt
      | Ast.Le -> Ops.Icmp Ops.Le
      | Ast.Gt -> Ops.Icmp Ops.Gt
      | Ast.Ge -> Ops.Icmp Ops.Ge
    in
    let width =
      match op with
      | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 1
      | _ ->
        (* arithmetic results are ints: promote to the datapath width so
           narrow operands can't truncate (e.g. a 1-bit subtractor computes
           0 - 1 = 1).  This blanket promotion is the sound fallback; when
           the flow runs with narrowing enabled, Absint.Narrow shrinks each
           unit back to its proven value envelope, so there is no need to
           be clever about widths here. *)
        max b.width (max (value_width b vx) (value_width b vy))
    in
    let o = unit_ b ~width (K.operator kop) in
    use b vx ~dst:o ~port:0;
    use b vy ~dst:o ~port:1;
    { u = o; port = 0 }

(* ------------------------------------------------------------------ *)
(* control flow *)

(* Route the values named in [routed] through a branch steered by
   [condv]; other values bypass the construct untouched. *)
let branch_env b env condv routed =
  List.fold_left
    (fun (tenv, fenv) (name, v) ->
      if not (Sset.mem name routed) then (tenv, fenv)
      else begin
        let br = unit_ b ~label:("br_" ^ name) ~width:(value_width b v) K.Branch in
        use b v ~dst:br ~port:0;
        use b condv ~dst:br ~port:1;
        (env_set tenv name { u = br; port = 0 }, env_set fenv name { u = br; port = 1 })
      end)
    (env, env) env

(* Values a construct must route: the control token, every scalar it
   mentions, and the memory tokens of every array it accesses (stores
   consume and regenerate them; loads consume them via guards or via a
   nested loop's entry synchronisation). *)
let routed_names env (u : usage) =
  let names =
    List.filter_map
      (fun (name, _) ->
        if name = ctrl_key then Some name
        else if Sset.mem name u.scalars then Some name
        else
          match
            List.find_opt
              (fun a -> mem_key a = name)
              (Sset.elements (Sset.union u.stored u.loaded))
          with
          | Some _ -> Some name
          | None -> None)
      env
  in
  Sset.of_list names

let rec compile_stmt b env ~scope s =
  match s with
  | Ast.Decl (x, e) | Ast.Assign (x, e) -> env_set env x (compile_expr b env ~scope e)
  | Ast.Store (a, idx, e) ->
    let addr = compile_expr b env ~scope idx in
    let data = compile_expr b env ~scope e in
    let j = unit_ b ~label:("order_" ^ a) ~width:(value_width b addr) (K.Join 2) in
    use b addr ~dst:j ~port:0;
    use b (env_get env (mem_key a)) ~dst:j ~port:1;
    let st = unit_ b ~label:("store_" ^ a) ~width:0 (K.Store { mem = a }) in
    use b { u = j; port = 0 } ~dst:st ~port:0;
    use b data ~dst:st ~port:1;
    env_set env (mem_key a) { u = st; port = 0 }
  | Ast.If (c, then_, else_) ->
    let u = usage_union (expr_usage c) (usage_union (stmts_usage then_) (stmts_usage else_)) in
    let routed = routed_names env u in
    let condv = compile_expr b env ~scope c in
    let tenv0, fenv0 = branch_env b env condv routed in
    let _ = fresh_bb b in
    let tenv = compile_stmts b tenv0 ~scope then_ in
    let _ = fresh_bb b in
    let fenv = compile_stmts b fenv0 ~scope else_ in
    let _ = fresh_bb b in
    (* Reconverge Dynamatic-style: a control merge arbitrates the two
       control tokens and its index steers a mux per routed variable, so
       every variable follows the same serialised control decision.
       (Independent per-variable merges can reorder tokens of successive
       iterations and deadlock or corrupt the computation.) *)
    let cm = unit_ b ~label:"cmerge_if" ~width:1 (K.Control_merge 2) in
    use b (env_get tenv ctrl_key) ~dst:cm ~port:0;
    use b (env_get fenv ctrl_key) ~dst:cm ~port:1;
    let index = { u = cm; port = 1 } in
    List.fold_left
      (fun acc (name, _) ->
        if not (Sset.mem name routed) then acc
        else if name = ctrl_key then env_set acc name { u = cm; port = 0 }
        else begin
          let width = max (value_width b (env_get tenv name)) (value_width b (env_get fenv name)) in
          let m = unit_ b ~label:("phi_" ^ name) ~width (K.Mux 2) in
          use b index ~dst:m ~port:0;
          use b (env_get tenv name) ~dst:m ~port:1;
          use b (env_get fenv name) ~dst:m ~port:2;
          env_set acc name { u = m; port = 0 }
        end)
      env env
  | Ast.While (c, body) ->
    let u = usage_union (expr_usage c) (stmts_usage body) in
    let body_scope = u.stored in
    let routed = routed_names env u in
    (* Arrays loaded inside but not stored inside: their loads need no
       per-access guard; ordering against earlier stores is established
       once by joining their memory tokens into the entry control
       token. *)
    let entry_sync =
      Sset.elements (Sset.diff u.loaded body_scope)
      |> List.filter (fun a -> List.mem_assoc (mem_key a) env)
    in
    let entry_ctrl =
      match entry_sync with
      | [] -> env_get env ctrl_key
      | arrays ->
        let j =
          unit_ b ~label:"loop_entry_sync" ~width:0 (K.Join (1 + List.length arrays))
        in
        use b (env_get env ctrl_key) ~dst:j ~port:0;
        List.iteri (fun i a -> use b (env_get env (mem_key a)) ~dst:j ~port:(i + 1)) arrays;
        { u = j; port = 0 }
    in
    let _ = fresh_bb b in
    (* Loop header, Dynamatic-style: the control token goes through a
       control merge (port 0 = entry, port 1 = back edge); its index
       steers a mux per routed variable.  Control tokens are strictly
       serialised (the next entry token can only be produced after the
       previous traversal exited), so the index stream keeps every
       variable's entry/loop-carried tokens in iteration order. *)
    let cm = unit_ b ~label:"cmerge_loop" ~width:1 (K.Control_merge 2) in
    use b entry_ctrl ~dst:cm ~port:0;
    let index = { u = cm; port = 1 } in
    let muxes =
      List.filter_map
        (fun (name, v) ->
          if name = ctrl_key || not (Sset.mem name routed) then None
          else begin
            let m = unit_ b ~label:("loop_" ^ name) ~width:(value_width b v) (K.Mux 2) in
            use b index ~dst:m ~port:0;
            use b v ~dst:m ~port:1;
            Some (name, m)
          end)
        env
    in
    let header_env =
      List.fold_left
        (fun acc (name, m) -> env_set acc name { u = m; port = 0 })
        (env_set env ctrl_key { u = cm; port = 0 })
        muxes
    in
    let condv = compile_expr b header_env ~scope:body_scope c in
    let benv0, aenv = branch_env b header_env condv routed in
    let _ = fresh_bb b in
    let benv = compile_stmts b benv0 ~scope:body_scope body in
    (* back edges *)
    use b (env_get benv ctrl_key) ~dst:cm ~port:1;
    b.back_ports <- (cm, 1) :: b.back_ports;
    List.iter
      (fun (name, m) ->
        use b (env_get benv name) ~dst:m ~port:2;
        b.back_ports <- (m, 2) :: b.back_ports)
      muxes;
    let _ = fresh_bb b in
    aenv
  | Ast.For (init, c, step, body) ->
    let env = compile_stmt b env ~scope init in
    compile_stmt b env ~scope (Ast.While (c, body @ [ step ]))
  | Ast.Return e ->
    let v = compile_expr b env ~scope e in
    (* the exit fires once the value, the control token and all memory
       tokens are available (stores completed) *)
    let toks =
      env_get env ctrl_key
      :: List.filter_map
           (fun (name, tv) ->
             if String.length name > 5 && String.sub name 0 5 = "@mem_" then Some tv else None)
           env
    in
    let j = unit_ b ~label:"exit_join" ~width:(value_width b v) (K.Join (1 + List.length toks)) in
    use b v ~dst:j ~port:0;
    List.iteri (fun i t -> use b t ~dst:j ~port:(i + 1)) toks;
    let ex = unit_ b ~label:"exit" K.Exit in
    use b { u = j; port = 0 } ~dst:ex ~port:0;
    (* values still live after return are sunk by finalisation *)
    env_set env "@returned" { u = j; port = 0 }
  | Ast.Break | Ast.Continue ->
    (* removed by Lower.desugar before compilation *)
    invalid_arg "Compile: break/continue must be desugared first"

and compile_stmts b env ~scope stmts =
  List.fold_left (fun env s -> compile_stmt b env ~scope s) env stmts

(* ------------------------------------------------------------------ *)
(* fan-out resolution *)

let finalize b =
  (* group pending connections by producer *)
  let groups = Hashtbl.create 64 in
  List.iter
    (fun (v, c) ->
      let key = (v.u, v.port) in
      Hashtbl.replace groups key (c :: Option.value (Hashtbl.find_opt groups key) ~default:[]))
    (List.rev b.pending);
  Hashtbl.iter
    (fun (u, port) consumers ->
      match consumers with
      | [] -> ()
      | [ (du, dp) ] -> ignore (G.connect b.g ~src:u ~src_port:port ~dst:du ~dst_port:dp)
      | many ->
        let many = List.rev many in
        let n = List.length many in
        let node = G.unit_node b.g u in
        let f =
          G.add_unit b.g
            ~label:(Printf.sprintf "fanout_%s" node.G.label)
            ~bb:node.G.bb ~width:node.G.width (K.Fork n)
        in
        ignore (G.connect b.g ~src:u ~src_port:port ~dst:f ~dst_port:0);
        List.iteri
          (fun i (du, dp) -> ignore (G.connect b.g ~src:f ~src_port:i ~dst:du ~dst_port:dp))
          many)
    groups;
  (* sink every dangling output *)
  let dangling = ref [] in
  G.iter_units b.g (fun n ->
      Array.iteri
        (fun p c -> if c = None then dangling := (n.G.uid, p, n.G.bb, n.G.width) :: !dangling)
        n.G.outs);
  List.iter
    (fun (u, p, bb, width) ->
      let s = G.add_unit b.g ~bb ~width K.Sink in
      ignore (G.connect b.g ~src:u ~src_port:p ~dst:s ~dst_port:0))
    !dangling

let compile ?(width = 8) ?(args = []) (f : Ast.func) =
  let f = Lower.desugar f in
  let g = G.create f.Ast.fname in
  let b = { g; pending = []; bb = 0; width; back_ports = [] } in
  (* which arrays are stored to (they need memory-token ordering) *)
  let stores = Hashtbl.create 4 in
  let rec scan_stmt s =
    match s with
    | Ast.Store (a, _, _) -> Hashtbl.replace stores a ()
    | Ast.If (_, t, e) ->
      List.iter scan_stmt t;
      List.iter scan_stmt e
    | Ast.While (_, body) -> List.iter scan_stmt body
    | Ast.For (i, _, st, body) ->
      scan_stmt i;
      scan_stmt st;
      List.iter scan_stmt body
    | Ast.Decl _ | Ast.Assign _ | Ast.Return _ | Ast.Break | Ast.Continue -> ()
  in
  List.iter scan_stmt f.Ast.body;
  let entry = G.add_unit g ~bb:0 ~width:0 ~label:"entry" K.Entry in
  let env = ref [ (ctrl_key, { u = entry; port = 0 }) ] in
  (* the entry token fans out to scalar-parameter constants and memory
     tokens; the builder's fork pass resolves the fan-out *)
  List.iter
    (fun p ->
      match p with
      | Ast.Scalar name ->
        let v = Option.value (List.assoc_opt name args) ~default:0 in
        let c = G.add_unit g ~bb:0 ~width ~label:("arg_" ^ name) (K.Const v) in
        use b { u = entry; port = 0 } ~dst:c ~port:0;
        env := env_set !env name { u = c; port = 0 }
      | Ast.Array (name, size) ->
        G.add_memory g name size;
        if Hashtbl.mem stores name then begin
          (* initial memory token: a zero-width fork of the entry token *)
          let c = G.add_unit g ~bb:0 ~width:0 ~label:("memtok_" ^ name) (K.Const 0) in
          use b { u = entry; port = 0 } ~dst:c ~port:0;
          env := env_set !env (mem_key name) { u = c; port = 0 }
        end)
    f.Ast.params;
  let has_return = List.exists (function Ast.Return _ -> true | _ -> false) f.Ast.body in
  let body = if has_return then f.Ast.body else f.Ast.body @ [ Ast.Return (Ast.Int 0) ] in
  let top_scope = (stmts_usage body).stored in
  let _ = compile_stmts b !env ~scope:top_scope body in
  finalize b;
  (* mark the loop-carried channels so buffer seeding and CFDFC token
     marking target exactly the real back edges *)
  List.iter
    (fun (u, port) ->
      match G.in_channel g u port with
      | Some cid -> G.set_back_edge g cid
      | None -> ())
    b.back_ports;
  (match G.validate g with
  | Ok () -> ()
  | Error e -> failwith ("Compile: produced invalid graph: " ^ e));
  g
