module Rng = Support.Rng

type cfg = {
  max_constructs : int;
  max_depth : int;
  max_expr_depth : int;
  max_body_stmts : int;
  max_trip : int;
  max_arrays : int;
  allow_while : bool;
  allow_break : bool;
}

let default_cfg =
  {
    max_constructs = 2;
    max_depth = 2;
    max_expr_depth = 3;
    max_body_stmts = 2;
    max_trip = 6;
    max_arrays = 2;
    allow_while = true;
    allow_break = true;
  }

type program = {
  seed : int;
  func : Ast.func;
  source : string;
  args : (string * int) list;
  memories : (string * int array) list;
  features : (string * int) list;
}

let feature_keys =
  [
    "for"; "while"; "nested-loop"; "if"; "else"; "break"; "continue";
    "reduction"; "store"; "load"; "indirect"; "strided"; "reversed";
    "ternary"; "mul"; "shift"; "bitop"; "cmp"; "not"; "scalar-arg";
    "loop-free";
  ]

(* The generator's working state: one RNG stream (determinism), a fresh-
   name counter (scope discipline: no name is ever reused) and the
   feature histogram. *)
type ctx = {
  rng : Rng.t;
  feats : (string, int) Hashtbl.t;
  mutable fresh : int;
  cfg : cfg;
  mutable loops : int;  (* loops generated so far; capped at [max_loops] *)
}

let max_loops = 4

let feat ctx k =
  Hashtbl.replace ctx.feats k (1 + Option.value (Hashtbl.find_opt ctx.feats k) ~default:0)

let fresh ctx prefix =
  ctx.fresh <- ctx.fresh + 1;
  Printf.sprintf "%s%d" prefix ctx.fresh

(* Variables visible at the current point. [vars] may be assigned;
   [ro] (loop counters, scalar parameters) may only be read — assigning
   a counter could make a loop diverge. *)
type env = { vars : string list; ro : string list; arrays : (string * int) list }

type loop_kind = Not_in_loop | In_for | In_while

let readable env = env.vars @ env.ro

let pick ctx xs = List.nth xs (Rng.int ctx.rng (List.length xs))

(* ---- expressions ---- *)

let gen_const ctx =
  (* small constants dominate (loop bounds, comparisons against data
     ranges); the occasional full-width value exercises wrap-around *)
  Ast.Int (if Rng.int ctx.rng 4 = 0 then Rng.int ctx.rng 256 else Rng.int ctx.rng 10)

(* An index expression for [size]-element array access. All indices are
   legal (the interpreter and the simulator clamp identically), so the
   patterns here are about circuit diversity, not safety. *)
let rec gen_index ctx env size =
  let counters = env.ro in
  match if counters = [] then 3 + Rng.int ctx.rng 2 else Rng.int ctx.rng 6 with
  | 0 -> Ast.Var (pick ctx counters)
  | 1 -> Ast.Binop (Ast.Add, Ast.Var (pick ctx counters), Ast.Int (Rng.int ctx.rng size))
  | 2 ->
    feat ctx "strided";
    Ast.Binop (Ast.Mul, Ast.Int (1 + Rng.int ctx.rng 3), Ast.Var (pick ctx counters))
  | 3 -> Ast.Int (Rng.int ctx.rng size)
  | 4 ->
    (* indirect access: index loaded from another (or the same) array *)
    feat ctx "indirect";
    feat ctx "load";
    let a, sz = pick ctx env.arrays in
    Ast.Load (a, gen_index_simple ctx env sz)
  | _ ->
    feat ctx "reversed";
    if counters = [] then Ast.Int (Rng.int ctx.rng size)
    else Ast.Binop (Ast.Sub, Ast.Int (size - 1), Ast.Var (pick ctx counters))

and gen_index_simple ctx env size =
  match env.ro with
  | [] -> Ast.Int (Rng.int ctx.rng size)
  | counters ->
    if Rng.bool ctx.rng then Ast.Var (pick ctx counters) else Ast.Int (Rng.int ctx.rng size)

let gen_load ctx env =
  feat ctx "load";
  let a, size = pick ctx env.arrays in
  Ast.Load (a, gen_index ctx env size)

let gen_leaf ctx env =
  let vars = readable env in
  match Rng.int ctx.rng 4 with
  | 0 -> gen_load ctx env
  | (1 | 2) when vars <> [] -> Ast.Var (pick ctx vars)
  | _ -> gen_const ctx

let rec gen_expr ctx env depth =
  if depth <= 0 then gen_leaf ctx env
  else
    match Rng.int ctx.rng 12 with
    | 0 | 1 -> gen_leaf ctx env
    | 2 | 3 | 4 -> Ast.Binop (Ast.Add, gen_expr ctx env (depth - 1), gen_expr ctx env (depth - 1))
    | 5 -> Ast.Binop (Ast.Sub, gen_expr ctx env (depth - 1), gen_expr ctx env (depth - 1))
    | 6 ->
      feat ctx "mul";
      Ast.Binop (Ast.Mul, gen_expr ctx env (depth - 1), gen_leaf ctx env)
    | 7 ->
      feat ctx "shift";
      (* shift amounts are literal and < width: the interpreter, the
         simulator and the barrel shifter agree on that range only *)
      let op = if Rng.bool ctx.rng then Ast.Shl else Ast.Lshr in
      Ast.Binop (op, gen_expr ctx env (depth - 1), Ast.Int (Rng.int ctx.rng 4))
    | 8 ->
      feat ctx "bitop";
      let op = pick ctx [ Ast.And; Ast.Or; Ast.Xor ] in
      Ast.Binop (op, gen_expr ctx env (depth - 1), gen_expr ctx env (depth - 1))
    | 9 ->
      feat ctx "ternary";
      Ast.Ternary (gen_cond ctx env, gen_expr ctx env (depth - 1), gen_expr ctx env (depth - 1))
    | 10 ->
      feat ctx "not";
      Ast.Not (gen_leaf ctx env)
    | _ ->
      feat ctx "cmp";
      Ast.Binop
        ( pick ctx [ Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ],
          gen_leaf ctx env, gen_leaf ctx env )

and gen_cond ctx env =
  feat ctx "cmp";
  let op = pick ctx [ Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Eq; Ast.Ne ] in
  Ast.Binop (op, gen_leaf ctx env, gen_const ctx)

(* ---- statements ----

   Every generator returns a statement {e list} (a while loop is a
   counter declaration plus the loop) and the extended environment, so
   nesting composes uniformly. *)

let rec gen_block ctx env ~depth ~in_loop =
  let n = 1 + Rng.int ctx.rng ctx.cfg.max_body_stmts in
  let rec go env k acc =
    if k = 0 then List.concat (List.rev acc)
    else begin
      let env', ss = gen_stmt ctx env ~depth ~in_loop in
      go env' (k - 1) (ss :: acc)
    end
  in
  go env n []

and gen_stmt ctx env ~depth ~in_loop =
  match Rng.int ctx.rng 10 with
  | 0 | 1 when env.vars <> [] ->
    (* reduction into an accumulator *)
    feat ctx "reduction";
    let acc = pick ctx env.vars in
    let op = if Rng.int ctx.rng 4 = 0 then Ast.Mul else Ast.Add in
    if op = Ast.Mul then feat ctx "mul";
    ( env,
      [
        Ast.Assign
          (acc, Ast.Binop (op, Ast.Var acc, gen_expr ctx env (ctx.cfg.max_expr_depth - 1)));
      ] )
  | 2 ->
    feat ctx "store";
    let a, size = pick ctx env.arrays in
    (env, [ Ast.Store (a, gen_index ctx env size, gen_expr ctx env (ctx.cfg.max_expr_depth - 1)) ])
  | 3 ->
    (* declare a fresh temporary; visible to the rest of this block *)
    let v = fresh ctx "t" in
    let e = gen_expr ctx env ctx.cfg.max_expr_depth in
    ({ env with vars = v :: env.vars }, [ Ast.Decl (v, e) ])
  | 4 | 5 when depth > 0 ->
    feat ctx "if";
    let then_ = gen_block ctx env ~depth:(depth - 1) ~in_loop in
    let else_ =
      if Rng.bool ctx.rng then begin
        feat ctx "else";
        gen_block ctx env ~depth:(depth - 1) ~in_loop
      end
      else []
    in
    (env, [ Ast.If (gen_cond ctx env, then_, else_) ])
  | 6 when depth > 0 && ctx.loops < max_loops ->
    if in_loop <> Not_in_loop then feat ctx "nested-loop";
    (env, gen_loop ctx env ~depth)
  | 7 when in_loop <> Not_in_loop && ctx.cfg.allow_break && Rng.int ctx.rng 3 = 0 ->
    if in_loop = In_for && Rng.bool ctx.rng then begin
      (* continue only under [for]: its step always runs, so the loop
         still terminates; under the generated while shape it would
         skip the counter decrement *)
      feat ctx "continue";
      (env, [ Ast.If (gen_cond ctx env, [ Ast.Continue ], []) ])
    end
    else begin
      feat ctx "break";
      (env, [ Ast.If (gen_cond ctx env, [ Ast.Break ], []) ])
    end
  | _ when env.vars <> [] ->
    (env, [ Ast.Assign (pick ctx env.vars, gen_expr ctx env ctx.cfg.max_expr_depth) ])
  | _ ->
    let v = fresh ctx "t" in
    ({ env with vars = v :: env.vars }, [ Ast.Decl (v, gen_expr ctx env ctx.cfg.max_expr_depth) ])

and gen_loop ctx env ~depth =
  ctx.loops <- ctx.loops + 1;
  if ctx.cfg.allow_while && Rng.int ctx.rng 4 = 0 then gen_while ctx env ~depth
  else gen_for ctx env ~depth

and gen_for ctx env ~depth =
  feat ctx "for";
  let i = fresh ctx "i" in
  let lo = Rng.int ctx.rng 2 in
  let hi = lo + 2 + Rng.int ctx.rng (max 1 (ctx.cfg.max_trip - 1)) in
  let step = if Rng.int ctx.rng 4 = 0 then 2 else 1 in
  let body = gen_block ctx { env with ro = i :: env.ro } ~depth:(depth - 1) ~in_loop:In_for in
  [
    Ast.For
      ( Ast.Decl (i, Ast.Int lo),
        Ast.Binop (Ast.Lt, Ast.Var i, Ast.Int hi),
        Ast.Assign (i, Ast.Binop (Ast.Add, Ast.Var i, Ast.Int step)),
        body );
  ]

and gen_while ctx env ~depth =
  feat ctx "while";
  let w = fresh ctx "w" in
  let trips = 2 + Rng.int ctx.rng (max 1 (ctx.cfg.max_trip - 1)) in
  (* the counter is read-only inside the body; the single decrement is
     appended last, so the loop always terminates (break only hastens
     that, and continue is never generated under a while) *)
  let body = gen_block ctx { env with ro = w :: env.ro } ~depth:(depth - 1) ~in_loop:In_while in
  [
    Ast.Decl (w, Ast.Int trips);
    Ast.While
      ( Ast.Binop (Ast.Gt, Ast.Var w, Ast.Int 0),
        body @ [ Ast.Assign (w, Ast.Binop (Ast.Sub, Ast.Var w, Ast.Int 1)) ] );
  ]

(* ---- whole programs ---- *)

let array_sizes = [| 4; 8; 16 |]

let generate ?(cfg = default_cfg) seed =
  let ctx =
    { rng = Rng.create (0x5eed + seed); feats = Hashtbl.create 16; fresh = 0; cfg; loops = 0 }
  in
  (* parameters: 1..max_arrays arrays, occasionally one scalar *)
  let n_arrays = 1 + Rng.int ctx.rng (max 1 cfg.max_arrays) in
  let arrays =
    List.init n_arrays (fun k ->
        let name = String.make 1 (Char.chr (Char.code 'a' + k)) in
        (name, array_sizes.(Rng.int ctx.rng (Array.length array_sizes))))
  in
  let scalar =
    if Rng.int ctx.rng 4 = 0 then begin
      feat ctx "scalar-arg";
      Some ("n", 1 + Rng.int ctx.rng 15)
    end
    else None
  in
  let params =
    List.map (fun (a, sz) -> Ast.Array (a, sz)) arrays
    @ (match scalar with Some (n, _) -> [ Ast.Scalar n ] | None -> [])
  in
  (* accumulators: the reduction targets every block can assign *)
  let n_accs = 1 + Rng.int ctx.rng 2 in
  let accs = List.init n_accs (fun _ -> fresh ctx "s") in
  let acc_decls = List.map (fun s -> Ast.Decl (s, gen_const ctx)) accs in
  let env =
    { vars = accs; ro = (match scalar with Some (n, _) -> [ n ] | None -> []); arrays }
  in
  (* body: 1..max_constructs loop constructs (10% of programs are
     loop-free: straight-line + ifs only, the acyclic-circuit case) *)
  let loop_free = Rng.int ctx.rng 10 = 0 in
  let n_constructs = 1 + Rng.int ctx.rng (max 1 cfg.max_constructs) in
  let body =
    if loop_free then begin
      feat ctx "loop-free";
      ctx.loops <- max_loops;  (* no loops even from nested statement draws *)
      List.concat
        (List.init n_constructs (fun _ -> snd (gen_stmt ctx env ~depth:1 ~in_loop:Not_in_loop)))
    end
    else List.concat (List.init n_constructs (fun _ -> gen_loop ctx env ~depth:cfg.max_depth))
  in
  (* return: fold the accumulators together, sometimes with a load *)
  let ret =
    let base =
      List.fold_left
        (fun e s -> Ast.Binop (Ast.Add, e, Ast.Var s))
        (Ast.Var (List.hd accs)) (List.tl accs)
    in
    if Rng.int ctx.rng 3 = 0 then Ast.Binop (Ast.Add, base, gen_load ctx { env with ro = [] })
    else base
  in
  let func =
    {
      Ast.fname = Printf.sprintf "fz%d" seed;
      params;
      body = acc_decls @ body @ [ Ast.Return ret ];
    }
  in
  let source = Format.asprintf "%a" Ast.pp_func func in
  let memories =
    List.map (fun (a, sz) -> (a, Array.init sz (fun _ -> Rng.int ctx.rng 256))) arrays
  in
  let args = match scalar with Some (n, v) -> [ (n, v) ] | None -> [] in
  let features =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) ctx.feats []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { seed; func; source; args; memories; features }

let fresh_memories p = List.map (fun (n, a) -> (n, Array.copy a)) p.memories
