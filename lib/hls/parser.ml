exception Error of string * Lexer.pos

type state = { mutable toks : (Lexer.token * Lexer.pos) list }

let peek st = match st.toks with [] -> Lexer.EOF | (t, _) :: _ -> t

let pos st = match st.toks with [] -> Lexer.dummy_pos | (_, p) :: _ -> p

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let fail st msg = raise (Error (msg, pos st))

let expect st t =
  if peek st = t then advance st
  else
    fail st
      (Format.asprintf "expected %a but found %a" Lexer.pp_token t Lexer.pp_token (peek st))

let ident st =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    s
  | t -> fail st (Format.asprintf "expected identifier, found %a" Lexer.pp_token t)

(* ---- expressions, precedence climbing ---- *)

let rec primary st =
  match peek st with
  | Lexer.NUM n ->
    advance st;
    Ast.Int n
  | Lexer.LPAREN ->
    advance st;
    let e = expr st in
    expect st Lexer.RPAREN;
    e
  | Lexer.MINUS ->
    advance st;
    Ast.Binop (Ast.Sub, Ast.Int 0, primary st)
  | Lexer.BANG ->
    advance st;
    Ast.Not (primary st)
  | Lexer.IDENT name -> (
    advance st;
    match peek st with
    | Lexer.LBRACKET ->
      advance st;
      let idx = expr st in
      expect st Lexer.RBRACKET;
      Ast.Load (name, idx)
    | _ -> Ast.Var name)
  | t -> fail st (Format.asprintf "unexpected token %a in expression" Lexer.pp_token t)

and mul_expr st =
  let rec loop acc =
    match peek st with
    | Lexer.STAR ->
      advance st;
      loop (Ast.Binop (Ast.Mul, acc, primary st))
    | _ -> acc
  in
  loop (primary st)

and add_expr st =
  let rec loop acc =
    match peek st with
    | Lexer.PLUS ->
      advance st;
      loop (Ast.Binop (Ast.Add, acc, mul_expr st))
    | Lexer.MINUS ->
      advance st;
      loop (Ast.Binop (Ast.Sub, acc, mul_expr st))
    | _ -> acc
  in
  loop (mul_expr st)

and shift_expr st =
  let rec loop acc =
    match peek st with
    | Lexer.SHL ->
      advance st;
      loop (Ast.Binop (Ast.Shl, acc, add_expr st))
    | Lexer.SHR ->
      advance st;
      loop (Ast.Binop (Ast.Lshr, acc, add_expr st))
    | _ -> acc
  in
  loop (add_expr st)

and cmp_expr st =
  let lhs = shift_expr st in
  let mk op =
    advance st;
    Ast.Binop (op, lhs, shift_expr st)
  in
  match peek st with
  | Lexer.EQ -> mk Ast.Eq
  | Lexer.NE -> mk Ast.Ne
  | Lexer.LT -> mk Ast.Lt
  | Lexer.LE -> mk Ast.Le
  | Lexer.GT -> mk Ast.Gt
  | Lexer.GE -> mk Ast.Ge
  | _ -> lhs

and bit_expr st =
  let rec loop acc =
    match peek st with
    | Lexer.AMP ->
      advance st;
      loop (Ast.Binop (Ast.And, acc, cmp_expr st))
    | Lexer.PIPE ->
      advance st;
      loop (Ast.Binop (Ast.Or, acc, cmp_expr st))
    | Lexer.CARET ->
      advance st;
      loop (Ast.Binop (Ast.Xor, acc, cmp_expr st))
    | _ -> acc
  in
  loop (cmp_expr st)

and expr st =
  let c = bit_expr st in
  match peek st with
  | Lexer.QUESTION ->
    advance st;
    let a = expr st in
    expect st Lexer.COLON;
    let b = expr st in
    Ast.Ternary (c, a, b)
  | _ -> c

(* ---- statements ---- *)

let rec simple_stmt st =
  match peek st with
  | Lexer.INT_KW ->
    advance st;
    let name = ident st in
    expect st Lexer.ASSIGN;
    let e = expr st in
    Ast.Decl (name, e)
  | Lexer.IDENT name -> (
    advance st;
    match peek st with
    | Lexer.LBRACKET ->
      advance st;
      let idx = expr st in
      expect st Lexer.RBRACKET;
      expect st Lexer.ASSIGN;
      let e = expr st in
      Ast.Store (name, idx, e)
    | Lexer.ASSIGN ->
      advance st;
      let e = expr st in
      Ast.Assign (name, e)
    | t -> fail st (Format.asprintf "unexpected %a after identifier" Lexer.pp_token t))
  | t -> fail st (Format.asprintf "unexpected %a at statement start" Lexer.pp_token t)

and block st =
  expect st Lexer.LBRACE;
  let rec loop acc =
    if peek st = Lexer.RBRACE then begin
      advance st;
      List.rev acc
    end
    else loop (stmt st :: acc)
  in
  loop []

and stmt st =
  match peek st with
  | Lexer.IF ->
    advance st;
    expect st Lexer.LPAREN;
    let cond = expr st in
    expect st Lexer.RPAREN;
    let then_ = block st in
    let else_ =
      if peek st = Lexer.ELSE then begin
        advance st;
        block st
      end
      else []
    in
    Ast.If (cond, then_, else_)
  | Lexer.WHILE ->
    advance st;
    expect st Lexer.LPAREN;
    let cond = expr st in
    expect st Lexer.RPAREN;
    Ast.While (cond, block st)
  | Lexer.FOR ->
    advance st;
    expect st Lexer.LPAREN;
    let init = simple_stmt st in
    expect st Lexer.SEMI;
    let cond = expr st in
    expect st Lexer.SEMI;
    let step = simple_stmt st in
    expect st Lexer.RPAREN;
    Ast.For (init, cond, step, block st)
  | Lexer.RETURN ->
    advance st;
    let e = expr st in
    expect st Lexer.SEMI;
    Ast.Return e
  | Lexer.BREAK ->
    advance st;
    expect st Lexer.SEMI;
    Ast.Break
  | Lexer.CONTINUE ->
    advance st;
    expect st Lexer.SEMI;
    Ast.Continue
  | _ ->
    let s = simple_stmt st in
    expect st Lexer.SEMI;
    s

let parse src =
  let st = { toks = Lexer.tokenize_pos src } in
  expect st Lexer.INT_KW;
  let fname = ident st in
  expect st Lexer.LPAREN;
  let rec params acc =
    match peek st with
    | Lexer.RPAREN ->
      advance st;
      List.rev acc
    | Lexer.COMMA ->
      advance st;
      params acc
    | Lexer.INT_KW -> (
      advance st;
      let name = ident st in
      match peek st with
      | Lexer.LBRACKET ->
        advance st;
        let size = match peek st with
          | Lexer.NUM n ->
            advance st;
            n
          | t -> fail st (Format.asprintf "expected array size, found %a" Lexer.pp_token t)
        in
        expect st Lexer.RBRACKET;
        params (Ast.Array (name, size) :: acc)
      | _ -> params (Ast.Scalar name :: acc))
    | t -> fail st (Format.asprintf "unexpected %a in parameter list" Lexer.pp_token t)
  in
  let params = params [] in
  let body = block st in
  (match peek st with
  | Lexer.EOF -> ()
  | t -> fail st (Format.asprintf "trailing input: %a" Lexer.pp_token t));
  { Ast.fname; params; body }

let error_message = function
  | Error (msg, p) | Lexer.Error (msg, p) ->
    Some (Format.asprintf "%a: %s" Lexer.pp_pos p msg)
  | _ -> None
