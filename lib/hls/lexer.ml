type token =
  | INT_KW
  | IF | ELSE | FOR | WHILE | RETURN | BREAK | CONTINUE
  | IDENT of string
  | NUM of int
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | QUESTION | COLON
  | ASSIGN
  | PLUS | MINUS | STAR | SHL | SHR | AMP | PIPE | CARET | BANG
  | EQ | NE | LT | LE | GT | GE
  | EOF

type pos = { line : int; col : int; offset : int }

let dummy_pos = { line = 0; col = 0; offset = 0 }

exception Error of string * pos

let pp_pos fmt p = Format.fprintf fmt "line %d, column %d" p.line p.col

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let keyword = function
  | "int" -> Some INT_KW
  | "if" -> Some IF
  | "else" -> Some ELSE
  | "for" -> Some FOR
  | "while" -> Some WHILE
  | "return" -> Some RETURN
  | "break" -> Some BREAK
  | "continue" -> Some CONTINUE
  | _ -> None

let tokenize_pos src =
  let n = String.length src in
  let tokens = ref [] in
  let i = ref 0 in
  let line = ref 1 in
  (* byte offset where the current line starts: column = offset - bol + 1 *)
  let bol = ref 0 in
  let here () = { line = !line; col = !i - !bol + 1; offset = !i } in
  let newline () =
    incr line;
    bol := !i
  in
  let emit_at p t = tokens := (t, p) :: !tokens in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr i;
      newline ()
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      let start = here () in
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '*' && !i + 1 < n && src.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else begin
          if src.[!i] = '\n' then begin
            incr i;
            newline ()
          end
          else incr i
        end
      done;
      if not !closed then raise (Error ("unterminated comment", start))
    end
    else if is_digit c then begin
      let p = here () in
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      emit_at p (NUM (int_of_string (String.sub src start (!i - start))))
    end
    else if is_ident_start c then begin
      let p = here () in
      let start = !i in
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      emit_at p (match keyword word with Some t -> t | None -> IDENT word)
    end
    else begin
      let p = here () in
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      let adv2 t =
        emit_at p t;
        i := !i + 2
      in
      let adv1 t =
        emit_at p t;
        incr i
      in
      match two with
      | "==" -> adv2 EQ
      | "!=" -> adv2 NE
      | "<=" -> adv2 LE
      | ">=" -> adv2 GE
      | "<<" -> adv2 SHL
      | ">>" -> adv2 SHR
      | _ -> (
        match c with
        | '(' -> adv1 LPAREN
        | ')' -> adv1 RPAREN
        | '{' -> adv1 LBRACE
        | '}' -> adv1 RBRACE
        | '[' -> adv1 LBRACKET
        | ']' -> adv1 RBRACKET
        | ';' -> adv1 SEMI
        | ',' -> adv1 COMMA
        | '?' -> adv1 QUESTION
        | ':' -> adv1 COLON
        | '=' -> adv1 ASSIGN
        | '+' -> adv1 PLUS
        | '-' -> adv1 MINUS
        | '*' -> adv1 STAR
        | '&' -> adv1 AMP
        | '|' -> adv1 PIPE
        | '^' -> adv1 CARET
        | '!' -> adv1 BANG
        | '<' -> adv1 LT
        | '>' -> adv1 GT
        | _ -> raise (Error (Printf.sprintf "unexpected character %C" c, p)))
    end
  done;
  List.rev ((EOF, here ()) :: !tokens)

let tokenize src = List.map fst (tokenize_pos src)

let pp_token fmt t =
  let s =
    match t with
    | INT_KW -> "int"
    | IF -> "if" | ELSE -> "else" | FOR -> "for" | WHILE -> "while" | RETURN -> "return"
    | BREAK -> "break" | CONTINUE -> "continue"
    | IDENT s -> s
    | NUM n -> string_of_int n
    | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
    | LBRACKET -> "[" | RBRACKET -> "]"
    | SEMI -> ";" | COMMA -> ","
    | QUESTION -> "?" | COLON -> ":"
    | ASSIGN -> "="
    | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SHL -> "<<" | SHR -> ">>"
    | AMP -> "&" | PIPE -> "|" | CARET -> "^" | BANG -> "!"
    | EQ -> "==" | NE -> "!=" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
    | EOF -> "<eof>"
  in
  Format.pp_print_string fmt s
