(** Hand-rolled lexer for the mini-C kernel language. *)

type token =
  | INT_KW
  | IF | ELSE | FOR | WHILE | RETURN | BREAK | CONTINUE
  | IDENT of string
  | NUM of int
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | QUESTION | COLON
  | ASSIGN
  | PLUS | MINUS | STAR | SHL | SHR | AMP | PIPE | CARET | BANG
  | EQ | NE | LT | LE | GT | GE
  | EOF

type pos = {
  line : int;    (** 1-based *)
  col : int;     (** 1-based column of the token's first character *)
  offset : int;  (** 0-based byte offset into the source *)
}

val dummy_pos : pos
(** [{line = 0; col = 0; offset = 0}], used where no position exists. *)

exception Error of string * pos
(** Lexical error at a source position (see {!pp_pos}). *)

val pp_pos : Format.formatter -> pos -> unit
(** ["line L, column C"]. *)

val tokenize : string -> token list
(** The token stream, always terminated by {!EOF}. *)

val tokenize_pos : string -> (token * pos) list
(** Like {!tokenize} but each token carries the position of its first
    character; the final {!EOF} carries the end-of-input position. *)

val pp_token : Format.formatter -> token -> unit
