(** Recursive-descent parser for the mini-C kernel language.

    Grammar (C-like precedence, loosest to tightest:
    [| ^ &], comparisons, shifts, [+ -], [*], unary):

    {v
    func   := 'int' ident '(' param,* ')' '{' stmt* '}'
    param  := 'int' ident ('[' num ']')?
    stmt   := 'int' ident '=' expr ';'
            | ident '=' expr ';'
            | ident '[' expr ']' '=' expr ';'
            | 'if' '(' expr ')' block ('else' block)?
            | 'while' '(' expr ')' block
            | 'for' '(' simple ';' expr ';' simple ')' block
            | 'return' expr ';'
    v} *)

exception Error of string * Lexer.pos
(** Syntax error: what was wrong, and the line/column of the offending
    token (see {!Lexer.pp_pos}). *)

val parse : string -> Ast.func
(** Raises {!Error} or {!Lexer.Error} on malformed input; both carry the
    source position where parsing failed. *)

val error_message : exn -> string option
(** [Some "line L, column C: <msg>"] for {!Error} and {!Lexer.Error};
    [None] for any other exception. The rendering used by the CLI. *)
