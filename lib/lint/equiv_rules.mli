(** Translation-validation lint rules (the [equiv-*] family).

    - [equiv-aig-mismatch] (error): the elaborated netlist and the
      rewritten AIG disagree at a combinational output — synthesis
      (strash, constant folding, balance) broke the function.
    - [equiv-cover-mismatch] (error): the K-feasible LUT cover does not
      implement the AIG — a LUT's output disagrees with its root, the
      cover/netlist disagree at an output, or the cover is structurally
      malformed (oversized cut, duplicate/unmapped leaf, broken root
      back-pointer).
    - [equiv-label-unsound] (error): a LUT is attributed to a unit that
      contributes no gates to its cone, corrupting [|X_fake|/|X|].
    - [equiv-domain-inconsistent] (error): a LUT's timing domain is not
      the join of its cone gates' domains.
    - [equiv-buffer-nonrefinement] (error): the buffered DFG differs
      from its input by more than the selected buffers (rogue buffer,
      dropped buffer, tampered slots, changed topology).

    The analyses live in {!Tv}; this module owns ids, severities and
    messages. *)

val rules : Rule.info list

val check_translation :
  ?vectors:int ->
  ?seed:int ->
  ?exact:bool ->
  ?k:int ->
  Net.t ->
  Techmap.Lutgraph.t ->
  Diagnostic.t list * Tv.Equiv.result
(** Passes 1 (combinational equivalence) and 2 (label & domain
    soundness); also returns the raw equivalence result so callers can
    report signatures and counts without re-simulating. *)

val check_refinement :
  base:Dataflow.Graph.t ->
  buffered:Dataflow.Graph.t ->
  allowed:(Dataflow.Graph.channel_id * Dataflow.Graph.buffer_spec) list ->
  Diagnostic.t list
(** Pass 3 (buffer-insertion refinement). *)
