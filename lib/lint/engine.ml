module D = Diagnostic

type report = {
  diagnostics : D.t list;
  errors : int;
  warnings : int;
  infos : int;
}

exception Lint_error of report

let empty = { diagnostics = []; errors = 0; warnings = 0; infos = 0 }

let of_diagnostics ds =
  let count sev = List.length (List.filter (fun d -> d.D.severity = sev) ds) in
  {
    diagnostics = ds;
    errors = count D.Error;
    warnings = count D.Warning;
    infos = count D.Info;
  }

let merge a b =
  {
    diagnostics = a.diagnostics @ b.diagnostics;
    errors = a.errors + b.errors;
    warnings = a.warnings + b.warnings;
    infos = a.infos + b.infos;
  }

let ok r = r.errors = 0
let clean r = r.errors = 0 && r.warnings = 0

let gate ~stage r =
  if ok r then r
  else
    raise
      (Lint_error
         (of_diagnostics
            (List.map
               (fun d -> { d with D.message = Printf.sprintf "[%s] %s" stage d.D.message })
               r.diagnostics)))

(* Referencing the rule modules here forces their registration even if a
   client only ever touches the engine. *)
let check_graph ?stage g = of_diagnostics (Dfg_rules.check ?stage g)
let check_ranges ?result g = of_diagnostics (Range_rules.check ?result g)

let check_narrowing ?rounds ?seed ~original ~variant () =
  of_diagnostics (Range_rules.check_narrowing ?rounds ?seed ~original ~variant ())

let check_netlist g net = of_diagnostics (Net_rules.check g net)

let check_mapping g lg tg model =
  of_diagnostics (Lut_rules.check g lg tg model @ Perf_rules.check_domains g tg)

let check_milp ~cp_target ~buffered model lp x =
  of_diagnostics (Milp_rules.check ~cp_target ~buffered model lp x)

let check_perf ?eps ?truncated ~phi cert g =
  of_diagnostics (Perf_rules.check ?eps ?truncated ~phi cert g)

let check_translation ?vectors ?seed ?exact ?k net lg =
  of_diagnostics (fst (Equiv_rules.check_translation ?vectors ?seed ?exact ?k net lg))

let check_refinement ~base ~buffered ~allowed =
  of_diagnostics (Equiv_rules.check_refinement ~base ~buffered ~allowed)

let pp_report fmt r =
  if r.diagnostics = [] then Fmt.pf fmt "lint: clean"
  else begin
    Fmt.pf fmt "lint: %d error(s), %d warning(s), %d info(s)" r.errors r.warnings r.infos;
    List.iter (fun d -> Fmt.pf fmt "@\n  %a" D.pp d) r.diagnostics
  end

let report_to_json ?label r =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  (match label with
  | Some l -> Buffer.add_string b (Printf.sprintf "\"label\":\"%s\"," (D.json_escape l))
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf "\"errors\":%d,\"warnings\":%d,\"infos\":%d,\"diagnostics\":[" r.errors
       r.warnings r.infos);
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (D.to_json d))
    r.diagnostics;
  Buffer.add_string b "]}";
  Buffer.contents b

let catalogue () =
  (* the list heads force linkage of every rule module *)
  ignore Dfg_rules.rules;
  ignore Range_rules.rules;
  ignore Net_rules.rules;
  ignore Lut_rules.rules;
  ignore Milp_rules.rules;
  ignore Perf_rules.rules;
  ignore Equiv_rules.rules;
  Rule.all ()

let pp_catalogue fmt () =
  List.iter (fun r -> Fmt.pf fmt "%a@\n" Rule.pp_info r) (catalogue ())
