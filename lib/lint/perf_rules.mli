(** The [perf-*] rule family: checks the MILP's performance claims and
    the timing model's domain discipline against the independent
    throughput & liveness certificate of {!Analysis.Certify}.

    {!check} compares a certificate with the MILP's per-CFDFC
    throughput [phi] and flags overclaims, combinational loops, token
    deadlocks, and (when the caller observed it) truncated cycle
    enumeration. {!check_domains} audits the node-level timing graph's
    §IV-D discipline: artificial domain-crossing pivots may only live
    in FPL'22 interaction units, and every real LUT delay node must lie
    on a launch-to-capture path (else its delay cannot constrain the
    clock period). *)

val rules : Rule.info list

val check :
  ?eps:float ->
  ?truncated:bool ->
  phi:(Dataflow.Graph.unit_id list * float) list ->
  Analysis.Certify.t ->
  Dataflow.Graph.t ->
  Diagnostic.t list
(** [phi] pairs each CFDFC's unit set with the throughput the MILP
    claimed for it; CFDFCs are matched to the certificate's SCCs by
    their unit sets. [eps] (default 1e-4) absorbs LP arithmetic noise.
    [truncated] (default false) reports that cycle enumeration hit its
    cap upstream. *)

val check_domains : Dataflow.Graph.t -> Timing.Lut_map.t -> Diagnostic.t list
