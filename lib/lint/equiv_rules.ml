(* The equiv-* rule family: translation-validation findings rendered as
   structured lint diagnostics. The analysis itself lives in [Tv]
   (Equiv/Labels/Refine); this module owns the rule ids, severities and
   messages, and adapts Tv's typed violations to [Diagnostic.t]. *)

let aig_mismatch =
  {
    Rule.id = "equiv-aig-mismatch";
    target = Rule.Tv;
    severity = Diagnostic.Error;
    doc = "netlist and rewritten AIG must compute the same function at every combinational output";
  }

let cover_mismatch =
  {
    Rule.id = "equiv-cover-mismatch";
    target = Rule.Tv;
    severity = Diagnostic.Error;
    doc = "the K-feasible LUT cover must implement the AIG function (per LUT and per output)";
  }

let label_unsound =
  {
    Rule.id = "equiv-label-unsound";
    target = Rule.Tv;
    severity = Diagnostic.Error;
    doc = "a LUT's unit label must name a unit contributing gates to its input cone";
  }

let domain_inconsistent =
  {
    Rule.id = "equiv-domain-inconsistent";
    target = Rule.Tv;
    severity = Diagnostic.Error;
    doc = "a LUT's timing domain must be the join of its cone gates' domains";
  }

let buffer_nonrefinement =
  {
    Rule.id = "equiv-buffer-nonrefinement";
    target = Rule.Tv;
    severity = Diagnostic.Error;
    doc = "buffer insertion may only add the selected buffers with the selected slot counts";
  }

let rules =
  [ aig_mismatch; cover_mismatch; label_unsound; domain_inconsistent; buffer_nonrefinement ]

let () = List.iter Rule.register rules

let dom_name = function
  | Net.Data -> "data"
  | Net.Valid -> "valid"
  | Net.Ready -> "ready"
  | Net.Mixed -> "mixed"

(* Passes 1 + 2 over a synthesised/mapped circuit. Returns the
   diagnostics together with the raw equivalence result so callers (the
   [regulate tv] CLI) can report signatures and counts without running
   the simulation twice. *)
let check_translation ?vectors ?seed ?exact ?k net lg =
  let r = Tv.Equiv.run ?vectors ?seed ?exact ?k net lg in
  let equiv_ds =
    List.map
      (function
        | Tv.Equiv.Aig_mismatch { co; tag; _ } ->
          Rule.diag aig_mismatch ~loc:(Diagnostic.Gate tag)
            "netlist and AIG disagree at combinational output %d (netlist gate %d)" co tag
        | Tv.Equiv.Cover_mismatch { lut; _ } ->
          Rule.diag cover_mismatch ~loc:(Diagnostic.Lut lut)
            "LUT %d's output disagrees with its AIG root function (leaves agree)" lut
        | Tv.Equiv.Cover_co_mismatch { co; tag; _ } ->
          Rule.diag cover_mismatch ~loc:(Diagnostic.Gate tag)
            "LUT cover and netlist disagree at combinational output %d (netlist gate %d)" co tag
        | Tv.Equiv.Cover_structural { lut; reason } ->
          Rule.diag cover_mismatch ~loc:(Diagnostic.Lut lut) "LUT %d cover is malformed: %s" lut
            reason)
      r.Tv.Equiv.mismatches
  in
  let label_ds =
    List.map
      (function
        | Tv.Labels.Owner_unsound { lut; owner; cone_units } ->
          Rule.diag label_unsound ~loc:(Diagnostic.Lut lut)
            "LUT %d is labelled with unit %d, which contributes no gates to its cone (cone units: %s)"
            lut owner
            (String.concat "," (List.map string_of_int cone_units))
        | Tv.Labels.Domain_inconsistent { lut; dom; expect } ->
          Rule.diag domain_inconsistent ~loc:(Diagnostic.Lut lut)
            "LUT %d carries timing domain %s but its cone joins to %s" lut (dom_name dom)
            (dom_name expect))
      (Tv.Labels.check lg)
  in
  (equiv_ds @ label_ds, r)

(* Pass 3 over a buffered DFG. *)
let check_refinement ~base ~buffered ~allowed =
  List.map
    (function
      | Tv.Refine.Shape_changed { detail } ->
        Rule.diag buffer_nonrefinement ~loc:Diagnostic.Whole
          "buffered graph is not a refinement of its input: %s" detail
      | Tv.Refine.Buffer_added { channel; spec } ->
        Rule.diag buffer_nonrefinement ~loc:(Diagnostic.Channel channel)
          "channel %d grew a buffer (%s) that no selection asked for" channel
          (Tv.Refine.spec_str spec)
      | Tv.Refine.Buffer_removed { channel } ->
        Rule.diag buffer_nonrefinement ~loc:(Diagnostic.Channel channel)
          "channel %d lost its selected buffer" channel
      | Tv.Refine.Buffer_mismatch { channel; got; want } ->
        Rule.diag buffer_nonrefinement ~loc:(Diagnostic.Channel channel)
          "channel %d's buffer is %s but the selection asked for %s" channel
          (Tv.Refine.spec_str got) (Tv.Refine.spec_str want))
    (Tv.Refine.check ~base ~buffered ~allowed)
