type severity = Error | Warning | Info

let severity_rank = function Error -> 2 | Warning -> 1 | Info -> 0
let severity_compare a b = compare (severity_rank a) (severity_rank b)
let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

type location =
  | Unit of int
  | Channel of int
  | Lut of int
  | Gate of int
  | Milp_row of int
  | Milp_var of int
  | Timing_node of int
  | Whole

type t = {
  rule : string;
  severity : severity;
  loc : location;
  message : string;
  extra : (string * string) list;
}

let make ?(extra = []) ~rule ~severity ~loc message = { rule; severity; loc; message; extra }

let pp_severity fmt s = Fmt.string fmt (severity_name s)

let location_parts = function
  | Unit i -> ("unit", Some i)
  | Channel i -> ("channel", Some i)
  | Lut i -> ("lut", Some i)
  | Gate i -> ("gate", Some i)
  | Milp_row i -> ("milp-row", Some i)
  | Milp_var i -> ("milp-var", Some i)
  | Timing_node i -> ("timing-node", Some i)
  | Whole -> ("whole", None)

let pp_location fmt loc =
  match location_parts loc with
  | kind, Some i -> Fmt.pf fmt "%s %d" kind i
  | kind, None -> Fmt.string fmt kind

let pp fmt d =
  Fmt.pf fmt "%-7s %s @@ %a: %s" (severity_name d.severity) d.rule pp_location d.loc d.message

(* Minimal JSON string escaping: quotes, backslashes and control bytes
   (rule messages embed unit labels, which are user-controlled in the
   mini-C front end). *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json d =
  let kind, id = location_parts d.loc in
  let loc =
    match id with
    | Some i -> Printf.sprintf "{\"kind\":\"%s\",\"id\":%d}" kind i
    | None -> Printf.sprintf "{\"kind\":\"%s\"}" kind
  in
  let extra =
    String.concat ""
      (List.map
         (fun (k, v) -> Printf.sprintf ",\"%s\":\"%s\"" (json_escape k) (json_escape v))
         d.extra)
  in
  Printf.sprintf "{\"rule\":\"%s\",\"severity\":\"%s\",\"loc\":%s,\"message\":\"%s\"%s}"
    (json_escape d.rule) (severity_name d.severity) loc (json_escape d.message) extra
