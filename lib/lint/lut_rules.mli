(** Lint rules over the LUT-to-DFG mapping and the mapping-aware timing
    model (§IV of the paper).

    - [lut-owner-invalid] (error): a LUT labelled with a unit id that
      does not exist in the graph — the mapping must label every LUT
      with a live unit.
    - [lut-owner-undetermined] (info): a LUT with owner [-1]; its delay
      cannot be attributed to any unit, weakening the penalty model.
    - [lut-unmapped-edges] (info): LUT edges for which no DFG path (in
      either direction, nor through a domain-interaction unit) exists;
      they were kept as explicitly artificial direct edges (the §IV-A
      one-edge-to-no-path rule).
    - [lut-fake-accounting] (error): the [n_real]/[n_fake] counters must
      match the delay nodes actually present, with one real node per
      mapped LUT and no negative counts.
    - [lut-cross-buffered] (error): a timing-graph crossing node on an
      opaque-buffered channel — the mapper routed a combinational path
      through a register.
    - [lut-timing-cycle] (error): the node-level timing graph must be
      acyclic (it is a subdivision of the acyclic LUT network).
    - [lut-penalty-range] (error): every channel penalty (Eq. 2) must be
      a finite value in [0, 1]. *)

val rules : Rule.info list

val check :
  Dataflow.Graph.t ->
  Techmap.Lutgraph.t ->
  Timing.Lut_map.t ->
  Timing.Model.t ->
  Diagnostic.t list
