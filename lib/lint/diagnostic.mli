(** Structured lint diagnostics.

    Every finding carries the id of the rule that produced it, a severity,
    a location inside the artefact being checked (a dataflow unit, a
    channel, a LUT, a netlist gate, an MILP row or variable, a timing-graph
    node — or the whole artefact), and a human-readable message. Rendering
    goes through [Fmt]; a machine-readable JSON form is provided for the
    [regulate lint --json] output mode. *)

type severity = Error | Warning | Info

val severity_compare : severity -> severity -> int
(** Orders [Error > Warning > Info]. *)

val severity_name : severity -> string

type location =
  | Unit of int          (** dataflow unit id *)
  | Channel of int       (** dataflow channel id *)
  | Lut of int           (** mapped LUT id *)
  | Gate of int          (** netlist gate id *)
  | Milp_row of int      (** constraint row index of the LP *)
  | Milp_var of int      (** variable index of the LP *)
  | Timing_node of int   (** node id of the node-level timing graph *)
  | Whole                (** the artefact as a whole *)

type t = {
  rule : string;         (** id of the rule that fired *)
  severity : severity;
  loc : location;
  message : string;
  extra : (string * string) list;
      (** machine-readable key/value payload carried into the JSON form
          (e.g. the inferred interval behind a range-* finding) *)
}

val make :
  ?extra:(string * string) list ->
  rule:string -> severity:severity -> loc:location -> string -> t

val pp_severity : severity Fmt.t
val pp_location : location Fmt.t
val pp : t Fmt.t
(** [rule-id severity @ location: message] on one line. *)

val to_json : t -> string
(** One JSON object: [{"rule":…,"severity":…,"loc":{"kind":…,"id":…},"message":…}]
    plus one string member per [extra] pair. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON literal (quotes, backslashes,
    control bytes). *)
