module M = Timing.Model
module D = Diagnostic

let r_row =
  {
    Rule.id = "milp-row-violated";
    target = Rule.Milp;
    severity = D.Error;
    doc = "the returned solution must satisfy every constraint row of the LP";
  }

let r_bound =
  {
    Rule.id = "milp-bound-violated";
    target = Rule.Milp;
    severity = D.Error;
    doc = "the returned solution must respect every variable bound";
  }

let r_integrality =
  {
    Rule.id = "milp-integrality";
    target = Rule.Milp;
    severity = D.Error;
    doc = "binary/integer variables must take integral values";
  }

let r_cp =
  {
    Rule.id = "milp-cp-exceeded";
    target = Rule.Milp;
    severity = D.Error;
    doc = "re-derived arrival times must meet the clock-period target";
  }

let r_unfixable =
  {
    Rule.id = "milp-unfixable-path";
    target = Rule.Milp;
    severity = D.Info;
    doc = "segments longer than the target that no buffering can fix";
  }

let r_solve_failed =
  {
    Rule.id = "milp-solve-failed";
    target = Rule.Milp;
    severity = D.Error;
    doc = "the buffer-placement MILP must return a solution";
  }

let rules = [ r_row; r_bound; r_integrality; r_cp; r_unfixable; r_solve_failed ]

let () = List.iter Rule.register rules

let solve_failure msg = Rule.diag r_solve_failed ~loc:D.Whole "%s" msg

let eps = 1e-6

(* Independent clock-period certificate: worst-case arrival times are
   re-propagated over the model's delay pairs. A buffered source terminal
   restarts the path (fresh launch at delay d); an unbuffered one chains
   [a_src + d]. Pairs that exceed the target on a single hop are
   unfixable by construction and excluded from the error check (the
   formulation excludes them from its constraints the same way). *)
let check_cp ~cp ~buffered (model : M.t) emit =
  let buf = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace buf c ()) buffered;
  let is_buffered = function
    | M.T_reg -> true (* a register is its own launch point *)
    | M.T_chan_fwd c | M.T_chan_bwd c -> Hashtbl.mem buf c
  in
  let chan_of = function M.T_chan_fwd c | M.T_chan_bwd c -> c | M.T_reg -> -1 in
  (* index the channel-crossing terminals *)
  let ids : (M.terminal, int) Hashtbl.t = Hashtbl.create 64 in
  let terms = ref [] and n = ref 0 in
  let id_of t =
    match Hashtbl.find_opt ids t with
    | Some i -> i
    | None ->
      let i = !n in
      incr n;
      Hashtbl.replace ids t i;
      terms := t :: !terms;
      i
  in
  let unfixable = ref 0 and worst_unfixable = ref 0. in
  let note_unfixable d =
    incr unfixable;
    if d > !worst_unfixable then worst_unfixable := d
  in
  (* base arrivals, chained edges, and capture pairs *)
  let base = Hashtbl.create 64 in
  let raise_base t d =
    let i = id_of t in
    match Hashtbl.find_opt base i with
    | Some d0 when d0 >= d -> ()
    | _ -> Hashtbl.replace base i d
  in
  let edges = ref [] and captures = ref [] in
  List.iter
    (fun { M.p_src; p_dst; p_delay = d } ->
      if d > cp +. eps then note_unfixable d
      else
        match (p_src, p_dst) with
        | M.T_reg, M.T_reg -> ()
        | src, M.T_reg ->
          (* ends at a register: total must fit in CP *)
          if is_buffered src then () (* fresh launch of d <= cp: fine *)
          else captures := (id_of src, d) :: !captures
        | src, dst ->
          raise_base dst d;
          if not (is_buffered src) then edges := (id_of src, id_of dst, d) :: !edges)
    model.M.pairs;
  if model.M.fixed_reg_to_reg > cp +. eps then note_unfixable model.M.fixed_reg_to_reg;
  (* longest-path DP over the chained segments (Kahn order) *)
  let n = !n in
  let term_of = Array.make (max n 1) M.T_reg in
  List.iter (fun t -> term_of.(Hashtbl.find ids t) <- t) !terms;
  let succ = Array.make n [] and indeg = Array.make n 0 in
  List.iter
    (fun (s, t, d) ->
      succ.(s) <- (t, d) :: succ.(s);
      indeg.(t) <- indeg.(t) + 1)
    !edges;
  let arrival = Array.make n 0. in
  for i = 0 to n - 1 do
    arrival.(i) <- Option.value (Hashtbl.find_opt base i) ~default:0.
  done;
  let q = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i q) indeg;
  let peeled = ref 0 in
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    incr peeled;
    List.iter
      (fun (t, d) ->
        if arrival.(i) +. d > arrival.(t) then arrival.(t) <- arrival.(i) +. d;
        indeg.(t) <- indeg.(t) - 1;
        if indeg.(t) = 0 then Queue.add t q)
      succ.(i)
  done;
  if !peeled < n then begin
    let witness = ref (-1) in
    Array.iteri (fun i d -> if d > 0 && !witness < 0 then witness := i) indeg;
    emit
      (Rule.diag r_cp ~loc:(D.Channel (chan_of term_of.(!witness)))
         "unbuffered segments form a combinational cycle: arrival times diverge")
  end
  else begin
    for i = 0 to n - 1 do
      if arrival.(i) > cp +. 1e-4 then
        emit
          (Rule.diag r_cp ~loc:(D.Channel (chan_of term_of.(i)))
             "arrival at %s reaches %.3f ns, target %.3f ns"
             (Format.asprintf "%a" M.pp_terminal term_of.(i))
             arrival.(i) cp)
    done;
    List.iter
      (fun (s, d) ->
        if arrival.(s) +. d > cp +. 1e-4 then
          emit
            (Rule.diag r_cp ~loc:(D.Channel (chan_of term_of.(s)))
               "capture path from %s reaches %.3f ns, target %.3f ns"
               (Format.asprintf "%a" M.pp_terminal term_of.(s))
               (arrival.(s) +. d) cp))
      !captures
  end;
  if !unfixable > 0 then
    emit
      (Rule.diag r_unfixable ~loc:D.Whole
         "%d segment(s) exceed the %.3f ns target on an unbreakable span (worst %.3f ns); \
          no buffer placement can fix them"
         !unfixable cp !worst_unfixable)

let check ~cp_target ~buffered (model : M.t) lp x =
  let acc = ref [] in
  let emit d = acc := d :: !acc in
  List.iter
    (fun v ->
      let render () = Format.asprintf "%a" (Milp.Lp.pp_violation lp) v in
      match v with
      | Milp.Lp.V_constr { row; _ } ->
        emit (Rule.diag r_row ~loc:(D.Milp_row row) "%s" (render ()))
      | Milp.Lp.V_bound { var; _ } ->
        emit (Rule.diag r_bound ~loc:(D.Milp_var var) "%s" (render ()))
      | Milp.Lp.V_integrality { var; _ } ->
        emit (Rule.diag r_integrality ~loc:(D.Milp_var var) "%s" (render ())))
    (Milp.Lp.violations lp x);
  check_cp ~cp:cp_target ~buffered model emit;
  List.rev !acc
