module G = Dataflow.Graph
module L = Techmap.Lutgraph
module LM = Timing.Lut_map
module D = Diagnostic

let r_owner_invalid =
  {
    Rule.id = "lut-owner-invalid";
    target = Rule.Lut_mapping;
    severity = D.Error;
    doc = "every LUT must be labelled with a live unit of the graph";
  }

let r_owner_undet =
  {
    Rule.id = "lut-owner-undetermined";
    target = Rule.Lut_mapping;
    severity = D.Info;
    doc = "a LUT without an owner cannot contribute to any unit's penalty";
  }

let r_unmapped =
  {
    Rule.id = "lut-unmapped-edges";
    target = Rule.Lut_mapping;
    severity = D.Info;
    doc = "LUT edges with no DFG path are kept as explicitly artificial edges";
  }

let r_fake_accounting =
  {
    Rule.id = "lut-fake-accounting";
    target = Rule.Lut_mapping;
    severity = D.Error;
    doc = "n_real/n_fake must match the delay nodes present (one real node per LUT)";
  }

let r_cross_buffered =
  {
    Rule.id = "lut-cross-buffered";
    target = Rule.Lut_mapping;
    severity = D.Error;
    doc = "no mapped path may traverse an opaque-buffered channel";
  }

let r_timing_cycle =
  {
    Rule.id = "lut-timing-cycle";
    target = Rule.Lut_mapping;
    severity = D.Error;
    doc = "the node-level timing graph must be acyclic";
  }

let r_penalty =
  {
    Rule.id = "lut-penalty-range";
    target = Rule.Lut_mapping;
    severity = D.Error;
    doc = "every channel penalty must be finite and within [0, 1]";
  }

let rules =
  [
    r_owner_invalid;
    r_owner_undet;
    r_unmapped;
    r_fake_accounting;
    r_cross_buffered;
    r_timing_cycle;
    r_penalty;
  ]

let () = List.iter Rule.register rules

let check g (lg : L.t) (tg : LM.t) (model : Timing.Model.t) =
  let acc = ref [] in
  let emit d = acc := d :: !acc in
  let n_units = G.n_units g in
  (* ---- LUT labels ---- *)
  Array.iter
    (fun (l : L.lut) ->
      if l.L.owner = -1 then
        emit
          (Rule.diag r_owner_undet ~loc:(D.Lut l.L.lid)
             "LUT %d (cone of %d nodes) has no determined owner" l.L.lid l.L.cone_size)
      else if l.L.owner < -1 || l.L.owner >= n_units then
        emit
          (Rule.diag r_owner_invalid ~loc:(D.Lut l.L.lid)
             "LUT %d is labelled with unit %d, but %s has only %d units" l.L.lid l.L.owner
             (G.name g) n_units))
    lg.L.luts;
  (* ---- fake/real node accounting ---- *)
  let real = ref 0 and fake = ref 0 in
  Array.iter
    (fun k ->
      match k with
      | LM.Delay { fake = false; _ } -> incr real
      | LM.Delay { fake = true; _ } -> incr fake
      | _ -> ())
    tg.LM.kinds;
  if tg.LM.n_real < 0 || tg.LM.n_fake < 0 || tg.LM.n_unmapped_edges < 0 then
    emit
      (Rule.diag r_fake_accounting ~loc:D.Whole
         "negative node accounting: n_real=%d n_fake=%d n_unmapped=%d" tg.LM.n_real
         tg.LM.n_fake tg.LM.n_unmapped_edges)
  else begin
    if tg.LM.n_real <> !real || tg.LM.n_fake <> !fake then
      emit
        (Rule.diag r_fake_accounting ~loc:D.Whole
           "counters claim %d real / %d fake delay nodes, graph holds %d / %d" tg.LM.n_real
           tg.LM.n_fake !real !fake);
    if tg.LM.n_real < Array.length lg.L.luts then
      emit
        (Rule.diag r_fake_accounting ~loc:D.Whole
           "%d LUTs mapped but only %d real delay nodes (every LUT must own one)"
           (Array.length lg.L.luts) tg.LM.n_real)
  end;
  if tg.LM.n_unmapped_edges > 0 then
    emit
      (Rule.diag r_unmapped ~loc:D.Whole
         "%d LUT edge(s) had no DFG path and were kept as direct artificial edges"
         tg.LM.n_unmapped_edges);
  (* ---- crossing nodes vs buffers ---- *)
  let n_channels = G.n_channels g in
  Array.iteri
    (fun i k ->
      match k with
      | LM.Cross_fwd c | LM.Cross_bwd c ->
        if c < 0 || c >= n_channels then
          emit
            (Rule.diag r_cross_buffered ~loc:(D.Timing_node i)
               "crossing node %d references channel %d, out of range" i c)
        else (
          match G.buffer g c with
          | Some { G.transparent = false; _ } ->
            let ch = G.channel g c in
            emit
              (Rule.diag r_cross_buffered ~loc:(D.Timing_node i)
                 "crossing node %d traverses opaque-buffered channel %d (%d -> %d)" i c
                 ch.G.src ch.G.dst)
          | _ -> ())
      | _ -> ())
    tg.LM.kinds;
  (* ---- acyclicity of the timing graph (Kahn peeling) ---- *)
  let n = Array.length tg.LM.kinds in
  let indeg = Array.make n 0 in
  Array.iter (List.iter (fun d -> indeg.(d) <- indeg.(d) + 1)) tg.LM.succs;
  let q = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i q) indeg;
  let peeled = ref 0 in
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    incr peeled;
    List.iter
      (fun d ->
        indeg.(d) <- indeg.(d) - 1;
        if indeg.(d) = 0 then Queue.add d q)
      tg.LM.succs.(i)
  done;
  if !peeled < n then begin
    (* any node still carrying in-degree lies on or downstream of a cycle;
       report one representative *)
    let witness = ref (-1) in
    Array.iteri (fun i d -> if d > 0 && !witness < 0 then witness := i) indeg;
    emit
      (Rule.diag r_timing_cycle ~loc:(D.Timing_node !witness)
         "timing graph has a cycle (%d of %d nodes lie on or behind it)" (n - !peeled) n)
  end;
  (* ---- penalty range (Eq. 2) ---- *)
  if Array.length model.Timing.Model.penalty <> n_channels then
    emit
      (Rule.diag r_penalty ~loc:D.Whole "penalty array has %d entries for %d channels"
         (Array.length model.Timing.Model.penalty) n_channels)
  else
    Array.iteri
      (fun c p ->
        if Float.is_nan p || p < 0. || p > 1. then
          emit
            (Rule.diag r_penalty ~loc:(D.Channel c) "penalty(%d) = %g is outside [0, 1]" c p))
      model.Timing.Model.penalty;
  List.rev !acc
