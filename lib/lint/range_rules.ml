(* Lint rules backed by the abstract-interpretation value analysis
   ({!Absint}): wrap-possible arithmetic, provably-constant steering,
   width excess against the proven envelope, and the equivalence gate on
   the narrowing rewrite itself. *)

module D = Diagnostic
module G = Dataflow.Graph
module K = Dataflow.Unit_kind
module Ops = Dataflow.Ops
module V = Absint.Value

let r_overflow =
  {
    Rule.id = "range-overflow-possible";
    target = Rule.Range;
    (* wrap modulo 2^w is the datapath's defined semantics (the reference
       interpreter wraps identically), so a provably-wrappable accumulator
       is a heads-up, not a correctness warning *)
    severity = D.Info;
    doc = "an arithmetic result can exceed the unit width and wraps modulo 2^w";
  }

let r_dead =
  {
    Rule.id = "range-dead-branch";
    target = Rule.Range;
    severity = D.Warning;
    doc = "a branch condition or mux selector is provably constant; one side never fires";
  }

let r_excess =
  {
    Rule.id = "range-width-excess";
    target = Rule.Range;
    severity = D.Info;
    doc = "a unit is wider than its proven value envelope; narrowing would shrink it";
  }

let r_diverged =
  {
    Rule.id = "range-analysis-diverged";
    target = Rule.Range;
    severity = D.Warning;
    doc = "the abstract interpreter hit its evaluation budget; ranges fell back to top";
  }

let r_equiv =
  {
    Rule.id = "equiv-narrow";
    target = Rule.Tv;
    severity = D.Error;
    doc = "the narrowed circuit must be simulation-equivalent to the original";
  }

let rules = [ r_overflow; r_dead; r_excess; r_diverged; r_equiv ]
let () = List.iter Rule.register rules

let unit_desc g u =
  let n = G.unit_node g u in
  if n.G.label = "" then Printf.sprintf "%s#%d" (K.name n.G.kind) u
  else Printf.sprintf "%s#%d (%s)" (K.name n.G.kind) u n.G.label

let with_interval rule ?width v ~loc fmt =
  Format.kasprintf
    (fun message ->
      D.make
        ~extra:[ ("interval", V.to_string ?width v) ]
        ~rule:rule.Rule.id ~severity:rule.Rule.severity ~loc message)
    fmt

let check ?result g =
  let res = match result with Some r -> r | None -> Absint.Analyze.run g in
  if res.Absint.Analyze.diverged then
    [
      Rule.diag r_diverged ~loc:D.Whole
        "abstract interpretation gave up after %d evaluations; no range facts available"
        res.Absint.Analyze.evals;
    ]
  else begin
    let acc = ref [] in
    let val_of cid = Absint.Analyze.value res cid in
    let in_vals (n : G.node) =
      Array.to_list n.G.ins
      |> List.map (function Some cid -> val_of cid | None -> V.Bot)
    in
    G.iter_units g (fun n ->
        let u = n.G.uid in
        let loc = D.Unit u in
        let out0 = match n.G.outs with [||] -> None | outs -> outs.(0) in
        (match n.G.kind with
        | K.Operator { op; _ } ->
            let ins = in_vals n in
            if Absint.Transfer.may_wrap ~width:n.G.width op ins then
              let ov = match out0 with Some cid -> val_of cid | None -> V.top n.G.width in
              acc :=
                with_interval r_overflow ~width:n.G.width ov ~loc
                  "%s: %s result can exceed %d bits (wraps)" (unit_desc g u)
                  (Ops.name op) n.G.width
                :: !acc
        | K.Branch -> (
            let ins = in_vals n in
            match ins with
            | [ va; vc ] when not (V.is_bot va || V.is_bot vc) -> (
                match Absint.Analyze.cond_cases vc with
                | true, false | false, true ->
                    let always = match Absint.Analyze.cond_cases vc with true, false -> "true" | _ -> "false" in
                    acc :=
                      with_interval r_dead ~width:2 vc ~loc
                        "%s: condition is always %s; the %s output never fires"
                        (unit_desc g u) always
                        (if always = "true" then "false" else "true")
                      :: !acc
                | _ -> ())
            | _ -> ())
        | K.Mux arms -> (
            let sel = match n.G.ins.(0) with Some cid -> val_of cid | None -> V.Bot in
            if not (V.is_bot sel) then
              match Absint.Analyze.mux_arms ~sel ~arms with
              | [ k ] when arms > 1 ->
                  acc :=
                    with_interval r_dead ~width:n.G.width sel ~loc
                      "%s: selector always picks arm %d of %d" (unit_desc g u) k arms
                    :: !acc
              | _ -> ())
        | _ -> ());
        (* width excess against the proven envelope *)
        match n.G.kind with
        | K.Entry | K.Source | K.Load _ | K.Store _ -> ()
        | _ ->
            if n.G.width >= 1 && n.G.width < 62 && Array.length n.G.outs > 0 then begin
              let needed = ref 0 and live = ref false in
              Array.iter
                (function
                  | Some cid ->
                      let v = val_of cid in
                      if not (V.is_bot v) then begin
                        live := true;
                        needed := max !needed (V.needed_width n.G.width v)
                      end
                  | None -> ())
                n.G.outs;
              (* narrowing clamps to >= 1 bit, so needed 0 at width 1 is
                 not actionable *)
              let needed = max 1 !needed in
              if !live && needed < n.G.width then
                let v = match out0 with Some cid -> val_of cid | None -> V.Bot in
                acc :=
                  with_interval r_excess ~width:n.G.width v ~loc
                    "%s: %d bits suffice for the proven envelope (has %d)"
                    (unit_desc g u) needed n.G.width
                  :: !acc
            end);
    List.rev !acc
  end

(* The translation-validation gate on the narrowing rewrite: random
   simulation of both variants on shared memories.  Any mismatch is an
   error — the flows abort rather than ship the rewritten circuit. *)
let check_narrowing ?rounds ?seed ~original ~variant () =
  Tv.Simdiff.check ?rounds ?seed ~original ~variant ()
  |> List.map (fun msg -> Rule.diag r_equiv ~loc:D.Whole "%s" msg)
