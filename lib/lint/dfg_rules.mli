(** Structural lint rules over the dataflow graph.

    - [dfg-unconnected-port] (error): a unit port with no channel — the
      handshake protocol requires every port wired exactly once.
    - [dfg-unreachable-unit] (warning): a unit no token from any entry or
      source unit can ever reach; it is dead hardware.
    - [dfg-comb-cycle] (error, post-buffering stage): a cycle none of
      whose channels carries an opaque buffer — an unbreakable
      combinational loop that elaboration/simulation would reject.
    - [dfg-no-back-edge] (warning, pre-buffering stage): a cyclic SCC
      with neither a marked loop back edge nor an opaque buffer, so the
      flow has no principled place to break it and must fall back to DFS
      back-edge classification.
    - [dfg-self-loop] (error): a channel with [src = dst] and no opaque
      buffer (pre-buffering: and no back-edge mark) — a one-unit
      combinational loop.
    - [dfg-width-mismatch] (warning): operand widths of a binary
      operator disagree, or a mux/merge/branch/buffer input width
      disagrees with the unit's width. *)

type stage =
  | Pre_buffering   (** raw front-end output: cycles are expected, but must be breakable *)
  | Post_buffering  (** after back-edge seeding / placement: every cycle must hold a buffer *)

val rules : Rule.info list

val check : ?stage:stage -> Dataflow.Graph.t -> Diagnostic.t list
(** Runs every DFG rule applicable at [stage] (default
    [Post_buffering]). *)
