(** The lint rule registry.

    Rules are identified by a stable kebab-case id ([dfg-comb-cycle],
    [milp-row-violated], …), grouped by the analysis target they inspect,
    and carry a default severity plus a one-line description. The rule
    modules ({!Dfg_rules}, {!Net_rules}, {!Lut_rules}, {!Milp_rules})
    register their catalogue at module initialisation; {!Engine} forces
    the registration and exposes the combined catalogue. *)

type target =
  | Dfg          (** dataflow-graph structure *)
  | Range        (** abstract-interpretation value/width analysis (Absint) *)
  | Netlist      (** elaborated gate-level netlist *)
  | Lut_mapping  (** LUT-to-DFG mapping + timing model (§IV) *)
  | Milp         (** MILP solution certificate *)
  | Perf         (** throughput & liveness certificate vs. the MILP's claims *)
  | Tv           (** translation validation: stage-by-stage equivalence *)

val target_name : target -> string

type info = {
  id : string;
  target : target;
  severity : Diagnostic.severity;  (** default severity of this rule's findings *)
  doc : string;                    (** one-line description for the catalogue *)
}

val register : info -> unit
(** Raises [Invalid_argument] on a duplicate id. *)

val find : string -> info option

val all : unit -> info list
(** The registered catalogue, sorted by target then id. *)

val diag : info -> loc:Diagnostic.location -> ('a, Format.formatter, unit, Diagnostic.t) format4 -> 'a
(** [diag r ~loc fmt …] builds a {!Diagnostic.t} for rule [r] at its
    default severity with an [Fmt]-formatted message. *)

val pp_info : Format.formatter -> info -> unit
