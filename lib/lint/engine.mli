(** The lint driver: runs rule groups over flow artefacts, aggregates
    structured reports, and renders them for humans ([Fmt]) or machines
    (JSON).

    The flow ({!module:Core.Flow} once wired) uses the [check_*]
    functions as pre/post-stage gates: a report containing errors aborts
    the run ({!Lint_error}); warnings and infos ride along in the run
    report. *)

type report = {
  diagnostics : Diagnostic.t list;  (** in emission order *)
  errors : int;
  warnings : int;
  infos : int;
}

exception Lint_error of report
(** Raised by {!gate} when a report contains at least one error. *)

val empty : report
val of_diagnostics : Diagnostic.t list -> report
val merge : report -> report -> report
val ok : report -> bool
(** No errors (warnings and infos allowed). *)

val clean : report -> bool
(** No errors and no warnings. *)

val gate : stage:string -> report -> report
(** Identity when {!ok}; raises {!Lint_error} otherwise, with the stage
    name prefixed to the report's diagnostics for context. *)

(** {2 Stage checkers} *)

val check_graph : ?stage:Dfg_rules.stage -> Dataflow.Graph.t -> report

val check_ranges : ?result:Absint.Analyze.result -> Dataflow.Graph.t -> report
(** The [range-*] family over the abstract-interpretation value analysis;
    runs the analysis when no [result] is supplied.  See
    {!Range_rules.check}. *)

val check_narrowing :
  ?rounds:int ->
  ?seed:int ->
  original:Dataflow.Graph.t ->
  variant:Dataflow.Graph.t ->
  unit ->
  report
(** Random-simulation equivalence of a graph and its narrowed rewrite;
    mismatches are [equiv-narrow] errors.  See
    {!Range_rules.check_narrowing}. *)

val check_netlist : Dataflow.Graph.t -> Net.t -> report

val check_mapping :
  Dataflow.Graph.t -> Techmap.Lutgraph.t -> Timing.Lut_map.t -> Timing.Model.t -> report
(** {!Lut_rules.check} plus the §IV-D domain discipline of
    {!Perf_rules.check_domains}. *)

val check_milp :
  cp_target:float ->
  buffered:Dataflow.Graph.channel_id list ->
  Timing.Model.t ->
  Milp.Lp.t ->
  float array ->
  report

val check_perf :
  ?eps:float ->
  ?truncated:bool ->
  phi:(Dataflow.Graph.unit_id list * float) list ->
  Analysis.Certify.t ->
  Dataflow.Graph.t ->
  report
(** The MILP's throughput claims vs. the independent certificate; see
    {!Perf_rules.check}. *)

val check_translation :
  ?vectors:int ->
  ?seed:int ->
  ?exact:bool ->
  ?k:int ->
  Net.t ->
  Techmap.Lutgraph.t ->
  report
(** The translation validator's equivalence and label/domain soundness
    passes over a synthesised + mapped circuit; see
    {!Equiv_rules.check_translation}. *)

val check_refinement :
  base:Dataflow.Graph.t ->
  buffered:Dataflow.Graph.t ->
  allowed:(Dataflow.Graph.channel_id * Dataflow.Graph.buffer_spec) list ->
  report
(** The buffer-insertion refinement pass; see
    {!Equiv_rules.check_refinement}. *)

(** {2 Rendering} *)

val pp_report : Format.formatter -> report -> unit
val report_to_json : ?label:string -> report -> string
(** One JSON object; [label] (e.g. the kernel name) is included when
    given. *)

val catalogue : unit -> Rule.info list
(** All registered rules (forces registration of the built-in rule
    modules). *)

val pp_catalogue : Format.formatter -> unit -> unit
