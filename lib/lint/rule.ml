type target = Dfg | Range | Netlist | Lut_mapping | Milp | Perf | Tv

let target_name = function
  | Dfg -> "dfg"
  | Range -> "range"
  | Netlist -> "netlist"
  | Lut_mapping -> "lut-mapping"
  | Milp -> "milp"
  | Perf -> "perf"
  | Tv -> "tv"

let target_rank = function
  | Dfg -> 0
  | Range -> 1
  | Netlist -> 2
  | Lut_mapping -> 3
  | Milp -> 4
  | Perf -> 5
  | Tv -> 6

type info = {
  id : string;
  target : target;
  severity : Diagnostic.severity;
  doc : string;
}

let registry : (string, info) Hashtbl.t = Hashtbl.create 32

let register r =
  if Hashtbl.mem registry r.id then
    invalid_arg (Printf.sprintf "Lint.Rule.register: duplicate rule id %s" r.id);
  Hashtbl.replace registry r.id r

let find id = Hashtbl.find_opt registry id

let all () =
  Hashtbl.fold (fun _ r acc -> r :: acc) registry []
  |> List.sort (fun a b ->
         match compare (target_rank a.target) (target_rank b.target) with
         | 0 -> compare a.id b.id
         | c -> c)

let diag r ~loc fmt =
  Format.kasprintf
    (fun message -> Diagnostic.make ~rule:r.id ~severity:r.severity ~loc message)
    fmt

let pp_info fmt r =
  Fmt.pf fmt "%-24s %-11s %-7s %s" r.id (target_name r.target)
    (Diagnostic.severity_name r.severity) r.doc
