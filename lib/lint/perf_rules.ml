module G = Dataflow.Graph
module LM = Timing.Lut_map
module C = Analysis.Certify
module D = Diagnostic

let r_phi =
  {
    Rule.id = "perf-phi-overclaimed";
    target = Rule.Perf;
    severity = D.Error;
    doc = "MILP throughput must not exceed the certified min-cycle-ratio bound";
  }

let r_comb =
  {
    Rule.id = "perf-comb-loop";
    target = Rule.Perf;
    severity = D.Error;
    doc = "every cycle must carry sequential latency (an opaque buffer or pipelined unit)";
  }

let r_deadlock =
  {
    Rule.id = "perf-deadlock";
    target = Rule.Perf;
    severity = D.Error;
    doc = "every cycle must keep a free slot beyond its tokens, else no transfer can fire";
  }

let r_truncated =
  {
    Rule.id = "perf-cycle-limit-truncated";
    target = Rule.Perf;
    severity = D.Warning;
    doc = "cycle enumeration hit its cap: the MILP's cycle constraints may under-cover";
  }

let r_karp =
  {
    Rule.id = "perf-karp-disagrees";
    target = Rule.Perf;
    severity = D.Error;
    doc = "Howard's and Karp's min cycle ratio must agree (certifier self-check)";
  }

let r_crossing =
  {
    Rule.id = "perf-domain-crossing";
    target = Rule.Lut_mapping;
    severity = D.Error;
    doc = "artificial domain-crossing pivots only at FPL'22 interaction units (SIV-D)";
  }

let r_uncovered =
  {
    Rule.id = "perf-delay-uncovered";
    target = Rule.Lut_mapping;
    severity = D.Warning;
    doc = "every real LUT delay node must lie on a launch-to-capture path";
  }

let rules = [ r_phi; r_comb; r_deadlock; r_truncated; r_karp; r_crossing; r_uncovered ]
let () = List.iter Rule.register rules

let cycle_loc cy = match cy.C.cy_channels with c :: _ -> D.Channel c | [] -> D.Whole

let check ?(eps = 1e-4) ?(truncated = false) ~phi cert g =
  let acc = ref [] in
  let emit d = acc := d :: !acc in
  if truncated then
    emit
      (Rule.diag r_truncated ~loc:D.Whole
         "simple-cycle enumeration was truncated: MILP cycle-legality rows may miss cycles \
          (the certifier's SCC-local analysis above is still exhaustive)");
  (* liveness, with the offending cycle as witness *)
  List.iter
    (fun s ->
      List.iter
        (fun v ->
          match v with
          | C.Comb_loop cy ->
            emit
              (Rule.diag r_comb ~loc:(cycle_loc cy) "combinational loop: %a"
                 (C.pp_cycle g) cy)
          | C.Deadlock cy ->
            emit
              (Rule.diag r_deadlock ~loc:(cycle_loc cy)
                 "token deadlock: %d token(s) fill the cycle's capacity %d on %a"
                 cy.C.cy_tokens cy.C.cy_capacity (C.pp_cycle g) cy))
        s.C.sc_violations)
    cert.C.sccs;
  (* MILP phi vs certified bound, SCCs matched by their unit sets *)
  let key units = List.fold_left min max_int units in
  let claimed = Hashtbl.create 8 in
  List.iter (fun (units, th) -> Hashtbl.replace claimed (key units) (units, th)) phi;
  List.iter
    (fun s ->
      match Hashtbl.find_opt claimed (key s.C.sc_units) with
      | None -> ()
      | Some (units, th) ->
        if th > s.C.sc_bound +. eps then
          emit
            (Rule.diag r_phi
               ~loc:(match units with u :: _ -> D.Unit u | [] -> D.Whole)
               "MILP claims throughput %.4f for the %d-unit CFDFC, but the certified bound \
                is %.4f%s"
               th (List.length units) s.C.sc_bound
               (match s.C.sc_critical with
               | Some cy ->
                 Format.asprintf " (limiting cycle: %a)" (C.pp_cycle g) cy
               | None -> "")))
    cert.C.sccs;
  (* certifier self-check: the two independent solvers must agree *)
  List.iter
    (fun s ->
      match s.C.sc_karp with
      | Some k when Float.abs (k -. s.C.sc_ratio) > 1e-9 ->
        emit
          (Rule.diag r_karp
             ~loc:(match s.C.sc_units with u :: _ -> D.Unit u | [] -> D.Whole)
             "Howard computed cycle ratio %.9f but Karp computed %.9f for the %d-unit SCC"
             s.C.sc_ratio k (List.length s.C.sc_units))
      | _ -> ())
    cert.C.sccs;
  List.rev !acc

let check_domains g (tg : LM.t) =
  let acc = ref [] in
  let emit d = acc := d :: !acc in
  let interaction = Hashtbl.create 16 in
  List.iter (fun u -> Hashtbl.replace interaction u ()) (Elaborate.interaction_units g);
  let n = Array.length tg.LM.kinds in
  let is_fwd i = match tg.LM.kinds.(i) with LM.Cross_fwd _ -> true | _ -> false in
  let is_bwd i = match tg.LM.kinds.(i) with LM.Cross_bwd _ -> true | _ -> false in
  Array.iteri
    (fun i k ->
      match k with
      | LM.Delay { fake = true; unit_id; _ }
        when List.exists is_fwd tg.LM.preds.(i) && List.exists is_bwd tg.LM.succs.(i) ->
        (* the SIV-D pivot: a forward (data/valid) path turns into a
           backward (ready) path inside this unit *)
        if unit_id < 0 || unit_id >= G.n_units g then
          emit
            (Rule.diag r_crossing ~loc:(D.Timing_node i)
               "domain-crossing pivot node %d is attributed to unit %d, out of range" i
               unit_id)
        else if not (Hashtbl.mem interaction unit_id) then
          emit
            (Rule.diag r_crossing ~loc:(D.Timing_node i)
               "domain-crossing pivot node %d sits in u%d(%a), which is not an FPL'22 \
                interaction unit"
               i unit_id Dataflow.Unit_kind.pp (G.unit_node g unit_id).G.kind)
      | _ -> ())
    tg.LM.kinds;
  (* every real delay node must be constrained by some launch->capture
     path, else its LUT's delay silently drops out of the model *)
  let reach_from root step =
    let seen = Array.make n false in
    let rec dfs i =
      if not seen.(i) then begin
        seen.(i) <- true;
        List.iter dfs (step i)
      end
    in
    dfs root;
    seen
  in
  let fwd = reach_from tg.LM.launch (fun i -> tg.LM.succs.(i)) in
  let bwd = reach_from tg.LM.capture (fun i -> tg.LM.preds.(i)) in
  Array.iteri
    (fun i k ->
      match k with
      | LM.Delay { fake = false; unit_id; delay } when not (fwd.(i) && bwd.(i)) ->
        emit
          (Rule.diag r_uncovered ~loc:(D.Timing_node i)
             "real delay node %d (unit %d, %.2f ns) lies on no launch-to-capture path" i
             unit_id delay)
      | _ -> ())
    tg.LM.kinds;
  List.rev !acc
