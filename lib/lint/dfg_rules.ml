module G = Dataflow.Graph
module K = Dataflow.Unit_kind
module D = Diagnostic

type stage = Pre_buffering | Post_buffering

let r_unconnected =
  {
    Rule.id = "dfg-unconnected-port";
    target = Rule.Dfg;
    severity = D.Error;
    doc = "every unit port must be wired to exactly one channel";
  }

let r_unreachable =
  {
    Rule.id = "dfg-unreachable-unit";
    target = Rule.Dfg;
    severity = D.Warning;
    doc = "every unit must be reachable from an entry or source unit";
  }

let r_comb_cycle =
  {
    Rule.id = "dfg-comb-cycle";
    target = Rule.Dfg;
    severity = D.Error;
    doc = "every cycle must contain at least one opaque buffer";
  }

let r_no_back_edge =
  {
    Rule.id = "dfg-no-back-edge";
    target = Rule.Dfg;
    severity = D.Warning;
    doc = "every cyclic SCC needs a marked back edge or a buffer to be breakable";
  }

let r_self_loop =
  {
    Rule.id = "dfg-self-loop";
    target = Rule.Dfg;
    severity = D.Error;
    doc = "a self-loop channel must carry an opaque buffer";
  }

let r_width =
  {
    Rule.id = "dfg-width-mismatch";
    target = Rule.Dfg;
    severity = D.Warning;
    doc = "no data input may be wider than its unit computes (silent truncation)";
  }

let rules =
  [ r_unconnected; r_unreachable; r_comb_cycle; r_no_back_edge; r_self_loop; r_width ]

let () = List.iter Rule.register rules

let unit_desc g u =
  let n = G.unit_node g u in
  if n.G.label = "" then Printf.sprintf "%s#%d" (K.name n.G.kind) u
  else Printf.sprintf "%s#%d (%s)" (K.name n.G.kind) u n.G.label

let opaque_buffered g cid =
  match G.buffer g cid with Some { G.transparent = false; _ } -> true | _ -> false

(* A standalone opaque buffer unit breaks combinational paths through
   itself just like a channel annotation does. *)
let opaque_unit g u =
  match (G.unit_node g u).G.kind with
  | K.Buffer { transparent = false; _ } -> true
  | _ -> false

let breaks_path g c = opaque_buffered g c.G.cid || opaque_unit g c.G.src

(* ---- dfg-unconnected-port ---- *)

let check_ports g acc =
  let acc = ref acc in
  G.iter_units g (fun n ->
      let scan dir arr =
        Array.iteri
          (fun port c ->
            if c = None then
              acc :=
                Rule.diag r_unconnected ~loc:(D.Unit n.G.uid) "%s: %s port %d is unconnected"
                  (unit_desc g n.G.uid) dir port
                :: !acc)
          arr
      in
      scan "input" n.G.ins;
      scan "output" n.G.outs);
  !acc

(* ---- dfg-unreachable-unit ---- *)

let check_reachability g acc =
  let n = G.n_units g in
  let seen = Array.make n false in
  let stack = ref [] in
  G.iter_units g (fun node ->
      if K.in_arity node.G.kind = 0 then begin
        seen.(node.G.uid) <- true;
        stack := node.G.uid :: !stack
      end);
  let rec walk () =
    match !stack with
    | [] -> ()
    | u :: rest ->
      stack := rest;
      List.iter
        (fun (_, w) ->
          if not seen.(w) then begin
            seen.(w) <- true;
            stack := w :: !stack
          end)
        (G.succs g u);
      walk ()
  in
  walk ();
  let acc = ref acc in
  for u = n - 1 downto 0 do
    if not seen.(u) then
      acc :=
        Rule.diag r_unreachable ~loc:(D.Unit u) "%s is unreachable from any entry/source unit"
          (unit_desc g u)
        :: !acc
  done;
  !acc

(* ---- cycle rules ----

   A combinational cycle exists iff the subgraph of channels without an
   opaque buffer has a cyclic SCC; unlike enumerating simple cycles this
   is exact and linear, so the check cannot be defeated by the cycle
   cap. Self-loops are reported channel-precisely by [dfg-self-loop], so
   SCCs here are only flagged when they span at least two units. *)

let sccs_filtered g ~keep =
  let n = G.n_units g in
  let adj = Array.make n [] in
  G.iter_channels g (fun c ->
      if keep c && c.G.src <> c.G.dst then adj.(c.G.src) <- c.G.dst :: adj.(c.G.src));
  (* iterative Tarjan *)
  let index = Array.make n (-1) and low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] and counter = ref 0 and comps = ref [] in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      let call = ref [ (root, ref adj.(root)) ] in
      index.(root) <- !counter;
      low.(root) <- !counter;
      incr counter;
      stack := root :: !stack;
      on_stack.(root) <- true;
      while !call <> [] do
        match !call with
        | [] -> ()
        | (v, rest) :: parents -> (
          match !rest with
          | w :: tl ->
            rest := tl;
            if index.(w) < 0 then begin
              index.(w) <- !counter;
              low.(w) <- !counter;
              incr counter;
              stack := w :: !stack;
              on_stack.(w) <- true;
              call := (w, ref adj.(w)) :: !call
            end
            else if on_stack.(w) then low.(v) <- min low.(v) low.(w)
          | [] ->
            if low.(v) = index.(v) then begin
              let rec pop acc =
                match !stack with
                | [] -> acc
                | u :: rest ->
                  stack := rest;
                  on_stack.(u) <- false;
                  if u = v then u :: acc else pop (u :: acc)
              in
              comps := pop [] :: !comps
            end;
            call := parents;
            (match parents with
            | (p, _) :: _ -> low.(p) <- min low.(p) low.(v)
            | [] -> ()))
      done
    end
  done;
  List.filter (fun comp -> List.length comp >= 2) !comps

let pp_members g comp =
  let shown = List.filteri (fun i _ -> i < 6) comp in
  String.concat ", " (List.map (unit_desc g) shown)
  ^ if List.length comp > 6 then Printf.sprintf ", … (%d units)" (List.length comp) else ""

let check_comb_cycles g acc =
  List.fold_left
    (fun acc comp ->
      Rule.diag r_comb_cycle ~loc:(D.Unit (List.hd comp))
        "cycle through {%s} has no opaque buffer on any channel" (pp_members g comp)
      :: acc)
    acc
    (sccs_filtered g ~keep:(fun c -> not (breaks_path g c)))

let check_back_edges g acc =
  (* pre-buffering: within each cyclic SCC of the full graph, some
     internal channel must be a marked back edge or already buffered *)
  let comps = sccs_filtered g ~keep:(fun _ -> true) in
  List.fold_left
    (fun acc comp ->
      let members = Hashtbl.create 8 in
      List.iter (fun u -> Hashtbl.replace members u ()) comp;
      let breakable = ref false in
      G.iter_channels g (fun c ->
          if
            Hashtbl.mem members c.G.src && Hashtbl.mem members c.G.dst
            && (c.G.back || breaks_path g c)
          then breakable := true);
      if !breakable then acc
      else
        Rule.diag r_no_back_edge ~loc:(D.Unit (List.hd comp))
          "cyclic SCC {%s} has no marked back edge and no buffer; the flow will fall back \
           to DFS back-edge classification"
          (pp_members g comp)
        :: acc)
    acc comps

let check_self_loops stage g acc =
  let acc = ref acc in
  G.iter_channels g (fun c ->
      if c.G.src = c.G.dst then begin
        let excused =
          opaque_buffered g c.G.cid || opaque_unit g c.G.src
          || (stage = Pre_buffering && c.G.back)
        in
        if not excused then
          acc :=
            Rule.diag r_self_loop ~loc:(D.Channel c.G.cid)
              "self-loop on %s has no opaque buffer" (unit_desc g c.G.src)
            :: !acc
      end);
  !acc

(* ---- dfg-width-mismatch ---- *)

let check_widths g acc =
  let acc = ref acc in
  let width_of cid = (G.channel g cid).G.width in
  let bad node fmt =
    Format.kasprintf
      (fun message ->
        acc :=
          Diagnostic.make ~rule:r_width.Rule.id ~severity:r_width.Rule.severity
            ~loc:(D.Unit node.G.uid) message
          :: !acc)
      fmt
  in
  (* Elaboration zero-extends narrower operands (a legitimate idiom, e.g.
     a 1-bit comparison result AND-ed with an int) but silently truncates
     anything wider than the consuming unit computes — that is the lossy
     case worth flagging. Comparisons are exempt: they consume full-width
     operands and deliberately produce one bit. *)
  G.iter_units g (fun node ->
      let in_w port = Option.map width_of node.G.ins.(port) in
      let truncates what port =
        match in_w port with
        | Some w when w > node.G.width ->
          bad node "%s: %s input %d has width %d, unit computes %d bits (truncated)"
            (unit_desc g node.G.uid) what port w node.G.width
        | _ -> ()
      in
      match node.G.kind with
      | K.Operator { op = Dataflow.Ops.Icmp _; _ } -> ()
      | K.Operator { op; _ } ->
        (* data operands only: Select's port 0 is the 1-bit condition *)
        let ports =
          match Dataflow.Ops.arity op with 3 -> [ 1; 2 ] | 2 -> [ 0; 1 ] | _ -> [ 0 ]
        in
        List.iter (truncates "operand") ports
      | K.Mux n ->
        for p = 1 to n do
          truncates "mux data" p
        done
      | K.Merge n ->
        for p = 0 to n - 1 do
          truncates "merge" p
        done
      | K.Branch -> truncates "branch data" 0
      | K.Buffer _ -> truncates "buffer" 0
      | _ -> ());
  !acc

let check ?(stage = Post_buffering) g =
  let acc = [] in
  let acc = check_ports g acc in
  let acc = check_reachability g acc in
  let acc =
    match stage with
    | Post_buffering -> check_comb_cycles g acc
    | Pre_buffering -> check_back_edges g acc
  in
  let acc = check_self_loops stage g acc in
  let acc = check_widths g acc in
  List.rev acc
