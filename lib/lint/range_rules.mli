(** Lint rules backed by the abstract-interpretation value analysis
    ({!Absint}): the [range-*] family plus the [equiv-narrow] gate on the
    narrowing rewrite.

    - [range-overflow-possible] (warning): an Add/Sub/Mul/Shl result can
      exceed the unit width and wraps modulo [2^w];
    - [range-dead-branch] (warning): a branch condition or mux selector is
      provably constant, so one side never fires;
    - [range-width-excess] (info): a unit is wider than its proven value
      envelope;
    - [range-analysis-diverged] (warning): the interpreter hit its
      evaluation budget and no range facts are available;
    - [equiv-narrow] (error): random-simulation mismatch between a graph
      and its narrowed rewrite.

    Interval-carrying findings put the printed abstract value under the
    ["interval"] key of {!Diagnostic.t.extra}. *)

val rules : Rule.info list

val check : ?result:Absint.Analyze.result -> Dataflow.Graph.t -> Diagnostic.t list
(** Runs the analysis when no [result] is supplied. *)

val check_narrowing :
  ?rounds:int ->
  ?seed:int ->
  original:Dataflow.Graph.t ->
  variant:Dataflow.Graph.t ->
  unit ->
  Diagnostic.t list
(** Random-simulation equivalence via {!Tv.Simdiff}; every mismatch is an
    [equiv-narrow] error. *)
