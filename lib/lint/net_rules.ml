module D = Diagnostic

let r_undriven =
  {
    Rule.id = "net-undriven";
    target = Rule.Netlist;
    severity = D.Error;
    doc = "every gate fanin must be driven";
  }

let r_dup_io =
  {
    Rule.id = "net-duplicate-io";
    target = Rule.Netlist;
    severity = D.Error;
    doc = "input/output names must be unique (multiply-driven named net)";
  }

let r_comb_cycle =
  {
    Rule.id = "net-comb-cycle";
    target = Rule.Netlist;
    severity = D.Error;
    doc = "the combinational gate graph must be acyclic";
  }

let r_owner =
  {
    Rule.id = "net-owner-invalid";
    target = Rule.Netlist;
    severity = D.Warning;
    doc = "every gate's owner label must name a unit of the graph (or -1)";
  }

let rules = [ r_undriven; r_dup_io; r_comb_cycle; r_owner ]

let () = List.iter Rule.register rules

let kind_name = function
  | Net.Input _ -> "input"
  | Net.Output _ -> "output"
  | Net.Const _ -> "const"
  | Net.Buf -> "buf"
  | Net.Not -> "not"
  | Net.And2 -> "and"
  | Net.Or2 -> "or"
  | Net.Xor2 -> "xor"
  | Net.Ff _ -> "ff"

let check g net =
  let acc = ref [] in
  let emit d = acc := d :: !acc in
  (* undriven fanins + invalid owners + duplicate IO names in one scan *)
  let io_names : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let n_units = Dataflow.Graph.n_units g in
  Net.iter net (fun gate ->
      Array.iteri
        (fun i f ->
          if f < 0 || f >= Net.n_gates net then
            emit
              (Rule.diag r_undriven ~loc:(D.Gate gate.Net.id) "%s gate %d: fanin %d is %s"
                 (kind_name gate.Net.kind) gate.Net.id i
                 (if f < 0 then "undriven" else "out of range")))
        gate.Net.fanins;
      if gate.Net.owner < -1 || gate.Net.owner >= n_units then
        emit
          (Rule.diag r_owner ~loc:(D.Gate gate.Net.id)
             "%s gate %d: owner %d is not a unit of %s" (kind_name gate.Net.kind) gate.Net.id
             gate.Net.owner (Dataflow.Graph.name g));
      match gate.Net.kind with
      | Net.Input nm | Net.Output nm -> (
        let key = (match gate.Net.kind with Net.Input _ -> "i:" | _ -> "o:") ^ nm in
        match Hashtbl.find_opt io_names key with
        | Some first ->
          emit
            (Rule.diag r_dup_io ~loc:(D.Gate gate.Net.id)
               "%s name %S already used by gate %d" (kind_name gate.Net.kind) nm first)
        | None -> Hashtbl.replace io_names key gate.Net.id)
      | _ -> ());
  (* combinational cycle: DFS over fanins, stopping at FFs (their D input
     is sampled at the clock edge, not combinationally) *)
  let n = Net.n_gates net in
  let state = Array.make n 0 (* 0 = unvisited, 1 = on path, 2 = done *) in
  let comb_fanins i =
    let gate = Net.gate net i in
    match gate.Net.kind with
    | Net.Ff _ -> [||] (* sequential boundary: the D input is sampled, not combinational *)
    | _ -> gate.Net.fanins
  in
  let reported = ref false in
  for root = 0 to n - 1 do
    if state.(root) = 0 && not !reported then begin
      let stack = ref [ (root, ref 0) ] in
      state.(root) <- 1;
      while !stack <> [] && not !reported do
        match !stack with
        | [] -> ()
        | (i, next) :: rest ->
          let fanins = comb_fanins i in
          if !next >= Array.length fanins then begin
            state.(i) <- 2;
            stack := rest
          end
          else begin
            let f = fanins.(!next) in
            incr next;
            if f >= 0 && f < n then
              if state.(f) = 1 then begin
                reported := true;
                emit
                  (Rule.diag r_comb_cycle ~loc:(D.Gate f)
                     "combinational cycle through %s gate %d"
                     (kind_name (Net.gate net f).Net.kind) f)
              end
              else if state.(f) = 0 then begin
                state.(f) <- 1;
                stack := (f, ref 0) :: !stack
              end
          end
      done
    end
  done;
  List.rev !acc
