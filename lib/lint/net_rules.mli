(** Lint rules over the elaborated gate-level netlist.

    - [net-undriven] (error): a gate fanin left unconnected ([-1]) — an
      undriven net.
    - [net-duplicate-io] (error): two inputs or two outputs share a
      name — a multiply-driven named net (the simulator and the
      testbench address IO by name).
    - [net-comb-cycle] (error): a combinational cycle (a path of
      non-flip-flop gates back to itself); [Net.sim_eval] would fail to
      stabilise on it.
    - [net-owner-invalid] (warning): a gate labelled with a dataflow
      unit id outside the graph — penalty attribution and LUT labelling
      would silently misbehave. *)

val rules : Rule.info list

val check : Dataflow.Graph.t -> Net.t -> Diagnostic.t list
