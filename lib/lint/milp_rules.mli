(** MILP solution-certificate rules.

    The simplex / branch-and-bound code is trusted nowhere: a returned
    solution is re-evaluated against every constraint row, bound and
    integrality requirement of the model it allegedly solves, and —
    independently of the LP encoding — against the clock-period target by
    re-propagating worst-case arrival times over the timing model's delay
    pairs with the chosen buffer set.

    - [milp-row-violated] (error): a constraint row the solution does not
      satisfy.
    - [milp-bound-violated] (error): a variable outside its bounds.
    - [milp-integrality] (error): a binary/integer variable with a
      fractional value.
    - [milp-cp-exceeded] (error): a register-to-register segment that the
      chosen buffers leave longer than the clock-period target even
      though buffering could have fixed it (an independent re-derivation,
      not a re-check of the LP rows).
    - [milp-unfixable-path] (info): segments longer than the target that
      no buffer placement can fix (delay accumulated strictly inside
      units or on a single unbreakable hop); the iterative flow tolerates
      and reports these.
    - [milp-solve-failed] (error): the solver reported infeasible /
      unbounded (or failed outright) on a model that should always admit
      the buffer-everywhere solution. *)

val rules : Rule.info list

val check :
  cp_target:float ->
  buffered:Dataflow.Graph.channel_id list ->
  Timing.Model.t ->
  Milp.Lp.t ->
  float array ->
  Diagnostic.t list
(** [check ~cp_target ~buffered model lp x] audits solution [x] of [lp];
    [buffered] is the full set of opaque-buffered channels the solution
    implies (pre-existing plus newly placed). *)

val solve_failure : string -> Diagnostic.t
(** A [milp-solve-failed] finding carrying the solver's error message. *)
