(* Quickstart: the paper's Figure 1/2 phenomenon on a hand-built circuit.

   We build a small dataflow graph with a fork, a constant shift, an
   adder and a branch; synthesise it to LUTs; and show that
   (a) the shifter disappears into downstream logic (its penalty is
       high, so the optimiser avoids buffering its output), and
   (b) the mapping-aware timing model sees far smaller delays than the
       per-unit pre-characterised model.

   Run with: dune exec examples/quickstart.exe *)

module G = Dataflow.Graph
module K = Dataflow.Unit_kind

let () =
  (* ---- build the dataflow graph ---- *)
  let g = G.create "quickstart" in
  let entry = G.add_unit g ~width:0 K.Entry in
  let ef = G.add_unit g ~width:0 (K.Fork 2) in
  let v = G.add_unit g ~width:8 ~label:"input" (K.Const 5) in
  let amt = G.add_unit g ~width:8 ~label:"amount" (K.Const 1) in
  let vf = G.add_unit g ~width:8 ~label:"F" (K.Fork 2) in
  let shl = G.add_unit g ~width:8 ~label:"shift" (K.operator Dataflow.Ops.Shl) in
  let add = G.add_unit g ~width:8 ~label:"add" (K.operator Dataflow.Ops.Add) in
  let exit_ = G.add_unit g ~width:8 K.Exit in
  ignore (G.connect g ~src:entry ~src_port:0 ~dst:ef ~dst_port:0);
  ignore (G.connect g ~src:ef ~src_port:0 ~dst:v ~dst_port:0);
  ignore (G.connect g ~src:ef ~src_port:1 ~dst:amt ~dst_port:0);
  let c_input = G.connect g ~src:v ~src_port:0 ~dst:vf ~dst_port:0 in
  let c_fork_shift = G.connect g ~src:vf ~src_port:0 ~dst:shl ~dst_port:0 in
  ignore (G.connect g ~src:amt ~src_port:0 ~dst:shl ~dst_port:1);
  let c_shift_add = G.connect g ~src:shl ~src_port:0 ~dst:add ~dst_port:0 in
  ignore (G.connect g ~src:vf ~src_port:1 ~dst:add ~dst_port:1);
  ignore (G.connect g ~src:add ~src_port:0 ~dst:exit_ ~dst_port:0);
  (* register the input so the datapath does not fold to a constant *)
  G.set_buffer g c_input (Some { G.transparent = false; slots = 2 });

  (* ---- synthesise and map ---- *)
  let net = Elaborate.run g in
  let synth = Techmap.Synth.run net in
  let lg = Techmap.Mapper.run synth in
  Printf.printf "netlist: %d gates, %d FFs\n" (Net.n_gates net) (Net.count_ffs net);
  Printf.printf "mapped:  %d LUTs, %d logic levels\n" (Techmap.Lutgraph.n_luts lg)
    lg.Techmap.Lutgraph.max_level;
  Printf.printf "LUTs labelled 'shift': %d  (its constant shift is absorbed downstream)\n"
    (List.length (Techmap.Lutgraph.luts_of_unit lg shl));

  (* ---- the mapping-aware timing model ---- *)
  let model = Timing.Mapping_aware.build g ~net lg in
  Printf.printf "\ntiming model: %d delay nodes, %d fake nodes, %d pairs\n"
    model.Timing.Model.delay_nodes model.Timing.Model.fake_nodes
    (List.length model.Timing.Model.pairs);
  Printf.printf "penalty(F -> shift)    = %.2f\n" model.Timing.Model.penalty.(c_fork_shift);
  Printf.printf "penalty(shift -> add)  = %.2f   <- buffering here would break the shared LUT\n"
    model.Timing.Model.penalty.(c_shift_add);

  (* ---- compare with the pre-characterised model ---- *)
  let pre = Timing.Precharacterized.build g in
  let worst m =
    List.fold_left (fun acc p -> max acc p.Timing.Model.p_delay) 0. m.Timing.Model.pairs
  in
  Printf.printf "\nworst modelled path: mapping-aware %.2f ns vs pre-characterised %.2f ns\n"
    (worst model) (worst pre);

  (* ---- let the MILP choose buffers under a tight period ---- *)
  let cfg = { Buffering.Formulation.default_config with cp_target = 1.0 } in
  match Buffering.Formulation.solve cfg g model (Buffering.Cfdfc.extract g) with
  | Ok p ->
    Printf.printf "\nMILP (CP target %.1f ns): %d new buffers on channels [%s]\n"
      cfg.Buffering.Formulation.cp_target
      (List.length p.Buffering.Formulation.new_buffers)
      (String.concat "; "
         (List.map
            (fun c ->
              let ch = G.channel g c in
              Printf.sprintf "%s->%s" (G.unit_node g ch.G.src).G.label
                (G.unit_node g ch.G.dst).G.label)
            p.Buffering.Formulation.new_buffers));
    if p.Buffering.Formulation.unfixable_paths > 0 then
      Printf.printf
        "(%d register-to-register paths are internal to a unit and no buffer can shorten them)\n"
        p.Buffering.Formulation.unfixable_paths;
    if List.mem c_shift_add p.Buffering.Formulation.new_buffers then
      print_endline "NOTE: the high-penalty channel was buffered anyway (period left no choice)"
    else print_endline "the high-penalty shift->add channel was spared, as Eq. 3 intends"
  | Error e -> Printf.printf "MILP: %s\n" e
