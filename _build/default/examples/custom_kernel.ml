(* Bring your own kernel: write mini-C, compile it to an elastic
   circuit, and check the circuit against the reference interpreter.

   Run with: dune exec examples/custom_kernel.exe *)

let source =
  {|
int dot_product(int a[32], int b[32]) {
  int acc = 0;
  for (int i = 0; i < 32; i = i + 1) {
    acc = acc + a[i] * b[i];
  }
  return acc;
}
|}

let () =
  let func = Hls.Parser.parse source in
  Printf.printf "parsed kernel '%s' with %d parameters\n" func.Hls.Ast.fname
    (List.length func.Hls.Ast.params);

  let g = Hls.Compile.compile func in
  Printf.printf "circuit: %d units, %d channels\n" (Dataflow.Graph.n_units g)
    (Dataflow.Graph.n_channels g);

  (* deterministic input data *)
  let rng = Support.Rng.create 2024 in
  let a = Array.init 32 (fun _ -> Support.Rng.int rng 16) in
  let b = Array.init 32 (fun _ -> Support.Rng.int rng 16) in
  let memories = [ ("a", Array.copy a); ("b", Array.copy b) ] in

  let expected = Hls.Interp.run func ~args:[] ~memories:[ ("a", a); ("b", b) ] in

  (* make the circuit realisable and simulate it *)
  let _ = Core.Flow.seed_back_edges g in
  let sim = Sim.Elastic.run ~memories g in
  Printf.printf "interpreter: %d\ncircuit:     %s  (in %d cycles)\n" expected
    (match sim.Sim.Elastic.exit_value with Some v -> string_of_int v | None -> "-")
    sim.Sim.Elastic.cycles;

  (* optimise it and simulate again: same value, better schedule *)
  let outcome = Core.Flow.iterative g in
  let sim2 = Sim.Elastic.run ~memories:[ ("a", Array.copy a); ("b", Array.copy b) ] outcome.Core.Flow.graph in
  Printf.printf "after buffering: %s in %d cycles with %d buffers (levels %d)\n"
    (match sim2.Sim.Elastic.exit_value with Some v -> string_of_int v | None -> "-")
    sim2.Sim.Elastic.cycles outcome.Core.Flow.total_buffers outcome.Core.Flow.final_levels;

  (* export for inspection *)
  let oc = open_out "dot_product.dot" in
  Dataflow.Dot.to_channel oc outcome.Core.Flow.graph;
  close_out oc;
  print_endline "wrote dot_product.dot"
