(* Export the artefacts a hardware engineer would inspect: the dataflow
   graph (Graphviz), the mapped circuit (BLIF, as the paper's
   ODIN-II/ABC/VPR hand-offs use), and a simulation waveform (VCD).

   Run with: dune exec examples/export_artifacts.exe
   Then open gsumif.vcd in GTKWave, or feed gsumif.blif to ABC/VPR. *)

let () =
  let kernel = Hls.Kernels.by_name "gsumif" in
  let outcome = Core.Flow.iterative (Hls.Kernels.graph kernel) in
  let g = outcome.Core.Flow.graph in

  (* Graphviz of the buffered dataflow circuit *)
  Out_channel.with_open_text "gsumif.dot" (fun oc -> Dataflow.Dot.to_channel oc g);
  Printf.printf "wrote gsumif.dot (%d units, %d buffers)\n" (Dataflow.Graph.n_units g)
    outcome.Core.Flow.total_buffers;

  (* BLIF of the mapped LUT circuit, with per-LUT truth tables *)
  let net = Elaborate.run g in
  let synth = Techmap.Synth.run net in
  let lg = Techmap.Mapper.run synth in
  Out_channel.with_open_text "gsumif.blif" (fun oc -> Techmap.Blif.to_channel oc net lg);
  Printf.printf "wrote gsumif.blif (%d LUTs, %d FFs, %d levels)\n" (Techmap.Lutgraph.n_luts lg)
    (Net.count_ffs net) lg.Techmap.Lutgraph.max_level;

  (* the mapping is checked against the AIG before export *)
  assert (Techmap.Truth.equivalent ~vectors:128 lg);
  print_endline "post-mapping equivalence check passed";

  (* VCD waveform of the kernel execution *)
  let r =
    Out_channel.with_open_text "gsumif.vcd" (fun oc ->
        Sim.Elastic.run ~memories:(kernel.Hls.Kernels.mems ()) ~vcd:oc g)
  in
  Printf.printf "wrote gsumif.vcd (%d cycles, result %s)\n" r.Sim.Elastic.cycles
    (match r.Sim.Elastic.exit_value with Some v -> string_of_int v | None -> "-")
