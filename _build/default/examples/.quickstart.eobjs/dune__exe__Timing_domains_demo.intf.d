examples/timing_domains_demo.mli:
