examples/timing_domains_demo.ml: Array Core Dataflow Elaborate Hashtbl Hls List Net Option Printf Techmap Timing
