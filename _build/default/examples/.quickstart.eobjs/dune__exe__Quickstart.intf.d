examples/quickstart.mli:
