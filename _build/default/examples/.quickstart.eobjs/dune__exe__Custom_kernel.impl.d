examples/custom_kernel.ml: Array Core Dataflow Hls List Printf Sim Support
