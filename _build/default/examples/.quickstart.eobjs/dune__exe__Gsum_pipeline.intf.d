examples/gsum_pipeline.mli:
