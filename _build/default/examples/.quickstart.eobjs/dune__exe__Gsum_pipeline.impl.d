examples/gsum_pipeline.ml: Core Dataflow Elaborate Hls List Placeroute Printf Sim Techmap
