examples/quickstart.ml: Array Buffering Dataflow Elaborate List Net Printf String Techmap Timing
