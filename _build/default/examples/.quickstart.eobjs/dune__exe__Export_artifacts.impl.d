examples/export_artifacts.ml: Core Dataflow Elaborate Hls Net Out_channel Printf Sim Techmap
