examples/export_artifacts.mli:
