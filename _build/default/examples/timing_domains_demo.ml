(* Timing domains (§IV-D): the data / valid / ready signal classes of an
   elastic circuit, where they interact, and how the timing model routes
   cross-domain LUT edges through interaction units.

   Run with: dune exec examples/timing_domains_demo.exe *)

module G = Dataflow.Graph

let () =
  let kernel = Hls.Kernels.by_name "gsumif" in
  let g = Hls.Kernels.graph kernel in
  let _ = Core.Flow.seed_back_edges g in
  let net = Elaborate.run g in

  (* gate census per domain *)
  let data = ref 0 and valid = ref 0 and ready = ref 0 and mixed = ref 0 in
  Net.iter net (fun gate ->
      match gate.Net.dom with
      | Net.Data -> incr data
      | Net.Valid -> incr valid
      | Net.Ready -> incr ready
      | Net.Mixed -> incr mixed);
  Printf.printf "gates by timing domain: data=%d valid=%d ready=%d mixed=%d\n" !data !valid
    !ready !mixed;

  (* where the domains meet *)
  let ia = Elaborate.interaction_units g in
  Printf.printf "domain-interaction units (%d):\n" (List.length ia);
  List.iter
    (fun u -> Printf.printf "  %s\n" (G.unit_node g u).G.label)
    (List.filteri (fun i _ -> i < 12) ia);
  if List.length ia > 12 then Printf.printf "  ... and %d more\n" (List.length ia - 12);

  (* the mapped LUTs inherit the domains of their cones *)
  let synth = Techmap.Synth.run net in
  let lg = Techmap.Mapper.run synth in
  let by_dom = Hashtbl.create 4 in
  Array.iter
    (fun l ->
      let d = l.Techmap.Lutgraph.dom in
      Hashtbl.replace by_dom d (1 + Option.value (Hashtbl.find_opt by_dom d) ~default:0))
    lg.Techmap.Lutgraph.luts;
  let show d name =
    Printf.printf "LUTs in %-6s domain: %d\n" name (Option.value (Hashtbl.find_opt by_dom d) ~default:0)
  in
  show Net.Data "data";
  show Net.Valid "valid";
  show Net.Ready "ready";
  show Net.Mixed "mixed";

  (* the model contains both forward and backward (ready) path terminals *)
  let model = Timing.Mapping_aware.build g ~net lg in
  let fwd = ref 0 and bwd = ref 0 in
  List.iter
    (fun p ->
      (match p.Timing.Model.p_src with Timing.Model.T_chan_bwd _ -> incr bwd | _ -> ());
      match p.Timing.Model.p_dst with
      | Timing.Model.T_chan_fwd _ -> incr fwd
      | _ -> ())
    model.Timing.Model.pairs;
  Printf.printf "timing pairs touching forward crossings: %d, backward (ready) crossings: %d\n"
    !fwd !bwd;
  Printf.printf "every buffer decision therefore constrains all three domains at once\n"
