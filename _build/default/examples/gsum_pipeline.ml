(* The full paper pipeline on one kernel: C source -> dataflow circuit ->
   iterative mapping-aware buffering -> place & route -> simulation.

   Run with: dune exec examples/gsum_pipeline.exe *)

let () =
  let kernel = Hls.Kernels.by_name "gsum" in
  print_endline "=== kernel source ===";
  print_endline kernel.Hls.Kernels.source;

  let g = Hls.Kernels.graph kernel in
  Printf.printf "compiled: %d units, %d channels, %d loop back edges\n\n"
    (Dataflow.Graph.n_units g) (Dataflow.Graph.n_channels g)
    (List.length (Dataflow.Graph.marked_back_edges g));

  print_endline "=== iterative mapping-aware flow (Figure 4) ===";
  let outcome = Core.Flow.iterative g in
  List.iter
    (fun (it : Core.Flow.iteration) ->
      Printf.printf "iteration %d: %d buffers proposed, achieved %d levels\n"
        it.Core.Flow.it_index it.Core.Flow.proposed_buffers it.Core.Flow.achieved_levels)
    outcome.Core.Flow.iterations;
  Printf.printf "target met: %b with %d opaque buffers\n\n" outcome.Core.Flow.met_target
    outcome.Core.Flow.total_buffers;

  print_endline "=== place & route + simulation ===";
  let final = outcome.Core.Flow.graph in
  let net = Elaborate.run final in
  let synth = Techmap.Synth.run net in
  let lg = Techmap.Mapper.run synth in
  let pr = Placeroute.Sta.analyze ~seed:7 net lg in
  Printf.printf "CP %.2f ns over %d levels; %d LUTs, %d FFs\n" pr.Placeroute.Sta.cp
    pr.Placeroute.Sta.logic_levels pr.Placeroute.Sta.n_luts pr.Placeroute.Sta.n_ffs;
  let mems = kernel.Hls.Kernels.mems () in
  let sim = Sim.Elastic.run ~memories:mems final in
  let reference = Hls.Kernels.reference kernel in
  Printf.printf "simulated %d cycles -> result %s (reference %d)\n" sim.Sim.Elastic.cycles
    (match sim.Sim.Elastic.exit_value with Some v -> string_of_int v | None -> "-")
    reference;
  Printf.printf "execution time: %.0f ns\n"
    (pr.Placeroute.Sta.cp *. float_of_int sim.Sim.Elastic.cycles)
