module G = Dataflow.Graph

(* replicate the generator from test_endtoend *)
let gen_program seed =
  let rng = Support.Rng.create seed in
  let vars = [ "x"; "y"; "z" ] in
  let var () = List.nth vars (Support.Rng.int rng 3) in
  let rec expr depth =
    if depth = 0 then
      match Support.Rng.int rng 3 with
      | 0 -> Hls.Ast.Int (Support.Rng.int rng 32)
      | 1 -> Hls.Ast.Var (var ())
      | _ -> Hls.Ast.Load ("m", Hls.Ast.Binop (Hls.Ast.And, Hls.Ast.Var (var ()), Hls.Ast.Int 15))
    else
      let op =
        match Support.Rng.int rng 7 with
        | 0 -> Hls.Ast.Add | 1 -> Hls.Ast.Sub | 2 -> Hls.Ast.Mul
        | 3 -> Hls.Ast.And | 4 -> Hls.Ast.Or | 5 -> Hls.Ast.Xor
        | _ -> Hls.Ast.Lshr
      in
      Hls.Ast.Binop (op, expr (depth - 1), expr (depth - 1))
  in
  let cond () =
    let op =
      match Support.Rng.int rng 4 with
      | 0 -> Hls.Ast.Lt | 1 -> Hls.Ast.Le | 2 -> Hls.Ast.Eq | _ -> Hls.Ast.Gt
    in
    Hls.Ast.Binop (op, expr 1, expr 1)
  in
  let rec stmt depth =
    match if depth = 0 then Support.Rng.int rng 2 else Support.Rng.int rng 4 with
    | 0 -> Hls.Ast.Assign (var (), expr 2)
    | 1 -> Hls.Ast.Store ("m", Hls.Ast.Binop (Hls.Ast.And, expr 1, Hls.Ast.Int 15), expr 1)
    | 2 -> Hls.Ast.If (cond (), [ stmt (depth - 1) ], [ stmt (depth - 1) ])
    | _ ->
      let i = Printf.sprintf "i%d" (Support.Rng.int rng 1000) in
      let bound = 2 + Support.Rng.int rng 5 in
      Hls.Ast.For
        ( Hls.Ast.Decl (i, Hls.Ast.Int 0),
          Hls.Ast.Binop (Hls.Ast.Lt, Hls.Ast.Var i, Hls.Ast.Int bound),
          Hls.Ast.Assign (i, Hls.Ast.Binop (Hls.Ast.Add, Hls.Ast.Var i, Hls.Ast.Int 1)),
          [ stmt (depth - 1) ] )
  in
  let n_stmts = 2 + Support.Rng.int rng 3 in
  let body =
    [
      Hls.Ast.Decl ("x", Hls.Ast.Int (Support.Rng.int rng 16));
      Hls.Ast.Decl ("y", Hls.Ast.Int (Support.Rng.int rng 16));
      Hls.Ast.Decl ("z", Hls.Ast.Int (Support.Rng.int rng 16));
    ]
    @ List.init n_stmts (fun _ -> stmt 2)
    @ [ Hls.Ast.Return
          (Hls.Ast.Binop (Hls.Ast.Add, Hls.Ast.Var "x",
             Hls.Ast.Binop (Hls.Ast.Add, Hls.Ast.Var "y", Hls.Ast.Var "z"))) ]
  in
  { Hls.Ast.fname = "rand"; params = [ Hls.Ast.Array ("m", 16) ]; body }

let mem_data seed = Array.init 16 (fun i -> (seed + (i * 37)) land 255)

let () =
  let seed = int_of_string Sys.argv.(1) in
  let f = gen_program seed in
  List.iter (Format.printf "%a" Hls.Ast.pp_stmt) f.Hls.Ast.body;
  let expected = Hls.Interp.run f ~args:[] ~memories:[ ("m", mem_data seed) ] in
  let g = Hls.Compile.compile f in
  let _ = Core.Flow.seed_back_edges g in
  let r =
    Sim.Elastic.run ~config:{ Sim.Elastic.max_cycles = 200_000; deadlock_window = 1_000 }
      ~memories:[ ("m", mem_data seed) ] ~dump_deadlock:stdout g
  in
  Printf.printf "expected=%d got=%s finished=%b deadlocked=%b cycles=%d\n" expected
    (match r.Sim.Elastic.exit_value with Some v -> string_of_int v | None -> "-")
    r.Sim.Elastic.finished r.Sim.Elastic.deadlocked r.Sim.Elastic.cycles
