module G = Dataflow.Graph
module LM = Timing.Lut_map

let () =
  let k = Hls.Kernels.by_name "gsum" in
  let g = Hls.Kernels.graph k in
  let _ = Core.Flow.seed_back_edges g in
  let net = Elaborate.run g in
  let synth = Techmap.Synth.run net in
  let lg = Techmap.Mapper.run synth in
  let tg = LM.build g ~net lg in
  let n = Array.length tg.LM.kinds in
  Printf.printf "nodes=%d\n" n;
  (* find a cycle with DFS *)
  let color = Array.make n 0 in
  let parent = Array.make n (-1) in
  let cyc = ref None in
  let rec dfs u =
    color.(u) <- 1;
    List.iter
      (fun v ->
        if !cyc = None then begin
          if color.(v) = 1 then cyc := Some (u, v)
          else if color.(v) = 0 then begin
            parent.(v) <- u;
            dfs v
          end
        end)
      tg.LM.succs.(u);
    if color.(u) = 1 then color.(u) <- 2
  in
  for u = 0 to n - 1 do
    if color.(u) = 0 && !cyc = None then dfs u
  done;
  match !cyc with
  | None -> Printf.printf "acyclic!\n"
  | Some (u, v) ->
    let pp i =
      match tg.LM.kinds.(i) with
      | LM.Delay { unit_id; delay; fake } ->
        Printf.sprintf "n%d Delay(unit=%s, d=%.1f, fake=%b)" i (G.unit_node g unit_id).G.label delay fake
      | LM.Launch -> Printf.sprintf "n%d Launch" i
      | LM.Capture -> Printf.sprintf "n%d Capture" i
      | LM.Cross_fwd c ->
        let ch = G.channel g c in
        Printf.sprintf "n%d Fwd(c%d %s->%s)" i c (G.unit_node g ch.G.src).G.label (G.unit_node g ch.G.dst).G.label
      | LM.Cross_bwd c ->
        let ch = G.channel g c in
        Printf.sprintf "n%d Bwd(c%d %s->%s)" i c (G.unit_node g ch.G.src).G.label (G.unit_node g ch.G.dst).G.label
    in
    (* walk back from u to v via parents *)
    Printf.printf "cycle closing edge: %s -> %s\n" (pp u) (pp v);
    let rec walk i =
      Printf.printf "  %s\n" (pp i);
      if i <> v && parent.(i) >= 0 then walk parent.(i)
    in
    walk u
