module G = Dataflow.Graph

let () =
  let name = Sys.argv.(1) in
  let slots = int_of_string Sys.argv.(2) in
  let k = Hls.Kernels.by_name name in
  let g = Hls.Kernels.graph k in
  List.iter (fun c -> G.set_buffer g c (Some { G.transparent = false; slots })) (G.marked_back_edges g);
  let mems = k.Hls.Kernels.mems () in
  let t0 = Unix.gettimeofday () in
  let r = Sim.Elastic.run ~config:{ Sim.Elastic.max_cycles = 200_000; deadlock_window = 400 } ~memories:mems g in
  let expected = Hls.Kernels.reference k in
  Printf.printf "%s slots=%d: finished=%b deadlocked=%b cycles=%d value=%s expected=%d (%.2fs)\n%!"
    name slots r.Sim.Elastic.finished r.Sim.Elastic.deadlocked r.Sim.Elastic.cycles
    (match r.Sim.Elastic.exit_value with Some v -> string_of_int v | None -> "-") expected
    (Unix.gettimeofday () -. t0)
