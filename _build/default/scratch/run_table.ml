let () =
  let rows =
    List.map
      (fun k ->
        let t0 = Unix.gettimeofday () in
        let row = Core.Experiment.run_kernel k in
        Printf.eprintf "[%s done in %.0fs]\n%!" k.Hls.Kernels.name (Unix.gettimeofday () -. t0);
        row)
      Hls.Kernels.all
  in
  Core.Report.table1 Format.std_formatter rows;
  Format.print_newline ();
  Core.Report.figure5 Format.std_formatter rows;
  Format.print_newline ();
  Core.Report.iterations Format.std_formatter rows
