module G = Dataflow.Graph

let () =
  let g, _ = Fixtures_copy.loop () in
  let net = Elaborate.run g in
  Printf.printf "gates=%d ffs=%d\n" (Net.n_gates net) (Net.count_ffs net);
  let sim = Net.sim_create net in
  List.iter
    (fun id ->
      match (Net.gate net id).Net.kind with
      | Net.Input nm -> Net.sim_set_input sim nm true
      | _ -> ())
    (Net.inputs net);
  let outs = List.filter_map (fun id -> match (Net.gate net id).Net.kind with Net.Output nm -> Some (nm, id) | _ -> None) (Net.outputs net) in
  for cycle = 0 to 24 do
    Net.sim_eval sim;
    let vals = List.map (fun (nm, id) -> Printf.sprintf "%s=%b" nm (Net.sim_get sim id)) outs in
    Printf.printf "cycle %2d: %s\n" cycle (String.concat " " vals);
    Net.sim_step sim
  done
