module G = Dataflow.Graph

let () =
  let src = In_channel.input_all In_channel.stdin in
  let f = Hls.Parser.parse src in
  let mem = Array.init 16 (fun i -> (i * 37) land 255) in
  let expected = Hls.Interp.run f ~args:[] ~memories:[ ("m", Array.copy mem) ] in
  let g = Hls.Compile.compile f in
  let _ = Core.Flow.seed_back_edges g in
  let r =
    Sim.Elastic.run ~config:{ Sim.Elastic.max_cycles = 100_000; deadlock_window = 500 }
      ~memories:[ ("m", Array.copy mem) ] ~dump_deadlock:stdout g
  in
  Printf.printf "expected=%d got=%s finished=%b deadlocked=%b cycles=%d\n" expected
    (match r.Sim.Elastic.exit_value with Some v -> string_of_int v | None -> "-")
    r.Sim.Elastic.finished r.Sim.Elastic.deadlocked r.Sim.Elastic.cycles
