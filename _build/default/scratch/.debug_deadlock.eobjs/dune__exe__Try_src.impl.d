scratch/try_src.ml: Array Core Dataflow Hls In_channel Printf Sim
