scratch/try_src.mli:
