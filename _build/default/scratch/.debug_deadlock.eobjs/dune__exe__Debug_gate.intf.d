scratch/debug_gate.mli:
