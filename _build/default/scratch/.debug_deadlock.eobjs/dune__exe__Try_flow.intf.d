scratch/try_flow.mli:
