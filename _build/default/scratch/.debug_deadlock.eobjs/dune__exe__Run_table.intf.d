scratch/run_table.mli:
