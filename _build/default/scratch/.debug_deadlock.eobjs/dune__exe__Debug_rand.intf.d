scratch/debug_rand.mli:
