scratch/try_flow.ml: Array Core Format Hls Printf Sys Unix
