scratch/fixtures_copy.ml: Dataflow
