scratch/debug_rand.ml: Array Core Dataflow Format Hls List Printf Sim Support Sys
