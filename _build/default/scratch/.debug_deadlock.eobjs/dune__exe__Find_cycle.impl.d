scratch/find_cycle.ml: Array Core Dataflow Elaborate Hls List Printf Techmap Timing
