scratch/debug_deadlock.ml: Array Dataflow Hls List Printf Sim Sys Unix
