scratch/debug_deadlock.mli:
