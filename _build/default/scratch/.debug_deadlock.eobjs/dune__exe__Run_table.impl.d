scratch/run_table.ml: Core Format Hls List Printf Unix
