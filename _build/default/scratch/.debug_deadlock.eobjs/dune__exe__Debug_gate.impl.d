scratch/debug_gate.ml: Dataflow Elaborate Fixtures_copy List Net Printf String
