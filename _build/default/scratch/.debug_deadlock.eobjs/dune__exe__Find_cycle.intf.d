scratch/find_cycle.mli:
