let () =
  let name = Sys.argv.(1) in
  let k = Hls.Kernels.by_name name in
  let t0 = Unix.gettimeofday () in
  let row = Core.Experiment.run_kernel k in
  Core.Report.table1 Format.std_formatter [ row ];
  Core.Report.iterations Format.std_formatter [ row ];
  Printf.printf "(total %.1fs)\n" (Unix.gettimeofday () -. t0)
