module G = Dataflow.Graph

let node_delay kinds n =
  match kinds.(n) with Lut_map.Delay { delay; _ } -> delay | _ -> 0.

let is_stop kinds n =
  match kinds.(n) with
  | Lut_map.Cross_fwd _ | Lut_map.Cross_bwd _ | Lut_map.Capture -> true
  | Lut_map.Delay _ | Lut_map.Launch -> false

let terminal_of kinds n =
  match kinds.(n) with
  | Lut_map.Launch | Lut_map.Capture -> Model.T_reg
  | Lut_map.Cross_fwd c -> Model.T_chan_fwd c
  | Lut_map.Cross_bwd c -> Model.T_chan_bwd c
  | Lut_map.Delay _ -> invalid_arg "terminal_of: delay node"

let topo_order (tg : Lut_map.t) =
  let n = Array.length tg.Lut_map.kinds in
  let indeg = Array.make n 0 in
  Array.iteri (fun _ succs -> List.iter (fun d -> indeg.(d) <- indeg.(d) + 1) succs) tg.Lut_map.succs;
  let q = Queue.create () in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then Queue.add i q
  done;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    incr count;
    order := u :: !order;
    List.iter
      (fun d ->
        indeg.(d) <- indeg.(d) - 1;
        if indeg.(d) = 0 then Queue.add d q)
      tg.Lut_map.succs.(u)
  done;
  if !count <> n then failwith "Generate.run: cyclic timing graph (unbuffered combinational cycle)";
  Array.of_list (List.rev !order)

let run (tg : Lut_map.t) g =
  let kinds = tg.Lut_map.kinds in
  let n = Array.length kinds in
  let order = topo_order tg in
  (* Sources are terminal CLASSES: the merged register launch, and every
     (channel, direction) crossing class — cross nodes are private per
     LUT edge, so a class seeds all its member nodes at once. *)
  let members : (Model.terminal, int list) Hashtbl.t = Hashtbl.create 64 in
  let note term node =
    Hashtbl.replace members term (node :: Option.value (Hashtbl.find_opt members term) ~default:[])
  in
  note Model.T_reg tg.Lut_map.launch;
  Array.iteri
    (fun i k ->
      match k with
      | Lut_map.Cross_fwd c -> note (Model.T_chan_fwd c) i
      | Lut_map.Cross_bwd c -> note (Model.T_chan_bwd c) i
      | _ -> ())
    kinds;
  let neg = neg_infinity in
  let dist = Array.make n neg in
  let pairs = ref [] in
  Hashtbl.iter
    (fun src_term seeds ->
      Array.fill dist 0 n neg;
      List.iter (fun s -> dist.(s) <- 0.) seeds;
      let seed_set = Hashtbl.create 8 in
      List.iter (fun s -> Hashtbl.replace seed_set s ()) seeds;
      Array.iter
        (fun u ->
          if dist.(u) > neg && ((not (is_stop kinds u)) || Hashtbl.mem seed_set u) then
            List.iter
              (fun v ->
                let cand = dist.(u) +. node_delay kinds v in
                if cand > dist.(v) then dist.(v) <- cand)
              tg.Lut_map.succs.(u))
        order;
      (* collect the best distance per destination class *)
      let best : (Model.terminal, float) Hashtbl.t = Hashtbl.create 16 in
      for t = 0 to n - 1 do
        if dist.(t) > neg && (not (Hashtbl.mem seed_set t)) && is_stop kinds t then begin
          let term = terminal_of kinds t in
          let cur = Option.value (Hashtbl.find_opt best term) ~default:neg in
          if dist.(t) > cur then Hashtbl.replace best term dist.(t)
        end
      done;
      Hashtbl.iter
        (fun dst_term d ->
          pairs := { Model.p_src = src_term; p_dst = dst_term; p_delay = d } :: !pairs)
        best)
    members;
  let fixed =
    List.fold_left
      (fun acc p ->
        match (p.Model.p_src, p.Model.p_dst) with
        | Model.T_reg, Model.T_reg -> max acc p.Model.p_delay
        | _ -> acc)
      0. !pairs
  in
  (* ---- penalties (Eq. 2), on logically deduplicated fake nodes ---- *)
  let n_chan = G.n_channels g in
  (* distinct (unit, channel, dir) fake keys, and real LUT counts *)
  let fake_keys = Hashtbl.create 64 in
  let real_per_unit = Hashtbl.create 32 in
  Array.iteri
    (fun i k ->
      match k with
      | Lut_map.Delay { unit_id; fake = false; _ } ->
        Hashtbl.replace real_per_unit unit_id
          (1 + Option.value (Hashtbl.find_opt real_per_unit unit_id) ~default:0)
      | Lut_map.Delay { unit_id; fake = true; _ } ->
        List.iter
          (fun v ->
            match kinds.(v) with
            | Lut_map.Cross_fwd c -> Hashtbl.replace fake_keys (unit_id, c, false) ()
            | _ -> ())
          tg.Lut_map.succs.(i);
        List.iter
          (fun v ->
            match kinds.(v) with
            | Lut_map.Cross_bwd c -> Hashtbl.replace fake_keys (unit_id, c, true) ()
            | _ -> ())
          tg.Lut_map.preds.(i)
      | _ -> ())
    kinds;
  let fakes_per_unit = Hashtbl.create 32 in
  let fakes_per_chan = Array.make n_chan 0 in
  Hashtbl.iter
    (fun (u, c, _) () ->
      Hashtbl.replace fakes_per_unit u (1 + Option.value (Hashtbl.find_opt fakes_per_unit u) ~default:0);
      if (G.channel g c).G.src = u then fakes_per_chan.(c) <- fakes_per_chan.(c) + 1)
    fake_keys;
  let penalty =
    Array.init n_chan (fun c ->
        let u = (G.channel g c).G.src in
        let total =
          Option.value (Hashtbl.find_opt real_per_unit u) ~default:0
          + Option.value (Hashtbl.find_opt fakes_per_unit u) ~default:0
        in
        if total = 0 then 0. else float_of_int fakes_per_chan.(c) /. float_of_int total)
  in
  {
    Model.pairs = !pairs;
    penalty;
    fixed_reg_to_reg = fixed;
    delay_nodes = tg.Lut_map.n_real;
    fake_nodes = Hashtbl.length fake_keys;
  }
