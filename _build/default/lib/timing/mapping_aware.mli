(** Facade for the paper's mapping-aware timing model: LUT-to-DFG
    mapping (§IV-A, §IV-D) followed by timing-model generation and
    penalty computation (§IV-B, §IV-C). *)

val build :
  ?lut_delay:float ->
  ?lut_extra:(int -> float) ->
  Dataflow.Graph.t ->
  net:Net.t ->
  Techmap.Lutgraph.t ->
  Model.t
