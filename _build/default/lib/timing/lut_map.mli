(** LUT-to-DFG mapping (§IV-A + §IV-D): builds the node-level timing
    graph from the mapped LUT network.

    Every LUT becomes a delay node inside the dataflow unit it is
    labelled with. Every LUT edge is assigned a unique DFG path:

    - {b one edge → one path}: the only directed DFG path between the two
      units (searched forward, then backward for ready-domain edges);
    - {b one edge → many paths}: the path with the fewest dataflow units
      (BFS shortest);
    - {b domain interaction} (§IV-D): when neither direction has a path,
      the edge is routed through the nearest domain-interaction unit
      (forward to it from both sides), with an artificial zero-delay node
      in the interaction unit;
    - {b one edge → no path}: a direct artificial edge that contributes
      delay but cannot be broken.

    Paths never traverse an opaque-buffered channel (a register is not a
    combinational through-path). Traversed units without their own LUT on
    the path receive zero-delay {e fake} nodes, recorded per
    (unit, channel) for the §IV-C penalty computation. *)

type node_kind =
  | Delay of { unit_id : int; delay : float; fake : bool }
  | Launch                                      (** merged reg/input launch point, time 0 *)
  | Capture                                     (** merged reg/output capture point *)
  | Cross_fwd of Dataflow.Graph.channel_id      (** forward crossing of a channel *)
  | Cross_bwd of Dataflow.Graph.channel_id      (** backward (ready) crossing *)

type t = {
  kinds : node_kind array;
  succs : int list array;
  preds : int list array;
  launch : int;                (** node id of the merged launch *)
  capture : int;               (** node id of the merged capture *)
  n_real : int;                (** count of real delay nodes *)
  n_fake : int;
  n_unmapped_edges : int;      (** LUT edges that needed a direct artificial edge *)
}

val build :
  ?lut_delay:float ->
  ?lut_extra:(int -> float) ->
  Dataflow.Graph.t ->
  net:Net.t ->
  Techmap.Lutgraph.t ->
  t
(** [lut_delay] defaults to 0.7 ns (the paper's per-logic-level delay).
    [lut_extra] adds a per-LUT delay surcharge (by LUT id) — the hook the
    routing-aware mode uses to fold estimated wire delays into the model
    (the enhancement the paper's §VI discusses as future work). [net] is
    the elaborated netlist the LUT graph was mapped from (needed to
    attribute sequential endpoints to their units). *)

val shortest_unbuffered :
  Dataflow.Graph.t ->
  src:Dataflow.Graph.unit_id ->
  dst:Dataflow.Graph.unit_id ->
  Dataflow.Graph.channel_id list option
(** Fewest-units DFG path that does not pass through an opaque-buffered
    channel. Exposed for tests. *)
