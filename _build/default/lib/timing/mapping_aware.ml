let build ?lut_delay ?lut_extra g ~net lg =
  let tg = Lut_map.build ?lut_delay ?lut_extra g ~net lg in
  Generate.run tg g
