(** Timing-model generation (§IV-B) and penalty computation (§IV-C).

    Collapses the node-level timing graph of {!Lut_map} into
    channel-granular delay pairs: for every (launch-or-crossing,
    crossing-or-capture) pair, the maximum combinational delay between
    them, where propagation stops at channel crossings (those are where a
    buffer would reset the path).

    The penalty of a channel is [|X_fake(c)| / |X(c)|]: the fraction of
    the source unit's delay nodes that are fake nodes connected to the
    channel — i.e., logic of that unit which synthesis absorbed across
    the channel and which a buffer would un-share. *)

val run : Lut_map.t -> Dataflow.Graph.t -> Model.t
(** Raises [Failure] if the timing graph is cyclic (which would mean an
    unbuffered combinational cycle slipped through). *)
