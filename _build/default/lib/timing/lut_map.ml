module G = Dataflow.Graph
module L = Techmap.Lutgraph

type node_kind =
  | Delay of { unit_id : int; delay : float; fake : bool }
  | Launch
  | Capture
  | Cross_fwd of G.channel_id
  | Cross_bwd of G.channel_id

type t = {
  kinds : node_kind array;
  succs : int list array;
  preds : int list array;
  launch : int;
  capture : int;
  n_real : int;
  n_fake : int;
  n_unmapped_edges : int;
}

(* BFS over the DFG that refuses to traverse opaque-buffered channels (a
   register is not a combinational through-path).  Returns the channel
   sequence of the fewest-units path — the paper's rule for ambiguous
   LUT edges. *)
let shortest_unbuffered g ~src ~dst =
  if src = dst then Some []
  else begin
    let n = G.n_units g in
    let prev = Array.make n None in
    let seen = Array.make n false in
    seen.(src) <- true;
    let q = Queue.create () in
    Queue.add src q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun (cid, w) ->
          let blocked =
            match G.buffer g cid with Some { G.transparent = false; _ } -> true | _ -> false
          in
          if (not blocked) && (not seen.(w)) && not !found then begin
            seen.(w) <- true;
            prev.(w) <- Some (cid, u);
            if w = dst then found := true else Queue.add w q
          end)
        (G.succs g u)
    done;
    if not !found then None
    else begin
      let rec rebuild v acc =
        match prev.(v) with None -> acc | Some (cid, u) -> rebuild u (cid :: acc)
      in
      Some (rebuild dst [])
    end
  end

type builder = {
  g : G.t;
  mutable kinds_rev : node_kind list;
  mutable n_nodes : int;
  mutable edges : (int * int) list;
  mutable n_real : int;
  mutable n_fake : int;
  mutable n_unmapped : int;
}

let new_node b kind =
  let id = b.n_nodes in
  b.n_nodes <- b.n_nodes + 1;
  b.kinds_rev <- kind :: b.kinds_rev;
  (match kind with
  | Delay { fake = false; _ } -> b.n_real <- b.n_real + 1
  | Delay { fake = true; _ } -> b.n_fake <- b.n_fake + 1
  | _ -> ());
  id

let add_edge b src dst = b.edges <- (src, dst) :: b.edges

(* All routing decorations are PRIVATE to the LUT edge being routed:
   sharing cross or fake nodes between LUT edges would splice unrelated
   paths together and can close cycles that do not exist in the (acyclic)
   LUT network.  The timing graph is therefore a subdivision of the LUT
   graph and provably acyclic; logically identical fake nodes are
   deduplicated later, when the penalty is computed. *)
let fake_node b u _cid ~bwd:_ = new_node b (Delay { unit_id = u; delay = 0.; fake = true })

let cross_fwd b cid = new_node b (Cross_fwd cid)
let cross_bwd b cid = new_node b (Cross_bwd cid)

(* Wire a forward path src_node --c1..ck--> dst_node.  Fake nodes are
   placed in the intermediate units (the paper puts one in "every
   dataflow node on the path"; the endpoint units already hold the real
   delay nodes). *)
let wire_fwd b src_node dst_node channels =
  let prev = ref src_node in
  let rec go = function
    | [] -> add_edge b !prev dst_node
    | [ cid ] ->
      let x = cross_fwd b cid in
      add_edge b !prev x;
      add_edge b x dst_node
    | cid :: (_ :: _ as rest) ->
      let x = cross_fwd b cid in
      add_edge b !prev x;
      let mid = (G.channel b.g cid).G.dst in
      let f = fake_node b mid cid ~bwd:false in
      add_edge b x f;
      prev := f;
      go rest
  in
  go channels

(* Backward (ready-direction) path: [channels] run from the unit of
   [dst_node] to the unit of [src_node] in DFG direction; the signal
   travels against them. *)
let wire_bwd b src_node dst_node channels =
  let prev = ref src_node in
  let rec go = function
    | [] -> add_edge b !prev dst_node
    | [ cid ] ->
      let x = cross_bwd b cid in
      add_edge b !prev x;
      add_edge b x dst_node
    | cid :: (_ :: _ as rest) ->
      let x = cross_bwd b cid in
      add_edge b !prev x;
      let mid = (G.channel b.g cid).G.src in
      let f = fake_node b mid cid ~bwd:true in
      add_edge b x f;
      prev := f;
      go rest
  in
  go (List.rev channels)

let build ?(lut_delay = 0.7) ?(lut_extra = fun _ -> 0.) g ~net (lg : L.t) =
  let b =
    {
      g;
      kinds_rev = [];
      n_nodes = 0;
      edges = [];
      n_real = 0;
      n_fake = 0;
      n_unmapped = 0;
    }
  in
  let launch = new_node b Launch in
  let capture = new_node b Capture in
  let lut_node =
    Array.map
      (fun (l : L.lut) ->
        new_node b
          (Delay
             { unit_id = l.L.owner; delay = lut_delay +. lut_extra l.L.lid; fake = false }))
      lg.L.luts
  in
  let interaction = lazy (Elaborate.interaction_units g) in
  let route usrc udst src_node dst_node =
    if usrc = udst || usrc < 0 || udst < 0 then add_edge b src_node dst_node
    else
      match shortest_unbuffered g ~src:usrc ~dst:udst with
      | Some channels -> wire_fwd b src_node dst_node channels
      | None -> (
        match shortest_unbuffered g ~src:udst ~dst:usrc with
        | Some channels -> wire_bwd b src_node dst_node channels
        | None -> (
          (* §IV-D: route through the nearest domain-interaction unit *)
          let best = ref None in
          List.iter
            (fun w ->
              match
                (shortest_unbuffered g ~src:usrc ~dst:w, shortest_unbuffered g ~src:udst ~dst:w)
              with
              | Some p1, Some p2 -> (
                let cost = List.length p1 + List.length p2 in
                match !best with
                | Some (bc, _, _, _) when bc <= cost -> ()
                | _ -> best := Some (cost, w, p1, p2))
              | _ -> ())
            (Lazy.force interaction);
          match !best with
          | Some (_, w, p1, p2) ->
            let art = new_node b (Delay { unit_id = w; delay = 0.; fake = true }) in
            wire_fwd b src_node art p1;
            wire_bwd b art dst_node p2
          | None ->
            (* one LUT edge to no DFG path: direct artificial edge *)
            b.n_unmapped <- b.n_unmapped + 1;
            add_edge b src_node dst_node))
  in
  List.iter
    (fun { L.e_src; e_dst } ->
      let src_node = match e_src with L.Seq _ -> launch | L.Lut l -> lut_node.(l) in
      let dst_node = match e_dst with L.Seq _ -> capture | L.Lut l -> lut_node.(l) in
      let usrc = L.owner_of_endpoint lg net e_src in
      let udst = L.owner_of_endpoint lg net e_dst in
      route usrc udst src_node dst_node)
    lg.L.edges;
  let kinds = Array.of_list (List.rev b.kinds_rev) in
  let succs = Array.make b.n_nodes [] in
  let preds = Array.make b.n_nodes [] in
  List.iter
    (fun (s, d) ->
      succs.(s) <- d :: succs.(s);
      preds.(d) <- s :: preds.(d))
    b.edges;
  {
    kinds;
    succs;
    preds;
    launch;
    capture;
    n_real = b.n_real;
    n_fake = b.n_fake;
    n_unmapped_edges = b.n_unmapped;
  }
