lib/timing/precharacterized.mli: Dataflow Model
