lib/timing/mapping_aware.mli: Dataflow Model Net Techmap
