lib/timing/lut_map.ml: Array Dataflow Elaborate Lazy List Queue Techmap
