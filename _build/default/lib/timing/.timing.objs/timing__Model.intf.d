lib/timing/model.mli: Dataflow Format
