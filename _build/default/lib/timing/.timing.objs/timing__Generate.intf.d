lib/timing/generate.mli: Dataflow Lut_map Model
