lib/timing/generate.ml: Array Dataflow Hashtbl List Lut_map Model Option Queue
