lib/timing/precharacterized.ml: Array Dataflow Elaborate Hashtbl List Model Printf String Techmap
