lib/timing/model.ml: Dataflow Format Hashtbl List
