lib/timing/lut_map.mli: Dataflow Net Techmap
