lib/timing/mapping_aware.ml: Generate Lut_map
