(** Timing models of dataflow circuits (§IV of the paper).

    A model describes every combinational register-to-register path of
    the circuit at {e channel granularity}: a path starts at a sequential
    element ([T_reg]), traverses channel crossing points — forward
    ([T_chan_fwd], the data/valid direction) or backward ([T_chan_bwd],
    the ready direction) — and ends at a sequential element. A buffer on
    channel [c] resets the arrival time at the crossing points of [c].

    Both the mapping-aware model ({!Lut_map} → {!Generate}) and the
    pre-characterised baseline ({!Precharacterized}) produce this type,
    so the buffer-placement MILP treats them identically — exactly the
    paper's "same MILP formulation" comparison setup. *)

type terminal =
  | T_reg                          (** any sequential launch/capture point *)
  | T_chan_fwd of Dataflow.Graph.channel_id
  | T_chan_bwd of Dataflow.Graph.channel_id

type pair = {
  p_src : terminal;
  p_dst : terminal;
  p_delay : float;  (** max combinational delay between the terminals, ns *)
}

type t = {
  pairs : pair list;
  penalty : float array;           (** per channel id; Eq. 2 of the paper *)
  fixed_reg_to_reg : float;        (** worst purely-internal path (no channel crossing):
                                       unfixable by buffering *)
  delay_nodes : int;               (** real delay nodes (diagnostics) *)
  fake_nodes : int;                (** fake delay nodes (diagnostics) *)
}

val channels_in_play : t -> Dataflow.Graph.channel_id list
(** Channels that appear in at least one pair (deduplicated, sorted). *)

val terminal_equal : terminal -> terminal -> bool
val pp_terminal : Format.formatter -> terminal -> unit
