type terminal =
  | T_reg
  | T_chan_fwd of Dataflow.Graph.channel_id
  | T_chan_bwd of Dataflow.Graph.channel_id

type pair = { p_src : terminal; p_dst : terminal; p_delay : float }

type t = {
  pairs : pair list;
  penalty : float array;
  fixed_reg_to_reg : float;
  delay_nodes : int;
  fake_nodes : int;
}

let channels_in_play t =
  let tbl = Hashtbl.create 32 in
  let note = function
    | T_reg -> ()
    | T_chan_fwd c | T_chan_bwd c -> Hashtbl.replace tbl c ()
  in
  List.iter
    (fun p ->
      note p.p_src;
      note p.p_dst)
    t.pairs;
  Hashtbl.fold (fun c () acc -> c :: acc) tbl [] |> List.sort compare

let terminal_equal a b =
  match (a, b) with
  | T_reg, T_reg -> true
  | T_chan_fwd x, T_chan_fwd y | T_chan_bwd x, T_chan_bwd y -> x = y
  | _ -> false

let pp_terminal fmt = function
  | T_reg -> Format.pp_print_string fmt "reg"
  | T_chan_fwd c -> Format.fprintf fmt "fwd(c%d)" c
  | T_chan_bwd c -> Format.fprintf fmt "bwd(c%d)" c
