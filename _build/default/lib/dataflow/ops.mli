(** Datapath operations carried by [Operator] units.

    Latency/initiation-interval defaults follow the Dynamatic unit library:
    integer add/sub/compare and logic are combinational, multipliers are
    pipelined over four stages, loads take two cycles against the simple
    memory model. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Add
  | Sub
  | Mul
  | Shl            (** shift left by constant or operand *)
  | Lshr           (** logical shift right *)
  | And_
  | Or_
  | Xor_
  | Icmp of cmp
  | Select         (** cond ? a : b *)

val arity : t -> int
(** Number of data inputs. *)

val default_latency : t -> int
(** Pipeline latency in cycles (0 = combinational). *)

val default_ii : t -> int
(** Initiation interval (1 = fully pipelined). *)

val name : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val eval : t -> int list -> int
(** Functional semantics over OCaml ints (used by the simulator and by
    differential tests against the gate-level datapath). Operates on the
    two's-complement value truncated by the caller. *)
