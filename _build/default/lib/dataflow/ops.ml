type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Add
  | Sub
  | Mul
  | Shl
  | Lshr
  | And_
  | Or_
  | Xor_
  | Icmp of cmp
  | Select

let arity = function
  | Add | Sub | Mul | Shl | Lshr | And_ | Or_ | Xor_ | Icmp _ -> 2
  | Select -> 3

let default_latency = function
  | Mul -> 4
  | Add | Sub | Shl | Lshr | And_ | Or_ | Xor_ | Icmp _ | Select -> 0

let default_ii _ = 1

let cmp_name = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Shl -> "shl"
  | Lshr -> "lshr"
  | And_ -> "and"
  | Or_ -> "or"
  | Xor_ -> "xor"
  | Icmp c -> "icmp_" ^ cmp_name c
  | Select -> "select"

let pp fmt t = Format.pp_print_string fmt (name t)

let equal (a : t) (b : t) = a = b

let eval_cmp c a b =
  let r =
    match c with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt -> a < b
    | Le -> a <= b
    | Gt -> a > b
    | Ge -> a >= b
  in
  if r then 1 else 0

let eval t args =
  match t, args with
  | Add, [ a; b ] -> a + b
  | Sub, [ a; b ] -> a - b
  | Mul, [ a; b ] -> a * b
  | Shl, [ a; b ] -> a lsl (b land 63)
  | Lshr, [ a; b ] -> a lsr (b land 63)
  | And_, [ a; b ] -> a land b
  | Or_, [ a; b ] -> a lor b
  | Xor_, [ a; b ] -> a lxor b
  | Icmp c, [ a; b ] -> eval_cmp c a b
  | Select, [ c; a; b ] -> if c <> 0 then a else b
  | _ -> invalid_arg (Printf.sprintf "Ops.eval: %s applied to %d args" (name t) (List.length args))
