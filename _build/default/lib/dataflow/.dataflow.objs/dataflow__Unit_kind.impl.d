lib/dataflow/unit_kind.ml: Format Ops Option Printf
