lib/dataflow/analysis.mli: Graph
