lib/dataflow/dot.ml: Buffer Graph List Printf String Unit_kind
