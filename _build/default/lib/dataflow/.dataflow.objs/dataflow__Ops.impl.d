lib/dataflow/ops.ml: Format List Printf
