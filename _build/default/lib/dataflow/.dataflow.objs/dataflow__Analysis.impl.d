lib/dataflow/analysis.ml: Array Graph Hashtbl List Queue Unit_kind
