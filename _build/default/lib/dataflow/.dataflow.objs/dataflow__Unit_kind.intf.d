lib/dataflow/unit_kind.mli: Format Ops
