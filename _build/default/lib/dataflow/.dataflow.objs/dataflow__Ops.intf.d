lib/dataflow/ops.mli: Format
