lib/dataflow/graph.mli: Unit_kind
