lib/dataflow/graph.ml: Array List Option Printf String Support Unit_kind
