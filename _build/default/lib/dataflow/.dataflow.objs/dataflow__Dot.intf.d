lib/dataflow/dot.mli: Graph
