(** Graphviz export of dataflow graphs, for debugging and documentation.
    Buffered channels are drawn with a box on the edge label. *)

val to_string : Graph.t -> string
val to_channel : out_channel -> Graph.t -> unit
