let escape s =
  String.concat "" (List.map (fun c -> if c = '"' then "\\\"" else String.make 1 c) (List.init (String.length s) (String.get s)))

let to_buffer buf g =
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n  rankdir=TB;\n" (escape (Graph.name g)));
  Graph.iter_units g (fun n ->
      let shape =
        match n.Graph.kind with
        | Unit_kind.Fork _ | Unit_kind.Lazy_fork _ -> "triangle"
        | Unit_kind.Join _ | Unit_kind.Merge _ | Unit_kind.Mux _ | Unit_kind.Control_merge _ ->
          "invtriangle"
        | Unit_kind.Branch -> "diamond"
        | Unit_kind.Buffer _ -> "box"
        | _ -> "ellipse"
      in
      Buffer.add_string buf
        (Printf.sprintf "  u%d [label=\"%s\\nbb%d\" shape=%s];\n" n.Graph.uid (escape n.Graph.label)
           n.Graph.bb shape));
  Graph.iter_channels g (fun c ->
      let deco =
        match c.Graph.buffer with
        | Some { Graph.transparent = true; slots } -> Printf.sprintf " [label=\"T%d\" color=blue]" slots
        | Some { Graph.transparent = false; slots } -> Printf.sprintf " [label=\"B%d\" color=red]" slots
        | None -> ""
      in
      Buffer.add_string buf (Printf.sprintf "  u%d -> u%d%s;\n" c.Graph.src c.Graph.dst deco));
  Buffer.add_string buf "}\n"

let to_string g =
  let buf = Buffer.create 1024 in
  to_buffer buf g;
  Buffer.contents buf

let to_channel oc g = output_string oc (to_string g)
