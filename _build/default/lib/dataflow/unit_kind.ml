type t =
  | Entry
  | Exit
  | Fork of int
  | Lazy_fork of int
  | Join of int
  | Merge of int
  | Mux of int
  | Control_merge of int
  | Branch
  | Sink
  | Source
  | Const of int
  | Operator of { op : Ops.t; latency : int; ii : int }
  | Load of { mem : string; latency : int }
  | Store of { mem : string }
  | Buffer of { transparent : bool; slots : int }

let in_arity = function
  | Entry | Source -> 0
  | Exit | Sink | Const _ | Buffer _ -> 1
  | Fork _ | Lazy_fork _ -> 1
  | Join n | Merge n | Control_merge n -> n
  | Mux n -> n + 1
  | Branch -> 2
  | Operator { op; _ } -> Ops.arity op
  | Load _ -> 1
  | Store _ -> 2

let out_arity = function
  | Entry | Source | Const _ | Buffer _ -> 1
  | Exit | Sink -> 0
  | Fork n | Lazy_fork n -> n
  | Join _ | Merge _ | Mux _ -> 1
  | Control_merge _ -> 2
  | Branch -> 2
  | Operator _ -> 1
  | Load _ -> 1
  | Store _ -> 1

let operator ?latency ?ii op =
  let latency = Option.value latency ~default:(Ops.default_latency op) in
  let ii = Option.value ii ~default:(Ops.default_ii op) in
  Operator { op; latency; ii }

let name = function
  | Entry -> "entry"
  | Exit -> "exit"
  | Fork n -> Printf.sprintf "fork%d" n
  | Lazy_fork n -> Printf.sprintf "lfork%d" n
  | Join n -> Printf.sprintf "join%d" n
  | Merge n -> Printf.sprintf "merge%d" n
  | Mux n -> Printf.sprintf "mux%d" n
  | Control_merge n -> Printf.sprintf "cmerge%d" n
  | Branch -> "branch"
  | Sink -> "sink"
  | Source -> "source"
  | Const c -> Printf.sprintf "const%d" c
  | Operator { op; _ } -> Ops.name op
  | Load { mem; _ } -> "load_" ^ mem
  | Store { mem } -> "store_" ^ mem
  | Buffer { transparent; slots } ->
    Printf.sprintf "%sbuf%d" (if transparent then "t" else "") slots

let pp fmt t = Format.pp_print_string fmt (name t)

let equal (a : t) (b : t) = a = b

let is_memory = function Load _ | Store _ -> true | _ -> false

let latency = function
  | Operator { latency; _ } -> latency
  | Load { latency; _ } -> latency
  | Buffer { transparent; _ } -> if transparent then 0 else 1
  | _ -> 0
