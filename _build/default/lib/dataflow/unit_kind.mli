(** Dataflow unit kinds, following Dynamatic's elastic component library.

    Every unit communicates over point-to-point channels with the elastic
    (latency-insensitive) protocol: forward [data]+[valid], backward
    [ready]. Fan-out is made explicit with forks; control-flow joins with
    merges/muxes; conditional flow with branches. *)

type t =
  | Entry                                   (** program start: emits one control token per invocation *)
  | Exit                                    (** program end: absorbs the final control token *)
  | Fork of int                             (** eager fork, [n] outputs *)
  | Lazy_fork of int                        (** lazy fork: fires only when all successors are ready *)
  | Join of int                             (** synchronizes [n] tokens into one *)
  | Merge of int                            (** first-come merge of [n] inputs *)
  | Mux of int                              (** select input (port 0) steering [n] data inputs *)
  | Control_merge of int                    (** merge emitting the data token and the winning index *)
  | Branch                                  (** data (port 0) + condition (port 1); true/false outputs *)
  | Sink                                    (** consumes and discards tokens *)
  | Source                                  (** emits a token whenever asked *)
  | Const of int                            (** emits the constant when triggered by a control token *)
  | Operator of { op : Ops.t; latency : int; ii : int }
  | Load of { mem : string; latency : int } (** address in, data out, against memory [mem] *)
  | Store of { mem : string }               (** address + data in, completion token out *)
  | Buffer of { transparent : bool; slots : int }
      (** standalone buffer unit (placement normally uses channel
          annotations instead; see {!Graph}) *)

val in_arity : t -> int
val out_arity : t -> int

val operator : ?latency:int -> ?ii:int -> Ops.t -> t
(** [operator op] with Dynamatic default latency/II unless overridden. *)

val name : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val is_memory : t -> bool
(** Loads and stores. *)

val latency : t -> int
(** Internal pipeline latency of the unit in cycles. *)
