(** Gate-level datapath generators.

    A bit-vector is an array of gate ids, least-significant bit first.
    All arithmetic is unsigned two's-complement at the given width (the
    benchmark kernels only manipulate non-negative values, matching the
    paper's integer workloads). *)

type bv = int array

val const_bv : Net.t -> owner:int -> width:int -> int -> bv
val zero : Net.t -> owner:int -> width:int -> bv

val add : Net.t -> owner:int -> bv -> bv -> bv
(** Ripple-carry adder; carry out dropped. *)

val sub : Net.t -> owner:int -> bv -> bv -> bv

val band : Net.t -> owner:int -> bv -> bv -> bv
val bor : Net.t -> owner:int -> bv -> bv -> bv
val bxor : Net.t -> owner:int -> bv -> bv -> bv

val eq : Net.t -> owner:int -> bv -> bv -> int
val ne : Net.t -> owner:int -> bv -> bv -> int
val ult : Net.t -> owner:int -> bv -> bv -> int
val ule : Net.t -> owner:int -> bv -> bv -> int

val mux : Net.t -> owner:int -> sel:int -> bv -> bv -> bv
(** [mux ~sel a b] = sel ? a : b, bitwise. *)

val shl_var : Net.t -> owner:int -> bv -> bv -> bv
(** Barrel shifter, amount from the low bits of the second operand;
    shifts larger than the width yield zero. *)

val lshr_var : Net.t -> owner:int -> bv -> bv -> bv

val mul_row : Net.t -> owner:int -> acc:bv -> a:bv -> b_bit:int -> row:int -> bv
(** One shift-add row of a sequential-style multiplier:
    [acc + (b_bit ? a << row : 0)], truncated to the accumulator width.
    The elaborator interleaves rows with pipeline registers. *)

val of_op : Net.t -> owner:int -> Dataflow.Ops.t -> bv list -> bv
(** Combinational elaboration of a whole operator (multiplication as all
    rows unrolled; used for latency-0 configurations and for testing). *)
