lib/netlist/verilog.ml: Array Buffer List Net Printf String
