lib/netlist/datapath.ml: Array Dataflow Net
