lib/netlist/elaborate.ml: Array Dataflow Datapath List Net Printf
