lib/netlist/net.mli:
