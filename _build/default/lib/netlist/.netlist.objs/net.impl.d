lib/netlist/net.ml: Array Hashtbl List Printf String Support
