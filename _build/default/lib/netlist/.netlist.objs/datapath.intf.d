lib/netlist/datapath.mli: Dataflow Net
