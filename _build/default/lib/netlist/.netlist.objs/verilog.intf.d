lib/netlist/verilog.mli: Net
