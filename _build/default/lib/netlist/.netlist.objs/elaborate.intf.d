lib/netlist/elaborate.mli: Dataflow Net
