(** Elaboration of a dataflow graph into a gate-level netlist.

    Replaces the paper's RTL generation + ODIN-II/Yosys step. Every unit
    becomes its datapath plus the elastic handshake logic (valid forward,
    ready backward); buffered channels become 2-slot elastic buffers whose
    registers cut all three timing domains. Every gate is labelled with
    the unit it came from, which is the labelling the LUT-to-DFG mapper
    (§IV-A) relies on.

    Forks are eager, so the valid network never depends combinationally
    on ready and the only possible combinational cycles are unbuffered
    DFG cycles — which the flow prevents by seeding buffers on loop back
    edges ({!Dataflow.Analysis.back_edges}). *)

val run : Dataflow.Graph.t -> Net.t
(** Elaborate the graph with its current buffer annotations. Raises
    [Invalid_argument] if the graph does not validate. *)

val interaction_units : Dataflow.Graph.t -> Dataflow.Graph.unit_id list
(** Units where timing domains meet (branches, muxes, merges, pipelined
    units): the connection points the §IV-D mapping uses to reconstruct
    cross-domain paths. This is the information the FPL'22 model provides
    in the paper. *)
