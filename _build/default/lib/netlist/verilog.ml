let sanitize s =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
      then c
      else '_')
    s

let wire_name net id =
  match (Net.gate net id).Net.kind with
  | Net.Input nm -> sanitize nm
  | Net.Output nm -> sanitize nm
  | _ -> Printf.sprintf "n%d" id

let of_netlist net =
  let buf = Buffer.create 8192 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let inputs =
    List.filter_map
      (fun id -> match (Net.gate net id).Net.kind with Net.Input nm -> Some (sanitize nm) | _ -> None)
      (Net.inputs net)
  in
  let outputs =
    List.filter_map
      (fun id -> match (Net.gate net id).Net.kind with Net.Output nm -> Some (sanitize nm) | _ -> None)
      (Net.outputs net)
  in
  pr "module %s (\n  input wire clk,\n  input wire rst" (sanitize (Net.name net));
  List.iter (fun nm -> pr ",\n  input wire %s" nm) inputs;
  List.iter (fun nm -> pr ",\n  output wire %s" nm) outputs;
  pr "\n);\n\n";
  (* declarations *)
  Net.iter net (fun g ->
      match g.Net.kind with
      | Net.Input _ | Net.Output _ -> ()
      | Net.Ff _ -> pr "  reg n%d;\n" g.Net.id
      | _ -> pr "  wire n%d;\n" g.Net.id);
  pr "\n";
  (* combinational assigns *)
  let w id = wire_name net id in
  Net.iter net (fun g ->
      let f i = w g.Net.fanins.(i) in
      match g.Net.kind with
      | Net.Input _ -> ()
      | Net.Output _ -> pr "  assign %s = %s;\n" (w g.Net.id) (f 0)
      | Net.Const b -> pr "  assign n%d = 1'b%d;\n" g.Net.id (if b then 1 else 0)
      | Net.Buf -> pr "  assign n%d = %s;\n" g.Net.id (f 0)
      | Net.Not -> pr "  assign n%d = ~%s;\n" g.Net.id (f 0)
      | Net.And2 -> pr "  assign n%d = %s & %s;\n" g.Net.id (f 0) (f 1)
      | Net.Or2 -> pr "  assign n%d = %s | %s;\n" g.Net.id (f 0) (f 1)
      | Net.Xor2 -> pr "  assign n%d = %s ^ %s;\n" g.Net.id (f 0) (f 1)
      | Net.Ff _ -> ());
  (* registers *)
  pr "\n  always @(posedge clk) begin\n";
  pr "    if (rst) begin\n";
  List.iter
    (fun id ->
      match (Net.gate net id).Net.kind with
      | Net.Ff init -> pr "      n%d <= 1'b%d;\n" id (if init then 1 else 0)
      | _ -> ())
    (Net.ffs net);
  pr "    end else begin\n";
  List.iter
    (fun id ->
      let g = Net.gate net id in
      pr "      n%d <= %s;\n" id (w g.Net.fanins.(0)))
    (Net.ffs net);
  pr "    end\n  end\n\nendmodule\n";
  Buffer.contents buf

let to_channel oc net = output_string oc (of_netlist net)
