(** Structural Verilog export of the gate-level netlist: one wire per
    gate output, primitive [assign]s for logic, an always-block register
    bank for flip-flops. Lets the elaborated circuits be fed to standard
    RTL tools (the role Dynamatic's VHDL backend plays in the paper's
    flow). *)

val of_netlist : Net.t -> string

val to_channel : out_channel -> Net.t -> unit
