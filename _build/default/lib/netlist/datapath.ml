type bv = int array

let dom = Net.Data

let const_bv net ~owner ~width v =
  Array.init width (fun i -> Net.const net ~owner ~dom ((v lsr i) land 1 = 1))

let zero net ~owner ~width = const_bv net ~owner ~width 0

let check_widths a b =
  if Array.length a <> Array.length b then invalid_arg "Datapath: width mismatch"

(* Full adder chain.  carry_in fixed at [cin]. *)
let ripple net ~owner a b cin =
  check_widths a b;
  let w = Array.length a in
  let sum = Array.make w 0 in
  let carry = ref cin in
  for i = 0 to w - 1 do
    let axb = Net.xor2 net ~owner a.(i) b.(i) in
    sum.(i) <- Net.xor2 net ~owner axb !carry;
    let c1 = Net.and2 net ~owner a.(i) b.(i) in
    let c2 = Net.and2 net ~owner axb !carry in
    carry := Net.or2 net ~owner c1 c2
  done;
  (sum, !carry)

let add net ~owner a b =
  let cin = Net.const net ~owner ~dom false in
  fst (ripple net ~owner a b cin)

let sub net ~owner a b =
  let nb = Array.map (fun x -> Net.not_ net ~owner x) b in
  let cin = Net.const net ~owner ~dom true in
  fst (ripple net ~owner a nb cin)

let map2 f a b =
  check_widths a b;
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let band net ~owner a b = map2 (fun x y -> Net.and2 net ~owner x y) a b
let bor net ~owner a b = map2 (fun x y -> Net.or2 net ~owner x y) a b
let bxor net ~owner a b = map2 (fun x y -> Net.xor2 net ~owner x y) a b

let eq net ~owner a b =
  let bits = Array.to_list (map2 (fun x y -> Net.not_ net ~owner (Net.xor2 net ~owner x y)) a b) in
  Net.and_list net ~owner ~dom bits

let ne net ~owner a b = Net.not_ net ~owner (eq net ~owner a b)

(* Unsigned less-than as the borrow out of a - b. *)
let ult net ~owner a b =
  check_widths a b;
  let w = Array.length a in
  let borrow = ref (Net.const net ~owner ~dom false) in
  for i = 0 to w - 1 do
    let na = Net.not_ net ~owner a.(i) in
    let t1 = Net.and2 net ~owner na b.(i) in
    let same = Net.not_ net ~owner (Net.xor2 net ~owner a.(i) b.(i)) in
    let t2 = Net.and2 net ~owner same !borrow in
    borrow := Net.or2 net ~owner t1 t2
  done;
  !borrow

let ule net ~owner a b =
  let lt = ult net ~owner a b in
  let e = eq net ~owner a b in
  Net.or2 net ~owner lt e

let mux net ~owner ~sel a b = map2 (fun x y -> Net.mux2 net ~owner ~sel x y) a b

let shift_layer net ~owner dir v amount_bit k =
  let w = Array.length v in
  let shifted =
    Array.init w (fun i ->
        let j = if dir = `Left then i - (1 lsl k) else i + (1 lsl k) in
        if j < 0 || j >= w then Net.const net ~owner ~dom false else v.(j))
  in
  map2 (fun s orig -> Net.mux2 net ~owner ~sel:amount_bit s orig) shifted v

let var_shift net ~owner dir a b =
  let w = Array.length a in
  let sbits =
    let rec bits n acc = if 1 lsl acc >= n then acc else bits n (acc + 1) in
    max 1 (bits w 0)
  in
  let v = ref a in
  for k = 0 to min sbits (Array.length b) - 1 do
    v := shift_layer net ~owner dir !v b.(k) k
  done;
  (* Any set amount bit beyond the width forces zero. *)
  let high = Array.to_list (Array.sub b (min sbits (Array.length b)) (max 0 (Array.length b - sbits))) in
  match high with
  | [] -> !v
  | _ ->
    let any = Net.or_list net ~owner ~dom high in
    let nany = Net.not_ net ~owner any in
    Array.map (fun bit -> Net.and2 net ~owner bit nany) !v

let shl_var net ~owner a b = var_shift net ~owner `Left a b
let lshr_var net ~owner a b = var_shift net ~owner `Right a b

let mul_row net ~owner ~acc ~a ~b_bit ~row =
  let w = Array.length acc in
  let shifted =
    Array.init w (fun i ->
        if i - row < 0 then Net.const net ~owner ~dom false
        else Net.and2 net ~owner a.(i - row) b_bit)
  in
  add net ~owner acc shifted

let mul_comb net ~owner a b =
  let w = Array.length a in
  let acc = ref (zero net ~owner ~width:w) in
  for row = 0 to min w (Array.length b) - 1 do
    acc := mul_row net ~owner ~acc:!acc ~a ~b_bit:b.(row) ~row
  done;
  !acc

let of_op net ~owner (op : Dataflow.Ops.t) args =
  let bool_to_bv width bit =
    Array.init width (fun i -> if i = 0 then bit else Net.const net ~owner ~dom false)
  in
  match op, args with
  | Dataflow.Ops.Add, [ a; b ] -> add net ~owner a b
  | Dataflow.Ops.Sub, [ a; b ] -> sub net ~owner a b
  | Dataflow.Ops.Mul, [ a; b ] -> mul_comb net ~owner a b
  | Dataflow.Ops.Shl, [ a; b ] -> shl_var net ~owner a b
  | Dataflow.Ops.Lshr, [ a; b ] -> lshr_var net ~owner a b
  | Dataflow.Ops.And_, [ a; b ] -> band net ~owner a b
  | Dataflow.Ops.Or_, [ a; b ] -> bor net ~owner a b
  | Dataflow.Ops.Xor_, [ a; b ] -> bxor net ~owner a b
  | Dataflow.Ops.Icmp c, [ a; b ] ->
    let bit =
      match c with
      | Dataflow.Ops.Eq -> eq net ~owner a b
      | Dataflow.Ops.Ne -> ne net ~owner a b
      | Dataflow.Ops.Lt -> ult net ~owner a b
      | Dataflow.Ops.Le -> ule net ~owner a b
      | Dataflow.Ops.Gt -> ult net ~owner b a
      | Dataflow.Ops.Ge -> ule net ~owner b a
    in
    bool_to_bv 1 bit
  | Dataflow.Ops.Select, [ c; a; b ] -> mux net ~owner ~sel:c.(0) a b
  | _ -> invalid_arg "Datapath.of_op: arity mismatch"
