(** K-feasible-cut LUT mapping (the "if -K 6" step of ABC in the paper).

    Depth-oriented priority-cuts mapping: every AND node keeps its best
    few cuts ordered by (depth, leaf count); selection walks back from the
    combinational outputs materialising one LUT per chosen cut. *)

val run : ?k:int -> ?cut_limit:int -> Synth.t -> Lutgraph.t
(** Defaults: [k = 6] (Stratix-style 6-LUTs, as the paper's ABC run) and
    [cut_limit = 8] priority cuts per node. *)
