module L = Lutgraph

let lut_table (lg : L.t) lid =
  let aig = lg.L.synth.Synth.aig in
  let lut = lg.L.luts.(lid) in
  let k = Array.length lut.L.leaves in
  if k > 6 then invalid_arg "Truth.lut_table: more than 6 leaves";
  let leaf_index = Hashtbl.create 8 in
  Array.iteri (fun i leaf -> Hashtbl.replace leaf_index leaf i) lut.L.leaves;
  let table = ref 0L in
  for assignment = 0 to (1 lsl k) - 1 do
    (* evaluate the cone with memoisation, stopping at leaves *)
    let memo = Hashtbl.create 16 in
    let rec value node =
      match Hashtbl.find_opt leaf_index node with
      | Some i -> (assignment lsr i) land 1 = 1
      | None -> (
        match Hashtbl.find_opt memo node with
        | Some v -> v
        | None ->
          let v =
            if node = 0 then false
            else if Aig.is_ci aig node then
              (* a CI inside the cone would have been a leaf *)
              invalid_arg "Truth.lut_table: CI not in leaves"
            else begin
              let f0, f1 = Aig.fanins aig node in
              let lv l = value (Aig.node_of_lit l) <> Aig.is_complement l in
              lv f0 && lv f1
            end
          in
          Hashtbl.replace memo node v;
          v
      )
    in
    if value lut.L.root then table := Int64.logor !table (Int64.shift_left 1L assignment)
  done;
  !table

let eval_network (lg : L.t) ci_value =
  let aig = lg.L.synth.Synth.aig in
  let n = L.n_luts lg in
  let out = Array.make n false in
  (* process in root order: leaves' LUTs precede users *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare lg.L.luts.(a).L.root lg.L.luts.(b).L.root) order;
  let tables = Array.init n (lut_table lg) in
  Array.iter
    (fun lid ->
      let lut = lg.L.luts.(lid) in
      let idx = ref 0 in
      Array.iteri
        (fun i leaf ->
          let v =
            if Aig.is_ci aig leaf then ci_value leaf
            else out.(lg.L.lut_of_node.(leaf))
          in
          if v then idx := !idx lor (1 lsl i))
        lut.L.leaves;
      out.(lid) <- Int64.logand (Int64.shift_right_logical tables.(lid) !idx) 1L = 1L)
    order;
  out

let equivalent ?(vectors = 256) ?(seed = 1) (lg : L.t) =
  let aig = lg.L.synth.Synth.aig in
  let rng = Support.Rng.create seed in
  let n_nodes = Aig.n_nodes aig in
  let ok = ref true in
  for _ = 1 to vectors do
    if !ok then begin
      let ci_vals = Array.make n_nodes false in
      for node = 1 to n_nodes - 1 do
        if Aig.is_ci aig node then ci_vals.(node) <- Support.Rng.bool rng
      done;
      let reference = Aig.eval aig (fun node -> ci_vals.(node)) in
      let mapped = eval_network lg (fun node -> ci_vals.(node)) in
      List.iter
        (fun (_, _, lit) ->
          let node = Aig.node_of_lit lit in
          let want =
            if node = 0 then Aig.is_complement lit
            else reference.(node) <> Aig.is_complement lit
          in
          let got =
            if node = 0 then Aig.is_complement lit
            else if Aig.is_ci aig node then ci_vals.(node) <> Aig.is_complement lit
            else mapped.(lg.L.lut_of_node.(node)) <> Aig.is_complement lit
          in
          if want <> got then ok := false)
        (Aig.cos aig)
    end
  done;
  !ok
