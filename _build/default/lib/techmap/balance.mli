(** Depth-reducing AND-tree re-association (ABC's [balance] pass).

    Long conjunction chains — ripple carries, wide joins — synthesise
    into deep AND ladders; re-associating them as balanced trees reduces
    AIG depth and therefore mapped logic levels. Chains are flattened
    through single-fanout, uncomplemented AND edges (multi-fanout nodes
    stay shared) and rebuilt Huffman-style, pairing the two shallowest
    operands first.

    The result is a fresh {!Synth.t} whose combinational outputs carry
    the same tags; functional equivalence is checked by the test suite
    via {!Truth.equivalent} and direct AIG-vs-AIG simulation. *)

val run : Synth.t -> Synth.t
