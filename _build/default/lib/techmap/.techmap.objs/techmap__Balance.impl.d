lib/techmap/balance.ml: Aig Array Hashtbl List Option Synth
