lib/techmap/blif.ml: Aig Array Buffer Hashtbl Int64 List Lutgraph Net Option Printf String Synth Truth
