lib/techmap/aig.mli: Net
