lib/techmap/synth.mli: Aig Hashtbl Net
