lib/techmap/synth.ml: Aig Array Hashtbl List Net Printf
