lib/techmap/lutgraph.ml: Array List Net Synth
