lib/techmap/truth.ml: Aig Array Hashtbl Int64 List Lutgraph Support Synth
