lib/techmap/balance.mli: Synth
