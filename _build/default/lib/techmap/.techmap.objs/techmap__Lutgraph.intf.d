lib/techmap/lutgraph.mli: Net Synth
