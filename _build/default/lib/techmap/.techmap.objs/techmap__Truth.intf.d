lib/techmap/truth.mli: Lutgraph
