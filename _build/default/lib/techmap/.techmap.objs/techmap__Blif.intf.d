lib/techmap/blif.mli: Lutgraph Net
