lib/techmap/mapper.mli: Lutgraph Synth
