lib/techmap/aig.ml: Array Hashtbl List Net Support
