lib/techmap/mapper.ml: Aig Array Hashtbl List Lutgraph Net Option Synth
