(** LUT truth tables and functional verification of the mapping.

    Each mapped LUT's function is computed by exhaustively evaluating its
    AIG cone over its (at most K) leaves; the whole LUT network can then
    be simulated and checked against the AIG itself — the equivalence
    check a synthesis flow runs after technology mapping. *)

val lut_table : Lutgraph.t -> int -> int64
(** Truth table of a LUT (bit [i] = output under leaf assignment [i],
    leaf 0 is the least significant selector bit). Raises
    [Invalid_argument] for LUTs with more than 6 leaves. *)

val eval_network : Lutgraph.t -> (int -> bool) -> bool array
(** Evaluate the mapped network: given values for the combinational
    inputs (by AIG node id), compute every LUT's output, indexed by LUT
    id. *)

val equivalent : ?vectors:int -> ?seed:int -> Lutgraph.t -> bool
(** Compare the LUT network against the AIG on random input vectors:
    every combinational output must agree. This is the post-mapping
    equivalence check; [vectors] defaults to 256. *)
