let run (synth : Synth.t) =
  let old_aig = synth.Synth.aig in
  let n = Aig.n_nodes old_aig in
  (* fanout counts: flattening only descends through single-fanout edges *)
  let refs = Array.make n 0 in
  for v = 1 to n - 1 do
    if not (Aig.is_ci old_aig v) then begin
      let f0, f1 = Aig.fanins old_aig v in
      refs.(Aig.node_of_lit f0) <- refs.(Aig.node_of_lit f0) + 1;
      refs.(Aig.node_of_lit f1) <- refs.(Aig.node_of_lit f1) + 1
    end
  done;
  List.iter
    (fun (_, _, lit) ->
      let v = Aig.node_of_lit lit in
      refs.(v) <- refs.(v) + 1)
    (Aig.cos old_aig);
  let aig = Aig.create () in
  let gate_of_ci = Hashtbl.create 64 in
  let depth = Hashtbl.create 256 in
  let depth_of lit =
    Option.value (Hashtbl.find_opt depth (Aig.node_of_lit lit)) ~default:0
  in
  let note_depth lit d = Hashtbl.replace depth (Aig.node_of_lit lit) d in
  let memo = Array.make n (-1) in
  (* rebuild a node, returning its uncomplemented literal in the new AIG *)
  let rec rebuild v =
    if memo.(v) >= 0 then memo.(v)
    else begin
      let lit =
        if Aig.is_ci old_aig v then begin
          let l = Aig.ci aig ~owner:(Aig.owner old_aig v) ~dom:(Aig.dom old_aig v) in
          (match Hashtbl.find_opt synth.Synth.gate_of_ci v with
          | Some gid -> Hashtbl.replace gate_of_ci (Aig.node_of_lit l) gid
          | None -> ());
          note_depth l 0;
          l
        end
        else begin
          let owner = Aig.owner old_aig v in
          (* flatten the conjunction rooted here *)
          let leaves = ref [] in
          let rec expand lit =
            let u = Aig.node_of_lit lit in
            if
              (not (Aig.is_complement lit))
              && (not (Aig.is_ci old_aig u))
              && u <> 0
              && refs.(u) = 1
            then begin
              let f0, f1 = Aig.fanins old_aig u in
              expand f0;
              expand f1
            end
            else begin
              let base = rebuild u in
              leaves := (if Aig.is_complement lit then Aig.bnot base else base) :: !leaves
            end
          in
          let f0, f1 = Aig.fanins old_aig v in
          expand f0;
          expand f1;
          (* Huffman-style: combine the two shallowest operands first *)
          let rec combine = function
            | [] -> Aig.lit_true
            | [ x ] -> x
            | xs ->
              let sorted = List.sort (fun a b -> compare (depth_of a) (depth_of b)) xs in
              (match sorted with
              | a :: b :: rest ->
                let ab = Aig.band aig ~owner a b in
                note_depth ab (1 + max (depth_of a) (depth_of b));
                combine (ab :: rest)
              | short -> combine short)
          in
          combine !leaves
        end
      in
      (* memo holds the uncomplemented form; [rebuild] is only called on
         node ids, so lit here is positive except for folded constants *)
      memo.(v) <- lit;
      lit
    end
  in
  List.iter
    (fun (_, tag, lit) ->
      let v = Aig.node_of_lit lit in
      let l =
        if v = 0 then if Aig.is_complement lit then Aig.lit_true else Aig.lit_false
        else begin
          let base = rebuild v in
          if Aig.is_complement lit then Aig.bnot base else base
        end
      in
      Aig.add_co aig ~owner:0 ~tag l)
    (Aig.cos old_aig);
  { Synth.aig; lit_of_gate = [||]; gate_of_ci }
