module L = Lutgraph

let signal_of_node lg net node =
  let aig = lg.L.synth.Synth.aig in
  if node = 0 then "gnd"
  else if Aig.is_ci aig node then begin
    let gid = Hashtbl.find lg.L.synth.Synth.gate_of_ci node in
    match (Net.gate net gid).Net.kind with
    | Net.Input nm -> nm
    | Net.Ff _ -> Printf.sprintf "ff%d_q" gid
    | _ -> Printf.sprintf "n%d" node
  end
  else Printf.sprintf "lut%d" lg.L.lut_of_node.(node)

let of_lutgraph net (lg : L.t) =
  let aig = lg.L.synth.Synth.aig in
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr ".model %s\n" (Net.name net);
  let inputs =
    List.filter_map
      (fun id -> match (Net.gate net id).Net.kind with Net.Input nm -> Some nm | _ -> None)
      (Net.inputs net)
  in
  pr ".inputs %s\n" (String.concat " " inputs);
  let outputs =
    List.filter_map
      (fun id -> match (Net.gate net id).Net.kind with Net.Output nm -> Some nm | _ -> None)
      (Net.outputs net)
  in
  pr ".outputs %s\n" (String.concat " " outputs);
  pr ".names gnd\n";
  (* ground: constant-0 .names block (no cubes) *)
  (* combinational-output signal per CO tag *)
  let co_signal = Hashtbl.create 64 in
  List.iter
    (fun (_, tag, lit) ->
      let node = Aig.node_of_lit lit in
      let base = signal_of_node lg net node in
      let s =
        if Aig.is_complement lit then begin
          (* materialise an inverter block *)
          let inv = Printf.sprintf "%s_inv" base in
          pr ".names %s %s\n0 1\n" base inv;
          inv
        end
        else base
      in
      Hashtbl.replace co_signal tag s)
    (Aig.cos aig);
  (* latches *)
  List.iter
    (fun gid ->
      match (Net.gate net gid).Net.kind with
      | Net.Ff init ->
        let d = Option.value (Hashtbl.find_opt co_signal gid) ~default:"gnd" in
        pr ".latch %s ff%d_q re clk %d\n" d gid (if init then 1 else 0)
      | _ -> ())
    (Net.ffs net);
  (* outputs are aliases of their CO signal *)
  List.iter
    (fun gid ->
      match (Net.gate net gid).Net.kind with
      | Net.Output nm ->
        let d = Option.value (Hashtbl.find_opt co_signal gid) ~default:"gnd" in
        pr ".names %s %s\n1 1\n" d nm
      | _ -> ())
    (Net.outputs net);
  (* one .names block per LUT with its truth table cubes *)
  Array.iter
    (fun (lut : L.lut) ->
      let k = Array.length lut.L.leaves in
      let table = Truth.lut_table lg lut.L.lid in
      let leaf_sigs =
        Array.to_list (Array.map (fun leaf -> signal_of_node lg net leaf) lut.L.leaves)
      in
      pr ".names %s lut%d\n" (String.concat " " leaf_sigs) lut.L.lid;
      for assignment = 0 to (1 lsl k) - 1 do
        if Int64.logand (Int64.shift_right_logical table assignment) 1L = 1L then begin
          for i = 0 to k - 1 do
            Buffer.add_char buf (if (assignment lsr i) land 1 = 1 then '1' else '0')
          done;
          Buffer.add_string buf " 1\n"
        end
      done)
    lg.L.luts;
  pr ".end\n";
  Buffer.contents buf

let to_channel oc net lg = output_string oc (of_lutgraph net lg)
