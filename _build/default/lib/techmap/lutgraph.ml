type lut = {
  lid : int;
  root : int;
  leaves : int array;
  owner : int;
  dom : Net.domain;
  cone_size : int;
}

type endpoint = Lut of int | Seq of int

type edge = { e_src : endpoint; e_dst : endpoint }

type t = {
  synth : Synth.t;
  luts : lut array;
  lut_of_node : int array;
  edges : edge list;
  levels : int array;
  max_level : int;
}

let n_luts t = Array.length t.luts

let lut_edges t =
  List.filter_map
    (fun e -> match (e.e_src, e.e_dst) with Lut a, Lut b -> Some (a, b) | _ -> None)
    t.edges

let owner_of_endpoint t net = function
  | Lut l -> t.luts.(l).owner
  | Seq g -> (Net.gate net g).Net.owner

let luts_of_unit t u = Array.to_list t.luts |> List.filter (fun l -> l.owner = u)
