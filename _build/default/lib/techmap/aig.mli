(** And-inverter graph with structural hashing.

    This replaces the paper's logic-synthesis step (Yosys + ABC): building
    the AIG from the elaborated netlist performs the cross-unit merging
    and constant propagation that make pre-characterised per-unit delays
    wrong — e.g. the removed AND gate of the paper's Figure 1 disappears
    here through constant folding and structural hashing.

    Nodes are numbered densely; node 0 is constant false. A {e literal}
    is [2*node + complement]. Node fanins always reference lower-numbered
    nodes, so node order is a topological order. *)

type t
type lit = int

val create : unit -> t

val lit_false : lit
val lit_true : lit

val n_nodes : t -> int

val ci : t -> owner:int -> dom:Net.domain -> lit
(** New combinational input (primary input or flip-flop output). *)

val bnot : lit -> lit

val band : t -> owner:int -> lit -> lit -> lit
(** Hashed AND with constant folding and the trivial-identity rules
    ([a·a = a], [a·a' = 0], ...). If hashing merges logic created by two
    different units, the node keeps its first creator's label — the
    "contributes most" rule of §IV-A resolves the rest at LUT level. *)

val bor : t -> owner:int -> lit -> lit -> lit
val bxor : t -> owner:int -> lit -> lit -> lit
val bmux : t -> owner:int -> sel:lit -> lit -> lit -> lit

val add_co : t -> owner:int -> tag:int -> lit -> unit
(** Register a combinational output (flip-flop D input or primary
    output); [tag] identifies the netlist gate it drives. *)

val cos : t -> (int * int * lit) list
(** [(co_index, tag, literal)] in registration order. *)

val is_ci : t -> int -> bool
val fanins : t -> int -> lit * lit
(** Fanins of an AND node; raises [Invalid_argument] on CIs/constant. *)

val owner : t -> int -> int
val dom : t -> int -> Net.domain

val node_of_lit : lit -> int
val is_complement : lit -> bool

val eval : t -> (int -> bool) -> bool array
(** [eval t ci_value] computes all node values given a valuation of CI
    nodes (by node id). *)

val n_ands : t -> int
val depth : t -> int
(** AND-node depth from CIs (an upper proxy for mapped levels). *)
