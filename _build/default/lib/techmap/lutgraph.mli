(** Mapped LUT graph.

    Each LUT covers a cone of AIG nodes, is labelled with the dataflow
    unit that contributes most nodes to that cone (the paper's §IV-A
    labelling rule), and carries the timing domain of its cone. Edges of
    this graph — LUT to LUT, register/input to LUT, LUT to register/output
    — are what the LUT-to-DFG mapper of the timing model consumes. *)

type lut = {
  lid : int;
  root : int;           (** AIG node implemented by this LUT *)
  leaves : int array;   (** AIG nodes feeding it (CIs or other LUT roots) *)
  owner : int;          (** DFG unit id; -1 if undetermined *)
  dom : Net.domain;
  cone_size : int;
}

(** An endpoint of a register-to-register path: either a mapped LUT or a
    sequential/IO netlist gate. *)
type endpoint =
  | Lut of int          (** LUT id *)
  | Seq of int          (** netlist gate id (FF, Input or Output) *)

type edge = { e_src : endpoint; e_dst : endpoint }

type t = {
  synth : Synth.t;
  luts : lut array;
  lut_of_node : int array;   (** AIG node → LUT id, -1 if not a LUT root *)
  edges : edge list;         (** all combinational edges incl. to/from seq *)
  levels : int array;        (** per-LUT logic level (1 = fed by seq only) *)
  max_level : int;           (** the circuit's logic-level count *)
}

val n_luts : t -> int

val lut_edges : t -> (int * int) list
(** Only the LUT→LUT edges, as (src lid, dst lid). *)

val owner_of_endpoint : t -> Net.t -> endpoint -> int
(** DFG unit owning an endpoint (the netlist gate's owner for [Seq]). *)

val luts_of_unit : t -> int -> lut list
(** All LUTs labelled with a given unit. *)
