(** Netlist → AIG conversion (the logic-synthesis front half of ABC).

    Combinational inputs are the netlist's primary inputs and flip-flop
    outputs; combinational outputs are primary outputs and flip-flop D
    inputs. Structural hashing and constant folding happen during
    construction, which is where cross-unit logic merging occurs. *)

type t = {
  aig : Aig.t;
  lit_of_gate : int array;        (** netlist gate id → AIG literal *)
  gate_of_ci : (int, int) Hashtbl.t;  (** AIG CI node → netlist gate id *)
}

val run : Net.t -> t
(** Raises [Failure] if the combinational netlist is cyclic. *)
