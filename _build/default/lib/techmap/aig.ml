type lit = int

type node = {
  f0 : lit;  (* -1 for CI and constant *)
  f1 : lit;
  owner : int;
  mutable dom : Net.domain;
}

type t = {
  nodes : node Support.Vec.t;
  strash : (int * int, int) Hashtbl.t;
  mutable out_list : (int * int * lit) list;  (* (index, tag, lit), reversed *)
  mutable n_cos : int;
}

let lit_false = 0
let lit_true = 1

let node_of_lit l = l lsr 1
let is_complement l = l land 1 = 1
let mk_lit n c = (n lsl 1) lor (if c then 1 else 0)

let create () =
  let t = { nodes = Support.Vec.create (); strash = Hashtbl.create 1024; out_list = []; n_cos = 0 } in
  (* node 0: constant false *)
  ignore (Support.Vec.push t.nodes { f0 = -1; f1 = -1; owner = -1; dom = Net.Data });
  t

let n_nodes t = Support.Vec.length t.nodes

let ci t ~owner ~dom =
  let id = Support.Vec.push t.nodes { f0 = -1; f1 = -1; owner; dom } in
  mk_lit id false

let bnot l = l lxor 1

let join_dom a b = if a = b then a else Net.Mixed

let band t ~owner a b =
  let a, b = if a <= b then (a, b) else (b, a) in
  if a = lit_false then lit_false
  else if a = lit_true then b
  else if a = b then a
  else if a = bnot b then lit_false
  else
    match Hashtbl.find_opt t.strash (a, b) with
    | Some id -> mk_lit id false
    | None ->
      let da = (Support.Vec.get t.nodes (node_of_lit a)).dom in
      let db = (Support.Vec.get t.nodes (node_of_lit b)).dom in
      let id = Support.Vec.push t.nodes { f0 = a; f1 = b; owner; dom = join_dom da db } in
      Hashtbl.replace t.strash (a, b) id;
      mk_lit id false

let bor t ~owner a b = bnot (band t ~owner (bnot a) (bnot b))

let bxor t ~owner a b =
  let p = band t ~owner a (bnot b) in
  let q = band t ~owner (bnot a) b in
  bor t ~owner p q

let bmux t ~owner ~sel a b =
  let p = band t ~owner sel a in
  let q = band t ~owner (bnot sel) b in
  bor t ~owner p q

let add_co t ~owner ~tag l =
  ignore owner;
  t.out_list <- (t.n_cos, tag, l) :: t.out_list;
  t.n_cos <- t.n_cos + 1

let cos t = List.rev t.out_list

let is_ci t n = n > 0 && (Support.Vec.get t.nodes n).f0 = -1

let fanins t n =
  let nd = Support.Vec.get t.nodes n in
  if nd.f0 = -1 then invalid_arg "Aig.fanins: CI or constant";
  (nd.f0, nd.f1)

let owner t n = (Support.Vec.get t.nodes n).owner
let dom t n = (Support.Vec.get t.nodes n).dom

let eval t ci_value =
  let n = n_nodes t in
  let values = Array.make n false in
  for i = 1 to n - 1 do
    let nd = Support.Vec.get t.nodes i in
    if nd.f0 = -1 then values.(i) <- ci_value i
    else begin
      let v l = values.(node_of_lit l) <> is_complement l in
      values.(i) <- v nd.f0 && v nd.f1
    end
  done;
  values

let n_ands t =
  let c = ref 0 in
  for i = 1 to n_nodes t - 1 do
    if not (is_ci t i) then incr c
  done;
  !c

let depth t =
  let n = n_nodes t in
  let d = Array.make n 0 in
  let maxd = ref 0 in
  for i = 1 to n - 1 do
    if not (is_ci t i) then begin
      let f0, f1 = fanins t i in
      d.(i) <- 1 + max d.(node_of_lit f0) d.(node_of_lit f1);
      if d.(i) > !maxd then maxd := d.(i)
    end
  done;
  !maxd
