(** BLIF export of the mapped circuit — the interchange format the
    paper's ODIN-II → ABC → VPR hand-offs use.  Latches for flip-flops,
    one [.names] block with the computed truth table per LUT. *)

val of_lutgraph : Net.t -> Lutgraph.t -> string

val to_channel : out_channel -> Net.t -> Lutgraph.t -> unit
