lib/support/vec.ml: Array Printf
