lib/support/rng.mli:
