lib/support/union_find.mli:
