lib/support/vec.mli:
