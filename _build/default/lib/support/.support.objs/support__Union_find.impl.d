lib/support/union_find.ml: Array
