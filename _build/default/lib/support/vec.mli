(** Growable array, the workhorse container for graph node/edge tables.
    Indices handed out by [push] are stable, which lets the IRs use plain
    integers as node identifiers. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> int
(** Append, returning the index of the new element. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val map_to_list : ('a -> 'b) -> 'a t -> 'b list
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val exists : ('a -> bool) -> 'a t -> bool
val find_index : ('a -> bool) -> 'a t -> int option
