type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create ?(capacity = 16) () = { data = [||]; len = 0 } |> fun t ->
  ignore capacity;
  t

let length t = t.len

let check t i =
  if i < 0 || i >= t.len then invalid_arg (Printf.sprintf "Vec: index %d out of bounds (len %d)" i t.len)

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let grow t x =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let nd = Array.make ncap x in
  Array.blit t.data 0 nd 0 t.len;
  t.data <- nd

let push t x =
  if t.len = Array.length t.data then grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.len - 1

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let map_to_list f t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (f t.data.(i) :: acc) in
  loop (t.len - 1) []

let to_list t = map_to_list (fun x -> x) t

let to_array t = Array.init t.len (fun i -> t.data.(i))

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let find_index p t =
  let rec loop i =
    if i >= t.len then None else if p t.data.(i) then Some i else loop (i + 1)
  in
  loop 0
