type t = { parent : int array; rank : int array }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let r = find t p in
    t.parent.(x) <- r;
    r
  end

let union t x y =
  let rx = find t x and ry = find t y in
  if rx <> ry then
    if t.rank.(rx) < t.rank.(ry) then t.parent.(rx) <- ry
    else if t.rank.(rx) > t.rank.(ry) then t.parent.(ry) <- rx
    else begin
      t.parent.(ry) <- rx;
      t.rank.(rx) <- t.rank.(rx) + 1
    end

let same t x y = find t x = find t y

let classes t =
  let n = Array.length t.parent in
  let out = Array.make n [] in
  for x = n - 1 downto 0 do
    let r = find t x in
    out.(r) <- x :: out.(r)
  done;
  out
