(** Classic union-find over integer elements [0 .. n-1], with path
    compression and union by rank. Used by the technology mapper to group
    netlist nodes that synthesis merges into a single structural unit. *)

type t

val create : int -> t
(** [create n] makes [n] singleton classes. *)

val find : t -> int -> int
(** Representative of the element's class. *)

val union : t -> int -> int -> unit
(** Merge the two classes. *)

val same : t -> int -> int -> bool
(** Whether two elements share a class. *)

val classes : t -> int list array
(** [classes t] indexed by representative; non-representative slots are
    empty lists. *)
