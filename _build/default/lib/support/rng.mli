(** Deterministic pseudo-random number generation (SplitMix64).

    Every stochastic component of the reproduction (placement annealing,
    workload generation, property-test data) draws from this generator so
    that the whole pipeline is reproducible from a fixed seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val copy : t -> t
(** Independent copy of the current state. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** Derive an independent child generator (advances the parent). *)
