(** Rendering of the paper's Table I and Figure 5 from measured rows. *)

val table1 : Format.formatter -> Experiment.row list -> unit
(** The full comparison table: CP, clock cycles, execution time (with
    ratio), LUTs (ratio), FFs (ratio) and logic levels for both flows. *)

val figure5 : Format.formatter -> Experiment.row list -> unit
(** ASCII rendition of Figure 5: per-benchmark execution-time, LUT and
    FF ratios of the iterative flow normalised to the baseline (1.00 =
    dashed baseline of the paper's plot). *)

val iterations : Format.formatter -> Experiment.row list -> unit
(** Per-kernel iteration counts and level-target verdicts (§VI claims:
    ≤ 3 iterations, target always met). *)

val csv : Format.formatter -> Experiment.row list -> unit
(** Machine-readable dump of every measured metric, one line per
    (benchmark, flow). *)

val pct : float -> float -> string
(** [pct iter prev] formats the improvement as the paper does, e.g.
    [-29%]. *)
