let pct iter prev =
  if prev = 0. then "n/a"
  else begin
    let r = (iter -. prev) /. prev *. 100. in
    Printf.sprintf "%+.0f%%" r
  end

let table1 fmt rows =
  let line = String.make 130 '-' in
  Format.fprintf fmt "%s@\n" line;
  Format.fprintf fmt
    "%-15s | %12s | %17s | %21s | %8s | %13s | %6s | %13s | %6s | %9s@\n"
    "Benchmark" "CP (ns)" "Clock Cycles" "Exec Time (ns)" "ET Ratio" "# LUTs" "Ratio"
    "# FFs" "Ratio" "Levels";
  Format.fprintf fmt
    "%-15s | %5s %6s | %8s %8s | %10s %10s | %8s | %6s %6s | %6s | %6s %6s | %6s | %4s %4s@\n"
    "" "Prev." "Iter." "Prev." "Iter." "Prev." "Iter." "" "Prev." "Iter." "" "Prev." "Iter." ""
    "Pr" "It";
  Format.fprintf fmt "%s@\n" line;
  List.iter
    (fun (r : Experiment.row) ->
      let p = r.Experiment.prev and i = r.Experiment.iter in
      Format.fprintf fmt
        "%-15s | %5.2f %6.2f | %8d %8d | %10.0f %10.0f | %8s | %6d %6d | %6s | %6d %6d | %6s | %4d %4d@\n"
        r.Experiment.bench p.Experiment.cp i.Experiment.cp p.Experiment.cycles
        i.Experiment.cycles p.Experiment.exec_ns i.Experiment.exec_ns
        (pct i.Experiment.exec_ns p.Experiment.exec_ns)
        p.Experiment.luts i.Experiment.luts
        (pct (float_of_int i.Experiment.luts) (float_of_int p.Experiment.luts))
        p.Experiment.ffs i.Experiment.ffs
        (pct (float_of_int i.Experiment.ffs) (float_of_int p.Experiment.ffs))
        p.Experiment.levels i.Experiment.levels)
    rows;
  Format.fprintf fmt "%s@\n" line;
  let bad = List.filter (fun r -> not (r.Experiment.prev.Experiment.value_ok && r.Experiment.iter.Experiment.value_ok)) rows in
  if bad = [] then Format.fprintf fmt "functional check: all circuits match the reference interpreter@\n"
  else
    List.iter
      (fun r -> Format.fprintf fmt "WARNING: %s functional mismatch@\n" r.Experiment.bench)
      bad

let bar fmt label ratio =
  let width = 40 in
  let scaled = int_of_float (ratio *. float_of_int width /. 1.5) in
  let scaled = max 0 (min (width + 15) scaled) in
  let marker = int_of_float (1.0 *. float_of_int width /. 1.5) in
  let cells = String.init (max scaled marker + 1) (fun i ->
      if i = marker then '|' else if i < scaled then '#' else ' ')
  in
  Format.fprintf fmt "  %-14s %s %.2f@\n" label cells ratio

let figure5 fmt rows =
  Format.fprintf fmt "Figure 5: iterative flow normalised to baseline (| marks 1.00)@\n@\n";
  Format.fprintf fmt "Execution time (CP x cycles):@\n";
  List.iter
    (fun (r : Experiment.row) ->
      bar fmt r.Experiment.bench
        (r.Experiment.iter.Experiment.exec_ns /. r.Experiment.prev.Experiment.exec_ns))
    rows;
  Format.fprintf fmt "@\nLUTs:@\n";
  List.iter
    (fun (r : Experiment.row) ->
      bar fmt r.Experiment.bench
        (float_of_int r.Experiment.iter.Experiment.luts
        /. float_of_int r.Experiment.prev.Experiment.luts))
    rows;
  Format.fprintf fmt "@\nFFs:@\n";
  List.iter
    (fun (r : Experiment.row) ->
      bar fmt r.Experiment.bench
        (float_of_int r.Experiment.iter.Experiment.ffs
        /. float_of_int r.Experiment.prev.Experiment.ffs))
    rows

let csv fmt rows =
  Format.fprintf fmt
    "bench,flow,cp_ns,cycles,exec_ns,luts,ffs,levels,buffers,iterations,met_target,value_ok@\n";
  let line bench flow (m : Experiment.metrics) =
    Format.fprintf fmt "%s,%s,%.3f,%d,%.1f,%d,%d,%d,%d,%d,%b,%b@\n" bench flow
      m.Experiment.cp m.Experiment.cycles m.Experiment.exec_ns m.Experiment.luts
      m.Experiment.ffs m.Experiment.levels m.Experiment.buffers m.Experiment.iterations
      m.Experiment.met_target m.Experiment.value_ok
  in
  List.iter
    (fun (r : Experiment.row) ->
      line r.Experiment.bench "prev" r.Experiment.prev;
      line r.Experiment.bench "iter" r.Experiment.iter)
    rows

let iterations fmt rows =
  Format.fprintf fmt "Iterative-flow convergence (paper: <= 3 iterations, target always met):@\n";
  List.iter
    (fun (r : Experiment.row) ->
      Format.fprintf fmt "  %-14s iterations=%d levels=%d target-met=%b@\n" r.Experiment.bench
        r.Experiment.iter.Experiment.iterations r.Experiment.iter.Experiment.levels
        r.Experiment.iter.Experiment.met_target)
    rows
