module G = Dataflow.Graph

type metrics = {
  cp : float;
  cycles : int;
  exec_ns : float;
  luts : int;
  ffs : int;
  levels : int;
  buffers : int;
  iterations : int;
  met_target : bool;
  value_ok : bool;
}

type row = {
  bench : string;
  prev : metrics;
  iter : metrics;
}

let measure config (outcome : Flow.outcome) kernel =
  let g = outcome.Flow.graph in
  let net, lg = Flow.synth_map config g in
  let pr = Placeroute.Sta.analyze ~seed:7 net lg in
  let mems = kernel.Hls.Kernels.mems () in
  let sim = Sim.Elastic.run ~memories:mems g in
  let reference = Hls.Kernels.reference kernel in
  let value_ok =
    sim.Sim.Elastic.finished && sim.Sim.Elastic.exit_value = Some reference
  in
  {
    cp = pr.Placeroute.Sta.cp;
    cycles = sim.Sim.Elastic.cycles;
    exec_ns = pr.Placeroute.Sta.cp *. float_of_int sim.Sim.Elastic.cycles;
    luts = pr.Placeroute.Sta.n_luts;
    ffs = pr.Placeroute.Sta.n_ffs;
    levels = lg.Techmap.Lutgraph.max_level;
    buffers = List.length (G.buffered_channels g);
    iterations = List.length outcome.Flow.iterations;
    met_target = outcome.Flow.met_target;
    value_ok;
  }

let run_flow ?(config = Flow.default_config) ~flavor kernel =
  let g = Hls.Kernels.graph kernel in
  let outcome =
    match flavor with
    | `Baseline -> Flow.baseline ~config g
    | `Iterative -> Flow.iterative ~config g
  in
  (measure config outcome kernel, outcome)

let run_kernel ?(config = Flow.default_config) kernel =
  let prev, _ = run_flow ~config ~flavor:`Baseline kernel in
  let iter, _ = run_flow ~config ~flavor:`Iterative kernel in
  { bench = kernel.Hls.Kernels.name; prev; iter }

let run_all ?(config = Flow.default_config) ?names () =
  let kernels =
    match names with
    | None -> Hls.Kernels.all
    | Some ns -> List.map Hls.Kernels.by_name ns
  in
  List.map (run_kernel ~config) kernels
