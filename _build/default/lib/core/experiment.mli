(** End-to-end evaluation harness: runs both flows on a kernel and
    collects every metric of the paper's Table I.

    For one kernel and one flow: optimise buffering → re-synthesise →
    place & route (CP, LUTs, FFs, logic levels) → simulate the kernel's
    workload (clock cycles, with the exit value checked against the AST
    interpreter) → execution time = CP × cycles. *)

type metrics = {
  cp : float;             (** achieved clock period after P&R, ns *)
  cycles : int;           (** simulated clock cycles *)
  exec_ns : float;        (** CP x cycles *)
  luts : int;
  ffs : int;
  levels : int;           (** post-synthesis logic levels *)
  buffers : int;          (** opaque buffers placed *)
  iterations : int;       (** optimisation iterations used *)
  met_target : bool;
  value_ok : bool;        (** simulation matched the reference interpreter *)
}

type row = {
  bench : string;
  prev : metrics;   (** mapping-agnostic baseline *)
  iter : metrics;   (** iterative mapping-aware flow *)
}

val run_flow :
  ?config:Flow.config ->
  flavor:[ `Baseline | `Iterative ] ->
  Hls.Kernels.t ->
  metrics * Flow.outcome

val run_kernel : ?config:Flow.config -> Hls.Kernels.t -> row

val run_all : ?config:Flow.config -> ?names:string list -> unit -> row list
(** Runs the paper's nine benchmarks (or a subset). *)
