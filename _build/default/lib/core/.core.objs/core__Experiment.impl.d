lib/core/experiment.ml: Dataflow Flow Hls List Placeroute Sim Techmap
