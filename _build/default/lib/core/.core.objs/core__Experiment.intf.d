lib/core/experiment.mli: Flow Hls
