lib/core/report.ml: Experiment Format List Printf String
