lib/core/flow.mli: Buffering Dataflow Net Techmap
