lib/core/flow.ml: Array Buffering Dataflow Elaborate Hashtbl List Placeroute Techmap Timing
