lib/core/report.mli: Experiment Format
