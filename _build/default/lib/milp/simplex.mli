(** Dense two-phase primal simplex for the LP relaxation.

    Textbook tableau implementation with Dantzig pricing and a Bland's-rule
    fallback to guarantee termination. Problem sizes in this project are a
    few hundred variables and constraints, well within dense range. *)

type result =
  | Optimal of { obj : float; x : float array }
  | Infeasible
  | Unbounded

val solve : Lp.t -> result
(** Solves the continuous relaxation of the model (integrality is handled
    by {!Bb}). Variable bounds are honoured; free variables are split
    internally. *)
