lib/milp/lp.mli: Format
