lib/milp/simplex.ml: Array Hashtbl List Lp Option
