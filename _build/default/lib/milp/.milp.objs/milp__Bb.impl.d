lib/milp/bb.ml: Array Float List Lp Simplex Unix
