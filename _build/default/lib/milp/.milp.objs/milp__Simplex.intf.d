lib/milp/simplex.mli: Lp
