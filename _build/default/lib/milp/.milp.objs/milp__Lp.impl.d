lib/milp/lp.ml: Array Format Hashtbl List Option Printf Support
