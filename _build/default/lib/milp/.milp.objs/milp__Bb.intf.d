lib/milp/bb.mli: Lp
