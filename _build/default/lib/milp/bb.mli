(** Branch & bound over the simplex relaxation: the MILP solver proper.

    Best-first search on the relaxation bound, branching on the most
    fractional integer variable. A node budget bounds the search; if it is
    exhausted the best incumbent is returned with [proved_optimal =
    false] (the paper's Gurobi runs are always optimal; our instances are
    small enough that the budget is rarely hit). *)

type result =
  | Optimal of { obj : float; x : float array; proved_optimal : bool; nodes : int }
  | Infeasible
  | Unbounded

val solve :
  ?node_limit:int -> ?eps:float -> ?time_limit:float -> ?initial:float array -> Lp.t -> result
(** Defaults: [node_limit = 50_000], integrality tolerance [eps = 1e-6],
    [time_limit = 120.] seconds (wall clock; on expiry the incumbent is
    returned with [proved_optimal = false], mirroring a solver time
    limit). [initial], when feasible and integral, seeds the incumbent
    so the search starts with a pruning bound. *)
