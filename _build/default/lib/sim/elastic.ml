module G = Dataflow.Graph
module K = Dataflow.Unit_kind
module Ops = Dataflow.Ops

type config = { max_cycles : int; deadlock_window : int }

let default_config = { max_cycles = 2_000_000; deadlock_window = 256 }

type channel_stats = {
  cs_transfers : int;
  cs_stalls : int;
  cs_starved : int;
}

type result = {
  cycles : int;
  exit_value : int option;
  finished : bool;
  deadlocked : bool;
  transfers : int;
  channel_stats : channel_stats array;
}

type chan_state = {
  width : int;
  buffered : G.buffer_spec option;
  fifo : int Queue.t;            (* contents visible to the consumer *)
  mutable staged : int list;     (* enqueued this cycle; visible next (opaque) *)
  (* combinational signals, recomputed every cycle *)
  mutable s_valid : bool;
  mutable s_value : int;
  mutable s_ready : bool;
  mutable d_valid : bool;
  mutable d_value : int;
  mutable d_ready : bool;
}

type unit_state = {
  mutable sent : bool array;            (* eager fork / cmerge output flags *)
  mutable stages : (bool * int) array;  (* pipelined units *)
  mutable emitted : bool;               (* entry *)
  mutable cm_winner : int;              (* control merge: latched grant, -1 = none *)
}

let mask_of width = if width <= 0 then 0 else if width >= 62 then -1 else (1 lsl width) - 1

let run ?(config = default_config) ?(memories = []) ?dump_deadlock ?vcd g =
  (match G.validate g with
  | Ok () -> ()
  | Error e -> invalid_arg ("Elastic.run: invalid graph: " ^ e));
  (* every cycle must carry at least one opaque buffer, otherwise the
     handshake is a combinational cycle (same legality rule the netlist
     synthesis enforces) *)
  let has_unbuffered_cycle () =
    let n = G.n_units g in
    let color = Array.make n 0 in
    let found = ref false in
    let rec dfs u =
      color.(u) <- 1;
      List.iter
        (fun (cid, w) ->
          let opaque =
            match G.buffer g cid with Some { G.transparent = false; _ } -> true | _ -> false
          in
          if not opaque then
            if color.(w) = 1 then found := true else if color.(w) = 0 then dfs w)
        (G.succs g u);
      color.(u) <- 2
    in
    for u = 0 to n - 1 do
      if color.(u) = 0 then dfs u
    done;
    !found
  in
  if has_unbuffered_cycle () then
    failwith "Elastic.run: combinational cycle (a DFG cycle has no opaque buffer)";
  let n_chan = G.n_channels g in
  let chans =
    Array.init n_chan (fun cid ->
        let c = G.channel g cid in
        {
          width = c.G.width;
          buffered = c.G.buffer;
          fifo = Queue.create ();
          staged = [];
          s_valid = false;
          s_value = 0;
          s_ready = false;
          d_valid = false;
          d_value = 0;
          d_ready = false;
        })
  in
  let units =
    Array.init (G.n_units g) (fun uid ->
        let n = G.unit_node g uid in
        let st = { sent = [||]; stages = [||]; emitted = false; cm_winner = -1 } in
        (match n.G.kind with
        | K.Fork k -> st.sent <- Array.make k false
        | K.Control_merge _ -> st.sent <- Array.make 2 false
        | K.Operator { latency; _ } when latency > 0 -> st.stages <- Array.make latency (false, 0)
        | K.Load { latency; _ } -> st.stages <- Array.make (max 1 latency) (false, 0)
        | K.Store _ -> st.stages <- Array.make 1 (false, 0)
        | _ -> ());
        st)
  in
  let mems = Hashtbl.create 4 in
  List.iter
    (fun (name, size) ->
      let arr =
        match List.assoc_opt name memories with
        | Some a -> a
        | None -> Array.make size 0
      in
      Hashtbl.replace mems name arr)
    (G.memories g);
  let mem_read name addr =
    match Hashtbl.find_opt mems name with
    | None -> 0
    | Some a -> if Array.length a = 0 then 0 else a.(abs addr mod Array.length a)
  in
  let mem_write name addr v =
    match Hashtbl.find_opt mems name with
    | None -> ()
    | Some a -> if Array.length a > 0 then a.(abs addr mod Array.length a) <- v
  in
  let exit_value = ref None in
  let finished = ref false in
  let transfers = ref 0 in
  let st_transfers = Array.make n_chan 0 in
  let st_stalls = Array.make n_chan 0 in
  let st_starved = Array.make n_chan 0 in
  let in_chans uid =
    let n = G.unit_node g uid in
    Array.map (fun c -> chans.(Option.get c)) n.G.ins
  in
  let out_chans uid =
    let n = G.unit_node g uid in
    Array.map (fun c -> chans.(Option.get c)) n.G.outs
  in
  (* ---- combinational evaluation of one unit; returns true if any
     signal it drives changed ---- *)
  let changed = ref false in
  let set_bool cell v (get, set) =
    ignore cell;
    if get () <> v then begin
      set v;
      changed := true
    end
  in
  let setv c v =
    if c.s_valid <> v then begin
      c.s_valid <- v;
      changed := true
    end
  in
  let setval c v =
    let v = v land mask_of c.width in
    if c.s_value <> v then begin
      c.s_value <- v;
      changed := true
    end
  in
  let setr c v =
    if c.d_ready <> v then begin
      c.d_ready <- v;
      changed := true
    end
  in
  ignore set_bool;
  let eval_unit uid =
    let n = G.unit_node g uid in
    let st = units.(uid) in
    let ins = in_chans uid and outs = out_chans uid in
    let all_valid_except k =
      let ok = ref true in
      Array.iteri (fun i c -> if i <> k && not c.d_valid then ok := false) ins;
      !ok
    in
    match n.G.kind with
    | K.Entry ->
      let o = outs.(0) in
      setv o (not st.emitted);
      setval o 0
    | K.Exit -> setr ins.(0) true
    | K.Sink -> setr ins.(0) true
    | K.Source ->
      setv outs.(0) true;
      setval outs.(0) 0
    | K.Const k ->
      setv outs.(0) ins.(0).d_valid;
      setval outs.(0) k;
      setr ins.(0) outs.(0).s_ready
    | K.Fork _ ->
      let i = ins.(0) in
      let dones =
        Array.mapi
          (fun k o ->
            let vo = i.d_valid && not st.sent.(k) in
            setv o vo;
            setval o i.d_value;
            st.sent.(k) || (vo && o.s_ready))
          outs
      in
      setr i (Array.for_all (fun d -> d) dones)
    | K.Lazy_fork _ ->
      let i = ins.(0) in
      let all_ready = Array.for_all (fun o -> o.s_ready) outs in
      Array.iter
        (fun o ->
          setv o (i.d_valid && all_ready);
          setval o i.d_value)
        outs;
      setr i all_ready
    | K.Join _ ->
      let o = outs.(0) in
      let all = Array.for_all (fun c -> c.d_valid) ins in
      setv o all;
      setval o ins.(0).d_value;
      Array.iteri (fun k c -> setr c (o.s_ready && all_valid_except k)) ins
    | K.Merge _ ->
      let o = outs.(0) in
      let winner = ref (-1) in
      Array.iteri (fun k c -> if !winner = -1 && c.d_valid then winner := k) ins;
      setv o (!winner >= 0);
      setval o (if !winner >= 0 then ins.(!winner).d_value else 0);
      Array.iteri (fun k c -> setr c (k = !winner && o.s_ready)) ins
    | K.Control_merge _ ->
      (* A control merge has TWO outputs whose consumers may accept at
         different times; like an eager fork it must track per-output
         delivery and latch the granted input, otherwise a consumer that
         accepts early sees the same token twice (token duplication). *)
      let tok = outs.(0) and idx = outs.(1) in
      let winner = ref st.cm_winner in
      if !winner = -1 then
        Array.iteri (fun k c -> if !winner = -1 && c.d_valid then winner := k) ins;
      let any = !winner >= 0 && ins.(!winner).d_valid in
      setv tok (any && not st.sent.(0));
      setval tok 0;
      setv idx (any && not st.sent.(1));
      setval idx (max !winner 0);
      let done0 = st.sent.(0) || (any && (not st.sent.(0)) && tok.s_ready) in
      let done1 = st.sent.(1) || (any && (not st.sent.(1)) && idx.s_ready) in
      Array.iteri (fun k c -> setr c (k = !winner && done0 && done1)) ins
    | K.Mux _ ->
      let sel = ins.(0) and o = outs.(0) in
      let k = if Array.length ins > 1 then sel.d_value mod (Array.length ins - 1) else 0 in
      let data = ins.(k + 1) in
      let vo = sel.d_valid && data.d_valid in
      setv o vo;
      setval o data.d_value;
      let fire = vo && o.s_ready in
      Array.iteri (fun j c -> if j > 0 then setr c (j = k + 1 && fire)) ins;
      setr sel fire
    | K.Branch ->
      let data = ins.(0) and cond = ins.(1) in
      let t = outs.(0) and f = outs.(1) in
      let c1 = cond.d_value land 1 = 1 in
      let both = data.d_valid && cond.d_valid in
      setv t (both && c1);
      setval t data.d_value;
      setv f (both && not c1);
      setval f data.d_value;
      let taken_ready = if c1 then t.s_ready else f.s_ready in
      setr data (cond.d_valid && taken_ready);
      setr cond (data.d_valid && taken_ready)
    | K.Operator { op; latency = 0; _ } ->
      let o = outs.(0) in
      let all = Array.for_all (fun c -> c.d_valid) ins in
      setv o all;
      let args = Array.to_list (Array.map (fun c -> c.d_value) ins) in
      setval o (if all then Ops.eval op args else 0);
      Array.iteri (fun k c -> setr c (o.s_ready && all_valid_except k)) ins
    | K.Operator { latency; _ } ->
      let o = outs.(0) in
      let v_last, val_last = st.stages.(latency - 1) in
      setv o v_last;
      setval o val_last;
      let enable = o.s_ready || not v_last in
      Array.iteri (fun k c -> setr c (enable && all_valid_except k)) ins
    | K.Load _ ->
      let o = outs.(0) in
      let depth = Array.length st.stages in
      let v_last, val_last = st.stages.(depth - 1) in
      setv o v_last;
      setval o val_last;
      let enable = o.s_ready || not v_last in
      setr ins.(0) enable
    | K.Store _ ->
      (* the completion token is registered: a dependent (guarded) load
         can only fire the cycle after the write, never racing it *)
      let o = outs.(0) in
      let v_pend, _ = st.stages.(0) in
      setv o v_pend;
      setval o 0;
      let enable = o.s_ready || not v_pend in
      Array.iteri (fun k c -> setr c (enable && all_valid_except k)) ins
    | K.Buffer _ ->
      (* standalone buffer unit: behaves like a 1-deep opaque queue on its
         own; modelled with its stages array? For simplicity treat as
         transparent wire here; placement uses channel annotations. *)
      let i = ins.(0) and o = outs.(0) in
      setv o i.d_valid;
      setval o i.d_value;
      setr i o.s_ready
  in
  (* ---- channel link evaluation ---- *)
  let eval_chan c =
    match c.buffered with
    | Some { G.transparent = false; slots } ->
      let occupancy = Queue.length c.fifo + List.length c.staged in
      let dv = not (Queue.is_empty c.fifo) in
      if c.d_valid <> dv then begin
        c.d_valid <- dv;
        changed := true
      end;
      let hv = if dv then Queue.peek c.fifo else 0 in
      if c.d_value <> hv then begin
        c.d_value <- hv;
        changed := true
      end;
      let sr = occupancy < max 1 slots in
      if c.s_ready <> sr then begin
        c.s_ready <- sr;
        changed := true
      end
    | Some { G.transparent = true; slots } ->
      (* capacity without latency: the consumer sees the queue head or,
         if empty, the producer's live offer *)
      let dv, hv =
        if not (Queue.is_empty c.fifo) then (true, Queue.peek c.fifo)
        else (c.s_valid, c.s_value)
      in
      if c.d_valid <> dv then begin
        c.d_valid <- dv;
        changed := true
      end;
      if c.d_value <> hv then begin
        c.d_value <- hv;
        changed := true
      end;
      let sr = Queue.length c.fifo < max 1 slots || c.d_ready in
      if c.s_ready <> sr then begin
        c.s_ready <- sr;
        changed := true
      end
    | None ->
      if c.d_valid <> c.s_valid then begin
        c.d_valid <- c.s_valid;
        changed := true
      end;
      if c.d_value <> c.s_value then begin
        c.d_value <- c.s_value;
        changed := true
      end;
      if c.s_ready <> c.d_ready then begin
        c.s_ready <- c.d_ready;
        changed := true
      end
  in
  (* ---- one clock cycle ---- *)
  let n_units = G.n_units g in
  let cycle_transfers = ref 0 in
  let step () =
    (* combinational fixpoint *)
    Array.iter
      (fun c ->
        c.s_valid <- false;
        c.s_value <- 0;
        c.s_ready <- false;
        c.d_valid <- false;
        c.d_value <- 0;
        c.d_ready <- false)
      chans;
    let iters = ref 0 in
    let continue = ref true in
    while !continue do
      incr iters;
      if !iters > (2 * (n_units + n_chan)) + 8 then
        failwith "Elastic.run: handshake does not stabilise (combinational cycle)";
      changed := false;
      for u = 0 to n_units - 1 do
        eval_unit u
      done;
      Array.iter eval_chan chans;
      continue := !changed
    done;
    (* fire phase *)
    cycle_transfers := 0;
    let fired_in = Array.make n_chan false in
    let fired_out = Array.make n_chan false in
    Array.iteri
      (fun cid c ->
        (match c.buffered with
        | Some { G.transparent = false; _ } ->
          (* consumer side *)
          if c.d_valid && c.d_ready then begin
            ignore (Queue.pop c.fifo);
            fired_in.(cid) <- true
          end;
          (* producer side: token becomes visible next cycle *)
          if c.s_valid && c.s_ready then begin
            c.staged <- c.s_value :: c.staged;
            fired_out.(cid) <- true
          end
        | Some { G.transparent = true; _ } ->
          let from_fifo = not (Queue.is_empty c.fifo) in
          if c.d_valid && c.d_ready then begin
            if from_fifo then ignore (Queue.pop c.fifo) else fired_out.(cid) <- true;
            fired_in.(cid) <- true
          end;
          (* absorb the producer's token if it was not consumed directly *)
          if c.s_valid && c.s_ready && not fired_out.(cid) then begin
            Queue.push c.s_value c.fifo;
            fired_out.(cid) <- true
          end
        | None ->
          if c.d_valid && c.d_ready then begin
            fired_in.(cid) <- true;
            fired_out.(cid) <- true
          end);
        if fired_in.(cid) then st_transfers.(cid) <- st_transfers.(cid) + 1;
        if c.d_valid && not c.d_ready then st_stalls.(cid) <- st_stalls.(cid) + 1;
        if c.d_ready && not c.d_valid then st_starved.(cid) <- st_starved.(cid) + 1;
        if fired_in.(cid) || fired_out.(cid) then incr cycle_transfers)
      chans;
    (* stage the opaque enqueues for next cycle *)
    Array.iter
      (fun c ->
        List.iter (fun v -> Queue.push v c.fifo) (List.rev c.staged);
        c.staged <- [])
      chans;
    (* sequential unit updates *)
    for uid = 0 to n_units - 1 do
      let n = G.unit_node g uid in
      let st = units.(uid) in
      let ins = in_chans uid and outs = out_chans uid in
      let in_fired k = fired_in.((G.unit_node g uid).G.ins.(k) |> Option.get) in
      let out_fired k = fired_out.((G.unit_node g uid).G.outs.(k) |> Option.get) in
      match n.G.kind with
      | K.Entry -> if out_fired 0 then st.emitted <- true
      | K.Exit ->
        if in_fired 0 then begin
          exit_value := Some ins.(0).d_value;
          finished := true
        end
      | K.Fork _ ->
        let i = ins.(0) in
        let dones =
          Array.mapi (fun k o -> st.sent.(k) || (i.d_valid && not st.sent.(k) && o.s_ready)) outs
        in
        let all = Array.for_all (fun d -> d) dones in
        Array.iteri (fun k d -> st.sent.(k) <- (d && not all)) dones
      | K.Control_merge _ ->
        let winner = ref st.cm_winner in
        if !winner = -1 then
          Array.iteri (fun k c -> if !winner = -1 && c.d_valid then winner := k) ins;
        let any = !winner >= 0 && ins.(!winner).d_valid in
        if any then begin
          let done0 = st.sent.(0) || out_fired 0 in
          let done1 = st.sent.(1) || out_fired 1 in
          if done0 && done1 then begin
            (* the granted token was fully delivered and consumed *)
            st.sent.(0) <- false;
            st.sent.(1) <- false;
            st.cm_winner <- -1
          end
          else begin
            st.sent.(0) <- done0;
            st.sent.(1) <- done1;
            st.cm_winner <- !winner
          end
        end
      | K.Operator { op; latency; _ } when latency > 0 ->
        let o = outs.(0) in
        let v_last, _ = st.stages.(latency - 1) in
        let enable = o.s_ready || not v_last in
        if enable then begin
          for k = latency - 1 downto 1 do
            st.stages.(k) <- st.stages.(k - 1)
          done;
          let all_fired = Array.for_all (fun c -> c.d_valid) ins && in_fired 0 in
          if all_fired then begin
            let args = Array.to_list (Array.map (fun c -> c.d_value) ins) in
            st.stages.(0) <- (true, Ops.eval op args land mask_of n.G.width)
          end
          else st.stages.(0) <- (false, 0)
        end
      | K.Load { mem; _ } ->
        let o = outs.(0) in
        let depth = Array.length st.stages in
        let v_last, _ = st.stages.(depth - 1) in
        let enable = o.s_ready || not v_last in
        if enable then begin
          for k = depth - 1 downto 1 do
            st.stages.(k) <- st.stages.(k - 1)
          done;
          if in_fired 0 then
            st.stages.(0) <- (true, mem_read mem ins.(0).d_value land mask_of n.G.width)
          else st.stages.(0) <- (false, 0)
        end
      | K.Store _ -> () (* handled in the write pass below *)
      | _ -> ()
    done;
    (* Memory writes LAST: a load and a store firing in the same cycle
       see the memory in program order (the load's read happened above,
       the dependent-load case is excluded by the registered store
       token). *)
    for uid = 0 to n_units - 1 do
      let n = G.unit_node g uid in
      let st = units.(uid) in
      let ins = in_chans uid and outs = out_chans uid in
      let in_fired k = fired_in.((G.unit_node g uid).G.ins.(k) |> Option.get) in
      match n.G.kind with
      | K.Store { mem } ->
        let o = outs.(0) in
        let v_pend, _ = st.stages.(0) in
        let enable = o.s_ready || not v_pend in
        if enable then begin
          let fired = in_fired 0 in
          if fired then mem_write mem ins.(0).d_value ins.(1).d_value;
          st.stages.(0) <- (fired, 0)
        end
      | _ -> ()
    done
  in
  let tracer = Option.map (fun oc -> Vcd.create oc g) vcd in
  let trace cycle =
    match tracer with
    | None -> ()
    | Some t ->
      Vcd.step t ~cycle (Array.map (fun c -> (c.d_valid, c.s_ready, c.d_value)) chans)
  in
  let cycles = ref 0 in
  let last_transfer = ref 0 in
  let deadlocked = ref false in
  while (not !finished) && (not !deadlocked) && !cycles < config.max_cycles do
    step ();
    trace !cycles;
    incr cycles;
    transfers := !transfers + !cycle_transfers;
    if !cycle_transfers > 0 then last_transfer := !cycles;
    if !cycles - !last_transfer > config.deadlock_window then deadlocked := true
  done;
  Option.iter Vcd.close tracer;
  if !deadlocked && Option.is_some dump_deadlock then begin
    let oc = Option.get dump_deadlock in
    Printf.fprintf oc "=== deadlock dump: %s (cycle %d) ===\n" (G.name g) !cycles;
    Array.iteri
      (fun cid c ->
        let ch = G.channel g cid in
        let srcl = (G.unit_node g ch.G.src).G.label in
        let dstl = (G.unit_node g ch.G.dst).G.label in
        if c.d_valid || c.s_valid || not (Queue.is_empty c.fifo) then
          Printf.fprintf oc
            "  c%d %s -> %s : s_valid=%b s_ready=%b d_valid=%b d_ready=%b fifo=%d\n" cid srcl
            dstl c.s_valid c.s_ready c.d_valid c.d_ready (Queue.length c.fifo))
      chans
  end;
  {
    cycles = !cycles;
    exit_value = !exit_value;
    finished = !finished;
    deadlocked = !deadlocked;
    transfers = !transfers;
    channel_stats =
      Array.init n_chan (fun cid ->
          {
            cs_transfers = st_transfers.(cid);
            cs_stalls = st_stalls.(cid);
            cs_starved = st_starved.(cid);
          });
  }
