lib/sim/elastic.mli: Dataflow
