lib/sim/elastic.ml: Array Dataflow Hashtbl List Option Printf Queue Vcd
