lib/sim/vcd.ml: Array Char Dataflow Printf String
