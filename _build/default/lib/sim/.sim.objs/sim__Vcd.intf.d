lib/sim/vcd.mli: Dataflow
