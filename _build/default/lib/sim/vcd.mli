(** VCD waveform output for elastic simulations (the ModelSim-waveform
    stand-in). One record per channel: its valid and ready handshake bits
    and its data value, sampled once per clock cycle. Open the file in
    GTKWave or any VCD viewer. *)

type t

val create : out_channel -> Dataflow.Graph.t -> t
(** Writes the header: one scope per channel, named
    [c<id>_<src>_to_<dst>]. *)

val step : t -> cycle:int -> (bool * bool * int) array -> unit
(** Dump one cycle; the array is indexed by channel id with
    (valid, ready, data). Only changed signals are written. *)

val close : t -> unit
