(** Cycle-accurate simulation of a buffered dataflow circuit (the
    ModelSim step of the paper's flow, which provides the clock-cycle
    counts of Table I).

    The simulator implements the same elastic protocol as the netlist
    elaboration: eager forks, implicit joins at operators, priority
    merges, and 2-slot opaque buffers with one cycle of latency.
    Each cycle resolves the combinational valid/ready/data network to a
    fixpoint and then fires every channel whose endpoint agreed on a
    transfer. A circuit whose handshake does not stabilise (combinational
    cycle through unbuffered channels) raises [Failure].

    One [run] simulates one kernel invocation: the entry unit emits a
    single control token and the run ends when the exit unit consumes its
    token. *)

type config = {
  max_cycles : int;      (** hard stop (default 2_000_000) *)
  deadlock_window : int; (** cycles without any transfer before giving up *)
}

val default_config : config

type channel_stats = {
  cs_transfers : int;   (** tokens that crossed the channel *)
  cs_stalls : int;      (** cycles the producer offered but the consumer refused *)
  cs_starved : int;     (** cycles the consumer was ready but no token was offered *)
}

type result = {
  cycles : int;              (** cycles until the exit token, or until stop *)
  exit_value : int option;   (** value carried by the exit token *)
  finished : bool;           (** exit fired *)
  deadlocked : bool;
  transfers : int;           (** total channel transfers (diagnostics) *)
  channel_stats : channel_stats array;
      (** per channel id; the profiling view Dynamatic-style tools use to
          find the channels worth buffering *)
}

val run :
  ?config:config ->
  ?memories:(string * int array) list ->
  ?dump_deadlock:out_channel ->
  ?vcd:out_channel ->
  Dataflow.Graph.t ->
  result
(** [memories] provides initial contents per declared memory; missing
    memories are zero-initialised at their declared size. Stores mutate
    the provided arrays in place (so callers can inspect results).
    [vcd] streams a waveform of every channel's valid/ready/data to the
    given out channel (see {!Vcd}). *)
