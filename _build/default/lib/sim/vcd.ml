module G = Dataflow.Graph

type t = {
  oc : out_channel;
  widths : int array;
  mutable prev : (bool * bool * int) array option;
}

(* VCD identifier codes: base-94 strings over the printable characters *)
let code i =
  let rec go i acc =
    let c = Char.chr (33 + (i mod 94)) in
    let acc = String.make 1 c ^ acc in
    if i < 94 then acc else go ((i / 94) - 1) acc
  in
  go i ""

let valid_code c = code (3 * c)
let ready_code c = code ((3 * c) + 1)
let data_code c = code ((3 * c) + 2)

let sanitize s =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' then c else '_') s

let create oc g =
  output_string oc "$date repro $end\n$version repro elastic simulator $end\n";
  output_string oc "$timescale 1 ns $end\n";
  output_string oc (Printf.sprintf "$scope module %s $end\n" (sanitize (G.name g)));
  let widths = Array.make (G.n_channels g) 0 in
  G.iter_channels g (fun c ->
      let cid = c.G.cid in
      widths.(cid) <- c.G.width;
      let base =
        Printf.sprintf "c%d_%s_to_%s" cid
          (sanitize (G.unit_node g c.G.src).G.label)
          (sanitize (G.unit_node g c.G.dst).G.label)
      in
      output_string oc (Printf.sprintf "$var wire 1 %s %s_valid $end\n" (valid_code cid) base);
      output_string oc (Printf.sprintf "$var wire 1 %s %s_ready $end\n" (ready_code cid) base);
      if c.G.width > 0 then
        output_string oc
          (Printf.sprintf "$var wire %d %s %s_data $end\n" c.G.width (data_code cid) base));
  output_string oc "$upscope $end\n$enddefinitions $end\n";
  { oc; widths; prev = None }

let bin_string width v =
  String.init width (fun i -> if (v lsr (width - 1 - i)) land 1 = 1 then '1' else '0')

let step t ~cycle values =
  output_string t.oc (Printf.sprintf "#%d\n" cycle);
  Array.iteri
    (fun cid (valid, ready, data) ->
      let changed field =
        match t.prev with
        | None -> true
        | Some prev ->
          let pv, pr, pd = prev.(cid) in
          (match field with `V -> pv <> valid | `R -> pr <> ready | `D -> pd <> data)
      in
      if changed `V then
        output_string t.oc (Printf.sprintf "%c%s\n" (if valid then '1' else '0') (valid_code cid));
      if changed `R then
        output_string t.oc (Printf.sprintf "%c%s\n" (if ready then '1' else '0') (ready_code cid));
      if t.widths.(cid) > 0 && changed `D then
        output_string t.oc
          (Printf.sprintf "b%s %s\n" (bin_string t.widths.(cid) data) (data_code cid)))
    values;
  t.prev <- Some (Array.copy values)

let close t = flush t.oc
