(** Elastic-circuit generation: mini-C AST → dataflow graph (the
    Dynamatic front end of the paper's Figure 4).

    The generation is structural and compositional, mirroring how
    Dynamatic builds circuits from control flow:

    - every basic block gets a fresh index (used by the iterative flow's
      "evenly distributed across basic blocks" buffer-subset rule);
    - [if] branches every live value on the condition and re-merges it;
    - loops place a priority merge per live value at the header and a
      branch at the exit; the merge back edges are the DFG's cycles
      (later seeded with buffers by the optimiser);
    - constants are triggered by the control token of their block, so
      loop-body constants fire once per iteration;
    - each array with at least one store carries a {e memory token}
      threaded through all its stores (and joined into loads of that
      array) to preserve memory ordering without an LSQ — the
      conservative discipline of LSQ-less dataflow HLS;
    - fan-out is resolved in a final pass that inserts eager forks, and
      unconsumed outputs are sunk.

    Scalar parameters are bound to compile-time constants via [args]
    (the paper's kernels take array inputs; scalars are configuration). *)

val compile : ?width:int -> ?args:(string * int) list -> Ast.func -> Dataflow.Graph.t
(** Raises [Invalid_argument] on unbound variables or if the function
    lacks a [return] (one is synthesised returning 0). *)
