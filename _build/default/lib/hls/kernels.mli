(** The paper's benchmark suite, §VI-A: kernels from recent dataflow-HLS
    work and the PolyBench / MachSuite collections, written in the mini-C
    subset.

    Array extents are scaled down from the paper's (8-bit datapath, up to
    256-element arrays) so that gate-level synthesis and cycle-accurate
    simulation stay laptop-fast; this shrinks absolute cycle counts but
    preserves the circuit structures (loop nests, guarded accumulation,
    load-store dependencies) that the buffer-placement comparison is
    about. *)

type t = {
  name : string;
  source : string;                            (** mini-C text *)
  mems : unit -> (string * int array) list;   (** fresh, deterministic inputs *)
}

val all : t list
(** In the paper's Table I order: insertion_sort, stencil_2d, covariance,
    gsum, gsumif, gaussian, matrix, mvt, gemver. *)

val by_name : string -> t
(** Raises [Not_found]. *)

val func : t -> Ast.func
(** Parse the kernel source. *)

val graph : ?width:int -> t -> Dataflow.Graph.t
(** Parse and compile to an (unbuffered) dataflow circuit; [width] is
    the datapath bit-width (default 8). *)

val reference : ?width:int -> t -> int
(** Interpreter result on the kernel's own input data, at the matching
    datapath width. *)
