type binop =
  | Add | Sub | Mul
  | Shl | Lshr
  | And | Or | Xor
  | Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Int of int
  | Var of string
  | Load of string * expr
  | Binop of binop * expr * expr
  | Not of expr
  | Ternary of expr * expr * expr

type stmt =
  | Decl of string * expr
  | Assign of string * expr
  | Store of string * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt * expr * stmt * stmt list
  | Return of expr
  | Break
  | Continue

type param = Scalar of string | Array of string * int

type func = {
  fname : string;
  params : param list;
  body : stmt list;
}

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*"
  | Shl -> "<<" | Lshr -> ">>"
  | And -> "&" | Or -> "|" | Xor -> "^"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let rec pp_expr fmt = function
  | Int n -> Format.pp_print_int fmt n
  | Var v -> Format.pp_print_string fmt v
  | Load (a, e) -> Format.fprintf fmt "%s[%a]" a pp_expr e
  | Binop (op, a, b) -> Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_name op) pp_expr b
  | Not e -> Format.fprintf fmt "!%a" pp_expr e
  | Ternary (c, a, b) ->
    Format.fprintf fmt "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b

let rec pp_stmt fmt s = pp_stmt_indent fmt 0 s

and pp_stmt_indent fmt indent s =
  let pad = String.make indent ' ' in
  match s with
  | Decl (x, e) -> Format.fprintf fmt "%sint %s = %a;@\n" pad x pp_expr e
  | Assign (x, e) -> Format.fprintf fmt "%s%s = %a;@\n" pad x pp_expr e
  | Store (a, i, e) -> Format.fprintf fmt "%s%s[%a] = %a;@\n" pad a pp_expr i pp_expr e
  | If (c, t, f) ->
    Format.fprintf fmt "%sif (%a) {@\n" pad pp_expr c;
    List.iter (pp_stmt_indent fmt (indent + 2)) t;
    if f <> [] then begin
      Format.fprintf fmt "%s} else {@\n" pad;
      List.iter (pp_stmt_indent fmt (indent + 2)) f
    end;
    Format.fprintf fmt "%s}@\n" pad
  | While (c, body) ->
    Format.fprintf fmt "%swhile (%a) {@\n" pad pp_expr c;
    List.iter (pp_stmt_indent fmt (indent + 2)) body;
    Format.fprintf fmt "%s}@\n" pad
  | For (init, c, step, body) ->
    let one_line fmt s =
      match s with
      | Decl (x, e) -> Format.fprintf fmt "int %s = %a" x pp_expr e
      | Assign (x, e) -> Format.fprintf fmt "%s = %a" x pp_expr e
      | _ -> Format.fprintf fmt "..."
    in
    Format.fprintf fmt "%sfor (%a; %a; %a) {@\n" pad one_line init pp_expr c one_line step;
    List.iter (pp_stmt_indent fmt (indent + 2)) body;
    Format.fprintf fmt "%s}@\n" pad
  | Return e -> Format.fprintf fmt "%sreturn %a;@\n" pad pp_expr e
  | Break -> Format.fprintf fmt "%sbreak;@\n" pad
  | Continue -> Format.fprintf fmt "%scontinue;@\n" pad

let pp_func fmt f =
  let param fmt = function
    | Scalar name -> Format.fprintf fmt "int %s" name
    | Array (name, size) -> Format.fprintf fmt "int %s[%d]" name size
  in
  Format.fprintf fmt "int %s(%a) {@\n" f.fname
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ") param)
    f.params;
  List.iter (pp_stmt_indent fmt 2) f.body;
  Format.fprintf fmt "}@\n"
