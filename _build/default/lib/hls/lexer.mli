(** Hand-rolled lexer for the mini-C kernel language. *)

type token =
  | INT_KW
  | IF | ELSE | FOR | WHILE | RETURN | BREAK | CONTINUE
  | IDENT of string
  | NUM of int
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | QUESTION | COLON
  | ASSIGN
  | PLUS | MINUS | STAR | SHL | SHR | AMP | PIPE | CARET | BANG
  | EQ | NE | LT | LE | GT | GE
  | EOF

exception Error of string * int  (** message, byte offset *)

val tokenize : string -> token list
val pp_token : Format.formatter -> token -> unit
