type t = {
  name : string;
  source : string;
  mems : unit -> (string * int array) list;
}

let data ~seed ~size ~range =
  let rng = Support.Rng.create seed in
  Array.init size (fun _ -> Support.Rng.int rng range)

let insertion_sort =
  {
    name = "insertion_sort";
    source =
      {|
int insertion_sort(int a[16]) {
  for (int i = 1; i < 16; i = i + 1) {
    int key = a[i];
    int j = i;
    int go = 1;
    while ((j > 0) & go) {
      int p = a[j - 1];
      if (p > key) {
        a[j] = p;
        j = j - 1;
      } else {
        go = 0;
      }
    }
    a[j] = key;
  }
  return a[10];
}
|};
    mems = (fun () -> [ ("a", data ~seed:11 ~size:16 ~range:200) ]);
  }

let stencil_2d =
  {
    name = "stencil_2d";
    source =
      {|
int stencil_2d(int orig[256], int sol[256], int filt[9]) {
  int sum = 0;
  for (int r = 0; r < 14; r = r + 1) {
    for (int c = 0; c < 14; c = c + 1) {
      int t = 0;
      for (int k1 = 0; k1 < 3; k1 = k1 + 1) {
        for (int k2 = 0; k2 < 3; k2 = k2 + 1) {
          int m = filt[k1 * 3 + k2] * orig[((r + k1) << 4) + c + k2];
          t = t + m;
        }
      }
      sol[(r << 4) + c] = t;
      sum = sum + t;
    }
  }
  return sum;
}
|};
    mems =
      (fun () ->
        [
          ("orig", data ~seed:22 ~size:256 ~range:16);
          ("sol", Array.make 256 0);
          ("filt", data ~seed:23 ~size:9 ~range:4);
        ]);
  }

let covariance =
  {
    name = "covariance";
    source =
      {|
int covariance(int data[64], int cov[64], int mean[8]) {
  for (int j = 0; j < 8; j = j + 1) {
    int m = 0;
    for (int i = 0; i < 8; i = i + 1) {
      m = m + data[(i << 3) + j];
    }
    mean[j] = m >> 3;
  }
  for (int j1 = 0; j1 < 8; j1 = j1 + 1) {
    for (int j2 = 0; j2 < 8; j2 = j2 + 1) {
      int acc = 0;
      for (int i2 = 0; i2 < 8; i2 = i2 + 1) {
        acc = acc + (data[(i2 << 3) + j1] - mean[j1]) * (data[(i2 << 3) + j2] - mean[j2]);
      }
      cov[(j1 << 3) + j2] = acc;
    }
  }
  return cov[9];
}
|};
    mems =
      (fun () ->
        [
          ("data", data ~seed:33 ~size:64 ~range:16);
          ("cov", Array.make 64 0);
          ("mean", Array.make 8 0);
        ]);
  }

let gsum =
  {
    name = "gsum";
    source =
      {|
int gsum(int a[100]) {
  int s = 0;
  for (int i = 0; i < 100; i = i + 1) {
    int d = a[i];
    if (d < 100) {
      s = s + d;
    }
  }
  return s;
}
|};
    mems = (fun () -> [ ("a", data ~seed:44 ~size:100 ~range:150) ]);
  }

let gsumif =
  {
    name = "gsumif";
    source =
      {|
int gsumif(int a[100]) {
  int s = 0;
  for (int i = 0; i < 100; i = i + 1) {
    int d = a[i];
    if (d < 64) {
      s = s + d + d;
    } else {
      s = s + (d >> 1);
    }
  }
  return s;
}
|};
    mems = (fun () -> [ ("a", data ~seed:55 ~size:100 ~range:128) ]);
  }

let gaussian =
  {
    name = "gaussian";
    source =
      {|
int gaussian(int c[16], int A[256]) {
  for (int j = 1; j < 15; j = j + 1) {
    for (int i = j + 1; i < 16; i = i + 1) {
      for (int k = j; k < 16; k = k + 1) {
        A[(i << 4) + k] = A[(i << 4) + k] - c[j] * A[(j << 4) + k];
      }
    }
  }
  return A[37];
}
|};
    mems =
      (fun () ->
        [ ("c", data ~seed:66 ~size:16 ~range:4); ("A", data ~seed:67 ~size:256 ~range:32) ]);
  }

let matrix =
  {
    name = "matrix";
    source =
      {|
int matrix(int A[64], int B[64], int C[64]) {
  for (int i = 0; i < 8; i = i + 1) {
    for (int j = 0; j < 8; j = j + 1) {
      int acc = 0;
      for (int k = 0; k < 8; k = k + 1) {
        acc = acc + A[(i << 3) + k] * B[(k << 3) + j];
      }
      C[(i << 3) + j] = acc;
    }
  }
  return C[9];
}
|};
    mems =
      (fun () ->
        [
          ("A", data ~seed:77 ~size:64 ~range:16);
          ("B", data ~seed:78 ~size:64 ~range:16);
          ("C", Array.make 64 0);
        ]);
  }

let mvt =
  {
    name = "mvt";
    source =
      {|
int mvt(int A[64], int x1[8], int x2[8], int y1[8], int y2[8]) {
  for (int i = 0; i < 8; i = i + 1) {
    int acc = x1[i];
    for (int j = 0; j < 8; j = j + 1) {
      acc = acc + A[(i << 3) + j] * y1[j];
    }
    x1[i] = acc;
  }
  for (int i2 = 0; i2 < 8; i2 = i2 + 1) {
    int acc2 = x2[i2];
    for (int j2 = 0; j2 < 8; j2 = j2 + 1) {
      acc2 = acc2 + A[(j2 << 3) + i2] * y2[j2];
    }
    x2[i2] = acc2;
  }
  return x1[3] + x2[4];
}
|};
    mems =
      (fun () ->
        [
          ("A", data ~seed:88 ~size:64 ~range:16);
          ("x1", data ~seed:89 ~size:8 ~range:16);
          ("x2", data ~seed:90 ~size:8 ~range:16);
          ("y1", data ~seed:91 ~size:8 ~range:16);
          ("y2", data ~seed:92 ~size:8 ~range:16);
        ]);
  }

let gemver =
  {
    name = "gemver";
    source =
      {|
int gemver(int A[64], int u1[8], int v1[8], int u2[8], int v2[8], int x[8], int y[8], int w[8], int z[8]) {
  for (int i = 0; i < 8; i = i + 1) {
    for (int j = 0; j < 8; j = j + 1) {
      A[(i << 3) + j] = A[(i << 3) + j] + u1[i] * v1[j] + u2[i] * v2[j];
    }
  }
  for (int i2 = 0; i2 < 8; i2 = i2 + 1) {
    int acc = x[i2];
    for (int j2 = 0; j2 < 8; j2 = j2 + 1) {
      acc = acc + A[(j2 << 3) + i2] * y[j2];
    }
    x[i2] = acc + z[i2];
  }
  for (int i3 = 0; i3 < 8; i3 = i3 + 1) {
    int acc2 = w[i3];
    for (int j3 = 0; j3 < 8; j3 = j3 + 1) {
      acc2 = acc2 + A[(i3 << 3) + j3] * x[j3];
    }
    w[i3] = acc2;
  }
  return w[5];
}
|};
    mems =
      (fun () ->
        [
          ("A", data ~seed:99 ~size:64 ~range:8);
          ("u1", data ~seed:100 ~size:8 ~range:8);
          ("v1", data ~seed:101 ~size:8 ~range:8);
          ("u2", data ~seed:102 ~size:8 ~range:8);
          ("v2", data ~seed:103 ~size:8 ~range:8);
          ("x", data ~seed:104 ~size:8 ~range:8);
          ("y", data ~seed:105 ~size:8 ~range:8);
          ("w", data ~seed:106 ~size:8 ~range:8);
          ("z", data ~seed:107 ~size:8 ~range:8);
        ]);
  }

let all =
  [ insertion_sort; stencil_2d; covariance; gsum; gsumif; gaussian; matrix; mvt; gemver ]

let by_name name = List.find (fun k -> k.name = name) all

let func k = Parser.parse k.source

let graph ?width k = Compile.compile ?width (func k)

let reference ?width k = Interp.run ?width (func k) ~args:[] ~memories:(k.mems ())
