(** Abstract syntax of the mini-C kernel language.

    The subset covers what the paper's PolyBench/MachSuite-derived
    kernels need: [int] scalars, one-dimensional [int] arrays (2-D
    accesses are written with explicit flat indexing), [for]/[while]
    loops, [if]/[else], and integer arithmetic. Semantics are unsigned,
    modulo the circuit's data width. *)

type binop =
  | Add | Sub | Mul
  | Shl | Lshr
  | And | Or | Xor
  | Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Int of int
  | Var of string
  | Load of string * expr            (** a\[e\] *)
  | Binop of binop * expr * expr
  | Not of expr                      (** !e = (e == 0) *)
  | Ternary of expr * expr * expr    (** c ? a : b — if-converted to a select unit *)

type stmt =
  | Decl of string * expr            (** int x = e; *)
  | Assign of string * expr          (** x = e; *)
  | Store of string * expr * expr    (** a\[e1\] = e2; *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt * expr * stmt * stmt list
  | Return of expr
  | Break                            (** leave the innermost loop *)
  | Continue                         (** next iteration of the innermost loop *)

type param = Scalar of string | Array of string * int  (** name, size *)

type func = {
  fname : string;
  params : param list;
  body : stmt list;
}

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_func : Format.formatter -> func -> unit
