(** AST-level desugaring of [break] / [continue] into the flag-guarded
    form the structural circuit generator can compile:

    {v
    while (c) { A; if (p) break; B; }
    v}

    becomes

    {v
    int _brk = 0;
    while (!_brk & c) {
      int _skp = 0;
      A;
      if (p) { _brk = 1; } else { }
      if (!_brk & !_skp) { B; }
    }
    v}

    (with [continue] setting [_skp] instead). The reference interpreter
    executes [break]/[continue] natively, so the differential tests
    validate this lowering. *)

val desugar : Ast.func -> Ast.func
(** Raises [Invalid_argument] if [break]/[continue] appears outside any
    loop. Programs without them are returned unchanged. *)
