(** Recursive-descent parser for the mini-C kernel language.

    Grammar (C-like precedence, loosest to tightest:
    [| ^ &], comparisons, shifts, [+ -], [*], unary):

    {v
    func   := 'int' ident '(' param,* ')' '{' stmt* '}'
    param  := 'int' ident ('[' num ']')?
    stmt   := 'int' ident '=' expr ';'
            | ident '=' expr ';'
            | ident '[' expr ']' '=' expr ';'
            | 'if' '(' expr ')' block ('else' block)?
            | 'while' '(' expr ')' block
            | 'for' '(' simple ';' expr ';' simple ')' block
            | 'return' expr ';'
    v} *)

exception Error of string

val parse : string -> Ast.func
(** Raises [Error] or [Lexer.Error] on malformed input. *)
