lib/hls/kernels.mli: Ast Dataflow
