lib/hls/interp.mli: Ast
