lib/hls/ast.mli: Format
