lib/hls/kernels.ml: Array Compile Interp List Parser Support
