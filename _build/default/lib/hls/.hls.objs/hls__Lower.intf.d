lib/hls/lower.mli: Ast
