lib/hls/compile.mli: Ast Dataflow
