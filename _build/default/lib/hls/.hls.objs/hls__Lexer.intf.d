lib/hls/lexer.mli: Format
