lib/hls/lower.ml: Ast List Printf
