lib/hls/parser.mli: Ast
