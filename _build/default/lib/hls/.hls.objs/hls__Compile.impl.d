lib/hls/compile.ml: Array Ast Dataflow Hashtbl List Lower Option Printf Set String
