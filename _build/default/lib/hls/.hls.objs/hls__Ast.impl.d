lib/hls/ast.ml: Format List String
