lib/hls/parser.ml: Ast Format Lexer List
