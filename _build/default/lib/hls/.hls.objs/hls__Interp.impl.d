lib/hls/interp.ml: Array Ast Hashtbl List Option
