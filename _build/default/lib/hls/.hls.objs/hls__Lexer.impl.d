lib/hls/lexer.ml: Format List Printf String
