exception Runaway

exception Returned of int

exception Break_loop

exception Continue_loop

let run ?(width = 8) ?(max_steps = 10_000_000) (f : Ast.func) ~args ~memories =
  let mask = (1 lsl width) - 1 in
  let steps = ref 0 in
  let tick () =
    incr steps;
    if !steps > max_steps then raise Runaway
  in
  let vars : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let mems : (string, int array) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun p ->
      match p with
      | Ast.Scalar name ->
        Hashtbl.replace vars name (Option.value (List.assoc_opt name args) ~default:0 land mask)
      | Ast.Array (name, size) ->
        let arr =
          match List.assoc_opt name memories with Some a -> a | None -> Array.make size 0
        in
        Hashtbl.replace mems name arr)
    f.Ast.params;
  let mem_ref name idx =
    let a = Hashtbl.find mems name in
    if Array.length a = 0 then invalid_arg "empty array";
    (a, abs idx mod Array.length a)
  in
  let rec eval e =
    tick ();
    match e with
    | Ast.Int n -> n land mask
    | Ast.Var x -> (
      match Hashtbl.find_opt vars x with
      | Some v -> v
      | None -> invalid_arg ("Interp: unbound variable " ^ x))
    | Ast.Load (a, idx) ->
      let arr, i = mem_ref a (eval idx) in
      arr.(i) land mask
    | Ast.Not e -> if eval e = 0 then 1 else 0
    | Ast.Ternary (c, a, b) -> if eval c <> 0 then eval a else eval b
    | Ast.Binop (op, a, b) ->
      let x = eval a and y = eval b in
      let r =
        match op with
        | Ast.Add -> x + y
        | Ast.Sub -> x - y
        | Ast.Mul -> x * y
        | Ast.Shl -> x lsl (y land 63)
        | Ast.Lshr -> x lsr (y land 63)
        | Ast.And -> x land y
        | Ast.Or -> x lor y
        | Ast.Xor -> x lxor y
        | Ast.Eq -> if x = y then 1 else 0
        | Ast.Ne -> if x <> y then 1 else 0
        | Ast.Lt -> if x < y then 1 else 0
        | Ast.Le -> if x <= y then 1 else 0
        | Ast.Gt -> if x > y then 1 else 0
        | Ast.Ge -> if x >= y then 1 else 0
      in
      r land mask
  in
  let rec exec_stmts stmts = List.iter exec stmts
  and exec s =
    tick ();
    match s with
    | Ast.Decl (x, e) | Ast.Assign (x, e) -> Hashtbl.replace vars x (eval e)
    | Ast.Store (a, idx, e) ->
      let v = eval e in
      let arr, i = mem_ref a (eval idx) in
      arr.(i) <- v
    | Ast.If (c, t, f) -> if eval c <> 0 then exec_stmts t else exec_stmts f
    | Ast.While (c, body) -> (
      try
        while eval c <> 0 do
          try exec_stmts body with Continue_loop -> ()
        done
      with Break_loop -> ())
    | Ast.For (init, c, step, body) -> (
      exec init;
      try
        while eval c <> 0 do
          (try exec_stmts body with Continue_loop -> ());
          exec step
        done
      with Break_loop -> ())
    | Ast.Return e -> raise (Returned (eval e))
    | Ast.Break -> raise Break_loop
    | Ast.Continue -> raise Continue_loop
  in
  try
    exec_stmts f.Ast.body;
    0
  with Returned v -> v
