(** Reference interpreter of the mini-C AST with circuit semantics:
    unsigned arithmetic modulo the datapath width, array indices wrapped
    to the array size. Used to differentially test the compiled dataflow
    circuit (the simulator must produce the same exit value). *)

exception Runaway
(** Raised when execution exceeds the step budget (infinite loop). *)

val run :
  ?width:int ->
  ?max_steps:int ->
  Ast.func ->
  args:(string * int) list ->
  memories:(string * int array) list ->
  int
(** [args] binds scalar parameters; [memories] binds array parameters
    (mutated in place by stores). Default [width] 8, [max_steps] 10M. *)
