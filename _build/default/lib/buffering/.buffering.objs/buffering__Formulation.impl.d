lib/buffering/formulation.ml: Array Cfdfc Dataflow Format Hashtbl List Milp Printf Timing
