lib/buffering/cfdfc.mli: Dataflow
