lib/buffering/slack.mli: Dataflow
