lib/buffering/cfdfc.ml: Dataflow Hashtbl List
