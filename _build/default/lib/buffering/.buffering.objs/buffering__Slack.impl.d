lib/buffering/slack.ml: Array Dataflow Hashtbl List
