lib/buffering/formulation.mli: Cfdfc Dataflow Timing
