module G = Dataflow.Graph
module K = Dataflow.Unit_kind
module A = Dataflow.Analysis

let channel_latency g (c : G.chan) =
  let unit_lat = K.latency (G.unit_node g c.G.src).G.kind in
  let buf_lat =
    match c.G.buffer with Some { G.transparent = false; _ } -> 1 | _ -> 0
  in
  unit_lat + buf_lat

let compute ?(cap = 4) g =
  let back =
    match G.marked_back_edges g with [] -> A.back_edges g | marked -> marked
  in
  let is_back = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace is_back c ()) back;
  (* longest registered latency from entries over the acyclic skeleton *)
  let n = G.n_units g in
  let depth = Array.make n 0 in
  let order = A.topo_order g in
  List.iter
    (fun u ->
      List.iter
        (fun (cid, v) ->
          if not (Hashtbl.mem is_back cid) then begin
            let c = G.channel g cid in
            let d = depth.(u) + channel_latency g c in
            if d > depth.(v) then depth.(v) <- d
          end)
        (G.succs g u))
    order;
  G.fold_channels g
    (fun acc c ->
      if Hashtbl.mem is_back c.G.cid || c.G.buffer <> None then acc
      else begin
        let slack = depth.(c.G.dst) - depth.(c.G.src) - channel_latency g c in
        if slack > 0 then (c.G.cid, min cap slack) :: acc else acc
      end)
    []
  |> List.rev

let apply ?cap g =
  let pads = compute ?cap g in
  List.iter
    (fun (cid, slots) -> G.set_buffer g cid (Some { G.transparent = true; slots }))
    pads;
  List.length pads
