(** Slack matching: transparent-buffer sizing.

    After opaque buffers fix the circuit's cycle time and cycles, unequal
    registered latencies on reconvergent paths still cost throughput: the
    shorter path's token waits with nowhere to sit, back-pressuring its
    producer. The classical cure (the sizing half of the FPGA'20
    formulation; also Najibi & Beerel's slack matching) adds {e
    transparent} capacity — queue slots without latency — on the shallow
    side.

    This implementation computes, per unit, the longest registered
    latency from the circuit entries over the acyclic skeleton (back
    edges removed), and gives every channel whose endpoint depths differ
    by more than its own latency enough transparent slots to park the
    early tokens. *)

val compute : ?cap:int -> Dataflow.Graph.t -> (Dataflow.Graph.channel_id * int) list
(** Channels needing transparent capacity, with slot counts (capped at
    [cap], default 4). Channels that already have a buffer are skipped. *)

val apply : ?cap:int -> Dataflow.Graph.t -> int
(** Compute and install the transparent buffers; returns how many
    channels were padded. *)
