module L = Techmap.Lutgraph

type item = It_lut of int | It_seq of int

type t = {
  side : int;
  pos : (item, int * int) Hashtbl.t;
  wirelength : int;
}

let distance t a b =
  let xa, ya = Hashtbl.find t.pos a in
  let xb, yb = Hashtbl.find t.pos b in
  abs (xa - xb) + abs (ya - yb)

let item_of_endpoint = function L.Lut l -> It_lut l | L.Seq gid -> It_seq gid

let run ?(seed = 1) ?(effort = 1.0) net (lg : L.t) =
  let rng = Support.Rng.create seed in
  (* ---- collect items ---- *)
  let seq_items = Hashtbl.create 64 in
  List.iter
    (fun { L.e_src; e_dst } ->
      (match e_src with L.Seq gid -> Hashtbl.replace seq_items gid () | L.Lut _ -> ());
      match e_dst with L.Seq gid -> Hashtbl.replace seq_items gid () | L.Lut _ -> ())
    lg.L.edges;
  let items =
    Array.append
      (Array.init (L.n_luts lg) (fun l -> It_lut l))
      (Array.of_list (Hashtbl.fold (fun gid () acc -> It_seq gid :: acc) seq_items []))
  in
  (* group same-unit items for a reasonable initial placement *)
  let owner_of = function
    | It_lut l -> lg.L.luts.(l).L.owner
    | It_seq gid -> (Net.gate net gid).Net.owner
  in
  Array.sort (fun a b -> compare (owner_of a, a) (owner_of b, b)) items;
  let n = Array.length items in
  let side = Arch.grid_side n in
  let pos = Hashtbl.create (2 * n) in
  let loc_of = Array.make (side * side) None in
  Array.iteri
    (fun i it ->
      let x = i mod side and y = i / side in
      Hashtbl.replace pos it (x, y);
      loc_of.((y * side) + x) <- Some it)
    items;
  (* ---- incidence lists over LUT-graph edges ---- *)
  let edges =
    List.map (fun { L.e_src; e_dst } -> (item_of_endpoint e_src, item_of_endpoint e_dst)) lg.L.edges
    |> List.filter (fun (a, b) -> a <> b)
    |> Array.of_list
  in
  let incident = Hashtbl.create (2 * n) in
  Array.iteri
    (fun ei (a, b) ->
      Hashtbl.replace incident a (ei :: Option.value (Hashtbl.find_opt incident a) ~default:[]);
      Hashtbl.replace incident b (ei :: Option.value (Hashtbl.find_opt incident b) ~default:[]))
    edges;
  let t = { side; pos; wirelength = 0 } in
  let edge_len ei =
    let a, b = edges.(ei) in
    distance t a b
  in
  let total_len () = Array.fold_left ( + ) 0 (Array.init (Array.length edges) edge_len) in
  let cost = ref (total_len ()) in
  (* ---- annealing ---- *)
  let moves = int_of_float (effort *. float_of_int (max 1 (40 * n))) in
  let temp = ref (4.0 +. (float_of_int !cost /. float_of_int (max 1 n))) in
  let cooling = exp (log (0.01 /. !temp) /. float_of_int (max 1 moves)) in
  for _ = 1 to moves do
    (* pick an item and a random target location; swap occupants *)
    let it = items.(Support.Rng.int rng n) in
    let tx = Support.Rng.int rng side and ty = Support.Rng.int rng side in
    let x0, y0 = Hashtbl.find pos it in
    if (tx, ty) <> (x0, y0) then begin
      let other = loc_of.((ty * side) + tx) in
      let involved =
        Option.value (Hashtbl.find_opt incident it) ~default:[]
        @ (match other with
          | Some o -> Option.value (Hashtbl.find_opt incident o) ~default:[]
          | None -> [])
        |> List.sort_uniq compare
      in
      let before = List.fold_left (fun acc ei -> acc + edge_len ei) 0 involved in
      Hashtbl.replace pos it (tx, ty);
      (match other with Some o -> Hashtbl.replace pos o (x0, y0) | None -> ());
      let after = List.fold_left (fun acc ei -> acc + edge_len ei) 0 involved in
      let delta = after - before in
      let accept =
        delta <= 0 || Support.Rng.float rng 1.0 < exp (-.float_of_int delta /. !temp)
      in
      if accept then begin
        loc_of.((ty * side) + tx) <- Some it;
        loc_of.((y0 * side) + x0) <- other;
        cost := !cost + delta
      end
      else begin
        (* undo *)
        Hashtbl.replace pos it (x0, y0);
        match other with Some o -> Hashtbl.replace pos o (tx, ty) | None -> ()
      end
    end;
    temp := !temp *. cooling
  done;
  { t with wirelength = !cost }
