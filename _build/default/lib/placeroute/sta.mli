(** Post-place-and-route static timing analysis.

    Longest register-to-register path over the mapped LUT graph, with
    each LUT costing {!Arch.lut_delay} and each connection costing the
    placed Manhattan-distance wire delay. This yields the achieved clock
    period the paper reports (CP columns of Table I), which exceeds
    [levels x 0.7] by the routing contribution the paper's approach
    deliberately does not model. *)

type report = {
  cp : float;           (** achieved clock period, ns *)
  logic_levels : int;   (** max LUT levels between registers *)
  n_luts : int;
  n_ffs : int;
  wirelength : int;
  critical_path : int list;
      (** LUT ids along the slowest register-to-register path, source to
          sink — the path the optimiser would need to break next *)
}

val run : Net.t -> Techmap.Lutgraph.t -> Place.t -> report

val analyze : ?seed:int -> ?effort:float -> Net.t -> Techmap.Lutgraph.t -> report
(** Convenience: place then analyse. *)

val pp_critical_path :
  Format.formatter -> Dataflow.Graph.t -> Techmap.Lutgraph.t -> report -> unit
(** Human-readable critical path: each LUT with the dataflow unit it is
    labelled with. *)
