(** Simulated-annealing placement of the mapped circuit.

    Items are the LUTs plus every sequential/IO endpoint of the LUT
    graph. The annealer minimises total Manhattan wirelength over the
    LUT-graph edges; it is deterministic for a given seed. The initial
    placement clusters items of the same dataflow unit, which is roughly
    what a real placer's wirelength optimisation achieves. *)

type item = It_lut of int | It_seq of int  (** LUT id | netlist gate id *)

type t = {
  side : int;
  pos : (item, int * int) Hashtbl.t;
  wirelength : int;   (** total Manhattan length after annealing *)
}

val distance : t -> item -> item -> int

val item_of_endpoint : Techmap.Lutgraph.endpoint -> item

val run : ?seed:int -> ?effort:float -> Net.t -> Techmap.Lutgraph.t -> t
(** [effort] scales the annealing move budget (default 1.0). *)
