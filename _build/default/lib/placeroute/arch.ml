let lut_delay = 0.7

(* Base connection cost plus per-tile segment delay.  With typical
   post-placement distances of 1-8 tiles this contributes 0.1-0.4 ns per
   hop, i.e. a 4-6 level path picks up 0.3-1.3 ns of wiring — matching
   the paper's gap between the 4.2 ns target and the measured CPs. *)
let wire_delay dist = 0.04 +. (0.012 *. float_of_int dist)

let grid_side cells =
  let c = max 1 cells in
  int_of_float (ceil (sqrt (float_of_int c *. 1.3)))
