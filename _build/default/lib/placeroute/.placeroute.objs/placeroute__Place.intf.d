lib/placeroute/place.mli: Hashtbl Net Techmap
