lib/placeroute/sta.mli: Dataflow Format Net Place Techmap
