lib/placeroute/arch.ml:
