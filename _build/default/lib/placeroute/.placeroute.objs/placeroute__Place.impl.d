lib/placeroute/place.ml: Arch Array Hashtbl List Net Option Support Techmap
