lib/placeroute/arch.mli:
