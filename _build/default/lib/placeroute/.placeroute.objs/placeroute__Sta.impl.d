lib/placeroute/sta.ml: Arch Array Dataflow Format List Net Place Techmap
