(** FPGA architecture model (a Stratix-IV-flavoured island grid).

    One cell per LUT or flip-flop; routing delay is a linear function of
    Manhattan distance, calibrated so that a 6-level path plus typical
    wiring lands near the paper's observed 4.5–5.5 ns clock periods. *)

val lut_delay : float
(** 0.7 ns per logic level — the paper's calibration constant. *)

val wire_delay : int -> float
(** Routing delay for a connection of a given Manhattan distance. *)

val grid_side : int -> int
(** Grid side length for a given cell count (30% spare capacity). *)
