module G = Dataflow.Graph

let check = Alcotest.check

(* The loop fixture is tiny, so the complete flows run in well under a
   second and still exercise synthesis, timing models, the MILP, the
   level check and the subset iteration. *)

let test_seed_back_edges () =
  let g, back = Fixtures.loop ~buffered:false () in
  let seeded = Core.Flow.seed_back_edges g in
  check Alcotest.bool "back edge seeded" true (List.mem back seeded);
  check Alcotest.bool "buffer placed" true (G.buffer g back <> None)

let test_iterative_on_loop () =
  let g, _ = Fixtures.loop ~buffered:false () in
  let outcome = Core.Flow.iterative g in
  check Alcotest.bool "has iterations" true (outcome.Core.Flow.iterations <> []);
  check Alcotest.bool "final levels positive" true (outcome.Core.Flow.final_levels > 0);
  check Alcotest.bool "buffers placed" true (outcome.Core.Flow.total_buffers >= 1);
  (* the optimised circuit must still be a live elastic circuit *)
  let r = Sim.Elastic.run outcome.Core.Flow.graph in
  check Alcotest.bool "still functional" true r.Sim.Elastic.finished;
  check (Alcotest.option Alcotest.int) "same result" (Some 10) r.Sim.Elastic.exit_value

let test_baseline_on_loop () =
  let g, _ = Fixtures.loop ~buffered:false () in
  let outcome = Core.Flow.baseline g in
  check Alcotest.int "single shot" 1 (List.length outcome.Core.Flow.iterations);
  let r = Sim.Elastic.run outcome.Core.Flow.graph in
  check Alcotest.bool "functional" true r.Sim.Elastic.finished;
  check (Alcotest.option Alcotest.int) "same result" (Some 10) r.Sim.Elastic.exit_value

let test_input_not_mutated () =
  let g, back = Fixtures.loop ~buffered:false () in
  let _ = Core.Flow.iterative g in
  check Alcotest.bool "input untouched" true (G.buffer g back = None)

let test_tight_target_iterates () =
  (* an unreachably tight level target must exhaust the iteration budget
     without crashing *)
  let g, _ = Fixtures.loop ~buffered:false () in
  let config =
    {
      Core.Flow.default_config with
      Core.Flow.target_levels = 1;
      max_iterations = 2;
      milp = { Core.Flow.default_config.Core.Flow.milp with Buffering.Formulation.cp_target = 0.7 };
    }
  in
  let outcome = Core.Flow.iterative ~config g in
  check Alcotest.bool "did not meet target" false outcome.Core.Flow.met_target;
  check Alcotest.int "used the budget" 2 (List.length outcome.Core.Flow.iterations)

let test_report_pct () =
  check Alcotest.string "negative" "-50%" (Core.Report.pct 50. 100.);
  check Alcotest.string "positive" "+25%" (Core.Report.pct 125. 100.);
  check Alcotest.string "zero" "+0%" (Core.Report.pct 100. 100.)

let test_report_renders () =
  let m =
    {
      Core.Experiment.cp = 4.5;
      cycles = 100;
      exec_ns = 450.;
      luts = 10;
      ffs = 5;
      levels = 6;
      buffers = 3;
      iterations = 1;
      met_target = true;
      value_ok = true;
    }
  in
  let row = { Core.Experiment.bench = "demo"; prev = m; iter = m } in
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Core.Report.table1 fmt [ row ];
  Core.Report.figure5 fmt [ row ];
  Core.Report.iterations fmt [ row ];
  Format.pp_print_flush fmt ();
  let s = Buffer.contents buf in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "mentions benchmark" true (contains s "demo")

let test_report_csv () =
  let m =
    {
      Core.Experiment.cp = 4.5;
      cycles = 100;
      exec_ns = 450.;
      luts = 10;
      ffs = 5;
      levels = 6;
      buffers = 3;
      iterations = 1;
      met_target = true;
      value_ok = true;
    }
  in
  let row = { Core.Experiment.bench = "demo"; prev = m; iter = m } in
  let s = Format.asprintf "%a" Core.Report.csv [ row ] in
  let lines = String.split_on_char '\n' (String.trim s) in
  check Alcotest.int "header + 2 rows" 3 (List.length lines);
  check Alcotest.bool "header columns" true
    (List.hd lines = "bench,flow,cp_ns,cycles,exec_ns,luts,ffs,levels,buffers,iterations,met_target,value_ok")

let suite =
  [
    ("seed back edges", `Quick, test_seed_back_edges);
    ("iterative flow on loop", `Quick, test_iterative_on_loop);
    ("baseline flow on loop", `Quick, test_baseline_on_loop);
    ("input graph not mutated", `Quick, test_input_not_mutated);
    ("tight target exhausts iterations", `Quick, test_tight_target_iterates);
    ("report pct", `Quick, test_report_pct);
    ("report renders", `Quick, test_report_renders);
    ("report csv", `Quick, test_report_csv);
  ]
