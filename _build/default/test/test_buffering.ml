module G = Dataflow.Graph
module K = Dataflow.Unit_kind
module M = Timing.Model
module F = Buffering.Formulation

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* CFDFC extraction *)

let test_cfdfc_loop () =
  let g, back = Fixtures.loop () in
  match Buffering.Cfdfc.extract g with
  | [ cf ] ->
    check Alcotest.bool "back edge recorded" true (List.mem back cf.Buffering.Cfdfc.back_edges);
    check Alcotest.int "two simple cycles" 2 (List.length cf.Buffering.Cfdfc.cycles);
    check Alcotest.bool "channels subset" true
      (List.for_all (fun c -> c < G.n_channels g) cf.Buffering.Cfdfc.channels)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 cfdfc, got %d" (List.length l))

let test_cfdfc_acyclic () =
  let g, _, _, _, _ = Fixtures.fig2 () in
  check Alcotest.int "no cfdfc" 0 (List.length (Buffering.Cfdfc.extract g))

(* ------------------------------------------------------------------ *)
(* MILP formulation on synthetic models *)

(* a tiny linear pipeline a --c0--> b --c1--> c with controllable delays *)
let linear_graph () =
  let g = G.create "lin" in
  let a = G.add_unit g ~width:8 K.Source in
  let b = G.add_unit g ~width:8 (K.operator Dataflow.Ops.Add) in
  let b2 = G.add_unit g ~width:8 K.Source in
  let c = G.add_unit g ~width:8 K.Sink in
  let c0 = G.connect g ~src:a ~src_port:0 ~dst:b ~dst_port:0 in
  ignore (G.connect g ~src:b2 ~src_port:0 ~dst:b ~dst_port:1);
  let c1 = G.connect g ~src:b ~src_port:0 ~dst:c ~dst_port:0 in
  (g, c0, c1)

let mk_model g pairs penalty_list =
  let penalty = Array.make (G.n_channels g) 0. in
  List.iter (fun (c, p) -> penalty.(c) <- p) penalty_list;
  {
    M.pairs =
      List.map (fun (s, d, del) -> { M.p_src = s; p_dst = d; p_delay = del }) pairs;
    penalty;
    fixed_reg_to_reg = 0.;
    delay_nodes = 0;
    fake_nodes = 0;
  }

let cfg = { F.default_config with F.cp_target = 4.2 }

let test_milp_forces_buffer () =
  (* reg -> c0 -> reg path with 3.0 + 3.0 delay: must buffer c0 *)
  let g, c0, _ = linear_graph () in
  let model =
    mk_model g
      [
        (M.T_reg, M.T_chan_fwd c0, 3.0);
        (M.T_chan_fwd c0, M.T_reg, 3.0);
      ]
      []
  in
  match F.solve cfg g model [] with
  | Ok p ->
    check (Alcotest.list Alcotest.int) "c0 buffered" [ c0 ] p.F.new_buffers;
    check Alcotest.bool "proved" true p.F.proved_optimal
  | Error e -> Alcotest.fail e

let test_milp_no_buffer_when_fast () =
  let g, c0, _ = linear_graph () in
  let model =
    mk_model g
      [ (M.T_reg, M.T_chan_fwd c0, 1.0); (M.T_chan_fwd c0, M.T_reg, 1.0) ]
      []
  in
  match F.solve cfg g model [] with
  | Ok p -> check (Alcotest.list Alcotest.int) "no buffers" [] p.F.new_buffers
  | Error e -> Alcotest.fail e

let test_milp_penalty_steers_choice () =
  (* reg -> c0 -> c1 -> reg, each hop 2.5 ns: one buffer needed on c0 or
     c1.  With a high penalty on c0 the solver must pick c1 (Eq. 3). *)
  let g, c0, c1 = linear_graph () in
  let pairs =
    [
      (M.T_reg, M.T_chan_fwd c0, 2.0);
      (M.T_chan_fwd c0, M.T_chan_fwd c1, 2.0);
      (M.T_chan_fwd c1, M.T_reg, 2.0);
    ]
  in
  let model = mk_model g pairs [ (c0, 0.9); (c1, 0.0) ] in
  (match F.solve { cfg with F.use_penalty = true } g model [] with
  | Ok p -> check (Alcotest.list Alcotest.int) "penalty avoids c0" [ c1 ] p.F.new_buffers
  | Error e -> Alcotest.fail e);
  (* sanity: one buffer suffices in either mode *)
  match F.solve { cfg with F.use_penalty = false } g model [] with
  | Ok p -> check Alcotest.int "eq.1 places one buffer" 1 (List.length p.F.new_buffers)
  | Error e -> Alcotest.fail e

let test_milp_ready_direction () =
  (* a backward (ready) path can also force a buffer *)
  let g, c0, _ = linear_graph () in
  let model =
    mk_model g
      [ (M.T_reg, M.T_chan_bwd c0, 3.0); (M.T_chan_bwd c0, M.T_reg, 3.0) ]
      []
  in
  match F.solve cfg g model [] with
  | Ok p -> check (Alcotest.list Alcotest.int) "c0 buffered" [ c0 ] p.F.new_buffers
  | Error e -> Alcotest.fail e

let test_milp_unfixable_counted () =
  let g, c0, _ = linear_graph () in
  let model =
    mk_model g
      [ (M.T_reg, M.T_reg, 9.9); (M.T_reg, M.T_chan_fwd c0, 1.0) ]
      []
  in
  match F.solve cfg g model [] with
  | Ok p -> check Alcotest.int "unfixable" 1 p.F.unfixable_paths
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* throughput on the loop fixture *)

let test_milp_loop_throughput () =
  let g, back = Fixtures.loop () in
  (* the seeded back-edge buffer is fixed at R=1 *)
  let model = mk_model g [] [] in
  let cfdfcs = Buffering.Cfdfc.extract g in
  match F.solve cfg g model cfdfcs with
  | Ok p ->
    check Alcotest.bool "back edge stays buffered" true (List.mem back p.F.all_buffered);
    (match p.F.throughput with
    | [ th ] ->
      (* one buffer on the cycle, no unit latency: Θ = 1 *)
      check (Alcotest.float 1e-4) "full throughput" 1.0 th
    | _ -> Alcotest.fail "expected one throughput");
    (* no gratuitous extra buffers: they would cost objective *)
    check (Alcotest.list Alcotest.int) "no extra buffers" [] p.F.new_buffers
  | Error e -> Alcotest.fail e

let test_milp_cycle_legality () =
  (* remove the seeded buffer: the MILP must place one on the cycle *)
  let g, back = Fixtures.loop ~buffered:false () in
  let model = mk_model g [] [] in
  let cfdfcs = Buffering.Cfdfc.extract g in
  match F.solve cfg g model cfdfcs with
  | Ok p ->
    check Alcotest.bool "at least one buffer placed" true (List.length p.F.new_buffers >= 1);
    ignore back
  | Error e -> Alcotest.fail e

(* Extra buffers on a cycle reduce the modelled throughput: Θ <= 1/(#buffers) *)
let test_milp_throughput_degrades () =
  let g, back = Fixtures.loop () in
  (* force a second buffer on the merge->add channel *)
  let extra =
    G.fold_channels g
      (fun acc c ->
        match acc with
        | Some _ -> acc
        | None -> (
          match ((G.unit_node g c.G.src).G.kind, (G.unit_node g c.G.dst).G.kind) with
          | K.Merge _, K.Operator _ -> Some c.G.cid
          | _ -> None))
      None
    |> Option.get
  in
  G.set_buffer g extra (Some { G.transparent = false; slots = 2 });
  let model = mk_model g [] [] in
  let cfdfcs = Buffering.Cfdfc.extract g in
  match F.solve cfg g model cfdfcs with
  | Ok p ->
    (match p.F.throughput with
    | [ th ] -> check Alcotest.bool "throughput at most 1/2" true (th <= 0.5 +. 1e-6)
    | _ -> Alcotest.fail "one cfdfc expected");
    ignore back
  | Error e -> Alcotest.fail e

let suite =
  [
    ("cfdfc on loop", `Quick, test_cfdfc_loop);
    ("cfdfc acyclic", `Quick, test_cfdfc_acyclic);
    ("milp forces buffer on slow path", `Quick, test_milp_forces_buffer);
    ("milp leaves fast path alone", `Quick, test_milp_no_buffer_when_fast);
    ("milp penalty steers placement (eq.3)", `Quick, test_milp_penalty_steers_choice);
    ("milp handles ready direction", `Quick, test_milp_ready_direction);
    ("milp counts unfixable paths", `Quick, test_milp_unfixable_counted);
    ("milp loop throughput", `Quick, test_milp_loop_throughput);
    ("milp enforces cycle legality", `Quick, test_milp_cycle_legality);
    ("milp throughput degrades with buffers", `Quick, test_milp_throughput_degrades);
  ]
