(* Regression tests for protocol bugs found by the random-program
   property tests during development.  Each carries the minimal
   reproducer and the invariant it protects. *)

module G = Dataflow.Graph

let check = Alcotest.check

let run_src ?(mem_size = 16) src =
  let f = Hls.Parser.parse src in
  let mem = Array.init mem_size (fun i -> (i * 37) land 255) in
  let expected = Hls.Interp.run f ~args:[] ~memories:[ ("m", Array.copy mem) ] in
  let g = Hls.Compile.compile f in
  let _ = Core.Flow.seed_back_edges g in
  let r =
    Sim.Elastic.run
      ~config:{ Sim.Elastic.max_cycles = 100_000; deadlock_window = 1_000 }
      ~memories:[ ("m", Array.copy mem) ]
      g
  in
  (expected, r)

(* Bug 1: the control merge has two outputs (token + index) consumed by
   different forks; without per-output sent flags and a winner latch, a
   consumer that accepts early receives the same token twice.  Minimal
   shape: an if (whose reconvergence mux stalls on a far-away consumer)
   followed by a storing loop. *)
let test_cmerge_no_token_duplication () =
  let expected, r =
    run_src
      {|
int f(int m[16]) {
  int x = 3;
  if (x < 5) {
    m[1] = 7;
  } else {
    m[2] = 9;
  }
  for (int i = 0; i < 2; i = i + 1) {
    m[(i & 15)] = 3;
  }
  return x;
}
|}
  in
  check Alcotest.bool "finished" true r.Sim.Elastic.finished;
  check (Alcotest.option Alcotest.int) "value" (Some expected) r.Sim.Elastic.exit_value

(* Bug 2: a guarded load could fire in the same cycle as the store
   producing its memory token and read the OLD value; the store's
   completion token must be registered. *)
let test_store_load_no_race () =
  let expected, r =
    run_src
      {|
int f(int m[16]) {
  int z = 0;
  m[0] = 0;
  z = (m[0] & 8) - 22;
  return z;
}
|}
  in
  check (Alcotest.option Alcotest.int) "dependent load sees the store" (Some expected)
    r.Sim.Elastic.exit_value;
  check Alcotest.bool "finished" true r.Sim.Elastic.finished

(* The load-before-store direction must still read the OLD value when
   both fire back to back. *)
let test_load_before_store_reads_old () =
  let expected, r =
    run_src
      {|
int f(int m[16]) {
  int x = m[5];
  m[5] = 0;
  return x;
}
|}
  in
  (* interpreter gives the original m[5] = (5*37) land 255 = 185 *)
  check Alcotest.int "reference reads old" 185 expected;
  check (Alcotest.option Alcotest.int) "circuit reads old too" (Some expected)
    r.Sim.Elastic.exit_value

(* Bug 3 (earlier in development): per-variable loop merges reorder
   tokens across iterations.  Nested loops with inner stores are the
   trigger shape. *)
let test_nested_loop_ordering () =
  let expected, r =
    run_src
      {|
int f(int m[16]) {
  int s = 0;
  for (int i = 0; i < 3; i = i + 1) {
    for (int j = 0; j < 3; j = j + 1) {
      m[((i + j) & 15)] = i + j;
    }
    s = s + m[(i & 15)];
  }
  return s;
}
|}
  in
  check Alcotest.bool "finished" true r.Sim.Elastic.finished;
  check (Alcotest.option Alcotest.int) "value" (Some expected) r.Sim.Elastic.exit_value

(* Sequential sibling loops where the first writes what the second
   reads: the second loop's entry must synchronise on the memory token
   once, without routing it through its iterations. *)
let test_sibling_loop_sync () =
  let expected, r =
    run_src
      {|
int f(int m[16]) {
  for (int i = 0; i < 8; i = i + 1) {
    m[(i & 15)] = i + i;
  }
  int s = 0;
  for (int j = 0; j < 8; j = j + 1) {
    s = s + m[(j & 15)];
  }
  return s;
}
|}
  in
  check Alcotest.int "reference" 56 expected;
  check (Alcotest.option Alcotest.int) "value" (Some expected) r.Sim.Elastic.exit_value

(* gemver's shape: guarded read-modify-write in the outer body with an
   inner reading loop. *)
let test_read_modify_write_with_inner_loop () =
  let expected, r =
    run_src
      {|
int f(int m[16]) {
  for (int i = 0; i < 4; i = i + 1) {
    int acc = m[(i & 15)];
    for (int j = 0; j < 4; j = j + 1) {
      acc = acc + j;
    }
    m[(i & 15)] = acc;
  }
  return m[2];
}
|}
  in
  check Alcotest.bool "finished" true r.Sim.Elastic.finished;
  check (Alcotest.option Alcotest.int) "value" (Some expected) r.Sim.Elastic.exit_value

(* break / continue lower to flag-guarded loops; the interpreter runs
   them natively, so these are true differential checks of Lower. *)
let test_break_lowering () =
  let expected, r =
    run_src
      {|
int f(int m[16]) {
  int s = 0;
  for (int i = 0; i < 16; i = i + 1) {
    if (m[(i & 15)] > 200) {
      break;
    }
    s = s + m[(i & 15)];
  }
  return s;
}
|}
  in
  check Alcotest.bool "finished" true r.Sim.Elastic.finished;
  check (Alcotest.option Alcotest.int) "value" (Some expected) r.Sim.Elastic.exit_value

let test_continue_lowering () =
  let expected, r =
    run_src
      {|
int f(int m[16]) {
  int s = 0;
  for (int i = 0; i < 16; i = i + 1) {
    if ((m[(i & 15)] & 1) == 1) {
      continue;
    }
    s = s + m[(i & 15)];
  }
  return s;
}
|}
  in
  check Alcotest.bool "finished" true r.Sim.Elastic.finished;
  check (Alcotest.option Alcotest.int) "value" (Some expected) r.Sim.Elastic.exit_value

let test_break_in_while_with_store () =
  let expected, r =
    run_src
      {|
int f(int m[16]) {
  int i = 0;
  while (i < 16) {
    if (m[(i & 15)] == 111) {
      break;
    }
    m[(i & 15)] = i;
    i = i + 1;
  }
  return m[3];
}
|}
  in
  check Alcotest.bool "finished" true r.Sim.Elastic.finished;
  check (Alcotest.option Alcotest.int) "value" (Some expected) r.Sim.Elastic.exit_value

let test_nested_break_binds_inner () =
  let expected, r =
    run_src
      {|
int f(int m[16]) {
  int s = 0;
  for (int i = 0; i < 4; i = i + 1) {
    for (int j = 0; j < 8; j = j + 1) {
      if (j == i) {
        break;
      }
      s = s + 1;
    }
    s = s + 10;
  }
  return s;
}
|}
  in
  (* inner break must not kill the outer loop: 0+1+2+3 inner + 4*10 = 46 *)
  check Alcotest.int "reference" 46 expected;
  check (Alcotest.option Alcotest.int) "value" (Some expected) r.Sim.Elastic.exit_value

let test_bc_outside_loop_rejected () =
  let f = Hls.Parser.parse "int f() { break; return 0; }" in
  match Hls.Compile.compile f with
  | _ -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let suite =
  [
    ("cmerge token duplication (bug 1)", `Quick, test_cmerge_no_token_duplication);
    ("store->load race (bug 2)", `Quick, test_store_load_no_race);
    ("load-before-store reads old", `Quick, test_load_before_store_reads_old);
    ("nested loop token ordering (bug 3)", `Quick, test_nested_loop_ordering);
    ("sibling loop entry sync", `Quick, test_sibling_loop_sync);
    ("read-modify-write with inner loop", `Quick, test_read_modify_write_with_inner_loop);
    ("break lowering", `Quick, test_break_lowering);
    ("continue lowering", `Quick, test_continue_lowering);
    ("break in while with store", `Quick, test_break_in_while_with_store);
    ("nested break binds inner loop", `Quick, test_nested_break_binds_inner);
    ("break outside loop rejected", `Quick, test_bc_outside_loop_rejected);
  ]
